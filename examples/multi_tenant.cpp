// Multi-tenant cloud host: several enclaves (a vision service and a chess
// engine) share the machine's single EPC and paging channel — the scenario
// the paper's §5.6 discussion sketches for SGX-capable cloud platforms
// (Azure Confidential Computing, IBM Cloud).
//
//   $ ./multi_tenant [scale]
#include <cstdlib>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "core/multi_enclave.h"
#include "core/multi_thread.h"
#include "core/simulator.h"
#include "trace/generators.h"
#include "trace/workloads.h"

using namespace sgxpl;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.35;

  const auto sift = trace::find_workload("SIFT")->make(trace::ref_params(scale));
  const auto sjeng =
      trace::find_workload("deepsjeng")->make(trace::ref_params(scale));
  const auto lbm = trace::find_workload("lbm")->make(trace::ref_params(scale));

  auto cfg = core::paper_platform();
  cfg.enclave.epc_pages = static_cast<PageNum>(
      static_cast<double>(cfg.enclave.epc_pages) * scale);

  std::cout << "Three tenants on one SGX host ("
            << cfg.enclave.epc_pages << " shared EPC pages):\n"
            << "  tenant 0: SIFT       (vision service, streaming)\n"
            << "  tenant 1: deepsjeng  (chess engine, irregular)\n"
            << "  tenant 2: lbm        (simulation batch job, streaming)\n\n";

  core::MultiEnclaveSimulator multi(cfg);
  const auto baseline =
      multi.run({core::EnclaveApp{&sift, core::Scheme::kBaseline, nullptr},
                 core::EnclaveApp{&sjeng, core::Scheme::kBaseline, nullptr},
                 core::EnclaveApp{&lbm, core::Scheme::kBaseline, nullptr}});
  const auto preloaded =
      multi.run({core::EnclaveApp{&sift, core::Scheme::kDfpStop, nullptr},
                 core::EnclaveApp{&sjeng, core::Scheme::kDfpStop, nullptr},
                 core::EnclaveApp{&lbm, core::Scheme::kDfpStop, nullptr}});

  TextTable tbl({"tenant", "baseline cycles", "DFP-stop cycles", "gain",
                 "faults", "preloads used", "stopped?"});
  const char* names[] = {"SIFT", "deepsjeng", "lbm"};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& b = baseline.per_enclave[i];
    const auto& p = preloaded.per_enclave[i];
    tbl.add_row({names[i], std::to_string(b.total_cycles),
                 std::to_string(p.total_cycles),
                 TextTable::pct(1.0 - static_cast<double>(p.total_cycles) /
                                          static_cast<double>(b.total_cycles)),
                 std::to_string(p.enclave_faults),
                 std::to_string(p.dfp_acc_preload_counter),
                 p.dfp_stopped ? "yes" : "no"});
  }
  std::cout << tbl.render();
  std::cout << "\nmakespan: " << baseline.makespan << " -> "
            << preloaded.makespan << " cycles ("
            << TextTable::pct(1.0 -
                              static_cast<double>(preloaded.makespan) /
                                  static_cast<double>(baseline.makespan))
            << ")\n"
            << "Each tenant runs its own DFP engine against the shared "
               "driver; the irregular tenant's\nengine stops itself (the "
               "per-enclave safety valve), the streaming tenants keep "
               "their gains.\n";

  // --- Bonus: threads inside ONE enclave (paper §3.1 keys the fault
  // history per thread). A worker scan plus a random-probing helper share
  // the ELRANGE; the per-thread history keeps the worker's streams alive.
  std::cout << "\nThreads within one enclave (per-thread fault history):\n";
  const auto worker_pages = static_cast<PageNum>(30'000 * scale);
  const PageNum elrange = 3 * worker_pages + 64;
  trace::Trace worker("worker", elrange);
  trace::Trace helper("helper", elrange);
  Rng rng(5);
  trace::seq_scan(worker, rng, trace::Region{0, worker_pages}, 1,
                  trace::GapModel{.mean = 45'000, .jitter_pct = 0.2});
  trace::random_access(helper, rng,
                       trace::Region{worker_pages, 2 * worker_pages},
                       worker_pages, 9, 4,
                       trace::GapModel{.mean = 9'000, .jitter_pct = 0.2});

  const auto tb = core::run_threads(cfg, {&worker, &helper});
  auto dfp_cfg = cfg;
  dfp_cfg.scheme = core::Scheme::kDfpStop;
  const auto td = core::run_threads(dfp_cfg, {&worker, &helper});
  std::cout << "  worker thread: " << tb.per_thread[0].total_cycles << " -> "
            << td.per_thread[0].total_cycles << " cycles ("
            << TextTable::pct(
                   1.0 - static_cast<double>(td.per_thread[0].total_cycles) /
                             static_cast<double>(tb.per_thread[0].total_cycles))
            << " with DFP-stop, despite the noisy helper thread)\n";
  return 0;
}
