// Plugging a custom page-access predictor into the SGX driver model.
//
// The paper notes (§4.1) that DFP's mechanism accommodates arbitrarily
// sophisticated predictors — heuristics or even learned models — and ships
// a multiple-stream predictor as the demonstration. This example implements
// a *strided* predictor on the raw sgxsim::PreloadPolicy interface (the
// same hook DfpEngine uses), replays a strided workload through the driver
// by hand, and compares it against the built-in stream predictor, which is
// blind to strides.
//
//   $ ./custom_predictor
#include <iostream>
#include <map>

#include "common/rng.h"
#include "common/table.h"
#include "dfp/dfp_engine.h"
#include "sgxsim/driver.h"
#include "trace/generators.h"

using namespace sgxpl;

namespace {

/// Detects per-process constant page strides from the fault history and
/// preloads the next few pages along the detected stride.
class StridePredictor final : public sgxsim::PreloadPolicy {
 public:
  explicit StridePredictor(std::uint64_t depth) : depth_(depth) {}

  std::vector<PageNum> on_fault(ProcessId pid, PageNum page,
                                Cycles /*now*/) override {
    auto& st = state_[pid];
    std::vector<PageNum> out;
    if (st.last != kInvalidPage && page > st.last) {
      const PageNum stride = page - st.last;
      if (stride == st.stride && stride > 0) {
        for (std::uint64_t i = 1; i <= depth_; ++i) {
          out.push_back(page + i * stride);
        }
      }
      st.stride = stride;
    }
    st.last = page;
    return out;
  }
  void on_preload_completed(PageNum, Cycles) override {}
  void on_preloads_aborted(const std::vector<PageNum>&, Cycles) override {}
  void on_preloaded_page_evicted(PageNum, bool, Cycles) override {}
  void on_scan(const sgxsim::PageTable&, Cycles) override {}

 private:
  struct State {
    PageNum last = kInvalidPage;
    PageNum stride = 0;
  };
  std::uint64_t depth_;
  std::map<ProcessId, State> state_;
};

/// Replay a trace through a driver, returning the finishing time.
Cycles replay(const trace::Trace& t, sgxsim::PreloadPolicy* policy,
              std::uint64_t* faults) {
  sgxsim::EnclaveConfig cfg;
  cfg.elrange_pages = t.elrange_pages();
  cfg.epc_pages = 2'048;
  sgxsim::Driver driver(cfg, sgxsim::CostModel{}, policy);
  Cycles now = 0;
  for (const auto& a : t.accesses()) {
    now = driver.access(a.page, now + a.gap).completion;
  }
  driver.check_invariants();
  *faults = driver.stats().faults;
  return now;
}

}  // namespace

int main() {
  // A stride-3 grid sweep: invisible to the sequential stream predictor,
  // trivial for the stride predictor.
  trace::Trace t("strided", 12'000);
  Rng rng(7);
  trace::strided_sweep(t, rng, trace::Region{0, 9'000}, /*stride=*/3,
                       /*site=*/1, trace::GapModel{.mean = 6'000,
                                                   .jitter_pct = 0.1});

  std::uint64_t base_faults = 0;
  const Cycles baseline = replay(t, nullptr, &base_faults);

  dfp::DfpEngine stream_engine{dfp::DfpParams{}};
  std::uint64_t stream_faults = 0;
  const Cycles stream = replay(t, &stream_engine, &stream_faults);

  StridePredictor stride_engine{/*depth=*/4};
  std::uint64_t stride_faults = 0;
  const Cycles stride = replay(t, &stride_engine, &stride_faults);

  TextTable tbl({"predictor", "cycles", "faults", "improvement"});
  auto pct = [&](Cycles c) {
    return TextTable::pct(1.0 - static_cast<double>(c) /
                                    static_cast<double>(baseline));
  };
  tbl.add_row({"none (baseline)", std::to_string(baseline),
               std::to_string(base_faults), "-"});
  tbl.add_row({"multiple-stream (paper)", std::to_string(stream),
               std::to_string(stream_faults), pct(stream)});
  tbl.add_row({"stride (custom)", std::to_string(stride),
               std::to_string(stride_faults), pct(stride)});
  std::cout << tbl.render();
  std::cout << "\nThe stream predictor never fires on a stride-3 sweep; the "
               "custom predictor hides most\nfaults. Implementing "
               "sgxsim::PreloadPolicy is all it takes to swap predictors.\n";
  return 0;
}
