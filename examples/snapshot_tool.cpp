// snapshot_tool — inspect, migrate, and dissect snapshot files offline.
//
//   snapshot_tool info <file>                 header, chain position, META,
//                                             per-section payload sizes
//   snapshot_tool upgrade <in.v1> <out.v2>    rewrite a format-v1 frame as
//                                             the equivalent v2 base frame
//   snapshot_tool extract <n> <in> <out>      lift enclave <n> out of a v2
//                                             multi-enclave frame as a
//                                             standalone snapshot
//   snapshot_tool diff <a> <b>                first diverging field of two
//                                             frames (exit 1 when they
//                                             differ)
//   snapshot_tool verify-chain <base>         validate the delta chain
//                                             rooted at <base> (the
//                                             `<base>.delta-N` files):
//                                             headers, CRC linkage, ordering
//
// Every command works on files alone — no simulation run is needed, so a
// snapshot from a dead service can be examined on any machine with this
// build. See docs/ROBUSTNESS.md, "Snapshot format v2".
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "snapshot/chain.h"
#include "snapshot/codec.h"
#include "snapshot/migrate.h"
#include "snapshot/snapshotter.h"

using namespace sgxpl;

namespace {

int usage() {
  std::cerr
      << "usage: snapshot_tool info <file>\n"
         "       snapshot_tool upgrade <in.v1> <out.v2>\n"
         "       snapshot_tool extract <enclave> <in> <out>\n"
         "       snapshot_tool diff <a> <b>\n"
         "       snapshot_tool verify-chain <base>\n";
  return 2;
}

int cmd_info(const std::string& path) {
  const auto bytes = snapshot::read_file(path);
  const std::uint32_t version = snapshot::frame_version(bytes);
  std::cout << path << ": format v" << version << ", " << bytes.size()
            << " bytes\n";
  snapshot::validate_frame(bytes);
  if (version >= 2) {
    const snapshot::ChainHeader chain =
        snapshot::read_chain_header_bytes(bytes);
    std::cout << "chain: " << snapshot::to_string(chain.kind) << " frame, id "
              << chain.chain_id << ", seq " << chain.seq;
    if (chain.kind == snapshot::FrameKind::kDelta) {
      std::cout << ", prev-crc " << chain.prev_crc;
    }
    std::cout << "\n";
  }
  snapshot::Reader r(bytes);
  if (version >= 2) {
    (void)snapshot::read_chain_header(r);
  }
  const snapshot::RunMeta meta = snapshot::read_meta(r);
  std::cout << "meta: " << meta.kind << " / " << meta.scheme << " on "
            << meta.trace_name << " (" << meta.trace_accesses
            << " accesses, ELRANGE " << meta.elrange_pages << " pages, EPC "
            << meta.epc_pages << " pages), cursor " << meta.cursor << "\n";
  if (!meta.chaos_spec.empty()) {
    std::cout << "chaos: " << meta.chaos_spec << " (seed " << meta.chaos_seed
              << ")\n";
  }
  if (!meta.hardening_spec.empty()) {
    std::cout << "hardening: " << meta.hardening_spec << "\n";
  }
  std::cout << "sections:\n";
  for (const snapshot::SectionSpan& s : snapshot::section_spans(bytes)) {
    std::printf("  %-4s %8zu bytes\n", s.tag.c_str(), s.size - 16);
  }
  return 0;
}

int cmd_upgrade(const std::string& in, const std::string& out) {
  const auto bytes = snapshot::read_file(in);
  const std::uint32_t version = snapshot::frame_version(bytes);
  if (version >= 2) {
    std::cerr << in << ": already format v" << version << "; nothing to do\n";
    return 1;
  }
  const auto upgraded = snapshot::upgrade_v1_to_v2(bytes);
  snapshot::write_file_atomic(out, upgraded);
  std::cout << "wrote " << out << " (v1 " << bytes.size() << " bytes -> v2 "
            << upgraded.size() << " bytes)\n";
  return 0;
}

int cmd_extract(const std::string& index, const std::string& in,
                const std::string& out) {
  const std::uint64_t enclave = std::stoull(index);
  auto bytes = snapshot::read_file(in);
  if (snapshot::frame_version(bytes) < 2) {
    bytes = snapshot::upgrade_v1_to_v2(bytes);
  }
  const auto frame = snapshot::extract_enclave(bytes, enclave);
  snapshot::write_file_atomic(out, frame);
  const snapshot::ExtractedEnclave e = snapshot::read_extracted(frame);
  std::cout << "wrote " << out << ": enclave " << e.index << " (" << e.scheme
            << " on " << e.trace << "), cursor " << e.cursor << ", "
            << frame.size() << " bytes\n";
  return 0;
}

int cmd_diff(const std::string& a, const std::string& b) {
  const snapshot::Diff d =
      snapshot::diff(snapshot::read_file(a), snapshot::read_file(b));
  if (d.identical) {
    std::cout << "identical\n";
    return 0;
  }
  std::cout << "differ: " << d.first_divergence << "\n";
  return 1;
}

int cmd_verify_chain(const std::string& base) {
  const auto base_bytes = snapshot::read_file(base);
  snapshot::validate_frame(base_bytes);
  const snapshot::ChainHeader head =
      snapshot::read_chain_header_bytes(base_bytes);
  SGXPL_CHECK_MSG(head.kind == snapshot::FrameKind::kFull,
                  base << " is delta " << head.seq
                       << ", not a chain base; point verify-chain at the "
                          "base frame");
  std::cout << base << ": full base, chain id " << head.chain_id << ", "
            << base_bytes.size() << " bytes\n";
  std::uint32_t prev_crc =
      snapshot::crc32c(base_bytes.data(), base_bytes.size());
  std::uint64_t frames = 1;
  for (std::uint64_t seq = 1;; ++seq) {
    const std::string path = snapshot::delta_path(base, seq);
    if (!snapshot::file_readable(path)) {
      break;
    }
    const auto bytes = snapshot::read_file(path);
    snapshot::validate_frame(bytes);
    const snapshot::ChainHeader h = snapshot::read_chain_header_bytes(bytes);
    SGXPL_CHECK_MSG(h.kind == snapshot::FrameKind::kDelta,
                    path << " is a full frame where delta " << seq
                         << " was expected");
    if (h.chain_id != head.chain_id) {
      std::cout << path << ": different chain (id " << h.chain_id
                << ") — stale leftover, chain ends at seq " << (seq - 1)
                << "\n";
      break;
    }
    SGXPL_CHECK_MSG(h.seq == seq, path << " carries seq " << h.seq
                                       << " but its filename says " << seq);
    SGXPL_CHECK_MSG(h.prev_crc == prev_crc,
                    path << ": prev-CRC mismatch — a frame was substituted "
                            "or reordered");
    std::cout << path << ": delta " << seq << ", " << bytes.size()
              << " bytes, linkage OK\n";
    prev_crc = snapshot::crc32c(bytes.data(), bytes.size());
    ++frames;
  }
  std::cout << "chain OK: " << frames << " frame(s)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 2 && args[0] == "info") {
      return cmd_info(args[1]);
    }
    if (args.size() == 3 && args[0] == "upgrade") {
      return cmd_upgrade(args[1], args[2]);
    }
    if (args.size() == 4 && args[0] == "extract") {
      return cmd_extract(args[1], args[2], args[3]);
    }
    if (args.size() == 3 && args[0] == "diff") {
      return cmd_diff(args[1], args[2]);
    }
    if (args.size() == 2 && args[0] == "verify-chain") {
      return cmd_verify_chain(args[1]);
    }
  } catch (const CheckFailure& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
