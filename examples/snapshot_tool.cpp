// snapshot_tool — inspect, migrate, and dissect snapshot files offline.
//
//   snapshot_tool info <file>                 header, chain position, META,
//                                             per-section payload sizes
//   snapshot_tool upgrade <in.v1> <out.v2>    rewrite a format-v1 frame as
//                                             the equivalent v2 base frame
//   snapshot_tool extract <n> <in> <out>      lift enclave <n> out of a v2
//                                             multi-enclave frame as a
//                                             standalone snapshot
//   snapshot_tool migrate <in> <n> <out> [<lo> <pages> <accesses>]
//                                             carve enclave <n> as a
//                                             *resumable* single-tenant
//                                             frame (the live-migration
//                                             payload); the optional triple
//                                             gives a co-tenant's placement,
//                                             default is a sole occupant
//   snapshot_tool diff <a> <b>                first diverging field of two
//                                             frames (exit 1 when they
//                                             differ)
//   snapshot_tool verify-chain <base>         validate the delta chain
//                                             rooted at <base> (the
//                                             `<base>.delta-N` files):
//                                             headers, CRC linkage,
//                                             ordering; a bad frame is
//                                             reported with its seq number
//                                             and byte offset
//   snapshot_tool salvage <base> <out-base>   copy the longest valid prefix
//                                             of a torn chain to <out-base>
//                                             (+ .delta-N) and report what
//                                             was dropped; exit 1 when
//                                             nothing is restorable
//   snapshot_tool fleet-info <dir>            health of every host chain a
//                                             FleetSupervisor mirrored into
//                                             <dir> (host-<n>.snap + deltas,
//                                             consecutive n from 0): frames
//                                             valid, cursor, torn tails;
//                                             exit 1 when no chains exist or
//                                             any host is unrecoverable
//
// Every command works on files alone — no simulation run is needed, so a
// snapshot from a dead service can be examined on any machine with this
// build. Every failure (unreadable file, corrupt frame, wrong version, bad
// argument) exits nonzero with a one-line `error:` diagnostic; no input
// may abort or crash the process. See docs/ROBUSTNESS.md, "Snapshot format
// v2" and "Live migration & torn-chain salvage".
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "snapshot/chain.h"
#include "snapshot/codec.h"
#include "snapshot/migrate.h"
#include "snapshot/snapshotter.h"

using namespace sgxpl;

namespace {

int usage() {
  std::cerr
      << "usage: snapshot_tool info <file>\n"
         "       snapshot_tool upgrade <in.v1> <out.v2>\n"
         "       snapshot_tool extract <enclave> <in> <out>\n"
         "       snapshot_tool migrate <in> <enclave> <out> [<lo> <pages> "
         "<accesses>]\n"
         "       snapshot_tool diff <a> <b>\n"
         "       snapshot_tool verify-chain <base>\n"
         "       snapshot_tool salvage <base> <out-base>\n"
         "       snapshot_tool fleet-info <dir>\n";
  return 2;
}

/// Strict decimal parse with a typed failure (std::stoull would abort the
/// command with an unhelpful std::invalid_argument).
std::uint64_t parse_u64(const std::string& what, const std::string& text) {
  SGXPL_CHECK_MSG(!text.empty(), what << " is empty, want an integer");
  std::uint64_t v = 0;
  for (const char c : text) {
    SGXPL_CHECK_MSG(c >= '0' && c <= '9',
                    what << " '" << text << "' is not a decimal integer");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    SGXPL_CHECK_MSG(v <= (~0ull - digit) / 10,
                    what << " '" << text << "' overflows 64 bits");
    v = v * 10 + digit;
  }
  return v;
}

int cmd_info(const std::string& path) {
  const auto bytes = snapshot::read_file(path);
  const std::uint32_t version = snapshot::frame_version(bytes);
  std::cout << path << ": format v" << version << ", " << bytes.size()
            << " bytes\n";
  snapshot::validate_frame(bytes);
  if (version >= 2) {
    const snapshot::ChainHeader chain =
        snapshot::read_chain_header_bytes(bytes);
    std::cout << "chain: " << snapshot::to_string(chain.kind) << " frame, id "
              << chain.chain_id << ", seq " << chain.seq;
    if (chain.kind == snapshot::FrameKind::kDelta) {
      std::cout << ", prev-crc " << chain.prev_crc;
    }
    std::cout << "\n";
  }
  snapshot::Reader r(bytes);
  if (version >= 2) {
    (void)snapshot::read_chain_header(r);
  }
  const snapshot::RunMeta meta = snapshot::read_meta(r);
  std::cout << "meta: " << meta.kind << " / " << meta.scheme << " on "
            << meta.trace_name << " (" << meta.trace_accesses
            << " accesses, ELRANGE " << meta.elrange_pages << " pages, EPC "
            << meta.epc_pages << " pages), cursor " << meta.cursor << "\n";
  if (!meta.chaos_spec.empty()) {
    std::cout << "chaos: " << meta.chaos_spec << " (seed " << meta.chaos_seed
              << ")\n";
  }
  if (!meta.hardening_spec.empty()) {
    std::cout << "hardening: " << meta.hardening_spec << "\n";
  }
  std::cout << "sections:\n";
  for (const snapshot::SectionSpan& s : snapshot::section_spans(bytes)) {
    std::printf("  %-4s %8zu bytes\n", s.tag.c_str(), s.size - 16);
  }
  return 0;
}

int cmd_upgrade(const std::string& in, const std::string& out) {
  const auto bytes = snapshot::read_file(in);
  const std::uint32_t version = snapshot::frame_version(bytes);
  if (version >= 2) {
    std::cerr << "error: " << in << ": already format v" << version
              << "; nothing to do\n";
    return 1;
  }
  const auto upgraded = snapshot::upgrade_v1_to_v2(bytes);
  snapshot::write_file_atomic(out, upgraded);
  std::cout << "wrote " << out << " (v1 " << bytes.size() << " bytes -> v2 "
            << upgraded.size() << " bytes)\n";
  return 0;
}

int cmd_extract(const std::string& index, const std::string& in,
                const std::string& out) {
  const std::uint64_t enclave = parse_u64("enclave index", index);
  auto bytes = snapshot::read_file(in);
  if (snapshot::frame_version(bytes) < 2) {
    bytes = snapshot::upgrade_v1_to_v2(bytes);
  }
  const auto frame = snapshot::extract_enclave(bytes, enclave);
  snapshot::write_file_atomic(out, frame);
  const snapshot::ExtractedEnclave e = snapshot::read_extracted(frame);
  std::cout << "wrote " << out << ": enclave " << e.index << " (" << e.scheme
            << " on " << e.trace << "), cursor " << e.cursor << ", "
            << frame.size() << " bytes\n";
  return 0;
}

int cmd_migrate(const std::vector<std::string>& args) {
  const std::string& in = args[1];
  const std::uint64_t enclave = parse_u64("enclave index", args[2]);
  const std::string& out = args[3];
  const auto bytes = snapshot::read_file(in);
  snapshot::validate_frame(bytes);
  snapshot::TenantGeometry geo;
  if (args.size() == 7) {
    geo.lo = parse_u64("tenant lo page", args[4]);
    geo.pages = parse_u64("tenant page count", args[5]);
    geo.trace_accesses = parse_u64("tenant trace accesses", args[6]);
  } else {
    // Sole occupant: the tenant owns the whole combined space described by
    // the frame's META (the identity carve — byte-exact).
    snapshot::Reader r(bytes);
    SGXPL_CHECK_MSG(r.version() >= 2,
                    "format v1 frames have no per-enclave sections; upgrade "
                    "the file first (snapshot_tool upgrade)");
    (void)snapshot::read_chain_header(r);
    const snapshot::RunMeta meta = snapshot::read_meta(r);
    geo.lo = 0;
    geo.pages = meta.elrange_pages;
    geo.trace_accesses = meta.trace_accesses;
  }
  const auto frame = snapshot::extract_resumable(bytes, enclave, geo);
  snapshot::write_file_atomic(out, frame);
  std::cout << "wrote " << out << ": resumable enclave " << enclave
            << " at pages [" << geo.lo << ", " << (geo.lo + geo.pages)
            << "), " << frame.size() << " bytes\n";
  return 0;
}

int cmd_diff(const std::string& a, const std::string& b) {
  const snapshot::Diff d =
      snapshot::diff(snapshot::read_file(a), snapshot::read_file(b));
  if (d.identical) {
    std::cout << "identical\n";
    return 0;
  }
  std::cout << "differ: " << d.first_divergence << "\n";
  return 1;
}

/// Read the chain rooted at `base`: the base plus every consecutive
/// `.delta-N` file beside it. Unreadable files stop the scan; corrupt
/// *content* does not (the walk classifies it).
std::vector<std::vector<std::uint8_t>> read_chain_files(
    const std::string& base, std::vector<std::string>* paths) {
  std::vector<std::vector<std::uint8_t>> frames;
  frames.push_back(snapshot::read_file(base));
  paths->push_back(base);
  for (std::uint64_t seq = 1;; ++seq) {
    const std::string path = snapshot::delta_path(base, seq);
    if (!snapshot::file_readable(path)) {
      break;
    }
    frames.push_back(snapshot::read_file(path));
    paths->push_back(path);
  }
  return frames;
}

int cmd_verify_chain(const std::string& base) {
  std::vector<std::string> paths;
  const auto frames = read_chain_files(base, &paths);
  const snapshot::ChainSalvageReport rep = snapshot::probe_chain(frames);
  for (std::uint64_t i = 0; i < rep.frames_restored; ++i) {
    const snapshot::ChainHeader h =
        snapshot::read_chain_header_bytes(frames[i]);
    if (i == 0) {
      std::cout << paths[i] << ": full base, chain id " << h.chain_id << ", "
                << frames[i].size() << " bytes\n";
    } else {
      std::cout << paths[i] << ": delta " << h.seq << ", "
                << frames[i].size() << " bytes, linkage OK\n";
    }
  }
  if (!rep.complete()) {
    // A stale delta of an older chain is a benign leftover, not corruption
    // (the resume scan ignores it); everything else fails the chain.
    if (rep.fault == snapshot::ChainFault::kChainIdMismatch) {
      std::cout << paths[rep.first_bad_index]
                << ": different chain — stale leftover, chain ends at seq "
                << (rep.first_bad_index - 1) << "\n";
      std::cout << "chain OK: " << rep.frames_restored << " frame(s)\n";
      return 0;
    }
    std::cerr << "error: " << paths[rep.first_bad_index] << ": frame "
              << rep.first_bad_index << " (seq " << rep.first_bad_seq
              << "), byte offset " << rep.byte_offset << ": "
              << snapshot::to_string(rep.fault) << " — " << rep.detail
              << "\n";
    return 1;
  }
  std::cout << "chain OK: " << rep.frames_restored << " frame(s)\n";
  return 0;
}

int cmd_salvage(const std::string& base, const std::string& out_base) {
  std::vector<std::string> paths;
  const auto frames = read_chain_files(base, &paths);
  const snapshot::ChainSalvageReport rep = snapshot::probe_chain(frames);
  std::cout << rep.describe() << "\n";
  if (!rep.restored_any()) {
    std::cerr << "error: nothing restorable: " << rep.detail << "\n";
    return 1;
  }
  for (std::uint64_t i = 0; i < rep.frames_restored; ++i) {
    const std::string out =
        i == 0 ? out_base : snapshot::delta_path(out_base, i);
    snapshot::write_file_atomic(out, frames[i]);
    std::cout << "wrote " << out << " (" << frames[i].size() << " bytes)\n";
  }
  return 0;
}

int cmd_fleet_info(const std::string& dir) {
  // A FleetSupervisor with a chain dir mirrors host n's checkpoint chain
  // to <dir>/host-<n>.snap (+ .delta-N), hosts numbered consecutively
  // from 0 — so the fleet's disk footprint is exactly the consecutive
  // bases this scan finds.
  std::size_t hosts = 0;
  std::size_t healthy = 0;
  std::size_t torn = 0;
  std::size_t dead = 0;
  for (std::size_t n = 0;; ++n) {
    const std::string base = dir + "/host-" + std::to_string(n) + ".snap";
    if (!snapshot::file_readable(base)) {
      break;
    }
    ++hosts;
    std::vector<std::string> paths;
    const auto frames = read_chain_files(base, &paths);
    const snapshot::ChainSalvageReport rep = snapshot::probe_chain(frames);
    std::uint64_t bytes = 0;
    for (const auto& f : frames) {
      bytes += f.size();
    }
    std::cout << "host " << n << ": " << rep.frames_restored << "/"
              << rep.frames_offered << " frame(s) valid, " << bytes
              << " bytes";
    if (rep.restored_any()) {
      // The restore point an operator would get back: the META of the
      // base names the run; the chain length bounds the replay window.
      snapshot::Reader r(frames[0]);
      (void)snapshot::read_chain_header(r);
      const snapshot::RunMeta meta = snapshot::read_meta(r);
      std::cout << " — " << meta.kind << " / " << meta.scheme << " on "
                << meta.trace_name << ", base cursor " << meta.cursor;
    }
    std::cout << "\n";
    if (rep.complete()) {
      ++healthy;
    } else if (rep.restored_any()) {
      ++torn;
      std::cout << "  torn: dropped at " << paths[rep.first_bad_index]
                << " (seq " << rep.first_bad_seq << "): "
                << snapshot::to_string(rep.fault)
                << " — recoverable to the salvaged prefix\n";
    } else {
      ++dead;
      std::cout << "  UNRECOVERABLE: " << snapshot::to_string(rep.fault)
                << " — " << rep.detail << "\n";
    }
  }
  if (hosts == 0) {
    std::cerr << "error: " << dir
              << ": no fleet chains found (want host-0.snap, host-1.snap, "
                 "... as mirrored by a supervisor chain dir)\n";
    return 1;
  }
  std::cout << "fleet: " << hosts << " host(s), " << healthy << " healthy, "
            << torn << " torn (salvageable), " << dead << " unrecoverable\n";
  if (dead > 0) {
    std::cerr << "error: " << dead
              << " host chain(s) have no restorable frame — those hosts can "
                 "only cold-start\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 2 && args[0] == "info") {
      return cmd_info(args[1]);
    }
    if (args.size() == 3 && args[0] == "upgrade") {
      return cmd_upgrade(args[1], args[2]);
    }
    if (args.size() == 4 && args[0] == "extract") {
      return cmd_extract(args[1], args[2], args[3]);
    }
    if ((args.size() == 4 || args.size() == 7) && args[0] == "migrate") {
      return cmd_migrate(args);
    }
    if (args.size() == 3 && args[0] == "diff") {
      return cmd_diff(args[1], args[2]);
    }
    if (args.size() == 2 && args[0] == "verify-chain") {
      return cmd_verify_chain(args[1]);
    }
    if (args.size() == 3 && args[0] == "salvage") {
      return cmd_salvage(args[1], args[2]);
    }
    if (args.size() == 2 && args[0] == "fleet-info") {
      return cmd_fleet_info(args[1]);
    }
  } catch (const CheckFailure& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
