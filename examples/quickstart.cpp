// Quickstart: simulate an enclave application with and without DFP
// preloading in ~40 lines.
//
//   $ ./quickstart
//
// Builds a small synthetic application (a sequential scan whose working set
// is twice the usable EPC), replays it through the simulated SGX paging
// substrate, and prints what the fault-history-based preloader buys.
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "core/simulator.h"
#include "trace/generators.h"

using namespace sgxpl;

int main() {
  // 1. Describe the application as a page-access trace: 64 MiB scanned
  //    twice, ~4k compute cycles between page visits.
  const PageNum pages = bytes_to_pages(64ull << 20);
  trace::Trace app("quickstart", pages + 8);
  Rng rng(1234);
  const trace::GapModel gap{.mean = 4'000, .jitter_pct = 0.2};
  trace::seq_scan(app, rng, trace::Region{0, pages}, /*site=*/1, gap);
  trace::seq_scan(app, rng, trace::Region{0, pages}, /*site=*/1, gap);

  // 2. Configure the platform: the paper's cost model with a 32 MiB EPC so
  //    the working set overflows it.
  core::SimConfig cfg = core::paper_platform();
  cfg.enclave.epc_pages = bytes_to_pages(32ull << 20);

  // 3. Run the baseline (vanilla SGX paging) and DFP.
  const core::Metrics baseline = core::simulate(app, cfg);
  cfg.scheme = core::Scheme::kDfpStop;
  const core::Metrics dfp = core::simulate(app, cfg);

  std::cout << "baseline: " << baseline.total_cycles << " cycles, "
            << baseline.enclave_faults << " enclave faults\n";
  std::cout << "DFP:      " << dfp.total_cycles << " cycles, "
            << dfp.enclave_faults << " faults ("
            << dfp.driver.fault_wait_hits
            << " satisfied by in-flight preloads, "
            << dfp.driver.preloads_completed << " pages preloaded)\n";
  std::cout << "improvement: "
            << TextTable::pct(dfp.improvement_over(baseline)) << '\n';
  return 0;
}
