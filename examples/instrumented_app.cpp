// The paper's Fig. 5, end to end: a function whose two memory accesses —
// `array[st]` (data-dependent index) and `result_map[key]` (hash map) —
// fault constantly, get discovered by profiling, instrumented with
// BIT_MAP_CHECK + page_loadin_function, and sped up.
//
// Here the "program" is its page-access trace: site 1 = the sequential
// walk over `case_`, site 2 = `array[st]`, site 3 = `result_map[key]`.
//
//   $ ./instrumented_app
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "core/simulator.h"
#include "sip/instrumenter.h"
#include "sip/profiler.h"
#include "trace/generators.h"

using namespace sgxpl;

namespace {

/// Build the trace of Fig. 5's solution(): for each loop iteration, one
/// sequential read of case_[i], one data-dependent read of array[st], one
/// hash-distributed update of result_map[key].
trace::Trace make_solution_trace(std::uint64_t iterations, std::uint64_t seed) {
  const PageNum case_pages = 2'000;    // case_: scanned sequentially
  const PageNum array_pages = 30'000;  // array: indexed by tempsum+case_[i]
  const PageNum map_pages = 30'000;    // result_map: hash-distributed
  trace::Trace t("fig5-solution", case_pages + array_pages + map_pages + 8);
  Rng rng(seed);
  const trace::GapModel gap{.mean = 6'000, .jitter_pct = 0.2};
  PageNum case_cursor = 0;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    // case_[i]: sequential (Class 2 — left to DFP).
    t.append({.page = case_cursor / 512 % case_pages,
              .site = 1,
              .gap = gap.sample(rng)});
    ++case_cursor;
    // array[st]: the index mixes loop state with input data — irregular.
    t.append({.page = case_pages + rng.bounded(array_pages),
              .site = 2,
              .gap = gap.sample(rng)});
    // result_map[key]: hash of a data value — irregular.
    t.append({.page = case_pages + array_pages + rng.bounded(map_pages),
              .site = 3,
              .gap = gap.sample(rng)});
  }
  return t;
}

}  // namespace

int main() {
  // --- Profiling run (the PGO step, smaller input). ---
  const auto profile_trace = make_solution_trace(30'000, /*seed=*/7);
  const auto profile = sip::profile_trace(profile_trace);

  TextTable prof({"site", "expression", "class1", "class2", "class3",
                  "irregular ratio", "instrumented?"});
  const char* exprs[] = {"", "case_[i]", "array[st]", "result_map[key]"};
  const auto plan = sip::build_plan(profile);
  for (SiteId site = 1; site <= 3; ++site) {
    const auto* c = profile.find(site);
    prof.add_row({std::to_string(site), exprs[site], std::to_string(c->class1),
                  std::to_string(c->class2), std::to_string(c->class3),
                  TextTable::pct(c->irregular_ratio()),
                  plan.instrumented(site) ? "yes" : "no"});
  }
  std::cout << "Profiling (paper Fig. 5: the two irregular accesses are "
               "found, the sequential one is left to DFP):\n"
            << prof.render() << '\n';

  // --- Performance run on a different input. ---
  const auto run_trace = make_solution_trace(100'000, /*seed=*/42);
  core::SimConfig cfg = core::paper_platform();
  cfg.enclave.epc_pages = 12'288;  // 48 MiB: the maps overflow it

  const auto baseline = core::simulate(run_trace, cfg);
  cfg.scheme = core::Scheme::kSip;
  const auto sip = core::simulate(run_trace, cfg, &plan);
  cfg.scheme = core::Scheme::kHybrid;
  const auto hybrid = core::simulate(run_trace, cfg, &plan);

  TextTable res({"scheme", "cycles", "faults", "improvement"});
  res.add_row({"baseline", std::to_string(baseline.total_cycles),
               std::to_string(baseline.enclave_faults), "-"});
  res.add_row({"SIP", std::to_string(sip.total_cycles),
               std::to_string(sip.enclave_faults),
               TextTable::pct(sip.improvement_over(baseline))});
  res.add_row({"SIP+DFP", std::to_string(hybrid.total_cycles),
               std::to_string(hybrid.enclave_faults),
               TextTable::pct(hybrid.improvement_over(baseline))});
  std::cout << res.render();
  std::cout << "\nThe notifications convert the array/map faults "
               "(page_loadin instead of AEX+ELDU+ERESUME);\nDFP covers the "
               "sequential case_[i] walk in the hybrid.\n";
  return 0;
}
