// The full SIP compile-and-run pipeline on the vision applications
// (paper §5.3): profile on one sample image, instrument, measure on a
// different image — then check whether DFP or SIP is the right scheme for
// each application, as the paper concludes (SIFT -> DFP, MSER -> SIP).
//
//   $ ./vision_pipeline [scale]
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "core/simulator.h"
#include "sip/pipeline.h"
#include "trace/workloads.h"

using namespace sgxpl;

namespace {

void run_app(const char* name, double scale) {
  const auto* w = trace::find_workload(name);
  auto cfg = core::paper_platform();
  cfg.enclave.epc_pages = static_cast<PageNum>(
      static_cast<double>(cfg.enclave.epc_pages) * scale);

  std::cout << "== " << name << " ==\n";

  // --- Compile step: profile the sample image, classify each source site,
  // decide instrumentation (threshold 5%). ---
  const auto compiled =
      sip::compile_workload(*w, cfg.sip, trace::train_params(0.35 * scale));
  std::uint64_t c1 = 0;
  std::uint64_t c2 = 0;
  std::uint64_t c3 = 0;
  for (const auto& [site, counters] : compiled.profile.sites()) {
    c1 += counters.class1;
    c2 += counters.class2;
    c3 += counters.class3;
  }
  std::cout << "profile: " << compiled.profile.sites().size() << " sites, "
            << "class1=" << c1 << " class2=" << c2 << " class3=" << c3
            << " -> " << compiled.plan.points()
            << " instrumentation points\n";

  // --- Measurement on a different input image. ---
  const auto ref = w->make(trace::ref_params(scale));
  const auto baseline = core::simulate(ref, cfg);

  auto dfp_cfg = cfg;
  dfp_cfg.scheme = core::Scheme::kDfpStop;
  const auto dfp = core::simulate(ref, dfp_cfg);

  auto sip_cfg = cfg;
  sip_cfg.scheme = core::Scheme::kSip;
  const auto sip = core::simulate(ref, sip_cfg, &compiled.plan);

  TextTable tbl({"scheme", "cycles", "improvement"});
  tbl.add_row({"baseline", std::to_string(baseline.total_cycles), "-"});
  tbl.add_row({"DFP", std::to_string(dfp.total_cycles),
               TextTable::pct(dfp.improvement_over(baseline))});
  tbl.add_row({"SIP", std::to_string(sip.total_cycles),
               TextTable::pct(sip.improvement_over(baseline))});
  std::cout << tbl.render();

  const bool dfp_wins = dfp.total_cycles < sip.total_cycles;
  std::cout << "-> " << (dfp_wins ? "DFP" : "SIP") << " is the right scheme"
            << " for " << name << " (paper: SIFT->DFP, MSER->SIP)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  run_app("SIFT", scale);
  run_app("MSER", scale);
  return 0;
}
