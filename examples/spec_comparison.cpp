// Compare every preloading scheme on one of the built-in workload models.
//
//   $ ./spec_comparison deepsjeng [scale]
//   $ ./spec_comparison --list
//
// This is the command-line face of the experiment harness: it compiles the
// SIP plan from the workload's train input (when the workload supports
// SIP), runs baseline / DFP / DFP-stop / SIP / hybrid on the ref input,
// and prints the paper-style normalized comparison.
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/experiment.h"
#include "trace/workloads.h"

using namespace sgxpl;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "deepsjeng";
  if (name == "--list") {
    std::cout << "available workloads:\n";
    for (const auto& w : trace::all_workloads()) {
      std::cout << "  " << w.info.name << " — " << w.info.description << '\n';
    }
    return 0;
  }
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;
  const auto* w = trace::find_workload(name);
  if (w == nullptr) {
    std::cerr << "unknown workload '" << name
              << "' (try --list for the registry)\n";
    return 1;
  }

  auto cfg = core::paper_platform();
  cfg.enclave.epc_pages = static_cast<PageNum>(
      static_cast<double>(cfg.enclave.epc_pages) * scale);
  const core::ExperimentOptions opts{.scale = scale,
                                     .train_scale = 0.35 * scale};
  const auto c = core::compare_schemes(
      *w,
      {core::Scheme::kDfp, core::Scheme::kDfpStop, core::Scheme::kSip,
       core::Scheme::kHybrid},
      cfg, opts);

  std::cout << name << " (" << trace::to_string(w->info.category) << ", "
            << trace::to_string(w->info.language) << ")\n"
            << "baseline: " << c.baseline.total_cycles << " cycles, "
            << c.baseline.enclave_faults << " faults";
  if (c.sip_points > 0) {
    std::cout << "; SIP instrumented " << c.sip_points << " sites";
  }
  std::cout << "\n\n";

  TextTable tbl({"scheme", "normalized time", "improvement", "faults",
                 "preloads used/total"});
  for (const auto& r : c.schemes) {
    const auto& m = r.metrics;
    tbl.add_row({core::to_string(r.scheme), TextTable::fmt(r.normalized, 3),
                 TextTable::pct(r.improvement),
                 std::to_string(m.enclave_faults),
                 std::to_string(m.driver.preloads_used) + "/" +
                     std::to_string(m.driver.preloads_completed +
                                    m.driver.sip_loads)});
  }
  std::cout << tbl.render();
  return 0;
}
