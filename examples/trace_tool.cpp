// Trace tooling: generate, inspect, and replay page-access traces from the
// command line — the glue a user needs to run their own traces through the
// simulator instead of the built-in workload models.
//
//   $ ./trace_tool gen <workload> <out.trace> [scale] [seed]
//   $ ./trace_tool info <file.trace>
//   $ ./trace_tool replay <file.trace> [scheme] [epc_mib]
//   $ ./trace_tool trace <workload> <out.json> [scheme] [scale]
//
// replay schemes: baseline dfp dfp-stop (SIP needs a plan, which is tied
// to the workload registry). `trace` works from the registry, so it also
// accepts sip and hybrid: it compiles the SIP plan on the train input,
// runs the ref input, and writes a Chrome/Perfetto trace of the run —
// open the JSON at https://ui.perfetto.dev. See docs/OBSERVABILITY.md.
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "common/table.h"
#include "core/simulator.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/time_series.h"
#include "obs/trace_export.h"
#include "sip/pipeline.h"
#include "trace/trace_io.h"
#include "trace/workloads.h"

using namespace sgxpl;

namespace {

std::optional<core::Scheme> parse_scheme(const std::string& name) {
  if (name == "baseline") return core::Scheme::kBaseline;
  if (name == "dfp") return core::Scheme::kDfp;
  if (name == "dfp-stop") return core::Scheme::kDfpStop;
  if (name == "sip") return core::Scheme::kSip;
  if (name == "hybrid") return core::Scheme::kHybrid;
  return std::nullopt;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 4) {
    std::cerr << "usage: trace_tool gen <workload> <out.trace> [scale] [seed]\n";
    return 1;
  }
  const auto* w = trace::find_workload(argv[2]);
  if (w == nullptr) {
    std::cerr << "unknown workload '" << argv[2] << "'\n";
    return 1;
  }
  trace::WorkloadParams params;
  params.scale = argc > 4 ? std::atof(argv[4]) : 0.5;
  params.seed = argc > 5 ? static_cast<std::uint64_t>(std::atoll(argv[5])) : 42;
  const auto t = w->make(params);
  trace::save_trace(argv[3], t);
  std::cout << "wrote " << t.size() << " accesses ("
            << t.elrange_pages() << "-page ELRANGE) to " << argv[3] << '\n';
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: trace_tool info <file.trace>\n";
    return 1;
  }
  const auto t = trace::load_trace(argv[2]);
  const auto s = t.stats();
  TextTable tbl({"property", "value"});
  tbl.add_row({"name", t.name()});
  tbl.add_row({"accesses", std::to_string(s.accesses)});
  tbl.add_row({"ELRANGE (pages)", std::to_string(t.elrange_pages())});
  tbl.add_row({"footprint (pages)", std::to_string(s.footprint_pages)});
  tbl.add_row({"footprint (MiB)",
               TextTable::fmt(static_cast<double>(pages_to_bytes(
                                  s.footprint_pages)) / (1 << 20), 1)});
  tbl.add_row({"distinct sites", std::to_string(s.sites)});
  tbl.add_row({"compute cycles", std::to_string(s.compute_cycles)});
  tbl.add_row({"sequential fraction", TextTable::fmt(s.sequential_fraction, 3)});
  tbl.add_row({"recent-reuse fraction",
               TextTable::fmt(s.recent_reuse_fraction, 3)});
  std::cout << tbl.render();
  return 0;
}

int cmd_replay(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: trace_tool replay <file.trace> [scheme] [epc_mib]\n";
    return 1;
  }
  const auto t = trace::load_trace(argv[2]);
  const std::string scheme_name = argc > 3 ? argv[3] : "dfp-stop";
  core::Scheme scheme = core::Scheme::kDfpStop;
  if (scheme_name == "baseline") {
    scheme = core::Scheme::kBaseline;
  } else if (scheme_name == "dfp") {
    scheme = core::Scheme::kDfp;
  } else if (scheme_name == "dfp-stop") {
    scheme = core::Scheme::kDfpStop;
  } else {
    std::cerr << "unknown scheme '" << scheme_name
              << "' (baseline|dfp|dfp-stop)\n";
    return 1;
  }
  auto cfg = core::paper_platform(scheme);
  if (argc > 4) {
    cfg.enclave.epc_pages =
        bytes_to_pages(static_cast<std::uint64_t>(std::atoll(argv[4])) << 20);
  }

  auto base_cfg = cfg;
  base_cfg.scheme = core::Scheme::kBaseline;
  const auto base = core::simulate(t, base_cfg);
  const auto run = core::simulate(t, cfg);

  TextTable tbl({"run", "cycles", "faults", "improvement"});
  tbl.add_row({"baseline", std::to_string(base.total_cycles),
               std::to_string(base.enclave_faults), "-"});
  tbl.add_row({core::to_string(scheme), std::to_string(run.total_cycles),
               std::to_string(run.enclave_faults),
               TextTable::pct(run.improvement_over(base))});
  std::cout << tbl.render();
  return 0;
}

int cmd_trace(int argc, char** argv) {
  if (argc < 4) {
    std::cerr << "usage: trace_tool trace <workload> <out.json> "
                 "[scheme] [scale]\n";
    return 1;
  }
  const auto* w = trace::find_workload(argv[2]);
  if (w == nullptr) {
    std::cerr << "unknown workload '" << argv[2] << "'\n";
    return 1;
  }
  const std::string out_path = argv[3];
  const std::string scheme_name = argc > 4 ? argv[4] : "dfp-stop";
  const auto scheme = parse_scheme(scheme_name);
  if (!scheme) {
    std::cerr << "unknown scheme '" << scheme_name
              << "' (baseline|dfp|dfp-stop|sip|hybrid)\n";
    return 1;
  }
  const double scale = argc > 5 ? std::atof(argv[5]) : 0.25;

  auto cfg = core::paper_platform(*scheme);
  obs::MetricsRegistry registry;
  obs::TimeSeriesSet series;
  obs::EventLog log(1u << 16);
  cfg.registry = &registry;
  cfg.timeseries = &series;
  cfg.event_log = &log;

  sip::InstrumentationPlan plan;
  if (cfg.uses_sip()) {
    auto pipeline = sip::compile_workload(*w, cfg.sip,
                                          trace::train_params(), &registry);
    plan = std::move(pipeline.plan);
    std::cout << "compiled SIP plan: " << plan.points()
              << " instrumentation points\n";
  }

  const auto t = w->make(trace::ref_params(scale));
  const auto m = core::simulate(t, cfg, cfg.uses_sip() ? &plan : nullptr);

  obs::TraceExporter exporter;
  exporter.add_events(log, /*pid=*/0, w->info.name);
  exporter.add_time_series(series);
  std::string err;
  if (!exporter.write(out_path, &err)) {
    std::cerr << "failed to write " << out_path << ": " << err << '\n';
    return 1;
  }
  std::cout << core::to_string(*scheme) << " on " << w->info.name
            << " (scale " << scale << "): " << m.total_cycles << " cycles, "
            << m.enclave_faults << " faults\n"
            << "wrote " << exporter.size() << " trace events to " << out_path
            << (log.dropped() > 0
                    ? "\n(ring buffer dropped " +
                          std::to_string(log.dropped()) +
                          " oldest events; only the tail is in the trace)"
                    : "")
            << "\nopen it at https://ui.perfetto.dev or chrome://tracing\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "gen") {
    return cmd_gen(argc, argv);
  }
  if (cmd == "info") {
    return cmd_info(argc, argv);
  }
  if (cmd == "replay") {
    return cmd_replay(argc, argv);
  }
  if (cmd == "trace") {
    return cmd_trace(argc, argv);
  }
  std::cerr << "usage: trace_tool <gen|info|replay|trace> ...\n";
  return 1;
}
