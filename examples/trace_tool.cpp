// Trace tooling: generate, inspect, and replay page-access traces from the
// command line — the glue a user needs to run their own traces through the
// simulator instead of the built-in workload models.
//
//   $ ./trace_tool gen <workload> <out.trace> [scale] [seed]
//   $ ./trace_tool info <file.trace>
//   $ ./trace_tool replay <file.trace> [scheme] [epc_mib]
//
// Schemes: baseline dfp dfp-stop (SIP needs a plan, which is tied to the
// workload registry — use spec_comparison for that).
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/simulator.h"
#include "trace/trace_io.h"
#include "trace/workloads.h"

using namespace sgxpl;

namespace {

int cmd_gen(int argc, char** argv) {
  if (argc < 4) {
    std::cerr << "usage: trace_tool gen <workload> <out.trace> [scale] [seed]\n";
    return 1;
  }
  const auto* w = trace::find_workload(argv[2]);
  if (w == nullptr) {
    std::cerr << "unknown workload '" << argv[2] << "'\n";
    return 1;
  }
  trace::WorkloadParams params;
  params.scale = argc > 4 ? std::atof(argv[4]) : 0.5;
  params.seed = argc > 5 ? static_cast<std::uint64_t>(std::atoll(argv[5])) : 42;
  const auto t = w->make(params);
  trace::save_trace(argv[3], t);
  std::cout << "wrote " << t.size() << " accesses ("
            << t.elrange_pages() << "-page ELRANGE) to " << argv[3] << '\n';
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: trace_tool info <file.trace>\n";
    return 1;
  }
  const auto t = trace::load_trace(argv[2]);
  const auto s = t.stats();
  TextTable tbl({"property", "value"});
  tbl.add_row({"name", t.name()});
  tbl.add_row({"accesses", std::to_string(s.accesses)});
  tbl.add_row({"ELRANGE (pages)", std::to_string(t.elrange_pages())});
  tbl.add_row({"footprint (pages)", std::to_string(s.footprint_pages)});
  tbl.add_row({"footprint (MiB)",
               TextTable::fmt(static_cast<double>(pages_to_bytes(
                                  s.footprint_pages)) / (1 << 20), 1)});
  tbl.add_row({"distinct sites", std::to_string(s.sites)});
  tbl.add_row({"compute cycles", std::to_string(s.compute_cycles)});
  tbl.add_row({"sequential fraction", TextTable::fmt(s.sequential_fraction, 3)});
  tbl.add_row({"recent-reuse fraction",
               TextTable::fmt(s.recent_reuse_fraction, 3)});
  std::cout << tbl.render();
  return 0;
}

int cmd_replay(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: trace_tool replay <file.trace> [scheme] [epc_mib]\n";
    return 1;
  }
  const auto t = trace::load_trace(argv[2]);
  const std::string scheme_name = argc > 3 ? argv[3] : "dfp-stop";
  core::Scheme scheme = core::Scheme::kDfpStop;
  if (scheme_name == "baseline") {
    scheme = core::Scheme::kBaseline;
  } else if (scheme_name == "dfp") {
    scheme = core::Scheme::kDfp;
  } else if (scheme_name == "dfp-stop") {
    scheme = core::Scheme::kDfpStop;
  } else {
    std::cerr << "unknown scheme '" << scheme_name
              << "' (baseline|dfp|dfp-stop)\n";
    return 1;
  }
  auto cfg = core::paper_platform(scheme);
  if (argc > 4) {
    cfg.enclave.epc_pages =
        bytes_to_pages(static_cast<std::uint64_t>(std::atoll(argv[4])) << 20);
  }

  auto base_cfg = cfg;
  base_cfg.scheme = core::Scheme::kBaseline;
  const auto base = core::simulate(t, base_cfg);
  const auto run = core::simulate(t, cfg);

  TextTable tbl({"run", "cycles", "faults", "improvement"});
  tbl.add_row({"baseline", std::to_string(base.total_cycles),
               std::to_string(base.enclave_faults), "-"});
  tbl.add_row({core::to_string(scheme), std::to_string(run.total_cycles),
               std::to_string(run.enclave_faults),
               TextTable::pct(run.improvement_over(base))});
  std::cout << tbl.render();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "gen") {
    return cmd_gen(argc, argv);
  }
  if (cmd == "info") {
    return cmd_info(argc, argv);
  }
  if (cmd == "replay") {
    return cmd_replay(argc, argv);
  }
  std::cerr << "usage: trace_tool <gen|info|replay> ...\n";
  return 1;
}
