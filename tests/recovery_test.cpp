// Kill-restore differential tests: a run checkpointed at an adversarial
// access boundary, destroyed, and restored into a fresh run must finish with
// Metrics bit-identical to the uninterrupted run — for every scheme and under
// every chaos fault class. Also covers the restore gates: snapshots from a
// different run are refused, corrupt snapshots are rejected with a diagnostic
// CheckFailure, and the file-based --checkpoint/--resume path round-trips.
#include "snapshot/snapshotter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/multi_enclave.h"
#include "core/simulator.h"
#include "inject/chaos_plan.h"
#include "snapshot/chain.h"
#include "trace/generators.h"

namespace sgxpl {
namespace {

using core::Scheme;
using core::SimConfig;
using core::SimulationRun;

/// Sequential scan into irregular instrumented accesses: forms DFP streams,
/// overflows the EPC (evictions), and — with the plan below — drives SIP.
trace::Trace mixed_trace(std::uint64_t seed = 4) {
  trace::Trace t("mixed", 4'096);
  Rng rng(seed);
  const trace::GapModel gap{.mean = 2'000, .jitter_pct = 0};
  trace::seq_scan(t, rng, trace::Region{0, 512}, 1, gap);
  trace::random_access(t, rng, trace::Region{600, 3'000}, 600, 10, 4, gap);
  return t;
}

sip::InstrumentationPlan irregular_sites() {
  sip::InstrumentationPlan plan;
  for (SiteId s = 10; s < 14; ++s) {
    plan.add_site(s);
  }
  return plan;
}

SimConfig small_config(Scheme scheme, PageNum epc = 96) {
  SimConfig cfg;
  cfg.scheme = scheme;
  cfg.enclave.epc_pages = epc;
  cfg.dfp.predictor.stream_list_len = 8;
  cfg.dfp.predictor.load_length = 4;
  cfg.validate = true;
  return cfg;
}

core::Metrics run_uninterrupted(const SimConfig& cfg, const trace::Trace& t,
                                const sip::InstrumentationPlan* plan) {
  SimulationRun run(cfg, t, plan);
  return run.run_to_end();
}

/// Step a victim run to `cut`, snapshot it, destroy it (the "kill"), then
/// restore the snapshot into a fresh run and finish that one.
core::Metrics run_killed_at(const SimConfig& cfg, const trace::Trace& t,
                            const sip::InstrumentationPlan* plan,
                            std::uint64_t cut) {
  std::vector<std::uint8_t> snap;
  {
    SimulationRun victim(cfg, t, plan);
    while (!victim.done() && victim.cursor() < cut) {
      victim.step();
    }
    snap = snapshot::capture(victim);
  }
  SimulationRun resumed(cfg, t, plan);
  snapshot::restore(resumed, snap);
  return resumed.run_to_end();
}

void expect_bit_identical(const core::Metrics& want, const core::Metrics& got,
                          const std::string& context) {
  const auto d = snapshot::diff_metrics(want, got);
  EXPECT_TRUE(d.identical) << context << ": " << d.first_divergence;
  EXPECT_EQ(want.total_cycles, got.total_cycles) << context;
}

TEST(KillRestore, BitIdenticalForEverySchemeAndCutPoint) {
  const auto t = mixed_trace();
  const auto plan = irregular_sites();
  const std::uint64_t n = t.size();
  for (const Scheme scheme :
       {Scheme::kBaseline, Scheme::kDfpStop, Scheme::kHybrid}) {
    const auto cfg = small_config(scheme);
    const auto want = run_uninterrupted(cfg, t, &plan);
    for (const std::uint64_t cut :
         {std::uint64_t{0}, std::uint64_t{1}, n / 3, n / 2, n - 1}) {
      const auto got = run_killed_at(cfg, t, &plan, cut);
      expect_bit_identical(want, got,
                           std::string(to_string(scheme)) + " cut=" +
                               std::to_string(cut));
    }
  }
}

TEST(KillRestore, BitIdenticalUnderEveryChaosClass) {
  const auto t = mixed_trace();
  const std::uint64_t n = t.size();
  for (const inject::FaultKind k : inject::all_fault_kinds()) {
    auto cfg = small_config(Scheme::kDfpStop);
    cfg.chaos.seed = 99;
    cfg.chaos.enable(k);
    const auto want = run_uninterrupted(cfg, t, nullptr);
    const auto got = run_killed_at(cfg, t, nullptr, n / 2);
    expect_bit_identical(want, got, to_string(k));
  }
}

TEST(KillRestore, AllFaultClassesAtOnceUnderHybrid) {
  const auto t = mixed_trace();
  const auto plan = irregular_sites();
  auto cfg = small_config(Scheme::kHybrid);
  cfg.chaos = inject::ChaosPlan::all(1234);
  const auto want = run_uninterrupted(cfg, t, &plan);
  const std::uint64_t n = t.size();
  for (const std::uint64_t cut : {std::uint64_t{1}, n / 3, n - 1}) {
    expect_bit_identical(want, run_killed_at(cfg, t, &plan, cut),
                         "chaos cut=" + std::to_string(cut));
  }
}

TEST(KillRestore, EveryCutPointOnASmallDfpRun) {
  // Exhaustive cut sweep: catches in-flight channel ops, mid-preload-batch
  // and scan-cursor states that coarse cut points could step over.
  trace::Trace t("small", 512);
  Rng rng(7);
  trace::seq_scan(t, rng, trace::Region{0, 256}, 1,
                  trace::GapModel{.mean = 2'000, .jitter_pct = 0});
  const auto cfg = small_config(Scheme::kDfpStop, 32);
  const auto want = run_uninterrupted(cfg, t, nullptr);
  for (std::uint64_t cut = 0; cut <= t.size(); ++cut) {
    const auto got = run_killed_at(cfg, t, nullptr, cut);
    const auto d = snapshot::diff_metrics(want, got);
    ASSERT_TRUE(d.identical) << "cut=" << cut << ": " << d.first_divergence;
  }
}

TEST(KillRestore, ResumedRunStateMatchesTheVictimExactly) {
  // Not just the final metrics: the restored run's complete serialized state
  // matches the victim's, and the two stay in lockstep stepping forward.
  const auto t = mixed_trace();
  const auto cfg = small_config(Scheme::kDfpStop);
  SimulationRun a(cfg, t, nullptr);
  while (!a.done() && a.cursor() < t.size() / 2) {
    a.step();
  }
  SimulationRun b(cfg, t, nullptr);
  snapshot::restore(b, snapshot::capture(a));
  const auto d = snapshot::diff_runs(a, b);
  EXPECT_TRUE(d.identical) << d.first_divergence;
  for (int i = 0; i < 200 && !a.done(); ++i) {
    a.step();
    b.step();
  }
  EXPECT_EQ(a.cursor(), b.cursor());
  EXPECT_EQ(a.now(), b.now());
  const auto d2 = snapshot::diff_runs(a, b);
  EXPECT_TRUE(d2.identical) << d2.first_divergence;
}

TEST(KillRestore, RestoreIsRefusedForADifferentRun) {
  const auto t = mixed_trace();
  const auto cfg = small_config(Scheme::kDfpStop);
  SimulationRun victim(cfg, t, nullptr);
  while (victim.cursor() < 64) {
    victim.step();
  }
  const auto snap = snapshot::capture(victim);
  {
    SimulationRun other(small_config(Scheme::kBaseline), t, nullptr);
    EXPECT_FALSE(other.restore_if_compatible(snap));
    EXPECT_EQ(other.cursor(), 0u);  // left untouched
    try {
      other.load_bytes(snap);
      FAIL() << "cross-scheme restore accepted";
    } catch (const CheckFailure& e) {
      EXPECT_NE(std::string(e.what()).find("scheme"), std::string::npos)
          << e.what();
    }
  }
  {
    SimulationRun other(small_config(Scheme::kDfpStop, 48), t, nullptr);
    EXPECT_FALSE(other.restore_if_compatible(snap));  // EPC geometry differs
  }
  {
    auto chaotic = cfg;
    chaotic.chaos = inject::ChaosPlan::all(5);
    SimulationRun other(chaotic, t, nullptr);
    EXPECT_FALSE(other.restore_if_compatible(snap));  // chaos plan differs
  }
  {
    SimulationRun same(cfg, t, nullptr);
    EXPECT_TRUE(same.restore_if_compatible(snap));
    EXPECT_EQ(same.cursor(), 64u);
  }
}

TEST(KillRestore, CorruptSnapshotsAreRejectedNotApplied) {
  const auto t = mixed_trace();
  const auto cfg = small_config(Scheme::kDfpStop);
  SimulationRun victim(cfg, t, nullptr);
  while (victim.cursor() < 100) {
    victim.step();
  }
  const auto snap = snapshot::capture(victim);
  auto flipped = snap;
  flipped[flipped.size() - 3] ^= 0x40;  // payload bit flip -> CRC mismatch
  SimulationRun fresh(cfg, t, nullptr);
  EXPECT_THROW(fresh.load_bytes(flipped), CheckFailure);
  auto truncated = snap;
  truncated.resize(truncated.size() / 2);
  SimulationRun fresh2(cfg, t, nullptr);
  EXPECT_THROW(fresh2.load_bytes(truncated), CheckFailure);
  // Corrupt is not "a different run": the gated restore throws too.
  SimulationRun fresh3(cfg, t, nullptr);
  EXPECT_THROW(fresh3.restore_if_compatible(truncated), CheckFailure);
}

TEST(KillRestore, NativeSchemeIsNotSteppable) {
  const auto t = mixed_trace();
  EXPECT_THROW(SimulationRun(small_config(Scheme::kNative), t, nullptr),
               CheckFailure);
}

TEST(KillRestore, CaptureToFileRoundTrips) {
  const auto t = mixed_trace();
  const auto cfg = small_config(Scheme::kDfpStop);
  SimulationRun victim(cfg, t, nullptr);
  while (victim.cursor() < 200) {
    victim.step();
  }
  const std::string path = testing::TempDir() + "sgxpl-capture.snap";
  snapshot::capture_to_file(victim, path);
  SimulationRun fresh(cfg, t, nullptr);
  ASSERT_TRUE(snapshot::restore_from_file(fresh, path));
  EXPECT_EQ(fresh.cursor(), 200u);
  const auto d = snapshot::diff_runs(victim, fresh);
  EXPECT_TRUE(d.identical) << d.first_divergence;
  std::remove(path.c_str());
}

TEST(KillRestore, RestoreFromAbsentFileReturnsFalse) {
  const auto t = mixed_trace();
  SimulationRun run(small_config(Scheme::kBaseline), t, nullptr);
  EXPECT_FALSE(snapshot::restore_from_file(
      run, testing::TempDir() + "no-such-snapshot.snap"));
  EXPECT_EQ(run.cursor(), 0u);
}

TEST(KillRestore, FileCheckpointResumeMatchesUninterrupted) {
  // The bench-facing path: SimConfig::checkpoint drives periodic snapshot
  // writes, and resume_path picks the run back up from the last one.
  const auto t = mixed_trace();
  const auto cfg = small_config(Scheme::kDfpStop);
  const auto want = core::simulate(t, cfg);
  const std::string path = testing::TempDir() + "sgxpl-recovery-ck.snap";
  std::remove(path.c_str());
  auto writing = cfg;
  writing.checkpoint.path = path;
  writing.checkpoint.every_accesses = 97;
  const auto wrote = core::simulate(t, writing);
  expect_bit_identical(want, wrote, "checkpointing must not perturb the run");
  ASSERT_TRUE(snapshot::file_readable(path));
  auto resuming = cfg;
  resuming.checkpoint.resume_path = path;
  const auto resumed = core::simulate(t, resuming);
  expect_bit_identical(want, resumed, "resume from last on-disk snapshot");
  std::remove(path.c_str());
}

TEST(KillRestore, ForeignOrAbsentResumeFileStartsTheRunFresh) {
  // Benches that simulate several schemes share one --checkpoint file, so
  // every run but the snapshotted one sees a foreign snapshot on --resume.
  // simulate() must skip it (meta-gated) and run from the start, not abort.
  const auto t = mixed_trace();
  const auto want = core::simulate(t, small_config(Scheme::kBaseline));
  const std::string path = testing::TempDir() + "sgxpl-foreign-ck.snap";
  std::remove(path.c_str());
  {
    SimulationRun other(small_config(Scheme::kDfpStop), t, nullptr);
    for (int i = 0; i < 64; ++i) {
      other.step();
    }
    snapshot::capture_to_file(other, path);
  }
  auto resuming = small_config(Scheme::kBaseline);
  resuming.checkpoint.resume_path = path;
  const auto got = core::simulate(t, resuming);
  expect_bit_identical(want, got, "foreign snapshot must be skipped");
  auto absent = small_config(Scheme::kBaseline);
  absent.checkpoint.resume_path = testing::TempDir() + "never-written.snap";
  const auto fresh = core::simulate(t, absent);
  expect_bit_identical(want, fresh, "absent resume file must be skipped");
  // Corruption is still an error, not a silent fresh start.
  auto bytes = snapshot::read_file(path);
  bytes[bytes.size() / 2] ^= 0x10;
  snapshot::write_file_atomic(path, bytes);
  auto corrupt = small_config(Scheme::kDfpStop);
  corrupt.checkpoint.resume_path = path;
  EXPECT_THROW(core::simulate(t, corrupt), CheckFailure);
  std::remove(path.c_str());
}

TEST(KillRestore, HardenedPagingPathResumesBitIdentically) {
  // The overload-hardened path carries extra live state across a kill:
  // lost-op retry queue, the retry-jitter Rng cursor, the completed-op-id
  // ring, per-tenant admission windows and ladder levels, and the bounded
  // channel's shed counters. Under drop+dup chaos all of it is exercised;
  // the resumed run must still finish bit-identical to the uninterrupted
  // one at every cut point.
  const auto t = mixed_trace();
  auto cfg = small_config(Scheme::kDfpStop);
  cfg.chaos.seed = 77;
  cfg.chaos.enable(inject::FaultKind::kDropCompletion);
  cfg.chaos.enable(inject::FaultKind::kDupCompletion);
  cfg.enclave.channel.max_queued = 12;
  cfg.enclave.channel.max_retries = 3;
  cfg.enclave.admission.enabled = true;
  const auto want = run_uninterrupted(cfg, t, nullptr);
  // The chaos plan really fed the retry machinery; otherwise this test
  // degenerates to the plain chaos sweep above.
  EXPECT_GT(want.driver.lost_completions + want.driver.duplicate_completions,
            0u);
  const std::uint64_t n = t.size();
  for (const std::uint64_t cut : {std::uint64_t{1}, n / 3, n / 2, n - 1}) {
    const auto got = run_killed_at(cfg, t, nullptr, cut);
    expect_bit_identical(want, got, "hardened cut=" + std::to_string(cut));
    EXPECT_EQ(want.driver.lost_completions, got.driver.lost_completions);
    EXPECT_EQ(want.driver.retries, got.driver.retries);
    EXPECT_EQ(want.driver.retries_resolved, got.driver.retries_resolved);
    EXPECT_EQ(want.driver.permanent_faults, got.driver.permanent_faults);
    EXPECT_EQ(want.driver.duplicate_completions,
              got.driver.duplicate_completions);
    EXPECT_EQ(want.driver.preloads_shed, got.driver.preloads_shed);
    EXPECT_EQ(want.driver.degrade_demotions, got.driver.degrade_demotions);
    EXPECT_EQ(want.driver.degrade_promotions, got.driver.degrade_promotions);
  }
}

TEST(KillRestore, HardenedConfigRefusesSeedSnapshots) {
  // Channel hardening is part of the snapshot contract: a snapshot taken
  // with the seed (unbounded, no-retry) channel must not restore into a
  // hardened run, whose extra state would silently start from zero.
  const auto t = mixed_trace();
  const auto cfg = small_config(Scheme::kDfpStop);
  SimulationRun victim(cfg, t, nullptr);
  while (victim.cursor() < 64) {
    victim.step();
  }
  const auto snap = snapshot::capture(victim);
  auto hardened = cfg;
  hardened.enclave.channel.max_queued = 12;
  hardened.enclave.channel.max_retries = 3;
  SimulationRun other(hardened, t, nullptr);
  EXPECT_FALSE(other.restore_if_compatible(snap));
  EXPECT_EQ(other.cursor(), 0u);
}

TEST(KillRestore, MultiEnclaveResumesBitIdentically) {
  const auto ta = mixed_trace(4);
  const auto tb = mixed_trace(5);
  const auto cfg = small_config(Scheme::kBaseline, 128);
  const std::vector<core::EnclaveApp> apps = {
      {.trace = &ta, .scheme = Scheme::kDfpStop},
      {.trace = &tb, .scheme = Scheme::kBaseline},
  };
  core::MultiEnclaveRun ref(cfg, apps);
  const auto want = ref.run_to_end();
  std::vector<std::uint8_t> snap;
  {
    core::MultiEnclaveRun victim(cfg, apps);
    const std::uint64_t cut = (ta.size() + tb.size()) / 2;
    while (!victim.done() && victim.steps() < cut) {
      victim.step();
    }
    snap = snapshot::capture(victim);
  }
  core::MultiEnclaveRun resumed(cfg, apps);
  snapshot::restore(resumed, snap);
  const auto got = resumed.run_to_end();
  EXPECT_EQ(want.makespan, got.makespan);
  ASSERT_EQ(want.per_enclave.size(), got.per_enclave.size());
  for (std::size_t i = 0; i < want.per_enclave.size(); ++i) {
    const auto d =
        snapshot::diff_metrics(want.per_enclave[i], got.per_enclave[i]);
    EXPECT_TRUE(d.identical) << "enclave " << i << ": " << d.first_divergence;
  }
  EXPECT_EQ(want.driver.faults, got.driver.faults);
  EXPECT_EQ(want.driver.evictions, got.driver.evictions);
}

TEST(KillRestore, MultiEnclaveRefusesForeignSnapshots) {
  const auto ta = mixed_trace(4);
  const auto tb = mixed_trace(5);
  const auto cfg = small_config(Scheme::kBaseline, 128);
  const std::vector<core::EnclaveApp> apps = {
      {.trace = &ta, .scheme = Scheme::kDfpStop},
      {.trace = &tb, .scheme = Scheme::kBaseline},
  };
  core::MultiEnclaveRun victim(cfg, apps);
  for (int i = 0; i < 100; ++i) {
    victim.step();
  }
  const auto snap = snapshot::capture(victim);
  // A single-enclave run must refuse a multi-enclave snapshot (and say why).
  SimulationRun single(small_config(Scheme::kDfpStop), ta, nullptr);
  EXPECT_FALSE(single.restore_if_compatible(snap));
  // A differently composed multi run must refuse it too.
  const std::vector<core::EnclaveApp> swapped = {
      {.trace = &ta, .scheme = Scheme::kBaseline},
      {.trace = &tb, .scheme = Scheme::kDfpStop},
  };
  core::MultiEnclaveRun other(cfg, swapped);
  EXPECT_FALSE(other.restore_if_compatible(snap));
}

TEST(KillRestore, ElasticMultiEnclaveResumesBitIdenticallyAtEveryCut) {
  // A long pressured tenant next to a short one that finishes early and
  // goes idle: the elastic controller shrinks the idle tenant and grows the
  // pressured one, so the cuts below land in the middle of live resizes —
  // quotas, window evidence, cooldowns and the grant cursor all in flight.
  const auto ta = mixed_trace(4);
  trace::Trace tb("short", 4'096);
  {
    Rng rng(5);
    trace::seq_scan(tb, rng, trace::Region{0, 192}, 1,
                    trace::GapModel{.mean = 2'000, .jitter_pct = 0});
  }
  auto cfg = small_config(Scheme::kBaseline, 128);
  cfg.enclave.elastic.enabled = true;
  cfg.enclave.elastic.floor_pages = 8;
  cfg.enclave.elastic.grow_streak = 1;
  cfg.enclave.elastic.idle_windows = 2;
  cfg.enclave.elastic.cooldown_windows = 2;
  const std::vector<core::EnclaveApp> apps = {
      {.trace = &ta, .scheme = Scheme::kDfpStop},
      {.trace = &tb, .scheme = Scheme::kBaseline},
  };
  core::MultiEnclaveRun ref(cfg, apps);
  const auto want = ref.run_to_end();
  // The controller really moved quotas in this run; otherwise the sweep
  // degenerates to the static multi-enclave test above.
  EXPECT_GT(want.elastic.grows + want.elastic.shrinks, 0u);
  const std::uint64_t n = ta.size() + tb.size();
  for (const std::uint64_t cut : {std::uint64_t{1}, n / 4, n / 2, n - 1}) {
    std::vector<std::uint8_t> snap;
    {
      core::MultiEnclaveRun victim(cfg, apps);
      while (!victim.done() && victim.steps() < cut) {
        victim.step();
      }
      snap = snapshot::capture(victim);
    }
    core::MultiEnclaveRun resumed(cfg, apps);
    snapshot::restore(resumed, snap);
    const auto got = resumed.run_to_end();
    EXPECT_EQ(want.makespan, got.makespan) << "cut=" << cut;
    ASSERT_EQ(want.per_enclave.size(), got.per_enclave.size());
    for (std::size_t i = 0; i < want.per_enclave.size(); ++i) {
      const auto d =
          snapshot::diff_metrics(want.per_enclave[i], got.per_enclave[i]);
      EXPECT_TRUE(d.identical)
          << "cut=" << cut << " enclave " << i << ": " << d.first_divergence;
    }
    EXPECT_EQ(want.elastic_quotas, got.elastic_quotas) << "cut=" << cut;
    EXPECT_EQ(want.elastic.grows, got.elastic.grows) << "cut=" << cut;
    EXPECT_EQ(want.elastic.shrinks, got.elastic.shrinks) << "cut=" << cut;
    EXPECT_EQ(want.elastic.quota_evictions, got.elastic.quota_evictions)
        << "cut=" << cut;
    EXPECT_EQ(want.driver.evictions, got.driver.evictions) << "cut=" << cut;
  }
}

TEST(KillRestore, ElasticConfigAndPlainConfigRefuseEachOthersSnapshots) {
  // The elastic geometry is part of the snapshot identity (overload spec):
  // a plain snapshot must not restore into an elastic run — whose quota
  // state would silently start from the initial split — and vice versa.
  const auto ta = mixed_trace(4);
  const auto tb = mixed_trace(5);
  const auto plain_cfg = small_config(Scheme::kBaseline, 128);
  auto elastic_cfg = plain_cfg;
  elastic_cfg.enclave.elastic.enabled = true;
  const std::vector<core::EnclaveApp> apps = {
      {.trace = &ta, .scheme = Scheme::kDfpStop},
      {.trace = &tb, .scheme = Scheme::kBaseline},
  };
  const auto snapshot_of = [&apps](const SimConfig& cfg) {
    core::MultiEnclaveRun run(cfg, apps);
    for (int i = 0; i < 200; ++i) {
      run.step();
    }
    return snapshot::capture(run);
  };
  const auto plain_snap = snapshot_of(plain_cfg);
  core::MultiEnclaveRun elastic_run(elastic_cfg, apps);
  EXPECT_FALSE(elastic_run.restore_if_compatible(plain_snap));
  const auto elastic_snap = snapshot_of(elastic_cfg);
  core::MultiEnclaveRun plain_run(plain_cfg, apps);
  EXPECT_FALSE(plain_run.restore_if_compatible(elastic_snap));
}

// --- per-enclave extraction -------------------------------------------------

TEST(Extraction, ExtractedTenantMatchesItsInSituState) {
  const auto ta = mixed_trace(4);
  const auto tb = mixed_trace(5);
  const auto cfg = small_config(Scheme::kBaseline, 128);
  const std::vector<core::EnclaveApp> apps = {
      {.trace = &ta, .scheme = Scheme::kDfpStop},
      {.trace = &tb, .scheme = Scheme::kBaseline},
  };
  core::MultiEnclaveRun run(cfg, apps);
  while (!run.done() && run.steps() < (ta.size() + tb.size()) / 2) {
    run.step();
  }
  const auto bytes = run.save_bytes();
  for (std::size_t i = 0; i < run.enclave_count(); ++i) {
    const auto frame = snapshot::extract_enclave(bytes, i);
    const snapshot::ExtractedEnclave e = snapshot::read_extracted(frame);
    EXPECT_EQ(e.index, i);
    EXPECT_EQ(e.scheme, core::to_string(apps[i].scheme));
    EXPECT_EQ(e.trace, apps[i].trace->name());
    EXPECT_EQ(e.has_dfp, apps[i].scheme == Scheme::kDfpStop);
    EXPECT_EQ(e.cursor, run.tenant_cursor(i));
    const auto d = snapshot::diff_metrics(e.metrics, run.tenant_metrics(i));
    EXPECT_TRUE(d.identical) << "enclave " << i << ": " << d.first_divergence;
    // Writer determinism: extracting the same tenant twice is byte-stable.
    EXPECT_EQ(frame, snapshot::extract_enclave(bytes, i));
  }
}

TEST(Extraction, NonExistentEnclaveIdIsRefused) {
  const auto ta = mixed_trace(4);
  const auto tb = mixed_trace(5);
  const auto cfg = small_config(Scheme::kBaseline, 128);
  const std::vector<core::EnclaveApp> apps = {
      {.trace = &ta, .scheme = Scheme::kDfpStop},
      {.trace = &tb, .scheme = Scheme::kBaseline},
  };
  core::MultiEnclaveRun run(cfg, apps);
  for (int i = 0; i < 50; ++i) {
    run.step();
  }
  const auto bytes = run.save_bytes();
  try {
    snapshot::extract_enclave(bytes, 99);
    FAIL() << "extraction of a non-existent enclave accepted";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no enclave 99"), std::string::npos) << what;
    EXPECT_NE(what.find("2 enclaves"), std::string::npos) << what;
  }
  // The tenant state must also refuse to restore into the wrong slot: a
  // run composed differently rejects the whole frame at the meta gate.
  const std::vector<core::EnclaveApp> swapped = {
      {.trace = &ta, .scheme = Scheme::kBaseline},
      {.trace = &tb, .scheme = Scheme::kDfpStop},
  };
  core::MultiEnclaveRun other(cfg, swapped);
  EXPECT_FALSE(other.restore_if_compatible(bytes));
}

TEST(Extraction, RefusesFramesThatHoldNoTenantSections) {
  const auto t = mixed_trace();
  SimulationRun single(small_config(Scheme::kDfpStop), t, nullptr);
  for (int i = 0; i < 50; ++i) {
    single.step();
  }
  // A single-enclave frame has no per-enclave sections to lift.
  EXPECT_THROW(snapshot::extract_enclave(single.save_bytes(), 0),
               CheckFailure);

  // A delta frame only carries what changed — extraction needs a full base.
  const auto ta = mixed_trace(4);
  const auto tb = mixed_trace(5);
  const std::vector<core::EnclaveApp> apps = {
      {.trace = &ta, .scheme = Scheme::kDfpStop},
      {.trace = &tb, .scheme = Scheme::kBaseline},
  };
  core::MultiEnclaveRun multi(small_config(Scheme::kBaseline, 128), apps);
  snapshot::Snapshotter<core::MultiEnclaveRun> snap(/*full_every=*/4);
  for (int i = 0; i < 50; ++i) {
    multi.step();
  }
  (void)snap.checkpoint(multi);  // full base
  for (int i = 0; i < 50; ++i) {
    multi.step();
  }
  const auto delta = snap.checkpoint(multi);
  ASSERT_EQ(delta.header.kind, snapshot::FrameKind::kDelta);
  EXPECT_THROW(snapshot::extract_enclave(delta.bytes, 0), CheckFailure);
}

}  // namespace
}  // namespace sgxpl
