#include "dfp/stream_predictor.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace sgxpl::dfp {
namespace {

StreamPredictorParams params(std::size_t len = 4, std::uint64_t load = 4,
                             bool backward = true) {
  return StreamPredictorParams{.stream_list_len = len,
                               .load_length = load,
                               .detect_backward = backward};
}

constexpr ProcessId kPid{1};

TEST(StreamPredictor, FirstFaultSeedsStreamNoPrediction) {
  StreamPredictor sp(params());
  EXPECT_TRUE(sp.on_fault(kPid, 100).empty());
  EXPECT_EQ(sp.stream_count(kPid), 1u);
  EXPECT_TRUE(sp.on_stream_list(kPid, 100));
  EXPECT_EQ(sp.misses(), 1u);
}

TEST(StreamPredictor, SequentialFaultExtendsStream) {
  StreamPredictor sp(params(4, 3));
  sp.on_fault(kPid, 100);
  const auto pred = sp.on_fault(kPid, 101);
  EXPECT_EQ(pred, (std::vector<PageNum>{102, 103, 104}));
  EXPECT_EQ(sp.hits(), 1u);
  // The tail moved: 101 is now the stpn, 100 no longer is.
  EXPECT_TRUE(sp.on_stream_list(kPid, 101));
  EXPECT_FALSE(sp.on_stream_list(kPid, 100));
}

TEST(StreamPredictor, LoadLengthControlsPredictionSize) {
  StreamPredictor sp(params(4, 8));
  sp.on_fault(kPid, 10);
  const auto pred = sp.on_fault(kPid, 11);
  ASSERT_EQ(pred.size(), 8u);
  EXPECT_EQ(pred.front(), 12u);
  EXPECT_EQ(pred.back(), 19u);
}

TEST(StreamPredictor, BackwardStreamDetected) {
  StreamPredictor sp(params());
  sp.on_fault(kPid, 100);
  const auto pred = sp.on_fault(kPid, 99);
  EXPECT_EQ(pred, (std::vector<PageNum>{98, 97, 96, 95}));
}

TEST(StreamPredictor, BackwardDisabledIgnoresDescending) {
  StreamPredictor sp(params(4, 4, /*backward=*/false));
  sp.on_fault(kPid, 100);
  EXPECT_TRUE(sp.on_fault(kPid, 99).empty());
  EXPECT_EQ(sp.hits(), 0u);
}

TEST(StreamPredictor, BackwardStreamStopsAtPageZero) {
  StreamPredictor sp(params(4, 8));
  sp.on_fault(kPid, 3);
  const auto pred = sp.on_fault(kPid, 2);
  // Prediction truncates rather than wrapping below page 0.
  EXPECT_EQ(pred, (std::vector<PageNum>{1, 0}));
}

TEST(StreamPredictor, LruReplacementEvictsOldestStream) {
  StreamPredictor sp(params(/*len=*/2));
  sp.on_fault(kPid, 100);  // stream A
  sp.on_fault(kPid, 200);  // stream B
  sp.on_fault(kPid, 300);  // list full -> replaces A (LRU)
  EXPECT_FALSE(sp.on_stream_list(kPid, 100));
  EXPECT_TRUE(sp.on_stream_list(kPid, 200));
  EXPECT_TRUE(sp.on_stream_list(kPid, 300));
  // Extending B promotes it; a new seed then replaces the LRU (300).
  sp.on_fault(kPid, 201);
  sp.on_fault(kPid, 400);
  EXPECT_FALSE(sp.on_stream_list(kPid, 300));
  EXPECT_TRUE(sp.on_stream_list(kPid, 201));
}

TEST(StreamPredictor, TracksMultipleInterleavedStreams) {
  StreamPredictor sp(params(4, 2));
  sp.on_fault(kPid, 100);
  sp.on_fault(kPid, 500);
  // Both streams extend despite interleaving.
  EXPECT_EQ(sp.on_fault(kPid, 101), (std::vector<PageNum>{102, 103}));
  EXPECT_EQ(sp.on_fault(kPid, 501), (std::vector<PageNum>{502, 503}));
  EXPECT_EQ(sp.on_fault(kPid, 102), (std::vector<PageNum>{103, 104}));
  EXPECT_EQ(sp.hits(), 3u);
}

TEST(StreamPredictor, PerProcessIsolation) {
  StreamPredictor sp(params());
  sp.on_fault(ProcessId{1}, 100);
  // Process 2 faulting on 101 must not extend process 1's stream.
  EXPECT_TRUE(sp.on_fault(ProcessId{2}, 101).empty());
  EXPECT_EQ(sp.stream_count(ProcessId{1}), 1u);
  EXPECT_EQ(sp.stream_count(ProcessId{2}), 1u);
}

TEST(StreamPredictor, FollowsStreamQueries) {
  StreamPredictor sp(params());
  sp.on_fault(kPid, 100);
  EXPECT_TRUE(sp.follows_stream(kPid, 101));
  EXPECT_TRUE(sp.follows_stream(kPid, 99));  // backward enabled
  EXPECT_FALSE(sp.follows_stream(kPid, 102));
  EXPECT_FALSE(sp.follows_stream(kPid, 100));  // on-list, not following
}

TEST(StreamPredictor, RandomFaultsNeverPredict) {
  StreamPredictor sp(params(30, 4));
  // Pages far apart: no two are adjacent.
  std::uint64_t predicted = 0;
  for (PageNum p = 0; p < 100; ++p) {
    predicted += sp.on_fault(kPid, p * 1000).size();
  }
  EXPECT_EQ(predicted, 0u);
  EXPECT_EQ(sp.misses(), 100u);
}

TEST(StreamPredictor, DirectionFlipsWithinStream) {
  StreamPredictor sp(params(4, 2));
  sp.on_fault(kPid, 100);
  sp.on_fault(kPid, 101);  // ascending
  // 100 follows 101 descending: the same stream flips direction.
  const auto pred = sp.on_fault(kPid, 100);
  EXPECT_EQ(pred, (std::vector<PageNum>{99, 98}));
}

TEST(StreamPredictor, ResetClearsState) {
  StreamPredictor sp(params());
  sp.on_fault(kPid, 100);
  sp.on_fault(kPid, 101);
  sp.reset();
  EXPECT_EQ(sp.stream_count(kPid), 0u);
  EXPECT_EQ(sp.hits(), 0u);
  EXPECT_EQ(sp.misses(), 0u);
  EXPECT_TRUE(sp.on_fault(kPid, 102).empty());
}

TEST(StreamPredictor, RejectsEmptyList) {
  EXPECT_THROW(StreamPredictor(params(0)), CheckFailure);
}

}  // namespace
}  // namespace sgxpl::dfp
