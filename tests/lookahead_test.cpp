// Focused tests for the SIP lookahead (hoisted-notification) mode of the
// core simulator.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/simulator.h"
#include "trace/generators.h"

namespace sgxpl::core {
namespace {

SimConfig sip_cfg(std::uint32_t lookahead, PageNum epc = 64) {
  SimConfig cfg;
  cfg.scheme = Scheme::kSip;
  cfg.enclave.epc_pages = epc;
  cfg.sip_lookahead = lookahead;
  return cfg;
}

/// `count` irregular accesses from site 1 with fixed gap.
trace::Trace irregular(std::uint64_t count, Cycles gap, PageNum region) {
  trace::Trace t("irr", region + 8);
  Rng rng(3);
  trace::random_access(t, rng, trace::Region{0, region}, count, 1, 1,
                       trace::GapModel{.mean = gap, .jitter_pct = 0});
  return t;
}

sip::InstrumentationPlan plan_for_site1() {
  sip::InstrumentationPlan plan;
  plan.add_site(1);
  return plan;
}

TEST(Lookahead, ZeroIsConservativeMode) {
  const auto t = irregular(500, 2'000, 50'000);
  const auto plan = plan_for_site1();
  const auto m = simulate(t, sip_cfg(0), &plan);
  EXPECT_EQ(m.driver.sip_prefetches, 0u);  // no async requests
  EXPECT_GT(m.driver.sip_loads, 0u);       // blocking loads instead
}

TEST(Lookahead, PositiveUsesAsyncPrefetches) {
  const auto t = irregular(500, 2'000, 50'000);
  const auto plan = plan_for_site1();
  const auto m = simulate(t, sip_cfg(4), &plan);
  EXPECT_GT(m.driver.sip_prefetches, 0u);
  EXPECT_EQ(m.driver.sip_loads, 0u);  // nothing blocks in hoisted mode
  // Checks still happen once per instrumented access (hoisted).
  EXPECT_EQ(m.sip_checks, 500u);
}

TEST(Lookahead, LargeGapsHideTheWholeLoad) {
  // Gap larger than a load: with lookahead 1 the prefetch finishes before
  // the access arrives, so (almost) no faults remain.
  const auto t = irregular(300, 80'000, 50'000);
  const auto plan = plan_for_site1();
  const auto conservative = simulate(t, sip_cfg(0), &plan);
  const auto hoisted = simulate(t, sip_cfg(1), &plan);
  EXPECT_LT(hoisted.enclave_faults, conservative.enclave_faults / 5 + 5);
  EXPECT_LT(hoisted.total_cycles, conservative.total_cycles);
}

TEST(Lookahead, LongerThanTraceIsHarmless) {
  const auto t = irregular(10, 2'000, 1'000);
  const auto plan = plan_for_site1();
  const auto m = simulate(t, sip_cfg(1'000), &plan);
  EXPECT_EQ(m.accesses, 10u);
  // The warm-up window hoists every access's request up front.
  EXPECT_EQ(m.sip_checks, 10u);
}

TEST(Lookahead, UninstrumentedSitesAreUntouched) {
  trace::Trace t("mixed", 1'000);
  Rng rng(1);
  trace::random_access(t, rng, trace::Region{0, 900}, 200, /*site=*/5, 1,
                       trace::GapModel{.mean = 2'000, .jitter_pct = 0});
  const auto plan = plan_for_site1();  // instruments site 1, not 5
  const auto m = simulate(t, sip_cfg(8), &plan);
  EXPECT_EQ(m.sip_checks, 0u);
  EXPECT_EQ(m.driver.sip_prefetches, 0u);
}

TEST(Lookahead, DeterministicAcrossRuns) {
  const auto t = irregular(400, 5'000, 30'000);
  const auto plan = plan_for_site1();
  const auto a = simulate(t, sip_cfg(8), &plan);
  const auto b = simulate(t, sip_cfg(8), &plan);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
}

}  // namespace
}  // namespace sgxpl::core
