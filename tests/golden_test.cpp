// Golden-corpus battery: pins the on-disk snapshot format against silent
// drift (tests/golden/README.md). SGXPL_GOLDEN_DIR points at the corpus.
//
//   - era acceptance: every checked-in file still loads — v1 through the
//     migration shim, v2 directly — and restores the exact state the
//     recipe's fresh run holds at the cut point;
//   - shim fidelity: upgrade(v1 golden) is byte-identical to the
//     independently captured v2 golden;
//   - writer determinism: a fresh capture of the recipe state equals the
//     v2 golden byte for byte (two invocations of the writer);
//   - chain golden: the base+2-delta chain restores bit-identically to the
//     full-snapshot restore at the final cut;
//   - the codec-level scheme table (migrate.cpp duplicates it to avoid a
//     core dependency) matches core's to_string/uses_dfp ground truth.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "golden_recipe.h"
#include "snapshot/chain.h"
#include "snapshot/codec.h"
#include "snapshot/migrate.h"
#include "snapshot/snapshotter.h"

using namespace sgxpl;

namespace {

std::string golden_path(const std::string& rel) {
  return std::string(SGXPL_GOLDEN_DIR) + "/" + rel;
}

std::vector<std::uint8_t> read_golden(const std::string& rel) {
  const std::string path = golden_path(rel);
  EXPECT_TRUE(snapshot::file_readable(path)) << path << " missing";
  return snapshot::read_file(path);
}

class GoldenSingle : public ::testing::TestWithParam<std::string> {};

// --- era acceptance ---------------------------------------------------------

TEST_P(GoldenSingle, V1LoadsThroughShimWithIdenticalState) {
  const std::string name = GetParam();
  const trace::Trace t = golden::single_trace();
  const sip::InstrumentationPlan plan = golden::single_plan();
  core::SimulationRun restored(golden::single_config(name), t, &plan);
  restored.load_bytes(read_golden("v1/single-" + name + ".snap"));
  // The restored state must serialize to exactly what a fresh run of the
  // recipe holds at the cut — same cursor, same driver, same engine.
  EXPECT_EQ(restored.save_bytes(), golden::make_single(name));
  EXPECT_EQ(restored.cursor(), golden::kSingleCut);
}

TEST_P(GoldenSingle, V2LoadsDirectly) {
  const std::string name = GetParam();
  const trace::Trace t = golden::single_trace();
  const sip::InstrumentationPlan plan = golden::single_plan();
  core::SimulationRun restored(golden::single_config(name), t, &plan);
  restored.load_bytes(read_golden("v2/single-" + name + ".snap"));
  EXPECT_EQ(restored.cursor(), golden::kSingleCut);
  // And the run must be resumable: finish it without error.
  restored.run_to_end();
}

TEST_P(GoldenSingle, UpgradedV1EqualsV2GoldenByteForByte) {
  const std::string name = GetParam();
  EXPECT_EQ(snapshot::upgrade_v1_to_v2(
                read_golden("v1/single-" + name + ".snap")),
            read_golden("v2/single-" + name + ".snap"));
}

TEST_P(GoldenSingle, V2GoldenIsByteStable) {
  // Two independent writer invocations of the same recipe state — here and
  // when the corpus was generated — must agree byte for byte.
  const std::string name = GetParam();
  EXPECT_EQ(golden::make_single(name),
            read_golden("v2/single-" + name + ".snap"));
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenSingle,
                         ::testing::ValuesIn(golden::single_case_names()));

// --- multi-enclave ----------------------------------------------------------

TEST(GoldenMulti, V1LoadsThroughShimWithIdenticalState) {
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  core::MultiEnclaveRun restored(golden::multi_config(),
                                 golden::multi_apps(a, b));
  restored.load_bytes(read_golden("v1/multi.snap"));
  EXPECT_EQ(restored.save_bytes(), golden::make_multi());
  EXPECT_EQ(restored.steps(), golden::kMultiCut);
}

TEST(GoldenMulti, UpgradedV1EqualsV2GoldenByteForByte) {
  EXPECT_EQ(snapshot::upgrade_v1_to_v2(read_golden("v1/multi.snap")),
            read_golden("v2/multi.snap"));
}

TEST(GoldenMulti, V2GoldenIsByteStable) {
  EXPECT_EQ(golden::make_multi(), read_golden("v2/multi.snap"));
}

TEST(GoldenMulti, V2LoadsAndFinishes) {
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  core::MultiEnclaveRun restored(golden::multi_config(),
                                 golden::multi_apps(a, b));
  restored.load_bytes(read_golden("v2/multi.snap"));
  EXPECT_EQ(restored.steps(), golden::kMultiCut);
  restored.run_to_end();
}

TEST(GoldenMulti, ExtractionWorksOnUpgradedV1) {
  // v1 frames have no per-enclave sections; extraction must refuse them
  // with upgrade guidance, and work on the shim's output.
  const auto v1 = read_golden("v1/multi.snap");
  try {
    snapshot::extract_enclave(v1, 0);
    FAIL() << "extraction from a v1 frame accepted";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("upgrade"), std::string::npos)
        << e.what();
  }
  const auto upgraded = snapshot::upgrade_v1_to_v2(v1);
  const snapshot::ExtractedEnclave e =
      snapshot::read_extracted(snapshot::extract_enclave(upgraded, 0));
  EXPECT_EQ(e.index, 0u);
  EXPECT_EQ(e.scheme, "DFP-stop");
  EXPECT_EQ(e.trace, "golden-a");
  EXPECT_TRUE(e.has_dfp);
}

// --- chain golden -----------------------------------------------------------

TEST(GoldenChain, ChainGoldenIsByteStable) {
  const auto frames = golden::make_chain();
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], read_golden("v2/chain-dfpstop.snap"));
  EXPECT_EQ(frames[1], read_golden("v2/chain-dfpstop.snap.delta-1"));
  EXPECT_EQ(frames[2], read_golden("v2/chain-dfpstop.snap.delta-2"));
}

TEST(GoldenChain, RestoresBitIdenticallyToFullSnapshot) {
  const trace::Trace t = golden::single_trace();
  const sip::InstrumentationPlan plan = golden::single_plan();

  // Restore the checked-in chain...
  core::SimulationRun from_chain(golden::single_config("dfpstop"), t, &plan);
  std::vector<std::vector<std::uint8_t>> frames = {
      read_golden("v2/chain-dfpstop.snap"),
      read_golden("v2/chain-dfpstop.snap.delta-1"),
      read_golden("v2/chain-dfpstop.snap.delta-2")};
  snapshot::restore_chain(from_chain, frames);

  // ...and independently step a fresh run to the chain's last cut.
  core::SimulationRun reference(golden::single_config("dfpstop"), t, &plan);
  const std::uint64_t last_cut =
      golden::kChainCuts[std::size(golden::kChainCuts) - 1];
  while (!reference.done() && reference.cursor() < last_cut) {
    reference.step();
  }
  EXPECT_EQ(from_chain.save_bytes(), reference.save_bytes());

  // Both must finish identically too.
  EXPECT_EQ(from_chain.run_to_end().total_cycles,
            reference.run_to_end().total_cycles);
}

TEST(GoldenChain, RestoreChainFromFilesFindsTheDeltas) {
  const trace::Trace t = golden::single_trace();
  const sip::InstrumentationPlan plan = golden::single_plan();
  core::SimulationRun run(golden::single_config("dfpstop"), t, &plan);
  ASSERT_TRUE(snapshot::restore_chain_from_files(
      run, golden_path("v2/chain-dfpstop.snap")));
  EXPECT_EQ(run.cursor(), golden::kChainCuts[std::size(golden::kChainCuts) - 1]);
}

// --- codec-level scheme table -----------------------------------------------

TEST(GoldenSchemeTable, MigrateTableMatchesCore) {
  // migrate.cpp duplicates the scheme-name -> runs-DFP mapping to stay free
  // of a core dependency; this is the pin that keeps the copies in sync.
  for (const core::Scheme s :
       {core::Scheme::kNative, core::Scheme::kBaseline, core::Scheme::kDfp,
        core::Scheme::kDfpStop, core::Scheme::kSip, core::Scheme::kHybrid}) {
    core::SimConfig cfg;
    cfg.scheme = s;
    EXPECT_EQ(snapshot::scheme_runs_dfp(core::to_string(s)), cfg.uses_dfp())
        << core::to_string(s);
  }
  EXPECT_THROW((void)snapshot::scheme_runs_dfp("no-such-scheme"),
               CheckFailure);
}

}  // namespace
