#include "sgxsim/admission.h"

#include <gtest/gtest.h>

#include "snapshot/codec.h"

namespace sgxpl::sgxsim {
namespace {

AdmissionParams test_params() {
  AdmissionParams p;
  p.enabled = true;
  p.degrade_threshold = 0.5;
  p.min_window_events = 4;
  p.recover_windows = 2;
  p.recover_threshold = 0.125;
  return p;
}

/// One window of mostly-rejected traffic (bad fraction 0.75 > threshold).
void feed_bad_window(AdmissionController& c) {
  c.note_admitted();
  c.note_rejected();
  c.note_rejected();
  c.note_rejected();
}

/// One quiet window: admissions only.
void feed_calm_window(AdmissionController& c) {
  for (int i = 0; i < 8; ++i) {
    c.note_admitted();
  }
}

TEST(Admission, StartsAtFullPreloadWithAllPrivileges) {
  AdmissionController c(test_params());
  EXPECT_EQ(c.level(), DegradeLevel::kFullPreload);
  EXPECT_TRUE(c.preloads_allowed());
  EXPECT_TRUE(c.prefetches_allowed());
  EXPECT_TRUE(c.demand_priority());
}

TEST(Admission, SustainedBadWindowsWalkDownTheLadder) {
  AdmissionController c(test_params());
  feed_bad_window(c);
  EXPECT_EQ(c.on_window(), -1);
  EXPECT_EQ(c.level(), DegradeLevel::kDfpOnly);
  EXPECT_TRUE(c.preloads_allowed());
  EXPECT_FALSE(c.prefetches_allowed());

  feed_bad_window(c);
  EXPECT_EQ(c.on_window(), -1);
  EXPECT_EQ(c.level(), DegradeLevel::kDemandOnly);
  EXPECT_FALSE(c.preloads_allowed());

  feed_bad_window(c);
  EXPECT_EQ(c.on_window(), -1);
  EXPECT_EQ(c.level(), DegradeLevel::kQuarantined);
  EXPECT_FALSE(c.demand_priority());

  // The ladder has a floor: further bad windows change nothing.
  feed_bad_window(c);
  EXPECT_EQ(c.on_window(), 0);
  EXPECT_EQ(c.level(), DegradeLevel::kQuarantined);
  EXPECT_EQ(c.demotions(), 3u);
}

TEST(Admission, FewEventsCannotDemote) {
  AdmissionController c(test_params());
  // Below min_window_events: 1 rejection out of 1 event is not evidence.
  c.note_rejected();
  EXPECT_EQ(c.on_window(), 0);
  EXPECT_EQ(c.level(), DegradeLevel::kFullPreload);
}

TEST(Admission, PermanentFaultBypassesTheEvidenceFloor) {
  AdmissionController c(test_params());
  c.note_permanent();  // a single lost page is always serious
  EXPECT_EQ(c.on_window(), -1);
  EXPECT_EQ(c.level(), DegradeLevel::kDfpOnly);
}

TEST(Admission, RecoveryNeedsAStreakAndClimbsOneLevelAtATime) {
  AdmissionController c(test_params());
  feed_bad_window(c);
  c.on_window();
  feed_bad_window(c);
  c.on_window();
  ASSERT_EQ(c.level(), DegradeLevel::kDemandOnly);

  // recover_windows = 2: the first calm window is not enough.
  feed_calm_window(c);
  EXPECT_EQ(c.on_window(), 0);
  EXPECT_EQ(c.level(), DegradeLevel::kDemandOnly);
  feed_calm_window(c);
  EXPECT_EQ(c.on_window(), +1);
  EXPECT_EQ(c.level(), DegradeLevel::kDfpOnly);

  // The streak resets after each promotion: one more calm window does not
  // immediately promote again.
  feed_calm_window(c);
  EXPECT_EQ(c.on_window(), 0);
  feed_calm_window(c);
  EXPECT_EQ(c.on_window(), +1);
  EXPECT_EQ(c.level(), DegradeLevel::kFullPreload);
  EXPECT_EQ(c.promotions(), 2u);
}

TEST(Admission, ABadWindowResetsTheRecoveryStreak) {
  AdmissionController c(test_params());
  feed_bad_window(c);
  c.on_window();
  ASSERT_EQ(c.level(), DegradeLevel::kDfpOnly);
  feed_calm_window(c);
  c.on_window();  // streak = 1 of 2
  feed_bad_window(c);
  c.on_window();  // demoted again, streak wiped
  ASSERT_EQ(c.level(), DegradeLevel::kDemandOnly);
  feed_calm_window(c);
  EXPECT_EQ(c.on_window(), 0);  // streak restarted from zero
}

TEST(Admission, QuarantineNeedsADoubleStreak) {
  AdmissionController c(test_params());
  for (int i = 0; i < 3; ++i) {
    feed_bad_window(c);
    c.on_window();
  }
  ASSERT_EQ(c.level(), DegradeLevel::kQuarantined);
  // recover_windows = 2, doubled to 4 when leaving quarantine.
  for (int i = 0; i < 3; ++i) {
    feed_calm_window(c);
    EXPECT_EQ(c.on_window(), 0) << "window " << i;
  }
  feed_calm_window(c);
  EXPECT_EQ(c.on_window(), +1);
  EXPECT_EQ(c.level(), DegradeLevel::kDemandOnly);
}

TEST(Admission, MurkyWindowsNeitherDemoteNorCountAsCalm) {
  AdmissionParams p = test_params();
  AdmissionController c(p);
  feed_bad_window(c);
  c.on_window();
  ASSERT_EQ(c.level(), DegradeLevel::kDfpOnly);
  // 2 bad of 8 = 0.25: above recover_threshold, below degrade_threshold.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 6; ++i) {
      c.note_admitted();
    }
    c.note_rejected();
    c.note_rejected();
    EXPECT_EQ(c.on_window(), 0);
  }
  EXPECT_EQ(c.level(), DegradeLevel::kDfpOnly);
}

TEST(Admission, QuotaScalesWithLevelAndFloorsAtOne) {
  AdmissionParams p = test_params();
  p.preload_quota_fraction = 0.5;
  AdmissionController c(p);
  EXPECT_EQ(c.preload_quota(16), 8u);
  EXPECT_EQ(c.preload_quota(0), 0u);  // unbounded channel: no quota
  feed_bad_window(c);
  c.on_window();
  ASSERT_EQ(c.level(), DegradeLevel::kDfpOnly);
  EXPECT_EQ(c.preload_quota(16), 4u);  // halved when degraded
  EXPECT_EQ(c.preload_quota(2), 1u);   // never rounds down to zero
}

TEST(Admission, SaveLoadRoundTripsMidWindow) {
  AdmissionController a(test_params());
  feed_bad_window(a);
  a.on_window();
  feed_calm_window(a);
  a.on_window();
  a.note_admitted();
  a.note_retry();  // un-judged window evidence must survive the trip

  snapshot::Writer w;
  w.begin_section("ADMT");
  a.save(w);
  w.end_section();
  const auto bytes = w.finish();

  AdmissionController b(test_params());
  snapshot::Reader r(bytes);
  r.enter_section("ADMT");
  b.load(r);
  r.leave_section();

  EXPECT_EQ(b.level(), a.level());
  EXPECT_EQ(b.windows(), a.windows());
  EXPECT_EQ(b.demotions(), a.demotions());
  EXPECT_EQ(b.promotions(), a.promotions());
  // The two controllers judge the in-flight window identically.
  feed_calm_window(a);
  feed_calm_window(b);
  EXPECT_EQ(a.on_window(), b.on_window());
  EXPECT_EQ(a.level(), b.level());
}

TEST(Admission, DegradeLevelNamesRoundTrip) {
  for (const DegradeLevel l :
       {DegradeLevel::kFullPreload, DegradeLevel::kDfpOnly,
        DegradeLevel::kDemandOnly, DegradeLevel::kQuarantined,
        DegradeLevel::kDraining}) {
    const auto parsed = parse_degrade_level(to_string(l));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, l);
  }
  EXPECT_FALSE(parse_degrade_level("melted").has_value());
}

// --- migration drain (kDraining sits outside the ladder) --------------------

TEST(Admission, DrainShedsPreloadsButKeepsDemandPriority) {
  AdmissionController c(test_params());
  c.begin_drain();
  EXPECT_EQ(c.level(), DegradeLevel::kDraining);
  EXPECT_TRUE(c.draining());
  EXPECT_FALSE(c.preloads_allowed());
  EXPECT_FALSE(c.prefetches_allowed());
  EXPECT_TRUE(c.demand_priority());
}

TEST(Admission, DrainResumesAtTheRememberedLadderLevel) {
  AdmissionController c(test_params());
  feed_bad_window(c);
  c.on_window();
  ASSERT_EQ(c.level(), DegradeLevel::kDfpOnly);
  c.begin_drain();
  EXPECT_EQ(c.level(), DegradeLevel::kDraining);
  c.end_drain();
  EXPECT_EQ(c.level(), DegradeLevel::kDfpOnly);
  EXPECT_FALSE(c.draining());
}

TEST(Admission, DrainIsIdempotentBothWays) {
  AdmissionController c(test_params());
  feed_bad_window(c);
  feed_bad_window(c);
  c.on_window();
  c.on_window();  // window evidence was consumed by the first call
  ASSERT_EQ(c.level(), DegradeLevel::kDfpOnly);
  c.begin_drain();
  c.begin_drain();  // double-enter must not overwrite the resume level
  c.end_drain();
  EXPECT_EQ(c.level(), DegradeLevel::kDfpOnly);
  c.end_drain();  // double-leave is a no-op
  EXPECT_EQ(c.level(), DegradeLevel::kDfpOnly);
}

TEST(Admission, LadderIsFrozenWhileDraining) {
  AdmissionController c(test_params());
  c.begin_drain();
  const std::uint64_t windows_before = c.windows();
  feed_bad_window(c);
  EXPECT_EQ(c.on_window(), 0);  // judged nothing, moved nothing
  EXPECT_EQ(c.level(), DegradeLevel::kDraining);
  EXPECT_EQ(c.windows(), windows_before);
  // The evidence is held, not discarded: the first window after the drain
  // lifts judges it.
  c.end_drain();
  EXPECT_EQ(c.on_window(), -1);
  EXPECT_EQ(c.level(), DegradeLevel::kDfpOnly);
}

TEST(Admission, DrainIsNeverSerializedAsALevel) {
  AdmissionController a(test_params());
  feed_bad_window(a);
  a.on_window();
  ASSERT_EQ(a.level(), DegradeLevel::kDfpOnly);

  const auto save = [](const AdmissionController& c) {
    snapshot::Writer w;
    w.begin_section("ADMT");
    c.save(w);
    w.end_section();
    return w.finish();
  };
  const auto undrained = save(a);
  a.begin_drain();
  const auto drained = save(a);
  // A drained controller serializes its resume level byte-identically to
  // the undrained one (the frozen host frame format cannot carry a
  // transient state).
  EXPECT_EQ(drained, undrained);

  AdmissionController b(test_params());
  snapshot::Reader r(drained);
  r.enter_section("ADMT");
  b.load(r);
  r.leave_section();
  EXPECT_EQ(b.level(), DegradeLevel::kDfpOnly);
  EXPECT_FALSE(b.draining());
}

// --- load-adaptive evidence windows -----------------------------------------

AdmissionParams adaptive_params(std::uint64_t target, std::uint32_t span) {
  AdmissionParams p = test_params();
  p.target_window_events = target;
  p.max_window_span = span;
  return p;
}

TEST(Admission, AdaptiveWindowDefersThinEvidence) {
  AdmissionController c(adaptive_params(8, 8));
  // One fixed-cadence window's worth of bad traffic (4 events) is below the
  // 8-event target: the window is held open, nothing judged.
  feed_bad_window(c);
  EXPECT_EQ(c.on_window(), 0);
  EXPECT_EQ(c.windows(), 0u);
  EXPECT_EQ(c.level(), DegradeLevel::kFullPreload);
  // The next tick folds in the second half; the combined window reaches the
  // target and its accumulated 6/8 bad fraction demotes.
  feed_bad_window(c);
  EXPECT_EQ(c.on_window(), -1);
  EXPECT_EQ(c.windows(), 1u);
  EXPECT_EQ(c.level(), DegradeLevel::kDfpOnly);
}

TEST(Admission, AdaptiveWindowSpanBoundsVerdictLatency) {
  AdmissionController c(adaptive_params(100, 3));
  // A near-idle tenant never reaches the target; the span cap forces a
  // judgment on the third tick with whatever evidence exists.
  c.note_admitted();
  EXPECT_EQ(c.on_window(), 0);
  EXPECT_EQ(c.windows(), 0u);
  c.note_admitted();
  EXPECT_EQ(c.on_window(), 0);
  EXPECT_EQ(c.windows(), 0u);
  c.note_admitted();
  EXPECT_EQ(c.on_window(), 0);  // judged (calm, already at the top)
  EXPECT_EQ(c.windows(), 1u);
}

TEST(Admission, PermanentFaultForcesAdaptiveJudgment) {
  // Losing a page after max_retries must never wait for volume: a single
  // permanent fault judges (and demotes) no matter how far the window is
  // from its event target.
  AdmissionController c(adaptive_params(100, 8));
  c.note_permanent();
  EXPECT_EQ(c.on_window(), -1);
  EXPECT_EQ(c.windows(), 1u);
  EXPECT_EQ(c.level(), DegradeLevel::kDfpOnly);
}

TEST(Admission, AdaptiveSpanSurvivesSaveLoad) {
  AdmissionController a(adaptive_params(100, 3));
  a.note_admitted();
  ASSERT_EQ(a.on_window(), 0);  // one deferred tick in flight

  snapshot::Writer w;
  w.begin_section("ADMT");
  a.save(w);
  w.end_section();
  const auto bytes = w.finish();

  AdmissionController b(adaptive_params(100, 3));
  snapshot::Reader r(bytes);
  r.enter_section("ADMT");
  b.load(r);
  r.leave_section();

  // Both controllers defer exactly one more tick, then the span cap judges.
  for (AdmissionController* c : {&a, &b}) {
    c->note_admitted();
    EXPECT_EQ(c->on_window(), 0);
    EXPECT_EQ(c->windows(), 0u);
    c->note_admitted();
    EXPECT_EQ(c->on_window(), 0);
    EXPECT_EQ(c->windows(), 1u);
  }
}

}  // namespace
}  // namespace sgxpl::sgxsim
