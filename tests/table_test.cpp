#include "common/table.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace sgxpl {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"a", "b"});
  t.add_row({"long-cell-value", "x"});
  const std::string out = t.render();
  // Every rendered line has the same length when columns are padded.
  std::size_t first_len = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const auto eol = out.find('\n', pos);
    if (eol == std::string::npos) break;
    EXPECT_EQ(eol - pos, first_len);
    pos = eol + 1;
  }
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), CheckFailure);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), CheckFailure);
}

TEST(TextTable, FmtPrecision) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
}

TEST(TextTable, PctFormatsSigned) {
  EXPECT_EQ(TextTable::pct(0.114), "+11.4%");
  EXPECT_EQ(TextTable::pct(-0.042), "-4.2%");
  EXPECT_EQ(TextTable::pct(0.0), "+0.0%");
}

}  // namespace
}  // namespace sgxpl
