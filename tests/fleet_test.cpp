// Live-migration differentials: a tenant migrated at ANY cut point must
// finish on the destination with metrics and final state bit-identical to
// an uninterrupted run (sole-tenant identity carve), and every abort path
// must leave the source resuming exactly where it paused — no lost pages,
// no lost progress. Also covers the lossy-link retry model, the typed
// carve refusals, and the drain's preload shedding.
#include "fleet/migration.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "golden_recipe.h"
#include "snapshot/snapshotter.h"

namespace sgxpl {
namespace {

using fleet::LinkChaos;
using fleet::MigrationController;
using fleet::MigrationOutcome;
using fleet::MigrationPolicy;
using fleet::MigrationReport;

/// A sole-tenant co-run over the golden multi trace: identity geometry
/// (lo == 0, tenant spans the whole combined space), so carves are
/// byte-verbatim and migrated runs must be bit-identical to uninterrupted
/// ones.
struct SoleTenantRig {
  explicit SoleTenantRig(core::Scheme scheme, bool chaos = false)
      : trace(golden::multi_trace(11)), cfg(golden::multi_config()) {
    if (chaos) {
      cfg.chaos = inject::ChaosPlan::all(7);
    }
    apps = {{.trace = &trace, .scheme = scheme}};
    run = std::make_unique<core::MultiEnclaveRun>(cfg, apps);
  }

  void step_to(std::uint64_t cut) {
    while (!run->done() && run->steps() < cut) {
      run->step();
    }
  }

  trace::Trace trace;
  core::SimConfig cfg;
  std::vector<core::EnclaveApp> apps;
  std::unique_ptr<core::MultiEnclaveRun> run;
};

MigrationPolicy clean_policy() {
  MigrationPolicy p;
  p.warm_rounds = 2;
  p.round_steps = 16;
  return p;
}

void expect_identical_to_uninterrupted(const SoleTenantRig& migrated,
                                       core::Scheme scheme, bool chaos,
                                       const std::string& context) {
  SoleTenantRig witness(scheme, chaos);
  witness.step_to(~0ull);  // run to completion
  ASSERT_TRUE(witness.run->done());
  EXPECT_EQ(migrated.run->save_bytes(), witness.run->save_bytes())
      << context << ": migrated final state diverged from uninterrupted";
  // Metrics travel inside save_bytes too, but diff_metrics localizes the
  // field on failure, so compare them explicitly as well.
  const auto d = snapshot::diff_metrics(migrated.run->tenant_metrics(0),
                                        witness.run->tenant_metrics(0));
  EXPECT_TRUE(d.identical) << context << ": " << d.first_divergence;
}

TEST(Migration, IdentityMigrationAtEveryCutMatchesUninterrupted) {
  for (const core::Scheme scheme :
       {core::Scheme::kBaseline, core::Scheme::kDfpStop}) {
    for (const bool chaos : {false, true}) {
      for (const std::uint64_t cut : {0ull, 1ull, 7ull, 64ull, 150ull}) {
        SoleTenantRig src(scheme, chaos);
        src.step_to(cut);
        SoleTenantRig dst(scheme, chaos);

        MigrationController mc(clean_policy());
        const MigrationReport rep = mc.migrate(*src.run, 0, *dst.run);
        const std::string context =
            "scheme " + std::to_string(static_cast<int>(scheme)) +
            (chaos ? " +chaos" : "") + " cut " + std::to_string(cut);
        ASSERT_EQ(rep.outcome, MigrationOutcome::kCompleted)
            << context << ": " << rep.detail;
        EXPECT_TRUE(rep.detail.empty());
        EXPECT_GT(rep.downtime_cycles, 0u) << context;
        EXPECT_GT(rep.bytes_on_wire, 0u) << context;

        // The source retired its only tenant; the destination finishes the
        // trace exactly as an uninterrupted run would.
        EXPECT_TRUE(src.run->done()) << context;
        dst.step_to(~0ull);
        ASSERT_TRUE(dst.run->done()) << context;
        expect_identical_to_uninterrupted(dst, scheme, chaos, context);
      }
    }
  }
}

TEST(Migration, PureStopAndCopyAlsoMatchesUninterrupted) {
  SoleTenantRig src(core::Scheme::kDfpStop);
  src.step_to(100);
  SoleTenantRig dst(core::Scheme::kDfpStop);
  MigrationPolicy p = clean_policy();
  p.warm_rounds = 0;
  const MigrationReport rep =
      MigrationController(p).migrate(*src.run, 0, *dst.run);
  ASSERT_EQ(rep.outcome, MigrationOutcome::kCompleted) << rep.detail;
  EXPECT_EQ(rep.warm_rounds, 0u);
  dst.step_to(~0ull);
  expect_identical_to_uninterrupted(dst, core::Scheme::kDfpStop, false,
                                    "pure stop-and-copy");
}

TEST(Migration, WarmRoundsPayOnlyForChangedSections) {
  SoleTenantRig src(core::Scheme::kDfpStop);
  src.step_to(50);
  SoleTenantRig dst(core::Scheme::kDfpStop);
  MigrationPolicy p = clean_policy();
  p.warm_rounds = 3;
  p.round_steps = 8;
  const MigrationReport rep =
      MigrationController(p).migrate(*src.run, 0, *dst.run);
  ASSERT_EQ(rep.outcome, MigrationOutcome::kCompleted) << rep.detail;
  ASSERT_EQ(rep.leg_stats.size(), 4u);  // 3 warm + 1 final
  // The first leg ships the whole frame; later legs ship wire-deltas
  // against the last delivered copy, which must be strictly cheaper.
  EXPECT_GT(rep.leg_stats[0].bytes_delivered, rep.leg_stats[1].bytes_delivered);
  EXPECT_GT(rep.leg_stats[0].bytes_delivered,
            rep.leg_stats.back().bytes_delivered);
  EXPECT_TRUE(rep.leg_stats.back().final_leg);
  // Downtime is charged only for the final leg.
  EXPECT_EQ(rep.downtime_cycles,
            p.leg_latency + rep.leg_stats.back().bytes_on_wire *
                                p.cycles_per_byte);
}

TEST(Migration, DeadLinkAbortsAndSourceResumesExactly) {
  for (const std::uint64_t warm : {0ull, 2ull}) {
    SoleTenantRig src(core::Scheme::kDfpStop);
    src.step_to(80);
    SoleTenantRig dst(core::Scheme::kDfpStop);
    MigrationPolicy p = clean_policy();
    p.warm_rounds = warm;
    p.link.drop = 1.0;
    const MigrationReport rep =
        MigrationController(p).migrate(*src.run, 0, *dst.run);
    ASSERT_EQ(rep.outcome, MigrationOutcome::kAbortedLink) << rep.detail;
    EXPECT_FALSE(rep.detail.empty());
    // The tenant resumes at the source and finishes as if the migration
    // had never been attempted (warm rounds only advance it normally).
    EXPECT_FALSE(src.run->tenant_paused(0));
    src.step_to(~0ull);
    ASSERT_TRUE(src.run->done());
    expect_identical_to_uninterrupted(src, core::Scheme::kDfpStop, false,
                                      "dead link, warm=" +
                                          std::to_string(warm));
  }
}

TEST(Migration, ExhaustedByteBudgetAbortsTyped) {
  SoleTenantRig src(core::Scheme::kDfpStop);
  src.step_to(80);
  SoleTenantRig dst(core::Scheme::kDfpStop);
  MigrationPolicy p = clean_policy();
  p.byte_budget = 1;  // nothing fits
  const MigrationReport rep =
      MigrationController(p).migrate(*src.run, 0, *dst.run);
  ASSERT_EQ(rep.outcome, MigrationOutcome::kAbortedBudget) << rep.detail;
  EXPECT_FALSE(rep.detail.empty());
  src.step_to(~0ull);
  expect_identical_to_uninterrupted(src, core::Scheme::kDfpStop, false,
                                    "budget abort");
}

TEST(Migration, IncompatibleDestinationRejectsAndSourceResumes) {
  SoleTenantRig src(core::Scheme::kDfpStop);
  src.step_to(80);
  // Wrong scheme on the destination: restore_if_compatible must refuse.
  SoleTenantRig dst(core::Scheme::kBaseline);
  const MigrationReport rep =
      MigrationController(clean_policy()).migrate(*src.run, 0, *dst.run);
  ASSERT_EQ(rep.outcome, MigrationOutcome::kAbortedRejected) << rep.detail;
  EXPECT_FALSE(rep.detail.empty());
  EXPECT_FALSE(src.run->tenant_paused(0));
  src.step_to(~0ull);
  expect_identical_to_uninterrupted(src, core::Scheme::kDfpStop, false,
                                    "rejected destination");
}

TEST(Migration, LossyLinkConvergesWithRetries) {
  SoleTenantRig src(core::Scheme::kDfpStop);
  src.step_to(60);
  SoleTenantRig dst(core::Scheme::kDfpStop);
  MigrationPolicy p = clean_policy();
  p.max_attempts = 64;
  p.link = LinkChaos::parse("drop=0.3,dup=0.3,truncate=0.2,bitflip=0.2,seed=9");
  const MigrationReport rep =
      MigrationController(p).migrate(*src.run, 0, *dst.run);
  ASSERT_EQ(rep.outcome, MigrationOutcome::kCompleted) << rep.detail;
  EXPECT_GE(rep.attempts, rep.legs);
  dst.step_to(~0ull);
  expect_identical_to_uninterrupted(dst, core::Scheme::kDfpStop, false,
                                    "lossy link");
}

TEST(Migration, CoTenantCarveMigratesAndBothSidesFinish) {
  // Two tenants share the EPC; migrate tenant 1 (Baseline, placed at
  // lo > 0 — the general rebasing carve) onto a fresh sole-tenant host.
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  core::MultiEnclaveRun src(golden::multi_config(), golden::multi_apps(a, b));
  while (!src.done() && src.steps() < 200) {
    src.step();
  }

  SoleTenantRig dst(core::Scheme::kBaseline);
  // Destination must run tenant 1's trace, not the rig's default.
  dst.apps = {{.trace = &b, .scheme = core::Scheme::kBaseline}};
  dst.run = std::make_unique<core::MultiEnclaveRun>(dst.cfg, dst.apps);

  const std::uint64_t cursor_at_cut = src.tenant_cursor(1);
  const MigrationReport rep =
      MigrationController(clean_policy()).migrate(src, 1, *dst.run);
  ASSERT_EQ(rep.outcome, MigrationOutcome::kCompleted) << rep.detail;

  // The destination picks up exactly at the carve's cursor (the warm
  // rounds advanced it past the cut) and finishes the trace.
  EXPECT_GE(dst.run->tenant_cursor(0), cursor_at_cut);
  dst.step_to(~0ull);
  ASSERT_TRUE(dst.run->done());
  EXPECT_EQ(dst.run->tenant_cursor(0), b.size());

  // The source co-run keeps going with the remaining tenant and finishes.
  while (!src.done()) {
    src.step();
  }
  const core::MultiEnclaveResult res = src.finish();
  EXPECT_EQ(res.per_enclave.size(), 2u);
  EXPECT_EQ(src.tenant_cursor(0), a.size());
}

TEST(Migration, DfpTenantAboveOffsetZeroRefusesToCarve) {
  // Tenant 1 runs DFP at lo > 0: its engine state is keyed to combined
  // page numbers, so the carve must refuse with a typed error rather than
  // emit silently-wrong state.
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  std::vector<core::EnclaveApp> apps = {
      {.trace = &a, .scheme = core::Scheme::kBaseline},
      {.trace = &b, .scheme = core::Scheme::kDfpStop},
  };
  core::MultiEnclaveRun src(golden::multi_config(), apps);
  while (!src.done() && src.steps() < 100) {
    src.step();
  }
  EXPECT_THROW(snapshot::extract_resumable(src, 1), CheckFailure);
}

TEST(Migration, DrainShedsPreloadsWhileServingDemand) {
  // A draining DfpStop tenant keeps faulting pages in (demand loads) but
  // its preloads are shed at submission; the run still completes.
  SoleTenantRig drained(core::Scheme::kDfpStop);
  drained.step_to(40);
  drained.run->begin_tenant_drain(0);
  drained.step_to(~0ull);
  ASSERT_TRUE(drained.run->done());
  const core::MultiEnclaveResult res = drained.run->finish();
  EXPECT_GT(res.driver.preloads_shed, 0u);

  SoleTenantRig witness(core::Scheme::kDfpStop);
  witness.step_to(~0ull);
  const core::MultiEnclaveResult wres = witness.run->finish();
  // The drain sheds strictly more than whatever backpressure shed anyway,
  // yet every demand fault was still served (the run completed above).
  EXPECT_GT(res.driver.preloads_shed, wres.driver.preloads_shed);
}

TEST(Migration, PauseFreezesATenantsClock) {
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  core::MultiEnclaveRun run(golden::multi_config(), golden::multi_apps(a, b));
  while (!run.done() && run.steps() < 50) {
    run.step();
  }
  const std::uint64_t frozen = run.tenant_cursor(0);
  run.set_tenant_paused(0, true);
  EXPECT_TRUE(run.tenant_paused(0));
  for (int i = 0; i < 40 && run.steppable(); ++i) {
    run.step();
  }
  EXPECT_EQ(run.tenant_cursor(0), frozen);
  EXPECT_GT(run.tenant_cursor(1), 0u);
  run.set_tenant_paused(0, false);
  while (!run.done()) {
    run.step();
  }
  EXPECT_EQ(run.tenant_cursor(0), a.size());
}

TEST(Migration, RetireRequiresAPausedTenant) {
  SoleTenantRig rig(core::Scheme::kBaseline);
  rig.step_to(10);
  EXPECT_THROW(rig.run->retire_tenant(0), CheckFailure);
  rig.run->set_tenant_paused(0, true);
  rig.run->retire_tenant(0);
  EXPECT_TRUE(rig.run->done());
}

TEST(Migration, LinkChaosSpecRoundTripsAndRejectsGarbage) {
  const LinkChaos c =
      LinkChaos::parse("drop=0.25,dup=0.5,truncate=0.125,bitflip=1,seed=42");
  EXPECT_EQ(c.drop, 0.25);
  EXPECT_EQ(c.dup, 0.5);
  EXPECT_EQ(c.truncate, 0.125);
  EXPECT_EQ(c.bitflip, 1.0);
  EXPECT_EQ(c.seed, 42u);
  EXPECT_TRUE(c.any());
  EXPECT_EQ(LinkChaos::parse(c.spec()).spec(), c.spec());

  EXPECT_FALSE(LinkChaos::parse("").any());
  EXPECT_THROW(LinkChaos::parse("melt=0.5"), CheckFailure);
  EXPECT_THROW(LinkChaos::parse("drop=1.5"), CheckFailure);
  EXPECT_THROW(LinkChaos::parse("drop=banana"), CheckFailure);
  EXPECT_THROW(LinkChaos::parse("seed=banana"), CheckFailure);
}

TEST(Migration, OutcomeNamesAreStable) {
  EXPECT_STREQ(to_string(MigrationOutcome::kCompleted), "completed");
  EXPECT_STREQ(to_string(MigrationOutcome::kAbortedLink), "aborted-link");
  EXPECT_STREQ(to_string(MigrationOutcome::kAbortedBudget), "aborted-budget");
  EXPECT_STREQ(to_string(MigrationOutcome::kAbortedRejected),
               "aborted-rejected");
}

}  // namespace
}  // namespace sgxpl
