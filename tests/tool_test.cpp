// snapshot_tool black-box tests: every subcommand must exit nonzero with a
// typed one-line error on bad inputs (missing file, garbage bytes, bad
// index, torn chain), verify-chain must name the first bad frame's seq and
// byte offset, and the migrate/salvage subcommands must round-trip real
// frames. Drives the installed binary via a shell, exactly as CI does.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "golden_recipe.h"
#include "snapshot/codec.h"

namespace sgxpl {
namespace {

struct ToolResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

/// Run the snapshot_tool binary with `args`, capturing both streams.
ToolResult run_tool(const std::string& args) {
  const std::string cmd = std::string(SGXPL_TOOL_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  ToolResult res;
  if (pipe == nullptr) return res;
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) {
    res.output += buf;
  }
  const int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "tool-" + name;
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  snapshot::write_file_atomic(path, bytes);
}

void write_garbage(const std::string& path) {
  const std::string junk = "this is not a snapshot frame at all";
  write_bytes(path, std::vector<std::uint8_t>(junk.begin(), junk.end()));
}

/// The typed-failure contract: nonzero exit and a one-line `error:`
/// diagnostic as the final line of output.
void expect_typed_failure(const ToolResult& res, const std::string& context) {
  EXPECT_NE(res.exit_code, 0) << context << ":\n" << res.output;
  ASSERT_FALSE(res.output.empty()) << context;
  std::string last = res.output;
  if (!last.empty() && last.back() == '\n') last.pop_back();
  const auto nl = last.rfind('\n');
  if (nl != std::string::npos) last = last.substr(nl + 1);
  EXPECT_EQ(last.rfind("error:", 0), 0u)
      << context << ": last line is not a typed error:\n"
      << res.output;
}

TEST(Tool, NoArgsPrintsUsage) {
  const ToolResult res = run_tool("");
  EXPECT_EQ(res.exit_code, 2);
  EXPECT_NE(res.output.find("usage:"), std::string::npos);
}

TEST(Tool, UnknownSubcommandPrintsUsage) {
  const ToolResult res = run_tool("frobnicate x.snap");
  EXPECT_EQ(res.exit_code, 2);
  EXPECT_NE(res.output.find("usage:"), std::string::npos);
}

TEST(Tool, EverySubcommandRejectsAMissingFileTyped) {
  const std::string ghost = tmp_path("ghost.snap");
  std::remove(ghost.c_str());
  for (const std::string& cmd :
       {"info " + ghost, "upgrade " + ghost + " " + tmp_path("out.snap"),
        "extract 0 " + ghost + " " + tmp_path("out.snap"),
        "migrate " + ghost + " 0 " + tmp_path("out.snap"),
        "diff " + ghost + " " + ghost, "verify-chain " + ghost}) {
    expect_typed_failure(run_tool(cmd), cmd);
  }
}

TEST(Tool, EverySubcommandRejectsGarbageBytesTyped) {
  const std::string junk = tmp_path("junk.snap");
  write_garbage(junk);
  for (const std::string& cmd :
       {"info " + junk, "upgrade " + junk + " " + tmp_path("out.snap"),
        "extract 0 " + junk + " " + tmp_path("out.snap"),
        "migrate " + junk + " 0 " + tmp_path("out.snap"),
        "diff " + junk + " " + junk, "verify-chain " + junk}) {
    expect_typed_failure(run_tool(cmd), cmd);
  }
}

TEST(Tool, ExtractAndMigrateRejectBadIndicesTyped) {
  const std::string multi = tmp_path("multi.snap");
  write_bytes(multi, golden::make_multi());
  expect_typed_failure(
      run_tool("extract abc " + multi + " " + tmp_path("out.snap")),
      "non-numeric index");
  expect_typed_failure(
      run_tool("extract 99 " + multi + " " + tmp_path("out.snap")),
      "out-of-range index");
  expect_typed_failure(
      run_tool("migrate " + multi + " abc " + tmp_path("out.snap")),
      "migrate non-numeric index");
  expect_typed_failure(
      run_tool("migrate " + multi + " 99 " + tmp_path("out.snap")),
      "migrate out-of-range index");
  expect_typed_failure(
      run_tool("migrate " + multi + " 0 " + tmp_path("out.snap") +
               " 0 250 999999999999999999999999"),
      "overflowing geometry");
}

TEST(Tool, MigrateCarvesAResumableTenant) {
  const std::string multi = tmp_path("mig-multi.snap");
  write_bytes(multi, golden::make_multi());
  // Tenant 1's real placement (Baseline at lo > 0): the rebasing carve.
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  core::MultiEnclaveRun run(golden::multi_config(), golden::multi_apps(a, b));
  const snapshot::TenantGeometry geo = run.tenant_geometry(1);

  const std::string out = tmp_path("mig-out.snap");
  const ToolResult res = run_tool(
      "migrate " + multi + " 1 " + out + " " + std::to_string(geo.lo) + " " +
      std::to_string(geo.pages) + " " + std::to_string(geo.trace_accesses));
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("resumable enclave 1"), std::string::npos)
      << res.output;
  // The carved frame is a well-formed standalone frame.
  EXPECT_EQ(run_tool("info " + out).exit_code, 0);
}

TEST(Tool, MigrateRefusesADfpTenantAboveOffsetZeroTyped) {
  const std::string multi = tmp_path("mig-refuse.snap");
  write_bytes(multi, golden::make_multi());
  // Tenant 0 of the golden multi runs DFP; carving it as if it were placed
  // above offset 0 must be refused typed (its engine state is keyed to
  // combined page numbers).
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  core::MultiEnclaveRun run(golden::multi_config(), golden::multi_apps(a, b));
  const snapshot::TenantGeometry geo = run.tenant_geometry(1);
  expect_typed_failure(
      run_tool("migrate " + multi + " 0 " + tmp_path("out.snap") + " " +
               std::to_string(geo.lo) + " " + std::to_string(geo.pages) +
               " " + std::to_string(geo.trace_accesses)),
      "DFP tenant carved at lo > 0");
}

TEST(Tool, VerifyChainReportsSeqAndByteOffsetOfTheFirstBadFrame) {
  const auto frames = golden::make_chain();
  const std::string base = tmp_path("chain.snap");
  write_bytes(base, frames[0]);
  write_bytes(snapshot::delta_path(base, 1), frames[1]);
  std::vector<std::uint8_t> torn = frames[2];
  torn.resize(torn.size() / 2);
  write_bytes(snapshot::delta_path(base, 2), torn);

  const ToolResult res = run_tool("verify-chain " + base);
  EXPECT_NE(res.exit_code, 0);
  EXPECT_NE(res.output.find("error:"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("frame 2 (seq 2)"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("byte offset"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("corrupt-frame"), std::string::npos)
      << res.output;

  // Intact chain: exit 0 and a per-frame linkage report.
  write_bytes(snapshot::delta_path(base, 2), frames[2]);
  const ToolResult ok = run_tool("verify-chain " + base);
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
  EXPECT_NE(ok.output.find("chain OK"), std::string::npos) << ok.output;
}

TEST(Tool, SalvageCopiesTheValidPrefixOfATornChain) {
  const auto frames = golden::make_chain();
  const std::string base = tmp_path("salvage.snap");
  write_bytes(base, frames[0]);
  write_bytes(snapshot::delta_path(base, 1), frames[1]);
  std::vector<std::uint8_t> torn = frames[2];
  torn.resize(torn.size() / 3);
  write_bytes(snapshot::delta_path(base, 2), torn);

  const std::string out = tmp_path("salvaged.snap");
  std::remove(out.c_str());
  std::remove(snapshot::delta_path(out, 1).c_str());
  std::remove(snapshot::delta_path(out, 2).c_str());

  const ToolResult res = run_tool("salvage " + base + " " + out);
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("salvage: 2/3 frame(s) valid"), std::string::npos)
      << res.output;
  // The salvaged prefix verifies clean and the torn tail was not copied.
  EXPECT_EQ(run_tool("verify-chain " + out).exit_code, 0);
  EXPECT_EQ(snapshot::read_file(out), frames[0]);
  EXPECT_EQ(snapshot::read_file(snapshot::delta_path(out, 1)), frames[1]);
  FILE* tail = std::fopen(snapshot::delta_path(out, 2).c_str(), "rb");
  EXPECT_EQ(tail, nullptr);
  if (tail != nullptr) std::fclose(tail);
}

TEST(Tool, SalvageWithNothingRestorableFailsTyped) {
  const std::string base = tmp_path("salvage-junk.snap");
  write_garbage(base);
  const ToolResult res =
      run_tool("salvage " + base + " " + tmp_path("salvaged-junk.snap"));
  EXPECT_NE(res.exit_code, 0);
  EXPECT_NE(res.output.find("error: nothing restorable"), std::string::npos)
      << res.output;
}

TEST(Tool, InfoAndExtractStillWorkOnRealFrames) {
  const std::string multi = tmp_path("pos-multi.snap");
  write_bytes(multi, golden::make_multi());
  EXPECT_EQ(run_tool("info " + multi).exit_code, 0);
  const std::string out = tmp_path("pos-extract.snap");
  EXPECT_EQ(run_tool("extract 0 " + multi + " " + out).exit_code, 0);
  EXPECT_EQ(run_tool("info " + out).exit_code, 0);
}

/// A fresh empty directory under TempDir for the fleet-info cases.
std::string fleet_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "tool-fleet-" + name;
  EXPECT_EQ(std::system(("rm -rf '" + dir + "' && mkdir -p '" + dir + "'")
                            .c_str()),
            0);
  return dir;
}

TEST(Tool, FleetInfoRejectsADirectoryWithoutChainsTyped) {
  const std::string empty = fleet_dir("empty");
  expect_typed_failure(run_tool("fleet-info " + empty),
                       "fleet-info on an empty dir");
  const std::string ghost = testing::TempDir() + "tool-fleet-ghost-missing";
  std::system(("rm -rf '" + ghost + "'").c_str());
  expect_typed_failure(run_tool("fleet-info " + ghost),
                       "fleet-info on a missing dir");
}

TEST(Tool, FleetInfoFlagsAnUnrecoverableHostTyped) {
  const std::string dir = fleet_dir("garbage");
  write_garbage(dir + "/host-0.snap");
  const ToolResult res = run_tool("fleet-info " + dir);
  expect_typed_failure(res, "fleet-info with a garbage host chain");
  EXPECT_NE(res.output.find("UNRECOVERABLE"), std::string::npos)
      << res.output;
}

TEST(Tool, FleetInfoReportsHealthyAndTornHostsAndStopsAtTheGap) {
  const std::string dir = fleet_dir("mixed");
  const auto frames = golden::make_chain();
  // Host 0: a clean base + 2 deltas. Host 1: clean base with a torn delta
  // tail (salvageable). Host 3 exists but host 2 does not, so the
  // consecutive scan must stop at 2 and never report host 3.
  write_bytes(dir + "/host-0.snap", frames[0]);
  write_bytes(snapshot::delta_path(dir + "/host-0.snap", 1), frames[1]);
  write_bytes(snapshot::delta_path(dir + "/host-0.snap", 2), frames[2]);
  write_bytes(dir + "/host-1.snap", frames[0]);
  std::vector<std::uint8_t> torn = frames[1];
  torn.resize(torn.size() / 3);
  write_bytes(snapshot::delta_path(dir + "/host-1.snap", 1), torn);
  write_bytes(dir + "/host-3.snap", frames[0]);

  const ToolResult res = run_tool("fleet-info " + dir);
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("host 0: 3/3 frame(s) valid"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("host 1: 1/2 frame(s) valid"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("torn: dropped at"), std::string::npos)
      << res.output;
  EXPECT_NE(
      res.output.find("fleet: 2 host(s), 1 healthy, 1 torn (salvageable), "
                      "0 unrecoverable"),
      std::string::npos)
      << res.output;
  EXPECT_EQ(res.output.find("host 3"), std::string::npos) << res.output;
}

}  // namespace
}  // namespace sgxpl
