#include "core/multi_enclave.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "core/simulator.h"
#include "trace/generators.h"

namespace sgxpl::core {
namespace {

trace::Trace seq_trace(PageNum pages, Cycles gap, std::uint64_t seed = 1) {
  trace::Trace t("seq", pages + 8);
  Rng rng(seed);
  trace::seq_scan(t, rng, trace::Region{0, pages}, 1,
                  trace::GapModel{.mean = gap, .jitter_pct = 0});
  return t;
}

SimConfig shared_config(PageNum epc) {
  SimConfig cfg;
  cfg.enclave.epc_pages = epc;
  cfg.dfp.predictor.stream_list_len = 8;
  return cfg;
}

TEST(MultiEnclave, SingleEnclaveMatchesPlainSimulator) {
  const auto t = seq_trace(64, 2'000);
  const auto cfg = shared_config(128);
  const auto solo = simulate(t, cfg);

  MultiEnclaveSimulator multi(cfg);
  const auto result = multi.run({EnclaveApp{&t, Scheme::kBaseline, nullptr}});
  ASSERT_EQ(result.per_enclave.size(), 1u);
  EXPECT_EQ(result.per_enclave[0].total_cycles, solo.total_cycles);
  EXPECT_EQ(result.per_enclave[0].enclave_faults, solo.enclave_faults);
  EXPECT_EQ(result.makespan, solo.total_cycles);
}

TEST(MultiEnclave, RejectsEmptyInput) {
  MultiEnclaveSimulator multi(shared_config(64));
  EXPECT_THROW(multi.run({}), CheckFailure);
}

TEST(MultiEnclave, SipSchemeRequiresPlan) {
  const auto t = seq_trace(32, 1'000);
  MultiEnclaveSimulator multi(shared_config(64));
  EXPECT_THROW(multi.run({EnclaveApp{&t, Scheme::kSip, nullptr}}),
               CheckFailure);
}

TEST(MultiEnclave, ContentionSlowsBothEnclaves) {
  // Two scans whose combined footprint exceeds the shared EPC: each must
  // finish later than it would alone on the full EPC.
  const auto a = seq_trace(96, 2'000, 1);
  const auto b = seq_trace(96, 2'000, 2);
  const auto cfg = shared_config(128);

  const auto solo_a = simulate(a, cfg);
  const auto solo_b = simulate(b, cfg);

  MultiEnclaveSimulator multi(cfg);
  const auto shared = multi.run({EnclaveApp{&a, Scheme::kBaseline, nullptr},
                                 EnclaveApp{&b, Scheme::kBaseline, nullptr}});
  EXPECT_GE(shared.per_enclave[0].total_cycles, solo_a.total_cycles);
  EXPECT_GE(shared.per_enclave[1].total_cycles, solo_b.total_cycles);
  EXPECT_GT(shared.driver.evictions, 0u);
}

TEST(MultiEnclave, AddressSpacesAreDisjoint) {
  // Same page numbers in both traces must not collide: each enclave's
  // faults equal its solo cold-fault count when the EPC fits both.
  const auto a = seq_trace(32, 1'000, 1);
  const auto b = seq_trace(32, 1'000, 2);
  MultiEnclaveSimulator multi(shared_config(128));
  const auto r = multi.run({EnclaveApp{&a, Scheme::kBaseline, nullptr},
                            EnclaveApp{&b, Scheme::kBaseline, nullptr}});
  EXPECT_EQ(r.per_enclave[0].enclave_faults, 32u);
  EXPECT_EQ(r.per_enclave[1].enclave_faults, 32u);
}

TEST(MultiEnclave, PerEnclaveDfpWorksUnderSharing) {
  // Compute-heavy scans: each enclave's preloads overlap its own compute
  // rather than fighting the other's demand loads for the saturated
  // channel (with memory-bound gaps, cross-enclave channel interference
  // can wash out the per-enclave gain — see bench/multi_enclave).
  const auto a = seq_trace(512, 70'000, 1);
  const auto b = seq_trace(512, 70'000, 2);
  const auto cfg = shared_config(256);

  MultiEnclaveSimulator multi(cfg);
  const auto base = multi.run({EnclaveApp{&a, Scheme::kBaseline, nullptr},
                               EnclaveApp{&b, Scheme::kBaseline, nullptr}});
  const auto dfp = multi.run({EnclaveApp{&a, Scheme::kDfpStop, nullptr},
                              EnclaveApp{&b, Scheme::kDfpStop, nullptr}});
  // Preloading still helps each enclave (the paper's §5.6 claim).
  EXPECT_LT(dfp.per_enclave[0].total_cycles,
            base.per_enclave[0].total_cycles);
  EXPECT_LT(dfp.per_enclave[1].total_cycles,
            base.per_enclave[1].total_cycles);
  EXPECT_GT(dfp.per_enclave[0].dfp_preload_counter, 0u);
  EXPECT_GT(dfp.per_enclave[1].dfp_preload_counter, 0u);
}

TEST(MultiEnclave, MixedSchemesPerEnclave) {
  // One enclave on DFP, one on baseline: only the first preloads.
  const auto a = seq_trace(256, 2'000, 1);
  const auto b = seq_trace(256, 2'000, 2);
  MultiEnclaveSimulator multi(shared_config(256));
  const auto r = multi.run({EnclaveApp{&a, Scheme::kDfpStop, nullptr},
                            EnclaveApp{&b, Scheme::kBaseline, nullptr}});
  EXPECT_GT(r.per_enclave[0].dfp_preload_counter, 0u);
  EXPECT_EQ(r.per_enclave[1].dfp_preload_counter, 0u);
}

TEST(MultiEnclave, MakespanIsMaxOfFinishTimes) {
  const auto a = seq_trace(16, 1'000, 1);
  const auto b = seq_trace(64, 1'000, 2);
  MultiEnclaveSimulator multi(shared_config(128));
  const auto r = multi.run({EnclaveApp{&a, Scheme::kBaseline, nullptr},
                            EnclaveApp{&b, Scheme::kBaseline, nullptr}});
  EXPECT_EQ(r.makespan, std::max(r.per_enclave[0].total_cycles,
                                 r.per_enclave[1].total_cycles));
  EXPECT_LT(r.per_enclave[0].total_cycles, r.per_enclave[1].total_cycles);
}

TEST(MultiEnclave, ThreeEnclavesShareChannel) {
  const auto a = seq_trace(128, 1'000, 1);
  const auto b = seq_trace(128, 1'000, 2);
  const auto c = seq_trace(128, 1'000, 3);
  MultiEnclaveSimulator multi(shared_config(512));
  const auto r = multi.run({EnclaveApp{&a, Scheme::kBaseline, nullptr},
                            EnclaveApp{&b, Scheme::kBaseline, nullptr},
                            EnclaveApp{&c, Scheme::kBaseline, nullptr}});
  ASSERT_EQ(r.per_enclave.size(), 3u);
  // All share one serialized channel: 384 cold faults serialize on it, so
  // every enclave finishes later than its channel-free lower bound.
  for (const auto& m : r.per_enclave) {
    EXPECT_EQ(m.enclave_faults, 128u);
  }
}

}  // namespace
}  // namespace sgxpl::core
