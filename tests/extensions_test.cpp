// Tests for the extension features: adaptive LOADLENGTH and the Path-ORAM
// workload.
#include <gtest/gtest.h>

#include <set>

#include "core/experiment.h"
#include "core/simulator.h"
#include "dfp/dfp_engine.h"
#include "trace/workloads.h"

namespace sgxpl {
namespace {

constexpr double kScale = 0.08;

core::SimConfig platform(core::Scheme scheme) {
  auto cfg = core::paper_platform(scheme);
  cfg.enclave.epc_pages = static_cast<PageNum>(
      static_cast<double>(cfg.enclave.epc_pages) * kScale);
  return cfg;
}

// --- adaptive LOADLENGTH ----------------------------------------------------

TEST(AdaptiveDepth, DeepensOnUsedPreloads) {
  dfp::DfpParams params;
  params.adaptive_load_length = true;
  params.adaptive_max_depth = 16;
  params.predictor.load_length = 4;
  dfp::DfpEngine e(params);
  EXPECT_EQ(e.current_depth(), 4u);

  sgxsim::PageTable pt(10'000);
  // Several scan windows where every preload is used.
  PageNum next = 0;
  for (int window = 0; window < 6; ++window) {
    for (int i = 0; i < 8; ++i) {
      pt.map(next, static_cast<SlotIndex>(next % 1024), true);
      e.on_preload_completed(next, 0);
      pt.touch(next);
      ++next;
    }
    e.on_scan(pt, 1'000u * static_cast<Cycles>(window + 1));
  }
  EXPECT_GT(e.current_depth(), 4u);
  EXPECT_LE(e.current_depth(), 16u);
}

TEST(AdaptiveDepth, CollapsesOnWastedPreloads) {
  dfp::DfpParams params;
  params.adaptive_load_length = true;
  params.predictor.load_length = 8;
  dfp::DfpEngine e(params);

  sgxsim::PageTable pt(10'000);
  PageNum next = 0;
  for (int window = 0; window < 5; ++window) {
    for (int i = 0; i < 8; ++i) {
      pt.map(next, static_cast<SlotIndex>(next % 1024), true);
      e.on_preload_completed(next, 0);  // never touched
      ++next;
    }
    e.on_scan(pt, 1'000u * static_cast<Cycles>(window + 1));
  }
  EXPECT_EQ(e.current_depth(), 1u);
}

TEST(AdaptiveDepth, TruncatesPredictions) {
  dfp::DfpParams params;
  params.adaptive_load_length = true;
  params.adaptive_max_depth = 16;
  params.predictor.load_length = 4;
  dfp::DfpEngine e(params);
  // Current depth starts at 4: a stream hit yields exactly 4 pages even
  // though the underlying predictor can produce 16.
  e.on_fault(ProcessId{0}, 100, 0);
  const auto pred = e.on_fault(ProcessId{0}, 101, 1);
  EXPECT_EQ(pred.size(), 4u);
}

TEST(AdaptiveDepth, SparseWindowsLeaveDepthUntouched) {
  dfp::DfpParams params;
  params.adaptive_load_length = true;
  params.predictor.load_length = 4;
  dfp::DfpEngine e(params);
  sgxsim::PageTable pt(100);
  // Fewer than 4 preloads in the window: no evidence, no change.
  pt.map(1, 0, true);
  e.on_preload_completed(1, 0);
  e.on_scan(pt, 1'000);
  EXPECT_EQ(e.current_depth(), 4u);
}

TEST(AdaptiveDepth, ResetRestoresConfiguredDepth) {
  dfp::DfpParams params;
  params.adaptive_load_length = true;
  params.predictor.load_length = 4;
  dfp::DfpEngine e(params);
  sgxsim::PageTable pt(1'000);
  PageNum next = 0;
  for (int i = 0; i < 8; ++i) {
    pt.map(next, static_cast<SlotIndex>(next), true);
    e.on_preload_completed(next, 0);
    ++next;
  }
  e.on_scan(pt, 1'000);
  ASSERT_LT(e.current_depth(), 4u);  // all wasted -> halved
  e.reset();
  EXPECT_EQ(e.current_depth(), 4u);
}

// --- ORAM workload ----------------------------------------------------------

TEST(Oram, EveryRequestWalksOnePath) {
  const auto* w = trace::find_workload("ORAM");
  ASSERT_NE(w, nullptr);
  EXPECT_FALSE(w->info.paper_benchmark);
  const auto t = w->make(trace::ref_params(kScale));
  // The root (page 0) is touched by every request: its share of accesses is
  // exactly 1/(height+1).
  std::uint64_t root_touches = 0;
  for (const auto& a : t.accesses()) {
    root_touches += a.page == 0 ? 1 : 0;
  }
  EXPECT_GT(root_touches, 0u);
  const auto per_request = t.size() / root_touches;
  EXPECT_GE(per_request, 8u);   // tree height ~12 at this scale
  EXPECT_LE(per_request, 20u);
}

TEST(Oram, PathsAreValidHeapWalks) {
  const auto t =
      trace::find_workload("ORAM")->make(trace::ref_params(kScale * 0.5));
  // Consecutive accesses within a path descend the heap: child index is
  // 2*parent+1 or 2*parent+2.
  PageNum prev = kInvalidPage;
  std::size_t checked = 0;
  for (const auto& a : t.accesses()) {
    if (a.page == 0) {
      prev = 0;  // new request starts at the root
      continue;
    }
    if (prev != kInvalidPage) {
      EXPECT_TRUE(a.page == 2 * prev + 1 || a.page == 2 * prev + 2)
          << "parent " << prev << " child " << a.page;
      ++checked;
    }
    prev = a.page;
  }
  EXPECT_GT(checked, 100u);
}

TEST(Oram, DifferentRunsDifferentPatterns) {
  const auto* w = trace::find_workload("ORAM");
  const auto a = w->make(trace::WorkloadParams{.scale = kScale, .seed = 1});
  const auto b = w->make(trace::WorkloadParams{.scale = kScale, .seed = 2});
  std::size_t differing = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    differing += a.accesses()[i].page != b.accesses()[i].page ? 1u : 0u;
  }
  EXPECT_GT(differing, n / 3);  // position maps diverge immediately
}

TEST(Oram, DfpFindsNothingSipConverts) {
  const auto c = core::compare_schemes(
      "ORAM", {core::Scheme::kDfpStop, core::Scheme::kSip},
      platform(core::Scheme::kBaseline),
      core::ExperimentOptions{.scale = kScale, .train_scale = kScale * 0.5});
  // DFP: essentially nothing to predict.
  EXPECT_NEAR(c.find(core::Scheme::kDfpStop)->improvement, 0.0, 0.01);
  // SIP: converts lower-level faults, a real win.
  EXPECT_GT(c.find(core::Scheme::kSip)->improvement, 0.02);
  EXPECT_GT(c.find(core::Scheme::kSip)->metrics.sip_requests, 0u);
}

TEST(Oram, ExcludedFromPaperBenchLists) {
  for (const auto& name : trace::large_ws_benchmarks()) {
    EXPECT_NE(name, "ORAM");
  }
  for (const auto& name : trace::sip_benchmarks()) {
    EXPECT_NE(name, "ORAM");
  }
}

}  // namespace
}  // namespace sgxpl
