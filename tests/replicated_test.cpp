// Tests for the replicated-measurement helper and the describe()/accessor
// surfaces not covered elsewhere.
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/experiment.h"
#include "dfp/dfp_engine.h"
#include "sgxsim/driver.h"
#include "sip/instrumenter.h"

namespace sgxpl {
namespace {

core::SimConfig tiny() {
  core::SimConfig cfg;
  cfg.enclave.epc_pages = static_cast<PageNum>(24576 * 0.06);
  return cfg;
}

core::ExperimentOptions opts() {
  return {.scale = 0.06, .train_scale = 0.03};
}

TEST(Replicated, ProducesOneResultPerScheme) {
  const auto r = core::compare_schemes_replicated(
      "lbm", {core::Scheme::kDfp, core::Scheme::kDfpStop}, tiny(), opts(), 3);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].scheme, core::Scheme::kDfp);
  EXPECT_EQ(r[1].scheme, core::Scheme::kDfpStop);
  for (const auto& res : r) {
    EXPECT_EQ(res.samples.size(), 3u);
  }
}

TEST(Replicated, MeanMatchesSamples) {
  const auto r = core::compare_schemes_replicated(
      "microbenchmark", {core::Scheme::kDfpStop}, tiny(), opts(), 4);
  const auto& res = r.front();
  double sum = 0.0;
  for (const double s : res.samples) {
    sum += s;
  }
  EXPECT_NEAR(res.mean_improvement, sum / 4.0, 1e-12);
  EXPECT_GE(res.stddev, 0.0);
}

TEST(Replicated, DifferentSeedsActuallyVaryIrregularWorkloads) {
  const auto r = core::compare_schemes_replicated(
      "MSER", {core::Scheme::kSip}, tiny(), opts(), 3);
  const auto& samples = r.front().samples;
  // Different inputs give close but not bit-identical improvements.
  EXPECT_TRUE(samples[0] != samples[1] || samples[1] != samples[2]);
}

TEST(Replicated, RejectsBadArguments) {
  EXPECT_THROW(core::compare_schemes_replicated(
                   "lbm", {core::Scheme::kDfp}, tiny(), opts(), 0),
               CheckFailure);
  EXPECT_THROW(core::compare_schemes_replicated(
                   "nope", {core::Scheme::kDfp}, tiny(), opts(), 1),
               CheckFailure);
}

TEST(Describe, DriverStatsListsCounters) {
  sgxsim::DriverStats s;
  s.faults = 7;
  s.sip_prefetches = 3;
  const std::string d = s.describe();
  EXPECT_NE(d.find("faults=7"), std::string::npos);
  EXPECT_NE(d.find("prefetches=3"), std::string::npos);
}

TEST(Describe, DfpEngineNamesPredictorAndCounters) {
  dfp::DfpParams params;
  params.kind = dfp::PredictorKind::kStride;
  dfp::DfpEngine e(params);
  const std::string d = e.describe();
  EXPECT_NE(d.find("stride"), std::string::npos);
  EXPECT_NE(d.find("PreloadCounter"), std::string::npos);
  EXPECT_NE(d.find("stopped=no"), std::string::npos);
}

TEST(Describe, InstrumentationPlanReportsPoints) {
  sip::InstrumentationPlan plan;
  plan.add_site(1);
  plan.add_site(2);
  EXPECT_NE(plan.describe().find("2 points"), std::string::npos);
}

TEST(Describe, MetricsMentionsKeyFields) {
  core::Metrics m;
  m.total_cycles = 42;
  m.enclave_faults = 7;
  const std::string d = m.describe();
  EXPECT_NE(d.find("total=42"), std::string::npos);
  EXPECT_NE(d.find("faults=7"), std::string::npos);
}

}  // namespace
}  // namespace sgxpl
