#include "sgxsim/backing_store.h"

#include <gtest/gtest.h>

namespace sgxpl::sgxsim {
namespace {

TEST(BackingStore, NeverEvictedPageLoadsVersionZero) {
  BackingStore bs;
  EXPECT_EQ(bs.load(42), 0u);
  EXPECT_EQ(bs.eviction_count(42), 0u);
}

TEST(BackingStore, EvictBumpsAntiReplayVersion) {
  BackingStore bs;
  EXPECT_EQ(bs.evict(7), 1u);
  EXPECT_EQ(bs.evict(7), 2u);
  EXPECT_EQ(bs.load(7), 2u);
  EXPECT_EQ(bs.eviction_count(7), 2u);
}

TEST(BackingStore, FreshnessPerPage) {
  BackingStore bs;
  bs.evict(1);
  bs.evict(1);
  bs.evict(2);
  // Each page's load sees exactly its own latest EWB version.
  EXPECT_EQ(bs.load(1), 2u);
  EXPECT_EQ(bs.load(2), 1u);
  EXPECT_EQ(bs.load(3), 0u);
}

TEST(BackingStore, GlobalCounters) {
  BackingStore bs;
  bs.evict(1);
  bs.evict(2);
  bs.load(1);
  bs.load(1);
  bs.load(9);
  EXPECT_EQ(bs.total_evictions(), 2u);
  EXPECT_EQ(bs.total_loads(), 3u);
}

}  // namespace
}  // namespace sgxpl::sgxsim
