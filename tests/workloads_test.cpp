#include "trace/workloads.h"

#include <gtest/gtest.h>

#include "sgxsim/epc.h"

namespace sgxpl::trace {
namespace {

// Small scale keeps the full-registry sweeps fast.
constexpr double kScale = 0.1;

TEST(Workloads, RegistryComplete) {
  const auto& all = all_workloads();
  EXPECT_EQ(all.size(), 19u);
  for (const char* name :
       {"microbenchmark", "bwaves", "lbm", "wrf", "mcf", "mcf.2006",
        "deepsjeng", "omnetpp", "xz", "roms", "cactuBSSN", "imagick", "leela",
        "nab", "exchange2", "SIFT", "MSER", "mixed-blood", "ORAM"}) {
    EXPECT_NE(find_workload(name), nullptr) << name;
  }
  EXPECT_EQ(find_workload("nonexistent"), nullptr);
}

TEST(Workloads, EveryFactoryProducesNonEmptyTraceWithinElrange) {
  for (const auto& w : all_workloads()) {
    const Trace t = w.make(WorkloadParams{.scale = kScale, .seed = 1});
    EXPECT_FALSE(t.empty()) << w.info.name;
    EXPECT_GT(t.elrange_pages(), 0u) << w.info.name;
    for (const auto& a : t.accesses()) {
      ASSERT_LT(a.page, t.elrange_pages()) << w.info.name;
    }
  }
}

TEST(Workloads, DeterministicPerSeed) {
  const auto* w = find_workload("deepsjeng");
  ASSERT_NE(w, nullptr);
  const WorkloadParams p{.scale = kScale, .seed = 5};
  const Trace a = w->make(p);
  const Trace b = w->make(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.accesses()[i].page, b.accesses()[i].page);
    ASSERT_EQ(a.accesses()[i].site, b.accesses()[i].site);
    ASSERT_EQ(a.accesses()[i].gap, b.accesses()[i].gap);
  }
}

TEST(Workloads, DifferentSeedsProduceDifferentInputs) {
  const auto* w = find_workload("MSER");
  ASSERT_NE(w, nullptr);
  const Trace a = w->make(WorkloadParams{.scale = kScale, .seed = 1});
  const Trace b = w->make(WorkloadParams{.scale = kScale, .seed = 2});
  // Trace lengths may differ slightly (run counts are stochastic); the page
  // sequences must diverge substantially.
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < n; ++i) {
    differing += a.accesses()[i].page != b.accesses()[i].page ? 1u : 0u;
  }
  EXPECT_GT(differing, n / 4);
}

TEST(Workloads, CategoriesMatchFootprints) {
  // At scale 1.0 the categories must hold against the real 96 MiB EPC;
  // checking at a reduced scale against a proportionally reduced EPC.
  const auto epc = static_cast<PageNum>(
      static_cast<double>(sgxsim::kDefaultEpcPages) * kScale);
  for (const auto& w : all_workloads()) {
    const Trace t = w.make(WorkloadParams{.scale = kScale, .seed = 1});
    const auto s = t.stats();
    if (w.info.category == Category::kSmallWorkingSet) {
      EXPECT_LT(s.footprint_pages, epc) << w.info.name;
    } else {
      EXPECT_GT(s.footprint_pages, epc) << w.info.name;
    }
  }
}

TEST(Workloads, RegularWorkloadsAreSequential) {
  for (const char* name : {"microbenchmark", "lbm"}) {
    const auto* w = find_workload(name);
    ASSERT_NE(w, nullptr);
    const Trace t = w->make(WorkloadParams{.scale = kScale, .seed = 1});
    EXPECT_GT(t.stats().sequential_fraction, 0.5) << name;
  }
  // SIFT mixes streaming pyramid passes with keypoint hops: sequential
  // overall but less extreme.
  const Trace sift =
      find_workload("SIFT")->make(WorkloadParams{.scale = kScale, .seed = 1});
  EXPECT_GT(sift.stats().sequential_fraction, 0.25);
}

TEST(Workloads, IrregularWorkloadsAreNot) {
  // deepsjeng is excluded: its trace-level sequentiality is dominated by
  // resident eval-table walks; its *fault* stream is irregular (covered by
  // the Table-1 bench's fault-level classifier).
  for (const char* name : {"omnetpp", "mcf"}) {
    const auto* w = find_workload(name);
    ASSERT_NE(w, nullptr);
    const Trace t = w->make(WorkloadParams{.scale = kScale, .seed = 1});
    EXPECT_LT(t.stats().sequential_fraction, 0.4) << name;
  }
}

TEST(Workloads, MicrobenchmarkIsOneGiBAtFullScale) {
  const auto* w = find_workload("microbenchmark");
  ASSERT_NE(w, nullptr);
  // 1 GiB = 262144 pages; don't generate at full scale here, just check the
  // arithmetic the factory uses.
  EXPECT_EQ(bytes_to_pages(1_GiB), 262'144u);
}

TEST(Workloads, TrainInputsAreSmaller) {
  for (const char* name : {"microbenchmark", "lbm", "deepsjeng"}) {
    const auto* w = find_workload(name);
    ASSERT_NE(w, nullptr);
    const Trace ref = w->make(ref_params(kScale));
    const Trace train = w->make(train_params(kScale));
    EXPECT_LT(train.size(), ref.size()) << name;
  }
}

TEST(Workloads, FortranAndOmnetppExcludedFromSip) {
  for (const char* name : {"bwaves", "roms", "wrf", "exchange2", "omnetpp"}) {
    const auto* w = find_workload(name);
    ASSERT_NE(w, nullptr);
    EXPECT_FALSE(w->info.sip_supported) << name;
  }
  EXPECT_TRUE(find_workload("deepsjeng")->info.sip_supported);
}

TEST(Workloads, BenchmarkListHelpers) {
  const auto large = large_ws_benchmarks();
  EXPECT_EQ(large.size(), 10u);  // 9 SPEC-like + microbenchmark
  const auto sip = sip_benchmarks();
  for (const auto& name : sip) {
    const auto* w = find_workload(name);
    ASSERT_NE(w, nullptr);
    EXPECT_TRUE(w->info.sip_supported) << name;
  }
  // The paper's Fig. 10 set: mcf.2006, mcf, xz, deepsjeng, lbm, micro.
  EXPECT_EQ(sip.size(), 6u);
}

TEST(Workloads, MixedBloodHasSequentialThenIrregularPhases) {
  const auto* w = find_workload("mixed-blood");
  ASSERT_NE(w, nullptr);
  const Trace t = w->make(WorkloadParams{.scale = kScale, .seed = 1});
  const std::size_t half = t.size() / 2;
  std::uint64_t seq_first = 0;
  std::uint64_t seq_second = 0;
  PageNum prev = kInvalidPage;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const PageNum page = t.accesses()[i].page;
    if (prev != kInvalidPage && page == prev + 1) {
      (i < half ? seq_first : seq_second) += 1;
    }
    prev = page;
  }
  EXPECT_GT(seq_first, seq_second * 5);
}

TEST(TraceStats, ComputesBasicFeatures) {
  Trace t("t", 100);
  t.append({.page = 0, .site = 1, .gap = 10});
  t.append({.page = 1, .site = 1, .gap = 10});
  t.append({.page = 2, .site = 2, .gap = 10});
  t.append({.page = 50, .site = 3, .gap = 20});
  const auto s = t.stats();
  EXPECT_EQ(s.accesses, 4u);
  EXPECT_EQ(s.footprint_pages, 4u);
  EXPECT_EQ(s.max_page, 50u);
  EXPECT_EQ(s.sites, 3u);
  EXPECT_EQ(s.compute_cycles, 50u);
  EXPECT_DOUBLE_EQ(s.sequential_fraction, 0.5);  // accesses 2 and 3 of 4
}

}  // namespace
}  // namespace sgxpl::trace
