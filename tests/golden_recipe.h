// The golden-corpus recipe: the exact traces, configurations, and cut
// points from which every checked-in snapshot under tests/golden/ was
// produced. The golden test (tests/golden_test.cpp) and the regeneration
// tool (tests/golden_gen.cpp) share this header, so "regenerate and
// compare" is well-defined.
//
// DO NOT change anything here without regenerating the v2 half of the
// corpus — and note that the v1 half can NEVER be regenerated (the writer
// only emits the current format); v1 files are frozen era artifacts. A
// change that alters the simulated state at the cut points invalidates
// them permanently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/multi_enclave.h"
#include "core/scheme.h"
#include "core/simulator.h"
#include "sip/instrumenter.h"
#include "snapshot/chain.h"
#include "trace/generators.h"

namespace sgxpl::golden {

/// Names of the single-enclave golden cases (one snapshot file per name and
/// era: tests/golden/v1/single-<name>.snap, tests/golden/v2/...).
inline std::vector<std::string> single_case_names() {
  return {"baseline", "dfpstop", "hybrid", "chaos"};
}

/// One small trace shared by all single-enclave cases: a sequential scan
/// that forms DFP streams, then irregular accesses that overflow the EPC.
inline trace::Trace single_trace() {
  trace::Trace t("golden-single", 512);
  Rng rng(21);
  const trace::GapModel gap{.mean = 2'000, .jitter_pct = 0};
  trace::seq_scan(t, rng, trace::Region{0, 200}, 1, gap);
  trace::random_access(t, rng, trace::Region{200, 280}, 400, 10, 4, gap);
  return t;
}

/// Instrumentation plan for SIP-using cases (sites used by single_trace's
/// irregular phase).
inline sip::InstrumentationPlan single_plan() {
  sip::InstrumentationPlan plan;
  for (SiteId s = 10; s < 14; ++s) {
    plan.add_site(s);
  }
  return plan;
}

inline core::SimConfig single_config(const std::string& name) {
  core::SimConfig cfg;
  cfg.enclave.epc_pages = 48;
  cfg.dfp.predictor.stream_list_len = 8;
  cfg.dfp.predictor.load_length = 4;
  cfg.validate = true;
  if (name == "baseline") {
    cfg.scheme = core::Scheme::kBaseline;
  } else if (name == "dfpstop") {
    cfg.scheme = core::Scheme::kDfpStop;
  } else if (name == "hybrid") {
    cfg.scheme = core::Scheme::kHybrid;
  } else if (name == "chaos") {
    cfg.scheme = core::Scheme::kDfpStop;
    cfg.chaos = inject::ChaosPlan::all(7);
  } else {
    SGXPL_CHECK_MSG(false, "unknown golden case '" << name << "'");
  }
  return cfg;
}

/// Access boundary at which every single-enclave golden was snapshotted.
inline constexpr std::uint64_t kSingleCut = 300;

/// Serialize the state of single case `name` at the cut point.
inline std::vector<std::uint8_t> make_single(const std::string& name) {
  const trace::Trace t = single_trace();
  const sip::InstrumentationPlan plan = single_plan();
  core::SimulationRun run(single_config(name), t, &plan);
  while (!run.done() && run.cursor() < kSingleCut) {
    run.step();
  }
  return run.save_bytes();
}

// --- delta-chain case (format v2 only) --------------------------------------

/// Cut points of the chain golden: the dfpstop case checkpointed three
/// times with full_every = kChainFullEvery, yielding a full base followed
/// by two delta frames (tests/golden/v2/chain-dfpstop.*).
inline constexpr std::uint64_t kChainCuts[] = {300, 340, 380};
inline constexpr std::uint64_t kChainFullEvery = 8;

/// Serialize the chain golden's three frames, base first.
inline std::vector<std::vector<std::uint8_t>> make_chain() {
  const trace::Trace t = single_trace();
  const sip::InstrumentationPlan plan = single_plan();
  core::SimulationRun run(single_config("dfpstop"), t, &plan);
  snapshot::Snapshotter<core::SimulationRun> snap(kChainFullEvery);
  std::vector<std::vector<std::uint8_t>> frames;
  for (const std::uint64_t cut : kChainCuts) {
    while (!run.done() && run.cursor() < cut) {
      run.step();
    }
    frames.push_back(snap.checkpoint(run).bytes);
  }
  return frames;
}

// --- multi-enclave case -----------------------------------------------------

inline trace::Trace multi_trace(std::uint64_t seed) {
  trace::Trace t(seed == 11 ? "golden-a" : "golden-b", 256);
  Rng rng(seed);
  const trace::GapModel gap{.mean = 2'000, .jitter_pct = 0};
  trace::seq_scan(t, rng, trace::Region{0, 128}, 1, gap);
  trace::random_access(t, rng, trace::Region{128, 122}, 250, 10, 4, gap);
  return t;
}

inline core::SimConfig multi_config() {
  core::SimConfig cfg;
  cfg.enclave.epc_pages = 64;  // shared physical EPC
  cfg.dfp.predictor.stream_list_len = 8;
  cfg.dfp.predictor.load_length = 4;
  cfg.validate = true;
  return cfg;
}

/// Combined-step boundary at which the multi-enclave golden was snapshotted.
inline constexpr std::uint64_t kMultiCut = 400;

/// Apps for the multi case: `a` and `b` must be multi_trace(11) and
/// multi_trace(12) and must outlive the run.
inline std::vector<core::EnclaveApp> multi_apps(const trace::Trace& a,
                                                const trace::Trace& b) {
  return {
      {.trace = &a, .scheme = core::Scheme::kDfpStop},
      {.trace = &b, .scheme = core::Scheme::kBaseline},
  };
}

inline std::vector<std::uint8_t> make_multi() {
  const trace::Trace a = multi_trace(11);
  const trace::Trace b = multi_trace(12);
  core::MultiEnclaveRun run(multi_config(), multi_apps(a, b));
  while (!run.done() && run.steps() < kMultiCut) {
    run.step();
  }
  return run.save_bytes();
}

}  // namespace sgxpl::golden
