// Unit tests for the configuration/metrics surface: cost model, scheme
// predicates, enum names, describe() strings, and the experiment runner.
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/experiment.h"
#include "core/scheme.h"
#include "dfp/dfp_engine.h"
#include "inject/chaos_plan.h"
#include "obs/event_log.h"
#include "sgxsim/cost_model.h"
#include "sgxsim/driver.h"
#include "sgxsim/eviction.h"
#include "sgxsim/paging_channel.h"

namespace sgxpl {
namespace {

TEST(CostModel, PaperDefaults) {
  const sgxsim::CostModel c;
  EXPECT_EQ(c.aex, 10'000u);
  EXPECT_EQ(c.eresume, 10'000u);
  EXPECT_EQ(c.epc_load, 44'000u);
  EXPECT_EQ(c.native_fault, 2'000u);
  EXPECT_EQ(c.fault_cost_min(), 64'000u);
  EXPECT_EQ(c.fault_cost_max(), 68'000u);
  // The paper's 60k-64k bracket is spanned by min/max.
  EXPECT_GE(c.fault_cost_min(), 60'000u);
}

TEST(CostModel, DescribeMentionsEveryKnob) {
  const sgxsim::CostModel c;
  const std::string d = c.describe();
  for (const char* key : {"aex", "eresume", "epc_load", "epc_evict",
                          "preload_dispatch", "native_fault", "bitmap_check",
                          "sip_notification", "scan_period"}) {
    EXPECT_NE(d.find(key), std::string::npos) << key;
  }
}

TEST(EnumNames, DemandPolicy) {
  using sgxsim::DemandPolicy;
  EXPECT_STREQ(to_string(DemandPolicy::kPreempt), "preempt");
  EXPECT_STREQ(to_string(DemandPolicy::kPreemptAndFlush), "preempt+flush");
  EXPECT_STREQ(to_string(DemandPolicy::kFifo), "fifo");
}

TEST(EnumNames, PredictorKind) {
  using dfp::PredictorKind;
  EXPECT_STREQ(to_string(PredictorKind::kMultiStream), "multi-stream");
  EXPECT_STREQ(to_string(PredictorKind::kNextN), "next-n");
  EXPECT_STREQ(to_string(PredictorKind::kStride), "stride");
  EXPECT_STREQ(to_string(PredictorKind::kMarkov), "markov");
  EXPECT_STREQ(to_string(PredictorKind::kTournament), "tournament");
}

// --- to_string/parse round-trips: every enum value survives the trip, and
// --- unknown spellings are rejected rather than defaulted.

TEST(EnumRoundTrip, DemandPolicy) {
  using sgxsim::DemandPolicy;
  for (const DemandPolicy p : {DemandPolicy::kPreempt,
                               DemandPolicy::kPreemptAndFlush,
                               DemandPolicy::kFifo}) {
    const auto parsed = sgxsim::parse_demand_policy(to_string(p));
    ASSERT_TRUE(parsed.has_value()) << to_string(p);
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(sgxsim::parse_demand_policy("preempt-and-flush").has_value());
  EXPECT_FALSE(sgxsim::parse_demand_policy("").has_value());
}

TEST(EnumRoundTrip, EvictionKind) {
  using sgxsim::EvictionKind;
  for (const EvictionKind k : {EvictionKind::kClock, EvictionKind::kFifo,
                               EvictionKind::kRandom, EvictionKind::kLru}) {
    const auto parsed = sgxsim::parse_eviction_kind(to_string(k));
    ASSERT_TRUE(parsed.has_value()) << to_string(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(sgxsim::parse_eviction_kind("mru").has_value());
  EXPECT_FALSE(sgxsim::parse_eviction_kind("CLOCK").has_value());
}

TEST(EnumRoundTrip, PredictorKind) {
  using dfp::PredictorKind;
  for (const PredictorKind k :
       {PredictorKind::kMultiStream, PredictorKind::kNextN,
        PredictorKind::kStride, PredictorKind::kMarkov,
        PredictorKind::kTournament}) {
    const auto parsed = dfp::parse_predictor_kind(to_string(k));
    ASSERT_TRUE(parsed.has_value()) << to_string(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(dfp::parse_predictor_kind("oracle").has_value());
}

TEST(EnumRoundTrip, OpKind) {
  using sgxsim::OpKind;
  for (const OpKind k :
       {OpKind::kDemandLoad, OpKind::kDfpPreload, OpKind::kSipLoad}) {
    EXPECT_STRNE(to_string(k), "?");
    const auto parsed = sgxsim::parse_op_kind(to_string(k));
    ASSERT_TRUE(parsed.has_value()) << to_string(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(sgxsim::parse_op_kind("demand-load").has_value());
  EXPECT_FALSE(sgxsim::parse_op_kind("").has_value());
}

TEST(EnumRoundTrip, EventType) {
  using obs::EventType;
  for (const EventType t :
       {EventType::kFault, EventType::kLoadScheduled,
        EventType::kLoadCommitted, EventType::kLoadsAborted,
        EventType::kEviction, EventType::kResume, EventType::kSipRequest,
        EventType::kSipPrefetch, EventType::kScan, EventType::kChaos,
        EventType::kWatchdog}) {
    EXPECT_STRNE(to_string(t), "?");
    const auto parsed = obs::parse_event_type(to_string(t));
    ASSERT_TRUE(parsed.has_value()) << to_string(t);
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(obs::parse_event_type("fault").has_value());
  EXPECT_FALSE(obs::parse_event_type("").has_value());
}

TEST(EnumRoundTrip, FaultKind) {
  for (const inject::FaultKind k : inject::all_fault_kinds()) {
    EXPECT_STRNE(to_string(k), "?");
    const auto parsed = inject::parse_fault_kind(to_string(k));
    ASSERT_TRUE(parsed.has_value()) << to_string(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(inject::parse_fault_kind("meteor-strike").has_value());
  EXPECT_FALSE(inject::parse_fault_kind("").has_value());
}

TEST(EnumNames, SchemesComplete) {
  using core::Scheme;
  EXPECT_STREQ(to_string(Scheme::kNative), "native");
  EXPECT_STREQ(to_string(Scheme::kBaseline), "baseline");
  EXPECT_STREQ(to_string(Scheme::kSip), "SIP");
}

TEST(PaperPlatform, MatchesEvaluationSetup) {
  const auto cfg = core::paper_platform();
  EXPECT_EQ(cfg.enclave.epc_pages, sgxsim::kDefaultEpcPages);
  EXPECT_EQ(pages_to_bytes(cfg.enclave.epc_pages), 96ull << 20);
  EXPECT_EQ(cfg.dfp.predictor.stream_list_len, 30u);   // Fig. 6
  EXPECT_EQ(cfg.dfp.predictor.load_length, 4u);        // Fig. 7
  EXPECT_DOUBLE_EQ(cfg.sip.irregular_threshold, 0.05); // Fig. 9
  EXPECT_EQ(cfg.sip_lookahead, 0u);                    // conservative SIP
  EXPECT_TRUE(cfg.enclave.serial_channel);
  EXPECT_EQ(cfg.enclave.demand_policy, sgxsim::DemandPolicy::kPreempt);
  EXPECT_EQ(cfg.enclave.eviction, sgxsim::EvictionKind::kClock);
}

TEST(SimConfigDescribe, MentionsKeyParameters) {
  auto cfg = core::paper_platform(core::Scheme::kHybrid);
  const std::string d = cfg.describe();
  EXPECT_NE(d.find("SIP+DFP"), std::string::npos);
  EXPECT_NE(d.find("epc_pages"), std::string::npos);
  EXPECT_NE(d.find("load_length"), std::string::npos);
}

TEST(Units, ByteLiteralsAndPageMath) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(1_MiB, 1024u * 1024u);
  EXPECT_EQ(1_GiB, 1024u * 1024u * 1024u);
  EXPECT_EQ(bytes_to_pages(4096), 1u);
  EXPECT_EQ(bytes_to_pages(4097), 2u);
  EXPECT_EQ(bytes_to_pages(0), 0u);
  EXPECT_EQ(pages_to_bytes(3), 12'288u);
}

TEST(Check, MacrosThrowWithContext) {
  try {
    SGXPL_CHECK_MSG(1 == 2, "the answer is " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the answer is 42"), std::string::npos);
    EXPECT_NE(what.find("config_test.cpp"), std::string::npos);
  }
}

TEST(Experiment, BaselineSchemeNormalizesToOne) {
  auto cfg = core::paper_platform();
  cfg.enclave.epc_pages = 256;
  const auto c = core::compare_schemes(
      "leela", {core::Scheme::kBaseline, core::Scheme::kDfpStop}, cfg,
      core::ExperimentOptions{.scale = 0.05, .train_scale = 0.02});
  const auto* base = c.find(core::Scheme::kBaseline);
  ASSERT_NE(base, nullptr);
  EXPECT_DOUBLE_EQ(base->normalized, 1.0);
  EXPECT_DOUBLE_EQ(base->improvement, 0.0);
  EXPECT_EQ(base->metrics.total_cycles, c.baseline.total_cycles);
}

TEST(Experiment, FindReturnsNullForMissingScheme) {
  auto cfg = core::paper_platform();
  cfg.enclave.epc_pages = 256;
  const auto c = core::compare_schemes(
      "leela", {core::Scheme::kDfp}, cfg,
      core::ExperimentOptions{.scale = 0.05, .train_scale = 0.02});
  EXPECT_EQ(c.find(core::Scheme::kHybrid), nullptr);
  EXPECT_NE(c.find(core::Scheme::kDfp), nullptr);
  EXPECT_EQ(c.workload, "leela");
}

TEST(Experiment, UnknownWorkloadThrows) {
  EXPECT_THROW(core::compare_schemes("no-such-benchmark",
                                     {core::Scheme::kDfp},
                                     core::paper_platform()),
               CheckFailure);
}

TEST(Experiment, SipUnsupportedWorkloadRunsWithEmptyPlan) {
  auto cfg = core::paper_platform();
  cfg.enclave.epc_pages = static_cast<PageNum>(24576 * 0.05);
  const auto c = core::compare_schemes(
      "bwaves", {core::Scheme::kSip}, cfg,
      core::ExperimentOptions{.scale = 0.05, .train_scale = 0.02});
  EXPECT_EQ(c.sip_points, 0u);
  EXPECT_DOUBLE_EQ(c.find(core::Scheme::kSip)->normalized, 1.0);
}

}  // namespace
}  // namespace sgxpl
