#include "dfp/dfp_engine.h"

#include <gtest/gtest.h>

#include "sgxsim/page_table.h"

namespace sgxpl::dfp {
namespace {

constexpr ProcessId kPid{0};

DfpParams engine_params(bool stop = false, std::uint64_t slack = 4) {
  DfpParams p;
  p.predictor.stream_list_len = 4;
  p.predictor.load_length = 4;
  p.stop_enabled = stop;
  p.stop_slack = slack;
  return p;
}

TEST(PreloadedPageList, CountsLoadsAndCredits) {
  PreloadedPageList list;
  sgxsim::PageTable pt(100);
  pt.map(1, 0, true);
  pt.map(2, 1, true);
  list.on_loaded(1);
  list.on_loaded(2);
  EXPECT_EQ(list.preload_counter(), 2u);
  EXPECT_EQ(list.tracked(), 2u);

  pt.touch(1);  // page 1 used
  EXPECT_EQ(list.scan(pt), 1u);
  EXPECT_EQ(list.acc_preload_counter(), 1u);
  EXPECT_EQ(list.tracked(), 1u);  // page 2 still pending
}

TEST(PreloadedPageList, CreditsClearedBitViaPreloadedFlag) {
  // If a CLOCK sweep consumed the access bit before the scan, the cleared
  // `preloaded` flag still proves the page was touched.
  PreloadedPageList list;
  sgxsim::PageTable pt(100);
  pt.map(1, 0, true);
  list.on_loaded(1);
  pt.touch(1);
  pt.test_and_clear_accessed(1);
  EXPECT_EQ(list.scan(pt), 1u);
}

TEST(PreloadedPageList, EvictedPagesAreUnused) {
  PreloadedPageList list;
  list.on_loaded(5);
  list.on_evicted(5);
  EXPECT_EQ(list.evicted_unused(), 1u);
  EXPECT_EQ(list.tracked(), 0u);
  EXPECT_EQ(list.acc_preload_counter(), 0u);
  // Evicting an untracked page is a no-op.
  list.on_evicted(99);
  EXPECT_EQ(list.evicted_unused(), 1u);
}

TEST(PreloadedPageList, ScanDropsNonResidentPages) {
  PreloadedPageList list;
  sgxsim::PageTable pt(100);
  list.on_loaded(7);  // never mapped (e.g. evicted without notification)
  EXPECT_EQ(list.scan(pt), 0u);
  EXPECT_EQ(list.tracked(), 0u);
  EXPECT_EQ(list.evicted_unused(), 1u);
}

TEST(DfpEngine, ForwardsPredictions) {
  DfpEngine e(engine_params());
  EXPECT_TRUE(e.on_fault(kPid, 100, 0).empty());
  const auto pred = e.on_fault(kPid, 101, 10);
  EXPECT_EQ(pred.size(), 4u);
  EXPECT_EQ(pred.front(), 102u);
}

TEST(DfpEngine, StopValveTriggersOnWaste) {
  DfpEngine e(engine_params(/*stop=*/true, /*slack=*/4));
  sgxsim::PageTable pt(1000);
  // 20 preloads, none ever accessed.
  for (PageNum p = 0; p < 20; ++p) {
    pt.map(p, static_cast<SlotIndex>(p), true);
    e.on_preload_completed(p, 100);
  }
  EXPECT_FALSE(e.stopped());
  e.on_scan(pt, 5'000);
  // AccPreload(0) + slack(4) < PreloadCounter(20)/2 -> stop.
  EXPECT_TRUE(e.stopped());
  EXPECT_EQ(e.stopped_at(), 5'000u);
  // Once stopped, no more predictions ever.
  e.on_fault(kPid, 100, 6'000);
  EXPECT_TRUE(e.on_fault(kPid, 101, 6'001).empty());
}

TEST(DfpEngine, StopValveSatisfiedByGoodPreloads) {
  DfpEngine e(engine_params(true, 4));
  sgxsim::PageTable pt(1000);
  for (PageNum p = 0; p < 20; ++p) {
    pt.map(p, static_cast<SlotIndex>(p), true);
    e.on_preload_completed(p, 100);
    pt.touch(p);  // every preload used
  }
  e.on_scan(pt, 5'000);
  EXPECT_FALSE(e.stopped());
  EXPECT_EQ(e.preloaded_pages().acc_preload_counter(), 20u);
}

TEST(DfpEngine, StopDisabledNeverStops) {
  DfpEngine e(engine_params(/*stop=*/false));
  sgxsim::PageTable pt(1000);
  for (PageNum p = 0; p < 100; ++p) {
    pt.map(p, static_cast<SlotIndex>(p), true);
    e.on_preload_completed(p, 0);
  }
  e.on_scan(pt, 1'000);
  EXPECT_FALSE(e.stopped());
}

TEST(DfpEngine, SlackDelaysStop) {
  DfpEngine e(engine_params(true, /*slack=*/1'000));
  sgxsim::PageTable pt(1000);
  for (PageNum p = 0; p < 100; ++p) {
    pt.map(p, static_cast<SlotIndex>(p), true);
    e.on_preload_completed(p, 0);
  }
  e.on_scan(pt, 1'000);
  // 0 + 1000 >= 100/2: within slack, keep going.
  EXPECT_FALSE(e.stopped());
}

TEST(DfpEngine, AbortsAreCounted) {
  DfpEngine e(engine_params());
  e.on_preloads_aborted({1, 2, 3}, 50);
  EXPECT_EQ(e.aborted_preloads(), 3u);
}

TEST(DfpEngine, EvictionCallbackForwardsToList) {
  DfpEngine e(engine_params());
  e.on_preload_completed(9, 0);
  e.on_preloaded_page_evicted(9, false, 10);
  EXPECT_EQ(e.preloaded_pages().evicted_unused(), 1u);
}

TEST(DfpEngine, ResetRestoresInitialState) {
  DfpEngine e(engine_params(true, 0));
  sgxsim::PageTable pt(100);
  for (PageNum p = 0; p < 10; ++p) {
    pt.map(p, static_cast<SlotIndex>(p), true);
    e.on_preload_completed(p, 0);
  }
  e.on_scan(pt, 100);
  ASSERT_TRUE(e.stopped());
  e.reset();
  EXPECT_FALSE(e.stopped());
  EXPECT_EQ(e.preloaded_pages().preload_counter(), 0u);
}

}  // namespace
}  // namespace sgxpl::dfp
