#include "trace/generators.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/check.h"

namespace sgxpl::trace {
namespace {

TEST(GapModel, ZeroMeanGivesZero) {
  Rng rng(1);
  GapModel g{.mean = 0, .jitter_pct = 0.5};
  EXPECT_EQ(g.sample(rng), 0u);
}

TEST(GapModel, JitterStaysInBand) {
  Rng rng(2);
  GapModel g{.mean = 10'000, .jitter_pct = 0.2};
  for (int i = 0; i < 1000; ++i) {
    const Cycles v = g.sample(rng);
    EXPECT_GE(v, 8'000u);
    EXPECT_LE(v, 12'000u);
  }
}

TEST(GapModel, NoJitterIsExact) {
  Rng rng(3);
  GapModel g{.mean = 5'000, .jitter_pct = 0.0};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(g.sample(rng), 5'000u);
  }
}

TEST(SeqScan, VisitsEveryPageInOrder) {
  Trace t("x", 100);
  Rng rng(1);
  seq_scan(t, rng, Region{10, 20}, 1, GapModel{.mean = 100, .jitter_pct = 0});
  ASSERT_EQ(t.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(t.accesses()[i].page, 10 + i);
    EXPECT_EQ(t.accesses()[i].site, 1u);
  }
}

TEST(SeqScan, StrideSkipsPages) {
  Trace t("x", 100);
  Rng rng(1);
  seq_scan(t, rng, Region{0, 10}, 1, GapModel{.mean = 1, .jitter_pct = 0},
           /*stride=*/3);
  ASSERT_EQ(t.size(), 4u);  // ceil(10/3)
  EXPECT_EQ(t.accesses()[0].page, 0u);
  EXPECT_EQ(t.accesses()[1].page, 3u);
  EXPECT_EQ(t.accesses()[3].page, 9u);
}

TEST(SeqScan, JumpsBreakSequentiality) {
  Trace t("x", 10000);
  Rng rng(7);
  seq_scan(t, rng, Region{0, 5000}, 1, GapModel{.mean = 1, .jitter_pct = 0},
           1, /*jump_prob=*/0.5);
  const auto s = t.stats();
  EXPECT_LT(s.sequential_fraction, 0.8);
  EXPECT_GT(s.sequential_fraction, 0.2);
}

TEST(MultiStream, InterleavesStreams) {
  Trace t("x", 100);
  Rng rng(1);
  multi_stream_scan(t, rng, Region{0, 40}, /*streams=*/4, /*site_base=*/10,
                    GapModel{.mean = 1, .jitter_pct = 0}, /*chunk=*/1);
  ASSERT_EQ(t.size(), 40u);
  // First round-robin covers the 4 slice heads.
  EXPECT_EQ(t.accesses()[0].page, 0u);
  EXPECT_EQ(t.accesses()[1].page, 10u);
  EXPECT_EQ(t.accesses()[2].page, 20u);
  EXPECT_EQ(t.accesses()[3].page, 30u);
  // Sites identify the stream.
  EXPECT_EQ(t.accesses()[0].site, 10u);
  EXPECT_EQ(t.accesses()[3].site, 13u);
  // All pages covered exactly once.
  std::set<PageNum> pages;
  for (const auto& a : t.accesses()) pages.insert(a.page);
  EXPECT_EQ(pages.size(), 40u);
}

TEST(MultiStream, ChunkGroupsConsecutivePages) {
  Trace t("x", 100);
  Rng rng(1);
  multi_stream_scan(t, rng, Region{0, 32}, 2, 0,
                    GapModel{.mean = 1, .jitter_pct = 0}, /*chunk=*/4);
  // First four accesses are stream 0's pages 0-3.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.accesses()[i].page, i);
  }
  EXPECT_EQ(t.accesses()[4].page, 16u);  // then stream 1's chunk
}

TEST(MultiStream, UnevenSliceCoversAllPages) {
  Trace t("x", 100);
  Rng rng(1);
  multi_stream_scan(t, rng, Region{0, 37}, 5, 0,
                    GapModel{.mean = 1, .jitter_pct = 0});
  std::set<PageNum> pages;
  for (const auto& a : t.accesses()) pages.insert(a.page);
  EXPECT_EQ(pages.size(), 37u);
}

TEST(RandomAccess, StaysInRegionAndSiteRange) {
  Trace t("x", 1000);
  Rng rng(5);
  random_access(t, rng, Region{100, 200}, 5000, /*site_base=*/50,
                /*sites=*/10, GapModel{.mean = 1, .jitter_pct = 0});
  ASSERT_EQ(t.size(), 5000u);
  std::unordered_set<SiteId> sites;
  for (const auto& a : t.accesses()) {
    EXPECT_GE(a.page, 100u);
    EXPECT_LT(a.page, 300u);
    EXPECT_GE(a.site, 50u);
    EXPECT_LT(a.site, 60u);
    sites.insert(a.site);
  }
  EXPECT_EQ(sites.size(), 10u);  // all sites used
}

TEST(ZipfAccess, SkewedReuse) {
  Trace t("x", 10000);
  Rng rng(5);
  zipf_access(t, rng, Region{0, 5000}, 20000, 0.99, 0, 4,
              GapModel{.mean = 1, .jitter_pct = 0});
  const auto s = t.stats();
  // Zipf concentrates mass: far fewer distinct pages than a uniform draw
  // of the same count would touch.
  EXPECT_LT(s.footprint_pages, 4000u);
}

TEST(PointerChase, VisitsAllPagesBeforeRepeating) {
  Trace t("x", 100);
  Rng rng(9);
  pointer_chase(t, rng, Region{0, 50}, 50, 1,
                GapModel{.mean = 1, .jitter_pct = 0});
  std::set<PageNum> pages;
  for (const auto& a : t.accesses()) pages.insert(a.page);
  EXPECT_EQ(pages.size(), 50u);  // a full cycle covers the region
}

TEST(PointerChase, DeterministicPerSeed) {
  Trace t1("x", 100);
  Trace t2("x", 100);
  Rng r1(3);
  Rng r2(3);
  pointer_chase(t1, r1, Region{0, 30}, 60, 1,
                GapModel{.mean = 1, .jitter_pct = 0});
  pointer_chase(t2, r2, Region{0, 30}, 60, 1,
                GapModel{.mean = 1, .jitter_pct = 0});
  for (std::size_t i = 0; i < 60; ++i) {
    EXPECT_EQ(t1.accesses()[i].page, t2.accesses()[i].page);
  }
}

TEST(ShortRuns, RunsAreShortAndSequential) {
  Trace t("x", 10000);
  Rng rng(11);
  short_sequential_runs(t, rng, Region{0, 5000}, /*runs=*/100, /*max_run=*/4,
                        0, 5, GapModel{.mean = 1, .jitter_pct = 0});
  EXPECT_GE(t.size(), 200u);  // at least 2 pages per run
  EXPECT_LE(t.size(), 400u);  // at most 4
}

TEST(HotColdMix, RespectsHotProbability) {
  Trace t("x", 10000);
  Rng rng(13);
  const Region hot{0, 100};
  const Region cold{100, 5000};
  hot_cold_mixed_sites(t, rng, hot, cold, 20000, 0.9, 0, 10,
                       GapModel{.mean = 1, .jitter_pct = 0});
  std::uint64_t hot_hits = 0;
  for (const auto& a : t.accesses()) {
    hot_hits += hot.contains(a.page) ? 1u : 0u;
  }
  EXPECT_NEAR(static_cast<double>(hot_hits) / 20000.0, 0.9, 0.02);
}

TEST(StridedSweep, CoversEveryPageExactlyOnce) {
  Trace t("x", 1000);
  Rng rng(17);
  strided_sweep(t, rng, Region{0, 100}, /*stride=*/7, 1,
                GapModel{.mean = 1, .jitter_pct = 0});
  std::set<PageNum> pages;
  for (const auto& a : t.accesses()) pages.insert(a.page);
  EXPECT_EQ(t.size(), 100u);
  EXPECT_EQ(pages.size(), 100u);
  // Consecutive accesses are `stride` apart (except at wrap points).
  EXPECT_EQ(t.accesses()[1].page - t.accesses()[0].page, 7u);
}

TEST(Region, ContainsBounds) {
  const Region r{10, 5};
  EXPECT_FALSE(r.contains(9));
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(14));
  EXPECT_FALSE(r.contains(15));
}

}  // namespace
}  // namespace sgxpl::trace
