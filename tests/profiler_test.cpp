#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/simulator.h"
#include "trace/workloads.h"

namespace sgxpl::obs {
namespace {

using Phase = obs::Phase;

TEST(PhaseTest, ToStringParseRoundTrip) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Phase p = static_cast<Phase>(i);
    const auto back = parse_phase(to_string(p));
    ASSERT_TRUE(back.has_value()) << to_string(p);
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(parse_phase("no_such_phase").has_value());
  EXPECT_FALSE(parse_phase("").has_value());
}

TEST(ProfilerTest, SpanNestingBuildsTree) {
  Profiler prof;
  prof.set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    ScopedSpan step(&prof, Phase::kStep);
    step.add_cycles(10);
    {
      ScopedSpan fault(&prof, Phase::kFault);
      fault.add_cycles(100);
      ScopedSpan evict(&prof, Phase::kEviction);
      evict.add_cycles(7);
    }
    ScopedSpan lookup(&prof, Phase::kPageTableLookup);
  }

  const PhaseProfile p = prof.profile();
  ASSERT_EQ(p.roots.size(), 1u);
  const auto* step = p.find({Phase::kStep});
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->count, 3u);
  EXPECT_EQ(step->sim_cycles, 30u);

  const auto* fault = p.find({Phase::kStep, Phase::kFault});
  ASSERT_NE(fault, nullptr);
  EXPECT_EQ(fault->count, 3u);
  EXPECT_EQ(fault->sim_cycles, 300u);

  // kEviction nests under kFault, not under kStep: the tree is keyed by
  // actual runtime nesting.
  EXPECT_EQ(p.find({Phase::kStep, Phase::kEviction}), nullptr);
  const auto* evict = p.find({Phase::kStep, Phase::kFault, Phase::kEviction});
  ASSERT_NE(evict, nullptr);
  EXPECT_EQ(evict->count, 3u);
  EXPECT_EQ(evict->sim_cycles, 21u);

  const auto* lookup = p.find({Phase::kStep, Phase::kPageTableLookup});
  ASSERT_NE(lookup, nullptr);
  EXPECT_EQ(lookup->count, 3u);
  EXPECT_EQ(p.node_count(), 4u);
}

TEST(ProfilerTest, SameSiteDifferentParentsAreDistinctNodes) {
  Profiler prof;
  prof.set_enabled(true);
  {
    ScopedSpan fault(&prof, Phase::kFault);
    ScopedSpan ch(&prof, Phase::kChannelService);
    ch.add_cycles(5);
  }
  {
    ScopedSpan scan(&prof, Phase::kScan);
    ScopedSpan ch(&prof, Phase::kChannelService);
    ch.add_cycles(9);
  }
  const PhaseProfile p = prof.profile();
  const auto* under_fault = p.find({Phase::kFault, Phase::kChannelService});
  const auto* under_scan = p.find({Phase::kScan, Phase::kChannelService});
  ASSERT_NE(under_fault, nullptr);
  ASSERT_NE(under_scan, nullptr);
  EXPECT_EQ(under_fault->sim_cycles, 5u);
  EXPECT_EQ(under_scan->sim_cycles, 9u);
}

TEST(ProfilerTest, EarlyExitUnwindsSpans) {
  Profiler prof;
  prof.set_enabled(true);
  const auto thrower = [&prof] {
    ScopedSpan outer(&prof, Phase::kStep);
    ScopedSpan inner(&prof, Phase::kFault);
    inner.add_cycles(1);
    throw std::runtime_error("early exit");
  };
  EXPECT_THROW(thrower(), std::runtime_error);

  // Both spans closed on unwind: a fresh top-level span lands at the root,
  // not under a dangling kFault.
  {
    ScopedSpan next(&prof, Phase::kScan);
  }
  const PhaseProfile p = prof.profile();
  EXPECT_NE(p.find({Phase::kStep, Phase::kFault}), nullptr);
  EXPECT_NE(p.find({Phase::kScan}), nullptr);
  EXPECT_EQ(p.find({Phase::kStep, Phase::kFault, Phase::kScan}), nullptr);
  EXPECT_EQ(p.find({Phase::kStep, Phase::kScan}), nullptr);
}

TEST(ProfilerTest, DisabledRecordsNothingAndAllocatesNothing) {
  Profiler prof;  // default: disabled
  for (int i = 0; i < 100; ++i) {
    ScopedSpan span(&prof, Phase::kFault);
    span.add_cycles(123);
    ScopedSpan nested(&prof, Phase::kEviction);
  }
  EXPECT_EQ(prof.node_count(), 0u);
  EXPECT_TRUE(prof.profile().empty());

  // Null profiler is equally inert.
  ScopedSpan null_span(nullptr, Phase::kStep);
  null_span.add_cycles(5);
}

TEST(ProfilerTest, ResetClearsSpans) {
  Profiler prof;
  prof.set_enabled(true);
  {
    ScopedSpan s(&prof, Phase::kStep);
  }
  EXPECT_EQ(prof.node_count(), 1u);
  prof.reset();
  EXPECT_EQ(prof.node_count(), 0u);
  EXPECT_TRUE(prof.profile().empty());
  // Recording keeps working after reset.
  {
    ScopedSpan s(&prof, Phase::kScan);
  }
  EXPECT_NE(prof.profile().find({Phase::kScan}), nullptr);
}

PhaseProfile sample_profile() {
  Profiler prof;
  prof.set_enabled(true);
  for (int i = 0; i < 2; ++i) {
    ScopedSpan step(&prof, Phase::kStep);
    step.add_cycles(50);
    ScopedSpan fault(&prof, Phase::kFault);
    fault.add_cycles(40);
    ScopedSpan ch(&prof, Phase::kChannelService);
    ch.add_cycles(4);
  }
  {
    ScopedSpan save(&prof, Phase::kSnapshotSave);
    save.add_cycles(1000);
  }
  return prof.profile();
}

TEST(PhaseProfileTest, JsonRoundTrip) {
  const PhaseProfile p = sample_profile();
  const std::string json = p.to_json();
  EXPECT_NE(json.find(PhaseProfile::kSchema), std::string::npos);

  std::string err;
  const auto back = PhaseProfile::parse(json, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->to_json(), json);
  EXPECT_EQ(back->node_count(), p.node_count());
  const auto* fault = back->find({Phase::kStep, Phase::kFault});
  ASSERT_NE(fault, nullptr);
  EXPECT_EQ(fault->count, 2u);
  EXPECT_EQ(fault->sim_cycles, 80u);
}

TEST(PhaseProfileTest, ParseRejectsGarbage) {
  std::string err;
  EXPECT_FALSE(PhaseProfile::parse("garbage", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(PhaseProfile::parse("", nullptr).has_value());
  EXPECT_FALSE(PhaseProfile::parse("{}", nullptr).has_value());
  EXPECT_FALSE(
      PhaseProfile::parse(R"({"schema":"wrong/v9","phases":[]})", nullptr)
          .has_value());
  EXPECT_FALSE(
      PhaseProfile::parse(
          R"({"schema":"sgxpl-phase-profile/v1","phases":[{"phase":"bogus","count":1,"wall_ns":0,"cycles":0,"children":[]}]})",
          nullptr)
          .has_value());
  // Trailing junk after a well-formed document.
  EXPECT_FALSE(PhaseProfile::parse(sample_profile().to_json() + "x", nullptr)
                   .has_value());
}

TEST(PhaseProfileTest, MergeAccumulatesPointwise) {
  PhaseProfile a = sample_profile();
  const PhaseProfile b = sample_profile();
  a.merge(b);
  const auto* step = a.find({Phase::kStep});
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->count, 4u);
  EXPECT_EQ(step->sim_cycles, 200u);
  const auto* ch = a.find({Phase::kStep, Phase::kFault, Phase::kChannelService});
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(ch->count, 4u);
  // Merging does not invent nodes.
  EXPECT_EQ(a.node_count(), b.node_count());
}

TEST(PhaseProfileTest, DescribeListsEveryNode) {
  const PhaseProfile p = sample_profile();
  const std::string text = p.describe();
  EXPECT_NE(text.find("step"), std::string::npos);
  EXPECT_NE(text.find("channel_service"), std::string::npos);
  EXPECT_NE(text.find("snapshot_save"), std::string::npos);
}

/// (phase, count, sim_cycles) must match node-for-node; wall_ns is host
/// time and legitimately differs between runs.
void expect_cycle_identical(const std::vector<PhaseProfile::Node>& a,
                            const std::vector<PhaseProfile::Node>& b,
                            const std::string& where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string here =
        where + "/" + to_string(a[i].phase);
    EXPECT_EQ(a[i].phase, b[i].phase) << here;
    EXPECT_EQ(a[i].count, b[i].count) << here;
    EXPECT_EQ(a[i].sim_cycles, b[i].sim_cycles) << here;
    expect_cycle_identical(a[i].children, b[i].children, here);
  }
}

TEST(ProfilerTest, CycleMetricsDeterministicAcrossIdenticalRuns) {
  const auto* w = trace::find_workload("lbm");
  ASSERT_NE(w, nullptr);
  const auto t = w->make(trace::WorkloadParams{.scale = 0.02, .seed = 11});

  const auto run_once = [&t](Profiler& prof) {
    core::SimConfig cfg = core::paper_platform(core::Scheme::kDfpStop);
    cfg.enclave.epc_pages = 600;
    cfg.profiler = &prof;
    prof.set_enabled(true);
    return core::simulate(t, cfg);
  };

  Profiler p1;
  Profiler p2;
  const auto m1 = run_once(p1);
  const auto m2 = run_once(p2);
  ASSERT_EQ(m1.total_cycles, m2.total_cycles);

  const PhaseProfile a = p1.profile();
  const PhaseProfile b = p2.profile();
  ASSERT_FALSE(a.empty());
  // The fault path actually recorded spans with attributed cycles.
  const auto* fault = a.find({Phase::kStep, Phase::kFault});
  ASSERT_NE(fault, nullptr);
  EXPECT_GT(fault->count, 0u);
  EXPECT_GT(fault->sim_cycles, 0u);
  expect_cycle_identical(a.roots, b.roots, "");

  // The fault spans' attributed cycles reconcile with the driver's own
  // stall accounting.
  EXPECT_EQ(fault->sim_cycles, m1.driver.fault_stall_cycles);
}

TEST(ProfilerTest, ProfiledRunMatchesUnprofiledMetrics) {
  const auto* w = trace::find_workload("mcf");
  ASSERT_NE(w, nullptr);
  const auto t = w->make(trace::WorkloadParams{.scale = 0.02, .seed = 3});
  core::SimConfig cfg = core::paper_platform(core::Scheme::kDfp);
  cfg.enclave.epc_pages = 500;
  const auto plain = core::simulate(t, cfg);

  Profiler prof;
  prof.set_enabled(true);
  cfg.profiler = &prof;
  const auto profiled = core::simulate(t, cfg);

  // Observability must never perturb the simulation.
  EXPECT_EQ(plain.total_cycles, profiled.total_cycles);
  EXPECT_EQ(plain.driver.faults, profiled.driver.faults);
  EXPECT_EQ(plain.driver.preloads_issued, profiled.driver.preloads_issued);
}

}  // namespace
}  // namespace sgxpl::obs
