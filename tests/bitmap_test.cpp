#include "sgxsim/bitmap.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace sgxpl::sgxsim {
namespace {

TEST(PresenceBitmap, StartsAllClear) {
  PresenceBitmap bm(200);
  EXPECT_EQ(bm.pages(), 200u);
  EXPECT_EQ(bm.popcount(), 0u);
  for (PageNum p = 0; p < 200; ++p) {
    EXPECT_FALSE(bm.test(p));
  }
}

TEST(PresenceBitmap, SetTestClear) {
  PresenceBitmap bm(100);
  bm.set(0);
  bm.set(63);
  bm.set(64);
  bm.set(99);
  EXPECT_TRUE(bm.test(0));
  EXPECT_TRUE(bm.test(63));
  EXPECT_TRUE(bm.test(64));
  EXPECT_TRUE(bm.test(99));
  EXPECT_FALSE(bm.test(1));
  EXPECT_EQ(bm.popcount(), 4u);
  bm.clear(63);
  EXPECT_FALSE(bm.test(63));
  EXPECT_EQ(bm.popcount(), 3u);
}

TEST(PresenceBitmap, SetIdempotent) {
  PresenceBitmap bm(10);
  bm.set(5);
  bm.set(5);
  EXPECT_EQ(bm.popcount(), 1u);
  bm.clear(5);
  bm.clear(5);
  EXPECT_EQ(bm.popcount(), 0u);
}

TEST(PresenceBitmap, WordBoundarySizes) {
  // Sizes around the 64-bit word boundary must all work.
  for (const PageNum n : {1u, 63u, 64u, 65u, 128u}) {
    PresenceBitmap bm(n);
    for (PageNum p = 0; p < n; ++p) {
      bm.set(p);
    }
    EXPECT_EQ(bm.popcount(), n) << "size " << n;
  }
}

TEST(PresenceBitmap, RejectsZeroPages) {
  EXPECT_THROW(PresenceBitmap(0), CheckFailure);
}

}  // namespace
}  // namespace sgxpl::sgxsim
