// Tests for the observability layer: histogram bucket math and merge,
// registry semantics, time-series sampling, and — the golden check — that
// TraceExporter emits valid Chrome-trace JSON (ph/ts/pid/tid/name on every
// event) for both a DFP and a SIP simulation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/metrics.h"
#include "core/simulator.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/time_series.h"
#include "obs/trace_export.h"
#include "sip/instrumenter.h"
#include "trace/generators.h"

namespace sgxpl::obs {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON parser — just enough to validate the exporter's output
// schema without pulling in an external dependency.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  bool is(Type t) const { return type == t; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  std::optional<JsonValue> parse() {
    auto v = value();
    skip_ws();
    if (!v || pos_ != s_.size()) {
      return std::nullopt;  // trailing garbage or parse error
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= s_.size()) return std::nullopt;
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return bool_value();
    if (c == 'n') {
      if (!literal("null")) return std::nullopt;
      return JsonValue{};
    }
    return number();
  }

  std::optional<JsonValue> object() {
    if (!eat('{')) return std::nullopt;
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (eat('}')) return v;
    do {
      auto key = string_value();
      if (!key || !eat(':')) return std::nullopt;
      auto val = value();
      if (!val) return std::nullopt;
      v.object.emplace(std::move(key->str), std::move(*val));
    } while (eat(','));
    if (!eat('}')) return std::nullopt;
    return v;
  }

  std::optional<JsonValue> array() {
    if (!eat('[')) return std::nullopt;
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (eat(']')) return v;
    do {
      auto elem = value();
      if (!elem) return std::nullopt;
      v.array.push_back(std::move(*elem));
    } while (eat(','));
    if (!eat(']')) return std::nullopt;
    return v;
  }

  std::optional<JsonValue> string_value() {
    if (!eat('"')) return std::nullopt;
    JsonValue v;
    v.type = JsonValue::Type::kString;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return std::nullopt;
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) return std::nullopt;
            pos_ += 4;
            c = '?';
            break;
          default: c = esc; break;  // \" \\ \/
        }
      }
      v.str.push_back(c);
    }
    if (!eat('"')) return std::nullopt;
    return v;
  }

  std::optional<JsonValue> bool_value() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (literal("true")) {
      v.boolean = true;
      return v;
    }
    if (literal("false")) return v;
    return std::nullopt;
  }

  std::optional<JsonValue> number() {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    if (end == start) return std::nullopt;
    pos_ += static_cast<std::size_t>(end - start);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------------

TEST(Histogram, SmallValuesGetExactBuckets) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 3u);
  EXPECT_EQ(Histogram::bucket_index(4), 4u);  // first log-linear bucket
}

TEST(Histogram, BucketBoundariesRoundTrip) {
  // Every bucket's lower bound must map back to that bucket, and the value
  // just below it to the previous one: the buckets tile the value range.
  for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    const std::uint64_t lb = Histogram::bucket_lower_bound(i);
    EXPECT_EQ(Histogram::bucket_index(lb), i) << "lower bound of bucket " << i;
    if (lb > 0) {
      EXPECT_EQ(Histogram::bucket_index(lb - 1), i - 1)
          << "value below bucket " << i;
    }
  }
  // The whole uint64 range is covered.
  EXPECT_EQ(Histogram::bucket_index(~0ull), HistogramSnapshot::kBuckets - 1);
}

TEST(Histogram, LowerBoundsStrictlyIncrease) {
  for (std::size_t i = 1; i < HistogramSnapshot::kBuckets; ++i) {
    EXPECT_LT(Histogram::bucket_lower_bound(i - 1),
              Histogram::bucket_lower_bound(i));
  }
}

TEST(Histogram, StatsAndPercentilesOnUniformData) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    h.record(v);
  }
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 500'500u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
  // Log-linear buckets give ~±12.5% resolution; allow a bit more slack
  // for the interpolation at the bucket edges.
  EXPECT_NEAR(s.p50(), 500.0, 500.0 * 0.15);
  EXPECT_NEAR(s.p90(), 900.0, 900.0 * 0.15);
  EXPECT_NEAR(s.p99(), 990.0, 990.0 * 0.15);
  EXPECT_LE(s.quantile(0.0), static_cast<double>(s.min) * 1.15);
  EXPECT_LE(s.quantile(1.0), static_cast<double>(s.max) * 1.15);
}

TEST(Histogram, EmptySnapshotIsZero) {
  Histogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.p50(), 0.0);
}

TEST(Histogram, MergeCombinesDisjointPopulations) {
  Histogram low;
  Histogram high;
  for (int i = 0; i < 10; ++i) {
    low.record(100);
    high.record(10'000);
  }
  auto merged = low.snapshot();
  merged.merge(high.snapshot());
  EXPECT_EQ(merged.count, 20u);
  EXPECT_EQ(merged.sum, 10u * 100u + 10u * 10'000u);
  EXPECT_EQ(merged.min, 100u);
  EXPECT_EQ(merged.max, 10'000u);
  // Half the mass is at ~100, half at ~10000: p90 lands in the high mode.
  EXPECT_NEAR(merged.quantile(0.25), 100.0, 100.0 * 0.15);
  EXPECT_NEAR(merged.p90(), 10'000.0, 10'000.0 * 0.15);

  // Merging an empty snapshot changes nothing.
  const auto before = merged;
  merged.merge(HistogramSnapshot{});
  EXPECT_EQ(merged.count, before.count);
  EXPECT_EQ(merged.min, before.min);
  EXPECT_EQ(merged.max, before.max);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAndCreateOnDemand) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("driver.faults");
  c1.add(3);
  Counter& c2 = reg.counter("driver.faults");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 3u);

  reg.gauge("dfp.depth").set(4.0);
  reg.histogram("driver.fault.stall_cycles").record(64'000);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, JsonSnapshotIsValidAndComplete) {
  MetricsRegistry reg;
  reg.counter("driver.faults").add(7);
  reg.gauge("dfp.depth").set(2.5);
  auto& h = reg.histogram("driver.fault.stall_cycles");
  h.record(100);
  h.record(200);

  const auto parsed = JsonParser(reg.to_json()).parse();
  ASSERT_TRUE(parsed.has_value()) << reg.to_json();
  const auto* counters = parsed->get("counters");
  const auto* gauges = parsed->get("gauges");
  const auto* hists = parsed->get("histograms");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(hists, nullptr);
  EXPECT_DOUBLE_EQ(counters->get("driver.faults")->number, 7.0);
  EXPECT_DOUBLE_EQ(gauges->get("dfp.depth")->number, 2.5);
  const auto* stall = hists->get("driver.fault.stall_cycles");
  ASSERT_NE(stall, nullptr);
  EXPECT_DOUBLE_EQ(stall->get("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(stall->get("sum")->number, 300.0);
  EXPECT_NE(stall->get("p50"), nullptr);
  EXPECT_NE(stall->get("p99"), nullptr);
}

// ---------------------------------------------------------------------------
// Time series
// ---------------------------------------------------------------------------

TEST(TimeSeries, CollectsSamplesAndSummaries) {
  TimeSeriesSet set;
  TimeSeries& s = set.series("epc.occupancy");
  s.add(1'000, 0.25);
  s.add(2'000, 0.75);
  s.add(3'000, 0.50);
  EXPECT_EQ(&s, &set.series("epc.occupancy"));
  EXPECT_EQ(set.find("epc.occupancy"), &s);
  EXPECT_EQ(set.find("nonexistent"), nullptr);
  EXPECT_EQ(s.samples().size(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 0.75);

  set.clear();
  EXPECT_EQ(set.size(), 0u);
}

TEST(TimeSeries, JsonAndCsvSerialize) {
  TimeSeriesSet set;
  set.series("a").add(10, 1.5);
  set.series("a").add(20, 2.5);

  const auto parsed = JsonParser(set.to_json()).parse();
  ASSERT_TRUE(parsed.has_value()) << set.to_json();
  const auto* series = parsed->get("series");
  ASSERT_NE(series, nullptr);
  const auto* a = series->get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 2u);
  EXPECT_DOUBLE_EQ(a->array[0].get("t")->number, 10.0);
  EXPECT_DOUBLE_EQ(a->array[1].get("v")->number, 2.5);

  const std::string csv = set.to_csv();
  EXPECT_NE(csv.find("a,10,"), std::string::npos) << csv;
}

TEST(TimeSeries, DriverSamplesOnServiceThreadCadence) {
  // A long sequential run must produce occupancy/fault-rate curves with
  // strictly increasing timestamps, one window per scan tick.
  trace::Trace t("seq", 512);
  Rng rng(1);
  trace::seq_scan(t, rng, trace::Region{0, 256}, 1,
                  trace::GapModel{.mean = 20'000, .jitter_pct = 0});

  core::SimConfig cfg;
  cfg.scheme = core::Scheme::kDfpStop;
  cfg.enclave.epc_pages = 64;
  TimeSeriesSet set;
  cfg.timeseries = &set;
  core::simulate(t, cfg);

  const TimeSeries* occ = set.find("epc.occupancy");
  ASSERT_NE(occ, nullptr);
  ASSERT_GT(occ->samples().size(), 2u);
  Cycles prev = 0;
  for (const auto& s : occ->samples()) {
    EXPECT_GT(s.at, prev);
    prev = s.at;
    EXPECT_GE(s.value, 0.0);
    EXPECT_LE(s.value, 1.0);
  }
  ASSERT_NE(set.find("driver.faults_per_mcycle"), nullptr);
  ASSERT_NE(set.find("dfp.depth"), nullptr);
}

TEST(TimeSeries, StrideDoublesWhenCapIsHit) {
  TimeSeries s("x", /*sample_cap=*/8);
  EXPECT_EQ(s.sample_cap(), 8u);
  EXPECT_EQ(s.stride(), 1u);
  // Below the cap every offered sample is retained verbatim.
  for (Cycles i = 0; i < 7; ++i) {
    s.add(i, static_cast<double>(i));
  }
  EXPECT_EQ(s.samples().size(), 7u);
  EXPECT_EQ(s.stride(), 1u);
  // The 8th sample fills the cap: compact to every other sample, stride 2.
  s.add(7, 7.0);
  EXPECT_EQ(s.samples().size(), 4u);
  EXPECT_EQ(s.stride(), 2u);
  EXPECT_EQ(s.seen(), 8u);
  const std::vector<Cycles> kept = {0, 2, 4, 6};
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(s.samples()[i].at, kept[i]);
  }
}

TEST(TimeSeries, LongRunKeepsBoundedMemoryAndStrideAlignment) {
  TimeSeries s("x", /*sample_cap=*/16);
  constexpr std::uint64_t kOffered = 100'000;
  for (std::uint64_t i = 0; i < kOffered; ++i) {
    s.add(i, static_cast<double>(i));
    ASSERT_LT(s.samples().size(), 16u);
  }
  EXPECT_EQ(s.seen(), kOffered);
  // Stride is a power of two and every retained sample sits on a stride
  // boundary of the offered sequence, so the curve stays evenly spaced.
  EXPECT_EQ(s.stride() & (s.stride() - 1), 0u);
  EXPECT_GT(s.stride(), 1u);
  for (const auto& smp : s.samples()) {
    EXPECT_EQ(smp.at % s.stride(), 0u);
  }
  // First offered sample survives every compaction.
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s.samples().front().at, 0u);

  s.clear();
  EXPECT_EQ(s.seen(), 0u);
  EXPECT_EQ(s.stride(), 1u);
  EXPECT_TRUE(s.empty());
}

TEST(TimeSeries, SetSampleCapCompactsExistingSeries) {
  TimeSeriesSet set;
  TimeSeries& a = set.series("a");
  for (Cycles i = 0; i < 1000; ++i) {
    a.add(i, 1.0);
  }
  EXPECT_EQ(a.samples().size(), 1000u);

  set.set_sample_cap(64);
  EXPECT_EQ(set.sample_cap(), 64u);
  EXPECT_LT(a.samples().size(), 64u);
  EXPECT_GT(a.stride(), 1u);
  // New series inherit the tightened cap.
  EXPECT_EQ(set.series("b").sample_cap(), 64u);
}

// ---------------------------------------------------------------------------
// Metrics ratio guards (satellite: divide-by-zero regression test)
// ---------------------------------------------------------------------------

TEST(CoreMetrics, ZeroCycleBaselineIsGuarded) {
  core::Metrics run;
  run.total_cycles = 1'000;
  core::Metrics zero;  // total_cycles == 0
  EXPECT_DOUBLE_EQ(run.improvement_over(zero), 0.0);
  EXPECT_DOUBLE_EQ(run.normalized_to(zero), 1.0);
  EXPECT_FALSE(std::isnan(run.improvement_over(zero)));
  EXPECT_FALSE(std::isinf(run.normalized_to(zero)));
}

// ---------------------------------------------------------------------------
// Trace export schema (the golden check of the acceptance criteria)
// ---------------------------------------------------------------------------

/// Validates the Chrome-trace schema: top-level traceEvents array where
/// every event carries ph/ts/pid/tid/name with sane types.
void check_trace_schema(const std::string& json, std::size_t* out_events) {
  const auto parsed = JsonParser(json).parse();
  ASSERT_TRUE(parsed.has_value()) << "trace is not valid JSON";
  ASSERT_TRUE(parsed->is(JsonValue::Type::kObject));
  const auto* events = parsed->get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is(JsonValue::Type::kArray));
  ASSERT_FALSE(events->array.empty());
  EXPECT_NE(parsed->get("displayTimeUnit"), nullptr);

  for (const auto& e : events->array) {
    ASSERT_TRUE(e.is(JsonValue::Type::kObject));
    const auto* ph = e.get("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is(JsonValue::Type::kString));
    EXPECT_TRUE(ph->str == "M" || ph->str == "X" || ph->str == "i" ||
                ph->str == "C")
        << "unexpected phase " << ph->str;
    const auto* ts = e.get("ts");
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ts->is(JsonValue::Type::kNumber));
    EXPECT_GE(ts->number, 0.0);
    ASSERT_NE(e.get("pid"), nullptr);
    ASSERT_NE(e.get("tid"), nullptr);
    const auto* name = e.get("name");
    ASSERT_NE(name, nullptr);
    ASSERT_TRUE(name->is(JsonValue::Type::kString));
    EXPECT_FALSE(name->str.empty());
    if (ph->str == "X") {
      const auto* dur = e.get("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(dur->number, 0.0);
    }
  }
  *out_events = events->array.size();
}

bool has_event(const std::string& json, const std::string& name) {
  const auto parsed = JsonParser(json).parse();
  for (const auto& e : parsed->get("traceEvents")->array) {
    const auto* n = e.get("name");
    if (n != nullptr && n->str == name) return true;
  }
  return false;
}

TEST(TraceExporter, DfpWorkloadExportsValidChromeTrace) {
  trace::Trace t("seq", 512);
  Rng rng(3);
  trace::seq_scan(t, rng, trace::Region{0, 256}, 1,
                  trace::GapModel{.mean = 10'000, .jitter_pct = 0});

  core::SimConfig cfg;
  cfg.scheme = core::Scheme::kDfpStop;
  cfg.enclave.epc_pages = 64;
  EventLog log(1u << 14);
  TimeSeriesSet series;
  cfg.event_log = &log;
  cfg.timeseries = &series;
  core::simulate(t, cfg);
  ASSERT_GT(log.size(), 0u);

  TraceExporter exp;
  exp.add_events(log, /*pid=*/0, "dfp-run");
  exp.add_time_series(series);
  const std::string json = exp.to_json();

  std::size_t n = 0;
  check_trace_schema(json, &n);
  EXPECT_GE(n, exp.size());  // events + per-process metadata records
  // The DFP run must surface faults, their paired stall slices, and the
  // channel's load slices.
  EXPECT_TRUE(has_event(json, "FAULT(AEX)"));
  EXPECT_TRUE(has_event(json, "fault-stall"));
  EXPECT_TRUE(has_event(json, "load"));
  EXPECT_TRUE(has_event(json, "epc.occupancy"));
}

TEST(TraceExporter, SipWorkloadExportsValidChromeTrace) {
  trace::Trace t("rand", 512);
  Rng rng(4);
  trace::random_access(t, rng, trace::Region{0, 384}, 2'000, 1, 1,
                       trace::GapModel{.mean = 5'000, .jitter_pct = 0});

  core::SimConfig cfg;
  cfg.scheme = core::Scheme::kSip;
  cfg.enclave.epc_pages = 64;
  sip::InstrumentationPlan plan;
  plan.add_site(1);
  EventLog log(1u << 14);
  cfg.event_log = &log;
  core::simulate(t, cfg, &plan);
  ASSERT_GT(log.size(), 0u);

  TraceExporter exp;
  exp.add_events(log, /*pid=*/0, "sip-run");
  const std::string json = exp.to_json();

  std::size_t n = 0;
  check_trace_schema(json, &n);
  EXPECT_GE(n, log.size());
  EXPECT_TRUE(has_event(json, "SIP-NOTIFY"));
}

TEST(TraceExporter, MultiProcessTracesKeepPidsDistinct) {
  EventLog a(64);
  EventLog b(64);
  a.record({10, EventType::kFault, 1, 0, ""});
  b.record({20, EventType::kFault, 2, 0, ""});
  TraceExporter exp;
  exp.add_events(a, /*pid=*/0, "enclave-0");
  exp.add_events(b, /*pid=*/1, "enclave-1");
  const auto parsed = JsonParser(exp.to_json()).parse();
  ASSERT_TRUE(parsed.has_value());
  bool saw_pid0 = false;
  bool saw_pid1 = false;
  for (const auto& e : parsed->get("traceEvents")->array) {
    const double pid = e.get("pid")->number;
    saw_pid0 |= pid == 0.0;
    saw_pid1 |= pid == 1.0;
  }
  EXPECT_TRUE(saw_pid0);
  EXPECT_TRUE(saw_pid1);
}

}  // namespace
}  // namespace sgxpl::obs
