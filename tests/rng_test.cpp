#include "common/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace sgxpl {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(99);
  const auto first = a.next();
  a.next();
  a.reseed(99);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.bounded(1), 0u);
  }
}

TEST(Rng, BoundedCoversAllValues) {
  Rng rng(11);
  std::array<int, 8> seen{};
  for (int i = 0; i < 10000; ++i) {
    ++seen[rng.bounded(8)];
  }
  for (int c : seen) {
    EXPECT_GT(c, 0);
  }
}

TEST(Rng, BoundedRoughlyUniform) {
  Rng rng(5);
  std::array<int, 10> buckets{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++buckets[rng.bounded(10)];
  }
  for (int c : buckets) {
    // Each bucket expects 10000; allow 5 sigma (~sqrt(9000)*5 ≈ 475).
    EXPECT_NEAR(c, n / 10, 500);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    saw_lo = saw_lo || v == 5;
    saw_hi = saw_hi || v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double r = rng.real();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
    sum += r;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.chance(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BurstCappedAndAtLeastOne) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const auto b = rng.burst(0.9, 5);
    EXPECT_GE(b, 1u);
    EXPECT_LE(b, 5u);
  }
  // p = 0 -> always exactly 1.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.burst(0.0, 10), 1u);
  }
}

TEST(Zipf, ValuesInRange) {
  Rng rng(29);
  ZipfSampler zipf(1000, 0.9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf(rng), 1000u);
  }
}

TEST(Zipf, SkewedTowardLowRanks) {
  Rng rng(31);
  ZipfSampler zipf(10000, 0.99);
  int top100 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (zipf(rng) < 100) {
      ++top100;
    }
  }
  // Zipf(0.99) over 10k items puts far more than the uniform 1% in the top
  // 100 ranks (analytically ~40%+).
  EXPECT_GT(top100, n / 5);
}

TEST(Zipf, SingleElementAlwaysZero) {
  Rng rng(37);
  ZipfSampler zipf(1, 0.9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf(rng), 0u);
  }
}

TEST(Zipf, RejectsAlphaOne) {
  EXPECT_THROW(ZipfSampler(10, 1.0), CheckFailure);
}

}  // namespace
}  // namespace sgxpl
