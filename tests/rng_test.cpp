#include "common/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace sgxpl {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(99);
  const auto first = a.next();
  a.next();
  a.reseed(99);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.bounded(1), 0u);
  }
}

TEST(Rng, BoundedCoversAllValues) {
  Rng rng(11);
  std::array<int, 8> seen{};
  for (int i = 0; i < 10000; ++i) {
    ++seen[rng.bounded(8)];
  }
  for (int c : seen) {
    EXPECT_GT(c, 0);
  }
}

TEST(Rng, BoundedRoughlyUniform) {
  Rng rng(5);
  std::array<int, 10> buckets{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++buckets[rng.bounded(10)];
  }
  for (int c : buckets) {
    // Each bucket expects 10000; allow 5 sigma (~sqrt(9000)*5 ≈ 475).
    EXPECT_NEAR(c, n / 10, 500);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    saw_lo = saw_lo || v == 5;
    saw_hi = saw_hi || v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double r = rng.real();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
    sum += r;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.chance(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BurstCappedAndAtLeastOne) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const auto b = rng.burst(0.9, 5);
    EXPECT_GE(b, 1u);
    EXPECT_LE(b, 5u);
  }
  // p = 0 -> always exactly 1.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.burst(0.0, 10), 1u);
  }
}

TEST(Rng, StateRoundTripResumesSequence) {
  Rng a(0xC0FFEE);
  for (int i = 0; i < 137; ++i) {
    a.next();
  }
  const auto snap = a.state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 500; ++i) {
    expected.push_back(a.next());
  }
  Rng b(999);  // deliberately different seed: set_state overrides it all
  b.set_state(snap);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(b.next(), expected[static_cast<std::size_t>(i)]);
  }
}

TEST(Rng, StateIsTheWholeStory) {
  // Two generators with identical state stay in lockstep through every
  // derived draw (bounded/real/chance), not just next().
  Rng a(42);
  a.next();
  Rng b(7);
  b.set_state(a.state());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.bounded(97), b.bounded(97));
    EXPECT_DOUBLE_EQ(a.real(), b.real());
    EXPECT_EQ(a.chance(0.35), b.chance(0.35));
  }
}

TEST(Zipf, ResumesMidSequenceFromRngState) {
  // All of a Zipf-driven generator's sequence state lives in the Rng, so
  // capturing Rng::state() mid-run checkpoints it completely.
  Rng a(0x5eed);
  ZipfSampler zipf(4096, 0.9);
  for (int i = 0; i < 1000; ++i) {
    zipf(a);
  }
  Rng b(1);
  b.set_state(a.state());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(zipf(a), zipf(b));
  }
}

TEST(Zipf, ValuesInRange) {
  Rng rng(29);
  ZipfSampler zipf(1000, 0.9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf(rng), 1000u);
  }
}

TEST(Zipf, SkewedTowardLowRanks) {
  Rng rng(31);
  ZipfSampler zipf(10000, 0.99);
  int top100 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (zipf(rng) < 100) {
      ++top100;
    }
  }
  // Zipf(0.99) over 10k items puts far more than the uniform 1% in the top
  // 100 ranks (analytically ~40%+).
  EXPECT_GT(top100, n / 5);
}

TEST(Zipf, SingleElementAlwaysZero) {
  Rng rng(37);
  ZipfSampler zipf(1, 0.9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf(rng), 0u);
  }
}

TEST(Zipf, RejectsAlphaOne) {
  EXPECT_THROW(ZipfSampler(10, 1.0), CheckFailure);
}

}  // namespace
}  // namespace sgxpl
