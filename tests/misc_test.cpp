// Remaining small-surface tests: counters, name tables, and trace-statistic
// corners not covered by the focused suites.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sgxsim/paging_channel.h"
#include "trace/generators.h"

namespace sgxpl {
namespace {

TEST(OpKindNames, AllNamed) {
  using sgxsim::OpKind;
  EXPECT_STREQ(to_string(OpKind::kDemandLoad), "demand");
  EXPECT_STREQ(to_string(OpKind::kDfpPreload), "dfp-preload");
  EXPECT_STREQ(to_string(OpKind::kSipLoad), "sip-load");
}

TEST(PagingChannel, SchedulingCountersTrackOps) {
  sgxsim::PagingChannel ch;
  ch.schedule(0, 10, 1, sgxsim::OpKind::kDemandLoad);
  ch.schedule(0, 10, 2, sgxsim::OpKind::kDfpPreload);
  ch.schedule_priority(0, 10, 3, sgxsim::OpKind::kSipLoad);
  EXPECT_EQ(ch.ops_scheduled(), 3u);
  EXPECT_EQ(ch.queued(), 3u);
  ch.abort_not_started(5, sgxsim::OpKind::kDfpPreload);
  EXPECT_EQ(ch.ops_aborted(), 1u);
  EXPECT_EQ(ch.queued(), 2u);
}

TEST(PagingChannel, NextFreeTracksTail) {
  sgxsim::PagingChannel ch;
  EXPECT_EQ(ch.next_free(123), 123u);
  ch.schedule(0, 100, 1, sgxsim::OpKind::kDemandLoad);
  EXPECT_EQ(ch.next_free(0), 100u);
  EXPECT_EQ(ch.next_free(500), 500u);
}

TEST(GapModel, FloorsAtOneCycle) {
  // Full negative jitter on a tiny mean must still produce >= 1 cycle.
  Rng rng(1);
  const trace::GapModel g{.mean = 1, .jitter_pct = 0.99};
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(g.sample(rng), 1u);
  }
}

TEST(TraceStats, RecentReuseDetectsHotLoops) {
  trace::Trace hot("hot", 100);
  for (int i = 0; i < 100; ++i) {
    hot.append({.page = static_cast<PageNum>(i % 4), .site = 1, .gap = 10});
  }
  EXPECT_GT(hot.stats().recent_reuse_fraction, 0.9);

  trace::Trace cold("cold", 100'000);
  Rng rng(2);
  trace::random_access(cold, rng, trace::Region{0, 90'000}, 500, 1, 1,
                       trace::GapModel{.mean = 10, .jitter_pct = 0});
  EXPECT_LT(cold.stats().recent_reuse_fraction, 0.05);
}

TEST(TraceStats, EmptyTraceIsAllZeros) {
  trace::Trace t("empty", 10);
  const auto s = t.stats();
  EXPECT_EQ(s.accesses, 0u);
  EXPECT_EQ(s.footprint_pages, 0u);
  EXPECT_EQ(s.sites, 0u);
  EXPECT_DOUBLE_EQ(s.sequential_fraction, 0.0);
}

TEST(TraceMutation, MutableAccessorsWork) {
  trace::Trace t("m", 10);
  t.append({.page = 1, .site = 1, .gap = 5});
  t.mutable_accesses()[0].gap = 99;
  EXPECT_EQ(t.accesses()[0].gap, 99u);
  t.set_elrange_pages(20);
  EXPECT_EQ(t.elrange_pages(), 20u);
}

}  // namespace
}  // namespace sgxpl
