#include "core/multi_thread.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "core/simulator.h"
#include "trace/generators.h"

namespace sgxpl::core {
namespace {

trace::Trace seq(PageNum lo, PageNum pages, PageNum elrange, Cycles gap,
                 std::uint64_t seed) {
  trace::Trace t("thr", elrange);
  Rng rng(seed);
  trace::seq_scan(t, rng, trace::Region{lo, pages}, 1,
                  trace::GapModel{.mean = gap, .jitter_pct = 0});
  return t;
}

SimConfig cfg(Scheme scheme, PageNum epc = 64) {
  SimConfig c;
  c.scheme = scheme;
  c.enclave.epc_pages = epc;
  c.dfp.predictor.stream_list_len = 8;
  return c;
}

TEST(RunThreads, SingleThreadMatchesPlainSimulator) {
  const auto t = seq(0, 48, 64, 2'000, 1);
  const auto solo = simulate(t, cfg(Scheme::kBaseline));
  const auto threaded = run_threads(cfg(Scheme::kBaseline), {&t});
  ASSERT_EQ(threaded.per_thread.size(), 1u);
  EXPECT_EQ(threaded.per_thread[0].total_cycles, solo.total_cycles);
  EXPECT_EQ(threaded.per_thread[0].enclave_faults, solo.enclave_faults);
}

TEST(RunThreads, RejectsEmptyAndSip) {
  EXPECT_THROW(run_threads(cfg(Scheme::kBaseline), {}), CheckFailure);
  const auto t = seq(0, 8, 16, 100, 1);
  EXPECT_THROW(run_threads(cfg(Scheme::kSip), {&t}), CheckFailure);
}

TEST(RunThreads, ThreadsShareTheElrange) {
  // Two threads touching the SAME pages: the second thread's accesses hit
  // pages the first already faulted in (unlike multi-enclave isolation).
  const auto a = seq(0, 32, 64, 1'000, 1);
  const auto b = seq(0, 32, 64, 50'000, 2);  // slower thread, same pages
  const auto r = run_threads(cfg(Scheme::kBaseline, 64), {&a, &b});
  // Thread a (fast) takes most cold faults; thread b mostly hits.
  EXPECT_LT(r.per_thread[1].enclave_faults, 32u);
  EXPECT_EQ(r.driver.faults,
            r.per_thread[0].enclave_faults + r.per_thread[1].enclave_faults);
}

TEST(RunThreads, PerThreadStreamsSurviveNoisyNeighbour) {
  // One compute-heavy scan + one fault-happy random prober, with a stream
  // list too short to survive pooled churn.
  // With a single-entry stream list, one prober fault landing between a
  // stream's seed and its extension is enough to evict the tail — so the
  // pooled history loses most of the scan's streams while per-thread
  // keying is immune.
  const PageNum elrange = 4'096;
  const auto scan = seq(0, 512, elrange, 60'000, 1);
  trace::Trace noise("noise", elrange);
  Rng rng(9);
  trace::random_access(noise, rng, trace::Region{512, 3'500}, 2'048, 9, 2,
                       trace::GapModel{.mean = 2'000, .jitter_pct = 0});

  auto c = cfg(Scheme::kDfpStop, 256);
  c.dfp.predictor.stream_list_len = 1;

  const auto base = run_threads(cfg(Scheme::kBaseline, 256), {&scan, &noise});
  const auto per_thread = run_threads(c, {&scan, &noise}, true);
  const auto pooled = run_threads(c, {&scan, &noise}, false);

  const auto scan_gain = [&](const ThreadedRunResult& r) {
    return static_cast<double>(base.per_thread[0].total_cycles) -
           static_cast<double>(r.per_thread[0].total_cycles);
  };
  // Per-thread keying preloads for the scan despite the noisy neighbour;
  // pooled keying loses the stream to churn.
  EXPECT_GT(scan_gain(per_thread), scan_gain(pooled));
  EXPECT_GT(per_thread.driver.preloads_used, pooled.driver.preloads_used);
}

TEST(RunThreads, MakespanIsMaxThreadTime) {
  const auto a = seq(0, 16, 64, 1'000, 1);
  const auto b = seq(16, 48, 64, 1'000, 2);
  const auto r = run_threads(cfg(Scheme::kBaseline), {&a, &b});
  EXPECT_EQ(r.makespan, std::max(r.per_thread[0].total_cycles,
                                 r.per_thread[1].total_cycles));
}

}  // namespace
}  // namespace sgxpl::core
