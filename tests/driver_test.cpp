#include "sgxsim/driver.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sgxsim/chaos_hooks.h"

namespace sgxpl::sgxsim {
namespace {

CostModel test_costs() {
  CostModel c;
  c.aex = 10'000;
  c.eresume = 10'000;
  c.epc_load = 44'000;
  c.epc_evict = 4'000;
  c.scan_period = 1'000'000'000;  // effectively off unless a test wants it
  return c;
}

EnclaveConfig small_enclave(PageNum elrange = 64, PageNum epc = 4) {
  EnclaveConfig cfg;
  cfg.elrange_pages = elrange;
  cfg.epc_pages = epc;
  return cfg;
}

/// Scripted policy: returns a fixed prediction per faulted page and records
/// every callback.
class FakePolicy final : public PreloadPolicy {
 public:
  std::map<PageNum, std::vector<PageNum>> predictions;
  std::vector<PageNum> faults_seen;
  std::vector<PageNum> completed;
  std::vector<PageNum> aborted;
  std::vector<PageNum> shed;
  std::vector<PageNum> evicted_unused;
  int scans = 0;

  std::vector<PageNum> on_fault(ProcessId, PageNum page, Cycles) override {
    faults_seen.push_back(page);
    const auto it = predictions.find(page);
    return it == predictions.end() ? std::vector<PageNum>{} : it->second;
  }
  void on_preload_completed(PageNum page, Cycles) override {
    completed.push_back(page);
  }
  void on_preloads_aborted(const std::vector<PageNum>& pages,
                           Cycles) override {
    aborted.insert(aborted.end(), pages.begin(), pages.end());
  }
  void on_preloads_shed(const std::vector<PageNum>& pages, Cycles) override {
    shed.insert(shed.end(), pages.begin(), pages.end());
  }
  void on_preloaded_page_evicted(PageNum page, bool, Cycles) override {
    evicted_unused.push_back(page);
  }
  void on_scan(const PageTable&, Cycles) override { ++scans; }
};

TEST(Driver, ColdAccessPaysFullFaultCost) {
  Driver d(small_enclave(), test_costs());
  const auto out = d.access(5, 1000);
  EXPECT_TRUE(out.faulted);
  // AEX + load + ERESUME, no eviction while the EPC has free slots.
  EXPECT_EQ(out.completion, 1000u + 10'000 + 44'000 + 10'000);
  EXPECT_EQ(d.stats().faults, 1u);
  EXPECT_EQ(d.stats().demand_loads, 1u);
  EXPECT_EQ(d.stats().evictions, 0u);
  d.check_invariants();
}

TEST(Driver, ResidentAccessIsFree) {
  Driver d(small_enclave(), test_costs());
  const auto first = d.access(5, 0);
  const auto second = d.access(5, first.completion + 100);
  EXPECT_FALSE(second.faulted);
  EXPECT_EQ(second.completion, first.completion + 100);
  EXPECT_EQ(d.stats().faults, 1u);
}

TEST(Driver, AccessSetsAccessBit) {
  Driver d(small_enclave(), test_costs());
  const auto out = d.access(3, 0);
  EXPECT_TRUE(d.page_table().entry(3).accessed);
  d.access(3, out.completion + 1);
  EXPECT_TRUE(d.page_table().entry(3).accessed);
}

TEST(Driver, EvictionWhenEpcFull) {
  Driver d(small_enclave(64, /*epc=*/2), test_costs());
  Cycles now = 0;
  for (PageNum p = 0; p < 3; ++p) {
    now = d.access(p, now).completion;
  }
  EXPECT_EQ(d.stats().evictions, 1u);
  EXPECT_EQ(d.epc().used(), 2u);
  EXPECT_EQ(d.backing_store().total_evictions(), 1u);
  d.check_invariants();
}

TEST(Driver, EvictedPageFaultsAgainWithFreshVersion) {
  Driver d(small_enclave(64, 2), test_costs());
  Cycles now = 0;
  now = d.access(0, now).completion;
  now = d.access(1, now).completion;
  now = d.access(2, now).completion;  // evicts one of 0/1 (CLOCK)
  // Figure out which page got evicted and fault it back in.
  const PageNum evicted = d.page_table().present(0) ? 1 : 0;
  EXPECT_EQ(d.backing_store().eviction_count(evicted), 1u);
  const auto out = d.access(evicted, now);
  EXPECT_TRUE(out.faulted);
  d.check_invariants();
}

TEST(Driver, FullFaultCostIncludesEviction) {
  Driver d(small_enclave(64, 2), test_costs());
  Cycles now = 0;
  now = d.access(0, now).completion;
  now = d.access(1, now).completion;
  const Cycles start = now;
  const auto out = d.access(2, now);
  EXPECT_EQ(out.completion - start, 10'000u + 4'000 + 44'000 + 10'000);
}

TEST(Driver, OutOfRangeAccessThrows) {
  Driver d(small_enclave(16), test_costs());
  EXPECT_THROW(d.access(16, 0), CheckFailure);
  EXPECT_THROW(d.sip_load(99, 0), CheckFailure);
}

TEST(Driver, PolicyPredictionsArePreloaded) {
  FakePolicy policy;
  policy.predictions[0] = {1, 2, 3};
  Driver d(small_enclave(), test_costs(), &policy);
  const auto out = d.access(0, 0);
  EXPECT_EQ(policy.faults_seen, std::vector<PageNum>{0});
  EXPECT_EQ(d.stats().preloads_issued, 3u);
  // Let the channel drain: all three preloads commit.
  d.drain();
  EXPECT_EQ(policy.completed, (std::vector<PageNum>{1, 2, 3}));
  EXPECT_EQ(d.stats().preloads_completed, 3u);
  // Accessing a preloaded page afterwards is a hit.
  const auto hit = d.access(2, out.completion + 1'000'000);
  EXPECT_FALSE(hit.faulted);
  EXPECT_EQ(d.stats().preloads_used, 1u);
  d.check_invariants();
}

TEST(Driver, PredictionsSkipResidentAndQueuedPages) {
  FakePolicy policy;
  policy.predictions[0] = {1, 2};
  policy.predictions[5] = {1, 2, 6};  // 1,2 already handled
  Driver d(small_enclave(64, 16), test_costs(), &policy);
  Cycles now = d.access(0, 0).completion;
  d.drain();
  d.access(5, now + 1'000'000);
  // Only page 6 is new; 1 and 2 are already resident.
  EXPECT_EQ(d.stats().preloads_issued, 3u);  // 1, 2 from first fault; 6 now
  d.drain();
  EXPECT_TRUE(d.page_table().present(6));
}

TEST(Driver, StreamFaultFlushesQueuedPreloads) {
  FakePolicy policy;
  policy.predictions[0] = {1, 2, 3, 4};
  Driver d(small_enclave(), test_costs(), &policy);
  const auto out = d.access(0, 0);
  // Fault on page 2, which is queued for preloading: the app outran the
  // preloader within the stream, so the queued batch (2, 3, 4) is flushed
  // and 2 is demand-loaded instead (§4.1's in-stream abort). Preload 1 is
  // in flight and cannot be preempted.
  const auto out2 = d.access(2, out.completion);
  EXPECT_TRUE(out2.faulted);
  EXPECT_EQ(policy.aborted.size(), 3u);
  EXPECT_EQ(d.stats().preloads_aborted, 3u);
  d.drain();
  EXPECT_TRUE(d.page_table().present(1));   // in-flight one landed
  EXPECT_TRUE(d.page_table().present(2));   // demand-loaded
  EXPECT_FALSE(d.page_table().present(3));  // flushed
  EXPECT_FALSE(d.page_table().present(4));  // flushed
  d.check_invariants();
}

TEST(Driver, UnrelatedFaultPreemptsButKeepsQueuedPreloads) {
  FakePolicy policy;
  policy.predictions[0] = {1, 2, 3};
  Driver d(small_enclave(64, /*epc=*/16), test_costs(), &policy);
  const auto out = d.access(0, 0);
  // Fault on an unrelated page: the demand load is inserted after the
  // in-flight preload but ahead of the queued ones, which survive.
  const auto out2 = d.access(40, out.completion);
  EXPECT_TRUE(out2.faulted);
  EXPECT_TRUE(policy.aborted.empty());
  // The demand load ran before queued preloads: 40 became resident no
  // later than one preload + one load after the fault.
  d.drain();
  EXPECT_TRUE(d.page_table().present(40));
  EXPECT_TRUE(d.page_table().present(2));  // queued preloads still landed
  EXPECT_TRUE(d.page_table().present(3));
  d.check_invariants();
}

TEST(Driver, FlushPolicyAbortsOnAnyFault) {
  FakePolicy policy;
  policy.predictions[0] = {1, 2, 3, 4};
  auto cfg = small_enclave(64, 16);
  cfg.demand_policy = DemandPolicy::kPreemptAndFlush;
  Driver d(cfg, test_costs(), &policy);
  const auto out = d.access(0, 0);
  d.access(40, out.completion);  // unrelated fault still flushes the queue
  EXPECT_EQ(policy.aborted.size(), 3u);
  d.drain();
  EXPECT_FALSE(d.page_table().present(2));
}

TEST(Driver, FifoPolicyKeepsQueuedPreloadsAndWaits) {
  FakePolicy policy;
  policy.predictions[0] = {1, 2, 3, 4};
  auto cfg = small_enclave(64, /*epc=*/16);  // room for all loads
  cfg.demand_policy = DemandPolicy::kFifo;
  Driver d(cfg, test_costs(), &policy);
  const auto out = d.access(0, 0);
  const auto out2 = d.access(40, out.completion);
  EXPECT_TRUE(policy.aborted.empty());
  d.drain();
  EXPECT_TRUE(d.page_table().present(2));
  EXPECT_TRUE(d.page_table().present(4));
  // FIFO: the demand for 40 waited behind all four queued preloads, so it
  // finished later than a preempting demand would have.
  Driver d2(small_enclave(64, 16), test_costs(), &policy);
  const auto o1 = d2.access(0, 0);
  const auto o2 = d2.access(40, o1.completion);
  EXPECT_GT(out2.completion, o2.completion);
}

// --- Demand-policy fault ordering: where a demand load lands relative to
// --- queued preloads, per DemandPolicy variant.

TEST(DriverDemandOrdering, PreemptDemandOvertakesQueuedPreloads) {
  FakePolicy policy;
  policy.predictions[0] = {1, 2, 3};
  auto cfg = small_enclave(64, 16);
  cfg.demand_policy = DemandPolicy::kPreempt;
  Driver d(cfg, test_costs(), &policy);
  const auto out = d.access(0, 0);
  const auto out2 = d.access(40, out.completion);
  EXPECT_TRUE(out2.faulted);
  EXPECT_TRUE(policy.aborted.empty());
  // The demand was inserted ahead of the queued preloads: the survivors
  // start only after it finished (completion minus ERESUME = load end).
  const Cycles demand_end = out2.completion - test_costs().eresume;
  for (const PageNum p : {PageNum{2}, PageNum{3}}) {
    const auto op = d.channel().find(p);
    ASSERT_TRUE(op.has_value()) << "preload " << p << " was dropped";
    EXPECT_EQ(op->kind, OpKind::kDfpPreload);
    EXPECT_GE(op->start, demand_end) << "preload " << p << " ran first";
  }
  d.drain();
  d.check_invariants();
}

TEST(DriverDemandOrdering, PreemptAndFlushDemandFollowsOnlyInFlightOp) {
  FakePolicy policy;
  policy.predictions[0] = {1, 2, 3, 4};
  auto cfg = small_enclave(64, 16);
  cfg.demand_policy = DemandPolicy::kPreemptAndFlush;
  Driver d(cfg, test_costs(), &policy);
  const auto out = d.access(0, 0);
  const auto op1 = d.channel().find(1);  // in flight, cannot be preempted
  ASSERT_TRUE(op1.has_value());
  const auto out2 = d.access(40, out.completion);
  // The whole queue (2, 3, 4) was flushed; the demand load ran directly
  // after the in-flight preload, with nothing in between.
  EXPECT_EQ(policy.aborted, (std::vector<PageNum>{2, 3, 4}));
  EXPECT_EQ(out2.completion,
            op1->end + test_costs().epc_load + test_costs().eresume);
  d.drain();
  EXPECT_TRUE(d.page_table().present(1));
  EXPECT_FALSE(d.page_table().present(2));
  EXPECT_FALSE(d.page_table().present(4));
  d.check_invariants();
}

TEST(DriverDemandOrdering, FifoDemandWaitsBehindWholeQueue) {
  FakePolicy policy;
  policy.predictions[0] = {1, 2, 3, 4};
  auto cfg = small_enclave(64, 16);
  cfg.demand_policy = DemandPolicy::kFifo;
  Driver d(cfg, test_costs(), &policy);
  const auto out = d.access(0, 0);
  const auto op4 = d.channel().find(4);  // tail of the preload queue
  ASSERT_TRUE(op4.has_value());
  const auto out2 = d.access(40, out.completion);
  EXPECT_TRUE(policy.aborted.empty());
  // FIFO never reorders: the demand load started only after the last
  // queued preload finished.
  EXPECT_EQ(out2.completion,
            op4->end + test_costs().epc_load + test_costs().eresume);
  d.drain();
  d.check_invariants();
}

TEST(DriverDemandOrdering, FifoInStreamFaultWaitsWithoutAbort) {
  FakePolicy policy;
  policy.predictions[0] = {1, 2, 3};
  auto cfg = small_enclave(64, 16);
  cfg.demand_policy = DemandPolicy::kFifo;
  Driver d(cfg, test_costs(), &policy);
  const auto out = d.access(0, 0);
  const auto op3 = d.channel().find(3);
  ASSERT_TRUE(op3.has_value());
  // Fault on the queued page itself: under kPreempt this is the §4.1
  // in-stream abort; under FIFO the handler just waits its turn.
  const auto out2 = d.access(3, out.completion);
  EXPECT_TRUE(out2.faulted);
  EXPECT_TRUE(out2.hit_inflight);
  EXPECT_TRUE(policy.aborted.empty());
  EXPECT_EQ(d.stats().preloads_aborted, 0u);
  EXPECT_EQ(out2.completion, op3->end + test_costs().eresume);
  d.drain();
  d.check_invariants();
}

TEST(Driver, FaultOnInFlightPreloadWaits) {
  FakePolicy policy;
  policy.predictions[0] = {1, 2};
  Driver d(small_enclave(), test_costs(), &policy);
  const auto out = d.access(0, 0);  // demand 0 done; preloads 1,2 queued
  // Fault on page 1 shortly after: its preload is in flight.
  const auto out2 = d.access(1, out.completion + 100);
  EXPECT_TRUE(out2.faulted);
  EXPECT_TRUE(out2.hit_inflight);
  EXPECT_EQ(d.stats().fault_wait_hits, 1u);
  // It resumed at the preload's end + ERESUME, cheaper than a full load.
  EXPECT_LT(out2.completion - (out.completion + 100),
            test_costs().fault_cost_min());
}

TEST(Driver, PreloadLandingDuringAexWindowIsUsed) {
  FakePolicy policy;
  policy.predictions[0] = {1};
  Driver d(small_enclave(), test_costs(), &policy);
  d.access(0, 0);
  // Preload of 1 runs right after the demand load. Fault at a time where
  // the preload completes inside the AEX window.
  const auto op = d.channel().find(1);
  ASSERT_TRUE(op.has_value());
  const Cycles fault_time = op->end - 5'000;  // AEX spans the end
  const auto out2 = d.access(1, fault_time);
  EXPECT_TRUE(out2.faulted);
  EXPECT_TRUE(out2.hit_inflight);
  EXPECT_EQ(out2.completion, fault_time + 10'000 + 10'000);
}

TEST(Driver, SipLoadSkipsAexAndEresume) {
  Driver d(small_enclave(), test_costs());
  const Cycles end = d.sip_load(7, 1000);
  EXPECT_EQ(end, 1000u + 44'000);
  EXPECT_TRUE(d.page_table().present(7));
  EXPECT_EQ(d.stats().sip_loads, 1u);
  EXPECT_EQ(d.stats().faults, 0u);
  // The subsequent access is a plain hit.
  const auto out = d.access(7, end);
  EXPECT_FALSE(out.faulted);
  EXPECT_EQ(out.completion, end);
  EXPECT_EQ(d.stats().preloads_used, 1u);  // SIP loads count as preloads
}

TEST(Driver, SipLoadOnResidentPageReturnsImmediately) {
  Driver d(small_enclave(), test_costs());
  const auto out = d.access(3, 0);
  const Cycles end = d.sip_load(3, out.completion + 10);
  EXPECT_EQ(end, out.completion + 10);
  EXPECT_EQ(d.stats().sip_loads, 0u);
}

TEST(Driver, SipLoadWaitsForInFlightOp) {
  FakePolicy policy;
  policy.predictions[0] = {1};
  Driver d(small_enclave(), test_costs(), &policy);
  const auto out = d.access(0, 0);
  const auto op = d.channel().find(1);
  ASSERT_TRUE(op.has_value());
  const Cycles end = d.sip_load(1, out.completion + 1);
  EXPECT_EQ(end, op->end);
  EXPECT_EQ(d.stats().sip_inflight_waits, 1u);
}

TEST(Driver, BitmapTracksResidency) {
  Driver d(small_enclave(64, 2), test_costs());
  Cycles now = 0;
  now = d.access(0, now).completion;
  EXPECT_TRUE(d.bitmap().test(0));
  now = d.access(1, now).completion;
  now = d.access(2, now).completion;  // one of 0/1 evicted
  EXPECT_EQ(d.bitmap().popcount(), 2u);
  d.check_invariants();
}

TEST(Driver, ServiceScanRunsPeriodically) {
  FakePolicy policy;
  auto costs = test_costs();
  costs.scan_period = 50'000;
  Driver d(small_enclave(), costs, &policy);
  d.access(0, 0);
  d.advance_to(500'000);
  EXPECT_EQ(d.stats().scans, 10u);
  EXPECT_EQ(policy.scans, 10);
}

TEST(Driver, EvictedUnusedPreloadNotifiesPolicy) {
  FakePolicy policy;
  policy.predictions[0] = {1, 2, 3};
  // EPC of 4: 0,1,2,3 fill it; loading 10 must evict. Untouched preloads
  // (clear access bits) are the CLOCK victims.
  Driver d(small_enclave(64, 4), test_costs(), &policy);
  Cycles now = d.access(0, 0).completion;
  now = d.drain();
  const auto out = d.access(10, now);
  EXPECT_EQ(d.stats().evictions, 1u);
  ASSERT_EQ(policy.evicted_unused.size(), 1u);
  EXPECT_EQ(d.stats().preloads_evicted_unused, 1u);
  // The evicted page was one of the unused preloads, not page 0.
  EXPECT_NE(policy.evicted_unused[0], 0u);
  (void)out;
  d.check_invariants();
}

// --- Overload hardening: bounded queue, retry sweep, dup suppression.

/// Scripted injector: drops / duplicates the next N completion
/// notifications for specific pages, deterministically.
class ScriptedChaos final : public ChaosHooks {
 public:
  std::map<PageNum, int> drops;  // page -> deliveries still to drop
  std::map<PageNum, int> dups;   // page -> deliveries still to duplicate

  bool drop_preload_completion(PageNum page, Cycles) override {
    return consume(drops, page);
  }
  bool duplicate_preload_completion(PageNum page, Cycles) override {
    return consume(dups, page);
  }

 private:
  static bool consume(std::map<PageNum, int>& budget, PageNum page) {
    const auto it = budget.find(page);
    if (it == budget.end() || it->second == 0) {
      return false;
    }
    --it->second;
    return true;
  }
};

EnclaveConfig hardened_enclave(std::uint32_t max_retries = 3) {
  auto cfg = small_enclave(64, 16);
  cfg.channel.max_retries = max_retries;
  return cfg;
}

/// Every lost completion must be accounted for: retried, made moot by
/// another load, or surfaced as a permanent fault.
void expect_conservation(const Driver& d) {
  EXPECT_EQ(d.stats().lost_completions,
            d.stats().retries + d.stats().retries_resolved +
                d.stats().permanent_faults);
}

TEST(DriverHardened, DuplicatedCompletionIsIdempotent) {
  FakePolicy policy;
  policy.predictions[0] = {1};
  ScriptedChaos chaos;
  chaos.dups[1] = 1;
  Driver d(hardened_enclave(), test_costs(), &policy);
  d.set_chaos(&chaos);
  d.access(0, 0);
  d.drain();
  // The duplicated notification changed neither residency nor stats twice:
  // one committed preload, one suppressed duplicate, one policy callback.
  EXPECT_TRUE(d.page_table().present(1));
  EXPECT_EQ(d.stats().preloads_completed, 1u);
  EXPECT_EQ(d.stats().duplicate_completions, 1u);
  EXPECT_EQ(policy.completed, std::vector<PageNum>{1});
  EXPECT_EQ(d.stats().lost_completions, 0u);
  d.check_invariants();
}

TEST(DriverHardened, DroppedCompletionIsRetriedUntilItLands) {
  FakePolicy policy;
  policy.predictions[0] = {1};
  ScriptedChaos chaos;
  chaos.drops[1] = 1;  // the first attempt's completion vanishes
  Driver d(hardened_enclave(), test_costs(), &policy);
  d.set_chaos(&chaos);
  d.access(0, 0);
  EXPECT_FALSE(d.page_table().present(1));
  d.drain();  // waits out the deadline, sweeps, re-issues, commits
  EXPECT_TRUE(d.page_table().present(1));
  EXPECT_EQ(d.stats().lost_completions, 1u);
  EXPECT_EQ(d.stats().retries, 1u);
  EXPECT_EQ(d.stats().permanent_faults, 0u);
  EXPECT_EQ(d.stats().preloads_completed, 1u);
  EXPECT_EQ(policy.completed, std::vector<PageNum>{1});
  expect_conservation(d);
  d.check_invariants();
}

TEST(DriverHardened, RepeatedDropsSurfaceAPermanentFault) {
  FakePolicy policy;
  policy.predictions[0] = {1};
  ScriptedChaos chaos;
  chaos.drops[1] = 100;  // every delivery vanishes
  Driver d(hardened_enclave(/*max_retries=*/2), test_costs(), &policy);
  d.set_chaos(&chaos);
  d.access(0, 0);
  d.drain();
  // Initial attempt + 2 retries all dropped, then the sweep gives up and
  // tells the policy — the loss is loud, not silent.
  EXPECT_FALSE(d.page_table().present(1));
  EXPECT_EQ(d.stats().lost_completions, 3u);
  EXPECT_EQ(d.stats().retries, 2u);
  EXPECT_EQ(d.stats().permanent_faults, 1u);
  EXPECT_EQ(policy.aborted, std::vector<PageNum>{1});
  expect_conservation(d);
  d.check_invariants();
}

TEST(DriverHardened, DemandFaultResolvesAPendingRetry) {
  FakePolicy policy;
  policy.predictions[0] = {1};
  ScriptedChaos chaos;
  chaos.drops[1] = 1;
  Driver d(hardened_enclave(), test_costs(), &policy);
  d.set_chaos(&chaos);
  const auto out = d.access(0, 0);
  // Fault on page 1 while its (doomed) preload is in flight: the handler
  // waits, the completion is dropped, and the handler demand-loads the page
  // itself. The lost op is then moot — resolved, not retried.
  const auto out2 = d.access(1, out.completion);
  EXPECT_TRUE(out2.faulted);
  EXPECT_TRUE(d.page_table().present(1));
  d.drain();
  EXPECT_EQ(d.stats().lost_completions, 1u);
  EXPECT_EQ(d.stats().retries_resolved, 1u);
  EXPECT_EQ(d.stats().retries, 0u);
  EXPECT_EQ(d.stats().permanent_faults, 0u);
  expect_conservation(d);
  d.check_invariants();
}

TEST(DriverHardened, SeedModeDropOnlySkewsPolicyAccounting) {
  // Without retries configured the seed semantics hold: a dropped
  // completion leaves the page resident and only starves the policy's
  // bookkeeping — nothing is declared lost.
  FakePolicy policy;
  policy.predictions[0] = {1};
  ScriptedChaos chaos;
  chaos.drops[1] = 1;
  Driver d(small_enclave(64, 16), test_costs(), &policy);
  d.set_chaos(&chaos);
  d.access(0, 0);
  d.drain();
  EXPECT_TRUE(d.page_table().present(1));
  EXPECT_EQ(d.stats().preloads_completed, 1u);
  EXPECT_TRUE(policy.completed.empty());
  EXPECT_EQ(d.stats().lost_completions, 0u);
  d.check_invariants();
}

TEST(DriverHardened, BoundedQueueShedsExcessPreloadSubmissions) {
  FakePolicy policy;
  policy.predictions[0] = {1, 2, 3, 4, 5};
  auto cfg = small_enclave(64, 16);
  cfg.channel.max_queued = 3;  // demand load + two preloads fill it
  Driver d(cfg, test_costs(), &policy);
  d.access(0, 0);
  EXPECT_EQ(d.stats().preloads_issued, 2u);
  EXPECT_EQ(d.stats().preloads_shed, 3u);
  EXPECT_EQ(policy.shed, (std::vector<PageNum>{3, 4, 5}));
  d.drain();
  EXPECT_TRUE(d.page_table().present(1));
  EXPECT_TRUE(d.page_table().present(2));
  EXPECT_FALSE(d.page_table().present(3));
  d.check_invariants();
}

TEST(DriverHardened, DemandLoadPastHighWaterEvictsQueuedPreloads) {
  FakePolicy policy;
  policy.predictions[0] = {1, 2, 3};
  auto cfg = small_enclave(64, 16);
  cfg.channel.max_queued = 8;
  cfg.channel.preload_high_water = 2;
  Driver d(cfg, test_costs(), &policy);
  const auto out = d.access(0, 0);
  // Queue now holds preload 1 (in flight) + queued preloads 2, 3. The
  // demand fault arrives over the high-water mark: queued preloads are
  // evicted newest-first until the queue drains below it; the in-flight op
  // is untouchable. Demand is never rejected.
  const auto out2 = d.access(40, out.completion);
  EXPECT_TRUE(out2.faulted);
  EXPECT_EQ(d.stats().queued_preload_evictions, 2u);
  EXPECT_EQ(policy.shed, (std::vector<PageNum>{3, 2}));
  d.drain();
  EXPECT_TRUE(d.page_table().present(1));
  EXPECT_TRUE(d.page_table().present(40));
  EXPECT_FALSE(d.page_table().present(2));
  EXPECT_FALSE(d.page_table().present(3));
  d.check_invariants();
}

TEST(DriverHardened, ConservationHoldsUnderRandomOverload) {
  FakePolicy policy;
  for (PageNum p = 0; p < 32; ++p) {
    policy.predictions[p] = {p + 1, p + 2};
  }
  ScriptedChaos chaos;
  for (PageNum p = 0; p < 34; ++p) {
    chaos.drops[p] = 2;  // every page loses its first two completions
  }
  auto cfg = small_enclave(34, 6);
  cfg.channel.max_queued = 4;
  cfg.channel.max_retries = 2;
  cfg.channel.deadline_slack = 20'000;  // tight deadlines: sweeps stay busy
  auto costs = test_costs();
  costs.scan_period = 50'000;  // scan ticks drive the retry sweep mid-run
  Driver d(cfg, costs, &policy);
  d.set_chaos(&chaos);
  Rng rng(7);
  Cycles now = 0;
  for (int i = 0; i < 1500; ++i) {
    now = d.access(rng.bounded(32), now).completion + rng.bounded(5'000);
    if (i % 250 == 0) {
      d.check_invariants();
    }
  }
  d.drain();
  // The run definitely lost completions; every one of them was re-issued,
  // resolved by a demand load, or surfaced as a permanent fault — however
  // the re-issue/deferral schedule played out, nothing is silently parked.
  EXPECT_GT(d.stats().lost_completions, 0u);
  expect_conservation(d);
  d.check_invariants();
}

TEST(Driver, InvariantsHoldUnderRandomWorkload) {
  FakePolicy policy;
  for (PageNum p = 0; p < 32; ++p) {
    policy.predictions[p] = {p + 1, p + 2};
  }
  Driver d(small_enclave(32, 6), test_costs(), &policy);
  Rng rng(2024);
  Cycles now = 0;
  std::uint64_t access_calls = 0;
  for (int i = 0; i < 2000; ++i) {
    const PageNum page = rng.bounded(32);
    if (rng.chance(0.2)) {
      now = std::max(now, d.sip_load(page, now)) + rng.bounded(1000);
    } else {
      now = d.access(page, now).completion + rng.bounded(1000);
      ++access_calls;
    }
    if (i % 100 == 0) {
      d.check_invariants();
    }
  }
  d.drain();
  d.check_invariants();
  EXPECT_EQ(d.stats().accesses, access_calls);
}

}  // namespace
}  // namespace sgxpl::sgxsim
