// Tests for the hoisted-SIP prefetch path and the channel priority /
// cancellation machinery behind it.
#include <gtest/gtest.h>

#include "common/check.h"
#include "sgxsim/driver.h"
#include "sgxsim/paging_channel.h"

namespace sgxpl::sgxsim {
namespace {

CostModel test_costs() {
  CostModel c;
  c.scan_period = 1'000'000'000;
  return c;
}

EnclaveConfig small_enclave(PageNum elrange = 64, PageNum epc = 16) {
  EnclaveConfig cfg;
  cfg.elrange_pages = elrange;
  cfg.epc_pages = epc;
  return cfg;
}

TEST(ChannelPriority, InsertsAfterInFlightBeforeQueued) {
  PagingChannel ch;
  ch.schedule(0, 100, 1, OpKind::kDfpPreload);  // in flight at t=50
  ch.schedule(0, 100, 2, OpKind::kDfpPreload);  // queued [100,200)
  const auto& op = ch.schedule_priority(50, 100, 9, OpKind::kDemandLoad);
  EXPECT_EQ(op.start, 100u);  // right after the in-flight op
  EXPECT_EQ(op.end, 200u);
  const auto queued = ch.find(2);
  ASSERT_TRUE(queued.has_value());
  EXPECT_EQ(queued->start, 200u);  // pushed back, not cancelled
}

TEST(ChannelPriority, EmptyChannelStartsImmediately) {
  PagingChannel ch;
  const auto& op = ch.schedule_priority(42, 100, 1, OpKind::kSipLoad);
  EXPECT_EQ(op.start, 42u);
}

TEST(ChannelPriority, ChainsAfterEarlierPriorityOps) {
  PagingChannel ch;
  ch.schedule(0, 100, 1, OpKind::kDfpPreload);            // in flight
  ch.schedule_priority(10, 100, 2, OpKind::kDemandLoad);  // [100,200)
  const auto& op = ch.schedule_priority(10, 100, 3, OpKind::kDemandLoad);
  // Second priority op lands after the first (both already "started"
  // positions relative to t=10? No: op for 2 starts at 100 > 10, so the
  // new op inserts before it).
  EXPECT_EQ(op.start, 100u);
  const auto second = ch.find(2);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->start, 200u);
}

TEST(ChannelCancel, RemovesQueuedOp) {
  PagingChannel ch;
  ch.schedule(0, 100, 1, OpKind::kSipLoad);  // in flight
  ch.schedule(0, 100, 2, OpKind::kSipLoad);  // queued
  EXPECT_TRUE(ch.cancel_not_started(2, 50));
  EXPECT_FALSE(ch.find(2).has_value());
  EXPECT_EQ(ch.ops_aborted(), 1u);
}

TEST(ChannelCancel, RefusesInFlightOp) {
  PagingChannel ch;
  ch.schedule(0, 100, 1, OpKind::kSipLoad);
  EXPECT_FALSE(ch.cancel_not_started(1, 50));
  EXPECT_TRUE(ch.find(1).has_value());
}

TEST(ChannelCancel, MissingPageReturnsFalse) {
  PagingChannel ch;
  EXPECT_FALSE(ch.cancel_not_started(7, 0));
}

TEST(Prefetch, LoadsAsynchronously) {
  Driver d(small_enclave(), test_costs());
  d.sip_prefetch(5, 100);
  EXPECT_EQ(d.stats().sip_prefetches, 1u);
  EXPECT_FALSE(d.page_table().present(5));  // not yet: async
  d.drain();
  EXPECT_TRUE(d.page_table().present(5));
  // The later access is a plain hit that counts the prefetch as used.
  const auto out = d.access(5, 1'000'000);
  EXPECT_FALSE(out.faulted);
  EXPECT_EQ(d.stats().preloads_used, 1u);
  d.check_invariants();
}

TEST(Prefetch, NoOpWhenResidentOrQueued) {
  Driver d(small_enclave(), test_costs());
  const auto out = d.access(3, 0);
  d.sip_prefetch(3, out.completion);  // resident
  EXPECT_EQ(d.stats().sip_prefetches, 0u);
  d.sip_prefetch(9, out.completion);
  d.sip_prefetch(9, out.completion + 1);  // already queued
  EXPECT_EQ(d.stats().sip_prefetches, 1u);
}

TEST(Prefetch, DemandFaultPromotesQueuedPrefetch) {
  Driver d(small_enclave(), test_costs());
  // Fill the channel with an in-flight demand load, then queue a prefetch.
  d.access(0, 0);  // demand [10k, 58k)
  d.sip_prefetch(7, 1'000);
  // Fault on 7 while its prefetch is queued (not started): the driver must
  // promote it rather than schedule a duplicate load.
  const auto out = d.access(7, 2'000);
  EXPECT_TRUE(out.faulted);
  d.drain();
  d.check_invariants();
  EXPECT_TRUE(d.page_table().present(7));
}

TEST(Prefetch, DemandFaultWaitsForInFlightPrefetch) {
  Driver d(small_enclave(), test_costs());
  d.sip_prefetch(7, 0);  // starts immediately, 44k long
  const auto out = d.access(7, 1'000);
  EXPECT_TRUE(out.faulted);
  EXPECT_TRUE(out.hit_inflight);
  // Resumed at prefetch end + ERESUME, cheaper than a fresh load.
  EXPECT_EQ(out.completion, 44'000u + 10'000u);
}

TEST(Prefetch, OutOfRangeThrows) {
  Driver d(small_enclave(16), test_costs());
  EXPECT_THROW(d.sip_prefetch(99, 0), CheckFailure);
}

TEST(Prefetch, DoesNotPreemptDemandLoads) {
  Driver d(small_enclave(), test_costs());
  d.access(0, 0);             // demand in flight
  d.sip_prefetch(5, 1'000);   // queues behind
  const auto op5 = d.channel().find(5);
  const auto op0 = d.channel().find(0);
  ASSERT_TRUE(op5.has_value());
  if (op0.has_value()) {
    EXPECT_GE(op5->start, op0->end);
  }
}

}  // namespace
}  // namespace sgxpl::sgxsim
