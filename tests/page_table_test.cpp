#include "sgxsim/page_table.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace sgxpl::sgxsim {
namespace {

TEST(PageTable, StartsEmpty) {
  PageTable pt(100);
  EXPECT_EQ(pt.elrange_pages(), 100u);
  EXPECT_EQ(pt.resident_count(), 0u);
  for (PageNum p = 0; p < 100; ++p) {
    EXPECT_FALSE(pt.present(p));
  }
}

TEST(PageTable, RejectsEmptyElrange) {
  EXPECT_THROW(PageTable(0), CheckFailure);
}

TEST(PageTable, MapUnmapRoundTrip) {
  PageTable pt(10);
  pt.map(3, 7, /*via_preload=*/false);
  EXPECT_TRUE(pt.present(3));
  EXPECT_EQ(pt.entry(3).slot, 7u);
  EXPECT_FALSE(pt.entry(3).accessed);
  EXPECT_FALSE(pt.entry(3).preloaded);
  EXPECT_EQ(pt.resident_count(), 1u);

  const auto prior = pt.unmap(3);
  EXPECT_EQ(prior.slot, 7u);
  EXPECT_FALSE(pt.present(3));
  EXPECT_EQ(pt.resident_count(), 0u);
}

TEST(PageTable, DoubleMapThrows) {
  PageTable pt(10);
  pt.map(1, 0, false);
  EXPECT_THROW(pt.map(1, 1, false), CheckFailure);
}

TEST(PageTable, UnmapNonResidentThrows) {
  PageTable pt(10);
  EXPECT_THROW(pt.unmap(5), CheckFailure);
}

TEST(PageTable, TouchSetsAccessBit) {
  PageTable pt(10);
  pt.map(2, 0, false);
  EXPECT_FALSE(pt.entry(2).accessed);
  pt.touch(2);
  EXPECT_TRUE(pt.entry(2).accessed);
}

TEST(PageTable, TouchReportsFirstTouchOfPreloadedPage) {
  PageTable pt(10);
  pt.map(4, 0, /*via_preload=*/true);
  EXPECT_TRUE(pt.entry(4).preloaded);
  EXPECT_TRUE(pt.touch(4));   // first touch: preload paid off
  EXPECT_FALSE(pt.entry(4).preloaded);
  EXPECT_FALSE(pt.touch(4));  // subsequent touches are not "first"
}

TEST(PageTable, TouchOfDemandLoadedPageIsNotFirstPreloadTouch) {
  PageTable pt(10);
  pt.map(4, 0, /*via_preload=*/false);
  EXPECT_FALSE(pt.touch(4));
}

TEST(PageTable, TestAndClearAccessed) {
  PageTable pt(10);
  pt.map(6, 0, false);
  pt.touch(6);
  EXPECT_TRUE(pt.test_and_clear_accessed(6));
  EXPECT_FALSE(pt.entry(6).accessed);
  EXPECT_FALSE(pt.test_and_clear_accessed(6));
}

TEST(PageTable, UnmapClearsAllFlags) {
  PageTable pt(10);
  pt.map(8, 3, true);
  pt.touch(8);
  pt.unmap(8);
  pt.map(8, 5, false);
  EXPECT_FALSE(pt.entry(8).accessed);
  EXPECT_FALSE(pt.entry(8).preloaded);
  EXPECT_EQ(pt.entry(8).slot, 5u);
}

}  // namespace
}  // namespace sgxpl::sgxsim
