// Tests for the chaos fault-injection subsystem: plan parsing, injector
// determinism, the driver's behaviour under each hook, the DFP health
// monitor's state machine, and end-to-end replay/graceful-degradation
// properties (docs/ROBUSTNESS.md).
#include "inject/fault_injector.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "core/experiment.h"
#include "core/simulator.h"
#include "dfp/health_monitor.h"
#include "obs/event_log.h"
#include "sgxsim/driver.h"
#include "trace/workloads.h"

namespace sgxpl {
namespace {

using inject::ChaosPlan;
using inject::FaultInjector;
using inject::FaultKind;

// --- ChaosPlan parsing ------------------------------------------------------

TEST(ChaosPlanParse, AllNoneEmpty) {
  const auto none = ChaosPlan::parse("none");
  ASSERT_TRUE(none.has_value());
  EXPECT_FALSE(none->any_enabled());
  const auto empty = ChaosPlan::parse("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_FALSE(empty->any_enabled());
  const auto all = ChaosPlan::parse("all");
  ASSERT_TRUE(all.has_value());
  for (const FaultKind k : inject::all_fault_kinds()) {
    EXPECT_TRUE(all->setting(k).enabled) << to_string(k);
  }
}

TEST(ChaosPlanParse, EntryNumbersAndDefaults) {
  const auto plan = ChaosPlan::parse("spike:0.05:20,epc-squeeze");
  ASSERT_TRUE(plan.has_value());
  const auto& spike = plan->setting(FaultKind::kChannelSpike);
  EXPECT_TRUE(spike.enabled);
  EXPECT_DOUBLE_EQ(spike.probability, 0.05);
  EXPECT_DOUBLE_EQ(spike.magnitude, 20.0);
  // Omitted numbers fall back to the class defaults.
  const auto& squeeze = plan->setting(FaultKind::kEpcSqueeze);
  const auto defaults = inject::default_setting(FaultKind::kEpcSqueeze);
  EXPECT_TRUE(squeeze.enabled);
  EXPECT_DOUBLE_EQ(squeeze.probability, defaults.probability);
  EXPECT_DOUBLE_EQ(squeeze.magnitude, defaults.magnitude);
  // Everything not named stays off.
  EXPECT_FALSE(plan->setting(FaultKind::kChannelJitter).enabled);
}

TEST(ChaosPlanParse, RejectsMalformedSpecs) {
  std::string err;
  EXPECT_FALSE(ChaosPlan::parse("meteor-strike", &err).has_value());
  EXPECT_NE(err.find("meteor-strike"), std::string::npos);
  EXPECT_FALSE(ChaosPlan::parse("jitter:1.5", &err).has_value());
  EXPECT_FALSE(ChaosPlan::parse("jitter:-0.1", &err).has_value());
  EXPECT_FALSE(ChaosPlan::parse("jitter:zero", &err).has_value());
  EXPECT_FALSE(ChaosPlan::parse("jitter,,spike", &err).has_value());
}

TEST(ChaosPlanParse, ErrorsNameTheTokenAndItsPosition) {
  std::string err;
  // Unknown class: names the token, its position, and the valid classes.
  EXPECT_FALSE(ChaosPlan::parse("jitter,meteor-strike", &err).has_value());
  EXPECT_NE(err.find("'meteor-strike'"), std::string::npos) << err;
  EXPECT_NE(err.find("position 7"), std::string::npos) << err;
  EXPECT_NE(err.find("valid classes"), std::string::npos) << err;
  // Bad probability: position points at the number, not the entry.
  EXPECT_FALSE(ChaosPlan::parse("spike:abc", &err).has_value());
  EXPECT_NE(err.find("'abc'"), std::string::npos) << err;
  EXPECT_NE(err.find("position 6"), std::string::npos) << err;
  // Out-of-range probability.
  EXPECT_FALSE(ChaosPlan::parse("jitter:1.5", &err).has_value());
  EXPECT_NE(err.find("'1.5'"), std::string::npos) << err;
  EXPECT_NE(err.find("position 7"), std::string::npos) << err;
  // Bad magnitude.
  EXPECT_FALSE(ChaosPlan::parse("spike:0.1:-3", &err).has_value());
  EXPECT_NE(err.find("'-3'"), std::string::npos) << err;
  EXPECT_NE(err.find("position 10"), std::string::npos) << err;
}

TEST(ChaosPlanParse, RejectsEmptyTokens) {
  std::string err;
  // A ':' with nothing after it.
  EXPECT_FALSE(ChaosPlan::parse("spike:", &err).has_value());
  EXPECT_NE(err.find("missing probability"), std::string::npos) << err;
  EXPECT_FALSE(ChaosPlan::parse("spike:0.1:", &err).has_value());
  EXPECT_NE(err.find("missing magnitude"), std::string::npos) << err;
  // Double comma: an empty entry, with its position.
  EXPECT_FALSE(ChaosPlan::parse("jitter,,spike", &err).has_value());
  EXPECT_NE(err.find("empty entry"), std::string::npos) << err;
  EXPECT_NE(err.find("position 7"), std::string::npos) << err;
  // Trailing comma used to be silently accepted; now it is diagnosed.
  EXPECT_FALSE(ChaosPlan::parse("jitter,", &err).has_value());
  EXPECT_NE(err.find("trailing comma"), std::string::npos) << err;
  EXPECT_NE(err.find("position 6"), std::string::npos) << err;
}

TEST(ChaosPlanParse, SpecRoundTrips) {
  const ChaosPlan plan = ChaosPlan::all(7);
  const auto reparsed = ChaosPlan::parse(plan.spec());
  ASSERT_TRUE(reparsed.has_value());
  for (const FaultKind k : inject::all_fault_kinds()) {
    EXPECT_EQ(reparsed->setting(k).enabled, plan.setting(k).enabled);
    EXPECT_DOUBLE_EQ(reparsed->setting(k).probability,
                     plan.setting(k).probability);
    EXPECT_DOUBLE_EQ(reparsed->setting(k).magnitude,
                     plan.setting(k).magnitude);
  }
}

// --- FaultInjector determinism ---------------------------------------------

/// A fixed, interleaved exercise of every hook; returns a digest of every
/// decision the injector made.
std::vector<std::uint64_t> exercise(FaultInjector& inj) {
  std::vector<std::uint64_t> digest;
  Cycles now = 0;
  for (int i = 0; i < 500; ++i) {
    now += 10'000;
    digest.push_back(
        inj.perturb_load_duration(sgxsim::OpKind::kDfpPreload, 44'000, now));
    digest.push_back(
        inj.corrupt_bitmap_read(static_cast<PageNum>(i), false, now) ? 1 : 0);
    digest.push_back(
        inj.drop_preload_completion(static_cast<PageNum>(i), now) ? 1 : 0);
    digest.push_back(
        inj.duplicate_preload_completion(static_cast<PageNum>(i), now) ? 1
                                                                       : 0);
    digest.push_back(inj.stall_scan(now, 500'000));
    digest.push_back(inj.effective_epc_capacity(1024, now));
    digest.push_back(inj.lose_predictor_state(now) ? 1 : 0);
  }
  return digest;
}

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultInjector a(ChaosPlan::all(42));
  FaultInjector b(ChaosPlan::all(42));
  EXPECT_EQ(exercise(a), exercise(b));
  EXPECT_EQ(a.stats().total_fired(), b.stats().total_fired());
  EXPECT_GT(a.stats().total_fired(), 0u);
}

TEST(FaultInjector, DifferentSeedDifferentSchedule) {
  FaultInjector a(ChaosPlan::all(42));
  FaultInjector b(ChaosPlan::all(43));
  EXPECT_NE(exercise(a), exercise(b));
}

TEST(FaultInjector, ResetReplaysFromScratch) {
  FaultInjector inj(ChaosPlan::all(42));
  const auto first = exercise(inj);
  const auto fired = inj.stats().total_fired();
  inj.reset();
  EXPECT_EQ(inj.stats().total_fired(), 0u);
  EXPECT_EQ(exercise(inj), first);
  EXPECT_EQ(inj.stats().total_fired(), fired);
}

TEST(FaultInjector, ClassStreamsAreIndependent) {
  // The drop-completion decisions must not change when other classes are
  // enabled alongside it, even with their hooks interleaved.
  ChaosPlan drop_only;
  drop_only.seed = 42;
  drop_only.enable(FaultKind::kDropCompletion);
  FaultInjector a(drop_only);
  FaultInjector b(ChaosPlan::all(42));
  std::vector<bool> da;
  std::vector<bool> db;
  for (int i = 0; i < 500; ++i) {
    const auto page = static_cast<PageNum>(i);
    da.push_back(a.drop_preload_completion(page, 0));
    // b sees other hooks in between (drawing from *their* streams).
    b.perturb_load_duration(sgxsim::OpKind::kDemandLoad, 44'000, 0);
    b.lose_predictor_state(0);
    db.push_back(b.drop_preload_completion(page, 0));
  }
  EXPECT_EQ(da, db);
}

// --- Driver behaviour under single hooks -----------------------------------

sgxsim::CostModel test_costs() {
  sgxsim::CostModel c;
  c.aex = 10'000;
  c.eresume = 10'000;
  c.epc_load = 44'000;
  c.epc_evict = 4'000;
  c.scan_period = 1'000'000'000;
  return c;
}

sgxsim::EnclaveConfig small_enclave(PageNum elrange = 64, PageNum epc = 4) {
  sgxsim::EnclaveConfig cfg;
  cfg.elrange_pages = elrange;
  cfg.epc_pages = epc;
  return cfg;
}

/// Overrides exactly the hooks a test arms; everything else stays no-op.
class TestHooks final : public sgxsim::ChaosHooks {
 public:
  std::optional<PageNum> drop_page;
  std::optional<PageNum> dup_page;
  bool stale_resident = false;
  std::optional<PageNum> cap_override;
  int stalls_remaining = 0;
  Cycles stall_len = 0;

  bool drop_preload_completion(PageNum page, Cycles) override {
    return drop_page.has_value() && *drop_page == page;
  }
  bool duplicate_preload_completion(PageNum page, Cycles) override {
    return dup_page.has_value() && *dup_page == page;
  }
  bool corrupt_bitmap_read(PageNum, bool actual, Cycles) override {
    return stale_resident ? true : actual;
  }
  PageNum effective_epc_capacity(PageNum real, Cycles) override {
    return cap_override.value_or(real);
  }
  Cycles stall_scan(Cycles, Cycles) override {
    if (stalls_remaining > 0) {
      --stalls_remaining;
      return stall_len;
    }
    return 0;
  }
};

class RecordingPolicy final : public sgxsim::PreloadPolicy {
 public:
  std::vector<PageNum> predictions;
  std::vector<PageNum> completed;
  int state_losses = 0;

  std::vector<PageNum> on_fault(ProcessId, PageNum, Cycles) override {
    auto out = predictions;
    predictions.clear();  // predict once
    return out;
  }
  void on_preload_completed(PageNum page, Cycles) override {
    completed.push_back(page);
  }
  void on_preloads_aborted(const std::vector<PageNum>&, Cycles) override {}
  void on_preloaded_page_evicted(PageNum, bool, Cycles) override {}
  void on_scan(const sgxsim::PageTable&, Cycles) override {}
  void on_state_lost(Cycles) override { ++state_losses; }
};

TEST(DriverChaos, DroppedCompletionLeavesPolicyStaleButPageResident) {
  RecordingPolicy policy;
  policy.predictions = {1, 2};
  TestHooks hooks;
  hooks.drop_page = 1;
  sgxsim::Driver d(small_enclave(), test_costs(), &policy);
  d.set_chaos(&hooks);
  d.access(0, 0);
  d.drain();
  // The page landed — only the policy's notification was lost.
  EXPECT_TRUE(d.page_table().present(1));
  EXPECT_EQ(policy.completed, std::vector<PageNum>{2});
  EXPECT_EQ(d.stats().preloads_completed, 2u);
  d.check_invariants();
}

TEST(DriverChaos, DuplicatedCompletionNotifiesTwice) {
  RecordingPolicy policy;
  policy.predictions = {1, 2};
  TestHooks hooks;
  hooks.dup_page = 1;
  sgxsim::Driver d(small_enclave(), test_costs(), &policy);
  d.set_chaos(&hooks);
  d.access(0, 0);
  d.drain();
  EXPECT_EQ(policy.completed, (std::vector<PageNum>{1, 1, 2}));
  EXPECT_EQ(d.stats().preloads_completed, 2u);  // driver truth: two commits
  d.check_invariants();
}

TEST(DriverChaos, StaleResidentBitStillTakesFullFaultPath) {
  TestHooks hooks;
  hooks.stale_resident = true;
  sgxsim::Driver d(small_enclave(), test_costs());
  d.set_chaos(&hooks);
  // SIP reads "resident" for an absent page, so it skips the notification —
  // exactly the lie an adversarial OS could tell. The hardware is not
  // fooled: the access takes the ordinary fault path and stays correct.
  EXPECT_TRUE(d.sip_bitmap_check(5, 0));
  EXPECT_EQ(d.stats().bitmap_lies, 1u);
  const auto out = d.access(5, 0);
  EXPECT_TRUE(out.faulted);
  EXPECT_TRUE(d.page_table().present(5));
  d.check_invariants();
}

TEST(DriverChaos, EpcSqueezeEvictsDownToEffectiveCapacity) {
  TestHooks hooks;
  hooks.cap_override = 2;  // real capacity is 4
  sgxsim::Driver d(small_enclave(64, 4), test_costs());
  d.set_chaos(&hooks);
  Cycles now = 0;
  for (PageNum p = 0; p < 3; ++p) {
    now = d.access(p, now).completion;
  }
  EXPECT_LE(d.epc().used(), 2u);
  EXPECT_GT(d.stats().squeeze_evictions, 0u);
  d.check_invariants();
}

TEST(DriverChaos, ScanStallSlipsTheServiceThread) {
  TestHooks hooks;
  hooks.stalls_remaining = 1;
  hooks.stall_len = 50'000;
  auto costs = test_costs();
  costs.scan_period = 50'000;
  sgxsim::Driver d(small_enclave(), costs);
  d.set_chaos(&hooks);
  d.advance_to(500'000);
  // The first scan (due at 50k) slipped to 100k; 9 of the 10 ran.
  EXPECT_EQ(d.stats().scan_stalls, 1u);
  EXPECT_EQ(d.stats().scans, 9u);
  d.check_invariants();
}

TEST(DriverChaos, WatchdogSweepsOnItsInterval) {
  auto cfg = small_enclave();
  cfg.watchdog_scan_interval = 4;
  auto costs = test_costs();
  costs.scan_period = 50'000;
  sgxsim::Driver d(cfg, costs);
  d.access(0, 0);
  d.advance_to(500'000);  // 10 scans -> sweeps after scans 4 and 8
  EXPECT_EQ(d.stats().watchdog_checks, 2u);
}

TEST(DriverChaos, PredictorWipeReachesPolicy) {
  class WipeEveryScan final : public sgxsim::ChaosHooks {
   public:
    bool lose_predictor_state(Cycles) override { return true; }
  };
  RecordingPolicy policy;
  WipeEveryScan hooks;
  auto costs = test_costs();
  costs.scan_period = 50'000;
  sgxsim::Driver d(small_enclave(), costs, &policy);
  d.set_chaos(&hooks);
  d.advance_to(250'000);
  EXPECT_EQ(policy.state_losses, 5);
}

// --- HealthMonitor state machine -------------------------------------------

dfp::HealthParams tight_health() {
  dfp::HealthParams p;
  p.enabled = true;
  p.stop_slack = 0;
  p.probation_slack = 0;
  p.min_window_preloads = 4;
  p.recovery_scans = 2;
  p.probation_scans = 2;
  return p;
}

TEST(HealthMonitor, StopsOnBadWindowLikeThePaperValve) {
  dfp::HealthMonitor hm((dfp::HealthParams{.enabled = true}));
  // Defaults: slack 256, used fraction 0.5 — the paper's formula. 600
  // preloads with none used breaches it.
  hm.on_scan(/*preloads=*/600, /*used=*/0, /*aborted=*/0, 1000);
  EXPECT_EQ(hm.state(), dfp::HealthState::kStopped);
  EXPECT_FALSE(hm.preloads_allowed());
  EXPECT_EQ(hm.stops(), 1u);
  EXPECT_EQ(hm.last_stop_at(), 1000u);
}

TEST(HealthMonitor, SlackKeepsSmallEvidenceFromStopping) {
  dfp::HealthMonitor hm((dfp::HealthParams{.enabled = true}));
  hm.on_scan(100, 0, 0, 0);  // 0 + 256 >= 50: within slack
  EXPECT_EQ(hm.state(), dfp::HealthState::kPreloading);
}

TEST(HealthMonitor, RecoversThroughHealthyProbation) {
  dfp::HealthMonitor hm(tight_health());
  hm.on_scan(10, 0, 0, 100);  // bad window -> stop
  ASSERT_EQ(hm.state(), dfp::HealthState::kStopped);
  hm.on_scan(10, 0, 0, 200);  // waiting out recovery (1/2)
  ASSERT_EQ(hm.state(), dfp::HealthState::kStopped);
  hm.on_scan(10, 0, 0, 300);  // recovery over -> probation
  ASSERT_EQ(hm.state(), dfp::HealthState::kProbation);
  EXPECT_TRUE(hm.preloads_allowed());
  hm.on_scan(20, 10, 0, 400);  // probation window all-used (1/2)
  ASSERT_EQ(hm.state(), dfp::HealthState::kProbation);
  hm.on_scan(20, 10, 0, 500);  // healthy verdict -> resume
  EXPECT_EQ(hm.state(), dfp::HealthState::kPreloading);
  EXPECT_EQ(hm.resumes(), 1u);
  EXPECT_EQ(hm.consecutive_stops(), 0u);  // clean probation resets backoff
}

TEST(HealthMonitor, ProbationFailureDoublesTheBackoff) {
  dfp::HealthMonitor hm(tight_health());
  std::uint64_t preloads = 10;
  hm.on_scan(preloads, 0, 0, 0);  // stop #1
  ASSERT_EQ(hm.state(), dfp::HealthState::kStopped);
  hm.on_scan(preloads, 0, 0, 0);
  hm.on_scan(preloads, 0, 0, 0);  // recovery (2 scans) -> probation
  ASSERT_EQ(hm.state(), dfp::HealthState::kProbation);
  preloads += 10;                 // probation preloads, none used
  hm.on_scan(preloads, 0, 0, 0);  // fail fast -> stop #2
  ASSERT_EQ(hm.state(), dfp::HealthState::kStopped);
  EXPECT_EQ(hm.consecutive_stops(), 2u);
  // Backoff doubled: 4 scans stopped now, not 2.
  hm.on_scan(preloads, 0, 0, 0);
  hm.on_scan(preloads, 0, 0, 0);
  ASSERT_EQ(hm.state(), dfp::HealthState::kStopped);
  hm.on_scan(preloads, 0, 0, 0);
  hm.on_scan(preloads, 0, 0, 0);
  EXPECT_EQ(hm.state(), dfp::HealthState::kProbation);
}

TEST(HealthMonitor, AbortRateTriggersWithoutUsedFractionBreach) {
  dfp::HealthParams p;
  p.enabled = true;
  p.stop_slack = 1'000'000;  // silence the used-fraction rule
  p.max_abort_fraction = 0.5;
  p.min_window_preloads = 4;
  dfp::HealthMonitor hm(p);
  hm.on_scan(/*preloads=*/2, /*used=*/2, /*aborted=*/10, 0);
  EXPECT_EQ(hm.state(), dfp::HealthState::kStopped);
}

TEST(HealthMonitor, InconclusiveProbationResumesButKeepsBackoff) {
  dfp::HealthMonitor hm(tight_health());
  hm.on_scan(10, 0, 0, 0);  // stop
  hm.on_scan(10, 0, 0, 0);
  hm.on_scan(10, 0, 0, 0);  // -> probation
  ASSERT_EQ(hm.state(), dfp::HealthState::kProbation);
  // No preload activity at all during probation: benefit of the doubt.
  hm.on_scan(10, 0, 0, 0);
  hm.on_scan(10, 0, 0, 0);
  EXPECT_EQ(hm.state(), dfp::HealthState::kPreloading);
  EXPECT_EQ(hm.resumes(), 1u);
  EXPECT_EQ(hm.consecutive_stops(), 1u);  // backoff NOT reset
}

// --- End-to-end -------------------------------------------------------------

constexpr double kScale = 0.06;

core::SimConfig tiny_chaos_platform(core::Scheme scheme) {
  core::SimConfig cfg = core::paper_platform(scheme);
  cfg.enclave.epc_pages = static_cast<PageNum>(
      static_cast<double>(cfg.enclave.epc_pages) * kScale);
  cfg.validate = true;
  return cfg;
}

TEST(ChaosEndToEnd, ChaosEventSequenceReplaysIdentically) {
  const auto t =
      trace::find_workload("mcf")->make(trace::ref_params(kScale));
  core::SimConfig cfg = tiny_chaos_platform(core::Scheme::kDfpStop);
  cfg.chaos = ChaosPlan::all(1234);
  obs::EventLog log(1 << 15);
  cfg.event_log = &log;
  using Rec = std::tuple<Cycles, PageNum, std::string>;
  const auto run = [&] {
    core::simulate(t, cfg);
    std::vector<Rec> fired;
    log.for_each([&](const obs::Event& e) {
      if (e.type == obs::EventType::kChaos) {
        fired.emplace_back(e.at, e.page, e.detail);
      }
    });
    return fired;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // same faults, same pages, same order, same times
}

TEST(ChaosEndToEnd, HealthMonitorContainsHostilePlanNearBaseline) {
  // The graceful-degradation promise: under every fault class at once, DFP
  // with the health monitor stays within a few percent of the no-preload
  // baseline on the workload where preloading hurts most.
  core::SimConfig cfg = tiny_chaos_platform(core::Scheme::kDfp);
  cfg.chaos = ChaosPlan::all(5);
  cfg.dfp.health.enabled = true;
  const auto c = core::compare_schemes(
      "deepsjeng", {core::Scheme::kDfp}, cfg,
      core::ExperimentOptions{.scale = kScale, .train_scale = kScale * 0.5});
  EXPECT_GE(c.find(core::Scheme::kDfp)->improvement, -0.10);
}

TEST(ChaosEndToEnd, InjectorStatsSurfaceInMetrics) {
  core::SimConfig cfg = tiny_chaos_platform(core::Scheme::kDfpStop);
  cfg.chaos = ChaosPlan::all(9);
  const auto c = core::compare_schemes(
      "microbenchmark", {core::Scheme::kDfpStop}, cfg,
      core::ExperimentOptions{.scale = kScale, .train_scale = kScale * 0.5});
  const auto& m = c.find(core::Scheme::kDfpStop)->metrics;
  EXPECT_GT(m.inject.total_opportunities(), 0u);
  EXPECT_GT(m.inject.total_fired(), 0u);
  EXPECT_GT(m.driver.watchdog_checks, 0u);  // auto-on under chaos
}

}  // namespace
}  // namespace sgxpl
