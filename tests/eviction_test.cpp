#include "sgxsim/eviction.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "sgxsim/driver.h"

namespace sgxpl::sgxsim {
namespace {

TEST(EvictionKindNames, AllNamed) {
  EXPECT_STREQ(to_string(EvictionKind::kClock), "clock");
  EXPECT_STREQ(to_string(EvictionKind::kFifo), "fifo");
  EXPECT_STREQ(to_string(EvictionKind::kRandom), "random");
  EXPECT_STREQ(to_string(EvictionKind::kLru), "lru");
}

TEST(Factory, BuildsEveryKind) {
  Epc epc(4);
  for (const auto kind : {EvictionKind::kClock, EvictionKind::kFifo,
                          EvictionKind::kRandom, EvictionKind::kLru}) {
    const auto p = make_eviction_policy(kind, epc);
    ASSERT_NE(p, nullptr);
    EXPECT_STREQ(p->name(), to_string(kind));
  }
}

TEST(Fifo, EvictsInLoadOrder) {
  FifoPolicy p;
  PageTable pt(10);
  p.on_load(3);
  p.on_load(1);
  p.on_load(7);
  EXPECT_EQ(p.victim(pt, kInvalidPage), 3u);
  p.on_unload(3);
  EXPECT_EQ(p.victim(pt, kInvalidPage), 1u);
}

TEST(Fifo, SkipsPinnedPage) {
  FifoPolicy p;
  PageTable pt(10);
  p.on_load(3);
  p.on_load(1);
  EXPECT_EQ(p.victim(pt, /*pinned=*/3), 1u);
}

TEST(Fifo, SkipsStaleEntries) {
  FifoPolicy p;
  PageTable pt(10);
  p.on_load(3);
  p.on_load(1);
  p.on_unload(3);  // evicted elsewhere; queue entry is stale
  EXPECT_EQ(p.victim(pt, kInvalidPage), 1u);
}

TEST(Random, EvictsOnlyResidentNeverPinned) {
  RandomPolicy p(42);
  PageTable pt(100);
  for (PageNum page = 0; page < 10; ++page) {
    p.on_load(page);
  }
  p.on_unload(5);
  std::set<PageNum> victims;
  for (int i = 0; i < 200; ++i) {
    const PageNum v = p.victim(pt, /*pinned=*/7);
    EXPECT_NE(v, 5u);
    EXPECT_NE(v, 7u);
    victims.insert(v);
  }
  EXPECT_GT(victims.size(), 4u);  // actually random, not constant
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruPolicy p;
  PageTable pt(10);
  p.on_load(1);
  p.on_load(2);
  p.on_load(3);
  // 1 is the oldest; accessing it promotes it, leaving 2 as LRU.
  p.on_access(1);
  EXPECT_EQ(p.victim(pt, kInvalidPage), 2u);
  p.on_unload(2);
  EXPECT_EQ(p.victim(pt, kInvalidPage), 3u);
}

TEST(Lru, SkipsPinned) {
  LruPolicy p;
  PageTable pt(10);
  p.on_load(1);
  p.on_load(2);
  EXPECT_EQ(p.victim(pt, /*pinned=*/1), 2u);
}

TEST(Lru, AccessOfUnknownPageIgnored) {
  LruPolicy p;
  PageTable pt(10);
  p.on_load(1);
  p.on_access(99);  // not tracked; must not crash or corrupt state
  EXPECT_EQ(p.victim(pt, kInvalidPage), 1u);
}

// --- integration: each policy drives the full fault path correctly -------

CostModel fast_costs() {
  CostModel c;
  c.scan_period = 1'000'000'000;
  return c;
}

TEST(DriverEviction, EveryPolicySustainsThrashingWorkload) {
  for (const auto kind : {EvictionKind::kClock, EvictionKind::kFifo,
                          EvictionKind::kRandom, EvictionKind::kLru}) {
    EnclaveConfig cfg;
    cfg.elrange_pages = 64;
    cfg.epc_pages = 8;
    cfg.eviction = kind;
    Driver d(cfg, fast_costs());
    Rng rng(99);
    Cycles now = 0;
    for (int i = 0; i < 3000; ++i) {
      now = d.access(rng.bounded(64), now + 100).completion;
    }
    d.check_invariants();
    EXPECT_EQ(d.epc().used(), 8u) << to_string(kind);
    EXPECT_GT(d.stats().evictions, 0u) << to_string(kind);
  }
}

TEST(DriverEviction, LruBeatsFifoOnSkewedReuse) {
  // A hot set of 6 pages inside an 8-page EPC plus a cold scan: exact LRU
  // keeps the hot set resident; FIFO cycles it out.
  auto run = [](EvictionKind kind) {
    EnclaveConfig cfg;
    cfg.elrange_pages = 256;
    cfg.epc_pages = 8;
    cfg.eviction = kind;
    Driver d(cfg, fast_costs());
    Rng rng(7);
    Cycles now = 0;
    for (int round = 0; round < 800; ++round) {
      for (PageNum h = 0; h < 6; ++h) {
        now = d.access(h, now + 100).completion;  // hot set
      }
      now = d.access(8 + rng.bounded(248), now + 100).completion;  // cold
    }
    return d.stats().faults;
  };
  EXPECT_LT(run(EvictionKind::kLru), run(EvictionKind::kFifo));
}

}  // namespace
}  // namespace sgxpl::sgxsim
