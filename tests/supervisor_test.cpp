// Fleet supervisor: crash-at-every-cut recovery differential, checkpoint
// policies, evacuation/backoff/quarantine, the conservation ledger, and the
// supervisor manifest. The golden multi-enclave recipe (tests/golden_recipe.h)
// supplies the workload so every run here is deterministic.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "fleet/supervisor.h"
#include "golden_recipe.h"
#include "inject/fleet_chaos.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "snapshot/chain.h"

namespace sgxpl {
namespace {

using fleet::CheckpointMode;
using fleet::CheckpointPolicy;
using fleet::CrashIncident;
using fleet::EvacuationOutcome;
using fleet::FleetLedger;
using fleet::FleetReport;
using fleet::FleetSupervisor;
using fleet::HostState;
using fleet::SupervisorPolicy;

/// A supervisor policy sized for the 512-step golden multi workload:
/// single-step epochs (cut-exact crash placement) and a tight fixed
/// checkpoint cadence.
SupervisorPolicy cut_policy(std::uint64_t fixed_every = 16) {
  SupervisorPolicy p;
  p.epoch_steps = 1;
  p.checkpoint.mode = CheckpointMode::kFixed;
  p.checkpoint.fixed_every = fixed_every;
  p.checkpoint.full_every = 4;
  return p;
}

inject::HostCrashPlan no_chaos() { return inject::HostCrashPlan{}; }

/// The fleet-less reference: the same apps stepped to `steps` on a bare
/// MultiEnclaveRun (what the supervised host must be bit-identical to).
std::vector<std::uint8_t> reference_bytes(const trace::Trace& a,
                                          const trace::Trace& b,
                                          std::uint64_t steps) {
  core::MultiEnclaveRun ref(golden::multi_config(), golden::multi_apps(a, b));
  while (!ref.done() && ref.steps() < steps) {
    ref.step();
  }
  return ref.save_bytes();
}

// --- spec round-trips -------------------------------------------------------

TEST(CheckpointPolicy, ParseRoundTripsEveryMode) {
  for (const char* spec :
       {"fixed:2048:full8", "dirty:65536:full8", "rpo:4000000:full8",
        "fixed:1:full1", "dirty:512:full4"}) {
    std::string err;
    const auto p = CheckpointPolicy::parse(spec, &err);
    ASSERT_TRUE(p.has_value()) << err;
    EXPECT_EQ(p->spec(), spec);
  }
  // The chain-length field is optional on input, canonical on output.
  const auto p = CheckpointPolicy::parse("fixed:128");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->fixed_every, 128u);
  EXPECT_EQ(p->full_every, 8u);
  EXPECT_EQ(p->spec(), "fixed:128:full8");
  EXPECT_EQ(CheckpointPolicy{}.spec(), "fixed:2048:full8");
}

TEST(CheckpointPolicy, ParseRejectsMalformedSpecsWithTypedErrors) {
  const struct {
    const char* spec;
    const char* needle;
  } kBad[] = {
      {"hourly:10", "unknown checkpoint mode"},
      {"fixed", "missing its value"},
      {"fixed:zero", "bad checkpoint value"},
      {"fixed:0", "bad checkpoint value"},
      {"fixed:16:full0", "bad chain-length field"},
      {"fixed:16:deltas4", "bad chain-length field"},
      {"fixed:16:full4:extra", "too many ':' fields"},
  };
  for (const auto& c : kBad) {
    std::string err;
    EXPECT_FALSE(CheckpointPolicy::parse(c.spec, &err).has_value()) << c.spec;
    EXPECT_NE(err.find(c.needle), std::string::npos)
        << c.spec << " -> " << err;
  }
}

TEST(HostCrashPlan, ParseRoundTripsAndRejects) {
  std::string err;
  auto p = inject::HostCrashPlan::parse("host-crash:0.02:0.5", &err);
  ASSERT_TRUE(p.has_value()) << err;
  EXPECT_TRUE(p->any_enabled());
  EXPECT_DOUBLE_EQ(p->crash_per_epoch, 0.02);
  EXPECT_DOUBLE_EQ(p->torn_frac, 0.5);
  EXPECT_EQ(p->spec(), "host-crash:0.02:0.5");

  p = inject::HostCrashPlan::parse("host-crash", &err);
  ASSERT_TRUE(p.has_value()) << err;
  EXPECT_DOUBLE_EQ(p->crash_per_epoch, 0.01);  // default when enabled bare

  p = inject::HostCrashPlan::parse("none", &err);
  ASSERT_TRUE(p.has_value()) << err;
  EXPECT_FALSE(p->any_enabled());
  EXPECT_EQ(p->spec(), "none");

  EXPECT_FALSE(inject::HostCrashPlan::parse("host-melt:0.1", &err));
  EXPECT_NE(err.find("unknown host fault class"), std::string::npos) << err;
  EXPECT_FALSE(inject::HostCrashPlan::parse("host-crash:2.0", &err));
  EXPECT_NE(err.find("bad crash probability"), std::string::npos) << err;
  EXPECT_FALSE(inject::HostCrashPlan::parse("host-crash:0.1:0.2:9", &err));
  EXPECT_NE(err.find("too many"), std::string::npos) << err;
}

TEST(SupervisorPolicy, SpecIsEmptyForDefaultsAndNamesEveryDeviation) {
  EXPECT_EQ(SupervisorPolicy{}.spec(), "");  // the seed-identical guard
  SupervisorPolicy p;
  p.checkpoint.fixed_every = 64;
  p.epoch_steps = 32;
  p.crash_threshold = 5;
  p.migration.warm_rounds = 1;
  const std::string s = p.spec();
  EXPECT_NE(s.find("ckpt=fixed:64:full8"), std::string::npos) << s;
  EXPECT_NE(s.find("epoch=32"), std::string::npos) << s;
  EXPECT_NE(s.find("crash-threshold=5"), std::string::npos) << s;
  EXPECT_NE(s.find("mig-warm=1"), std::string::npos) << s;
}

TEST(SupervisorEnums, NamesAreStable) {
  EXPECT_STREQ(fleet::to_string(HostState::kHealthy), "healthy");
  EXPECT_STREQ(fleet::to_string(HostState::kCrashed), "crashed");
  EXPECT_STREQ(fleet::to_string(HostState::kRecovering), "recovering");
  EXPECT_STREQ(fleet::to_string(HostState::kEvacuating), "evacuating");
  EXPECT_STREQ(fleet::to_string(HostState::kRetired), "retired");
  EXPECT_STREQ(fleet::to_string(CheckpointMode::kFixed), "fixed");
  EXPECT_STREQ(fleet::to_string(CheckpointMode::kDirtyBudget), "dirty");
  EXPECT_STREQ(fleet::to_string(CheckpointMode::kRpoTarget), "rpo");
  EXPECT_STREQ(fleet::to_string(EvacuationOutcome::kMoved), "moved");
  EXPECT_STREQ(fleet::to_string(EvacuationOutcome::kRetryScheduled),
               "retry-scheduled");
  EXPECT_STREQ(fleet::to_string(EvacuationOutcome::kQuarantined),
               "quarantined");
  EXPECT_STREQ(fleet::to_string(EvacuationOutcome::kUncarvable),
               "uncarvable");
  EXPECT_STREQ(inject::to_string(inject::HostFaultKind::kHostCrash),
               "host-crash");
}

// --- supervised service mode ------------------------------------------------

TEST(Supervisor, QuietFleetFinishesEveryTenantAndBalances) {
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  SupervisorPolicy policy;
  policy.epoch_steps = 64;
  policy.checkpoint.fixed_every = 128;
  FleetSupervisor sup(policy, no_chaos());
  sup.add_host(golden::multi_config(), golden::multi_apps(a, b));
  sup.add_host(golden::multi_config(), golden::multi_apps(a, b));

  const FleetReport rep = sup.run_to_completion(10'000);
  EXPECT_TRUE(sup.done());
  EXPECT_TRUE(rep.ledger.balanced());
  EXPECT_EQ(rep.ledger.tenants_total, 4u);
  EXPECT_EQ(rep.ledger.finished, 4u);
  EXPECT_EQ(rep.ledger.running, 0u);
  EXPECT_EQ(rep.ledger.crashes, 0u);
  EXPECT_GT(rep.ledger.checkpoints, 2u);  // initial bases + cadence
  EXPECT_GT(rep.makespan, 0u);
  EXPECT_EQ(sup.host_state(0), HostState::kRetired);
  EXPECT_EQ(sup.host_state(1), HostState::kRetired);
}

TEST(Supervisor, CrashAtEveryCutRecoversBitIdenticalWithExactRpo) {
  // The satellite property test: for each cut, kill the host there (torn
  // every third cut), recover, and demand (a) the post-recovery state is
  // bit-identical to an uninterrupted run at the same step count, and
  // (b) the incident's RPO equals the measured checkpoint gap.
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  constexpr std::uint64_t kCadence = 16;

  // Every cut around the first checkpoint boundaries, then a coarse sweep
  // across the rest of the combined trace.
  std::vector<std::uint64_t> cuts;
  for (std::uint64_t c = 1; c <= 34; ++c) cuts.push_back(c);
  for (std::uint64_t c = 47; c < 510; c += 13) cuts.push_back(c);

  for (const std::uint64_t cut : cuts) {
    FleetSupervisor sup(cut_policy(kCadence), no_chaos());
    sup.add_host(golden::multi_config(), golden::multi_apps(a, b));
    while (sup.host_run(0)->steps() < cut && !sup.done()) {
      sup.run_epoch();
    }
    const std::uint64_t at = sup.host_run(0)->steps();
    const bool torn = cut % 3 == 0;

    sup.crash_host(0, torn);
    EXPECT_EQ(sup.host_state(0), HostState::kCrashed);
    EXPECT_EQ(sup.host_run(0), nullptr);
    const CrashIncident inc = sup.recover_host(0);

    EXPECT_EQ(inc.steps_at_crash, at) << "cut " << cut;
    EXPECT_EQ(inc.torn_tail, torn);
    EXPECT_FALSE(inc.cold_start) << "cut " << cut;
    // The measured checkpoint gap: the initial base sits at step 0 and the
    // cadence fires every kCadence steps, so the last durable checkpoint
    // before the crash is the largest multiple of kCadence <= at.
    EXPECT_EQ(inc.steps_at_checkpoint, at - (at % kCadence)) << "cut " << cut;
    EXPECT_EQ(inc.rpo_steps, at % kCadence) << "cut " << cut;
    EXPECT_EQ(inc.rpo_steps, inc.steps_at_crash - inc.steps_at_checkpoint);
    EXPECT_GE(inc.rto_cycles, inc.rpo_cycles + 50'000) << "cut " << cut;
    if (torn) {
      // The torn tail was offered to salvage and dropped.
      EXPECT_GT(inc.frames_offered, inc.frames_salvaged) << "cut " << cut;
    }

    // Beyond the replayed window the recovered host is indistinguishable
    // from one that never crashed.
    ASSERT_NE(sup.host_run(0), nullptr);
    EXPECT_EQ(sup.host_run(0)->save_bytes(), reference_bytes(a, b, at))
        << "post-recovery state diverged at cut " << cut;
    const FleetLedger led = sup.ledger();
    EXPECT_TRUE(led.balanced());
    EXPECT_EQ(led.crashes, 1u);
    EXPECT_EQ(led.recoveries, 1u);
    EXPECT_EQ(led.torn_checkpoints, torn ? 1u : 0u);

    // And the fleet still finishes cleanly afterwards.
    const FleetReport rep = sup.run_to_completion(10'000);
    EXPECT_TRUE(rep.ledger.balanced());
    EXPECT_EQ(rep.ledger.finished, 2u) << "cut " << cut;
  }
}

TEST(Supervisor, TornTailBeforeFirstCadenceCheckpointReplaysFromBase) {
  // Crash torn before the cadence ever fired: the only durable frame is
  // the initial base at step 0, the torn tail is offered and dropped, and
  // the whole run so far is replayed (rpo == steps at crash).
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  FleetSupervisor sup(cut_policy(64), no_chaos());
  sup.add_host(golden::multi_config(), golden::multi_apps(a, b));
  for (int i = 0; i < 10; ++i) sup.run_epoch();
  sup.crash_host(0, /*torn=*/true);
  const CrashIncident inc = sup.recover_host(0);
  EXPECT_FALSE(inc.cold_start);
  EXPECT_EQ(inc.frames_offered, inc.frames_salvaged + 1);  // the torn tail
  EXPECT_EQ(sup.host_run(0)->save_bytes(), reference_bytes(a, b, 10));
}

TEST(Supervisor, CheckpointCadenceTradesFramesForRpo) {
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  const auto run_with = [&](CheckpointPolicy ckpt) {
    SupervisorPolicy p;
    p.epoch_steps = 32;
    p.checkpoint = ckpt;
    FleetSupervisor sup(p, no_chaos());
    sup.add_host(golden::multi_config(), golden::multi_apps(a, b));
    return sup.run_to_completion(10'000).ledger;
  };
  CheckpointPolicy tight, loose;
  tight.fixed_every = 32;
  loose.fixed_every = 480;
  const FleetLedger t = run_with(tight);
  const FleetLedger l = run_with(loose);
  EXPECT_GT(t.checkpoints, l.checkpoints);

  CheckpointPolicy dirty;
  dirty.mode = CheckpointMode::kDirtyBudget;
  dirty.dirty_byte_budget = 32 * 1024;
  EXPECT_GT(run_with(dirty).checkpoints, 1u);

  CheckpointPolicy rpo;
  rpo.mode = CheckpointMode::kRpoTarget;
  rpo.rpo_target_cycles = 500'000;
  EXPECT_GT(run_with(rpo).checkpoints, 1u);
}

TEST(Supervisor, SeededHostChaosIsDeterministicAndConserved) {
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  inject::HostCrashPlan chaos;
  chaos.enabled = true;
  chaos.crash_per_epoch = 0.3;
  chaos.torn_frac = 0.5;
  chaos.seed = 77;
  SupervisorPolicy policy;
  policy.epoch_steps = 32;
  policy.checkpoint.fixed_every = 64;
  policy.crash_threshold = 1000;  // keep every host in place (no evacuation)

  const auto soak = [&]() {
    FleetSupervisor sup(policy, chaos);
    sup.add_host(golden::multi_config(), golden::multi_apps(a, b));
    sup.add_host(golden::multi_config(), golden::multi_apps(a, b));
    sup.add_host(golden::multi_config(), golden::multi_apps(a, b));
    return sup.run_to_completion(20'000);
  };
  const FleetReport r1 = soak();
  const FleetReport r2 = soak();

  EXPECT_GT(r1.ledger.crashes, 0u);
  EXPECT_EQ(r1.ledger.crashes, r1.ledger.recoveries);
  EXPECT_EQ(r1.ledger.cold_starts, 0u);
  EXPECT_TRUE(r1.ledger.balanced());
  EXPECT_EQ(r1.ledger.finished, 6u);  // every tenant survives the chaos

  // Same hosts + policies + seed => bit-identical incident history.
  ASSERT_EQ(r1.crash_incidents.size(), r2.crash_incidents.size());
  for (std::size_t i = 0; i < r1.crash_incidents.size(); ++i) {
    const CrashIncident& x = r1.crash_incidents[i];
    const CrashIncident& y = r2.crash_incidents[i];
    EXPECT_EQ(x.host, y.host);
    EXPECT_EQ(x.at_epoch, y.at_epoch);
    EXPECT_EQ(x.steps_at_crash, y.steps_at_crash);
    EXPECT_EQ(x.rpo_steps, y.rpo_steps);
    EXPECT_EQ(x.rpo_cycles, y.rpo_cycles);
    EXPECT_EQ(x.rto_cycles, y.rto_cycles);
    EXPECT_EQ(x.torn_tail, y.torn_tail);
  }
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.epochs, r2.epochs);
}

// --- evacuation -------------------------------------------------------------

TEST(Supervisor, RepeatedCrashesEvacuateTenantsOntoReplacementHosts) {
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  SupervisorPolicy policy;
  policy.epoch_steps = 16;
  policy.checkpoint.fixed_every = 64;
  policy.crash_threshold = 2;
  policy.crash_window_epochs = 64;
  policy.migration.warm_rounds = 2;
  policy.migration.round_steps = 16;
  FleetSupervisor sup(policy, no_chaos());
  // Tenant 0 (kDfpStop) sits at lo == 0 so its engine state rebases; tenant
  // 1 (baseline) carves anywhere — both evacuate cleanly.
  sup.add_host(golden::multi_config(), golden::multi_apps(a, b));

  for (int i = 0; i < 4; ++i) sup.run_epoch();
  sup.crash_host(0, false);
  sup.recover_host(0);
  for (int i = 0; i < 2; ++i) sup.run_epoch();
  sup.crash_host(0, false);
  sup.recover_host(0);
  EXPECT_EQ(sup.host_state(0), HostState::kEvacuating);

  const FleetReport rep = sup.run_to_completion(10'000);
  EXPECT_TRUE(rep.ledger.balanced());
  EXPECT_EQ(rep.ledger.evacuations_completed, 2u);
  EXPECT_EQ(rep.ledger.hosts_spawned, 2u);
  EXPECT_EQ(rep.ledger.finished, 2u);
  EXPECT_EQ(rep.ledger.quarantined, 0u);
  EXPECT_EQ(sup.host_state(0), HostState::kRetired);
  EXPECT_EQ(sup.host_count(), 3u);
  ASSERT_EQ(rep.evacuation_incidents.size(), 2u);
  for (const auto& inc : rep.evacuation_incidents) {
    EXPECT_EQ(inc.outcome, EvacuationOutcome::kMoved);
    EXPECT_EQ(inc.migration, fleet::MigrationOutcome::kCompleted);
  }
  // The two tenants kept distinct fleet-wide ids across the move.
  EXPECT_NE(rep.evacuation_incidents[0].tenant_id,
            rep.evacuation_incidents[1].tenant_id);
}

TEST(Supervisor, DeadLinkBacksOffThenQuarantinesAfterMaxAttempts) {
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  SupervisorPolicy policy;
  policy.epoch_steps = 16;
  policy.checkpoint.fixed_every = 64;
  policy.crash_threshold = 1;
  policy.max_evacuation_attempts = 3;
  policy.backoff_base_epochs = 2;
  policy.backoff_cap_epochs = 8;
  policy.backoff_jitter_pct = 25;
  policy.migration.link.drop = 1.0;  // every leg dies: migration never lands
  policy.migration.max_attempts = 2;
  FleetSupervisor sup(policy, no_chaos());
  sup.add_host(golden::multi_config(), golden::multi_apps(a, b));

  for (int i = 0; i < 2; ++i) sup.run_epoch();
  sup.crash_host(0, false);
  sup.recover_host(0);
  EXPECT_EQ(sup.host_state(0), HostState::kEvacuating);

  const FleetReport rep = sup.run_to_completion(10'000);
  EXPECT_TRUE(rep.ledger.balanced());
  EXPECT_EQ(rep.ledger.evacuations_completed, 0u);
  EXPECT_EQ(rep.ledger.hosts_spawned, 0u);
  EXPECT_EQ(rep.ledger.quarantined, 2u);
  EXPECT_EQ(rep.ledger.running, 0u);
  EXPECT_EQ(rep.ledger.finished, 0u);
  EXPECT_EQ(rep.ledger.evacuation_retries, 4u);  // 2 per tenant before parking

  // Per tenant: retry, retry, quarantine — with capped jittered backoff.
  ASSERT_EQ(rep.evacuation_incidents.size(), 6u);
  for (const auto& inc : rep.evacuation_incidents) {
    if (inc.outcome == EvacuationOutcome::kRetryScheduled) {
      EXPECT_EQ(inc.migration, fleet::MigrationOutcome::kAbortedLink);
      EXPECT_GE(inc.backoff_epochs, 2u);
      EXPECT_LE(inc.backoff_epochs, 10u);  // cap 8 + 25% jitter
    } else {
      EXPECT_EQ(inc.outcome, EvacuationOutcome::kQuarantined);
      EXPECT_EQ(inc.attempts, 3u);
    }
  }
  // Quarantined tenants are parked, not lost: the host retires around them.
  EXPECT_EQ(sup.host_state(0), HostState::kRetired);
}

TEST(Supervisor, UncarvableTenantQuarantinesImmediately) {
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  // Tenant 1 runs DFP above offset 0: extract_resumable refuses the carve.
  std::vector<core::EnclaveApp> apps = {
      {.trace = &a, .scheme = core::Scheme::kBaseline},
      {.trace = &b, .scheme = core::Scheme::kDfpStop},
  };
  SupervisorPolicy policy;
  policy.epoch_steps = 16;
  policy.checkpoint.fixed_every = 64;
  policy.crash_threshold = 1;
  policy.migration.warm_rounds = 1;
  policy.migration.round_steps = 8;
  FleetSupervisor sup(policy, no_chaos());
  sup.add_host(golden::multi_config(), apps);

  for (int i = 0; i < 2; ++i) sup.run_epoch();
  sup.crash_host(0, false);
  sup.recover_host(0);
  const FleetReport rep = sup.run_to_completion(10'000);

  EXPECT_TRUE(rep.ledger.balanced());
  EXPECT_EQ(rep.ledger.quarantined, 1u);   // the DFP tenant parked at once
  EXPECT_EQ(rep.ledger.evacuations_completed, 1u);  // the baseline one moved
  bool saw_uncarvable = false;
  for (const auto& inc : rep.evacuation_incidents) {
    if (inc.outcome == EvacuationOutcome::kUncarvable) {
      saw_uncarvable = true;
      EXPECT_EQ(inc.attempts, 1u);  // no retries burned on a hopeless carve
      EXPECT_FALSE(inc.detail.empty());
    }
  }
  EXPECT_TRUE(saw_uncarvable);
}

// --- chain mirroring and the manifest ---------------------------------------

TEST(Supervisor, ChainDirMirrorsProbeCleanChains) {
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  const std::string dir = testing::TempDir() + "sgxpl-fleet-chains";
  (void)std::remove((dir + "/host-0.snap").c_str());
  ASSERT_EQ(std::system(("mkdir -p '" + dir + "'").c_str()), 0);

  SupervisorPolicy policy;
  policy.epoch_steps = 32;
  policy.checkpoint.fixed_every = 64;
  policy.checkpoint.full_every = 4;
  FleetSupervisor sup(policy, no_chaos());
  sup.set_chain_dir(dir);
  sup.add_host(golden::multi_config(), golden::multi_apps(a, b));
  for (int i = 0; i < 8; ++i) sup.run_epoch();

  // The mirrored chain restores a bit-identical copy of the host at its
  // last checkpoint.
  core::MultiEnclaveRun probe(golden::multi_config(),
                              golden::multi_apps(a, b));
  const snapshot::ChainSalvageReport rep =
      snapshot::salvage_chain_from_files(probe, dir + "/host-0.snap");
  EXPECT_TRUE(rep.complete()) << rep.describe();
  EXPECT_TRUE(rep.restored_any());
}

TEST(Supervisor, ManifestRoundTripsAndGuardsPolicyIdentity) {
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  inject::HostCrashPlan chaos;
  chaos.enabled = true;
  chaos.crash_per_epoch = 0.3;
  chaos.seed = 99;
  SupervisorPolicy policy;
  policy.epoch_steps = 32;
  policy.checkpoint.fixed_every = 64;
  policy.crash_threshold = 1000;
  FleetSupervisor sup(policy, chaos);
  sup.add_host(golden::multi_config(), golden::multi_apps(a, b));
  sup.add_host(golden::multi_config(), golden::multi_apps(a, b));
  for (int i = 0; i < 12; ++i) sup.run_epoch();
  const FleetLedger before = sup.ledger();
  const std::vector<std::uint8_t> manifest = sup.save_manifest();

  // Same policy + same hosts: the manifest restores the bookkeeping.
  FleetSupervisor twin(policy, chaos);
  twin.add_host(golden::multi_config(), golden::multi_apps(a, b));
  twin.add_host(golden::multi_config(), golden::multi_apps(a, b));
  twin.load_manifest(manifest);
  EXPECT_EQ(twin.epoch(), sup.epoch());
  const FleetLedger after = twin.ledger();
  EXPECT_EQ(after.tenants_total, before.tenants_total);
  EXPECT_EQ(after.crashes, before.crashes);
  EXPECT_EQ(after.recoveries, before.recoveries);
  EXPECT_EQ(after.checkpoints, before.checkpoints);
  EXPECT_TRUE(after.balanced());

  // A policy change refuses to load (the hardening_spec identity guard).
  SupervisorPolicy other = policy;
  other.crash_threshold = 7;
  FleetSupervisor mismatched(other, chaos);
  mismatched.add_host(golden::multi_config(), golden::multi_apps(a, b));
  mismatched.add_host(golden::multi_config(), golden::multi_apps(a, b));
  try {
    mismatched.load_manifest(manifest);
    FAIL() << "manifest loaded across a policy change";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("policy"), std::string::npos)
        << e.what();
  }

  // Host-count mismatches refuse too.
  FleetSupervisor short_fleet(policy, chaos);
  short_fleet.add_host(golden::multi_config(), golden::multi_apps(a, b));
  EXPECT_THROW(short_fleet.load_manifest(manifest), CheckFailure);

  // Corrupt frames never load half-way.
  std::vector<std::uint8_t> bad = manifest;
  bad[bad.size() / 2] ^= 0x40;
  FleetSupervisor victim(policy, chaos);
  victim.add_host(golden::multi_config(), golden::multi_apps(a, b));
  victim.add_host(golden::multi_config(), golden::multi_apps(a, b));
  EXPECT_THROW(victim.load_manifest(bad), CheckFailure);
}

TEST(Supervisor, ObservabilitySinksSeeFleetActivity) {
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  inject::HostCrashPlan chaos;
  chaos.enabled = true;
  chaos.crash_per_epoch = 0.3;
  chaos.torn_frac = 0.5;
  chaos.seed = 77;
  SupervisorPolicy policy;
  policy.epoch_steps = 32;
  policy.checkpoint.fixed_every = 64;
  policy.crash_threshold = 1000;
  FleetSupervisor sup(policy, chaos);
  obs::MetricsRegistry metrics;
  obs::EventLog events;
  obs::Profiler profiler;
  profiler.set_enabled(true);
  sup.set_metrics(&metrics);
  sup.set_event_log(&events);
  sup.set_profiler(&profiler);
  sup.add_host(golden::multi_config(), golden::multi_apps(a, b));
  sup.run_to_completion(20'000);

  EXPECT_GT(metrics.counter("fleet.checkpoints").value(), 0u);
  EXPECT_GT(metrics.counter("fleet.crashes").value(), 0u);
  EXPECT_EQ(metrics.counter("fleet.crashes").value(),
            metrics.counter("fleet.recoveries").value());
  bool saw_fleet_event = false;
  events.for_each([&](const obs::Event& e) {
    if (e.type == obs::EventType::kFleet) saw_fleet_event = true;
  });
  EXPECT_TRUE(saw_fleet_event);
  const obs::PhaseProfile prof = profiler.profile();
  const obs::PhaseProfile::Node* rec =
      prof.find({obs::Phase::kFleetRecover});
  ASSERT_NE(rec, nullptr);
  EXPECT_GT(rec->count, 0u);
  EXPECT_GT(rec->sim_cycles, 0u);  // the modeled RTO lands on the span
}

}  // namespace
}  // namespace sgxpl
