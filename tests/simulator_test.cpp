#include "core/simulator.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "core/experiment.h"
#include "trace/generators.h"

namespace sgxpl::core {
namespace {

/// A trace of `n` page-sequential accesses with fixed gap.
trace::Trace seq_trace(PageNum pages, Cycles gap, PageNum elrange = 0) {
  trace::Trace t("seq", elrange == 0 ? pages + 8 : elrange);
  Rng rng(1);
  trace::seq_scan(t, rng, trace::Region{0, pages}, 1,
                  trace::GapModel{.mean = gap, .jitter_pct = 0});
  return t;
}

trace::Trace random_trace(PageNum region, std::uint64_t count, Cycles gap) {
  trace::Trace t("rand", region + 8);
  Rng rng(2);
  trace::random_access(t, rng, trace::Region{0, region}, count, 1, 4,
                       trace::GapModel{.mean = gap, .jitter_pct = 0});
  return t;
}

SimConfig test_config(Scheme scheme, PageNum epc = 64) {
  SimConfig cfg;
  cfg.scheme = scheme;
  cfg.enclave.epc_pages = epc;
  cfg.channel_contention = 0.0;
  cfg.dfp.predictor.stream_list_len = 8;
  cfg.dfp.predictor.load_length = 4;
  return cfg;
}

TEST(Simulator, BaselineColdFaultsEveryPageOnce) {
  const auto t = seq_trace(32, 1'000);
  const auto m = simulate(t, test_config(Scheme::kBaseline, /*epc=*/64));
  EXPECT_EQ(m.accesses, 32u);
  EXPECT_EQ(m.enclave_faults, 32u);  // every page cold-faults once
  EXPECT_EQ(m.driver.evictions, 0u);
  // Exact cost: 32 * (gap + aex + load + eresume).
  const auto& c = SimConfig{}.costs;
  EXPECT_EQ(m.total_cycles, 32u * (1'000 + c.aex + c.epc_load + c.eresume));
}

TEST(Simulator, BaselineCapacityFaultsWhenFootprintExceedsEpc) {
  // Two passes over 64 pages with a 32-page EPC: every access faults.
  trace::Trace t("2pass", 128);
  Rng rng(1);
  const trace::GapModel gap{.mean = 500, .jitter_pct = 0};
  trace::seq_scan(t, rng, trace::Region{0, 64}, 1, gap);
  trace::seq_scan(t, rng, trace::Region{0, 64}, 1, gap);
  const auto m = simulate(t, test_config(Scheme::kBaseline, 32));
  EXPECT_EQ(m.enclave_faults, 128u);
  EXPECT_GT(m.driver.evictions, 0u);
}

TEST(Simulator, SmallWorkingSetHitsAfterWarmup) {
  trace::Trace t("warm", 64);
  Rng rng(1);
  const trace::GapModel gap{.mean = 500, .jitter_pct = 0};
  for (int pass = 0; pass < 5; ++pass) {
    trace::seq_scan(t, rng, trace::Region{0, 16}, 1, gap);
  }
  const auto m = simulate(t, test_config(Scheme::kBaseline, 64));
  EXPECT_EQ(m.enclave_faults, 16u);  // only the cold pass faults
}

TEST(Simulator, NativeFaultsOncePerDistinctPage) {
  const auto t = seq_trace(32, 1'000);
  const auto m = simulate(t, test_config(Scheme::kNative));
  EXPECT_EQ(m.enclave_faults, 32u);
  const auto& c = SimConfig{}.costs;
  EXPECT_EQ(m.total_cycles, 32u * 1'000 + 32u * c.native_fault);
}

TEST(Simulator, EnclaveVsNativeMotivationGap) {
  // The motivation study's shape: a sequential scan larger than the EPC is
  // an order of magnitude slower inside the enclave.
  const auto t = seq_trace(256, 2'000);
  const auto native = simulate(t, test_config(Scheme::kNative));
  const auto enclave = simulate(t, test_config(Scheme::kBaseline, 128));
  EXPECT_GT(enclave.total_cycles, 10 * native.total_cycles);
}

TEST(Simulator, DfpSpeedsUpSequentialScan) {
  const auto t = seq_trace(512, 2'000);
  const auto base = simulate(t, test_config(Scheme::kBaseline, 128));
  const auto dfp = simulate(t, test_config(Scheme::kDfp, 128));
  EXPECT_LT(dfp.total_cycles, base.total_cycles);
  EXPECT_GT(dfp.dfp_preload_counter, 0u);
  // Most preloads are consumed by the scan.
  EXPECT_GT(dfp.driver.preloads_used, dfp.dfp_preload_counter / 2);
}

TEST(Simulator, DfpNeutralOnPureRandom) {
  // Uniform random pages over a wide region: streams never form, so DFP
  // predicts (and costs) nearly nothing.
  const auto t = random_trace(100'000, 2'000, 2'000);
  const auto base = simulate(t, test_config(Scheme::kBaseline, 64));
  const auto dfp = simulate(t, test_config(Scheme::kDfp, 64));
  EXPECT_EQ(dfp.dfp_predictor_hits, 0u);
  EXPECT_EQ(dfp.total_cycles, base.total_cycles);
}

TEST(Simulator, DfpStopCutsMispredictionOverhead) {
  // Short runs bait the stream detector into wasted preloads.
  trace::Trace t("bait", 100'008);
  Rng rng(3);
  trace::short_sequential_runs(t, rng, trace::Region{0, 100'000},
                               /*runs=*/3'000, /*max_run=*/3, 1, 4,
                               trace::GapModel{.mean = 2'000, .jitter_pct = 0});
  auto cfg = test_config(Scheme::kDfp, 64);
  cfg.dfp.stop_slack = 50;
  const auto base = simulate(t, test_config(Scheme::kBaseline, 64));
  const auto dfp = simulate(t, cfg);
  cfg.scheme = Scheme::kDfpStop;
  const auto stop = simulate(t, cfg);
  EXPECT_GT(dfp.total_cycles, base.total_cycles);  // misprediction overhead
  EXPECT_TRUE(stop.dfp_stopped);
  EXPECT_LT(stop.total_cycles, dfp.total_cycles);  // valve recovers most
}

TEST(Simulator, SipAvoidsAexOnInstrumentedFaults) {
  const auto t = random_trace(100'000, 1'000, 2'000);
  sip::InstrumentationPlan plan;
  for (SiteId s = 1; s <= 4; ++s) {
    plan.add_site(s);
  }
  const auto base = simulate(t, test_config(Scheme::kBaseline, 64));
  const auto sip = simulate(t, test_config(Scheme::kSip, 64), &plan);
  EXPECT_LT(sip.total_cycles, base.total_cycles);
  EXPECT_EQ(sip.sip_checks, 1'000u);
  // Nearly every access misses the tiny EPC: notifications replace faults.
  EXPECT_GT(sip.sip_requests, 900u);
  EXPECT_LT(sip.enclave_faults, base.enclave_faults / 10);
}

TEST(Simulator, SipExactSavingPerConvertedFault) {
  // One instrumented irregular access: baseline pays AEX+load+ERESUME,
  // SIP pays check+load+notification.
  trace::Trace t("one", 64);
  t.append({.page = 5, .site = 1, .gap = 1'000});
  sip::InstrumentationPlan plan;
  plan.add_site(1);
  const auto cfg = test_config(Scheme::kSip);
  const auto base = simulate(t, test_config(Scheme::kBaseline));
  const auto sip = simulate(t, cfg, &plan);
  const auto& c = cfg.costs;
  EXPECT_EQ(base.total_cycles - sip.total_cycles,
            c.aex + c.eresume - c.bitmap_check - c.sip_notification);
}

TEST(Simulator, SipChecksCostOnResidentPages) {
  // Instrumented site hammering one resident page: SIP pays one bitmap
  // check per access and gains nothing.
  trace::Trace t("hot", 64);
  for (int i = 0; i < 100; ++i) {
    t.append({.page = 3, .site = 1, .gap = 500});
  }
  sip::InstrumentationPlan plan;
  plan.add_site(1);
  const auto cfg = test_config(Scheme::kSip);
  const auto base = simulate(t, test_config(Scheme::kBaseline));
  const auto sip = simulate(t, cfg, &plan);
  EXPECT_EQ(sip.sip_requests, 1u);  // only the cold first access
  EXPECT_GT(sip.total_cycles, base.total_cycles);
  EXPECT_EQ(sip.sip_checks, 100u);
}

TEST(Simulator, SipWithoutPlanThrows) {
  const auto t = seq_trace(8, 100);
  EnclaveSimulator sim(test_config(Scheme::kSip));
  EXPECT_THROW(sim.run(t, nullptr), CheckFailure);
}

TEST(Simulator, EmptyPlanBehavesLikeBaseline) {
  const auto t = seq_trace(64, 1'000);
  sip::InstrumentationPlan empty;
  const auto base = simulate(t, test_config(Scheme::kBaseline, 32));
  const auto sip = simulate(t, test_config(Scheme::kSip, 32), &empty);
  EXPECT_EQ(sip.total_cycles, base.total_cycles);
  EXPECT_EQ(sip.sip_checks, 0u);
}

TEST(Simulator, HybridCombinesBothSchemes) {
  // Sequential phase (DFP's half) followed by irregular instrumented phase
  // (SIP's half): the hybrid beats the baseline on both halves.
  trace::Trace t("mixed", 200'000);
  Rng rng(4);
  const trace::GapModel gap{.mean = 2'000, .jitter_pct = 0};
  trace::seq_scan(t, rng, trace::Region{0, 512}, 1, gap);
  trace::random_access(t, rng, trace::Region{1'000, 150'000}, 1'000, 10, 4,
                       gap);
  sip::InstrumentationPlan plan;
  for (SiteId s = 10; s < 14; ++s) {
    plan.add_site(s);
  }
  const auto base = simulate(t, test_config(Scheme::kBaseline, 128));
  const auto dfp = simulate(t, test_config(Scheme::kDfpStop, 128));
  const auto sip = simulate(t, test_config(Scheme::kSip, 128), &plan);
  const auto hybrid = simulate(t, test_config(Scheme::kHybrid, 128), &plan);
  EXPECT_LT(hybrid.total_cycles, base.total_cycles);
  EXPECT_LT(hybrid.total_cycles, dfp.total_cycles);
  EXPECT_LT(hybrid.total_cycles, sip.total_cycles);
}

TEST(Simulator, ContentionInflatesCompute) {
  // Compute-bound gaps (larger than a preload) so the inflation is not
  // absorbed by channel waits.
  const auto t = seq_trace(256, 80'000);
  auto cfg = test_config(Scheme::kDfp, 64);
  const auto crisp = simulate(t, cfg);
  cfg.channel_contention = 0.5;
  const auto contended = simulate(t, cfg);
  EXPECT_GT(contended.contention_cycles, 0u);
  EXPECT_GT(contended.total_cycles, crisp.total_cycles);
  EXPECT_EQ(crisp.contention_cycles, 0u);
}

TEST(Simulator, EmptyTraceThrows) {
  trace::Trace t("empty", 10);
  EnclaveSimulator sim(test_config(Scheme::kBaseline));
  EXPECT_THROW(sim.run(t), CheckFailure);
}

TEST(Simulator, TraceWithoutElrangeThrows) {
  trace::Trace t;
  t.append({.page = 0, .site = 0, .gap = 1});
  EnclaveSimulator sim(test_config(Scheme::kBaseline));
  EXPECT_THROW(sim.run(t), CheckFailure);
}

TEST(Metrics, ImprovementArithmetic) {
  Metrics base;
  base.total_cycles = 1'000;
  Metrics fast;
  fast.total_cycles = 886;
  EXPECT_NEAR(fast.improvement_over(base), 0.114, 1e-9);
  EXPECT_NEAR(fast.normalized_to(base), 0.886, 1e-9);
  Metrics zero;
  EXPECT_DOUBLE_EQ(fast.improvement_over(zero), 0.0);
}

TEST(Scheme, Names) {
  EXPECT_STREQ(to_string(Scheme::kDfp), "DFP");
  EXPECT_STREQ(to_string(Scheme::kDfpStop), "DFP-stop");
  EXPECT_STREQ(to_string(Scheme::kHybrid), "SIP+DFP");
}

TEST(Scheme, ConfigPredicates) {
  SimConfig cfg;
  cfg.scheme = Scheme::kHybrid;
  EXPECT_TRUE(cfg.uses_dfp());
  EXPECT_TRUE(cfg.uses_sip());
  EXPECT_TRUE(cfg.dfp_stop_forced());
  cfg.scheme = Scheme::kDfp;
  EXPECT_TRUE(cfg.uses_dfp());
  EXPECT_FALSE(cfg.dfp_stop_forced());
  EXPECT_FALSE(cfg.uses_sip());
  cfg.scheme = Scheme::kBaseline;
  EXPECT_FALSE(cfg.uses_dfp());
}

}  // namespace
}  // namespace sgxpl::core
