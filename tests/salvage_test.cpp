// Torn-chain salvage fuzz: every truncation and every bit flip over the
// last two frames of the golden checkpoint chain must either salvage the
// documented prefix (bit-identical to a strict restore of those frames) or
// fail with a typed report — never crash, and never restore silently-wrong
// state. Also pins the typed classification of the pure linkage faults
// (missing base, seq gap, mixed chains, mid-chain base) and the file-based
// salvage walk.
#include "snapshot/chain.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "golden_recipe.h"
#include "snapshot/codec.h"
#include "snapshot/snapshotter.h"

namespace sgxpl {
namespace {

using snapshot::ChainFault;
using snapshot::ChainSalvageReport;

using Frames = std::vector<std::vector<std::uint8_t>>;

/// A fresh run shaped like the golden chain's producer (dfpstop single
/// case), ready to be restored into.
struct ChainRig {
  trace::Trace trace = golden::single_trace();
  sip::InstrumentationPlan plan = golden::single_plan();
  core::SimulationRun run{golden::single_config("dfpstop"), trace, &plan};
};

/// Strict restore of the first `prefix` frames into a fresh run; the state
/// every successful salvage of that prefix must reproduce bit-identically.
std::vector<std::uint8_t> prefix_state(const Frames& frames,
                                       std::uint64_t prefix) {
  ChainRig rig;
  snapshot::restore_chain(
      rig.run, Frames(frames.begin(),
                      frames.begin() + static_cast<std::ptrdiff_t>(prefix)));
  return rig.run.save_bytes();
}

/// Salvage `frames` into a fresh run and check the report's promise: the
/// restored state equals a strict restore of exactly the prefix it claims.
void expect_salvage_keeps_its_promise(const Frames& frames,
                                      const std::string& context) {
  ChainRig rig;
  const ChainSalvageReport rep =
      snapshot::restore_chain_salvage(rig.run, frames);
  ASSERT_LE(rep.frames_restored, frames.size()) << context;
  if (rep.restored_any()) {
    EXPECT_EQ(rig.run.save_bytes(),
              prefix_state(frames, rep.frames_restored))
        << context << ": salvage restored a state that is not the strict "
        << "restore of the prefix it reported (" << rep.describe() << ")";
  }
  if (rep.complete()) {
    EXPECT_EQ(rep.frames_restored, frames.size()) << context;
    EXPECT_TRUE(rep.detail.empty()) << context;
  } else {
    EXPECT_NE(rep.fault, ChainFault::kNone) << context;
    EXPECT_FALSE(rep.detail.empty()) << context;
  }
}

TEST(Salvage, IntactChainProbesAndRestoresCompletely) {
  const Frames frames = golden::make_chain();
  ASSERT_EQ(frames.size(), 3u);
  const ChainSalvageReport probe = snapshot::probe_chain(frames);
  EXPECT_TRUE(probe.complete()) << probe.describe();
  EXPECT_EQ(probe.frames_restored, 3u);

  ChainRig rig;
  const ChainSalvageReport rep =
      snapshot::restore_chain_salvage(rig.run, frames);
  EXPECT_TRUE(rep.complete()) << rep.describe();
  EXPECT_EQ(rig.run.save_bytes(), prefix_state(frames, 3));
}

TEST(Salvage, EveryTruncationOfTheLastTwoFramesClassifiesTyped) {
  const Frames frames = golden::make_chain();
  for (std::size_t victim = 1; victim < 3; ++victim) {
    for (std::size_t len = 0; len < frames[victim].size(); ++len) {
      Frames torn = frames;
      torn[victim].resize(len);
      const ChainSalvageReport rep = snapshot::probe_chain(torn);
      // A truncated frame can never walk clean: the probe must stop at the
      // victim, keeping exactly the frames before it.
      ASSERT_EQ(rep.fault, ChainFault::kCorruptFrame)
          << "frame " << victim << " cut at " << len << ": "
          << rep.describe();
      ASSERT_EQ(rep.frames_restored, victim)
          << "frame " << victim << " cut at " << len;
      ASSERT_EQ(rep.first_bad_index, victim);
      ASSERT_LE(rep.byte_offset, frames[victim].size());
      ASSERT_FALSE(rep.detail.empty());
    }
  }
}

TEST(Salvage, SampledTruncationsRestoreTheDocumentedPrefix) {
  const Frames frames = golden::make_chain();
  for (std::size_t victim = 1; victim < 3; ++victim) {
    const std::size_t size = frames[victim].size();
    for (std::size_t len = 0; len < size; len += 97) {
      Frames torn = frames;
      torn[victim].resize(len);
      expect_salvage_keeps_its_promise(
          torn, "frame " + std::to_string(victim) + " cut at " +
                    std::to_string(len));
    }
  }
}

TEST(Salvage, EveryBitFlipOfTheLastTwoFramesNeverCrashesOrLies) {
  const Frames frames = golden::make_chain();
  for (std::size_t victim = 1; victim < 3; ++victim) {
    const std::size_t bits = frames[victim].size() * 8;
    for (std::size_t bit = 0; bit < bits; ++bit) {
      Frames flipped = frames;
      flipped[victim][bit / 8] ^=
          static_cast<std::uint8_t>(1u << (bit % 8));
      const ChainSalvageReport rep = snapshot::probe_chain(flipped);
      // The flip changed the victim's bytes, so the walk can never accept
      // the whole chain beyond it intact: either the victim itself is
      // rejected, or — for flips the structural probe cannot see, e.g. a
      // section tag byte — a later frame's prev-CRC linkage breaks. Only
      // a flip in the LAST frame's un-CRC'd framing can survive the
      // structural walk; the apply path catches those (sampled test
      // below).
      if (victim < 2) {
        ASSERT_FALSE(rep.complete())
            << "frame " << victim << " bit " << bit
            << " accepted structurally despite a corrupted predecessor";
        ASSERT_LE(rep.frames_restored, 2u);
      }
      ASSERT_LE(rep.frames_restored, 3u);
      if (!rep.complete()) {
        ASSERT_NE(rep.fault, ChainFault::kNone);
        ASSERT_GE(rep.first_bad_index, victim)
            << "frame " << victim << " bit " << bit;
      }
    }
  }
}

TEST(Salvage, SampledBitFlipsRestoreTheDocumentedPrefix) {
  const Frames frames = golden::make_chain();
  for (std::size_t victim = 1; victim < 3; ++victim) {
    const std::size_t bits = frames[victim].size() * 8;
    for (std::size_t bit = 0; bit < bits; bit += 997) {
      Frames flipped = frames;
      flipped[victim][bit / 8] ^=
          static_cast<std::uint8_t>(1u << (bit % 8));
      expect_salvage_keeps_its_promise(
          flipped, "frame " + std::to_string(victim) + " bit " +
                       std::to_string(bit));
    }
  }
}

TEST(Salvage, TagFlipInTheLastFrameFallsBackToApplyFailed) {
  // Flip one character of the last frame's LAST section tag: payload CRCs
  // and the section table still walk clean (tag bytes sit outside the
  // payload CRC), so the structural probe accepts the chain — the typed
  // decode inside restore must catch it and the salvage walk must back off
  // one frame.
  Frames frames = golden::make_chain();
  const auto spans = snapshot::section_spans(frames[2]);
  ASSERT_FALSE(spans.empty());
  const std::size_t tag_at = spans.back().offset;
  frames[2][tag_at] ^= 0x01;

  const ChainSalvageReport probe = snapshot::probe_chain(frames);
  EXPECT_TRUE(probe.complete())
      << "structural probe unexpectedly saw the tag flip: "
      << probe.describe();

  ChainRig rig;
  const ChainSalvageReport rep =
      snapshot::restore_chain_salvage(rig.run, frames);
  EXPECT_EQ(rep.fault, ChainFault::kApplyFailed) << rep.describe();
  EXPECT_EQ(rep.frames_restored, 2u);
  EXPECT_EQ(rig.run.save_bytes(), prefix_state(frames, 2));
}

TEST(Salvage, LinkageFaultsClassifyTyped) {
  const Frames frames = golden::make_chain();

  const ChainSalvageReport empty = snapshot::probe_chain({});
  EXPECT_EQ(empty.fault, ChainFault::kEmptyChain);
  EXPECT_FALSE(empty.restored_any());

  const ChainSalvageReport headless =
      snapshot::probe_chain({frames[1], frames[2]});
  EXPECT_EQ(headless.fault, ChainFault::kNoBase);
  EXPECT_FALSE(headless.restored_any());

  const ChainSalvageReport gap = snapshot::probe_chain({frames[0], frames[2]});
  EXPECT_EQ(gap.fault, ChainFault::kSeqGap);
  EXPECT_EQ(gap.frames_restored, 1u);
  EXPECT_EQ(gap.first_bad_index, 1u);
  EXPECT_EQ(gap.first_bad_seq, 2u);  // the declared seq of the found frame

  const ChainSalvageReport midbase =
      snapshot::probe_chain({frames[0], frames[0], frames[1]});
  EXPECT_EQ(midbase.fault, ChainFault::kWrongKind);
  EXPECT_EQ(midbase.frames_restored, 1u);

  // A delta of a different chain: regenerate the chain from a different
  // base cut so its chain id differs.
  Frames other;
  {
    ChainRig rig;
    snapshot::Snapshotter<core::SimulationRun> snap(8);
    while (!rig.run.done() && rig.run.cursor() < 200) {
      rig.run.step();
    }
    other.push_back(snap.checkpoint(rig.run).bytes);
    while (!rig.run.done() && rig.run.cursor() < 240) {
      rig.run.step();
    }
    other.push_back(snap.checkpoint(rig.run).bytes);
  }
  const ChainSalvageReport mixed =
      snapshot::probe_chain({frames[0], other[1]});
  EXPECT_EQ(mixed.fault, ChainFault::kChainIdMismatch);
  EXPECT_EQ(mixed.frames_restored, 1u);
}

TEST(Salvage, PrevCrcMismatchClassifiesTyped) {
  // Rebuild delta 1 from a slightly different cut (same chain id family is
  // not required — forge the linkage instead): flip a payload byte of
  // frame 1 *and* patch its section CRC so the frame itself walks clean,
  // leaving only the prev-CRC linkage of frame 2 to catch the swap.
  Frames frames = golden::make_chain();
  const auto spans = snapshot::section_spans(frames[1]);
  // Find a non-CHNH section with a non-empty payload (corrupting the chain
  // header itself would change the decoded linkage fields, classifying as a
  // different fault); flip its last payload byte and recompute the stored
  // CRC.
  for (const auto& s : spans) {
    if (s.size <= 16 || s.tag == "CHNH") continue;
    const std::size_t payload_at = s.offset + 16;
    const std::size_t payload_len = s.size - 16;
    frames[1][payload_at + payload_len - 1] ^= 0xFF;
    const std::uint32_t crc =
        snapshot::crc32c(frames[1].data() + payload_at, payload_len);
    // Section header: tag(4) + len(8) + crc(4).
    frames[1][s.offset + 12] = static_cast<std::uint8_t>(crc);
    frames[1][s.offset + 13] = static_cast<std::uint8_t>(crc >> 8);
    frames[1][s.offset + 14] = static_cast<std::uint8_t>(crc >> 16);
    frames[1][s.offset + 15] = static_cast<std::uint8_t>(crc >> 24);
    break;
  }
  const ChainSalvageReport rep = snapshot::probe_chain(frames);
  EXPECT_EQ(rep.fault, ChainFault::kPrevCrcMismatch) << rep.describe();
  EXPECT_EQ(rep.frames_restored, 2u);
  EXPECT_EQ(rep.first_bad_index, 2u);
}

TEST(Salvage, FileWalkSalvagesATornOnDiskChain) {
  const Frames frames = golden::make_chain();
  const std::string base = testing::TempDir() + "salvage-chain.snap";
  snapshot::write_file_atomic(base, frames[0]);
  snapshot::write_file_atomic(snapshot::delta_path(base, 1), frames[1]);
  // Tear the second delta in half on disk.
  std::vector<std::uint8_t> torn = frames[2];
  torn.resize(torn.size() / 2);
  snapshot::write_file_atomic(snapshot::delta_path(base, 2), torn);

  ChainRig rig;
  const ChainSalvageReport rep =
      snapshot::salvage_chain_from_files(rig.run, base);
  EXPECT_EQ(rep.frames_offered, 3u);
  EXPECT_EQ(rep.frames_restored, 2u);
  EXPECT_EQ(rep.fault, ChainFault::kCorruptFrame) << rep.describe();
  EXPECT_EQ(rig.run.save_bytes(), prefix_state(frames, 2));

  std::remove(base.c_str());
  std::remove(snapshot::delta_path(base, 1).c_str());
  std::remove(snapshot::delta_path(base, 2).c_str());
}

TEST(Salvage, MissingBaseFileSalvagesNothingTyped) {
  ChainRig rig;
  const ChainSalvageReport rep = snapshot::salvage_chain_from_files(
      rig.run, testing::TempDir() + "no-such-chain.snap");
  EXPECT_EQ(rep.fault, ChainFault::kEmptyChain);
  EXPECT_FALSE(rep.restored_any());
}

}  // namespace
}  // namespace sgxpl
