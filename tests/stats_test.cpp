#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sgxpl {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10.0;
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.add(1.0);
  a.add(3.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStat c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(Histogram, BucketsAndBounds) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(5), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i) + 0.5);
  }
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.1), 10.0, 1.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), CheckFailure);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckFailure);
}

TEST(Means, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0}), 4.0);
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Means, GeometricMeanRejectsNonPositive) {
  EXPECT_THROW(geometric_mean({1.0, 0.0}), CheckFailure);
  EXPECT_THROW(geometric_mean({}), CheckFailure);
}

TEST(Means, ArithmeticMean) {
  EXPECT_DOUBLE_EQ(arithmetic_mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(arithmetic_mean({}), CheckFailure);
}

}  // namespace
}  // namespace sgxpl
