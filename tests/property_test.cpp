// Parameterized property suites: invariants that must hold for every
// (workload, scheme) combination, swept with TEST_P.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/experiment.h"
#include "core/sharding.h"
#include "core/simulator.h"
#include "inject/chaos_plan.h"
#include "snapshot/codec.h"
#include "trace/workloads.h"

namespace sgxpl::core {
namespace {

constexpr double kScale = 0.06;  // small but non-trivial sweeps

SimConfig tiny_platform(Scheme scheme) {
  SimConfig cfg = paper_platform(scheme);
  cfg.enclave.epc_pages = static_cast<PageNum>(
      static_cast<double>(cfg.enclave.epc_pages) * kScale);
  cfg.validate = true;  // end-of-run structural invariant check
  return cfg;
}

using Param = std::tuple<std::string, Scheme>;

class SchemeProperties : public ::testing::TestWithParam<Param> {
 protected:
  /// Run the parameterized combination once, compiling a SIP plan if the
  /// scheme needs one.
  WorkloadComparison run() const {
    const auto& [name, scheme] = GetParam();
    return compare_schemes(name, {scheme}, tiny_platform(scheme),
                           ExperimentOptions{.scale = kScale,
                                             .train_scale = kScale * 0.5});
  }
};

TEST_P(SchemeProperties, Deterministic) {
  const auto a = run();
  const auto b = run();
  const auto& [name, scheme] = GetParam();
  ASSERT_NE(a.find(scheme), nullptr);
  EXPECT_EQ(a.find(scheme)->metrics.total_cycles,
            b.find(scheme)->metrics.total_cycles)
      << name;
  EXPECT_EQ(a.baseline.total_cycles, b.baseline.total_cycles) << name;
}

TEST_P(SchemeProperties, EveryAccessIsSimulated) {
  const auto& [name, scheme] = GetParam();
  const auto c = run();
  const auto trace_size =
      trace::find_workload(name)->make(trace::ref_params(kScale)).size();
  EXPECT_EQ(c.find(scheme)->metrics.accesses, trace_size);
  EXPECT_EQ(c.baseline.accesses, trace_size);
}

TEST_P(SchemeProperties, TimeIsAtLeastCompute) {
  const auto& [name, scheme] = GetParam();
  const auto c = run();
  const auto& m = c.find(scheme)->metrics;
  EXPECT_GE(m.total_cycles, m.compute_cycles) << name;
  EXPECT_GT(m.total_cycles, 0u);
}

TEST_P(SchemeProperties, DriverAccountingConsistent) {
  const auto& [name, scheme] = GetParam();
  const auto c = run();
  const auto& m = c.find(scheme)->metrics;
  const auto& d = m.driver;
  // Retried faults make the driver's count an upper bound on the
  // per-access fault count.
  EXPECT_GE(d.faults, m.enclave_faults) << name;
  // Every fault was satisfied by a fresh demand load or an in-flight op
  // (retries may add demand loads, never remove them).
  EXPECT_GE(d.demand_loads + d.fault_wait_hits, d.faults) << name;
  // Preload accounting: issued >= completed + aborted (some may still be
  // queued when the trace ends).
  EXPECT_GE(d.preloads_issued, d.preloads_completed + d.preloads_aborted)
      << name;
  // A used preload must have completed (as a DFP preload or a SIP load).
  EXPECT_LE(d.preloads_used, d.preloads_completed + d.sip_loads +
                                 d.sip_inflight_waits + d.sip_prefetches)
      << name;
}

TEST_P(SchemeProperties, SchemeActivityMatchesConfiguration) {
  const auto& [name, scheme] = GetParam();
  const auto c = run();
  const auto& m = c.find(scheme)->metrics;
  SimConfig probe = tiny_platform(scheme);
  if (!probe.uses_dfp()) {
    EXPECT_EQ(m.driver.preloads_issued, 0u) << name;
    EXPECT_EQ(m.dfp_preload_counter, 0u) << name;
  }
  if (!probe.uses_sip()) {
    EXPECT_EQ(m.sip_checks, 0u) << name;
    EXPECT_EQ(m.driver.sip_loads, 0u) << name;
  }
  // Baseline itself must be pristine.
  EXPECT_EQ(c.baseline.driver.preloads_issued, 0u);
  EXPECT_EQ(c.baseline.sip_checks, 0u);
}

TEST_P(SchemeProperties, NormalizationArithmetic) {
  const auto& [name, scheme] = GetParam();
  const auto c = run();
  const auto* r = c.find(scheme);
  EXPECT_NEAR(r->normalized + r->improvement, 1.0, 1e-12) << name;
  EXPECT_GT(r->normalized, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsBySchemes, SchemeProperties,
    ::testing::Combine(
        ::testing::Values("microbenchmark", "lbm", "deepsjeng", "mcf",
                          "MSER", "mixed-blood", "leela"),
        ::testing::Values(Scheme::kDfp, Scheme::kDfpStop, Scheme::kSip,
                          Scheme::kHybrid)),
    [](const ::testing::TestParamInfo<Param>& pinfo) {
      std::string n = std::get<0>(pinfo.param);
      for (auto& ch : n) {
        if (ch == '-' || ch == '.') {
          ch = '_';
        }
      }
      std::string s = to_string(std::get<1>(pinfo.param));
      for (auto& ch : s) {
        if (ch == '-' || ch == '+') {
          ch = '_';
        }
      }
      return n + "_" + s;
    });

// --- EPC-size monotonicity (LRU has the inclusion property) ---------------

class EpcMonotonicity : public ::testing::TestWithParam<const char*> {};

TEST_P(EpcMonotonicity, MoreEpcNeverMoreFaultsUnderLru) {
  const auto t =
      trace::find_workload(GetParam())->make(trace::ref_params(kScale));
  std::uint64_t prev_faults = std::numeric_limits<std::uint64_t>::max();
  for (const double frac : {0.5, 1.0, 2.0, 4.0}) {
    SimConfig cfg = tiny_platform(Scheme::kBaseline);
    cfg.enclave.eviction = sgxsim::EvictionKind::kLru;
    cfg.enclave.epc_pages = static_cast<PageNum>(
        static_cast<double>(cfg.enclave.epc_pages) * frac);
    const auto m = simulate(t, cfg);
    EXPECT_LE(m.enclave_faults, prev_faults) << "frac=" << frac;
    prev_faults = m.enclave_faults;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, EpcMonotonicity,
                         ::testing::Values("microbenchmark", "deepsjeng",
                                           "MSER", "xz"));

// --- Lookahead sanity across distances -------------------------------------

class LookaheadSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LookaheadSweep, HoistedSipNeverLosesToBaselineOnIrregularTrace) {
  const auto* w = trace::find_workload("deepsjeng");
  SimConfig cfg = tiny_platform(Scheme::kSip);
  cfg.sip_lookahead = GetParam();
  const auto c = compare_schemes(
      *w, {Scheme::kSip}, cfg,
      ExperimentOptions{.scale = kScale, .train_scale = kScale * 0.5});
  EXPECT_GT(c.find(Scheme::kSip)->improvement, 0.0)
      << "lookahead=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Distances, LookaheadSweep,
                         ::testing::Values(0u, 1u, 4u, 16u, 64u));

// --- Eviction kinds keep every scheme sound --------------------------------

class EvictionSweep
    : public ::testing::TestWithParam<sgxsim::EvictionKind> {};

TEST_P(EvictionSweep, AllSchemesRunToCompletion) {
  const auto t =
      trace::find_workload("MSER")->make(trace::ref_params(kScale));
  for (const Scheme s :
       {Scheme::kBaseline, Scheme::kDfpStop, Scheme::kHybrid}) {
    SimConfig cfg = tiny_platform(s);
    cfg.enclave.eviction = GetParam();
    sip::InstrumentationPlan plan;
    for (SiteId site = 100; site < 154; ++site) {
      plan.add_site(site);
    }
    const auto m = simulate(t, cfg, &plan);
    EXPECT_EQ(m.accesses, t.size());
    EXPECT_GE(m.total_cycles, m.compute_cycles);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, EvictionSweep,
    ::testing::Values(sgxsim::EvictionKind::kClock, sgxsim::EvictionKind::kFifo,
                      sgxsim::EvictionKind::kRandom,
                      sgxsim::EvictionKind::kLru),
    [](const ::testing::TestParamInfo<sgxsim::EvictionKind>& pinfo) {
      return std::string(sgxsim::to_string(pinfo.param));
    });

// --- Predictor kinds keep DFP sound ----------------------------------------

class PredictorSweep : public ::testing::TestWithParam<dfp::PredictorKind> {};

TEST_P(PredictorSweep, DfpRunsAndAccountsCorrectly) {
  const auto t =
      trace::find_workload("lbm")->make(trace::ref_params(kScale));
  SimConfig cfg = tiny_platform(Scheme::kDfpStop);
  cfg.dfp.kind = GetParam();
  const auto m = simulate(t, cfg);
  EXPECT_EQ(m.accesses, t.size());
  EXPECT_GE(m.driver.preloads_issued,
            m.driver.preloads_completed + m.driver.preloads_aborted);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, PredictorSweep,
    ::testing::Values(dfp::PredictorKind::kMultiStream,
                      dfp::PredictorKind::kNextN, dfp::PredictorKind::kStride,
                      dfp::PredictorKind::kMarkov,
                      dfp::PredictorKind::kTournament),
    [](const ::testing::TestParamInfo<dfp::PredictorKind>& pinfo) {
      std::string n = dfp::to_string(pinfo.param);
      for (auto& ch : n) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return n;
    });

// --- Chaos fault classes keep the driver sound ------------------------------
// Every fault class, injected into the full hybrid stack: the driver's
// structural invariants must hold throughout (online watchdog every 8 scans
// plus the end-of-run check), and a second run under the same plan + seed
// must replay bit-identically — same pages, same order, same cycle count.

class ChaosSweep : public ::testing::TestWithParam<inject::FaultKind> {};

TEST_P(ChaosSweep, InvariantsHoldAndReplayIsIdentical) {
  const auto* w = trace::find_workload("deepsjeng");
  SimConfig cfg = tiny_platform(Scheme::kHybrid);  // validate = on
  cfg.chaos.seed = 99;
  cfg.chaos.enable(GetParam());
  cfg.enclave.watchdog_scan_interval = 8;
  const auto run = [&] {
    return compare_schemes(
        *w, {Scheme::kHybrid}, cfg,
        ExperimentOptions{.scale = kScale, .train_scale = kScale * 0.5});
  };
  const auto a = run();
  const auto b = run();
  const auto& ma = a.find(Scheme::kHybrid)->metrics;
  const auto& mb = b.find(Scheme::kHybrid)->metrics;
  EXPECT_GT(ma.inject.total_opportunities(), 0u)
      << "fault class never reached a decision point";
  EXPECT_GT(ma.driver.watchdog_checks, 0u);
  EXPECT_EQ(ma.total_cycles, mb.total_cycles);
  EXPECT_EQ(ma.enclave_faults, mb.enclave_faults);
  EXPECT_EQ(ma.driver.faults, mb.driver.faults);
  EXPECT_EQ(ma.driver.evictions, mb.driver.evictions);
  EXPECT_EQ(ma.inject.total_fired(), mb.inject.total_fired());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ChaosSweep, ::testing::ValuesIn(inject::all_fault_kinds()),
    [](const ::testing::TestParamInfo<inject::FaultKind>& pinfo) {
      std::string n = inject::to_string(pinfo.param);
      for (auto& ch : n) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return n;
    });

// --- Overload hardening under chaos -----------------------------------------
// The same sweep with the hardened paging path switched on: bounded channel,
// retries, and the per-tenant admission ladder. The load-bearing property is
// conservation — a completion the chaos layer swallowed is never silently
// parked: it is re-issued, made moot by a demand load, or surfaced as a
// permanent fault. Demand faults are never rejected (every access is
// simulated), the structural invariants hold (validate + watchdog on), and
// the whole retry/admission schedule replays bit-identically.

class HardenedChaosSweep : public ::testing::TestWithParam<inject::FaultKind> {
};

TEST_P(HardenedChaosSweep, NoSilentLossUnderBoundedQueueAndRetries) {
  const auto* w = trace::find_workload("deepsjeng");
  SimConfig cfg = tiny_platform(Scheme::kHybrid);  // validate = on
  cfg.chaos.seed = 1234;
  cfg.chaos.enable(GetParam());
  cfg.enclave.watchdog_scan_interval = 8;
  cfg.enclave.channel.max_queued = 24;
  cfg.enclave.channel.max_retries = 3;
  cfg.enclave.admission.enabled = true;
  const auto run = [&] {
    return compare_schemes(
        *w, {Scheme::kHybrid}, cfg,
        ExperimentOptions{.scale = kScale, .train_scale = kScale * 0.5});
  };
  const auto a = run();
  const auto b = run();
  const auto& ma = a.find(Scheme::kHybrid)->metrics;
  const auto& mb = b.find(Scheme::kHybrid)->metrics;
  const auto& d = ma.driver;
  // Conservation: nothing the chaos layer swallowed went missing.
  EXPECT_EQ(d.lost_completions,
            d.retries + d.retries_resolved + d.permanent_faults);
  // Demand is never shed: every access of the trace was simulated to
  // completion even while preloads were being rejected and retried.
  const auto trace_size =
      trace::find_workload("deepsjeng")->make(trace::ref_params(kScale)).size();
  EXPECT_EQ(ma.accesses, trace_size);
  EXPECT_GT(d.watchdog_checks, 0u);
  // The hardened machinery is as deterministic as the seed path: the retry
  // jitter stream and admission windows replay exactly.
  EXPECT_EQ(ma.total_cycles, mb.total_cycles);
  EXPECT_EQ(d.lost_completions, mb.driver.lost_completions);
  EXPECT_EQ(d.retries, mb.driver.retries);
  EXPECT_EQ(d.permanent_faults, mb.driver.permanent_faults);
  EXPECT_EQ(d.preloads_shed, mb.driver.preloads_shed);
  EXPECT_EQ(d.queued_preload_evictions, mb.driver.queued_preload_evictions);
  EXPECT_EQ(d.duplicate_completions, mb.driver.duplicate_completions);
  EXPECT_EQ(d.degrade_demotions, mb.driver.degrade_demotions);
  EXPECT_EQ(d.degrade_promotions, mb.driver.degrade_promotions);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, HardenedChaosSweep, ::testing::ValuesIn(inject::all_fault_kinds()),
    [](const ::testing::TestParamInfo<inject::FaultKind>& pinfo) {
      std::string n = inject::to_string(pinfo.param);
      for (auto& ch : n) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return n;
    });

// --- Shard-count invariance over randomized fleets ---------------------------
// The sharded-execution analogue of ChaosSweep: each iteration draws a
// random tenant mix (lane count, traces, schemes), a random coupling
// configuration, a random chaos toggle, and a random worker count K > 1,
// then demands the whole fleet finish bit-identically to the sequential
// K=1 run — per-lane metrics compared as serialized snapshot fields, so a
// divergence anywhere in the driver/DFP/injection state fails.

std::vector<std::uint8_t> serialized(const Metrics& m) {
  snapshot::Writer w;
  w.begin_section("METR");
  m.save(w);
  w.end_section();
  return w.finish();
}

class ShardCountInvariance : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// Workload traces are iteration-independent; build each once.
  static const trace::Trace& workload(std::size_t which) {
    static const std::array<trace::Trace, 3> kTraces = {
        trace::find_workload("microbenchmark")->make(trace::ref_params(kScale)),
        trace::find_workload("deepsjeng")->make(trace::ref_params(kScale)),
        trace::find_workload("mcf")->make(trace::ref_params(kScale)),
    };
    return kTraces[which % kTraces.size()];
  }
};

TEST_P(ShardCountInvariance, RandomFleetMatchesSequentialBitForBit) {
  Rng draw(GetParam() * 0x9e3779b97f4a7c15ull + 17);
  const std::size_t lane_count = 2 + draw.bounded(4);  // 2..5 tenants
  std::vector<ShardLane> lanes;
  constexpr Scheme kSchemes[] = {Scheme::kBaseline, Scheme::kDfp,
                                 Scheme::kDfpStop};
  for (std::size_t i = 0; i < lane_count; ++i) {
    lanes.push_back(ShardLane{&workload(draw.bounded(3)),
                              kSchemes[draw.bounded(3)], nullptr});
  }

  SimConfig base = tiny_platform(Scheme::kBaseline);
  if (draw.chance(0.5)) {
    base.chaos = inject::ChaosPlan::all(draw.bounded(1 << 20));
  }

  ShardingSpec spec;
  spec.epoch_cycles = draw.chance(0.5) ? 120'000 : 400'000;
  spec.contention_gain_milli =
      draw.chance(0.5) ? 0 : 300 + static_cast<std::uint32_t>(
                                       draw.bounded(1200));
  if (draw.chance(0.5)) {
    spec.pool_pages = static_cast<PageNum>(lane_count) * 20;
    spec.quota_floor = 8;
  }
  constexpr std::size_t kWorkerDraws[] = {2, 3, 4, 8};
  const std::size_t k = kWorkerDraws[draw.bounded(4)];

  const auto run_at = [&](std::size_t threads) {
    ShardingSpec s = spec;
    s.threads = threads;
    ShardedFleetRun run(base, lanes, s);
    std::vector<std::vector<std::uint8_t>> out;
    for (const Metrics& m : run.run_to_end()) {
      out.push_back(serialized(m));
    }
    return std::make_pair(std::move(out), run.epochs_run());
  };
  const auto [ref, ref_epochs] = run_at(1);
  const auto [got, got_epochs] = run_at(k);
  EXPECT_EQ(got_epochs, ref_epochs) << "K=" << k;
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(got[i], ref[i]) << "lane " << i << " K=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Iterations, ShardCountInvariance,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace sgxpl::core
