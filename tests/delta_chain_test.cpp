// DeltaRestoreEquivalence: the delta-chain correctness story, as a property
// over a grid of (scheme x chaos class x checkpoint cadence x full_every).
// For every cell, the run is checkpointed through a delta-emitting
// Snapshotter, and at every cut the live chain must restore into a fresh
// run whose reserialization is bit-identical to both the victim and a
// restore-from-full — then a mid-trace chain restore must finish the trace
// with Metrics bit-identical to the uninterrupted run (the same
// differential the kill-restore harness in bench/recovery_suite.cpp runs
// at bench scale).
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "core/scheme.h"
#include "core/simulator.h"
#include "inject/chaos_plan.h"
#include "sip/instrumenter.h"
#include "snapshot/chain.h"
#include "snapshot/snapshotter.h"
#include "trace/generators.h"

using namespace sgxpl;

namespace {

trace::Trace grid_trace() {
  trace::Trace t("delta-grid", 512);
  Rng rng(33);
  const trace::GapModel gap{.mean = 1'500, .jitter_pct = 0};
  trace::seq_scan(t, rng, trace::Region{0, 256}, 1, gap);
  trace::random_access(t, rng, trace::Region{256, 250}, 350, 10, 4, gap);
  return t;
}

sip::InstrumentationPlan grid_plan() {
  sip::InstrumentationPlan plan;
  for (SiteId s = 10; s < 14; ++s) {
    plan.add_site(s);
  }
  return plan;
}

core::SimConfig grid_config(core::Scheme scheme,
                            const inject::ChaosPlan& chaos) {
  core::SimConfig cfg;
  cfg.scheme = scheme;
  cfg.enclave.epc_pages = 48;  // overcommitted: constant paging churn
  cfg.dfp.predictor.stream_list_len = 8;
  cfg.dfp.predictor.load_length = 4;
  cfg.chaos = chaos;
  cfg.validate = true;
  return cfg;
}

struct Cell {
  core::Scheme scheme;
  const char* scheme_name;
  bool chaos;
  std::uint64_t cadence;
  std::uint64_t full_every;
};

std::vector<Cell> grid() {
  std::vector<Cell> cells;
  const std::pair<core::Scheme, const char*> schemes[] = {
      {core::Scheme::kBaseline, "baseline"},
      {core::Scheme::kDfpStop, "dfpstop"},
      {core::Scheme::kHybrid, "hybrid"}};
  for (const auto& [scheme, name] : schemes) {
    for (const bool chaos : {false, true}) {
      for (const std::uint64_t cadence : {std::uint64_t{17},
                                          std::uint64_t{64}}) {
        for (const std::uint64_t full_every : {std::uint64_t{1},
                                               std::uint64_t{3},
                                               std::uint64_t{5}}) {
          cells.push_back({scheme, name, chaos, cadence, full_every});
        }
      }
    }
  }
  return cells;
}

inject::ChaosPlan cell_chaos(const Cell& c) {
  return c.chaos ? inject::ChaosPlan::all(5) : inject::ChaosPlan{};
}

std::string cell_name(const Cell& c) {
  return std::string(c.scheme_name) + (c.chaos ? "/chaos" : "/clean") +
         "/cadence=" + std::to_string(c.cadence) +
         "/full_every=" + std::to_string(c.full_every);
}

}  // namespace

TEST(DeltaRestoreEquivalence, ChainEqualsFullAtEveryCut) {
  const trace::Trace t = grid_trace();
  const sip::InstrumentationPlan plan = grid_plan();
  for (const Cell& cell : grid()) {
    SCOPED_TRACE(cell_name(cell));
    const core::SimConfig cfg = grid_config(cell.scheme, cell_chaos(cell));
    core::SimulationRun victim(cfg, t, &plan);
    snapshot::Snapshotter<core::SimulationRun> snap(cell.full_every);
    std::vector<std::vector<std::uint8_t>> chain;
    while (!victim.done()) {
      victim.step();
      if (victim.cursor() % cell.cadence != 0) {
        continue;
      }
      const snapshot::ChainFrame frame = snap.checkpoint(victim);
      if (frame.header.kind == snapshot::FrameKind::kFull) {
        chain.clear();
      }
      chain.push_back(frame.bytes);
      const std::vector<std::uint8_t> full = victim.save_bytes();

      core::SimulationRun from_chain(cfg, t, &plan);
      snapshot::restore_chain(from_chain, chain);
      ASSERT_EQ(from_chain.save_bytes(), full)
          << "chain restore diverged at cut " << victim.cursor();

      core::SimulationRun from_full(cfg, t, &plan);
      from_full.load_bytes(full);
      ASSERT_EQ(from_full.save_bytes(), full)
          << "full restore diverged at cut " << victim.cursor();
    }
    EXPECT_GT(snap.frames(), 0u);
    if (cell.full_every > 1) {
      EXPECT_GT(snap.delta_frames(), 0u) << "grid cell emitted no deltas";
    }
  }
}

TEST(DeltaRestoreEquivalence, MidTraceChainResumeFinishesIdentically) {
  const trace::Trace t = grid_trace();
  const sip::InstrumentationPlan plan = grid_plan();
  for (const Cell& cell : grid()) {
    SCOPED_TRACE(cell_name(cell));
    const core::SimConfig cfg = grid_config(cell.scheme, cell_chaos(cell));

    // Uninterrupted reference.
    core::SimulationRun ref(cfg, t, &plan);
    const core::Metrics want = ref.run_to_end();

    // Victim checkpointed to just past the trace midpoint, then killed.
    std::vector<std::vector<std::uint8_t>> chain;
    {
      core::SimulationRun victim(cfg, t, &plan);
      snapshot::Snapshotter<core::SimulationRun> snap(cell.full_every);
      while (!victim.done() && victim.cursor() < t.size() / 2) {
        victim.step();
        if (victim.cursor() % cell.cadence == 0) {
          const snapshot::ChainFrame frame = snap.checkpoint(victim);
          if (frame.header.kind == snapshot::FrameKind::kFull) {
            chain.clear();
          }
          chain.push_back(frame.bytes);
        }
      }
    }
    ASSERT_FALSE(chain.empty());

    core::SimulationRun resumed(cfg, t, &plan);
    snapshot::restore_chain(resumed, chain);
    const core::Metrics got = resumed.run_to_end();
    const snapshot::Diff d = snapshot::diff_metrics(want, got);
    EXPECT_TRUE(d.identical) << d.first_divergence;
  }
}
