// Sharded parallel fleet execution: the shard-count-invariance differential
// battery. The contract under test (src/core/sharding.h, and the
// supervisor's shard_threads knob) is that the worker-thread count K is
// pure execution mechanics — for ANY K the per-tenant metrics, snapshot
// frames, chaos schedules, event streams, and supervisor ledgers are
// bit-identical to the sequential K=1 run. Everything here compares
// serialized bytes, not floats: a mismatch anywhere in the state fails.
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/metrics.h"
#include "core/sharding.h"
#include "core/simulator.h"
#include "fleet/supervisor.h"
#include "golden_recipe.h"
#include "inject/chaos_plan.h"
#include "inject/fleet_chaos.h"
#include "obs/event_log.h"
#include "snapshot/codec.h"

namespace sgxpl {
namespace {

using core::Scheme;
using core::ShardedFleetRun;
using core::ShardingSpec;
using core::ShardLane;
using core::ShardPool;

/// The shard counts every differential below sweeps. 1 is the reference;
/// 3 does not divide most lane counts (uneven blocks); 8 oversubscribes
/// small fleets (some workers own zero lanes).
constexpr std::size_t kShardCounts[] = {1, 2, 3, 8};

// --- ShardPool --------------------------------------------------------------

TEST(ShardPool, SingleThreadedPoolRunsInlineInIndexOrder) {
  ShardPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<std::size_t> order;
  pool.run(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ShardPool, EveryJobRunsExactlyOnceAcrossWorkers) {
  ShardPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  // 13 jobs over 4 workers: uneven blocks, every index covered once.
  std::vector<std::atomic<int>> hits(13);
  pool.run(13, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "job " << i;
  }
  // Fewer jobs than workers: the trailing workers own empty blocks.
  std::atomic<int> ran{0};
  pool.run(2, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 2);
}

TEST(ShardPool, IsReusableAcrossManyGenerations) {
  ShardPool pool(3);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 64; ++round) {
    pool.run(7, [&](std::size_t i) { total += i + 1; });
  }
  EXPECT_EQ(total.load(), 64u * (7u * 8u / 2u));
}

TEST(ShardPool, RethrowsAWorkerExceptionAfterTheBarrier) {
  ShardPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.run(8,
                        [&](std::size_t i) {
                          ++ran;
                          if (i == 5) {
                            throw std::runtime_error("lane 5 exploded");
                          }
                        }),
               std::runtime_error);
  // The pool joined the generation before rethrowing: it stays usable.
  std::atomic<int> after{0};
  pool.run(4, [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 4);
  EXPECT_GE(ran.load(), 1);
}

// --- differential harness ---------------------------------------------------

/// Serialize Metrics so equality means "bit-identical final state", field
/// renames included — two runs whose Metrics serialize identically finished
/// in indistinguishable states.
std::vector<std::uint8_t> metrics_bytes(const core::Metrics& m) {
  snapshot::Writer w;
  w.begin_section("METR");
  m.save(w);
  w.end_section();
  return w.finish();
}

/// The lane mix every grid cell runs: four tenants across three schemes
/// (two distinct traces plus the SIP-instrumented golden single), so the
/// differential covers the baseline driver, the DFP engine, and the
/// SIP+DFP hybrid in one fleet.
struct LaneFixture {
  trace::Trace a = golden::multi_trace(11);
  trace::Trace b = golden::multi_trace(12);
  trace::Trace s = golden::single_trace();
  sip::InstrumentationPlan plan = golden::single_plan();

  std::vector<ShardLane> lanes() const {
    return {
        ShardLane{&a, Scheme::kBaseline, nullptr},
        ShardLane{&b, Scheme::kDfpStop, nullptr},
        ShardLane{&s, Scheme::kHybrid, &plan},
        ShardLane{&a, Scheme::kDfp, nullptr},
    };
  }

  core::SimConfig base(bool chaos) const {
    core::SimConfig cfg = golden::multi_config();
    if (chaos) {
      cfg.chaos = inject::ChaosPlan::all(/*seed=*/7);
    }
    return cfg;
  }
};

/// Everything one run produces that must be K-invariant: the fleet frame
/// at every epoch barrier, and the per-lane final metrics.
struct RunRecord {
  std::vector<std::vector<std::uint8_t>> frames;  // one per epoch barrier
  std::vector<std::vector<std::uint8_t>> metrics;  // one per lane
  std::uint64_t epochs = 0;
};

RunRecord run_recorded(const LaneFixture& fx, bool chaos,
                       const ShardingSpec& spec) {
  ShardedFleetRun run(fx.base(chaos), fx.lanes(), spec);
  RunRecord rec;
  while (!run.done()) {
    run.run_epoch();
    rec.frames.push_back(run.save_bytes());
  }
  rec.epochs = run.epochs_run();
  for (const core::Metrics& m : run.run_to_end()) {
    rec.metrics.push_back(metrics_bytes(m));
  }
  return rec;
}

/// One coupling configuration of the grid. `gain`/`pool` switch the two
/// cross-lane controllers on, which is where a scheduling-order bug would
/// first show (they read every lane's state at the barrier).
ShardingSpec grid_spec(std::size_t threads, bool coupled) {
  ShardingSpec spec;
  spec.threads = threads;
  spec.epoch_cycles = 200'000;
  if (coupled) {
    spec.contention_gain_milli = 500;
    spec.pool_pages = 96;  // 4 lanes, floor 16 => 32 pages of spare
    spec.quota_floor = 16;
  }
  return spec;
}

/// The tentpole differential: scheme mix x chaos class x K x snapshot
/// cadence. The reference run (K=1) snapshots at EVERY epoch barrier; each
/// K>1 run must reproduce every frame byte-for-byte, which subsumes every
/// sparser snapshot cadence (a cadence-c run's frames are a subset).
TEST(ShardInvariance, GridOverSchemesChaosShardsAndCadence) {
  const LaneFixture fx;
  for (const bool chaos : {false, true}) {
    for (const bool coupled : {false, true}) {
      const RunRecord ref = run_recorded(fx, chaos, grid_spec(1, coupled));
      ASSERT_GT(ref.epochs, 2u) << "workload too small to shard";
      for (const std::size_t k : kShardCounts) {
        if (k == 1) continue;
        const RunRecord got = run_recorded(fx, chaos, grid_spec(k, coupled));
        SCOPED_TRACE("chaos=" + std::to_string(chaos) +
                     " coupled=" + std::to_string(coupled) +
                     " K=" + std::to_string(k));
        EXPECT_EQ(got.epochs, ref.epochs);
        ASSERT_EQ(got.frames.size(), ref.frames.size());
        for (std::size_t e = 0; e < ref.frames.size(); ++e) {
          EXPECT_EQ(got.frames[e], ref.frames[e]) << "epoch barrier " << e;
        }
        // Sparser cadences fall out of the per-epoch equality above; spot
        // the cadence-3 subset explicitly so the property is stated.
        for (std::size_t e = 2; e < ref.frames.size(); e += 3) {
          EXPECT_EQ(got.frames[e], ref.frames[e]);
        }
        ASSERT_EQ(got.metrics.size(), ref.metrics.size());
        for (std::size_t i = 0; i < ref.metrics.size(); ++i) {
          EXPECT_EQ(got.metrics[i], ref.metrics[i]) << "lane " << i;
        }
      }
    }
  }
}

/// Chaos schedules must be a function of the lane index alone: the chaos
/// grid cell above already proves it across K, this pins that chaos is
/// actually firing (a vacuous differential would also "pass").
TEST(ShardInvariance, ChaosLanesActuallyInjectFaults) {
  const LaneFixture fx;
  ShardedFleetRun run(fx.base(/*chaos=*/true), fx.lanes(), grid_spec(8, true));
  std::uint64_t fired = 0;
  for (const core::Metrics& m : run.run_to_end()) {
    fired += m.inject.total_fired();
  }
  EXPECT_GT(fired, 0u);
}

// --- kill/restore under K > 1 ----------------------------------------------

/// The cut sweep: snapshot the reference at every epoch barrier, then for
/// each cut resurrect a FRESH fleet at a different shard count from that
/// frame and demand the rest of the run is bit-identical — including the
/// remaining barrier frames, not just the final metrics. K at save time
/// and K at restore time are swept independently (the spec string excludes
/// K, so an 8-way snapshot must land in a 1-way run and vice versa).
TEST(ShardInvariance, KillRestoreCutSweepAcrossShardCounts) {
  const LaneFixture fx;
  const bool chaos = true;
  const RunRecord ref = run_recorded(fx, chaos, grid_spec(3, true));
  ASSERT_GT(ref.epochs, 2u);
  // Every third barrier is a cut; the stride is coprime with the K
  // rotation below, so all four restore counts still occur.
  for (std::size_t cut = 0; cut < ref.frames.size(); cut += 3) {
    const std::size_t restore_k = kShardCounts[cut % 4];
    ShardedFleetRun resumed(fx.base(chaos), fx.lanes(),
                            grid_spec(restore_k, true));
    resumed.load_bytes(ref.frames[cut]);
    EXPECT_EQ(resumed.epochs_run(), cut + 1);
    std::size_t e = cut + 1;
    while (!resumed.done()) {
      resumed.run_epoch();
      ASSERT_LT(e, ref.frames.size()) << "resumed run overran the reference";
      EXPECT_EQ(resumed.save_bytes(), ref.frames[e])
          << "cut " << cut << " restore_k " << restore_k << " epoch " << e;
      ++e;
    }
    EXPECT_EQ(e, ref.frames.size());
    const std::vector<core::Metrics> fin = resumed.run_to_end();
    ASSERT_EQ(fin.size(), ref.metrics.size());
    for (std::size_t i = 0; i < fin.size(); ++i) {
      EXPECT_EQ(metrics_bytes(fin[i]), ref.metrics[i])
          << "cut " << cut << " lane " << i;
    }
  }
}

TEST(ShardInvariance, RestoreIsMetaGatedAndRejectsCorruptFrames) {
  const LaneFixture fx;
  ShardedFleetRun donor(fx.base(false), fx.lanes(), grid_spec(2, true));
  donor.run_epoch();
  const std::vector<std::uint8_t> frame = donor.save_bytes();

  // A different coupling spec is a different experiment: refuse quietly.
  ShardedFleetRun other(fx.base(false), fx.lanes(), grid_spec(2, false));
  EXPECT_FALSE(other.restore_if_compatible(frame));

  // A different lane count cannot hold this frame either.
  std::vector<ShardLane> three = fx.lanes();
  three.pop_back();
  ShardedFleetRun narrower(fx.base(false), three, grid_spec(2, true));
  EXPECT_FALSE(narrower.restore_if_compatible(frame));

  // Same fleet, corrupt payload: typed failure, not garbage state.
  ShardedFleetRun target(fx.base(false), fx.lanes(), grid_spec(8, true));
  std::vector<std::uint8_t> bad = frame;
  bad[bad.size() / 2] ^= 0x40;
  EXPECT_THROW(target.restore_if_compatible(bad), CheckFailure);
  // And the pristine frame restores into the 8-way fleet.
  EXPECT_TRUE(target.restore_if_compatible(frame));
  EXPECT_EQ(target.save_bytes(), frame);
}

TEST(ShardInvariance, SpecStringExcludesTheShardCount) {
  EXPECT_EQ(grid_spec(1, true).spec(), grid_spec(8, true).spec());
  EXPECT_NE(grid_spec(1, true).spec(), grid_spec(1, false).spec());
}

// --- FleetSupervisor.shard_threads ------------------------------------------

fleet::SupervisorPolicy sup_policy(std::uint64_t k) {
  fleet::SupervisorPolicy p;
  p.epoch_steps = 16;
  p.checkpoint.mode = fleet::CheckpointMode::kFixed;
  p.checkpoint.fixed_every = 32;
  p.checkpoint.full_every = 4;
  p.shard_threads = k;
  return p;
}

inject::HostCrashPlan crashy_plan() {
  inject::HostCrashPlan plan;
  plan.enabled = true;
  plan.crash_per_epoch = 0.08;
  plan.torn_frac = 0.5;
  plan.seed = 42;
  return plan;
}

void expect_same_report(const fleet::FleetReport& got,
                        const fleet::FleetReport& ref) {
  EXPECT_EQ(got.epochs, ref.epochs);
  EXPECT_EQ(got.makespan, ref.makespan);
  EXPECT_EQ(got.ledger.tenants_total, ref.ledger.tenants_total);
  EXPECT_EQ(got.ledger.running, ref.ledger.running);
  EXPECT_EQ(got.ledger.finished, ref.ledger.finished);
  EXPECT_EQ(got.ledger.quarantined, ref.ledger.quarantined);
  EXPECT_EQ(got.ledger.crashes, ref.ledger.crashes);
  EXPECT_EQ(got.ledger.recoveries, ref.ledger.recoveries);
  EXPECT_EQ(got.ledger.cold_starts, ref.ledger.cold_starts);
  EXPECT_EQ(got.ledger.torn_checkpoints, ref.ledger.torn_checkpoints);
  EXPECT_EQ(got.ledger.checkpoints, ref.ledger.checkpoints);
  EXPECT_EQ(got.ledger.evacuations_completed,
            ref.ledger.evacuations_completed);
  EXPECT_EQ(got.ledger.evacuation_retries, ref.ledger.evacuation_retries);
  EXPECT_EQ(got.ledger.hosts_retired, ref.ledger.hosts_retired);
  EXPECT_EQ(got.ledger.hosts_spawned, ref.ledger.hosts_spawned);
  ASSERT_EQ(got.crash_incidents.size(), ref.crash_incidents.size());
  for (std::size_t i = 0; i < ref.crash_incidents.size(); ++i) {
    const fleet::CrashIncident& g = got.crash_incidents[i];
    const fleet::CrashIncident& r = ref.crash_incidents[i];
    EXPECT_EQ(g.host, r.host) << "incident " << i;
    EXPECT_EQ(g.at_epoch, r.at_epoch) << "incident " << i;
    EXPECT_EQ(g.steps_at_crash, r.steps_at_crash) << "incident " << i;
    EXPECT_EQ(g.steps_at_checkpoint, r.steps_at_checkpoint)
        << "incident " << i;
    EXPECT_EQ(g.rpo_steps, r.rpo_steps) << "incident " << i;
    EXPECT_EQ(g.rpo_cycles, r.rpo_cycles) << "incident " << i;
    EXPECT_EQ(g.rto_cycles, r.rto_cycles) << "incident " << i;
    EXPECT_EQ(g.frames_offered, r.frames_offered) << "incident " << i;
    EXPECT_EQ(g.frames_salvaged, r.frames_salvaged) << "incident " << i;
    EXPECT_EQ(g.torn_tail, r.torn_tail) << "incident " << i;
    EXPECT_EQ(g.cold_start, r.cold_start) << "incident " << i;
  }
  ASSERT_EQ(got.evacuation_incidents.size(), ref.evacuation_incidents.size());
  for (std::size_t i = 0; i < ref.evacuation_incidents.size(); ++i) {
    const fleet::EvacuationIncident& g = got.evacuation_incidents[i];
    const fleet::EvacuationIncident& r = ref.evacuation_incidents[i];
    EXPECT_EQ(g.host, r.host) << "evacuation " << i;
    EXPECT_EQ(g.tenant_id, r.tenant_id) << "evacuation " << i;
    EXPECT_EQ(g.at_epoch, r.at_epoch) << "evacuation " << i;
    EXPECT_EQ(g.attempts, r.attempts) << "evacuation " << i;
    EXPECT_EQ(g.outcome, r.outcome) << "evacuation " << i;
    EXPECT_EQ(g.backoff_epochs, r.backoff_epochs) << "evacuation " << i;
    EXPECT_EQ(g.detail, r.detail) << "evacuation " << i;
  }
}

/// Mid-flight differential on a quiet fleet: after a fixed number of
/// epochs, every host's full frame, the supervisor manifest, and the event
/// stream must match the sequential run byte-for-byte at every K.
TEST(SupervisorSharding, MidRunHostFramesManifestAndEventsMatchSequential) {
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  constexpr std::uint64_t kEpochs = 12;

  auto capture = [&](std::uint64_t k) {
    obs::EventLog log;
    fleet::FleetSupervisor sup(sup_policy(k), inject::HostCrashPlan{});
    sup.set_event_log(&log);
    sup.add_host(golden::multi_config(), golden::multi_apps(a, b));
    sup.add_host(golden::multi_config(), golden::multi_apps(b, a));
    sup.add_host(golden::multi_config(), golden::multi_apps(a, a));
    for (std::uint64_t e = 0; e < kEpochs && !sup.done(); ++e) {
      sup.run_epoch();
    }
    struct Snap {
      std::vector<std::vector<std::uint8_t>> hosts;
      std::vector<std::uint8_t> manifest;
      std::string events;
    } snap;
    for (std::size_t h = 0; h < sup.host_count(); ++h) {
      EXPECT_NE(sup.host_run(h), nullptr) << "host " << h;
      if (sup.host_run(h) != nullptr) {
        snap.hosts.push_back(sup.host_run(h)->save_bytes());
      }
    }
    snap.manifest = sup.save_manifest();
    snap.events = log.render();
    return snap;
  };

  const auto ref = capture(1);
  ASSERT_EQ(ref.hosts.size(), 3u);
  for (const std::size_t k : kShardCounts) {
    if (k == 1) continue;
    const auto got = capture(k);
    SCOPED_TRACE("K=" + std::to_string(k));
    ASSERT_EQ(got.hosts.size(), ref.hosts.size());
    for (std::size_t h = 0; h < ref.hosts.size(); ++h) {
      EXPECT_EQ(got.hosts[h], ref.hosts[h]) << "host " << h;
    }
    EXPECT_EQ(got.manifest, ref.manifest);
    EXPECT_EQ(got.events, ref.events);
  }
}

/// Full-service differential under host chaos: crashes, torn checkpoints,
/// salvage+replay recovery, evacuations, and retirement all run under K
/// workers and must land on the sequential incident history exactly.
TEST(SupervisorSharding, ChaoticServiceRunIsShardCountInvariant) {
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);

  auto run_fleet = [&](std::uint64_t k) {
    obs::EventLog log;
    fleet::FleetSupervisor sup(sup_policy(k), crashy_plan());
    sup.set_event_log(&log);
    sup.add_host(golden::multi_config(), golden::multi_apps(a, b));
    sup.add_host(golden::multi_config(), golden::multi_apps(b, a));
    sup.add_host(golden::multi_config(), golden::multi_apps(a, a));
    sup.add_host(golden::multi_config(), golden::multi_apps(b, b));
    struct Out {
      fleet::FleetReport report;
      std::vector<std::uint8_t> manifest;
      std::string events;
      std::uint64_t chaos_crashes = 0;
    } out;
    out.report = sup.run_to_completion(5'000);
    out.manifest = sup.save_manifest();
    out.events = log.render();
    out.chaos_crashes = sup.chaos().stats().crashes;
    return out;
  };

  const auto ref = run_fleet(1);
  // The differential is only meaningful if chaos actually fired.
  ASSERT_GT(ref.report.ledger.crashes, 0u);
  EXPECT_TRUE(ref.report.ledger.balanced());
  for (const std::size_t k : kShardCounts) {
    if (k == 1) continue;
    const auto got = run_fleet(k);
    SCOPED_TRACE("K=" + std::to_string(k));
    expect_same_report(got.report, ref.report);
    EXPECT_EQ(got.manifest, ref.manifest);
    EXPECT_EQ(got.events, ref.events);
    EXPECT_EQ(got.chaos_crashes, ref.chaos_crashes);
    EXPECT_TRUE(got.report.ledger.balanced());
  }
}

/// shard_threads must not leak into the policy fingerprint: a manifest
/// saved under K=8 loads into a K=1 supervisor.
TEST(SupervisorSharding, ManifestCrossesShardCounts) {
  const trace::Trace a = golden::multi_trace(11);
  const trace::Trace b = golden::multi_trace(12);
  EXPECT_EQ(sup_policy(1).spec(), sup_policy(8).spec());

  fleet::FleetSupervisor donor(sup_policy(8), inject::HostCrashPlan{});
  donor.add_host(golden::multi_config(), golden::multi_apps(a, b));
  for (int e = 0; e < 4 && !donor.done(); ++e) {
    donor.run_epoch();
  }
  const std::vector<std::uint8_t> manifest = donor.save_manifest();

  fleet::FleetSupervisor heir(sup_policy(1), inject::HostCrashPlan{});
  heir.add_host(golden::multi_config(), golden::multi_apps(a, b));
  heir.load_manifest(manifest);
  EXPECT_EQ(heir.save_manifest(), manifest);
}

}  // namespace
}  // namespace sgxpl
