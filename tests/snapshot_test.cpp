// Tests for the snapshot codec: framing round-trips, fuzz-style corruption
// (every single-bit flip and every truncation must be detected, never crash),
// reordered-section and version-mismatch rejection, diff localization,
// RunMeta identity gating, atomic file IO — and the same corruption battery
// lifted to delta checkpoint chains (base + 2 deltas): every bit flip and
// truncation anywhere in the chain must be detected, and broken chains
// (missing, reordered, substituted, or foreign frames) must raise typed
// ChainErrors.
#include "snapshot/codec.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/scheme.h"
#include "core/simulator.h"
#include "sip/instrumenter.h"
#include "snapshot/chain.h"
#include "trace/generators.h"

namespace sgxpl {
namespace {

using snapshot::Reader;
using snapshot::RunMeta;
using snapshot::Writer;

/// A two-section frame exercising every field type.
std::vector<std::uint8_t> sample_frame() {
  Writer w;
  w.begin_section("AAAA");
  w.u64("a.count", 42);
  w.f64("a.ratio", 0.375);
  w.boolean("a.flag", true);
  w.str("a.name", "leela");
  w.u64_vec("a.vec", {1, 2, 3, 0xFFFFFFFFFFFFFFFFull});
  w.end_section();
  w.begin_section("BBBB");
  w.u64("b.n", 7);
  w.end_section();
  return w.finish();
}

/// Fully decode a frame, cross-checking the section table against the
/// declared count (catches a shrunk count field, which strict sequential
/// reading alone would interpret as ignorable trailing bytes).
void decode_all(const std::vector<std::uint8_t>& bytes) {
  const auto spans = snapshot::section_spans(bytes);
  Reader r(bytes);
  SGXPL_CHECK_MSG(spans.size() == r.section_count(),
                  "section table does not match the declared count");
  while (r.sections_entered() < r.section_count()) {
    r.enter_any_section();
    while (r.more_fields()) {
      r.next_field();
    }
    r.leave_section();
  }
}

TEST(SnapshotCodec, Crc32cMatchesTheCastagnoliCheckVector) {
  const char* s = "123456789";
  EXPECT_EQ(snapshot::crc32c(reinterpret_cast<const std::uint8_t*>(s), 9),
            0xE3069283u);
  EXPECT_EQ(snapshot::crc32c(nullptr, 0), 0u);
}

TEST(SnapshotCodec, RoundTripsEveryFieldType) {
  const auto frame = sample_frame();
  Reader r(frame);
  EXPECT_EQ(r.version(), snapshot::kFormatVersion);
  EXPECT_EQ(r.section_count(), 2u);
  r.enter_section("AAAA");
  EXPECT_EQ(r.u64("a.count"), 42u);
  EXPECT_DOUBLE_EQ(r.f64("a.ratio"), 0.375);
  EXPECT_TRUE(r.boolean("a.flag"));
  EXPECT_EQ(r.str("a.name"), "leela");
  EXPECT_EQ(r.u64_vec("a.vec"),
            (std::vector<std::uint64_t>{1, 2, 3, 0xFFFFFFFFFFFFFFFFull}));
  EXPECT_FALSE(r.more_fields());
  r.leave_section();
  r.enter_section("BBBB");
  EXPECT_EQ(r.u64("b.n"), 7u);
  r.leave_section();
  EXPECT_EQ(r.sections_entered(), r.section_count());
}

TEST(SnapshotCodec, F64RestoresExactBitPatterns) {
  Writer w;
  w.begin_section("FLTS");
  w.f64("nan", std::numeric_limits<double>::quiet_NaN());
  w.f64("neg_zero", -0.0);
  w.f64("inf", std::numeric_limits<double>::infinity());
  w.f64("denorm", std::numeric_limits<double>::denorm_min());
  w.end_section();
  const auto frame = w.finish();
  Reader r(frame);
  r.enter_section("FLTS");
  EXPECT_TRUE(std::isnan(r.f64("nan")));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64("neg_zero")),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(r.f64("inf"), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64("denorm"), std::numeric_limits<double>::denorm_min());
  r.leave_section();
}

TEST(SnapshotCodec, ZeroSectionFrameIsValid) {
  Writer w;
  const auto frame = w.finish();
  Reader r(frame);
  EXPECT_EQ(r.section_count(), 0u);
  EXPECT_TRUE(snapshot::section_spans(frame).empty());
  EXPECT_TRUE(snapshot::diff(frame, frame).identical);
}

TEST(SnapshotCodec, SectionSpansTableMatchesTheFrame) {
  const auto frame = sample_frame();
  const auto spans = snapshot::section_spans(frame);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].tag, "AAAA");
  EXPECT_EQ(spans[1].tag, "BBBB");
  EXPECT_EQ(spans[0].offset, snapshot::kMagic.size() + 8);
  EXPECT_EQ(spans[0].offset + spans[0].size, spans[1].offset);
  EXPECT_EQ(spans[1].offset + spans[1].size, frame.size());
}

TEST(SnapshotCodec, WriterEnforcesFraming) {
  Writer w;
  EXPECT_THROW(w.begin_section("TOOLONG"), CheckFailure);  // tag must be 4
  EXPECT_THROW(w.u64("loose", 1), CheckFailure);  // field outside a section
  w.begin_section("GOOD");
  EXPECT_THROW(w.begin_section("NEST"), CheckFailure);  // no nesting
  EXPECT_THROW(w.finish(), CheckFailure);  // section still open
  w.end_section();
  w.finish();
}

// --- structural drift between writer and reader ----------------------------

TEST(SnapshotCodec, MismatchedLabelNamesBothFields) {
  const auto frame = sample_frame();
  Reader r(frame);
  r.enter_section("AAAA");
  try {
    r.u64("a.wrong");
    FAIL() << "mismatched label accepted";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'a.wrong'"), std::string::npos) << what;
    EXPECT_NE(what.find("'a.count'"), std::string::npos) << what;
    EXPECT_NE(what.find("'AAAA'"), std::string::npos) << what;
  }
}

TEST(SnapshotCodec, MismatchedTypeIsDiagnosed) {
  const auto frame = sample_frame();
  Reader r(frame);
  r.enter_section("AAAA");
  try {
    r.f64("a.count");  // written as u64
    FAIL() << "mismatched type accepted";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("has type u64"), std::string::npos) << what;
    EXPECT_NE(what.find("expected f64"), std::string::npos) << what;
  }
}

TEST(SnapshotCodec, LeaveSectionRejectsUnreadState) {
  const auto frame = sample_frame();
  Reader r(frame);
  r.enter_section("AAAA");
  r.u64("a.count");
  try {
    r.leave_section();
    FAIL() << "unread payload bytes ignored";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("unread"), std::string::npos)
        << e.what();
  }
}

TEST(SnapshotCodec, MissingTrailingFieldIsDiagnosed) {
  Writer w;
  w.begin_section("ONEF");
  w.u64("only", 1);
  w.end_section();
  const auto frame = w.finish();
  Reader r(frame);
  r.enter_section("ONEF");
  r.u64("only");
  try {
    r.u64("more");
    FAIL() << "read past the last field";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("no more fields"), std::string::npos)
        << e.what();
  }
}

// --- corruption fuzzing -----------------------------------------------------

TEST(SnapshotCorruption, EverySingleBitFlipIsDetected) {
  const auto pristine = sample_frame();
  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = pristine;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      bool detected = false;
      try {
        decode_all(mutated);
        // Structurally valid (e.g. a flipped section tag, which no payload
        // CRC covers): the flip must still show up as a content difference.
        detected = !snapshot::diff(pristine, mutated).identical;
      } catch (const CheckFailure&) {
        detected = true;
      }
      EXPECT_TRUE(detected) << "byte " << byte << " bit " << bit
                            << " flipped without detection";
    }
  }
}

TEST(SnapshotCorruption, EveryTruncationIsDetected) {
  const auto pristine = sample_frame();
  for (std::size_t n = 0; n < pristine.size(); ++n) {
    const std::vector<std::uint8_t> cut(pristine.begin(),
                                        pristine.begin() +
                                            static_cast<std::ptrdiff_t>(n));
    EXPECT_THROW(decode_all(cut), CheckFailure) << "length " << n;
  }
}

TEST(SnapshotCorruption, ReorderedSectionsAreRejectedByStrictReads) {
  const auto frame = sample_frame();
  const auto spans = snapshot::section_spans(frame);
  ASSERT_EQ(spans.size(), 2u);
  const auto begin = frame.begin();
  std::vector<std::uint8_t> reordered(
      begin, begin + static_cast<std::ptrdiff_t>(spans[0].offset));
  for (const std::size_t i : {std::size_t{1}, std::size_t{0}}) {
    const auto at = begin + static_cast<std::ptrdiff_t>(spans[i].offset);
    reordered.insert(reordered.end(), at,
                     at + static_cast<std::ptrdiff_t>(spans[i].size));
  }
  ASSERT_EQ(reordered.size(), frame.size());
  Reader r(reordered);
  try {
    r.enter_section("AAAA");
    FAIL() << "reordered section accepted";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("out of order"), std::string::npos)
        << e.what();
  }
  const auto d = snapshot::diff(frame, reordered);
  ASSERT_FALSE(d.identical);
  EXPECT_NE(d.first_divergence.find("section order"), std::string::npos)
      << d.first_divergence;
}

TEST(SnapshotCorruption, UnknownVersionIsRejectedWithGuidance) {
  auto frame = sample_frame();
  frame[snapshot::kMagic.size()] = 9;  // version u32 LSB (currently 1)
  try {
    Reader r(frame);
    FAIL() << "version 9 accepted";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsupported format version 9"), std::string::npos)
        << what;
    EXPECT_NE(what.find("re-create"), std::string::npos) << what;
  }
}

TEST(SnapshotCorruption, NotASnapshotFileIsRejected) {
  const std::vector<std::uint8_t> junk{'n', 'o', 't', ' ', 'a', ' ', 's', 'n',
                                       'a', 'p', 's', 'h', 'o', 't', '!', '!'};
  EXPECT_THROW(Reader r(junk), CheckFailure);
  EXPECT_THROW(Reader(nullptr, 0), CheckFailure);
}

// --- diff -------------------------------------------------------------------

TEST(SnapshotDiff, IdenticalFramesCompareClean) {
  const auto frame = sample_frame();
  const auto d = snapshot::diff(frame, frame);
  EXPECT_TRUE(d.identical);
  EXPECT_TRUE(d.first_divergence.empty());
}

TEST(SnapshotDiff, LocalizesTheFirstDivergingField) {
  Writer wa;
  Writer wb;
  for (Writer* w : {&wa, &wb}) {
    w->begin_section("SAME");
    w->u64("x", 1);
    w->end_section();
  }
  wa.begin_section("DATA");
  wa.u64("count", 42);
  wa.end_section();
  wb.begin_section("DATA");
  wb.u64("count", 43);
  wb.end_section();
  const auto d = snapshot::diff(wa.finish(), wb.finish());
  ASSERT_FALSE(d.identical);
  EXPECT_NE(d.first_divergence.find("'DATA'"), std::string::npos)
      << d.first_divergence;
  EXPECT_NE(d.first_divergence.find("'count'"), std::string::npos);
  EXPECT_NE(d.first_divergence.find("42 != 43"), std::string::npos);
}

TEST(SnapshotDiff, LocalizesTheDivergingVectorElement) {
  Writer wa;
  Writer wb;
  wa.begin_section("DATA");
  wa.u64_vec("v", {5, 6, 7});
  wa.end_section();
  wb.begin_section("DATA");
  wb.u64_vec("v", {5, 9, 7});
  wb.end_section();
  const auto d = snapshot::diff(wa.finish(), wb.finish());
  ASSERT_FALSE(d.identical);
  EXPECT_NE(d.first_divergence.find("element [1]"), std::string::npos)
      << d.first_divergence;
  EXPECT_NE(d.first_divergence.find("6 != 9"), std::string::npos);
}

TEST(SnapshotDiff, ComparesF64ByBitPattern) {
  // +0.0 == -0.0 numerically, but the guarantee is bit-identical resume.
  Writer wa;
  Writer wb;
  wa.begin_section("DATA");
  wa.f64("z", 0.0);
  wa.end_section();
  wb.begin_section("DATA");
  wb.f64("z", -0.0);
  wb.end_section();
  const auto d = snapshot::diff(wa.finish(), wb.finish());
  ASSERT_FALSE(d.identical);
  EXPECT_NE(d.first_divergence.find("'z'"), std::string::npos)
      << d.first_divergence;
}

TEST(SnapshotDiff, ReportsDifferingSectionCounts) {
  Writer wa;
  wa.begin_section("DATA");
  wa.u64("x", 1);
  wa.end_section();
  Writer wb;
  const auto d = snapshot::diff(wa.finish(), wb.finish());
  ASSERT_FALSE(d.identical);
  EXPECT_NE(d.first_divergence.find("section counts differ"),
            std::string::npos)
      << d.first_divergence;
}

// --- RunMeta ----------------------------------------------------------------

TEST(SnapshotMeta, RoundTripsAndGatesOnIdentityNotCursor) {
  RunMeta m;
  m.kind = "enclave-sim";
  m.scheme = "DFP+stop";
  m.trace_name = "mcf";
  m.trace_accesses = 1000;
  m.elrange_pages = 4096;
  m.epc_pages = 96;
  m.chaos_spec = "jitter:1:0.3";
  m.chaos_seed = 9;
  m.cursor = 123;
  Writer w;
  snapshot::write_meta(w, m);
  const std::vector<std::uint8_t> bytes = w.finish();
  Reader r(bytes);
  const RunMeta got = snapshot::read_meta(r);
  EXPECT_EQ(got.kind, m.kind);
  EXPECT_EQ(got.scheme, m.scheme);
  EXPECT_EQ(got.trace_name, m.trace_name);
  EXPECT_EQ(got.trace_accesses, m.trace_accesses);
  EXPECT_EQ(got.elrange_pages, m.elrange_pages);
  EXPECT_EQ(got.epc_pages, m.epc_pages);
  EXPECT_EQ(got.chaos_spec, m.chaos_spec);
  EXPECT_EQ(got.chaos_seed, m.chaos_seed);
  EXPECT_EQ(got.cursor, m.cursor);

  RunMeta later = m;
  later.cursor = 999;  // progress, not identity
  EXPECT_EQ(m.incompatibility(later), "");
  RunMeta other = m;
  other.scheme = "baseline";
  const std::string why = m.incompatibility(other);
  EXPECT_NE(why.find("scheme"), std::string::npos) << why;
  EXPECT_NE(why.find("'DFP+stop'"), std::string::npos) << why;
  EXPECT_NE(why.find("'baseline'"), std::string::npos) << why;
  RunMeta squeezed = m;
  squeezed.epc_pages = 48;
  EXPECT_NE(m.incompatibility(squeezed).find("EPC pages"), std::string::npos);
}

// --- delta-chain corruption -------------------------------------------------

core::SimConfig fuzz_cfg() {
  core::SimConfig cfg;
  cfg.scheme = core::Scheme::kDfpStop;
  cfg.enclave.epc_pages = 16;
  cfg.dfp.predictor.stream_list_len = 4;
  cfg.dfp.predictor.load_length = 2;
  cfg.validate = true;
  return cfg;
}

trace::Trace fuzz_trace() {
  trace::Trace t("chain-fuzz", 64);
  Rng rng(5);
  const trace::GapModel gap{.mean = 1'000, .jitter_pct = 0};
  trace::seq_scan(t, rng, trace::Region{0, 48}, 1, gap);
  trace::random_access(t, rng, trace::Region{48, 16}, 72, 10, 2, gap);
  return t;
}

sip::InstrumentationPlan fuzz_plan() {
  sip::InstrumentationPlan plan;
  for (SiteId s = 10; s < 12; ++s) {
    plan.add_site(s);
  }
  return plan;
}

struct FuzzChain {
  /// Base + deltas, one frame per cut.
  std::vector<std::vector<std::uint8_t>> frames;
  /// Full snapshot of the victim at the last cut — what a correct chain
  /// restore must reproduce byte for byte.
  std::vector<std::uint8_t> reference;
};

/// Checkpoint a small DFP-stop run at each cut through one Snapshotter
/// (full_every large enough that only the first frame is a base).
FuzzChain make_fuzz_chain(const std::vector<std::uint64_t>& cuts) {
  const trace::Trace t = fuzz_trace();
  const sip::InstrumentationPlan plan = fuzz_plan();
  core::SimulationRun run(fuzz_cfg(), t, &plan);
  snapshot::Snapshotter<core::SimulationRun> snap(/*full_every=*/8);
  FuzzChain out;
  for (const std::uint64_t cut : cuts) {
    while (!run.done() && run.cursor() < cut) {
      run.step();
    }
    out.frames.push_back(snap.checkpoint(run).bytes);
  }
  out.reference = run.save_bytes();
  return out;
}

TEST(ChainCorruption, EverySingleBitFlipAnywhereInTheChainIsDetected) {
  const FuzzChain chain = make_fuzz_chain({40, 60, 80});
  ASSERT_EQ(chain.frames.size(), 3u);
  const trace::Trace t = fuzz_trace();
  const sip::InstrumentationPlan plan = fuzz_plan();
  for (std::size_t fi = 0; fi < chain.frames.size(); ++fi) {
    for (std::size_t byte = 0; byte < chain.frames[fi].size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        auto mutated = chain.frames;
        mutated[fi][byte] ^= static_cast<std::uint8_t>(1u << bit);
        bool detected = false;
        try {
          core::SimulationRun run(fuzz_cfg(), t, &plan);
          snapshot::restore_chain(run, mutated);
          // Restore went through structurally — the flip must still show
          // up as a state difference versus the pristine chain's endpoint.
          detected = run.save_bytes() != chain.reference;
        } catch (const CheckFailure&) {
          detected = true;  // CRC, framing, or chain-linkage rejection
        }
        ASSERT_TRUE(detected) << "frame " << fi << " byte " << byte << " bit "
                              << bit << " flipped without detection";
      }
    }
  }
}

TEST(ChainCorruption, EveryTruncationAnywhereInTheChainIsDetected) {
  const FuzzChain chain = make_fuzz_chain({40, 60, 80});
  const trace::Trace t = fuzz_trace();
  const sip::InstrumentationPlan plan = fuzz_plan();
  for (std::size_t fi = 0; fi < chain.frames.size(); ++fi) {
    for (std::size_t n = 0; n < chain.frames[fi].size(); ++n) {
      auto mutated = chain.frames;
      mutated[fi].resize(n);
      core::SimulationRun run(fuzz_cfg(), t, &plan);
      ASSERT_THROW(snapshot::restore_chain(run, mutated), CheckFailure)
          << "frame " << fi << " truncated to " << n << " bytes accepted";
    }
  }
}

TEST(ChainCorruption, MissingDeltaRaisesTypedChainError) {
  const FuzzChain chain = make_fuzz_chain({40, 60, 80});
  const trace::Trace t = fuzz_trace();
  const sip::InstrumentationPlan plan = fuzz_plan();
  core::SimulationRun run(fuzz_cfg(), t, &plan);
  const std::vector<std::vector<std::uint8_t>> gap = {chain.frames[0],
                                                      chain.frames[2]};
  try {
    snapshot::restore_chain(run, gap);
    FAIL() << "chain with a missing delta accepted";
  } catch (const snapshot::ChainError& e) {
    EXPECT_NE(std::string(e.what()).find("missing a frame or reordered"),
              std::string::npos)
        << e.what();
  }
}

TEST(ChainCorruption, ReorderedDeltasRaiseTypedChainError) {
  const FuzzChain chain = make_fuzz_chain({40, 60, 80});
  const trace::Trace t = fuzz_trace();
  const sip::InstrumentationPlan plan = fuzz_plan();
  core::SimulationRun run(fuzz_cfg(), t, &plan);
  const std::vector<std::vector<std::uint8_t>> swapped = {
      chain.frames[0], chain.frames[2], chain.frames[1]};
  EXPECT_THROW(snapshot::restore_chain(run, swapped), snapshot::ChainError);
}

TEST(ChainCorruption, SubstitutedDeltaFailsThePrevCrcLink) {
  // Two chains sharing the same base (both victims checkpointed at cut 40,
  // deterministically identical), then diverging: substituting chain B's
  // second delta into chain A passes the seq and chain-id checks but must
  // fail the prev-CRC link.
  const FuzzChain a = make_fuzz_chain({40, 60, 80});
  const FuzzChain b = make_fuzz_chain({40, 64, 84});
  ASSERT_EQ(a.frames[0], b.frames[0]) << "bases diverged; test premise broken";
  ASSERT_NE(a.frames[1], b.frames[1]);
  const trace::Trace t = fuzz_trace();
  const sip::InstrumentationPlan plan = fuzz_plan();
  core::SimulationRun run(fuzz_cfg(), t, &plan);
  const std::vector<std::vector<std::uint8_t>> franken = {
      a.frames[0], a.frames[1], b.frames[2]};
  try {
    snapshot::restore_chain(run, franken);
    FAIL() << "substituted delta accepted";
  } catch (const snapshot::ChainError& e) {
    EXPECT_NE(std::string(e.what()).find("substituted or reordered"),
              std::string::npos)
        << e.what();
  }
}

TEST(ChainCorruption, ChainWithoutItsBaseIsRejected) {
  const FuzzChain chain = make_fuzz_chain({40, 60, 80});
  const trace::Trace t = fuzz_trace();
  const sip::InstrumentationPlan plan = fuzz_plan();
  core::SimulationRun run(fuzz_cfg(), t, &plan);
  const std::vector<std::vector<std::uint8_t>> headless = {chain.frames[1],
                                                           chain.frames[2]};
  try {
    snapshot::restore_chain(run, headless);
    FAIL() << "chain starting with a delta accepted";
  } catch (const snapshot::ChainError& e) {
    EXPECT_NE(std::string(e.what()).find("full base frame"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(
      snapshot::restore_chain(run, std::vector<std::vector<std::uint8_t>>{}),
      snapshot::ChainError);
}

TEST(ChainCorruption, ForeignDeltaIsRejectedByChainId) {
  // A delta from a chain rooted at a different cut carries a different
  // content-derived chain id; mixing it in must be diagnosed as such.
  const FuzzChain a = make_fuzz_chain({40, 60});
  const FuzzChain c = make_fuzz_chain({44, 62});
  const trace::Trace t = fuzz_trace();
  const sip::InstrumentationPlan plan = fuzz_plan();
  core::SimulationRun run(fuzz_cfg(), t, &plan);
  const std::vector<std::vector<std::uint8_t>> mixed = {a.frames[0],
                                                        c.frames[1]};
  try {
    snapshot::restore_chain(run, mixed);
    FAIL() << "delta from a foreign chain accepted";
  } catch (const snapshot::ChainError& e) {
    EXPECT_NE(std::string(e.what()).find("different checkpoint chain"),
              std::string::npos)
        << e.what();
  }
}

TEST(ChainCorruption, DeltaFrameCannotBeRestoredOnItsOwn) {
  const FuzzChain chain = make_fuzz_chain({40, 60});
  const trace::Trace t = fuzz_trace();
  const sip::InstrumentationPlan plan = fuzz_plan();
  core::SimulationRun run(fuzz_cfg(), t, &plan);
  try {
    run.load_bytes(chain.frames[1]);
    FAIL() << "bare delta frame accepted as a full snapshot";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("restore the chain from its base"),
              std::string::npos)
        << e.what();
  }
}

// --- file IO ----------------------------------------------------------------

TEST(SnapshotFile, AtomicWriteAndReadBack) {
  const std::string path = testing::TempDir() + "sgxpl-codec-io.snap";
  std::remove(path.c_str());
  EXPECT_FALSE(snapshot::file_readable(path));
  EXPECT_THROW(snapshot::read_file(path), CheckFailure);
  const auto frame = sample_frame();
  snapshot::write_file_atomic(path, frame);
  EXPECT_TRUE(snapshot::file_readable(path));
  EXPECT_FALSE(snapshot::file_readable(path + ".tmp"));  // no temp droppings
  EXPECT_EQ(snapshot::read_file(path), frame);
  // Overwrite in place: readers only ever see a whole frame.
  Writer w;
  w.begin_section("NEWF");
  w.u64("n", 1);
  w.end_section();
  const auto frame2 = w.finish();
  snapshot::write_file_atomic(path, frame2);
  EXPECT_EQ(snapshot::read_file(path), frame2);
  std::remove(path.c_str());
}

TEST(SnapshotFile, SizeCappedSinkFailsTypedAndLeavesTargetIntact) {
  // The disk-full regression rig: a sink that can only absorb a few bytes
  // must surface a typed kIoError — never a CHECK crash, never a torn or
  // half-replaced target, never a leftover temp file.
  const std::string path = testing::TempDir() + "sgxpl-codec-capped.snap";
  std::remove(path.c_str());
  const auto frame = sample_frame();
  snapshot::write_file_atomic(path, frame);  // a good file is already there

  snapshot::set_io_write_cap_for_testing(8);
  std::string detail;
  EXPECT_EQ(snapshot::try_write_file_atomic(path, frame, &detail),
            snapshot::IoResult::kIoError);
  EXPECT_NE(detail.find("sink full"), std::string::npos) << detail;
  // The failed write is invisible: previous contents intact, no droppings.
  EXPECT_EQ(snapshot::read_file(path), frame);
  EXPECT_FALSE(snapshot::file_readable(path + ".tmp"));
  // The throwing wrapper reports the same typed failure.
  try {
    snapshot::write_file_atomic(path, frame);
    snapshot::set_io_write_cap_for_testing(0);
    FAIL() << "size-capped write did not fail";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("sink full"), std::string::npos)
        << e.what();
  }
  snapshot::set_io_write_cap_for_testing(0);

  // With the cap lifted the same write goes through atomically again.
  snapshot::write_file_atomic(path, frame);
  EXPECT_EQ(snapshot::read_file(path), frame);
  EXPECT_EQ(std::string(snapshot::to_string(snapshot::IoResult::kOk)), "ok");
  EXPECT_EQ(std::string(snapshot::to_string(snapshot::IoResult::kIoError)),
            "io-error");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sgxpl
