#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include <sstream>

#include "common/check.h"
#include "trace/workloads.h"

namespace sgxpl::trace {
namespace {

TEST(TraceIo, RoundTripThroughStream) {
  Trace t("unit", 500);
  t.append({.page = 1, .site = 2, .gap = 3});
  t.append({.page = 400, .site = 0, .gap = 0});
  std::stringstream ss;
  write_trace(ss, t);
  const Trace back = read_trace(ss);
  EXPECT_EQ(back.name(), "unit");
  EXPECT_EQ(back.elrange_pages(), 500u);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.accesses()[0].page, 1u);
  EXPECT_EQ(back.accesses()[0].site, 2u);
  EXPECT_EQ(back.accesses()[0].gap, 3u);
  EXPECT_EQ(back.accesses()[1].page, 400u);
}

TEST(TraceIo, EmptyNameRoundTrips) {
  Trace t("", 10);
  t.append({.page = 0, .site = 0, .gap = 1});
  std::stringstream ss;
  write_trace(ss, t);
  const Trace back = read_trace(ss);
  EXPECT_EQ(back.name(), "");
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream ss("not a trace\n");
  EXPECT_THROW(read_trace(ss), CheckFailure);
}

TEST(TraceIo, RejectsTruncatedBody) {
  Trace t("x", 10);
  t.append({.page = 1, .site = 1, .gap = 1});
  t.append({.page = 2, .site = 1, .gap = 1});
  std::stringstream ss;
  write_trace(ss, t);
  std::string text = ss.str();
  text.resize(text.size() - 8);  // chop the last record
  std::stringstream truncated(text);
  EXPECT_THROW(read_trace(truncated), CheckFailure);
}

TEST(TraceIo, FileRoundTripOfWorkloadTrace) {
  const auto* w = find_workload("leela");
  ASSERT_NE(w, nullptr);
  const Trace t = w->make(WorkloadParams{.scale = 0.05, .seed = 3});
  const std::string path = ::testing::TempDir() + "/sgxpl_trace_test.txt";
  save_trace(path, t);
  const Trace back = load_trace(path);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); i += 97) {
    EXPECT_EQ(back.accesses()[i].page, t.accesses()[i].page);
    EXPECT_EQ(back.accesses()[i].gap, t.accesses()[i].gap);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/path/trace.txt"), CheckFailure);
}

TEST(TraceIo, MalformedInputsThrowInsteadOfCrashing) {
  const char* cases[] = {
      "",                                           // empty
      "# sgxpl-trace v1\n",                         // header only
      "# sgxpl-trace v2\nname x\n",                 // wrong version
      "# sgxpl-trace v1\nelrange_pages 5\n",        // keys out of order
      "# sgxpl-trace v1\nname x\nelrange_pages 5\naccesses 2\n1 1 1\n",
      "# sgxpl-trace v1\nname x\nelrange_pages zz\naccesses 0\n",
  };
  for (const char* text : cases) {
    std::stringstream ss(text);
    EXPECT_THROW(read_trace(ss), CheckFailure) << '"' << text << '"';
  }
}

TEST(TraceIo, FuzzedGarbageNeverCrashes) {
  // Random bytes: the reader must throw CheckFailure, never crash or hang.
  Rng rng(0xF122);
  for (int round = 0; round < 200; ++round) {
    std::string garbage;
    const std::size_t len = rng.bounded(300);
    for (std::size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.range(1, 127)));
    }
    std::stringstream ss(garbage);
    EXPECT_THROW(read_trace(ss), CheckFailure) << "round " << round;
  }
}

TEST(TraceIo, HeaderPrefixGarbageBody) {
  // Valid header, then junk where records should be.
  std::stringstream ss(
      "# sgxpl-trace v1\nname g\nelrange_pages 10\naccesses 3\n"
      "1 1 1\nxyzzy\n");
  EXPECT_THROW(read_trace(ss), CheckFailure);
}

}  // namespace
}  // namespace sgxpl::trace
