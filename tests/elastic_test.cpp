// Elastic EPC tests: the AIMD quota controller in isolation (grow/shrink
// dynamics, hysteresis, floors, conservation, spec parsing, serialization)
// and end-to-end through the shared driver (quota-aware eviction, engagement
// rules, and the conservation invariant under every chaos fault class).
#include "sgxsim/elastic_epc.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/multi_enclave.h"
#include "core/simulator.h"
#include "inject/chaos_plan.h"
#include "snapshot/codec.h"
#include "trace/generators.h"

namespace sgxpl::sgxsim {
namespace {

ElasticParams test_params() {
  ElasticParams p;
  p.enabled = true;
  p.floor_pages = 16;
  p.grow_step = 8;
  p.decrease_factor = 0.5;
  p.backpressure_utilization = 0.9;
  p.pressure_faults = 4;
  p.grow_streak = 2;
  p.cooldown_windows = 4;
  p.idle_windows = 8;
  return p;
}

ElasticEpcController make_controller(const ElasticParams& p, PageNum capacity,
                                     const std::vector<PageNum>& elranges) {
  ElasticEpcController c;
  c.configure(p, capacity);
  PageNum lo = 0;
  for (const PageNum pages : elranges) {
    c.add_tenant(lo, pages);
    lo += pages;
  }
  c.finalize();
  return c;
}

/// One window of sustained demand-fault pressure on tenant `t`.
void pressure_window(ElasticEpcController& c, std::size_t t) {
  for (std::uint64_t i = 0; i < 4; ++i) {
    c.note_fault(t);
  }
  c.rebalance(0.0, {});
}

// --- spec parsing -----------------------------------------------------------

TEST(ElasticSpec, RoundTripsThroughTheCanonicalString) {
  ElasticParams p = test_params();
  p.floor_pages = 4;
  p.grow_step = 32;
  p.decrease_factor = 0.75;
  p.backpressure_utilization = 0.8;
  p.pressure_faults = 7;
  p.grow_streak = 3;
  p.cooldown_windows = 9;
  p.idle_windows = 5;
  const auto parsed = parse_elastic_spec(elastic_spec(p));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->enabled);
  EXPECT_EQ(parsed->floor_pages, p.floor_pages);
  EXPECT_EQ(parsed->grow_step, p.grow_step);
  EXPECT_DOUBLE_EQ(parsed->decrease_factor, p.decrease_factor);
  EXPECT_DOUBLE_EQ(parsed->backpressure_utilization,
                   p.backpressure_utilization);
  EXPECT_EQ(parsed->pressure_faults, p.pressure_faults);
  EXPECT_EQ(parsed->grow_streak, p.grow_streak);
  EXPECT_EQ(parsed->cooldown_windows, p.cooldown_windows);
  EXPECT_EQ(parsed->idle_windows, p.idle_windows);
}

TEST(ElasticSpec, EmptyAndDefaultGiveTheDefaults) {
  for (const char* spec : {"", "default"}) {
    const auto parsed = parse_elastic_spec(spec);
    ASSERT_TRUE(parsed.has_value()) << spec;
    EXPECT_TRUE(parsed->enabled);
    EXPECT_EQ(parsed->floor_pages, ElasticParams{}.floor_pages);
    EXPECT_EQ(parsed->grow_step, ElasticParams{}.grow_step);
  }
}

TEST(ElasticSpec, MalformedSpecsNameTheTokenAndPosition) {
  const struct {
    const char* spec;
    const char* want;
  } cases[] = {
      {"floor=0",
       "bad floor '0' at position 6 (want a positive page count)"},
      {"grow=x",
       "bad grow step 'x' at position 5 (want a page count; 0 freezes "
       "growth)"},
      {"decrease=1.5",
       "bad decrease factor '1.5' at position 9 (want a number in (0, 1))"},
      {"util=0",
       "bad backpressure utilization '0' at position 5 (want a number in "
       "(0, 1])"},
      {"pressure=0",
       "bad pressure threshold '0' at position 9 (want a positive fault "
       "count)"},
      {"streak=0",
       "bad grow streak '0' at position 7 (want a positive window count)"},
      {"floor=16,bogus=1",
       "unknown elastic key 'bogus' at position 9 (valid keys: floor, grow, "
       "decrease, util, pressure, streak, cooldown, idle)"},
      {"floor=16,,idle=2", "empty entry at position 9 (remove the extra "
                           "comma)"},
      {"floor=16,", "trailing comma at position 8"},
      {"pressure", "expected key=value, got 'pressure' at position 0"},
      {"streak=", "missing value after '=' at position 6"},
  };
  for (const auto& c : cases) {
    std::string err;
    EXPECT_FALSE(parse_elastic_spec(c.spec, &err).has_value()) << c.spec;
    EXPECT_EQ(err, c.want) << c.spec;
  }
}

// --- lifecycle and the initial split ----------------------------------------

TEST(ElasticController, FinalizeSplitsEvenlyAboveFloorsAndPoolsTheRest) {
  // Tenant 0's 8-page ELRANGE caps both its floor and its share; the pages
  // its cap leaves unclaimed seed the free pool.
  const auto c = make_controller(test_params(), 100, {8, 64, 64});
  EXPECT_EQ(c.tenant_count(), 3u);
  EXPECT_EQ(c.floor(0), 8u);
  EXPECT_EQ(c.floor(1), 16u);
  EXPECT_EQ(c.quota(0), 8u);
  EXPECT_EQ(c.quota(1), 36u);
  EXPECT_EQ(c.quota(2), 36u);
  EXPECT_EQ(c.free_pool(), 20u);
  EXPECT_NO_THROW(c.check_conservation());
}

TEST(ElasticController, OwnerMapsPagesToTheirTenantRanges) {
  const auto c = make_controller(test_params(), 100, {8, 64, 64});
  EXPECT_EQ(c.owner(0), 0u);
  EXPECT_EQ(c.owner(7), 0u);
  EXPECT_EQ(c.owner(8), 1u);
  EXPECT_EQ(c.owner(71), 1u);
  EXPECT_EQ(c.owner(72), 2u);
  EXPECT_EQ(c.owner(135), 2u);
  EXPECT_THROW(c.owner(136), CheckFailure);
}

TEST(ElasticController, FinalizeRefusesAnEpcSmallerThanTheFloors) {
  ElasticEpcController c;
  c.configure(test_params(), 20);
  c.add_tenant(0, 64);
  c.add_tenant(64, 64);
  EXPECT_THROW(c.finalize(), CheckFailure);
}

TEST(ElasticController, TenantRangesMustTileTheAddressSpace) {
  ElasticEpcController c;
  c.configure(test_params(), 100);
  c.add_tenant(0, 64);
  EXPECT_THROW(c.add_tenant(80, 64), CheckFailure);  // gap after page 64
}

// --- AIMD dynamics ----------------------------------------------------------

TEST(ElasticController, GrowRequiresASustainedPressureStreak) {
  auto c = make_controller(test_params(), 100, {8, 64, 64});
  pressure_window(c, 1);  // streak 1 of the required 2: no grant yet
  EXPECT_EQ(c.quota(1), 36u);
  EXPECT_EQ(c.stats().grows, 0u);
  pressure_window(c, 1);  // streak 2: additive grant from the pool
  EXPECT_EQ(c.quota(1), 44u);
  EXPECT_EQ(c.free_pool(), 12u);
  EXPECT_EQ(c.stats().grows, 1u);
  EXPECT_EQ(c.stats().grow_pages, 8u);
  EXPECT_NO_THROW(c.check_conservation());
}

TEST(ElasticController, ACalmWindowResetsThePressureStreak) {
  auto c = make_controller(test_params(), 100, {8, 64, 64});
  pressure_window(c, 1);
  // Three faults are below the pressure threshold: the streak restarts.
  c.note_fault(1);
  c.note_fault(1);
  c.note_fault(1);
  c.rebalance(0.0, {});
  pressure_window(c, 1);  // streak is back to 1, still no grant
  EXPECT_EQ(c.quota(1), 36u);
  EXPECT_EQ(c.stats().grows, 0u);
}

TEST(ElasticController, GrowNeverExceedsTheTenantsElrange) {
  auto c = make_controller(test_params(), 100, {8, 64, 64});
  // Tenant 0's quota already spans its whole 8-page ELRANGE.
  pressure_window(c, 0);
  pressure_window(c, 0);
  pressure_window(c, 0);
  EXPECT_EQ(c.quota(0), 8u);
  EXPECT_EQ(c.stats().grows, 0u);
}

TEST(ElasticController, IdleTenantsShrinkMultiplicativelyToTheFloor) {
  auto c = make_controller(test_params(), 100, {8, 64, 64});
  for (int w = 0; w < 7; ++w) {
    c.rebalance(0.0, {});
  }
  EXPECT_EQ(c.stats().shrinks, 0u);  // streak of 7 idle windows: not yet
  c.rebalance(0.0, {});              // the 8th triggers both big tenants
  EXPECT_EQ(c.quota(1), 18u);        // 36 * 0.5
  EXPECT_EQ(c.quota(2), 18u);
  EXPECT_EQ(c.quota(0), 8u);  // already at its floor: untouched
  EXPECT_EQ(c.free_pool(), 56u);
  EXPECT_EQ(c.stats().idle_shrinks, 2u);
  // Another full idle cycle (after the cooldown) clamps at the floor.
  for (int w = 0; w < 8; ++w) {
    c.rebalance(0.0, {});
  }
  EXPECT_EQ(c.quota(1), 16u);
  EXPECT_EQ(c.quota(2), 16u);
  EXPECT_EQ(c.stats().floor_hits, 2u);
  // At the floor the quota can never move again, no matter how idle.
  for (int w = 0; w < 16; ++w) {
    c.rebalance(0.0, {});
  }
  EXPECT_EQ(c.quota(1), 16u);
  EXPECT_NO_THROW(c.check_conservation());
}

TEST(ElasticController, BackpressureFastTracksIdleShrinkToOneWindow) {
  auto c = make_controller(test_params(), 100, {8, 64, 64});
  c.rebalance(0.95, {});  // channel above the backpressure threshold
  EXPECT_EQ(c.quota(1), 18u);
  EXPECT_EQ(c.quota(2), 18u);
  EXPECT_EQ(c.stats().backpressure_shrinks, 2u);
  EXPECT_EQ(c.stats().idle_shrinks, 0u);
  EXPECT_NO_THROW(c.check_conservation());
}

TEST(ElasticController, DemotionShrinksAndCooldownBlocksTheRegrow) {
  auto c = make_controller(test_params(), 100, {8, 64, 64});
  c.note_demotion(1);
  c.rebalance(0.0, {});
  EXPECT_EQ(c.quota(1), 18u);
  EXPECT_EQ(c.stats().demotion_shrinks, 1u);
  // Hysteresis: the freshly shrunk tenant presses hard every window, but
  // its quota is frozen until the cooldown expires — the admission
  // ladder's stop/probe/resume cannot ping-pong it.
  pressure_window(c, 1);
  pressure_window(c, 1);
  pressure_window(c, 1);
  EXPECT_EQ(c.quota(1), 18u);
  EXPECT_EQ(c.stats().grows, 0u);
  pressure_window(c, 1);  // cooldown of 4 has elapsed: the grant lands
  EXPECT_EQ(c.quota(1), 26u);
  EXPECT_EQ(c.stats().grows, 1u);
  EXPECT_NO_THROW(c.check_conservation());
}

TEST(ElasticController, DemotionDuringCooldownIsHeldNotDropped) {
  auto c = make_controller(test_params(), 100, {8, 64, 64});
  c.note_demotion(1);
  c.rebalance(0.0, {});
  ASSERT_EQ(c.quota(1), 18u);
  // A second demotion while frozen: the verdict is remembered and applied
  // once, the first window after the cooldown expires.
  c.note_demotion(1);
  for (int w = 0; w < 3; ++w) {
    c.rebalance(0.0, {});
    EXPECT_EQ(c.quota(1), 18u);
  }
  c.rebalance(0.0, {});
  EXPECT_EQ(c.quota(1), 16u);  // max(floor, 18 * 0.5)
  EXPECT_EQ(c.stats().demotion_shrinks, 2u);
}

TEST(ElasticController, GrantCursorRotatesSoNoTenantIsStarved) {
  // A grow step bigger than the pool: whoever is offered the pool first
  // takes all of it. The cursor has rotated past tenants 0 and 1 by the
  // time the streaks mature, so tenant 2 — not lower-indexed tenant 1 —
  // wins the grant despite an equal claim.
  ElasticParams p = test_params();
  p.grow_step = 32;
  auto c = make_controller(p, 100, {8, 64, 64});
  c.rebalance(0.0, {});  // quiet window: cursor 0 -> 1
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 4; ++i) {
      c.note_fault(1);
      c.note_fault(2);
    }
    c.rebalance(0.0, {});  // cursor 1 -> 2, then the granting window
  }
  EXPECT_EQ(c.quota(2), 56u);  // 36 + the whole 20-page pool
  EXPECT_EQ(c.quota(1), 36u);
  EXPECT_EQ(c.free_pool(), 0u);
  EXPECT_EQ(c.stats().grows, 1u);
  EXPECT_NO_THROW(c.check_conservation());
}

TEST(ElasticController, DrainingTenantsAreCompletelyFrozen) {
  auto c = make_controller(test_params(), 100, {8, 64, 64});
  c.note_demotion(1);
  const std::vector<std::uint8_t> draining = {0, 1, 0};
  for (int w = 0; w < 4; ++w) {
    c.rebalance(0.0, draining);
  }
  // Four windows of a held demotion verdict: nothing moved while draining.
  EXPECT_EQ(c.quota(1), 36u);
  EXPECT_EQ(c.stats().demotion_shrinks, 0u);
  // The drain ends; the held verdict applies on the next window.
  c.rebalance(0.0, {});
  EXPECT_EQ(c.quota(1), 18u);
  EXPECT_EQ(c.stats().demotion_shrinks, 1u);
}

TEST(ElasticController, MostOverQuotaPicksTheDeepestOvercommit) {
  auto c = make_controller(test_params(), 100, {8, 64, 64});
  EXPECT_FALSE(c.most_over_quota().has_value());
  for (PageNum p = 8; p < 48; ++p) {
    c.note_mapped(p);  // tenant 1: 40 resident vs quota 36
  }
  for (PageNum p = 72; p < 74; ++p) {
    c.note_mapped(p);  // tenant 2: 2 resident, under quota
  }
  const auto over = c.most_over_quota();
  ASSERT_TRUE(over.has_value());
  EXPECT_EQ(*over, 1u);
}

TEST(ElasticController, ConservationHoldsThroughArbitraryWindowMixes) {
  auto c = make_controller(test_params(), 100, {8, 64, 64});
  std::uint64_t x = 123456789;  // deterministic LCG event stream
  for (int w = 0; w < 500; ++w) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const auto t = static_cast<std::size_t>((x >> 33) % 3);
    for (std::uint64_t i = 0; i < (x >> 20) % 6; ++i) {
      c.note_fault(t);
    }
    if ((x >> 13) % 7 == 0) {
      c.note_demotion(t);
    }
    std::vector<std::uint8_t> drains(3, 0);
    if ((x >> 5) % 11 == 0) {
      drains[(x >> 8) % 3] = 1;
    }
    c.rebalance(static_cast<double>((x >> 40) % 100) / 100.0, drains);
    ASSERT_NO_THROW(c.check_conservation()) << "window " << w;
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_GE(c.quota(i), c.floor(i)) << "window " << w;
      ASSERT_LE(c.quota(i), c.hi(i) - c.lo(i)) << "window " << w;
    }
  }
}

// --- serialization ----------------------------------------------------------

TEST(ElasticController, SaveLoadRoundTripsMidResize) {
  auto a = make_controller(test_params(), 100, {8, 64, 64});
  pressure_window(a, 1);  // streak 1 in flight — mid-resize evidence
  a.note_demotion(2);
  for (PageNum p = 8; p < 20; ++p) {
    a.note_mapped(p);
  }
  a.note_fault(1);
  a.note_fault(1);

  snapshot::Writer w;
  w.begin_section("ELAS");
  a.save(w);
  w.end_section();
  const auto bytes = w.finish();

  auto b = make_controller(test_params(), 100, {8, 64, 64});
  snapshot::Reader r(bytes);
  r.enter_section("ELAS");
  b.load(r);
  r.leave_section();

  EXPECT_EQ(b.quota(1), a.quota(1));
  EXPECT_EQ(b.resident(1), a.resident(1));
  EXPECT_EQ(b.free_pool(), a.free_pool());
  EXPECT_EQ(b.stats().rebalance_ticks, a.stats().rebalance_ticks);
  // Both controllers finish the in-flight window identically: the pending
  // demotion fires and the half-built pressure streak keeps building.
  for (auto* c : {&a, &b}) {
    c->note_fault(1);
    c->note_fault(1);
    c->rebalance(0.0, {});
    c->rebalance(0.0, {});
  }
  EXPECT_EQ(b.quota(1), a.quota(1));
  EXPECT_EQ(b.quota(2), a.quota(2));
  EXPECT_EQ(b.free_pool(), a.free_pool());
  EXPECT_EQ(b.stats().grows, a.stats().grows);
  EXPECT_EQ(b.stats().demotion_shrinks, a.stats().demotion_shrinks);
}

TEST(ElasticController, LoadRefusesAForeignGeometry) {
  auto a = make_controller(test_params(), 100, {8, 64, 64});
  snapshot::Writer w;
  w.begin_section("ELAS");
  a.save(w);
  w.end_section();
  const auto bytes = w.finish();

  auto wrong_capacity = make_controller(test_params(), 120, {8, 64, 64});
  snapshot::Reader r1(bytes);
  r1.enter_section("ELAS");
  EXPECT_THROW(wrong_capacity.load(r1), CheckFailure);

  auto wrong_ranges = make_controller(test_params(), 100, {8, 32, 96});
  snapshot::Reader r2(bytes);
  r2.enter_section("ELAS");
  EXPECT_THROW(wrong_ranges.load(r2), CheckFailure);
}

}  // namespace
}  // namespace sgxpl::sgxsim

// --- end-to-end through the shared driver -----------------------------------

namespace sgxpl::core {
namespace {

trace::Trace seq_trace(PageNum pages, Cycles gap, std::uint64_t seed = 1) {
  trace::Trace t("seq", pages + 8);
  Rng rng(seed);
  trace::seq_scan(t, rng, trace::Region{0, pages}, 1,
                  trace::GapModel{.mean = gap, .jitter_pct = 0});
  return t;
}

SimConfig shared_config(PageNum epc) {
  SimConfig cfg;
  cfg.enclave.epc_pages = epc;
  cfg.dfp.predictor.stream_list_len = 8;
  return cfg;
}

TEST(MultiEnclaveElastic, DisabledLeavesTheResultEmpty) {
  const auto a = seq_trace(64, 2'000, 1);
  const auto b = seq_trace(64, 2'000, 2);
  MultiEnclaveSimulator multi(shared_config(96));
  const auto r = multi.run({EnclaveApp{&a, Scheme::kBaseline, nullptr},
                            EnclaveApp{&b, Scheme::kBaseline, nullptr}});
  EXPECT_TRUE(r.elastic_quotas.empty());
  EXPECT_EQ(r.elastic.rebalance_ticks, 0u);
  EXPECT_EQ(r.elastic.quota_evictions, 0u);
}

TEST(MultiEnclaveElastic, ConfigFlagAloneNeverEngagesASoloRun) {
  // Elastic partitioning is a multi-tenant concern: a single-enclave run
  // with the flag set is cycle-identical to one without it.
  const auto t = seq_trace(96, 2'000, 1);
  SimConfig cfg = shared_config(64);
  const auto plain = simulate(t, cfg);
  cfg.enclave.elastic.enabled = true;
  const auto flagged = simulate(t, cfg);
  EXPECT_EQ(flagged.total_cycles, plain.total_cycles);
  EXPECT_EQ(flagged.enclave_faults, plain.enclave_faults);
  EXPECT_EQ(flagged.driver.evictions, plain.driver.evictions);
}

TEST(MultiEnclaveElastic, FrozenQuotasEvictTheOvercommittedTenantsOwnPages) {
  // Two tenants whose scans each overflow their frozen half of the EPC:
  // quota enforcement evicts within the overcommitted tenant's own range
  // (the deferred-shrink reclaim), and the final quotas stay conserved.
  const auto a = seq_trace(96, 20'000, 1);
  const auto b = seq_trace(96, 20'000, 2);
  SimConfig cfg = shared_config(64);
  cfg.validate = true;
  cfg.enclave.watchdog_scan_interval = 8;
  cfg.enclave.elastic.enabled = true;
  cfg.enclave.elastic.grow_step = 0;   // the fixed-partition arm
  cfg.enclave.elastic.idle_windows = 0;
  MultiEnclaveSimulator multi(cfg);
  const auto r = multi.run({EnclaveApp{&a, Scheme::kDfpStop, nullptr},
                            EnclaveApp{&b, Scheme::kBaseline, nullptr}});
  ASSERT_EQ(r.elastic_quotas.size(), 2u);
  PageNum granted = 0;
  for (const PageNum q : r.elastic_quotas) {
    EXPECT_GE(q, 16u);  // never below the floor
    granted += q;
  }
  EXPECT_LE(granted, 64u);
  EXPECT_GT(r.elastic.rebalance_ticks, 0u);
  EXPECT_GT(r.elastic.quota_evictions, 0u);
  EXPECT_EQ(r.elastic.grows, 0u);  // frozen: the split never moved
  EXPECT_EQ(r.elastic.shrinks, 0u);
}

// Conservation under every chaos fault class: the watchdog checks
// sum(quotas) + pool == physical EPC at every online interval while faults
// hammer the channel, the bitmap, completions, the scan thread, the EPC
// itself (kEpcSqueeze composes with quotas) and the predictor — and the
// whole quota schedule replays bit-identically under the same plan + seed.
class ElasticChaosSweep : public ::testing::TestWithParam<inject::FaultKind> {
};

TEST_P(ElasticChaosSweep, ConservationHoldsAndReplayIsIdentical) {
  const auto a = seq_trace(96, 4'000, 1);
  const auto b = seq_trace(64, 4'000, 2);
  const auto c = seq_trace(48, 4'000, 3);
  SimConfig cfg = shared_config(96);
  cfg.validate = true;
  cfg.enclave.watchdog_scan_interval = 8;
  cfg.chaos.seed = 77;
  cfg.chaos.enable(GetParam());
  cfg.enclave.channel.max_queued = 24;
  cfg.enclave.channel.max_retries = 3;
  cfg.enclave.admission.enabled = true;
  cfg.enclave.elastic.enabled = true;
  const auto run = [&] {
    MultiEnclaveSimulator multi(cfg);
    return multi.run({EnclaveApp{&a, Scheme::kDfpStop, nullptr},
                      EnclaveApp{&b, Scheme::kDfpStop, nullptr},
                      EnclaveApp{&c, Scheme::kBaseline, nullptr}});
  };
  const auto r1 = run();
  const auto r2 = run();
  ASSERT_EQ(r1.elastic_quotas.size(), 3u);
  PageNum granted = 0;
  for (const PageNum q : r1.elastic_quotas) {
    granted += q;
  }
  EXPECT_LE(granted, 96u);
  EXPECT_GT(r1.driver.watchdog_checks, 0u);
  EXPECT_GT(r1.elastic.rebalance_ticks, 0u);
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.elastic_quotas, r2.elastic_quotas);
  EXPECT_EQ(r1.elastic.grows, r2.elastic.grows);
  EXPECT_EQ(r1.elastic.shrinks, r2.elastic.shrinks);
  EXPECT_EQ(r1.elastic.quota_evictions, r2.elastic.quota_evictions);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ElasticChaosSweep, ::testing::ValuesIn(inject::all_fault_kinds()),
    [](const ::testing::TestParamInfo<inject::FaultKind>& pinfo) {
      std::string n = inject::to_string(pinfo.param);
      for (auto& ch : n) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return n;
    });

}  // namespace
}  // namespace sgxpl::core
