// Regenerates the current-era half of the golden snapshot corpus from the
// recipe in golden_recipe.h:
//
//   golden_gen <output-dir>
//
// writes single-<case>.snap for every single-enclave case plus multi.snap,
// in the snapshot format this build writes. Files produced by an older
// format era (tests/golden/v1/) are frozen artifacts and can never be
// regenerated — see tests/golden/README.md.
#include <cstddef>
#include <cstdio>
#include <string>

#include "golden_recipe.h"
#include "snapshot/codec.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: golden_gen <output-dir>\n");
    return 2;
  }
  using namespace sgxpl;
  const std::string dir = argv[1];
  for (const std::string& name : golden::single_case_names()) {
    const std::string path = dir + "/single-" + name + ".snap";
    snapshot::write_file_atomic(path, golden::make_single(name));
    std::printf("wrote %s\n", path.c_str());
  }
  const std::string multi_path = dir + "/multi.snap";
  snapshot::write_file_atomic(multi_path, golden::make_multi());
  std::printf("wrote %s\n", multi_path.c_str());
  // Chain golden: named so `<base>.delta-N` matches the runtime layout —
  // verify-chain and restore_chain_from_files work on the corpus directly.
  const std::string chain_base = dir + "/chain-dfpstop.snap";
  const auto chain = golden::make_chain();
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const std::string path =
        i == 0 ? chain_base : snapshot::delta_path(chain_base, i);
    snapshot::write_file_atomic(path, chain[i]);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
