#include "obs/event_log.h"

#include <gtest/gtest.h>

#include "sgxsim/driver.h"

namespace sgxpl::sgxsim {
namespace {

using obs::EventLog;
using obs::EventType;

TEST(EventLog, RecordsAndRenders) {
  EventLog log;
  log.record({.at = 10, .type = EventType::kFault, .page = 3});
  log.record({.at = 20,
              .type = EventType::kLoadScheduled,
              .page = 3,
              .aux = 64'020,
              .detail = "demand"});
  ASSERT_EQ(log.events().size(), 2u);
  const std::string out = log.render();
  EXPECT_NE(out.find("FAULT(AEX)"), std::string::npos);
  EXPECT_NE(out.find("page=3"), std::string::npos);
  EXPECT_NE(out.find("[demand]"), std::string::npos);
  EXPECT_NE(out.find("until t=64020"), std::string::npos);
}

TEST(EventLog, RingBufferKeepsMostRecentAndCountsDrops) {
  EventLog log(/*capacity=*/3);
  for (int i = 0; i < 10; ++i) {
    log.record({.at = static_cast<Cycles>(i), .type = EventType::kScan});
  }
  const auto events = log.events();
  ASSERT_EQ(events.size(), 3u);
  // Ring semantics: the *oldest* events fall off; the most recent window
  // (t=7,8,9) survives, in chronological order.
  EXPECT_EQ(events[0].at, 7u);
  EXPECT_EQ(events[1].at, 8u);
  EXPECT_EQ(events[2].at, 9u);
  EXPECT_EQ(log.dropped(), 7u);
  EXPECT_NE(log.render().find("7 older events dropped"), std::string::npos);
  log.clear();
  EXPECT_TRUE(log.events().empty());
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLog, ZeroCapacityDropsEverything) {
  EventLog log(/*capacity=*/0);
  log.record({.at = 1, .type = EventType::kScan});
  EXPECT_TRUE(log.events().empty());
  EXPECT_EQ(log.dropped(), 1u);
}

TEST(EventLog, EveryEventTypeHasAName) {
  for (const auto t :
       {EventType::kFault, EventType::kLoadScheduled, EventType::kLoadCommitted,
        EventType::kLoadsAborted, EventType::kEviction, EventType::kResume,
        EventType::kSipRequest, EventType::kSipPrefetch, EventType::kScan}) {
    EXPECT_STRNE(to_string(t), "?");
  }
}

TEST(EventLog, DriverEmitsOrderedFaultSequence) {
  EnclaveConfig cfg;
  cfg.elrange_pages = 16;
  cfg.epc_pages = 8;
  Driver d(cfg, CostModel{});
  EventLog log;
  d.set_event_log(&log);
  d.access(5, 1'000);

  ASSERT_GE(log.events().size(), 4u);
  EXPECT_EQ(log.events()[0].type, EventType::kFault);
  EXPECT_EQ(log.events()[0].at, 1'000u);
  EXPECT_EQ(log.events()[1].type, EventType::kLoadScheduled);
  EXPECT_EQ(log.events()[2].type, EventType::kLoadCommitted);
  EXPECT_EQ(log.events()[3].type, EventType::kResume);
  // The resume lands AEX+load+ERESUME after the fault.
  EXPECT_EQ(log.events()[3].at, 1'000u + 64'000u);
}

TEST(EventLog, DriverEmitsSipAndEvictionEvents) {
  EnclaveConfig cfg;
  cfg.elrange_pages = 16;
  cfg.epc_pages = 2;
  Driver d(cfg, CostModel{});
  EventLog log;
  d.set_event_log(&log);
  Cycles now = d.sip_load(0, 0);
  now = std::max(now, d.access(1, now).completion);
  d.sip_prefetch(2, now);  // forces an eviction when it commits
  d.drain();

  bool saw_sip = false;
  bool saw_prefetch = false;
  bool saw_evict = false;
  for (const auto& e : log.events()) {
    saw_sip = saw_sip || e.type == EventType::kSipRequest;
    saw_prefetch = saw_prefetch || e.type == EventType::kSipPrefetch;
    saw_evict = saw_evict || e.type == EventType::kEviction;
  }
  EXPECT_TRUE(saw_sip);
  EXPECT_TRUE(saw_prefetch);
  EXPECT_TRUE(saw_evict);
}

TEST(EventLog, DetachingStopsRecording) {
  EnclaveConfig cfg;
  cfg.elrange_pages = 16;
  cfg.epc_pages = 8;
  Driver d(cfg, CostModel{});
  EventLog log;
  d.set_event_log(&log);
  d.access(1, 0);
  const auto count = log.events().size();
  d.set_event_log(nullptr);
  d.access(2, 1'000'000);
  EXPECT_EQ(log.events().size(), count);
}

}  // namespace
}  // namespace sgxpl::sgxsim
