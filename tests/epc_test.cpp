#include "sgxsim/epc.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "sgxsim/page_table.h"

namespace sgxpl::sgxsim {
namespace {

TEST(Epc, CapacityAccounting) {
  Epc epc(4);
  EXPECT_EQ(epc.capacity(), 4u);
  EXPECT_EQ(epc.used(), 0u);
  EXPECT_EQ(epc.free_slots(), 4u);
  EXPECT_FALSE(epc.full());
}

TEST(Epc, RejectsZeroCapacity) {
  EXPECT_THROW(Epc(0), CheckFailure);
}

TEST(Epc, AllocateUntilFull) {
  Epc epc(3);
  std::set<SlotIndex> slots;
  for (PageNum p = 0; p < 3; ++p) {
    slots.insert(epc.allocate(p));
  }
  EXPECT_EQ(slots.size(), 3u);  // distinct slots
  EXPECT_TRUE(epc.full());
  EXPECT_THROW(epc.allocate(99), CheckFailure);
}

TEST(Epc, ReleaseMakesSlotReusable) {
  Epc epc(2);
  const auto s0 = epc.allocate(10);
  epc.allocate(11);
  EXPECT_TRUE(epc.full());
  epc.release(s0);
  EXPECT_FALSE(epc.full());
  EXPECT_EQ(epc.page_at(s0), kInvalidPage);
  const auto s2 = epc.allocate(12);
  EXPECT_EQ(s2, s0);  // freed slot handed out again
  EXPECT_EQ(epc.page_at(s2), 12u);
}

TEST(Epc, ReleaseFreeSlotThrows) {
  Epc epc(2);
  const auto s = epc.allocate(1);
  epc.release(s);
  EXPECT_THROW(epc.release(s), CheckFailure);
}

TEST(Epc, VictimRequiresOccupiedSlot) {
  Epc epc(2);
  PageTable pt(10);
  EXPECT_THROW(epc.choose_victim(pt), CheckFailure);
}

TEST(Epc, ClockPrefersUnaccessedPage) {
  Epc epc(3);
  PageTable pt(10);
  for (PageNum p = 0; p < 3; ++p) {
    pt.map(p, epc.allocate(p), false);
  }
  pt.touch(0);
  pt.touch(2);
  // Page 1 is the only one without its access bit set.
  EXPECT_EQ(epc.choose_victim(pt), 1u);
}

TEST(Epc, ClockGivesSecondChance) {
  Epc epc(2);
  PageTable pt(10);
  pt.map(0, epc.allocate(0), false);
  pt.map(1, epc.allocate(1), false);
  pt.touch(0);
  pt.touch(1);
  // All accessed: the first sweep clears bits, the second finds a victim.
  const PageNum victim = epc.choose_victim(pt);
  EXPECT_TRUE(victim == 0 || victim == 1);
  // Access bits were consumed by the sweep.
  EXPECT_FALSE(pt.entry(0).accessed);
  EXPECT_FALSE(pt.entry(1).accessed);
}

TEST(Epc, ClockSkipsPinnedPage) {
  Epc epc(2);
  PageTable pt(10);
  pt.map(0, epc.allocate(0), false);
  pt.map(1, epc.allocate(1), false);
  // Even with all bits clear, the pinned page must not be chosen.
  EXPECT_EQ(epc.choose_victim(pt, /*pinned=*/0), 1u);
  // Even when the only alternative carries a set access bit, the pinned
  // page is still skipped (second chance consumes the bit instead).
  pt.touch(1);
  EXPECT_EQ(epc.choose_victim(pt, /*pinned=*/0), 1u);
}

TEST(Epc, ClockHandAdvances) {
  Epc epc(4);
  PageTable pt(10);
  for (PageNum p = 0; p < 4; ++p) {
    pt.map(p, epc.allocate(p), false);
  }
  // No access bits set: successive victims walk the hand across slots and
  // must be distinct pages.
  const PageNum v1 = epc.choose_victim(pt);
  pt.unmap(v1);
  epc.release(static_cast<SlotIndex>(v1));  // slot == page in fill order
  const PageNum v2 = epc.choose_victim(pt);
  EXPECT_NE(v1, v2);
}

}  // namespace
}  // namespace sgxpl::sgxsim
