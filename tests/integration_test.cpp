// End-to-end integration: the complete pipelines the benches rely on,
// asserted at reduced scale so the whole paper story is covered by ctest.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.h"
#include "core/multi_enclave.h"
#include "core/simulator.h"
#include "sip/pipeline.h"
#include "trace/trace_io.h"
#include "trace/workloads.h"

namespace sgxpl {
namespace {

constexpr double kScale = 0.12;

core::SimConfig platform(core::Scheme scheme = core::Scheme::kBaseline) {
  auto cfg = core::paper_platform(scheme);
  cfg.enclave.epc_pages = static_cast<PageNum>(
      static_cast<double>(cfg.enclave.epc_pages) * kScale);
  return cfg;
}

core::ExperimentOptions opts() {
  return {.scale = kScale, .train_scale = kScale * 0.35};
}

TEST(Integration, Fig8StoryDfpWinLossAndRescue) {
  // Regular workload gains; irregular workload loses; stop valve rescues.
  const auto micro = core::compare_schemes(
      "microbenchmark", {core::Scheme::kDfp, core::Scheme::kDfpStop},
      platform(), opts());
  EXPECT_GT(micro.find(core::Scheme::kDfp)->improvement, 0.10);

  const auto sjeng = core::compare_schemes(
      "deepsjeng", {core::Scheme::kDfp, core::Scheme::kDfpStop}, platform(),
      opts());
  EXPECT_LT(sjeng.find(core::Scheme::kDfp)->improvement, -0.10);
  EXPECT_GT(sjeng.find(core::Scheme::kDfpStop)->improvement, -0.02);
  EXPECT_TRUE(sjeng.find(core::Scheme::kDfpStop)->metrics.dfp_stopped);
}

TEST(Integration, Fig10StorySipRanking) {
  const auto sjeng =
      core::compare_schemes("deepsjeng", {core::Scheme::kSip}, platform(),
                            opts());
  const auto mcf =
      core::compare_schemes("mcf", {core::Scheme::kSip}, platform(), opts());
  const auto lbm =
      core::compare_schemes("lbm", {core::Scheme::kSip}, platform(), opts());
  // deepsjeng gains clearly; mcf is a wash; lbm has no points.
  EXPECT_GT(sjeng.find(core::Scheme::kSip)->improvement, 0.05);
  EXPECT_NEAR(mcf.find(core::Scheme::kSip)->improvement, 0.0, 0.04);
  EXPECT_EQ(lbm.sip_points, 0u);
  EXPECT_DOUBLE_EQ(lbm.find(core::Scheme::kSip)->normalized, 1.0);
  // SIP cuts deepsjeng's faults by more than half (paper: >70%).
  EXPECT_LT(sjeng.find(core::Scheme::kSip)->metrics.enclave_faults,
            sjeng.baseline.enclave_faults / 2);
}

TEST(Integration, Fig12StoryHybridTracksBest) {
  for (const char* name : {"deepsjeng", "lbm"}) {
    const auto c = core::compare_schemes(
        name,
        {core::Scheme::kSip, core::Scheme::kDfpStop, core::Scheme::kHybrid},
        platform(), opts());
    const double best = std::min(c.find(core::Scheme::kSip)->normalized,
                                 c.find(core::Scheme::kDfpStop)->normalized);
    EXPECT_LE(c.find(core::Scheme::kHybrid)->normalized, best + 0.03) << name;
  }
}

TEST(Integration, Fig13StoryHybridBeatsBothOnMixedBlood) {
  const auto c = core::compare_schemes(
      "mixed-blood",
      {core::Scheme::kSip, core::Scheme::kDfpStop, core::Scheme::kHybrid},
      platform(), opts());
  const double sip = c.find(core::Scheme::kSip)->improvement;
  const double dfp = c.find(core::Scheme::kDfpStop)->improvement;
  const double hybrid = c.find(core::Scheme::kHybrid)->improvement;
  EXPECT_GT(hybrid, sip);
  EXPECT_GT(hybrid, dfp);
  EXPECT_GT(dfp, sip);  // the paper's ordering: 7.1 > 6.0 > 1.6
}

TEST(Integration, Table2StoryPointCounts) {
  // The exact paper counts need the paper-sized profiling run: the
  // borderline sites (deepsjeng's eval instructions at ~4% irregular)
  // wobble across the 5% threshold on very small train inputs.
  const auto cfg = platform();
  auto points = [&](const char* name) {
    return sip::compile_workload(*trace::find_workload(name), cfg.sip,
                                 trace::train_params())
        .plan.points();
  };
  EXPECT_EQ(points("lbm"), 0u);
  EXPECT_EQ(points("microbenchmark"), 0u);
  EXPECT_EQ(points("mcf"), 99u);
  EXPECT_EQ(points("mcf.2006"), 114u);
  EXPECT_EQ(points("deepsjeng"), 35u);
  EXPECT_GT(points("MSER"), 40u);
}

TEST(Integration, VisionStoryRightSchemePerApp) {
  const auto sift = core::compare_schemes(
      "SIFT", {core::Scheme::kDfpStop, core::Scheme::kSip}, platform(),
      opts());
  const auto mser = core::compare_schemes(
      "MSER", {core::Scheme::kDfpStop, core::Scheme::kSip}, platform(),
      opts());
  EXPECT_GT(sift.find(core::Scheme::kDfpStop)->improvement,
            sift.find(core::Scheme::kSip)->improvement);
  EXPECT_GT(mser.find(core::Scheme::kSip)->improvement,
            mser.find(core::Scheme::kDfpStop)->improvement);
}

TEST(Integration, TraceRoundTripPreservesSimulation) {
  const auto t =
      trace::find_workload("xz")->make(trace::ref_params(kScale * 0.5));
  std::stringstream ss;
  trace::write_trace(ss, t);
  const auto back = trace::read_trace(ss);
  const auto cfg = platform(core::Scheme::kDfpStop);
  EXPECT_EQ(core::simulate(t, cfg).total_cycles,
            core::simulate(back, cfg).total_cycles);
}

TEST(Integration, MultiEnclavePairMatchesBenchStory) {
  const auto a =
      trace::find_workload("lbm")->make(trace::ref_params(kScale));
  const auto b =
      trace::find_workload("deepsjeng")->make(trace::ref_params(kScale));
  const auto cfg = platform();

  const auto solo_a = core::simulate(a, cfg);
  core::MultiEnclaveSimulator multi(cfg);
  const auto shared =
      multi.run({core::EnclaveApp{&a, core::Scheme::kBaseline, nullptr},
                 core::EnclaveApp{&b, core::Scheme::kBaseline, nullptr}});
  // Contention: lbm cannot be faster while sharing with deepsjeng.
  EXPECT_GE(shared.per_enclave[0].total_cycles, solo_a.total_cycles);
  // Global driver accounting covers both enclaves.
  EXPECT_GE(shared.driver.faults, shared.per_enclave[0].enclave_faults +
                                      shared.per_enclave[1].enclave_faults);
}

TEST(Integration, LookaheadBeatsConservativeOnIrregularWorkload) {
  auto base_cfg = platform(core::Scheme::kSip);
  const auto conservative =
      core::compare_schemes("xz", {core::Scheme::kSip}, base_cfg, opts());
  base_cfg.sip_lookahead = 8;
  const auto hoisted =
      core::compare_schemes("xz", {core::Scheme::kSip}, base_cfg, opts());
  EXPECT_GT(hoisted.find(core::Scheme::kSip)->improvement,
            conservative.find(core::Scheme::kSip)->improvement);
}

TEST(Integration, NativeRunsAreUnaffectedBySchemes) {
  const auto t =
      trace::find_workload("leela")->make(trace::ref_params(kScale));
  auto cfg = platform(core::Scheme::kNative);
  const auto native = core::simulate(t, cfg);
  EXPECT_EQ(native.enclave_faults, t.stats().footprint_pages);
  EXPECT_EQ(native.total_cycles,
            native.compute_cycles +
                native.enclave_faults * cfg.costs.native_fault);
}

}  // namespace
}  // namespace sgxpl
