#include "sgxsim/paging_channel.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace sgxpl::sgxsim {
namespace {

TEST(PagingChannel, SchedulesAtEarliestWhenIdle) {
  PagingChannel ch;
  const auto& op = ch.schedule(100, 50, 1, OpKind::kDemandLoad);
  EXPECT_EQ(op.start, 100u);
  EXPECT_EQ(op.end, 150u);
}

TEST(PagingChannel, SerializesBackToBack) {
  PagingChannel ch;
  ch.schedule(0, 100, 1, OpKind::kDemandLoad);
  const auto& op2 = ch.schedule(10, 100, 2, OpKind::kDfpPreload);
  // Op 2 wants to start at 10 but the channel is busy until 100.
  EXPECT_EQ(op2.start, 100u);
  EXPECT_EQ(op2.end, 200u);
  EXPECT_EQ(ch.next_free(0), 200u);
}

TEST(PagingChannel, NonPreemptible) {
  PagingChannel ch;
  ch.schedule(0, 100, 1, OpKind::kDfpPreload);
  // At t=50 the op is in flight; aborting must not remove it.
  const auto aborted = ch.abort_not_started(50);
  EXPECT_TRUE(aborted.empty());
  EXPECT_TRUE(ch.find(1).has_value());
}

TEST(PagingChannel, AbortRemovesOnlyNotStarted) {
  PagingChannel ch;
  ch.schedule(0, 100, 1, OpKind::kDfpPreload);   // in flight at t=50
  ch.schedule(0, 100, 2, OpKind::kDfpPreload);   // starts at 100
  ch.schedule(0, 100, 3, OpKind::kDfpPreload);   // starts at 200
  const auto aborted = ch.abort_not_started(50);
  EXPECT_EQ(aborted.size(), 2u);
  EXPECT_EQ(aborted[0].page, 2u);
  EXPECT_EQ(aborted[1].page, 3u);
  EXPECT_TRUE(ch.find(1).has_value());
  EXPECT_FALSE(ch.find(2).has_value());
  EXPECT_EQ(ch.ops_aborted(), 2u);
}

TEST(PagingChannel, AbortFiltersByKind) {
  PagingChannel ch;
  ch.schedule(0, 100, 1, OpKind::kDemandLoad);  // in flight
  ch.schedule(0, 100, 2, OpKind::kDfpPreload);
  ch.schedule(0, 100, 3, OpKind::kSipLoad);
  ch.schedule(0, 100, 4, OpKind::kDfpPreload);
  const auto aborted = ch.abort_not_started(10, OpKind::kDfpPreload);
  EXPECT_EQ(aborted.size(), 2u);
  // The SIP load survives and slides forward into the freed time.
  const auto sip = ch.find(3);
  ASSERT_TRUE(sip.has_value());
  EXPECT_EQ(sip->start, 100u);
  EXPECT_EQ(sip->end, 200u);
}

TEST(PagingChannel, AbortRepacksSurvivors) {
  PagingChannel ch;
  ch.schedule(0, 100, 1, OpKind::kDemandLoad);   // [0,100) in flight
  ch.schedule(0, 100, 2, OpKind::kDfpPreload);   // [100,200)
  ch.schedule(0, 100, 3, OpKind::kSipLoad);      // [200,300)
  ch.abort_not_started(10, OpKind::kDfpPreload);
  const auto op3 = ch.find(3);
  ASSERT_TRUE(op3.has_value());
  EXPECT_EQ(op3->start, 100u);  // slid into page 2's aborted slot
  // New ops schedule after the repacked queue.
  const auto& op4 = ch.schedule(0, 50, 4, OpKind::kDemandLoad);
  EXPECT_EQ(op4.start, 200u);
}

TEST(PagingChannel, CollectCompletedInOrder) {
  PagingChannel ch;
  ch.schedule(0, 10, 1, OpKind::kDemandLoad);
  ch.schedule(0, 10, 2, OpKind::kDemandLoad);
  ch.schedule(0, 10, 3, OpKind::kDemandLoad);
  const auto done = ch.collect_completed(20);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].page, 1u);
  EXPECT_EQ(done[1].page, 2u);
  EXPECT_EQ(ch.queued(), 1u);
  EXPECT_TRUE(ch.collect_completed(20).empty());  // idempotent
}

TEST(PagingChannel, FindLocatesQueuedOp) {
  PagingChannel ch;
  EXPECT_FALSE(ch.find(9).has_value());
  ch.schedule(0, 10, 9, OpKind::kSipLoad);
  const auto op = ch.find(9);
  ASSERT_TRUE(op.has_value());
  EXPECT_EQ(op->kind, OpKind::kSipLoad);
}

TEST(PagingChannel, IdleAndCompletionTime) {
  PagingChannel ch;
  EXPECT_TRUE(ch.idle(0));
  EXPECT_EQ(ch.completion_time(), 0u);
  ch.schedule(0, 100, 1, OpKind::kDemandLoad);
  ch.schedule(0, 100, 2, OpKind::kDemandLoad);
  EXPECT_FALSE(ch.idle(150));
  EXPECT_TRUE(ch.idle(200));
  EXPECT_EQ(ch.completion_time(), 200u);
}

TEST(PagingChannel, BusyOverlap) {
  PagingChannel ch;
  ch.schedule(100, 100, 1, OpKind::kDemandLoad);  // busy [100,200)
  EXPECT_EQ(ch.busy_overlap(0, 100), 0u);
  EXPECT_EQ(ch.busy_overlap(150, 250), 50u);
  EXPECT_EQ(ch.busy_overlap(0, 1000), 100u);
  EXPECT_EQ(ch.busy_overlap(120, 180), 60u);
  EXPECT_EQ(ch.busy_overlap(300, 200), 0u);  // inverted interval
}

TEST(PagingChannel, ParallelModeStartsImmediately) {
  PagingChannel ch(/*serial=*/false);
  const auto& a = ch.schedule(0, 100, 1, OpKind::kDemandLoad);
  const auto& b = ch.schedule(0, 50, 2, OpKind::kDemandLoad);
  EXPECT_EQ(a.start, 0u);
  EXPECT_EQ(b.start, 0u);
  const auto done = ch.collect_completed(60);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].page, 2u);  // shorter op completes first
}

TEST(PagingChannel, ZeroDurationRejected) {
  PagingChannel ch;
  EXPECT_THROW(ch.schedule(0, 0, 1, OpKind::kDemandLoad), CheckFailure);
}

TEST(PagingChannel, TryScheduleRejectsWhenBounded) {
  ChannelConfig cfg;
  cfg.max_queued = 2;
  PagingChannel ch(/*serial=*/true, cfg);
  EXPECT_TRUE(ch.bounded());
  EXPECT_EQ(ch.try_schedule(0, 100, 1, OpKind::kDfpPreload),
            AdmissionResult::kAdmitted);
  EXPECT_EQ(ch.try_schedule(0, 100, 2, OpKind::kDfpPreload),
            AdmissionResult::kAdmitted);
  EXPECT_TRUE(ch.full());
  EXPECT_EQ(ch.try_schedule(0, 100, 3, OpKind::kDfpPreload),
            AdmissionResult::kRejectedFull);
  EXPECT_EQ(ch.queued(), 2u);
  EXPECT_EQ(ch.ops_rejected(), 1u);
  // Rejection does not consume an op id.
  EXPECT_EQ(ch.ops_scheduled(), 2u);
  // Demand loads bypass the bound entirely.
  ch.schedule_priority(0, 100, 4, OpKind::kDemandLoad);
  EXPECT_EQ(ch.queued(), 3u);
}

TEST(PagingChannel, UnboundedTrySchedulesLikeSchedule) {
  PagingChannel ch;
  for (PageNum p = 1; p <= 64; ++p) {
    EXPECT_EQ(ch.try_schedule(0, 10, p, OpKind::kDfpPreload),
              AdmissionResult::kAdmitted);
  }
  EXPECT_EQ(ch.queued(), 64u);
  EXPECT_EQ(ch.ops_rejected(), 0u);
}

TEST(PagingChannel, ShedNewestPreloadSkipsInFlightAndDemand) {
  PagingChannel ch;
  ch.schedule(0, 100, 1, OpKind::kDfpPreload);   // in flight at t=50
  ch.schedule(0, 100, 2, OpKind::kDfpPreload);   // [100,200)
  ch.schedule(0, 100, 3, OpKind::kDemandLoad);   // [200,300)
  ch.schedule(0, 100, 4, OpKind::kDfpPreload);   // [300,400) — newest preload
  const auto shed = ch.shed_newest_preload(50);
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->page, 4u);
  EXPECT_EQ(ch.ops_shed(), 1u);
  // The in-flight preload is immovable; the next shed takes page 2 and the
  // demand load slides into its slot.
  const auto shed2 = ch.shed_newest_preload(50);
  ASSERT_TRUE(shed2.has_value());
  EXPECT_EQ(shed2->page, 2u);
  const auto demand = ch.find(3);
  ASSERT_TRUE(demand.has_value());
  EXPECT_EQ(demand->start, 100u);
  // Only the in-flight preload and the demand load remain — nothing left
  // to shed.
  EXPECT_FALSE(ch.shed_newest_preload(50).has_value());
  EXPECT_EQ(ch.queued(), 2u);
}

TEST(PagingChannel, DeadlineSlackSurvivesRepack) {
  PagingChannel ch;
  ch.schedule(0, 100, 1, OpKind::kDemandLoad);                  // [0,100)
  ch.schedule(0, 100, 2, OpKind::kDfpPreload, 0, 0, 500);       // [100,200)
  ch.schedule(0, 100, 3, OpKind::kDfpPreload, 0, 0, 500);       // [200,300)
  {
    const auto op3 = ch.find(3);
    ASSERT_TRUE(op3.has_value());
    EXPECT_EQ(op3->deadline, 300u + 500u);
  }
  // Shedding page 2 slides page 3 earlier; its deadline slides with its
  // end, preserving the slack.
  ASSERT_TRUE(ch.cancel_not_started(2, 50));
  const auto op3 = ch.find(3);
  ASSERT_TRUE(op3.has_value());
  EXPECT_EQ(op3->end, 200u);
  EXPECT_EQ(op3->deadline, 200u + 500u);
}

TEST(PagingChannel, QueuedPreloadsPerTenant) {
  PagingChannel ch;
  ch.schedule(0, 100, 1, OpKind::kDfpPreload, ProcessId{0});
  ch.schedule(0, 100, 2, OpKind::kDfpPreload, ProcessId{1});
  ch.schedule(0, 100, 3, OpKind::kDfpPreload, ProcessId{1});
  ch.schedule(0, 100, 4, OpKind::kDemandLoad, ProcessId{1});
  EXPECT_EQ(ch.queued_preloads_for(ProcessId{0}), 1u);
  EXPECT_EQ(ch.queued_preloads_for(ProcessId{1}), 2u);
  EXPECT_EQ(ch.queued_preloads_for(ProcessId{2}), 0u);
}

TEST(PagingChannel, AdmissionResultRoundTrips) {
  for (const AdmissionResult r :
       {AdmissionResult::kAdmitted, AdmissionResult::kRejectedFull,
        AdmissionResult::kRejectedQuota, AdmissionResult::kRejectedDegraded}) {
    const auto parsed = parse_admission_result(to_string(r));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, r);
  }
  EXPECT_FALSE(parse_admission_result("bogus").has_value());
}

}  // namespace
}  // namespace sgxpl::sgxsim
