#include <gtest/gtest.h>

#include "common/check.h"
#include "sip/instrumenter.h"
#include "sip/pipeline.h"
#include "sip/profiler.h"
#include "sip/site_classifier.h"
#include "trace/generators.h"
#include "trace/workloads.h"

namespace sgxpl::sip {
namespace {

constexpr ProcessId kPid{0};

TEST(SiteClassifier, FirstAccessIsIrregular) {
  SiteClassifier c;
  EXPECT_EQ(c.classify(kPid, 100), AccessClass::kClass3);
}

TEST(SiteClassifier, SequentialAccessesAreClass2) {
  SiteClassifier c;
  c.classify(kPid, 100);
  EXPECT_EQ(c.classify(kPid, 101), AccessClass::kClass2);
  EXPECT_EQ(c.classify(kPid, 102), AccessClass::kClass2);
}

TEST(SiteClassifier, RepeatedPageIsClass1) {
  SiteClassifier c;
  c.classify(kPid, 100);
  // 100 is now a stream tail: re-touching it is Class 1.
  EXPECT_EQ(c.classify(kPid, 100), AccessClass::kClass1);
}

TEST(SiteClassifier, FarJumpIsClass3) {
  SiteClassifier c;
  c.classify(kPid, 100);
  c.classify(kPid, 101);
  EXPECT_EQ(c.classify(kPid, 5'000), AccessClass::kClass3);
}

TEST(SiteClassifier, ToStringNames) {
  EXPECT_STREQ(to_string(AccessClass::kClass1), "class1");
  EXPECT_STREQ(to_string(AccessClass::kClass2), "class2");
  EXPECT_STREQ(to_string(AccessClass::kClass3), "class3");
}

TEST(Profiler, SequentialSiteProfilesAsClass2) {
  trace::Trace t("t", 10'000);
  Rng rng(1);
  trace::seq_scan(t, rng, trace::Region{0, 2'000}, /*site=*/7,
                  trace::GapModel{.mean = 1, .jitter_pct = 0});
  const SiteProfile p = profile_trace(t);
  const auto* c = p.find(7);
  ASSERT_NE(c, nullptr);
  EXPECT_LT(c->irregular_ratio(), 0.01);
  EXPECT_GT(c->class2, c->class3);
}

TEST(Profiler, RandomSiteProfilesAsClass3) {
  trace::Trace t("t", 100'000);
  Rng rng(2);
  trace::random_access(t, rng, trace::Region{0, 50'000}, 5'000, /*site=*/9,
                       /*sites=*/1, trace::GapModel{.mean = 1, .jitter_pct = 0});
  const SiteProfile p = profile_trace(t);
  const auto* c = p.find(9);
  ASSERT_NE(c, nullptr);
  EXPECT_GT(c->irregular_ratio(), 0.9);
}

TEST(Profiler, CountsPerSiteIndependently) {
  trace::Trace t("t", 100'000);
  Rng rng(3);
  trace::seq_scan(t, rng, trace::Region{0, 1'000}, /*site=*/1,
                  trace::GapModel{.mean = 1, .jitter_pct = 0});
  trace::random_access(t, rng, trace::Region{10'000, 80'000}, 2'000,
                       /*site=*/2, 1,
                       trace::GapModel{.mean = 1, .jitter_pct = 0});
  const SiteProfile p = profile_trace(t);
  EXPECT_EQ(p.sites().size(), 2u);
  EXPECT_EQ(p.total_accesses(), 3'000u);
  EXPECT_LT(p.find(1)->irregular_ratio(), 0.05);
  EXPECT_GT(p.find(2)->irregular_ratio(), 0.9);
}

TEST(SiteCounters, RatioOfEmptyIsZero) {
  SiteCounters c;
  EXPECT_DOUBLE_EQ(c.irregular_ratio(), 0.0);
  EXPECT_EQ(c.total(), 0u);
}

TEST(Instrumenter, ThresholdSelectsIrregularSites) {
  SiteProfile p;
  for (int i = 0; i < 100; ++i) {
    p.add(1, AccessClass::kClass2);                              // 0% irr
    p.add(2, i < 10 ? AccessClass::kClass3 : AccessClass::kClass1);  // 10%
    p.add(3, AccessClass::kClass3);                              // 100%
  }
  const auto plan = build_plan(p, {.irregular_threshold = 0.05,
                                   .min_profiled_accesses = 8});
  EXPECT_FALSE(plan.instrumented(1));
  EXPECT_TRUE(plan.instrumented(2));
  EXPECT_TRUE(plan.instrumented(3));
  EXPECT_EQ(plan.points(), 2u);
}

TEST(Instrumenter, HighThresholdSelectsFewer) {
  SiteProfile p;
  for (int i = 0; i < 100; ++i) {
    p.add(2, i < 10 ? AccessClass::kClass3 : AccessClass::kClass1);
    p.add(3, AccessClass::kClass3);
  }
  const auto strict = build_plan(p, {.irregular_threshold = 0.5,
                                     .min_profiled_accesses = 8});
  EXPECT_EQ(strict.points(), 1u);
  EXPECT_TRUE(strict.instrumented(3));
}

TEST(Instrumenter, MinAccessesFiltersThinSites) {
  SiteProfile p;
  p.add(4, AccessClass::kClass3);  // 100% irregular but only 1 sample
  const auto plan = build_plan(p, {.irregular_threshold = 0.05,
                                   .min_profiled_accesses = 8});
  EXPECT_FALSE(plan.instrumented(4));
  EXPECT_TRUE(plan.empty());
}

TEST(Instrumenter, PlanOrderIsDeterministic) {
  SiteProfile p;
  for (SiteId s = 50; s > 0; --s) {
    for (int i = 0; i < 10; ++i) {
      p.add(s, AccessClass::kClass3);
    }
  }
  const auto plan = build_plan(p);
  ASSERT_EQ(plan.points(), 50u);
  for (std::size_t i = 1; i < plan.sites().size(); ++i) {
    EXPECT_LT(plan.sites()[i - 1], plan.sites()[i]);
  }
}

TEST(InstrumentationPlan, QueriesOutOfRangeSites) {
  InstrumentationPlan plan;
  plan.add_site(5);
  EXPECT_TRUE(plan.instrumented(5));
  EXPECT_FALSE(plan.instrumented(4));
  EXPECT_FALSE(plan.instrumented(10'000'000));
}

TEST(InstrumentationPlan, AddIsIdempotent) {
  InstrumentationPlan plan;
  plan.add_site(5);
  plan.add_site(5);
  EXPECT_EQ(plan.points(), 1u);
}

TEST(Pipeline, SequentialWorkloadGetsNoPoints) {
  const auto* lbm = trace::find_workload("lbm");
  ASSERT_NE(lbm, nullptr);
  const auto result =
      compile_workload(*lbm, {}, trace::train_params(/*scale=*/0.1));
  EXPECT_EQ(result.plan.points(), 0u);  // Table 2: lbm = 0
}

TEST(Pipeline, IrregularWorkloadGetsPoints) {
  const auto* sjeng = trace::find_workload("deepsjeng");
  ASSERT_NE(sjeng, nullptr);
  const auto result =
      compile_workload(*sjeng, {}, trace::train_params(0.1));
  EXPECT_GT(result.plan.points(), 0u);
}

TEST(Pipeline, RejectsUnsupportedWorkload) {
  const auto* bwaves = trace::find_workload("bwaves");
  ASSERT_NE(bwaves, nullptr);
  EXPECT_THROW(compile_workload(*bwaves), CheckFailure);
}

TEST(Pipeline, MicrobenchmarkGetsNoPoints) {
  const auto* micro = trace::find_workload("microbenchmark");
  ASSERT_NE(micro, nullptr);
  const auto result = compile_workload(*micro, {}, trace::train_params(0.05));
  EXPECT_EQ(result.plan.points(), 0u);  // Table 2: microbenchmark = 0
}

}  // namespace
}  // namespace sgxpl::sip
