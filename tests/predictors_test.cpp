#include "dfp/predictors.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "dfp/dfp_engine.h"

namespace sgxpl::dfp {
namespace {

constexpr ProcessId kPid{0};

TEST(NextN, AlwaysPredictsFollowingPages) {
  NextNPredictor p(3);
  EXPECT_EQ(p.on_fault(kPid, 10), (std::vector<PageNum>{11, 12, 13}));
  EXPECT_EQ(p.on_fault(kPid, 500), (std::vector<PageNum>{501, 502, 503}));
  EXPECT_EQ(p.hits(), 2u);
  EXPECT_STREQ(p.name(), "next-n");
}

TEST(NextN, RejectsZeroDepth) {
  EXPECT_THROW(NextNPredictor(0), CheckFailure);
}

TEST(Stride, DetectsForwardStrideAfterConfidence) {
  StridePredictor p(3, /*confidence=*/2);
  EXPECT_TRUE(p.on_fault(kPid, 100).empty());  // no history
  EXPECT_TRUE(p.on_fault(kPid, 107).empty());  // stride 7 seen once
  const auto pred = p.on_fault(kPid, 114);     // stride 7 confirmed
  EXPECT_EQ(pred, (std::vector<PageNum>{121, 128, 135}));
  EXPECT_EQ(p.hits(), 1u);
  EXPECT_EQ(p.misses(), 2u);
}

TEST(Stride, DetectsBackwardStride) {
  StridePredictor p(2, 2);
  p.on_fault(kPid, 100);
  p.on_fault(kPid, 90);
  const auto pred = p.on_fault(kPid, 80);
  EXPECT_EQ(pred, (std::vector<PageNum>{70, 60}));
}

TEST(Stride, BackwardStrideStopsAtZero) {
  StridePredictor p(4, 2);
  p.on_fault(kPid, 20);
  p.on_fault(kPid, 13);
  const auto pred = p.on_fault(kPid, 6);
  // 6-7 < 0: prediction truncates.
  EXPECT_TRUE(pred.empty());
}

TEST(Stride, StrideChangeResetsConfidence) {
  StridePredictor p(2, 2);
  p.on_fault(kPid, 0);
  p.on_fault(kPid, 5);
  p.on_fault(kPid, 10);  // stride 5 confirmed
  EXPECT_EQ(p.hits(), 1u);
  // Stride changes to 3: confidence resets, one observation is not enough.
  EXPECT_TRUE(p.on_fault(kPid, 13).empty());
  // Second stride-3 observation re-reaches confidence.
  EXPECT_EQ(p.on_fault(kPid, 16), (std::vector<PageNum>{19, 22}));
}

TEST(Stride, PerProcessState) {
  StridePredictor p(2, 2);
  p.on_fault(ProcessId{1}, 0);
  p.on_fault(ProcessId{1}, 4);
  p.on_fault(ProcessId{2}, 100);
  p.on_fault(ProcessId{2}, 103);
  // Each process confirms its own stride independently.
  EXPECT_EQ(p.on_fault(ProcessId{1}, 8), (std::vector<PageNum>{12, 16}));
  EXPECT_EQ(p.on_fault(ProcessId{2}, 106), (std::vector<PageNum>{109, 112}));
}

TEST(Stride, SameFaultTwiceIsNotAStride) {
  StridePredictor p(2, 1);
  p.on_fault(kPid, 5);
  EXPECT_TRUE(p.on_fault(kPid, 5).empty());  // stride 0 never predicts
}

TEST(Markov, LearnsRepeatedTransitions) {
  MarkovPredictor p(2);
  // Teach the chain 1 -> 9 -> 42 twice (count >= 2 required).
  for (int i = 0; i < 3; ++i) {
    p.on_fault(kPid, 1);
    p.on_fault(kPid, 9);
    p.on_fault(kPid, 42);
  }
  const auto pred = p.on_fault(kPid, 1);
  EXPECT_EQ(pred, (std::vector<PageNum>{9, 42}));
}

TEST(Markov, SingleSightingIsNoise) {
  MarkovPredictor p(2);
  p.on_fault(kPid, 1);
  p.on_fault(kPid, 9);
  p.on_fault(kPid, 1);
  // 1 -> 9 seen once: below the count threshold.
  EXPECT_TRUE(p.on_fault(kPid, 1).empty() ||
              p.on_fault(kPid, 1).empty());  // never predicts from count 1
}

TEST(Markov, PrefersStrongerSuccessor) {
  MarkovPredictor p(1);
  for (int i = 0; i < 5; ++i) {
    p.on_fault(kPid, 1);
    p.on_fault(kPid, 7);  // 1 -> 7 five times
  }
  p.on_fault(kPid, 1);
  p.on_fault(kPid, 8);  // 1 -> 8 once
  const auto pred = p.on_fault(kPid, 1);
  ASSERT_EQ(pred.size(), 1u);
  EXPECT_EQ(pred[0], 7u);
}

TEST(Markov, ChainStopsAtCycle) {
  MarkovPredictor p(8);
  for (int i = 0; i < 3; ++i) {
    p.on_fault(kPid, 1);
    p.on_fault(kPid, 2);
  }
  // Chain 1 -> 2 -> 1 -> ... must not loop forever.
  const auto pred = p.on_fault(kPid, 1);
  EXPECT_LE(pred.size(), 2u);
}

TEST(Markov, CapacityBoundsLearning) {
  MarkovPredictor p(1, /*capacity=*/4);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    p.on_fault(kPid, rng.bounded(1000));
  }
  EXPECT_LE(p.table_size(), 4u);
}

TEST(Markov, ResetForgets) {
  MarkovPredictor p(1);
  for (int i = 0; i < 3; ++i) {
    p.on_fault(kPid, 1);
    p.on_fault(kPid, 7);
  }
  p.reset();
  EXPECT_TRUE(p.on_fault(kPid, 1).empty());
  EXPECT_EQ(p.table_size(), 0u);
}

TEST(Tournament, LeaderFollowsAccuracy) {
  auto t = make_default_tournament(4);
  // A stride-5 fault pattern: only the stride sub-predictor scores.
  for (PageNum p = 0; p < 500; p += 5) {
    t->on_fault(kPid, p);
  }
  EXPECT_STREQ(t->sub(t->leader()).name(), "stride");
  // Switch to a purely sequential pattern: the stream predictor (or
  // stride, which also catches stride-1) must keep predicting.
  const auto pred = t->on_fault(kPid, 500);
  (void)pred;
  for (PageNum p = 1000; p < 1400; ++p) {
    t->on_fault(kPid, p);
  }
  const auto seq_pred = t->on_fault(kPid, 1400);
  EXPECT_FALSE(seq_pred.empty());
}

TEST(Tournament, EmptySubListRejected) {
  EXPECT_THROW(
      TournamentPredictor(std::vector<std::unique_ptr<PagePredictor>>{}),
      CheckFailure);
}

TEST(Tournament, ResetClearsScores) {
  auto t = make_default_tournament(4);
  for (PageNum p = 0; p < 100; p += 5) {
    t->on_fault(kPid, p);
  }
  t->reset();
  EXPECT_EQ(t->hits(), 0u);
  EXPECT_EQ(t->misses(), 0u);
}

TEST(MakePredictor, BuildsEveryKind) {
  for (const auto kind :
       {PredictorKind::kMultiStream, PredictorKind::kNextN,
        PredictorKind::kStride, PredictorKind::kMarkov,
        PredictorKind::kTournament}) {
    DfpParams params;
    params.kind = kind;
    const auto p = make_predictor(params);
    ASSERT_NE(p, nullptr);
    EXPECT_STREQ(p->name(), to_string(kind));
  }
}

TEST(DfpEngineWithCustomPredictor, UsesIt) {
  DfpParams params;
  DfpEngine engine(params, std::make_unique<NextNPredictor>(2));
  const auto pred = engine.on_fault(kPid, 10, 0);
  EXPECT_EQ(pred, (std::vector<PageNum>{11, 12}));
  EXPECT_STREQ(engine.predictor().name(), "next-n");
}

}  // namespace
}  // namespace sgxpl::dfp
