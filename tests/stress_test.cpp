// Randomized stress: hammer the full stack with random configurations and
// random traces, checking structural invariants after every run. Seeds are
// fixed, so failures reproduce.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/multi_enclave.h"
#include "core/simulator.h"
#include "sgxsim/driver.h"
#include "trace/generators.h"

namespace sgxpl {
namespace {

/// A random trace mixing every generator, sized for fast iteration.
trace::Trace random_trace(Rng& rng, PageNum elrange) {
  trace::Trace t("stress", elrange);
  const trace::GapModel gap{.mean = 500 + rng.bounded(20'000),
                            .jitter_pct = 0.3};
  const trace::Region whole{0, elrange - 1};
  const int segments = 2 + static_cast<int>(rng.bounded(5));
  for (int s = 0; s < segments; ++s) {
    const PageNum lo = rng.bounded(elrange / 2);
    const PageNum pages = 2 + rng.bounded(elrange / 2 - 1);
    const trace::Region r{lo, std::min<PageNum>(pages, elrange - lo - 1)};
    switch (rng.bounded(6)) {
      case 0:
        trace::seq_scan(t, rng, r, static_cast<SiteId>(s), gap);
        break;
      case 1:
        trace::random_access(t, rng, r, 200 + rng.bounded(800),
                             static_cast<SiteId>(100 + s), 4, gap);
        break;
      case 2:
        trace::multi_stream_scan(
            t, rng, r, 1 + rng.bounded(std::min<PageNum>(4, r.pages)),
            static_cast<SiteId>(10 + s), gap, 1 + rng.bounded(4),
            rng.real() * 0.3);
        break;
      case 3:
        trace::strided_sweep(t, rng, r, 1 + rng.bounded(8),
                             static_cast<SiteId>(20 + s), gap);
        break;
      case 4:
        trace::paired_random_access(t, rng, whole, 100 + rng.bounded(500),
                                    rng.real(), static_cast<SiteId>(200 + s),
                                    8, gap);
        break;
      default:
        trace::short_sequential_runs(t, rng, whole, 50 + rng.bounded(200),
                                     2 + rng.bounded(4),
                                     static_cast<SiteId>(300 + s), 6, gap);
        break;
    }
  }
  return t;
}

core::SimConfig random_config(Rng& rng) {
  core::SimConfig cfg;
  cfg.enclave.epc_pages = 4 + rng.bounded(200);
  cfg.enclave.serial_channel = rng.chance(0.8);
  cfg.enclave.demand_policy = static_cast<sgxsim::DemandPolicy>(
      rng.bounded(3));
  cfg.enclave.eviction = static_cast<sgxsim::EvictionKind>(rng.bounded(4));
  cfg.dfp.kind = static_cast<dfp::PredictorKind>(rng.bounded(5));
  cfg.dfp.predictor.stream_list_len = 1 + rng.bounded(40);
  cfg.dfp.predictor.load_length = 1 + rng.bounded(12);
  cfg.dfp.predictor.detect_backward = rng.chance(0.5);
  cfg.dfp.stop_slack = rng.bounded(500);
  cfg.sip_lookahead = static_cast<std::uint32_t>(rng.bounded(20));
  cfg.channel_contention = rng.chance(0.3) ? rng.real() : 0.0;
  const core::Scheme schemes[] = {core::Scheme::kBaseline, core::Scheme::kDfp,
                                  core::Scheme::kDfpStop, core::Scheme::kSip,
                                  core::Scheme::kHybrid};
  cfg.scheme = schemes[rng.bounded(5)];
  return cfg;
}

TEST(Stress, RandomConfigsAndTracesKeepInvariants) {
  Rng rng(20260707);
  for (int round = 0; round < 60; ++round) {
    const PageNum elrange = 16 + rng.bounded(600);
    const auto t = random_trace(rng, elrange);
    auto cfg = random_config(rng);
    cfg.validate = true;
    sip::InstrumentationPlan plan;
    // Random plan: a handful of the sites the generators use.
    for (int i = 0; i < 8; ++i) {
      plan.add_site(static_cast<SiteId>(rng.bounded(320)));
    }
    const auto m = core::simulate(t, cfg, &plan);
    ASSERT_EQ(m.accesses, t.size()) << "round " << round;
    ASSERT_GE(m.total_cycles, m.compute_cycles) << "round " << round;
    // Retried faults (a page evicted between load and first use faults
    // again inside one access) make the driver's count an upper bound.
    ASSERT_GE(m.driver.faults, m.enclave_faults) << "round " << round;
  }
}

TEST(Stress, DriverSurvivesAdversarialInterleavings) {
  Rng rng(777);
  for (int round = 0; round < 20; ++round) {
    sgxsim::EnclaveConfig cfg;
    cfg.elrange_pages = 48;
    cfg.epc_pages = 2 + rng.bounded(12);
    cfg.demand_policy =
        static_cast<sgxsim::DemandPolicy>(rng.bounded(3));
    cfg.eviction = static_cast<sgxsim::EvictionKind>(rng.bounded(4));
    sgxsim::CostModel costs;
    costs.scan_period = 10'000 + rng.bounded(200'000);
    dfp::DfpParams params;
    params.kind = static_cast<dfp::PredictorKind>(rng.bounded(5));
    params.stop_enabled = rng.chance(0.5);
    dfp::DfpEngine engine(params);
    sgxsim::Driver d(cfg, costs, &engine);

    Cycles now = 0;
    for (int i = 0; i < 1500; ++i) {
      const PageNum page = rng.bounded(48);
      switch (rng.bounded(4)) {
        case 0:
          now = d.access(page, now + rng.bounded(5'000)).completion;
          break;
        case 1:
          now = std::max(now, d.sip_load(page, now + rng.bounded(5'000)));
          break;
        case 2:
          d.sip_prefetch(page, now);
          break;
        default:
          d.advance_to(now + rng.bounded(100'000));
          now += rng.bounded(100'000);
          break;
      }
    }
    d.drain();
    d.check_invariants();
  }
}

TEST(Stress, MultiEnclaveRandomTenants) {
  Rng rng(31337);
  for (int round = 0; round < 10; ++round) {
    const int n = 2 + static_cast<int>(rng.bounded(3));
    std::vector<trace::Trace> traces;
    traces.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      traces.push_back(random_trace(rng, 16 + rng.bounded(200)));
    }
    core::SimConfig cfg;
    cfg.enclave.epc_pages = 8 + rng.bounded(100);
    core::MultiEnclaveSimulator multi(cfg);
    std::vector<core::EnclaveApp> apps;
    for (int i = 0; i < n; ++i) {
      apps.push_back(core::EnclaveApp{
          &traces[static_cast<std::size_t>(i)],
          rng.chance(0.5) ? core::Scheme::kDfpStop : core::Scheme::kBaseline,
          nullptr});
    }
    const auto r = multi.run(apps);
    ASSERT_EQ(r.per_enclave.size(), static_cast<std::size_t>(n));
    std::uint64_t fault_sum = 0;
    for (int i = 0; i < n; ++i) {
      const auto& m = r.per_enclave[static_cast<std::size_t>(i)];
      ASSERT_EQ(m.accesses, traces[static_cast<std::size_t>(i)].size());
      ASSERT_LE(m.total_cycles, r.makespan);
      fault_sum += m.enclave_faults;
    }
    ASSERT_GE(r.driver.faults, fault_sum);
  }
}

}  // namespace
}  // namespace sgxpl
