file(REMOVE_RECURSE
  "../bench/fig7_loadlength"
  "../bench/fig7_loadlength.pdb"
  "CMakeFiles/fig7_loadlength.dir/fig7_loadlength.cpp.o"
  "CMakeFiles/fig7_loadlength.dir/fig7_loadlength.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_loadlength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
