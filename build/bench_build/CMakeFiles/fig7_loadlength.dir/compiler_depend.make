# Empty compiler generated dependencies file for fig7_loadlength.
# This may be replaced when dependencies are built.
