file(REMOVE_RECURSE
  "../bench/table1_classes"
  "../bench/table1_classes.pdb"
  "CMakeFiles/table1_classes.dir/table1_classes.cpp.o"
  "CMakeFiles/table1_classes.dir/table1_classes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
