file(REMOVE_RECURSE
  "../bench/ablation_threads"
  "../bench/ablation_threads.pdb"
  "CMakeFiles/ablation_threads.dir/ablation_threads.cpp.o"
  "CMakeFiles/ablation_threads.dir/ablation_threads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
