file(REMOVE_RECURSE
  "../bench/fig13_mixedblood"
  "../bench/fig13_mixedblood.pdb"
  "CMakeFiles/fig13_mixedblood.dir/fig13_mixedblood.cpp.o"
  "CMakeFiles/fig13_mixedblood.dir/fig13_mixedblood.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_mixedblood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
