# Empty dependencies file for fig13_mixedblood.
# This may be replaced when dependencies are built.
