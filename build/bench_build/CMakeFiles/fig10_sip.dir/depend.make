# Empty dependencies file for fig10_sip.
# This may be replaced when dependencies are built.
