file(REMOVE_RECURSE
  "../bench/fig10_sip"
  "../bench/fig10_sip.pdb"
  "CMakeFiles/fig10_sip.dir/fig10_sip.cpp.o"
  "CMakeFiles/fig10_sip.dir/fig10_sip.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
