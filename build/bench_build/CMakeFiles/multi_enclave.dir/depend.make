# Empty dependencies file for multi_enclave.
# This may be replaced when dependencies are built.
