file(REMOVE_RECURSE
  "../bench/multi_enclave"
  "../bench/multi_enclave.pdb"
  "CMakeFiles/multi_enclave.dir/multi_enclave.cpp.o"
  "CMakeFiles/multi_enclave.dir/multi_enclave.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
