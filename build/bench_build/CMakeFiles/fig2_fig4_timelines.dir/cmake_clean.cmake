file(REMOVE_RECURSE
  "../bench/fig2_fig4_timelines"
  "../bench/fig2_fig4_timelines.pdb"
  "CMakeFiles/fig2_fig4_timelines.dir/fig2_fig4_timelines.cpp.o"
  "CMakeFiles/fig2_fig4_timelines.dir/fig2_fig4_timelines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_fig4_timelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
