# Empty dependencies file for fig2_fig4_timelines.
# This may be replaced when dependencies are built.
