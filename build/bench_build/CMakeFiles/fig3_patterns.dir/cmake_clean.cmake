file(REMOVE_RECURSE
  "../bench/fig3_patterns"
  "../bench/fig3_patterns.pdb"
  "CMakeFiles/fig3_patterns.dir/fig3_patterns.cpp.o"
  "CMakeFiles/fig3_patterns.dir/fig3_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
