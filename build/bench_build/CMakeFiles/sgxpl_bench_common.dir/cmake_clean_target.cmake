file(REMOVE_RECURSE
  "libsgxpl_bench_common.a"
)
