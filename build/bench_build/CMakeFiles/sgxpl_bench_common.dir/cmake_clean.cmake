file(REMOVE_RECURSE
  "CMakeFiles/sgxpl_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/sgxpl_bench_common.dir/bench_common.cpp.o.d"
  "libsgxpl_bench_common.a"
  "libsgxpl_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxpl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
