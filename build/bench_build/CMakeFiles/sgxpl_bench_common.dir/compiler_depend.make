# Empty compiler generated dependencies file for sgxpl_bench_common.
# This may be replaced when dependencies are built.
