# Empty dependencies file for ablation_epcsize.
# This may be replaced when dependencies are built.
