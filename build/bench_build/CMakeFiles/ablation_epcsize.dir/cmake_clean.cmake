file(REMOVE_RECURSE
  "../bench/ablation_epcsize"
  "../bench/ablation_epcsize.pdb"
  "CMakeFiles/ablation_epcsize.dir/ablation_epcsize.cpp.o"
  "CMakeFiles/ablation_epcsize.dir/ablation_epcsize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_epcsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
