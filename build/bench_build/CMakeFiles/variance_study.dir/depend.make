# Empty dependencies file for variance_study.
# This may be replaced when dependencies are built.
