file(REMOVE_RECURSE
  "../bench/variance_study"
  "../bench/variance_study.pdb"
  "CMakeFiles/variance_study.dir/variance_study.cpp.o"
  "CMakeFiles/variance_study.dir/variance_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variance_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
