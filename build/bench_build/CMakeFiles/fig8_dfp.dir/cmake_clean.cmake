file(REMOVE_RECURSE
  "../bench/fig8_dfp"
  "../bench/fig8_dfp.pdb"
  "CMakeFiles/fig8_dfp.dir/fig8_dfp.cpp.o"
  "CMakeFiles/fig8_dfp.dir/fig8_dfp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
