# Empty compiler generated dependencies file for fig8_dfp.
# This may be replaced when dependencies are built.
