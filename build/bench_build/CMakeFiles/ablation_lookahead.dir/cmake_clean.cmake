file(REMOVE_RECURSE
  "../bench/ablation_lookahead"
  "../bench/ablation_lookahead.pdb"
  "CMakeFiles/ablation_lookahead.dir/ablation_lookahead.cpp.o"
  "CMakeFiles/ablation_lookahead.dir/ablation_lookahead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
