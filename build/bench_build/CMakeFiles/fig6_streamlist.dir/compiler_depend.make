# Empty compiler generated dependencies file for fig6_streamlist.
# This may be replaced when dependencies are built.
