file(REMOVE_RECURSE
  "../bench/fig6_streamlist"
  "../bench/fig6_streamlist.pdb"
  "CMakeFiles/fig6_streamlist.dir/fig6_streamlist.cpp.o"
  "CMakeFiles/fig6_streamlist.dir/fig6_streamlist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_streamlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
