# Empty compiler generated dependencies file for fig9_threshold.
# This may be replaced when dependencies are built.
