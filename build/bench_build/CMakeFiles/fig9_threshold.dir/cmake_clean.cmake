file(REMOVE_RECURSE
  "../bench/fig9_threshold"
  "../bench/fig9_threshold.pdb"
  "CMakeFiles/fig9_threshold.dir/fig9_threshold.cpp.o"
  "CMakeFiles/fig9_threshold.dir/fig9_threshold.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
