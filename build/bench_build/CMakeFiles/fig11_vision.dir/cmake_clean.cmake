file(REMOVE_RECURSE
  "../bench/fig11_vision"
  "../bench/fig11_vision.pdb"
  "CMakeFiles/fig11_vision.dir/fig11_vision.cpp.o"
  "CMakeFiles/fig11_vision.dir/fig11_vision.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
