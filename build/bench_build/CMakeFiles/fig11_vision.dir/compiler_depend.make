# Empty compiler generated dependencies file for fig11_vision.
# This may be replaced when dependencies are built.
