file(REMOVE_RECURSE
  "../bench/motivation"
  "../bench/motivation.pdb"
  "CMakeFiles/motivation.dir/motivation.cpp.o"
  "CMakeFiles/motivation.dir/motivation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
