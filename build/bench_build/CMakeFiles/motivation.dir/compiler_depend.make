# Empty compiler generated dependencies file for motivation.
# This may be replaced when dependencies are built.
