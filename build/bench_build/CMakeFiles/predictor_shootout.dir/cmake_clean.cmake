file(REMOVE_RECURSE
  "../bench/predictor_shootout"
  "../bench/predictor_shootout.pdb"
  "CMakeFiles/predictor_shootout.dir/predictor_shootout.cpp.o"
  "CMakeFiles/predictor_shootout.dir/predictor_shootout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
