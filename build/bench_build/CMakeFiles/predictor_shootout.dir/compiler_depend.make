# Empty compiler generated dependencies file for predictor_shootout.
# This may be replaced when dependencies are built.
