# Empty dependencies file for ablation_oram.
# This may be replaced when dependencies are built.
