file(REMOVE_RECURSE
  "../bench/ablation_oram"
  "../bench/ablation_oram.pdb"
  "CMakeFiles/ablation_oram.dir/ablation_oram.cpp.o"
  "CMakeFiles/ablation_oram.dir/ablation_oram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_oram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
