file(REMOVE_RECURSE
  "../bench/fig12_hybrid"
  "../bench/fig12_hybrid.pdb"
  "CMakeFiles/fig12_hybrid.dir/fig12_hybrid.cpp.o"
  "CMakeFiles/fig12_hybrid.dir/fig12_hybrid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
