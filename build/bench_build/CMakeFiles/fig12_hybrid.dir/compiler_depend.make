# Empty compiler generated dependencies file for fig12_hybrid.
# This may be replaced when dependencies are built.
