# Empty dependencies file for table2_tcb.
# This may be replaced when dependencies are built.
