file(REMOVE_RECURSE
  "../bench/table2_tcb"
  "../bench/table2_tcb.pdb"
  "CMakeFiles/table2_tcb.dir/table2_tcb.cpp.o"
  "CMakeFiles/table2_tcb.dir/table2_tcb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_tcb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
