
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgxsim/backing_store.cpp" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/backing_store.cpp.o" "gcc" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/backing_store.cpp.o.d"
  "/root/repo/src/sgxsim/bitmap.cpp" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/bitmap.cpp.o" "gcc" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/bitmap.cpp.o.d"
  "/root/repo/src/sgxsim/cost_model.cpp" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/cost_model.cpp.o" "gcc" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sgxsim/driver.cpp" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/driver.cpp.o" "gcc" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/driver.cpp.o.d"
  "/root/repo/src/sgxsim/epc.cpp" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/epc.cpp.o" "gcc" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/epc.cpp.o.d"
  "/root/repo/src/sgxsim/event_log.cpp" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/event_log.cpp.o" "gcc" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/event_log.cpp.o.d"
  "/root/repo/src/sgxsim/eviction.cpp" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/eviction.cpp.o" "gcc" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/eviction.cpp.o.d"
  "/root/repo/src/sgxsim/page_table.cpp" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/page_table.cpp.o" "gcc" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/page_table.cpp.o.d"
  "/root/repo/src/sgxsim/paging_channel.cpp" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/paging_channel.cpp.o" "gcc" "src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/paging_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sgxpl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
