file(REMOVE_RECURSE
  "CMakeFiles/sgxpl_sgxsim.dir/backing_store.cpp.o"
  "CMakeFiles/sgxpl_sgxsim.dir/backing_store.cpp.o.d"
  "CMakeFiles/sgxpl_sgxsim.dir/bitmap.cpp.o"
  "CMakeFiles/sgxpl_sgxsim.dir/bitmap.cpp.o.d"
  "CMakeFiles/sgxpl_sgxsim.dir/cost_model.cpp.o"
  "CMakeFiles/sgxpl_sgxsim.dir/cost_model.cpp.o.d"
  "CMakeFiles/sgxpl_sgxsim.dir/driver.cpp.o"
  "CMakeFiles/sgxpl_sgxsim.dir/driver.cpp.o.d"
  "CMakeFiles/sgxpl_sgxsim.dir/epc.cpp.o"
  "CMakeFiles/sgxpl_sgxsim.dir/epc.cpp.o.d"
  "CMakeFiles/sgxpl_sgxsim.dir/event_log.cpp.o"
  "CMakeFiles/sgxpl_sgxsim.dir/event_log.cpp.o.d"
  "CMakeFiles/sgxpl_sgxsim.dir/eviction.cpp.o"
  "CMakeFiles/sgxpl_sgxsim.dir/eviction.cpp.o.d"
  "CMakeFiles/sgxpl_sgxsim.dir/page_table.cpp.o"
  "CMakeFiles/sgxpl_sgxsim.dir/page_table.cpp.o.d"
  "CMakeFiles/sgxpl_sgxsim.dir/paging_channel.cpp.o"
  "CMakeFiles/sgxpl_sgxsim.dir/paging_channel.cpp.o.d"
  "libsgxpl_sgxsim.a"
  "libsgxpl_sgxsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxpl_sgxsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
