# Empty dependencies file for sgxpl_sgxsim.
# This may be replaced when dependencies are built.
