file(REMOVE_RECURSE
  "libsgxpl_sgxsim.a"
)
