# Empty dependencies file for sgxpl_dfp.
# This may be replaced when dependencies are built.
