
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfp/dfp_engine.cpp" "src/dfp/CMakeFiles/sgxpl_dfp.dir/dfp_engine.cpp.o" "gcc" "src/dfp/CMakeFiles/sgxpl_dfp.dir/dfp_engine.cpp.o.d"
  "/root/repo/src/dfp/predictors.cpp" "src/dfp/CMakeFiles/sgxpl_dfp.dir/predictors.cpp.o" "gcc" "src/dfp/CMakeFiles/sgxpl_dfp.dir/predictors.cpp.o.d"
  "/root/repo/src/dfp/preloaded_page_list.cpp" "src/dfp/CMakeFiles/sgxpl_dfp.dir/preloaded_page_list.cpp.o" "gcc" "src/dfp/CMakeFiles/sgxpl_dfp.dir/preloaded_page_list.cpp.o.d"
  "/root/repo/src/dfp/stream_predictor.cpp" "src/dfp/CMakeFiles/sgxpl_dfp.dir/stream_predictor.cpp.o" "gcc" "src/dfp/CMakeFiles/sgxpl_dfp.dir/stream_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sgxpl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
