file(REMOVE_RECURSE
  "libsgxpl_dfp.a"
)
