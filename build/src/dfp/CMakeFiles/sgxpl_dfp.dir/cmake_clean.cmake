file(REMOVE_RECURSE
  "CMakeFiles/sgxpl_dfp.dir/dfp_engine.cpp.o"
  "CMakeFiles/sgxpl_dfp.dir/dfp_engine.cpp.o.d"
  "CMakeFiles/sgxpl_dfp.dir/predictors.cpp.o"
  "CMakeFiles/sgxpl_dfp.dir/predictors.cpp.o.d"
  "CMakeFiles/sgxpl_dfp.dir/preloaded_page_list.cpp.o"
  "CMakeFiles/sgxpl_dfp.dir/preloaded_page_list.cpp.o.d"
  "CMakeFiles/sgxpl_dfp.dir/stream_predictor.cpp.o"
  "CMakeFiles/sgxpl_dfp.dir/stream_predictor.cpp.o.d"
  "libsgxpl_dfp.a"
  "libsgxpl_dfp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxpl_dfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
