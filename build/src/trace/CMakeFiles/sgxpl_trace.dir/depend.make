# Empty dependencies file for sgxpl_trace.
# This may be replaced when dependencies are built.
