file(REMOVE_RECURSE
  "libsgxpl_trace.a"
)
