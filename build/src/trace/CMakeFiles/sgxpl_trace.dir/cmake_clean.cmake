file(REMOVE_RECURSE
  "CMakeFiles/sgxpl_trace.dir/access.cpp.o"
  "CMakeFiles/sgxpl_trace.dir/access.cpp.o.d"
  "CMakeFiles/sgxpl_trace.dir/generators.cpp.o"
  "CMakeFiles/sgxpl_trace.dir/generators.cpp.o.d"
  "CMakeFiles/sgxpl_trace.dir/synthetic_apps.cpp.o"
  "CMakeFiles/sgxpl_trace.dir/synthetic_apps.cpp.o.d"
  "CMakeFiles/sgxpl_trace.dir/trace_io.cpp.o"
  "CMakeFiles/sgxpl_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/sgxpl_trace.dir/workloads.cpp.o"
  "CMakeFiles/sgxpl_trace.dir/workloads.cpp.o.d"
  "libsgxpl_trace.a"
  "libsgxpl_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxpl_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
