file(REMOVE_RECURSE
  "CMakeFiles/sgxpl_sip.dir/instrumenter.cpp.o"
  "CMakeFiles/sgxpl_sip.dir/instrumenter.cpp.o.d"
  "CMakeFiles/sgxpl_sip.dir/pipeline.cpp.o"
  "CMakeFiles/sgxpl_sip.dir/pipeline.cpp.o.d"
  "CMakeFiles/sgxpl_sip.dir/profiler.cpp.o"
  "CMakeFiles/sgxpl_sip.dir/profiler.cpp.o.d"
  "CMakeFiles/sgxpl_sip.dir/site_classifier.cpp.o"
  "CMakeFiles/sgxpl_sip.dir/site_classifier.cpp.o.d"
  "libsgxpl_sip.a"
  "libsgxpl_sip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxpl_sip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
