# Empty compiler generated dependencies file for sgxpl_sip.
# This may be replaced when dependencies are built.
