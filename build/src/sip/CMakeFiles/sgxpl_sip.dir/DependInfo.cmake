
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sip/instrumenter.cpp" "src/sip/CMakeFiles/sgxpl_sip.dir/instrumenter.cpp.o" "gcc" "src/sip/CMakeFiles/sgxpl_sip.dir/instrumenter.cpp.o.d"
  "/root/repo/src/sip/pipeline.cpp" "src/sip/CMakeFiles/sgxpl_sip.dir/pipeline.cpp.o" "gcc" "src/sip/CMakeFiles/sgxpl_sip.dir/pipeline.cpp.o.d"
  "/root/repo/src/sip/profiler.cpp" "src/sip/CMakeFiles/sgxpl_sip.dir/profiler.cpp.o" "gcc" "src/sip/CMakeFiles/sgxpl_sip.dir/profiler.cpp.o.d"
  "/root/repo/src/sip/site_classifier.cpp" "src/sip/CMakeFiles/sgxpl_sip.dir/site_classifier.cpp.o" "gcc" "src/sip/CMakeFiles/sgxpl_sip.dir/site_classifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sgxpl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dfp/CMakeFiles/sgxpl_dfp.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sgxpl_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
