file(REMOVE_RECURSE
  "libsgxpl_sip.a"
)
