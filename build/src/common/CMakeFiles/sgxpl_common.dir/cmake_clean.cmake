file(REMOVE_RECURSE
  "CMakeFiles/sgxpl_common.dir/check.cpp.o"
  "CMakeFiles/sgxpl_common.dir/check.cpp.o.d"
  "CMakeFiles/sgxpl_common.dir/rng.cpp.o"
  "CMakeFiles/sgxpl_common.dir/rng.cpp.o.d"
  "CMakeFiles/sgxpl_common.dir/stats.cpp.o"
  "CMakeFiles/sgxpl_common.dir/stats.cpp.o.d"
  "CMakeFiles/sgxpl_common.dir/table.cpp.o"
  "CMakeFiles/sgxpl_common.dir/table.cpp.o.d"
  "libsgxpl_common.a"
  "libsgxpl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxpl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
