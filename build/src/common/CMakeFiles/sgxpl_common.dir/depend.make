# Empty dependencies file for sgxpl_common.
# This may be replaced when dependencies are built.
