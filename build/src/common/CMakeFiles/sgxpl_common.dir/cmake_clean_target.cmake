file(REMOVE_RECURSE
  "libsgxpl_common.a"
)
