
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/sgxpl_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/sgxpl_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/sgxpl_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/sgxpl_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/multi_enclave.cpp" "src/core/CMakeFiles/sgxpl_core.dir/multi_enclave.cpp.o" "gcc" "src/core/CMakeFiles/sgxpl_core.dir/multi_enclave.cpp.o.d"
  "/root/repo/src/core/multi_thread.cpp" "src/core/CMakeFiles/sgxpl_core.dir/multi_thread.cpp.o" "gcc" "src/core/CMakeFiles/sgxpl_core.dir/multi_thread.cpp.o.d"
  "/root/repo/src/core/scheme.cpp" "src/core/CMakeFiles/sgxpl_core.dir/scheme.cpp.o" "gcc" "src/core/CMakeFiles/sgxpl_core.dir/scheme.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/core/CMakeFiles/sgxpl_core.dir/simulator.cpp.o" "gcc" "src/core/CMakeFiles/sgxpl_core.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sgxpl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sgxpl_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dfp/CMakeFiles/sgxpl_dfp.dir/DependInfo.cmake"
  "/root/repo/build/src/sip/CMakeFiles/sgxpl_sip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
