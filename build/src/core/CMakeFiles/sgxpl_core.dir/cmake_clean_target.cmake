file(REMOVE_RECURSE
  "libsgxpl_core.a"
)
