# Empty compiler generated dependencies file for sgxpl_core.
# This may be replaced when dependencies are built.
