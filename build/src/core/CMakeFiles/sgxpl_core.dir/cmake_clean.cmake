file(REMOVE_RECURSE
  "CMakeFiles/sgxpl_core.dir/experiment.cpp.o"
  "CMakeFiles/sgxpl_core.dir/experiment.cpp.o.d"
  "CMakeFiles/sgxpl_core.dir/metrics.cpp.o"
  "CMakeFiles/sgxpl_core.dir/metrics.cpp.o.d"
  "CMakeFiles/sgxpl_core.dir/multi_enclave.cpp.o"
  "CMakeFiles/sgxpl_core.dir/multi_enclave.cpp.o.d"
  "CMakeFiles/sgxpl_core.dir/multi_thread.cpp.o"
  "CMakeFiles/sgxpl_core.dir/multi_thread.cpp.o.d"
  "CMakeFiles/sgxpl_core.dir/scheme.cpp.o"
  "CMakeFiles/sgxpl_core.dir/scheme.cpp.o.d"
  "CMakeFiles/sgxpl_core.dir/simulator.cpp.o"
  "CMakeFiles/sgxpl_core.dir/simulator.cpp.o.d"
  "libsgxpl_core.a"
  "libsgxpl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxpl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
