# Empty dependencies file for multi_thread_test.
# This may be replaced when dependencies are built.
