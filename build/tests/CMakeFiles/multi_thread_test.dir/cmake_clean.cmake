file(REMOVE_RECURSE
  "CMakeFiles/multi_thread_test.dir/multi_thread_test.cpp.o"
  "CMakeFiles/multi_thread_test.dir/multi_thread_test.cpp.o.d"
  "multi_thread_test"
  "multi_thread_test.pdb"
  "multi_thread_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_thread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
