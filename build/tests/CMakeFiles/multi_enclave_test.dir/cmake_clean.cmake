file(REMOVE_RECURSE
  "CMakeFiles/multi_enclave_test.dir/multi_enclave_test.cpp.o"
  "CMakeFiles/multi_enclave_test.dir/multi_enclave_test.cpp.o.d"
  "multi_enclave_test"
  "multi_enclave_test.pdb"
  "multi_enclave_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_enclave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
