# Empty dependencies file for multi_enclave_test.
# This may be replaced when dependencies are built.
