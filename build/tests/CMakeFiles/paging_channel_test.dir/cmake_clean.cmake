file(REMOVE_RECURSE
  "CMakeFiles/paging_channel_test.dir/paging_channel_test.cpp.o"
  "CMakeFiles/paging_channel_test.dir/paging_channel_test.cpp.o.d"
  "paging_channel_test"
  "paging_channel_test.pdb"
  "paging_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paging_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
