# Empty dependencies file for paging_channel_test.
# This may be replaced when dependencies are built.
