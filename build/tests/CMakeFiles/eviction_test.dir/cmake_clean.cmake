file(REMOVE_RECURSE
  "CMakeFiles/eviction_test.dir/eviction_test.cpp.o"
  "CMakeFiles/eviction_test.dir/eviction_test.cpp.o.d"
  "eviction_test"
  "eviction_test.pdb"
  "eviction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eviction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
