# Empty compiler generated dependencies file for lookahead_test.
# This may be replaced when dependencies are built.
