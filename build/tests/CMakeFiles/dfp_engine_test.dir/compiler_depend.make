# Empty compiler generated dependencies file for dfp_engine_test.
# This may be replaced when dependencies are built.
