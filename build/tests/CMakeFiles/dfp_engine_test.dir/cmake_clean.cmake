file(REMOVE_RECURSE
  "CMakeFiles/dfp_engine_test.dir/dfp_engine_test.cpp.o"
  "CMakeFiles/dfp_engine_test.dir/dfp_engine_test.cpp.o.d"
  "dfp_engine_test"
  "dfp_engine_test.pdb"
  "dfp_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfp_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
