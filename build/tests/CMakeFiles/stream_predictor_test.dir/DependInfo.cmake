
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stream_predictor_test.cpp" "tests/CMakeFiles/stream_predictor_test.dir/stream_predictor_test.cpp.o" "gcc" "tests/CMakeFiles/stream_predictor_test.dir/stream_predictor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sgxpl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sip/CMakeFiles/sgxpl_sip.dir/DependInfo.cmake"
  "/root/repo/build/src/dfp/CMakeFiles/sgxpl_dfp.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sgxpl_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sgxsim/CMakeFiles/sgxpl_sgxsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sgxpl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
