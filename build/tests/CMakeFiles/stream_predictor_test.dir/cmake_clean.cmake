file(REMOVE_RECURSE
  "CMakeFiles/stream_predictor_test.dir/stream_predictor_test.cpp.o"
  "CMakeFiles/stream_predictor_test.dir/stream_predictor_test.cpp.o.d"
  "stream_predictor_test"
  "stream_predictor_test.pdb"
  "stream_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
