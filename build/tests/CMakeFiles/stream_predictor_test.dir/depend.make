# Empty dependencies file for stream_predictor_test.
# This may be replaced when dependencies are built.
