# Empty dependencies file for spec_comparison.
# This may be replaced when dependencies are built.
