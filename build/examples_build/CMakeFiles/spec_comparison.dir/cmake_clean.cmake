file(REMOVE_RECURSE
  "../examples/spec_comparison"
  "../examples/spec_comparison.pdb"
  "CMakeFiles/spec_comparison.dir/spec_comparison.cpp.o"
  "CMakeFiles/spec_comparison.dir/spec_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
