# Empty dependencies file for instrumented_app.
# This may be replaced when dependencies are built.
