file(REMOVE_RECURSE
  "../examples/instrumented_app"
  "../examples/instrumented_app.pdb"
  "CMakeFiles/instrumented_app.dir/instrumented_app.cpp.o"
  "CMakeFiles/instrumented_app.dir/instrumented_app.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrumented_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
