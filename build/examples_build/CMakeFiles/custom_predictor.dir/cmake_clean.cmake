file(REMOVE_RECURSE
  "../examples/custom_predictor"
  "../examples/custom_predictor.pdb"
  "CMakeFiles/custom_predictor.dir/custom_predictor.cpp.o"
  "CMakeFiles/custom_predictor.dir/custom_predictor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
