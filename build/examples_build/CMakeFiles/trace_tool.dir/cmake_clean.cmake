file(REMOVE_RECURSE
  "../examples/trace_tool"
  "../examples/trace_tool.pdb"
  "CMakeFiles/trace_tool.dir/trace_tool.cpp.o"
  "CMakeFiles/trace_tool.dir/trace_tool.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
