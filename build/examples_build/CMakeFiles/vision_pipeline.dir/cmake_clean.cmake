file(REMOVE_RECURSE
  "../examples/vision_pipeline"
  "../examples/vision_pipeline.pdb"
  "CMakeFiles/vision_pipeline.dir/vision_pipeline.cpp.o"
  "CMakeFiles/vision_pipeline.dir/vision_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
