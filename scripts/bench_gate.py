#!/usr/bin/env python3
"""Perf-trajectory regression gate for perf_suite results.

The suite (bench/perf_suite.cpp) emits a sgxpl-bench-result/v1 document
whose "scalars" block carries two metric domains:

  cycles.*  deterministic simulated-cycle metrics — the gated surface.
            Any relative change beyond --tolerance (default 2%), in either
            direction, fails the gate: an unexplained cycle-domain shift
            means simulation behaviour changed, not that a machine was slow.
  wall.*    host wall-clock throughput — machine-dependent; deltas are
            printed for trend-watching but never gated.

Usage:
  bench_gate.py compare FRESH.json [BASELINE.json]
      [--tolerance 0.02] [--repo-root DIR]
    Compare a fresh perf_suite run against a committed baseline. When no
    baseline is given, the highest-numbered BENCH_*.json at the repo root
    (default: cwd) is used. Exit 1 on regression or missing cycles key.

  bench_gate.py determinism A.json B.json
    Two same-seed runs must agree exactly on every cycles.* scalar.
    Exit 1 on any mismatch.
"""

import argparse
import json
import re
import sys
from pathlib import Path


def load_scalars(path):
    with open(path) as f:
        doc = json.load(f)
    scalars = doc.get("scalars")
    if not isinstance(scalars, dict):
        sys.exit(f"error: {path}: no 'scalars' object (not a bench result?)")
    return scalars


def latest_baseline(repo_root):
    best, best_n = None, -1
    for p in Path(repo_root).glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", p.name)
        if m and int(m.group(1)) > best_n:
            best, best_n = p, int(m.group(1))
    return best


def cycles_keys(scalars):
    return {k: v for k, v in scalars.items() if k.startswith("cycles.")}


def wall_keys(scalars):
    return {k: v for k, v in scalars.items() if k.startswith("wall.")}


def rel_delta(old, new):
    if old == 0:
        return 0.0 if new == 0 else float("inf")
    return (new - old) / abs(old)


def cmd_compare(args):
    fresh = load_scalars(args.fresh)
    baseline_path = args.baseline or latest_baseline(args.repo_root)
    if baseline_path is None:
        print(f"bench_gate: no BENCH_*.json baseline under {args.repo_root}; "
              "nothing to gate (first run?)")
        return 0
    base = load_scalars(baseline_path)
    print(f"bench_gate: {args.fresh} vs {baseline_path} "
          f"(tolerance {args.tolerance:.1%})")

    failures = []
    base_cycles, fresh_cycles = cycles_keys(base), cycles_keys(fresh)
    for key in sorted(base_cycles):
        if key not in fresh_cycles:
            failures.append(f"{key}: present in baseline, missing from fresh "
                            "run (cell removed or renamed without a new "
                            "baseline)")
            continue
        d = rel_delta(base_cycles[key], fresh_cycles[key])
        status = "FAIL" if abs(d) > args.tolerance else "ok"
        print(f"  [{status:>4}] {key}: {base_cycles[key]:.0f} -> "
              f"{fresh_cycles[key]:.0f} ({d:+.2%})")
        if status == "FAIL":
            failures.append(f"{key}: {d:+.2%} exceeds ±{args.tolerance:.1%}")
    for key in sorted(set(fresh_cycles) - set(base_cycles)):
        print(f"  [ new] {key}: {fresh_cycles[key]:.0f} (ungated until "
              "committed)")

    base_wall, fresh_wall = wall_keys(base), wall_keys(fresh)
    for key in sorted(set(base_wall) & set(fresh_wall)):
        d = rel_delta(base_wall[key], fresh_wall[key])
        print(f"  [info] {key}: {base_wall[key]:.3g} -> "
              f"{fresh_wall[key]:.3g} ({d:+.2%}, not gated)")

    if failures:
        print(f"bench_gate: FAIL ({len(failures)} regression(s)):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("bench_gate: PASS")
    return 0


def cmd_determinism(args):
    a, b = load_scalars(args.a), load_scalars(args.b)
    ca, cb = cycles_keys(a), cycles_keys(b)
    failures = []
    if set(ca) != set(cb):
        only_a = sorted(set(ca) - set(cb))
        only_b = sorted(set(cb) - set(ca))
        failures.append(f"cycles key sets differ: only in {args.a}: {only_a}; "
                        f"only in {args.b}: {only_b}")
    for key in sorted(set(ca) & set(cb)):
        if ca[key] != cb[key]:
            failures.append(f"{key}: {ca[key]!r} != {cb[key]!r}")
    if failures:
        print(f"bench_gate: determinism FAIL ({args.a} vs {args.b}):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"bench_gate: determinism PASS "
          f"({len(ca)} cycles.* scalars identical)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("compare", help="gate a fresh run against a baseline")
    p.add_argument("fresh")
    p.add_argument("baseline", nargs="?", default=None)
    p.add_argument("--tolerance", type=float, default=0.02,
                   help="max allowed |relative delta| on cycles.* "
                        "(default 0.02)")
    p.add_argument("--repo-root", default=".",
                   help="where to look for committed BENCH_*.json "
                        "(default: cwd)")
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("determinism",
                       help="two same-seed runs must match exactly")
    p.add_argument("a")
    p.add_argument("b")
    p.set_defaults(fn=cmd_determinism)

    args = parser.parse_args()
    sys.exit(args.fn(args))


if __name__ == "__main__":
    main()
