#include "core/metrics.h"

#include <sstream>

namespace sgxpl::core {

double Metrics::improvement_over(const Metrics& baseline) const noexcept {
  if (baseline.total_cycles == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(total_cycles) /
                   static_cast<double>(baseline.total_cycles);
}

double Metrics::normalized_to(const Metrics& baseline) const noexcept {
  if (baseline.total_cycles == 0) {
    // A zero-cycle baseline (empty/degenerate trace) normalizes to parity
    // rather than dividing by zero; improvement_over likewise reports 0.
    return 1.0;
  }
  return static_cast<double>(total_cycles) /
         static_cast<double>(baseline.total_cycles);
}

std::string Metrics::describe() const {
  std::ostringstream oss;
  oss << "Metrics{total=" << total_cycles << ", compute=" << compute_cycles
      << ", contention=" << contention_cycles << ", accesses=" << accesses
      << ", faults=" << enclave_faults << ", sip_checks=" << sip_checks
      << ", sip_requests=" << sip_requests
      << ", dfp{preloaded=" << dfp_preload_counter
      << ", used=" << dfp_acc_preload_counter
      << ", stopped=" << (dfp_stopped ? "yes" : "no") << "}";
  if (inject.total_opportunities() > 0) {
    oss << ", " << inject.describe();
  }
  oss << "}";
  return oss.str();
}

}  // namespace sgxpl::core
