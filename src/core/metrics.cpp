#include "core/metrics.h"

#include <sstream>

#include "snapshot/codec.h"

namespace sgxpl::core {

double Metrics::improvement_over(const Metrics& baseline) const noexcept {
  if (baseline.total_cycles == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(total_cycles) /
                   static_cast<double>(baseline.total_cycles);
}

double Metrics::normalized_to(const Metrics& baseline) const noexcept {
  if (baseline.total_cycles == 0) {
    // A zero-cycle baseline (empty/degenerate trace) normalizes to parity
    // rather than dividing by zero; improvement_over likewise reports 0.
    return 1.0;
  }
  return static_cast<double>(total_cycles) /
         static_cast<double>(baseline.total_cycles);
}

std::string Metrics::describe() const {
  std::ostringstream oss;
  oss << "Metrics{total=" << total_cycles << ", compute=" << compute_cycles
      << ", contention=" << contention_cycles << ", accesses=" << accesses
      << ", faults=" << enclave_faults << ", sip_checks=" << sip_checks
      << ", sip_requests=" << sip_requests
      << ", dfp{preloaded=" << dfp_preload_counter
      << ", used=" << dfp_acc_preload_counter
      << ", stopped=" << (dfp_stopped ? "yes" : "no") << "}";
  if (inject.total_opportunities() > 0) {
    oss << ", " << inject.describe();
  }
  oss << "}";
  return oss.str();
}

void Metrics::save(snapshot::Writer& w) const {
  w.u64("metrics.total_cycles", total_cycles);
  w.u64("metrics.compute_cycles", compute_cycles);
  w.u64("metrics.contention_cycles", contention_cycles);
  w.u64("metrics.accesses", accesses);
  w.u64("metrics.enclave_faults", enclave_faults);
  w.u64("metrics.sip_checks", sip_checks);
  w.u64("metrics.sip_requests", sip_requests);
  w.u64("metrics.sip_check_cycles", sip_check_cycles);
  w.u64("metrics.sip_notification_cycles", sip_notification_cycles);
  w.boolean("metrics.dfp_stopped", dfp_stopped);
  w.u64("metrics.dfp_stopped_at", dfp_stopped_at);
  w.u64("metrics.dfp_preload_counter", dfp_preload_counter);
  w.u64("metrics.dfp_acc_preload_counter", dfp_acc_preload_counter);
  w.u64("metrics.dfp_predictor_hits", dfp_predictor_hits);
  w.u64("metrics.dfp_predictor_misses", dfp_predictor_misses);
  driver.save(w);
  inject.save(w);
}

void Metrics::load(snapshot::Reader& r) {
  total_cycles = r.u64("metrics.total_cycles");
  compute_cycles = r.u64("metrics.compute_cycles");
  contention_cycles = r.u64("metrics.contention_cycles");
  accesses = r.u64("metrics.accesses");
  enclave_faults = r.u64("metrics.enclave_faults");
  sip_checks = r.u64("metrics.sip_checks");
  sip_requests = r.u64("metrics.sip_requests");
  sip_check_cycles = r.u64("metrics.sip_check_cycles");
  sip_notification_cycles = r.u64("metrics.sip_notification_cycles");
  dfp_stopped = r.boolean("metrics.dfp_stopped");
  dfp_stopped_at = r.u64("metrics.dfp_stopped_at");
  dfp_preload_counter = r.u64("metrics.dfp_preload_counter");
  dfp_acc_preload_counter = r.u64("metrics.dfp_acc_preload_counter");
  dfp_predictor_hits = r.u64("metrics.dfp_predictor_hits");
  dfp_predictor_misses = r.u64("metrics.dfp_predictor_misses");
  driver.load(r);
  inject.load(r);
}

}  // namespace sgxpl::core
