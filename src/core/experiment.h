// Experiment harness shared by the benchmark binaries: runs a workload
// under several schemes (compiling the SIP plan from the train input when a
// scheme needs it) and reports normalized execution times the way the
// paper's figures do.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/scheme.h"
#include "core/simulator.h"
#include "sip/pipeline.h"
#include "trace/workloads.h"

namespace sgxpl::core {

struct SchemeResult {
  Scheme scheme = Scheme::kBaseline;
  Metrics metrics;
  /// Execution time normalized to this comparison's baseline run.
  double normalized = 1.0;
  /// 1 - normalized; positive = faster than baseline.
  double improvement = 0.0;
};

struct WorkloadComparison {
  std::string workload;
  Metrics baseline;
  std::vector<SchemeResult> schemes;
  /// Instrumentation points of the compiled SIP plan (0 if SIP unused).
  std::size_t sip_points = 0;

  const SchemeResult* find(Scheme s) const noexcept;
};

struct ExperimentOptions {
  /// Scale applied to the ref (measurement) input.
  double scale = 1.0;
  /// Scale applied to the train (profiling) input.
  double train_scale = 0.35;
};

/// Run `workload` under the baseline and each scheme in `schemes`, using
/// `base_cfg` for the platform (its `scheme` field is overridden per run).
/// SIP-using schemes get a plan compiled from the workload's train input
/// with base_cfg.sip parameters; workloads SIP cannot instrument run those
/// schemes with an empty plan (checks nothing, loads nothing).
WorkloadComparison compare_schemes(const trace::Workload& workload,
                                   const std::vector<Scheme>& schemes,
                                   const SimConfig& base_cfg,
                                   const ExperimentOptions& opts = {});

/// compare_schemes by workload name (must exist in the registry).
WorkloadComparison compare_schemes(const std::string& workload_name,
                                   const std::vector<Scheme>& schemes,
                                   const SimConfig& base_cfg,
                                   const ExperimentOptions& opts = {});

/// Replicated measurement, mirroring the paper's methodology ("each
/// application is executed 5 times and their arithmetic means are used"):
/// run the comparison on `replicas` different ref inputs (seeds) and report
/// the mean and standard deviation of each scheme's improvement.
struct ReplicatedResult {
  Scheme scheme = Scheme::kBaseline;
  double mean_improvement = 0.0;
  double stddev = 0.0;
  std::vector<double> samples;
};

std::vector<ReplicatedResult> compare_schemes_replicated(
    const std::string& workload_name, const std::vector<Scheme>& schemes,
    const SimConfig& base_cfg, const ExperimentOptions& opts = {},
    int replicas = 5);

}  // namespace sgxpl::core
