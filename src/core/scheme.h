// Execution schemes evaluated by the paper and the simulator configuration
// bundling the platform model with scheme parameters.
#pragma once

#include <string>

#include "dfp/dfp_engine.h"
#include "inject/chaos_plan.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/time_series.h"
#include "sgxsim/cost_model.h"
#include "sgxsim/driver.h"
#include "sip/instrumenter.h"

namespace sgxpl::core {

enum class Scheme {
  kNative,    // outside any enclave (motivation study only)
  kBaseline,  // in-enclave, vanilla driver, no preloading
  kDfp,       // dynamic fault-history preloading, no stop valve
  kDfpStop,   // DFP with the misprediction stop mechanism (paper default)
  kSip,       // source-instrumentation preloading only
  kHybrid,    // SIP + DFP-stop combined (paper §5.4)
};

const char* to_string(Scheme s) noexcept;

/// Crash-consistent checkpointing (docs/ROBUSTNESS.md, "Checkpoint &
/// recovery"). Snapshots are aligned to trace-access boundaries and written
/// atomically (temp file + rename), so a kill at any wall-clock instant
/// leaves either the previous or the new snapshot — never a torn one.
struct CheckpointOptions {
  /// Write a checkpoint every N completed accesses (0 = off).
  std::uint64_t every_accesses = 0;
  /// Where periodic checkpoints go (required when every_accesses > 0).
  std::string path;
  /// When non-empty, restore this snapshot before running. The file must
  /// exist and describe the same trace/scheme/configuration (CheckFailure
  /// otherwise). Delta files beside it (`<path>.delta-N`) are replayed on
  /// top of the base automatically.
  std::string resume_path;
  /// Emit a full base snapshot every N checkpoints and incremental delta
  /// frames in between (snapshot format v2). 1 = every checkpoint is a full
  /// snapshot (the pre-v2 behaviour); larger values bound the delta-chain
  /// length a resume has to replay. 0 is treated as 1.
  std::uint64_t full_every = 1;
};

struct SimConfig {
  sgxsim::EnclaveConfig enclave;  // elrange_pages 0 = take from the trace
  sgxsim::CostModel costs;
  Scheme scheme = Scheme::kBaseline;
  dfp::DfpParams dfp;
  sip::InstrumenterParams sip;
  /// SIP notification placement: 0 = the paper's conservative mode (notify
  /// immediately before the access, blocking until loaded). N > 0 = the
  /// hoisted mode of §3.2/Fig. 4: the compiler moves the check+notify N
  /// accesses ahead, so the load overlaps the intervening compute and the
  /// access itself runs unmodified (faulting only if the load is late).
  std::uint32_t sip_lookahead = 0;
  /// Run the driver's structural invariant check (page table / EPC /
  /// bitmap agreement) after the trace completes. O(ELRANGE); meant for
  /// tests.
  bool validate = false;
  /// Fraction of channel-busy time added to overlapping enclave compute:
  /// the encrypted page copies of ELDU/EWB contend with the application for
  /// memory bandwidth, which is one reason preloading gains saturate well
  /// below the AEX+ERESUME bound on real hardware (paper §5.6).
  double channel_contention = 0.0;

  /// Fault-injection plan for the untrusted paging stack (src/inject).
  /// Default-constructed = no faults enabled = zero-overhead plain run;
  /// see docs/ROBUSTNESS.md.
  inject::ChaosPlan chaos;

  /// Periodic checkpoint / resume-from-snapshot settings (off by default).
  /// Ignored by the native scheme, which has no paging state to snapshot.
  CheckpointOptions checkpoint;

  // --- Observability sinks (not owned; null = off, zero overhead). ---
  // See docs/OBSERVABILITY.md. Counters/histograms accumulate across runs
  // sharing one registry (merge semantics); the event log and time series
  // are cleared at the start of each run so they hold exactly one run's
  // window (a bench's --trace captures its final simulation).
  obs::MetricsRegistry* registry = nullptr;
  obs::TimeSeriesSet* timeseries = nullptr;
  obs::EventLog* event_log = nullptr;
  obs::Profiler* profiler = nullptr;

  /// Whether this scheme runs a DFP engine, and with the stop valve.
  bool uses_dfp() const noexcept {
    return scheme == Scheme::kDfp || scheme == Scheme::kDfpStop ||
           scheme == Scheme::kHybrid;
  }
  bool dfp_stop_forced() const noexcept {
    return scheme == Scheme::kDfpStop || scheme == Scheme::kHybrid;
  }
  bool uses_sip() const noexcept {
    return scheme == Scheme::kSip || scheme == Scheme::kHybrid;
  }

  std::string describe() const;
};

/// The configuration used for all paper-reproduction experiments: 96 MiB
/// EPC, the paper's cycle constants, paper-default DFP parameters
/// (stream_list 30, LOADLENGTH 4), 5% SIP threshold, and the calibrated
/// memory-bandwidth contention factor.
SimConfig paper_platform(Scheme scheme = Scheme::kBaseline);

}  // namespace sgxpl::core
