// Multiple enclaves sharing one EPC (paper §5.6 discussion).
//
// "Sharing EPC among multiple processes … is supported on Intel processors,
// but the total EPC size remains the same and each enclave will receive a
// smaller portion. As each enclave can handle its preloading independently,
// our proposed schemes will work for each enclave. However, EPC contention
// becomes a serious issue."
//
// This co-simulator runs K application traces against ONE shared driver:
// one physical EPC, one paging channel, one CLOCK sweep — with each
// enclave's ELRANGE placed at a disjoint offset in the combined address
// space and each enclave running its own DFP engine (keyed by ProcessId).
// The scheduler always steps the enclave with the smallest virtual clock,
// bounding cross-enclave causality skew to a single fault-handling span.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/scheme.h"
#include "sip/instrumenter.h"
#include "trace/access.h"

namespace sgxpl::core {

struct EnclaveApp {
  const trace::Trace* trace = nullptr;
  Scheme scheme = Scheme::kBaseline;
  /// Required by SIP-using schemes; ignored otherwise.
  const sip::InstrumentationPlan* plan = nullptr;
};

struct MultiEnclaveResult {
  /// Per-enclave metrics (total_cycles = that enclave's finishing time).
  std::vector<Metrics> per_enclave;
  /// Time at which the last enclave finished.
  Cycles makespan = 0;
  /// Shared-driver statistics (global faults, evictions, channel ops).
  sgxsim::DriverStats driver;
};

class MultiEnclaveSimulator {
 public:
  /// `config.enclave.epc_pages` is the *shared* physical EPC. The scheme
  /// field of `config` is ignored; each app carries its own.
  explicit MultiEnclaveSimulator(const SimConfig& config);

  MultiEnclaveResult run(const std::vector<EnclaveApp>& apps);

 private:
  SimConfig config_;
};

}  // namespace sgxpl::core
