// Multiple enclaves sharing one EPC (paper §5.6 discussion).
//
// "Sharing EPC among multiple processes … is supported on Intel processors,
// but the total EPC size remains the same and each enclave will receive a
// smaller portion. As each enclave can handle its preloading independently,
// our proposed schemes will work for each enclave. However, EPC contention
// becomes a serious issue."
//
// This co-simulator runs K application traces against ONE shared driver:
// one physical EPC, one paging channel, one CLOCK sweep — with each
// enclave's ELRANGE placed at a disjoint offset in the combined address
// space and each enclave running its own DFP engine (keyed by ProcessId).
// The scheduler always steps the enclave with the smallest virtual clock,
// bounding cross-enclave causality skew to a single fault-handling span.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/scheme.h"
#include "sip/instrumenter.h"
#include "snapshot/fwd.h"
#include "trace/access.h"

namespace sgxpl::core {

struct EnclaveApp {
  const trace::Trace* trace = nullptr;
  Scheme scheme = Scheme::kBaseline;
  /// Required by SIP-using schemes; ignored otherwise.
  const sip::InstrumentationPlan* plan = nullptr;
};

struct MultiEnclaveResult {
  /// Per-enclave metrics (total_cycles = that enclave's finishing time).
  std::vector<Metrics> per_enclave;
  /// Time at which the last enclave finished.
  Cycles makespan = 0;
  /// Shared-driver statistics (global faults, evictions, channel ops).
  sgxsim::DriverStats driver;
  /// Final degradation-ladder level per enclave (all kFullPreload unless
  /// config.enclave.admission is enabled).
  std::vector<sgxsim::DegradeLevel> degrade_levels;
  /// Shared fault-injection activity (all zero when no chaos plan ran).
  inject::InjectStats inject;
  /// Final per-tenant elastic EPC quotas (empty unless
  /// config.enclave.elastic is enabled).
  std::vector<PageNum> elastic_quotas;
  /// Elastic controller decision counters (all zero when elastic is off).
  sgxsim::ElasticStats elastic;
};

/// One in-progress co-simulation, steppable one access at a time so it can
/// be checkpointed and resumed bit-identically (same contract as
/// core::SimulationRun; see its header for the save/load semantics). The
/// traces and plans referenced by `apps` must outlive the run.
class MultiEnclaveRun {
 public:
  MultiEnclaveRun(const SimConfig& config, const std::vector<EnclaveApp>& apps);
  ~MultiEnclaveRun();
  MultiEnclaveRun(const MultiEnclaveRun&) = delete;
  MultiEnclaveRun& operator=(const MultiEnclaveRun&) = delete;

  bool done() const noexcept;
  /// Consume one access from the enclave whose virtual clock is furthest
  /// behind. Requires !done().
  void step();
  /// Total accesses consumed across all enclaves.
  std::uint64_t steps() const noexcept;

  /// Assemble the final result. Requires done(); call at most once.
  MultiEnclaveResult finish();
  MultiEnclaveResult run_to_end();

  // --- checkpoint/restore (same contract as SimulationRun) ---
  // Format v2 lays multi-enclave state out per tenant: an "ENCM" identity
  // section, the tenant's "APPS" clock/metrics, and its "DFPE" engine (when
  // the scheme runs one) are grouped per enclave so one tenant can be
  // extracted and inspected standalone (snapshot::extract_enclave).
  void save(snapshot::Writer& w) const;
  void save(snapshot::Writer& w, const snapshot::ChainHeader& chain) const;
  void load(snapshot::Reader& r);
  std::vector<std::uint8_t> save_bytes() const;
  void load_bytes(const std::vector<std::uint8_t>& bytes);
  bool restore_if_compatible(const std::vector<std::uint8_t>& bytes);
  snapshot::RunMeta meta() const;

  // --- delta checkpointing (same contract as SimulationRun) ---
  void save_delta(snapshot::Writer& w, const snapshot::ChainHeader& chain,
                  const snapshot::SectionGens& last) const;
  void apply_delta_bytes(const std::vector<std::uint8_t>& bytes);
  snapshot::SectionGens section_gens() const;
  void clear_dirty();

  // --- per-tenant inspection (the in-situ side of extraction tests) ---
  std::size_t enclave_count() const noexcept;
  Metrics tenant_metrics(std::size_t enclave) const;
  std::uint64_t tenant_cursor(std::size_t enclave) const;
  /// One tenant's virtual clock (its current simulated time; frozen while
  /// the tenant is paused or done). The fleet supervisor charges RPO/RTO
  /// in these cycles.
  Cycles tenant_clock(std::size_t enclave) const;

  // --- live-migration hooks (fleet::MigrationController) ---
  /// Placement of one tenant's ELRANGE in the combined page space, plus its
  /// trace length — the inputs snapshot::extract_resumable needs.
  snapshot::TenantGeometry tenant_geometry(std::size_t enclave) const;
  /// Freeze/unfreeze one tenant's virtual clock: a paused tenant is skipped
  /// by step()'s min-clock scheduler (the stop-and-copy window of a live
  /// migration). Pausing is control-plane state — never serialized.
  void set_tenant_paused(std::size_t enclave, bool paused);
  bool tenant_paused(std::size_t enclave) const;
  /// True while some unfinished tenant is not paused (done() stays false
  /// during a stop-and-copy, so the scheduler needs this weaker guard).
  bool steppable() const noexcept;
  /// Enter/leave the migration drain on the shared driver: the tenant's
  /// preloads are shed (demand loads still served) and, when admission
  /// control is active, its ladder freezes at kDraining.
  void begin_tenant_drain(std::size_t enclave);
  void end_tenant_drain(std::size_t enclave);
  /// Commit the source side of a completed migration: mark the tenant done
  /// at its current clock so the co-run continues without it. Requires the
  /// tenant to be paused (it must not consume accesses after the final
  /// copy).
  void retire_tenant(std::size_t enclave);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class MultiEnclaveSimulator {
 public:
  /// `config.enclave.epc_pages` is the *shared* physical EPC. The scheme
  /// field of `config` is ignored; each app carries its own.
  explicit MultiEnclaveSimulator(const SimConfig& config);

  /// Honors config.checkpoint exactly like EnclaveSimulator::run.
  MultiEnclaveResult run(const std::vector<EnclaveApp>& apps);

 private:
  SimConfig config_;
};

}  // namespace sgxpl::core
