#include "core/simulator.h"

#include <memory>
#include <unordered_set>

#include "common/check.h"
#include "dfp/dfp_engine.h"
#include "inject/fault_injector.h"
#include "sgxsim/driver.h"

namespace sgxpl::core {

EnclaveSimulator::EnclaveSimulator(const SimConfig& config)
    : config_(config) {}

Metrics EnclaveSimulator::run(const trace::Trace& t,
                              const sip::InstrumentationPlan* plan) {
  SGXPL_CHECK_MSG(!t.empty(), "empty trace");
  if (config_.scheme == Scheme::kNative) {
    return run_native(t);
  }
  SGXPL_CHECK_MSG(!config_.uses_sip() || plan != nullptr,
                  "SIP scheme needs an instrumentation plan");

  SimConfig cfg = config_;
  if (cfg.enclave.elrange_pages == 0) {
    cfg.enclave.elrange_pages = t.elrange_pages();
  }
  SGXPL_CHECK_MSG(cfg.enclave.elrange_pages > 0,
                  "trace declares no ELRANGE size");

  std::unique_ptr<dfp::DfpEngine> engine;
  if (cfg.uses_dfp()) {
    dfp::DfpParams params = cfg.dfp;
    if (cfg.dfp_stop_forced()) {
      params.stop_enabled = true;
    }
    engine = std::make_unique<dfp::DfpEngine>(params);
  }
  // Chaos attach: the injector perturbs the untrusted stack through the
  // driver's ChaosHooks boundary; a plan with nothing enabled costs nothing.
  // Under chaos the online watchdog defaults on (every 64 scans plus every
  // injection boundary) so a hook that ever corrupted ground truth trips
  // immediately, not at end-of-run.
  std::unique_ptr<inject::FaultInjector> injector;
  if (cfg.chaos.any_enabled()) {
    injector = std::make_unique<inject::FaultInjector>(cfg.chaos);
    if (cfg.enclave.watchdog_scan_interval == 0) {
      cfg.enclave.watchdog_scan_interval = 64;
    }
  }
  sgxsim::Driver driver(cfg.enclave, cfg.costs, engine.get());
  if (injector != nullptr) {
    driver.set_chaos(injector.get());
  }

  // Observability attach: each sink is independent and null means off.
  if (cfg.event_log != nullptr) {
    cfg.event_log->clear();  // the log holds exactly one run's window
    driver.set_event_log(cfg.event_log);
    if (injector != nullptr) {
      injector->set_event_log(cfg.event_log);
    }
  }
  if (cfg.registry != nullptr) {
    driver.set_metrics(cfg.registry);
  }
  if (cfg.timeseries != nullptr) {
    cfg.timeseries->clear();  // like the event log: one run's window
    driver.set_time_series(cfg.timeseries);
  }
  if (engine != nullptr &&
      (cfg.registry != nullptr || cfg.timeseries != nullptr)) {
    engine->set_observability(cfg.registry, cfg.timeseries);
  }

  const bool sip_on = cfg.uses_sip() && plan != nullptr && !plan->empty();
  const double contention = cfg.channel_contention;

  const std::uint32_t lookahead = cfg.sip_lookahead;
  const auto& accesses = t.accesses();

  // Hoisted mode: the check+notify for each instrumented access runs
  // `lookahead` accesses early; issue the first window up front (the
  // compiler hoists them to the enclave's entry).
  auto hoist = [&](std::size_t idx, Cycles& now, Metrics& m) {
    const auto& target = accesses[idx];
    if (!plan->instrumented(target.site)) {
      return;
    }
    now += cfg.costs.bitmap_check;
    m.sip_check_cycles += cfg.costs.bitmap_check;
    ++m.sip_checks;
    if (!driver.sip_bitmap_check(target.page, now)) {
      now += cfg.costs.sip_notification;
      m.sip_notification_cycles += cfg.costs.sip_notification;
      ++m.sip_requests;
      driver.sip_prefetch(target.page, now);
    }
  };

  Metrics m;
  Cycles now = 0;
  if (sip_on && lookahead > 0) {
    for (std::size_t j = 0; j < std::min<std::size_t>(lookahead, accesses.size());
         ++j) {
      hoist(j, now, m);
    }
  }

  for (std::size_t i = 0; i < accesses.size(); ++i) {
    const auto& a = accesses[i];
    ++m.accesses;

    Cycles gap = a.gap;
    if (contention > 0.0 && gap > 0) {
      // Enclave compute overlapping page copies runs slower: inflate the
      // gap by the contention share of the overlapped busy time. One
      // fixpoint step is enough at realistic factors.
      const Cycles busy = driver.channel().busy_overlap(now, now + gap);
      if (busy > 0) {
        const auto extra = static_cast<Cycles>(
            static_cast<double>(busy) * contention);
        gap += extra;
        m.contention_cycles += extra;
      }
    }
    now += gap;
    m.compute_cycles += gap;

    if (sip_on) {
      if (lookahead == 0) {
        if (plan->instrumented(a.site)) {
          // Conservative mode: BIT_MAP_CHECK right before the access, then
          // a blocking page_loadin_function on a miss.
          now += cfg.costs.bitmap_check;
          m.sip_check_cycles += cfg.costs.bitmap_check;
          ++m.sip_checks;
          if (!driver.sip_bitmap_check(a.page, now)) {
            const Cycles loaded = driver.sip_load(a.page, now);
            now = loaded + cfg.costs.sip_notification;
            m.sip_notification_cycles += cfg.costs.sip_notification;
            ++m.sip_requests;
          }
        }
      } else if (i + lookahead < accesses.size()) {
        hoist(i + lookahead, now, m);
      }
    }

    const auto outcome = driver.access(a.page, now);
    now = outcome.completion;
    if (outcome.faulted) {
      ++m.enclave_faults;
    }
  }

  m.total_cycles = now;
  if (cfg.validate) {
    driver.drain();
    driver.check_invariants();
  }
  m.driver = driver.stats();
  if (injector != nullptr) {
    m.inject = injector->stats();
  }
  if (engine != nullptr) {
    m.dfp_stopped = engine->stopped();
    m.dfp_stopped_at = engine->stopped_at();
    m.dfp_preload_counter = engine->preloaded_pages().preload_counter();
    m.dfp_acc_preload_counter =
        engine->preloaded_pages().acc_preload_counter();
    m.dfp_predictor_hits = engine->predictor().hits();
    m.dfp_predictor_misses = engine->predictor().misses();
  }
  if (cfg.registry != nullptr) {
    auto& reg = *cfg.registry;
    m.driver.publish(reg);
    if (engine != nullptr) {
      engine->publish(reg);
    }
    if (injector != nullptr) {
      m.inject.publish(reg);
    }
    reg.counter("sim.runs").add();
    reg.counter("sim.total_cycles").add(m.total_cycles);
    reg.counter("sim.compute_cycles").add(m.compute_cycles);
    reg.counter("sim.contention_cycles").add(m.contention_cycles);
    if (sip_on) {
      reg.counter("sip.checks").add(m.sip_checks);
      reg.counter("sip.requests").add(m.sip_requests);
      reg.counter("sip.check_cycles").add(m.sip_check_cycles);
      reg.counter("sip.notification_cycles").add(m.sip_notification_cycles);
    }
  }
  return m;
}

Metrics EnclaveSimulator::run_native(const trace::Trace& t) const {
  // Outside an enclave the 32 GiB host holds the whole footprint: only the
  // first touch of each page faults, at the native fault cost.
  Metrics m;
  std::unordered_set<PageNum> touched;
  touched.reserve(t.size() / 4);
  Cycles now = 0;
  for (const auto& a : t.accesses()) {
    ++m.accesses;
    now += a.gap;
    m.compute_cycles += a.gap;
    if (touched.insert(a.page).second) {
      now += config_.costs.native_fault;
      ++m.enclave_faults;  // reported as plain page faults here
    }
  }
  m.total_cycles = now;
  return m;
}

Metrics simulate(const trace::Trace& t, const SimConfig& config,
                 const sip::InstrumentationPlan* plan) {
  EnclaveSimulator sim(config);
  return sim.run(t, plan);
}

}  // namespace sgxpl::core
