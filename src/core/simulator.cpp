#include "core/simulator.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "common/check.h"
#include "dfp/dfp_engine.h"
#include "inject/fault_injector.h"
#include "sgxsim/driver.h"
#include "snapshot/chain.h"
#include "snapshot/codec.h"
#include "snapshot/migrate.h"

namespace sgxpl::core {

SimulationRun::SimulationRun(const SimConfig& config, const trace::Trace& t,
                             const sip::InstrumentationPlan* plan)
    : cfg_(config), trace_(&t), plan_(plan) {
  SGXPL_CHECK_MSG(!t.empty(), "empty trace");
  SGXPL_CHECK_MSG(cfg_.scheme != Scheme::kNative,
                  "the native scheme has no paging state to step; use "
                  "EnclaveSimulator::run");
  SGXPL_CHECK_MSG(!cfg_.uses_sip() || plan != nullptr,
                  "SIP scheme needs an instrumentation plan");

  if (cfg_.enclave.elrange_pages == 0) {
    cfg_.enclave.elrange_pages = t.elrange_pages();
  }
  SGXPL_CHECK_MSG(cfg_.enclave.elrange_pages > 0,
                  "trace declares no ELRANGE size");

  if (cfg_.uses_dfp()) {
    dfp::DfpParams params = cfg_.dfp;
    if (cfg_.dfp_stop_forced()) {
      params.stop_enabled = true;
    }
    engine_ = std::make_unique<dfp::DfpEngine>(params);
  }
  // Chaos attach: the injector perturbs the untrusted stack through the
  // driver's ChaosHooks boundary; a plan with nothing enabled costs nothing.
  // Under chaos the online watchdog defaults on (every 64 scans plus every
  // injection boundary) so a hook that ever corrupted ground truth trips
  // immediately, not at end-of-run.
  if (cfg_.chaos.any_enabled()) {
    injector_ = std::make_unique<inject::FaultInjector>(cfg_.chaos);
    if (cfg_.enclave.watchdog_scan_interval == 0) {
      cfg_.enclave.watchdog_scan_interval = 64;
    }
  }
  driver_ = std::make_unique<sgxsim::Driver>(cfg_.enclave, cfg_.costs,
                                             engine_.get());
  if (injector_ != nullptr) {
    driver_->set_chaos(injector_.get());
  }

  // Observability attach: each sink is independent and null means off.
  if (cfg_.event_log != nullptr) {
    cfg_.event_log->clear();  // the log holds exactly one run's window
    driver_->set_event_log(cfg_.event_log);
    if (injector_ != nullptr) {
      injector_->set_event_log(cfg_.event_log);
    }
  }
  if (cfg_.registry != nullptr) {
    driver_->set_metrics(cfg_.registry);
  }
  if (cfg_.timeseries != nullptr) {
    cfg_.timeseries->clear();  // like the event log: one run's window
    driver_->set_time_series(cfg_.timeseries);
  }
  if (engine_ != nullptr &&
      (cfg_.registry != nullptr || cfg_.timeseries != nullptr)) {
    engine_->set_observability(cfg_.registry, cfg_.timeseries);
  }
  if (cfg_.profiler != nullptr) {
    driver_->set_profiler(cfg_.profiler);
    if (engine_ != nullptr) {
      engine_->set_profiler(cfg_.profiler);
    }
  }

  sip_on_ = cfg_.uses_sip() && plan_ != nullptr && !plan_->empty();
}

SimulationRun::~SimulationRun() = default;

bool SimulationRun::done() const noexcept {
  return cursor_ >= trace_->size();
}

void SimulationRun::hoist(std::size_t idx) {
  // Hoisted mode: the check+notify for each instrumented access runs
  // `sip_lookahead` accesses early.
  const auto& target = trace_->accesses()[idx];
  if (!plan_->instrumented(target.site)) {
    return;
  }
  obs::ScopedSpan span(cfg_.profiler, obs::Phase::kSipCheck);
  const Cycles before = now_;
  now_ += cfg_.costs.bitmap_check;
  m_.sip_check_cycles += cfg_.costs.bitmap_check;
  ++m_.sip_checks;
  if (!driver_->sip_bitmap_check(target.page, now_)) {
    now_ += cfg_.costs.sip_notification;
    m_.sip_notification_cycles += cfg_.costs.sip_notification;
    ++m_.sip_requests;
    driver_->sip_prefetch(target.page, now_);
  }
  span.add_cycles(now_ - before);
}

void SimulationRun::ensure_started() {
  if (started_) {
    return;
  }
  started_ = true;
  // Issue the first lookahead window up front (the compiler hoists these
  // checks to the enclave's entry).
  if (sip_on_ && cfg_.sip_lookahead > 0) {
    const auto prefix = std::min<std::size_t>(cfg_.sip_lookahead,
                                              trace_->size());
    for (std::size_t j = 0; j < prefix; ++j) {
      hoist(j);
    }
  }
}

void SimulationRun::step() {
  SGXPL_CHECK_MSG(!done(), "stepping past the end of the trace");
  ensure_started();

  obs::ScopedSpan step_span(cfg_.profiler, obs::Phase::kStep);
  const Cycles step_start = now_;
  const auto& accesses = trace_->accesses();
  const std::size_t i = cursor_;
  const auto& a = accesses[i];
  ++m_.accesses;

  Cycles gap = a.gap;
  if (cfg_.channel_contention > 0.0 && gap > 0) {
    // Enclave compute overlapping page copies runs slower: inflate the
    // gap by the contention share of the overlapped busy time. One
    // fixpoint step is enough at realistic factors.
    const Cycles busy = driver_->channel().busy_overlap(now_, now_ + gap);
    if (busy > 0) {
      const auto extra = static_cast<Cycles>(static_cast<double>(busy) *
                                             cfg_.channel_contention);
      gap += extra;
      m_.contention_cycles += extra;
    }
  }
  now_ += gap;
  m_.compute_cycles += gap;

  if (sip_on_) {
    const std::uint32_t lookahead = cfg_.sip_lookahead;
    if (lookahead == 0) {
      if (plan_->instrumented(a.site)) {
        // Conservative mode: BIT_MAP_CHECK right before the access, then
        // a blocking page_loadin_function on a miss.
        obs::ScopedSpan sip_span(cfg_.profiler, obs::Phase::kSipCheck);
        const Cycles before = now_;
        now_ += cfg_.costs.bitmap_check;
        m_.sip_check_cycles += cfg_.costs.bitmap_check;
        ++m_.sip_checks;
        if (!driver_->sip_bitmap_check(a.page, now_)) {
          const Cycles loaded = driver_->sip_load(a.page, now_);
          now_ = loaded + cfg_.costs.sip_notification;
          m_.sip_notification_cycles += cfg_.costs.sip_notification;
          ++m_.sip_requests;
        }
        sip_span.add_cycles(now_ - before);
      }
    } else if (i + lookahead < accesses.size()) {
      hoist(i + lookahead);
    }
  }

  const auto outcome = driver_->access(a.page, now_);
  now_ = outcome.completion;
  if (outcome.faulted) {
    ++m_.enclave_faults;
  }
  step_span.add_cycles(now_ - step_start);
  ++cursor_;
}

Metrics SimulationRun::finish() {
  SGXPL_CHECK_MSG(done(), "finishing an unfinished run");
  SGXPL_CHECK_MSG(!finished_, "finish() called twice");
  finished_ = true;
  ensure_started();  // a zero-step finish still runs the hoisted prefix

  m_.total_cycles = now_;
  if (cfg_.validate) {
    driver_->drain();
    driver_->check_invariants();
  }
  m_.driver = driver_->stats();
  if (injector_ != nullptr) {
    m_.inject = injector_->stats();
  }
  if (engine_ != nullptr) {
    m_.dfp_stopped = engine_->stopped();
    m_.dfp_stopped_at = engine_->stopped_at();
    m_.dfp_preload_counter = engine_->preloaded_pages().preload_counter();
    m_.dfp_acc_preload_counter =
        engine_->preloaded_pages().acc_preload_counter();
    m_.dfp_predictor_hits = engine_->predictor().hits();
    m_.dfp_predictor_misses = engine_->predictor().misses();
  }
  if (cfg_.registry != nullptr) {
    auto& reg = *cfg_.registry;
    m_.driver.publish(reg);
    if (engine_ != nullptr) {
      engine_->publish(reg);
    }
    if (injector_ != nullptr) {
      m_.inject.publish(reg);
    }
    reg.counter("sim.runs").add();
    reg.counter("sim.total_cycles").add(m_.total_cycles);
    reg.counter("sim.compute_cycles").add(m_.compute_cycles);
    reg.counter("sim.contention_cycles").add(m_.contention_cycles);
    if (sip_on_) {
      reg.counter("sip.checks").add(m_.sip_checks);
      reg.counter("sip.requests").add(m_.sip_requests);
      reg.counter("sip.check_cycles").add(m_.sip_check_cycles);
      reg.counter("sip.notification_cycles").add(m_.sip_notification_cycles);
    }
  }
  return m_;
}

Metrics SimulationRun::run_to_end() {
  while (!done()) {
    step();
  }
  return finish();
}

std::uint64_t SimulationRun::run_until(Cycles bound) {
  std::uint64_t steps = 0;
  while (!done() && now_ < bound) {
    step();
    ++steps;
  }
  return steps;
}

snapshot::RunMeta SimulationRun::meta() const {
  snapshot::RunMeta meta;
  meta.kind = "enclave-sim";
  meta.scheme = to_string(cfg_.scheme);
  meta.trace_name = trace_->name();
  meta.trace_accesses = trace_->size();
  meta.elrange_pages = cfg_.enclave.elrange_pages;
  meta.epc_pages = cfg_.enclave.epc_pages;
  meta.chaos_spec = cfg_.chaos.any_enabled() ? cfg_.chaos.spec() : "";
  meta.chaos_seed = cfg_.chaos.seed;
  meta.hardening_spec = sgxsim::overload_spec(cfg_.enclave);
  meta.cursor = cursor_;
  return meta;
}

void SimulationRun::save_run_section(snapshot::Writer& w) const {
  w.begin_section("RUNS");
  w.boolean("run.started", started_);
  w.u64("run.cursor", cursor_);
  w.u64("run.now", now_);
  m_.save(w);
  w.end_section();
}

void SimulationRun::load_run_section(snapshot::Reader& r) {
  r.enter_section("RUNS");
  started_ = r.boolean("run.started");
  cursor_ = r.u64("run.cursor");
  SGXPL_CHECK_MSG(cursor_ <= trace_->size(),
                  "snapshot cursor " << cursor_ << " exceeds the trace's "
                                     << trace_->size() << " accesses");
  now_ = r.u64("run.now");
  m_.load(r);
  r.leave_section();
}

void SimulationRun::save_tail_sections(snapshot::Writer& w) const {
  if (engine_ != nullptr) {
    w.begin_section("DFPE");
    engine_->save(w);
    w.end_section();
  }
  if (injector_ != nullptr) {
    w.begin_section("INJC");
    injector_->save(w);
    w.end_section();
  }
}

void SimulationRun::load_tail_sections(snapshot::Reader& r) {
  if (engine_ != nullptr) {
    r.enter_section("DFPE");
    engine_->load(r);
    r.leave_section();
  }
  if (injector_ != nullptr) {
    r.enter_section("INJC");
    injector_->load(r);
    r.leave_section();
  }
}

void SimulationRun::save(snapshot::Writer& w) const {
  save(w, snapshot::ChainHeader{});
}

void SimulationRun::save(snapshot::Writer& w,
                         const snapshot::ChainHeader& chain) const {
  SGXPL_CHECK_MSG(chain.kind == snapshot::FrameKind::kFull,
                  "save() writes full frames; deltas go through save_delta()");
  snapshot::write_chain_header(w, chain);
  snapshot::write_meta(w, meta());
  save_run_section(w);
  driver_->save_sections(w);
  save_tail_sections(w);
}

void SimulationRun::load(snapshot::Reader& r) {
  SGXPL_CHECK_MSG(r.version() >= 2,
                  "format v1 snapshot: load it through load_bytes(), which "
                  "upgrades in memory, or rewrite the file with "
                  "'snapshot_tool upgrade'");
  const snapshot::ChainHeader chain = snapshot::read_chain_header(r);
  SGXPL_CHECK_MSG(chain.kind == snapshot::FrameKind::kFull,
                  "this frame is delta "
                      << chain.seq
                      << " of a checkpoint chain and cannot be restored on "
                         "its own; restore the chain from its base frame");
  const snapshot::RunMeta stored = snapshot::read_meta(r);
  const std::string mismatch = stored.incompatibility(meta());
  SGXPL_CHECK_MSG(mismatch.empty(),
                  "snapshot does not match this run: " << mismatch);
  load_run_section(r);
  driver_->load_sections(r);
  load_tail_sections(r);
  SGXPL_CHECK_MSG(r.sections_entered() == r.section_count(),
                  "snapshot holds " << r.section_count()
                                    << " sections but this run consumes "
                                    << r.sections_entered());
  finished_ = false;
}

std::vector<std::uint8_t> SimulationRun::save_bytes() const {
  snapshot::Writer w;
  save(w);
  return w.finish();
}

void SimulationRun::load_bytes(const std::vector<std::uint8_t>& bytes) {
  snapshot::validate_frame(bytes);
  snapshot::Reader r(bytes);
  if (r.version() < 2) {
    const std::vector<std::uint8_t> upgraded =
        snapshot::upgrade_v1_to_v2(bytes);
    snapshot::Reader upgraded_reader(upgraded);
    load(upgraded_reader);
    return;
  }
  load(r);
}

bool SimulationRun::restore_if_compatible(
    const std::vector<std::uint8_t>& bytes) {
  snapshot::validate_frame(bytes);
  snapshot::Reader probe(bytes);
  if (probe.version() >= 2) {
    (void)snapshot::read_chain_header(probe);
  }
  const snapshot::RunMeta stored = snapshot::read_meta(probe);
  if (!stored.incompatibility(meta()).empty()) {
    return false;
  }
  load_bytes(bytes);
  return true;
}

void SimulationRun::save_delta(snapshot::Writer& w,
                               const snapshot::ChainHeader& chain,
                               const snapshot::SectionGens& last) const {
  SGXPL_CHECK_MSG(chain.kind == snapshot::FrameKind::kDelta,
                  "save_delta() writes delta frames; full frames go through "
                  "save()");
  snapshot::write_chain_header(w, chain);
  snapshot::write_meta(w, meta());
  save_run_section(w);
  driver_->save_delta_sections(w, last);
  save_tail_sections(w);
}

void SimulationRun::apply_delta_bytes(const std::vector<std::uint8_t>& bytes) {
  snapshot::validate_frame(bytes);
  snapshot::Reader r(bytes);
  const snapshot::ChainHeader chain = snapshot::read_chain_header(r);
  SGXPL_CHECK_MSG(chain.kind == snapshot::FrameKind::kDelta,
                  "apply_delta_bytes() on a full frame; restore it with "
                  "load_bytes()");
  const snapshot::RunMeta stored = snapshot::read_meta(r);
  const std::string mismatch = stored.incompatibility(meta());
  SGXPL_CHECK_MSG(mismatch.empty(),
                  "delta frame does not match this run: " << mismatch);
  load_run_section(r);
  driver_->apply_delta_sections(r);
  load_tail_sections(r);
  SGXPL_CHECK_MSG(r.sections_entered() == r.section_count(),
                  "delta frame holds " << r.section_count()
                                       << " sections but this run consumes "
                                       << r.sections_entered());
  finished_ = false;
}

snapshot::SectionGens SimulationRun::section_gens() const {
  return driver_->section_gens();
}

void SimulationRun::clear_dirty() { driver_->clear_dirty(); }

EnclaveSimulator::EnclaveSimulator(const SimConfig& config)
    : config_(config) {}

Metrics EnclaveSimulator::run(const trace::Trace& t,
                              const sip::InstrumentationPlan* plan) {
  SGXPL_CHECK_MSG(!t.empty(), "empty trace");
  if (config_.scheme == Scheme::kNative) {
    return run_native(t);
  }
  SimulationRun run(config_, t, plan);
  const CheckpointOptions& ck = config_.checkpoint;
  // Checkpoint latency lands in the registry as steady-clock nanoseconds
  // (~cycles at 1 GHz) — real I/O time, not virtual time.
  const auto ns_since = [](std::chrono::steady_clock::time_point t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };
  if (!ck.resume_path.empty()) {
    // Meta-gated: a snapshot belonging to a different configuration (benches
    // that simulate several schemes overwrite one file per run) is skipped
    // and this run starts fresh. Corrupt snapshots or broken chains still
    // throw. Any `.delta-N` files beside the base are replayed on top.
    obs::ScopedSpan span(config_.profiler, obs::Phase::kSnapshotLoad);
    const auto t0 = std::chrono::steady_clock::now();
    if (snapshot::restore_chain_from_files(run, ck.resume_path) &&
        config_.registry != nullptr) {
      config_.registry->histogram("snapshot.load_cycles").record(ns_since(t0));
    }
  }
  const bool checkpointing = ck.every_accesses > 0 && !ck.path.empty();
  snapshot::Snapshotter<SimulationRun> snap(ck.full_every);
  while (!run.done()) {
    run.step();
    if (checkpointing && run.cursor() % ck.every_accesses == 0) {
      obs::ScopedSpan span(config_.profiler, obs::Phase::kSnapshotSave);
      const auto t0 = std::chrono::steady_clock::now();
      const snapshot::ChainFrame frame = snap.checkpoint(run);
      const bool full = frame.header.kind == snapshot::FrameKind::kFull;
      snapshot::write_file_atomic(
          full ? ck.path : snapshot::delta_path(ck.path, frame.header.seq),
          frame.bytes);
      if (full) snapshot::remove_stale_deltas(ck.path);
      if (config_.registry != nullptr) {
        config_.registry->histogram("snapshot.save_cycles")
            .record(ns_since(t0));
        config_.registry->histogram("snapshot.bytes_written")
            .record(frame.bytes.size());
      }
    }
  }
  return run.finish();
}

Metrics EnclaveSimulator::run_native(const trace::Trace& t) const {
  // Outside an enclave the 32 GiB host holds the whole footprint: only the
  // first touch of each page faults, at the native fault cost.
  Metrics m;
  std::unordered_set<PageNum> touched;
  touched.reserve(t.size() / 4);
  Cycles now = 0;
  for (const auto& a : t.accesses()) {
    ++m.accesses;
    now += a.gap;
    m.compute_cycles += a.gap;
    if (touched.insert(a.page).second) {
      now += config_.costs.native_fault;
      ++m.enclave_faults;  // reported as plain page faults here
    }
  }
  m.total_cycles = now;
  return m;
}

Metrics simulate(const trace::Trace& t, const SimConfig& config,
                 const sip::InstrumentationPlan* plan) {
  EnclaveSimulator sim(config);
  return sim.run(t, plan);
}

}  // namespace sgxpl::core
