#include "core/experiment.h"

#include "common/check.h"
#include "common/stats.h"

namespace sgxpl::core {

const SchemeResult* WorkloadComparison::find(Scheme s) const noexcept {
  for (const auto& r : schemes) {
    if (r.scheme == s) {
      return &r;
    }
  }
  return nullptr;
}

WorkloadComparison compare_schemes(const trace::Workload& workload,
                                   const std::vector<Scheme>& schemes,
                                   const SimConfig& base_cfg,
                                   const ExperimentOptions& opts) {
  WorkloadComparison out;
  out.workload = workload.info.name;

  const trace::Trace ref = workload.make(trace::ref_params(opts.scale));

  // Compile the SIP plan once if any requested scheme uses it.
  bool needs_sip = false;
  for (const Scheme s : schemes) {
    SimConfig probe = base_cfg;
    probe.scheme = s;
    needs_sip = needs_sip || probe.uses_sip();
  }
  sip::InstrumentationPlan plan;
  if (needs_sip && workload.info.sip_supported) {
    auto compiled = sip::compile_workload(workload, base_cfg.sip,
                                          trace::train_params(opts.train_scale),
                                          base_cfg.registry);
    plan = std::move(compiled.plan);
    out.sip_points = plan.points();
  }

  {
    SimConfig cfg = base_cfg;
    cfg.scheme = Scheme::kBaseline;
    out.baseline = simulate(ref, cfg);
  }

  for (const Scheme s : schemes) {
    SimConfig cfg = base_cfg;
    cfg.scheme = s;
    SchemeResult r;
    r.scheme = s;
    if (s == Scheme::kBaseline) {
      r.metrics = out.baseline;
    } else {
      r.metrics = simulate(ref, cfg, cfg.uses_sip() ? &plan : nullptr);
    }
    r.normalized = r.metrics.normalized_to(out.baseline);
    r.improvement = r.metrics.improvement_over(out.baseline);
    out.schemes.push_back(std::move(r));
  }
  return out;
}

WorkloadComparison compare_schemes(const std::string& workload_name,
                                   const std::vector<Scheme>& schemes,
                                   const SimConfig& base_cfg,
                                   const ExperimentOptions& opts) {
  const trace::Workload* w = trace::find_workload(workload_name);
  SGXPL_CHECK_MSG(w != nullptr, "unknown workload: " << workload_name);
  return compare_schemes(*w, schemes, base_cfg, opts);
}

std::vector<ReplicatedResult> compare_schemes_replicated(
    const std::string& workload_name, const std::vector<Scheme>& schemes,
    const SimConfig& base_cfg, const ExperimentOptions& opts, int replicas) {
  SGXPL_CHECK_MSG(replicas >= 1, "need at least one replica");
  const trace::Workload* w = trace::find_workload(workload_name);
  SGXPL_CHECK_MSG(w != nullptr, "unknown workload: " << workload_name);

  // The SIP plan is compiled once from the train input, as in the paper;
  // only the measurement input varies across replicas.
  bool needs_sip = false;
  for (const Scheme s : schemes) {
    SimConfig probe = base_cfg;
    probe.scheme = s;
    needs_sip = needs_sip || probe.uses_sip();
  }
  sip::InstrumentationPlan plan;
  if (needs_sip && w->info.sip_supported) {
    plan = sip::compile_workload(*w, base_cfg.sip,
                                 trace::train_params(opts.train_scale))
               .plan;
  }

  std::vector<ReplicatedResult> results;
  results.reserve(schemes.size());
  for (const Scheme s : schemes) {
    ReplicatedResult r;
    r.scheme = s;
    results.push_back(std::move(r));
  }

  for (int rep = 0; rep < replicas; ++rep) {
    trace::WorkloadParams params = trace::ref_params(opts.scale);
    params.seed += static_cast<std::uint64_t>(rep) * 1000;
    const trace::Trace ref = w->make(params);

    SimConfig base = base_cfg;
    base.scheme = Scheme::kBaseline;
    const Metrics baseline = simulate(ref, base);

    for (std::size_t i = 0; i < schemes.size(); ++i) {
      SimConfig cfg = base_cfg;
      cfg.scheme = schemes[i];
      const Metrics m =
          simulate(ref, cfg, cfg.uses_sip() ? &plan : nullptr);
      results[i].samples.push_back(m.improvement_over(baseline));
    }
  }

  for (auto& r : results) {
    RunningStat stat;
    for (const double s : r.samples) {
      stat.add(s);
    }
    r.mean_improvement = stat.mean();
    r.stddev = stat.stddev();
  }
  return results;
}

}  // namespace sgxpl::core
