// Run metrics reported by the enclave simulator.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "inject/fault_injector.h"
#include "sgxsim/driver.h"
#include "snapshot/fwd.h"

namespace sgxpl::core {

struct Metrics {
  /// Virtual time at which the application finished the trace.
  Cycles total_cycles = 0;
  /// Pure compute portion (sum of trace gaps after contention inflation).
  Cycles compute_cycles = 0;
  /// Extra compute cycles caused by channel/memory contention.
  Cycles contention_cycles = 0;

  std::uint64_t accesses = 0;
  std::uint64_t enclave_faults = 0;

  // SIP runtime activity.
  std::uint64_t sip_checks = 0;
  std::uint64_t sip_requests = 0;  // notifications (bitmap said absent)
  Cycles sip_check_cycles = 0;
  Cycles sip_notification_cycles = 0;

  // DFP engine outcome (zero/false when no DFP ran).
  bool dfp_stopped = false;
  Cycles dfp_stopped_at = 0;
  std::uint64_t dfp_preload_counter = 0;
  std::uint64_t dfp_acc_preload_counter = 0;
  std::uint64_t dfp_predictor_hits = 0;
  std::uint64_t dfp_predictor_misses = 0;

  /// Final driver-side statistics (faults, loads, preload accounting, ...).
  sgxsim::DriverStats driver;

  /// Fault-injection activity (all zero when no chaos plan was active).
  inject::InjectStats inject;

  /// Fractional improvement of this run over `baseline`
  /// (positive = faster), the paper's headline metric.
  double improvement_over(const Metrics& baseline) const noexcept;

  /// Execution time normalized to `baseline` (the paper's figures).
  double normalized_to(const Metrics& baseline) const noexcept;

  std::string describe() const;

  /// Checkpoint/restore of every field, including the nested driver and
  /// injection statistics. Also the substrate of snapshot-based metric
  /// diffing: two runs whose Metrics serialize identically finished in
  /// bit-identical states.
  void save(snapshot::Writer& w) const;
  void load(snapshot::Reader& r);
};

}  // namespace sgxpl::core
