#include "core/multi_thread.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/check.h"
#include "dfp/dfp_engine.h"
#include "sgxsim/driver.h"

namespace sgxpl::core {

ThreadedRunResult run_threads(const SimConfig& config,
                              const std::vector<const trace::Trace*>& threads,
                              bool per_thread_streams) {
  SGXPL_CHECK_MSG(!threads.empty(), "no threads to run");
  SGXPL_CHECK_MSG(!config.uses_sip(),
                  "run_threads supports baseline/DFP schemes only");

  PageNum elrange = 0;
  for (const auto* t : threads) {
    SGXPL_CHECK(t != nullptr && !t->empty());
    elrange = std::max(elrange, t->elrange_pages());
  }

  std::unique_ptr<dfp::DfpEngine> engine;
  if (config.uses_dfp()) {
    dfp::DfpParams params = config.dfp;
    if (config.dfp_stop_forced()) {
      params.stop_enabled = true;
    }
    engine = std::make_unique<dfp::DfpEngine>(params);
  }

  sgxsim::EnclaveConfig ecfg = config.enclave;
  ecfg.elrange_pages = elrange;
  sgxsim::Driver driver(ecfg, config.costs, engine.get());

  struct ThreadState {
    std::size_t cursor = 0;
    Cycles now = 0;
    bool done = false;
    Metrics metrics;
  };
  std::vector<ThreadState> state(threads.size());

  for (;;) {
    std::size_t next = threads.size();
    Cycles min_clock = std::numeric_limits<Cycles>::max();
    for (std::size_t i = 0; i < threads.size(); ++i) {
      if (!state[i].done && state[i].now < min_clock) {
        min_clock = state[i].now;
        next = i;
      }
    }
    if (next == threads.size()) {
      break;
    }
    ThreadState& st = state[next];
    const auto& a = threads[next]->accesses()[st.cursor];
    st.now += a.gap;
    st.metrics.compute_cycles += a.gap;
    ++st.metrics.accesses;

    const ProcessId pid{
        per_thread_streams ? static_cast<std::uint32_t>(next) : 0u};
    const auto outcome = driver.access(a.page, st.now, pid);
    st.now = outcome.completion;
    if (outcome.faulted) {
      ++st.metrics.enclave_faults;
    }
    if (++st.cursor >= threads[next]->size()) {
      st.done = true;
      st.metrics.total_cycles = st.now;
    }
  }

  ThreadedRunResult result;
  for (auto& st : state) {
    result.makespan = std::max(result.makespan, st.metrics.total_cycles);
    result.per_thread.push_back(std::move(st.metrics));
  }
  result.driver = driver.stats();
  result.dfp_stopped = engine != nullptr && engine->stopped();
  return result;
}

}  // namespace sgxpl::core
