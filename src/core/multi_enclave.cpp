#include "core/multi_enclave.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/check.h"
#include "dfp/dfp_engine.h"
#include "inject/fault_injector.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/time_series.h"
#include "sgxsim/driver.h"
#include "snapshot/chain.h"
#include "snapshot/codec.h"
#include "snapshot/migrate.h"

namespace sgxpl::core {

namespace {

/// Routes driver callbacks to per-enclave DFP engines: faults by ProcessId,
/// page-scoped events (completion/abort/eviction) by ELRANGE offset.
class PerEnclavePolicy final : public sgxsim::PreloadPolicy {
 public:
  struct Slot {
    std::unique_ptr<dfp::DfpEngine> engine;  // null = no DFP for this app
    PageNum lo = 0;
    PageNum hi = 0;
  };

  explicit PerEnclavePolicy(std::vector<Slot> slots)
      : slots_(std::move(slots)) {}

  std::vector<PageNum> on_fault(ProcessId pid, PageNum page,
                                Cycles now) override {
    auto& slot = slots_.at(pid);
    if (slot.engine == nullptr) {
      return {};
    }
    // Predictions are already in the combined address space (the engine
    // sees combined page numbers); clamp to the owner's ELRANGE so one
    // enclave never preloads into another's range.
    auto pages = slot.engine->on_fault(pid, page, now);
    std::erase_if(pages, [&slot](PageNum p) {
      return p < slot.lo || p >= slot.hi;
    });
    return pages;
  }

  void on_preload_completed(PageNum page, Cycles now) override {
    if (auto* s = owner(page); s != nullptr && s->engine != nullptr) {
      s->engine->on_preload_completed(page, now);
    }
  }

  void on_preloads_aborted(const std::vector<PageNum>& pages,
                           Cycles now) override {
    for (const PageNum p : pages) {
      if (auto* s = owner(p); s != nullptr && s->engine != nullptr) {
        s->engine->on_preloads_aborted({p}, now);
      }
    }
  }

  void on_preloaded_page_evicted(PageNum page, bool was_accessed,
                                 Cycles now) override {
    if (auto* s = owner(page); s != nullptr && s->engine != nullptr) {
      s->engine->on_preloaded_page_evicted(page, was_accessed, now);
    }
  }

  void on_scan(const sgxsim::PageTable& pt, Cycles now) override {
    for (auto& s : slots_) {
      if (s.engine != nullptr) {
        s.engine->on_scan(pt, now);
      }
    }
  }

  const dfp::DfpEngine* engine(std::size_t i) const {
    return slots_.at(i).engine.get();
  }
  dfp::DfpEngine* mutable_engine(std::size_t i) {
    return slots_.at(i).engine.get();
  }

 private:
  Slot* owner(PageNum page) {
    for (auto& s : slots_) {
      if (page >= s.lo && page < s.hi) {
        return &s;
      }
    }
    return nullptr;
  }

  std::vector<Slot> slots_;
};

struct AppState {
  std::size_t cursor = 0;
  Cycles now = 0;
  bool done = false;
  /// Clock frozen for a migration stop-and-copy. Control-plane state only:
  /// never serialized (a carved tenant resumes unpaused on its destination,
  /// and the frozen host frame format cannot grow a field).
  bool paused = false;
  Metrics metrics;
};

}  // namespace

struct MultiEnclaveRun::Impl {
  Impl(const SimConfig& config, const std::vector<EnclaveApp>& the_apps)
      : cfg(config), apps(the_apps) {
    SGXPL_CHECK_MSG(!apps.empty(), "no enclaves to run");

    // Lay the enclaves out at disjoint offsets in the combined space.
    offset.resize(apps.size());
    PageNum total_pages = 0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
      SGXPL_CHECK(apps[i].trace != nullptr && !apps[i].trace->empty());
      offset[i] = total_pages;
      total_pages += apps[i].trace->elrange_pages();
    }

    // Per-enclave scheme state.
    std::vector<PerEnclavePolicy::Slot> slots;
    slots.reserve(apps.size());
    for (std::size_t i = 0; i < apps.size(); ++i) {
      SimConfig probe = cfg;
      probe.scheme = apps[i].scheme;
      PerEnclavePolicy::Slot slot;
      slot.lo = offset[i];
      slot.hi = offset[i] + apps[i].trace->elrange_pages();
      if (probe.uses_dfp()) {
        dfp::DfpParams params = cfg.dfp;
        if (probe.dfp_stop_forced()) {
          params.stop_enabled = true;
        }
        slot.engine = std::make_unique<dfp::DfpEngine>(params);
      }
      if (probe.uses_sip()) {
        SGXPL_CHECK_MSG(apps[i].plan != nullptr,
                        "SIP scheme needs a plan (enclave " << i << ")");
      }
      slots.push_back(std::move(slot));
    }
    policy = std::make_unique<PerEnclavePolicy>(std::move(slots));

    sgxsim::EnclaveConfig ecfg = cfg.enclave;
    ecfg.elrange_pages = total_pages;
    combined_pages = total_pages;
    // Chaos attach, same contract as SimulationRun: under an active plan the
    // online watchdog defaults on so a corrupting hook trips immediately.
    if (cfg.chaos.any_enabled()) {
      injector = std::make_unique<inject::FaultInjector>(cfg.chaos);
      if (ecfg.watchdog_scan_interval == 0) {
        ecfg.watchdog_scan_interval = 64;
      }
    }
    driver = std::make_unique<sgxsim::Driver>(ecfg, cfg.costs, policy.get());
    if (injector != nullptr) {
      driver->set_chaos(injector.get());
    }
    // Elastic EPC engages only here: the controller needs the tenant layout,
    // which single-enclave runs do not have. Engagement is deterministic
    // from config + apps, so both sides of a save/load agree on whether the
    // DRVR section carries elastic fields.
    if (cfg.enclave.elastic.enabled) {
      std::vector<std::pair<PageNum, PageNum>> geometry;
      geometry.reserve(apps.size());
      for (std::size_t i = 0; i < apps.size(); ++i) {
        geometry.emplace_back(offset[i], apps[i].trace->elrange_pages());
      }
      driver->set_elastic_geometry(geometry);
    }
    // Observability attach. Only the shared driver gets live sinks: the
    // per-enclave DFP engines would all write the same "dfp.depth" gauge,
    // so their counters are published (additively) at finish() instead.
    if (cfg.event_log != nullptr) {
      cfg.event_log->clear();
      driver->set_event_log(cfg.event_log);
      if (injector != nullptr) {
        injector->set_event_log(cfg.event_log);
      }
    }
    if (cfg.registry != nullptr) {
      driver->set_metrics(cfg.registry);
    }
    if (cfg.timeseries != nullptr) {
      cfg.timeseries->clear();
      driver->set_time_series(cfg.timeseries);
    }
    if (cfg.profiler != nullptr) {
      driver->set_profiler(cfg.profiler);
      for (std::size_t i = 0; i < apps.size(); ++i) {
        if (auto* eng = policy->mutable_engine(i)) {
          eng->set_profiler(cfg.profiler);
        }
      }
    }
    state.resize(apps.size());
  }

  std::uint64_t steps() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& st : state) {
      sum += st.cursor;
    }
    return sum;
  }

  /// Per-tenant snapshot groups: ENCM identity, APPS clock/metrics, DFPE
  /// engine when the tenant's scheme runs one. Written identically by full
  /// and delta frames (tenant state is small and moves every step), and
  /// reproduced field-for-field by the v1 upgrader so upgraded goldens stay
  /// byte-identical to fresh v2 writes.
  void save_tenants(snapshot::Writer& w) const {
    for (std::size_t i = 0; i < apps.size(); ++i) {
      const bool has_dfp = policy->engine(i) != nullptr;
      w.begin_section("ENCM");
      w.u64("enc.index", i);
      w.str("enc.scheme", to_string(apps[i].scheme));
      w.str("enc.trace", apps[i].trace->name());
      w.boolean("enc.has_dfp", has_dfp);
      w.end_section();
      const AppState& st = state[i];
      w.begin_section("APPS");
      w.u64("app.cursor", st.cursor);
      w.u64("app.now", st.now);
      w.boolean("app.done", st.done);
      st.metrics.save(w);
      w.end_section();
      if (has_dfp) {
        w.begin_section("DFPE");
        policy->engine(i)->save(w);
        w.end_section();
      }
    }
  }

  void load_tenants(snapshot::Reader& r) {
    for (std::size_t i = 0; i < apps.size(); ++i) {
      r.enter_section("ENCM");
      const std::uint64_t index = r.u64("enc.index");
      SGXPL_CHECK_MSG(index == i, "snapshot tenant group " << index
                                      << " arrived at position " << i);
      const std::string scheme = r.str("enc.scheme");
      SGXPL_CHECK_MSG(scheme == to_string(apps[i].scheme),
                      "snapshot enclave " << i << " ran scheme '" << scheme
                                          << "' but this run expects '"
                                          << to_string(apps[i].scheme) << "'");
      const std::string trace_name = r.str("enc.trace");
      SGXPL_CHECK_MSG(trace_name == apps[i].trace->name(),
                      "snapshot enclave " << i << " ran trace '" << trace_name
                                          << "' but this run expects '"
                                          << apps[i].trace->name() << "'");
      const bool has_dfp = r.boolean("enc.has_dfp");
      SGXPL_CHECK_MSG(has_dfp == (policy->engine(i) != nullptr),
                      "snapshot enclave "
                          << i << (has_dfp ? " carries" : " lacks")
                          << " a DFP engine but this run "
                          << (has_dfp ? "lacks" : "carries") << " one");
      r.leave_section();
      AppState& st = state[i];
      r.enter_section("APPS");
      st.cursor = r.u64("app.cursor");
      SGXPL_CHECK_MSG(st.cursor <= apps[i].trace->size(),
                      "snapshot cursor " << st.cursor << " exceeds enclave "
                                         << i << "'s trace of "
                                         << apps[i].trace->size()
                                         << " accesses");
      st.now = r.u64("app.now");
      st.done = r.boolean("app.done");
      st.metrics.load(r);
      r.leave_section();
      if (has_dfp) {
        r.enter_section("DFPE");
        policy->mutable_engine(i)->load(r);
        r.leave_section();
      }
    }
  }

  SimConfig cfg;
  std::vector<EnclaveApp> apps;
  std::vector<PageNum> offset;
  PageNum combined_pages = 0;
  std::unique_ptr<PerEnclavePolicy> policy;
  std::unique_ptr<inject::FaultInjector> injector;
  std::unique_ptr<sgxsim::Driver> driver;
  std::vector<AppState> state;
  bool finished = false;
};

MultiEnclaveRun::MultiEnclaveRun(const SimConfig& config,
                                 const std::vector<EnclaveApp>& apps)
    : impl_(std::make_unique<Impl>(config, apps)) {}

MultiEnclaveRun::~MultiEnclaveRun() = default;

bool MultiEnclaveRun::done() const noexcept {
  for (const auto& st : impl_->state) {
    if (!st.done) {
      return false;
    }
  }
  return true;
}

std::uint64_t MultiEnclaveRun::steps() const noexcept {
  return impl_->steps();
}

void MultiEnclaveRun::step() {
  Impl& im = *impl_;
  // Co-simulation: each enclave has its own clock and cursor; always step
  // the one furthest behind.
  std::size_t next = im.apps.size();
  Cycles min_clock = std::numeric_limits<Cycles>::max();
  for (std::size_t i = 0; i < im.apps.size(); ++i) {
    if (!im.state[i].done && !im.state[i].paused &&
        im.state[i].now < min_clock) {
      min_clock = im.state[i].now;
      next = i;
    }
  }
  SGXPL_CHECK_MSG(next != im.apps.size(),
                  "stepping a finished (or fully paused) multi-enclave run");

  AppState& st = im.state[next];
  const EnclaveApp& app = im.apps[next];
  const auto& a = app.trace->accesses()[st.cursor];
  const PageNum page = im.offset[next] + a.page;

  obs::ScopedSpan step_span(im.cfg.profiler, obs::Phase::kStep);
  const Cycles step_start = st.now;
  st.now += a.gap;
  st.metrics.compute_cycles += a.gap;
  ++st.metrics.accesses;

  SimConfig probe = im.cfg;
  probe.scheme = app.scheme;
  if (probe.uses_sip() && app.plan->instrumented(a.site)) {
    st.now += im.cfg.costs.bitmap_check;
    st.metrics.sip_check_cycles += im.cfg.costs.bitmap_check;
    ++st.metrics.sip_checks;
    if (!im.driver->bitmap().test(page)) {
      const Cycles loaded = im.driver->sip_load(page, st.now);
      st.now = loaded + im.cfg.costs.sip_notification;
      st.metrics.sip_notification_cycles += im.cfg.costs.sip_notification;
      ++st.metrics.sip_requests;
    }
  }

  const auto outcome = im.driver->access(
      page, st.now, ProcessId{static_cast<std::uint32_t>(next)});
  st.now = outcome.completion;
  if (outcome.faulted) {
    ++st.metrics.enclave_faults;
  }
  step_span.add_cycles(st.now - step_start);

  if (++st.cursor >= app.trace->size()) {
    st.done = true;
    st.metrics.total_cycles = st.now;
  }
}

MultiEnclaveResult MultiEnclaveRun::finish() {
  Impl& im = *impl_;
  SGXPL_CHECK_MSG(done(), "finishing an unfinished multi-enclave run");
  SGXPL_CHECK_MSG(!im.finished, "finish() called twice");
  im.finished = true;

  // A hardened run may still hold lost ops awaiting their retry deadlines;
  // settle them so shed/retry/permanent counters are final. The default
  // (non-hardened) path skips this and finishes exactly as before.
  if (im.cfg.enclave.channel.max_retries > 0) {
    im.driver->drain();
    im.driver->check_invariants();
  }

  MultiEnclaveResult result;
  result.per_enclave.reserve(im.apps.size());
  result.degrade_levels.reserve(im.apps.size());
  for (std::size_t i = 0; i < im.apps.size(); ++i) {
    Metrics m = im.state[i].metrics;
    if (const auto* engine = im.policy->engine(i)) {
      m.dfp_stopped = engine->stopped();
      m.dfp_stopped_at = engine->stopped_at();
      m.dfp_preload_counter = engine->preloaded_pages().preload_counter();
      m.dfp_acc_preload_counter =
          engine->preloaded_pages().acc_preload_counter();
      m.dfp_predictor_hits = engine->predictor().hits();
      m.dfp_predictor_misses = engine->predictor().misses();
    }
    result.makespan = std::max(result.makespan, m.total_cycles);
    result.per_enclave.push_back(std::move(m));
    result.degrade_levels.push_back(
        im.driver->degrade_level(ProcessId{static_cast<std::uint32_t>(i)}));
  }
  result.driver = im.driver->stats();
  if (im.injector != nullptr) {
    result.inject = im.injector->stats();
  }
  if (im.driver->elastic_engaged()) {
    const auto& el = im.driver->elastic();
    result.elastic = el.stats();
    result.elastic_quotas.reserve(el.tenant_count());
    for (std::size_t t = 0; t < el.tenant_count(); ++t) {
      result.elastic_quotas.push_back(el.quota(t));
    }
  }
  if (im.cfg.registry != nullptr) {
    auto& reg = *im.cfg.registry;
    result.driver.publish(reg);
    if (im.driver->elastic_engaged()) {
      im.driver->elastic().publish(reg);
    }
    for (std::size_t i = 0; i < im.apps.size(); ++i) {
      if (const auto* engine = im.policy->engine(i)) {
        engine->publish(reg);  // counters add across enclaves
      }
    }
    if (im.injector != nullptr) {
      result.inject.publish(reg);
    }
  }
  return result;
}

MultiEnclaveResult MultiEnclaveRun::run_to_end() {
  while (!done()) {
    step();
  }
  return finish();
}

snapshot::RunMeta MultiEnclaveRun::meta() const {
  const Impl& im = *impl_;
  snapshot::RunMeta meta;
  meta.kind = "multi-enclave";
  std::uint64_t total_accesses = 0;
  for (std::size_t i = 0; i < im.apps.size(); ++i) {
    if (i > 0) {
      meta.scheme += ",";
      meta.trace_name += ",";
    }
    meta.scheme += to_string(im.apps[i].scheme);
    meta.trace_name += im.apps[i].trace->name();
    total_accesses += im.apps[i].trace->size();
  }
  meta.trace_accesses = total_accesses;
  meta.elrange_pages = im.combined_pages;
  meta.epc_pages = im.cfg.enclave.epc_pages;
  meta.chaos_spec = im.cfg.chaos.any_enabled() ? im.cfg.chaos.spec() : "";
  meta.chaos_seed = im.cfg.chaos.seed;
  meta.hardening_spec = sgxsim::overload_spec(im.cfg.enclave);
  meta.cursor = im.steps();
  return meta;
}

void MultiEnclaveRun::save(snapshot::Writer& w) const {
  save(w, snapshot::ChainHeader{});
}

void MultiEnclaveRun::save(snapshot::Writer& w,
                           const snapshot::ChainHeader& chain) const {
  const Impl& im = *impl_;
  SGXPL_CHECK_MSG(chain.kind == snapshot::FrameKind::kFull,
                  "save() writes full frames; deltas go through save_delta()");
  snapshot::write_chain_header(w, chain);
  snapshot::write_meta(w, meta());
  im.save_tenants(w);
  im.driver->save_sections(w);
  if (im.injector != nullptr) {
    w.begin_section("INJC");
    im.injector->save(w);
    w.end_section();
  }
}

void MultiEnclaveRun::load(snapshot::Reader& r) {
  Impl& im = *impl_;
  SGXPL_CHECK_MSG(r.version() >= 2,
                  "format v1 snapshot: load it through load_bytes(), which "
                  "upgrades in memory, or rewrite the file with "
                  "'snapshot_tool upgrade'");
  const snapshot::ChainHeader chain = snapshot::read_chain_header(r);
  SGXPL_CHECK_MSG(chain.kind == snapshot::FrameKind::kFull,
                  "this frame is delta "
                      << chain.seq
                      << " of a checkpoint chain and cannot be restored on "
                         "its own; restore the chain from its base frame");
  const snapshot::RunMeta stored = snapshot::read_meta(r);
  const std::string mismatch = stored.incompatibility(meta());
  SGXPL_CHECK_MSG(mismatch.empty(),
                  "snapshot does not match this run: " << mismatch);
  im.load_tenants(r);
  im.driver->load_sections(r);
  if (im.injector != nullptr) {
    r.enter_section("INJC");
    im.injector->load(r);
    r.leave_section();
  }
  SGXPL_CHECK_MSG(r.sections_entered() == r.section_count(),
                  "snapshot holds " << r.section_count()
                                    << " sections but this run consumes "
                                    << r.sections_entered());
  im.finished = false;
}

std::vector<std::uint8_t> MultiEnclaveRun::save_bytes() const {
  snapshot::Writer w;
  save(w);
  return w.finish();
}

void MultiEnclaveRun::load_bytes(const std::vector<std::uint8_t>& bytes) {
  snapshot::validate_frame(bytes);
  snapshot::Reader r(bytes);
  if (r.version() < 2) {
    const std::vector<std::uint8_t> upgraded =
        snapshot::upgrade_v1_to_v2(bytes);
    snapshot::Reader upgraded_reader(upgraded);
    load(upgraded_reader);
    return;
  }
  load(r);
}

bool MultiEnclaveRun::restore_if_compatible(
    const std::vector<std::uint8_t>& bytes) {
  snapshot::validate_frame(bytes);
  snapshot::Reader probe(bytes);
  if (probe.version() >= 2) {
    (void)snapshot::read_chain_header(probe);
  }
  const snapshot::RunMeta stored = snapshot::read_meta(probe);
  if (!stored.incompatibility(meta()).empty()) {
    return false;
  }
  load_bytes(bytes);
  return true;
}

void MultiEnclaveRun::save_delta(snapshot::Writer& w,
                                 const snapshot::ChainHeader& chain,
                                 const snapshot::SectionGens& last) const {
  const Impl& im = *impl_;
  SGXPL_CHECK_MSG(chain.kind == snapshot::FrameKind::kDelta,
                  "save_delta() writes delta frames; full frames go through "
                  "save()");
  snapshot::write_chain_header(w, chain);
  snapshot::write_meta(w, meta());
  im.save_tenants(w);
  im.driver->save_delta_sections(w, last);
  if (im.injector != nullptr) {
    w.begin_section("INJC");
    im.injector->save(w);
    w.end_section();
  }
}

void MultiEnclaveRun::apply_delta_bytes(
    const std::vector<std::uint8_t>& bytes) {
  Impl& im = *impl_;
  snapshot::validate_frame(bytes);
  snapshot::Reader r(bytes);
  const snapshot::ChainHeader chain = snapshot::read_chain_header(r);
  SGXPL_CHECK_MSG(chain.kind == snapshot::FrameKind::kDelta,
                  "apply_delta_bytes() on a full frame; restore it with "
                  "load_bytes()");
  const snapshot::RunMeta stored = snapshot::read_meta(r);
  const std::string mismatch = stored.incompatibility(meta());
  SGXPL_CHECK_MSG(mismatch.empty(),
                  "delta frame does not match this run: " << mismatch);
  im.load_tenants(r);
  im.driver->apply_delta_sections(r);
  if (im.injector != nullptr) {
    r.enter_section("INJC");
    im.injector->load(r);
    r.leave_section();
  }
  SGXPL_CHECK_MSG(r.sections_entered() == r.section_count(),
                  "delta frame holds " << r.section_count()
                                       << " sections but this run consumes "
                                       << r.sections_entered());
  im.finished = false;
}

snapshot::SectionGens MultiEnclaveRun::section_gens() const {
  return impl_->driver->section_gens();
}

void MultiEnclaveRun::clear_dirty() { impl_->driver->clear_dirty(); }

std::size_t MultiEnclaveRun::enclave_count() const noexcept {
  return impl_->apps.size();
}

Metrics MultiEnclaveRun::tenant_metrics(std::size_t enclave) const {
  SGXPL_CHECK_MSG(enclave < impl_->state.size(),
                  "no enclave " << enclave << " in this co-run");
  return impl_->state[enclave].metrics;
}

std::uint64_t MultiEnclaveRun::tenant_cursor(std::size_t enclave) const {
  SGXPL_CHECK_MSG(enclave < impl_->state.size(),
                  "no enclave " << enclave << " in this co-run");
  return impl_->state[enclave].cursor;
}

Cycles MultiEnclaveRun::tenant_clock(std::size_t enclave) const {
  SGXPL_CHECK_MSG(enclave < impl_->state.size(),
                  "no enclave " << enclave << " in this co-run");
  return impl_->state[enclave].now;
}

snapshot::TenantGeometry MultiEnclaveRun::tenant_geometry(
    std::size_t enclave) const {
  const Impl& im = *impl_;
  SGXPL_CHECK_MSG(enclave < im.apps.size(),
                  "no enclave " << enclave << " in this co-run");
  return snapshot::TenantGeometry{
      .lo = im.offset[enclave],
      .pages = im.apps[enclave].trace->elrange_pages(),
      .trace_accesses = im.apps[enclave].trace->size()};
}

void MultiEnclaveRun::set_tenant_paused(std::size_t enclave, bool paused) {
  SGXPL_CHECK_MSG(enclave < impl_->state.size(),
                  "no enclave " << enclave << " in this co-run");
  impl_->state[enclave].paused = paused;
}

bool MultiEnclaveRun::tenant_paused(std::size_t enclave) const {
  SGXPL_CHECK_MSG(enclave < impl_->state.size(),
                  "no enclave " << enclave << " in this co-run");
  return impl_->state[enclave].paused;
}

bool MultiEnclaveRun::steppable() const noexcept {
  for (const auto& st : impl_->state) {
    if (!st.done && !st.paused) {
      return true;
    }
  }
  return false;
}

void MultiEnclaveRun::begin_tenant_drain(std::size_t enclave) {
  SGXPL_CHECK_MSG(enclave < impl_->state.size(),
                  "no enclave " << enclave << " in this co-run");
  impl_->driver->begin_drain(ProcessId{static_cast<std::uint32_t>(enclave)});
}

void MultiEnclaveRun::end_tenant_drain(std::size_t enclave) {
  SGXPL_CHECK_MSG(enclave < impl_->state.size(),
                  "no enclave " << enclave << " in this co-run");
  impl_->driver->end_drain(ProcessId{static_cast<std::uint32_t>(enclave)});
}

void MultiEnclaveRun::retire_tenant(std::size_t enclave) {
  Impl& im = *impl_;
  SGXPL_CHECK_MSG(enclave < im.state.size(),
                  "no enclave " << enclave << " in this co-run");
  AppState& st = im.state[enclave];
  SGXPL_CHECK_MSG(st.paused,
                  "retire_tenant() requires the tenant to be paused (the "
                  "stop-and-copy must have frozen its clock)");
  if (!st.done) {
    st.done = true;
    st.metrics.total_cycles = st.now;
  }
}

MultiEnclaveSimulator::MultiEnclaveSimulator(const SimConfig& config)
    : config_(config) {}

MultiEnclaveResult MultiEnclaveSimulator::run(
    const std::vector<EnclaveApp>& apps) {
  MultiEnclaveRun run(config_, apps);
  const CheckpointOptions& ck = config_.checkpoint;
  // Same latency accounting as EnclaveSimulator::run: steady-clock
  // nanoseconds (~cycles at 1 GHz) of real checkpoint I/O.
  const auto ns_since = [](std::chrono::steady_clock::time_point t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };
  if (!ck.resume_path.empty()) {
    // Meta-gated, same contract as EnclaveSimulator::run: a snapshot of a
    // different configuration is skipped; corrupt snapshots or broken
    // chains still throw. `.delta-N` files beside the base are replayed.
    obs::ScopedSpan span(config_.profiler, obs::Phase::kSnapshotLoad);
    const auto t0 = std::chrono::steady_clock::now();
    if (snapshot::restore_chain_from_files(run, ck.resume_path) &&
        config_.registry != nullptr) {
      config_.registry->histogram("snapshot.load_cycles").record(ns_since(t0));
    }
  }
  const bool checkpointing = ck.every_accesses > 0 && !ck.path.empty();
  snapshot::Snapshotter<MultiEnclaveRun> snap(ck.full_every);
  while (!run.done()) {
    run.step();
    if (checkpointing && run.steps() % ck.every_accesses == 0) {
      obs::ScopedSpan span(config_.profiler, obs::Phase::kSnapshotSave);
      const auto t0 = std::chrono::steady_clock::now();
      const snapshot::ChainFrame frame = snap.checkpoint(run);
      const bool full = frame.header.kind == snapshot::FrameKind::kFull;
      snapshot::write_file_atomic(
          full ? ck.path : snapshot::delta_path(ck.path, frame.header.seq),
          frame.bytes);
      if (full) snapshot::remove_stale_deltas(ck.path);
      if (config_.registry != nullptr) {
        config_.registry->histogram("snapshot.save_cycles")
            .record(ns_since(t0));
        config_.registry->histogram("snapshot.bytes_written")
            .record(frame.bytes.size());
      }
    }
  }
  return run.finish();
}

}  // namespace sgxpl::core
