#include "core/multi_enclave.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "dfp/dfp_engine.h"
#include "sgxsim/driver.h"

namespace sgxpl::core {

namespace {

/// Routes driver callbacks to per-enclave DFP engines: faults by ProcessId,
/// page-scoped events (completion/abort/eviction) by ELRANGE offset.
class PerEnclavePolicy final : public sgxsim::PreloadPolicy {
 public:
  struct Slot {
    std::unique_ptr<dfp::DfpEngine> engine;  // null = no DFP for this app
    PageNum lo = 0;
    PageNum hi = 0;
  };

  explicit PerEnclavePolicy(std::vector<Slot> slots)
      : slots_(std::move(slots)) {}

  std::vector<PageNum> on_fault(ProcessId pid, PageNum page,
                                Cycles now) override {
    auto& slot = slots_.at(pid);
    if (slot.engine == nullptr) {
      return {};
    }
    // Predictions are already in the combined address space (the engine
    // sees combined page numbers); clamp to the owner's ELRANGE so one
    // enclave never preloads into another's range.
    auto pages = slot.engine->on_fault(pid, page, now);
    std::erase_if(pages, [&slot](PageNum p) {
      return p < slot.lo || p >= slot.hi;
    });
    return pages;
  }

  void on_preload_completed(PageNum page, Cycles now) override {
    if (auto* s = owner(page); s != nullptr && s->engine != nullptr) {
      s->engine->on_preload_completed(page, now);
    }
  }

  void on_preloads_aborted(const std::vector<PageNum>& pages,
                           Cycles now) override {
    for (const PageNum p : pages) {
      if (auto* s = owner(p); s != nullptr && s->engine != nullptr) {
        s->engine->on_preloads_aborted({p}, now);
      }
    }
  }

  void on_preloaded_page_evicted(PageNum page, bool was_accessed,
                                 Cycles now) override {
    if (auto* s = owner(page); s != nullptr && s->engine != nullptr) {
      s->engine->on_preloaded_page_evicted(page, was_accessed, now);
    }
  }

  void on_scan(const sgxsim::PageTable& pt, Cycles now) override {
    for (auto& s : slots_) {
      if (s.engine != nullptr) {
        s.engine->on_scan(pt, now);
      }
    }
  }

  const dfp::DfpEngine* engine(std::size_t i) const {
    return slots_.at(i).engine.get();
  }

 private:
  Slot* owner(PageNum page) {
    for (auto& s : slots_) {
      if (page >= s.lo && page < s.hi) {
        return &s;
      }
    }
    return nullptr;
  }

  std::vector<Slot> slots_;
};

}  // namespace

MultiEnclaveSimulator::MultiEnclaveSimulator(const SimConfig& config)
    : config_(config) {}

MultiEnclaveResult MultiEnclaveSimulator::run(
    const std::vector<EnclaveApp>& apps) {
  SGXPL_CHECK_MSG(!apps.empty(), "no enclaves to run");

  // Lay the enclaves out at disjoint offsets in the combined space.
  std::vector<PageNum> offset(apps.size());
  PageNum total_pages = 0;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    SGXPL_CHECK(apps[i].trace != nullptr && !apps[i].trace->empty());
    offset[i] = total_pages;
    total_pages += apps[i].trace->elrange_pages();
  }

  // Per-enclave scheme state.
  std::vector<PerEnclavePolicy::Slot> slots;
  slots.reserve(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    SimConfig probe = config_;
    probe.scheme = apps[i].scheme;
    PerEnclavePolicy::Slot slot;
    slot.lo = offset[i];
    slot.hi = offset[i] + apps[i].trace->elrange_pages();
    if (probe.uses_dfp()) {
      dfp::DfpParams params = config_.dfp;
      if (probe.dfp_stop_forced()) {
        params.stop_enabled = true;
      }
      slot.engine = std::make_unique<dfp::DfpEngine>(params);
    }
    if (probe.uses_sip()) {
      SGXPL_CHECK_MSG(apps[i].plan != nullptr,
                      "SIP scheme needs a plan (enclave " << i << ")");
    }
    slots.push_back(std::move(slot));
  }
  PerEnclavePolicy policy(std::move(slots));

  sgxsim::EnclaveConfig ecfg = config_.enclave;
  ecfg.elrange_pages = total_pages;
  sgxsim::Driver driver(ecfg, config_.costs, &policy);

  // Co-simulation: each enclave has its own clock and cursor; always step
  // the one furthest behind.
  struct AppState {
    std::size_t cursor = 0;
    Cycles now = 0;
    bool done = false;
    Metrics metrics;
  };
  std::vector<AppState> state(apps.size());

  for (;;) {
    std::size_t next = apps.size();
    Cycles min_clock = std::numeric_limits<Cycles>::max();
    for (std::size_t i = 0; i < apps.size(); ++i) {
      if (!state[i].done && state[i].now < min_clock) {
        min_clock = state[i].now;
        next = i;
      }
    }
    if (next == apps.size()) {
      break;  // all done
    }
    AppState& st = state[next];
    const EnclaveApp& app = apps[next];
    const auto& a = app.trace->accesses()[st.cursor];
    const PageNum page = offset[next] + a.page;

    st.now += a.gap;
    st.metrics.compute_cycles += a.gap;
    ++st.metrics.accesses;

    SimConfig probe = config_;
    probe.scheme = app.scheme;
    if (probe.uses_sip() && app.plan->instrumented(a.site)) {
      st.now += config_.costs.bitmap_check;
      st.metrics.sip_check_cycles += config_.costs.bitmap_check;
      ++st.metrics.sip_checks;
      if (!driver.bitmap().test(page)) {
        const Cycles loaded = driver.sip_load(page, st.now);
        st.now = loaded + config_.costs.sip_notification;
        st.metrics.sip_notification_cycles += config_.costs.sip_notification;
        ++st.metrics.sip_requests;
      }
    }

    const auto outcome =
        driver.access(page, st.now, ProcessId{static_cast<std::uint32_t>(next)});
    st.now = outcome.completion;
    if (outcome.faulted) {
      ++st.metrics.enclave_faults;
    }

    if (++st.cursor >= app.trace->size()) {
      st.done = true;
      st.metrics.total_cycles = st.now;
    }
  }

  MultiEnclaveResult result;
  result.per_enclave.reserve(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    Metrics m = state[i].metrics;
    if (const auto* engine = policy.engine(i)) {
      m.dfp_stopped = engine->stopped();
      m.dfp_stopped_at = engine->stopped_at();
      m.dfp_preload_counter = engine->preloaded_pages().preload_counter();
      m.dfp_acc_preload_counter =
          engine->preloaded_pages().acc_preload_counter();
      m.dfp_predictor_hits = engine->predictor().hits();
      m.dfp_predictor_misses = engine->predictor().misses();
    }
    result.makespan = std::max(result.makespan, m.total_cycles);
    result.per_enclave.push_back(std::move(m));
  }
  result.driver = driver.stats();
  return result;
}

}  // namespace sgxpl::core
