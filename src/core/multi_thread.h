// Multi-threaded enclaves (paper §3.1: "we collect the history of faulted
// pages in each thread through the operating system").
//
// K threads of one enclave share the ELRANGE, the EPC, and the paging
// channel; their accesses interleave in virtual time (smallest-clock-first,
// as in the multi-enclave co-simulator). The single DFP engine serves all
// of them — and the `per_thread_streams` switch decides whether the fault
// history is keyed by thread (the paper's design) or pooled globally, the
// ablation that shows why the paper keys per thread: pooled histories let
// one thread's faults churn the LRU stream list out from under another's
// streams.
#pragma once

#include <vector>

#include "core/metrics.h"
#include "core/scheme.h"
#include "trace/access.h"

namespace sgxpl::core {

struct ThreadedRunResult {
  std::vector<Metrics> per_thread;
  Cycles makespan = 0;
  sgxsim::DriverStats driver;
  bool dfp_stopped = false;
};

/// Run `threads` (each a per-thread access trace over the SAME ELRANGE)
/// under `config`. Only DFP-family schemes are supported (SIP plans are
/// per-binary, not per-thread; pass kBaseline/kDfp/kDfpStop).
ThreadedRunResult run_threads(const SimConfig& config,
                              const std::vector<const trace::Trace*>& threads,
                              bool per_thread_streams = true);

}  // namespace sgxpl::core
