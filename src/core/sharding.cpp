#include "core/sharding.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/check.h"
#include "snapshot/codec.h"

namespace sgxpl::core {

// ---------------------------------------------------------------------------
// ShardPool
// ---------------------------------------------------------------------------

struct ShardPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;   // workers wait for a new generation
  std::condition_variable done_cv;   // run() waits for pending == 0
  std::uint64_t generation = 0;
  std::size_t pending = 0;
  std::size_t jobs = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::vector<std::exception_ptr> errors;  // one slot per worker
  bool stop = false;
  std::vector<std::thread> workers;

  void worker_main(std::size_t w, std::size_t threads) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu);
        work_cv.wait(lk, [&] { return stop || generation != seen; });
        if (stop) {
          return;
        }
        seen = generation;
      }
      const std::size_t lo = w * jobs / threads;
      const std::size_t hi = (w + 1) * jobs / threads;
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          (*fn)(i);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        errors[w] = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lk(mu);
        if (--pending == 0) {
          done_cv.notify_one();
        }
      }
    }
  }
};

ShardPool::ShardPool(std::size_t threads) : threads_(std::max<std::size_t>(threads, 1)) {
  if (threads_ <= 1) {
    return;
  }
  impl_ = std::make_unique<Impl>();
  impl_->errors.resize(threads_);
  impl_->workers.reserve(threads_);
  for (std::size_t w = 0; w < threads_; ++w) {
    impl_->workers.emplace_back(
        [this, w] { impl_->worker_main(w, threads_); });
  }
}

ShardPool::~ShardPool() {
  if (impl_ == nullptr) {
    return;
  }
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->workers) {
    t.join();
  }
}

void ShardPool::run(std::size_t jobs,
                    const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) {
    return;
  }
  if (impl_ == nullptr) {
    for (std::size_t i = 0; i < jobs; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->jobs = jobs;
    impl_->fn = &fn;
    impl_->pending = threads_;
    std::fill(impl_->errors.begin(), impl_->errors.end(), nullptr);
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();
  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->done_cv.wait(lk, [&] { return impl_->pending == 0; });
    impl_->fn = nullptr;
    for (auto& e : impl_->errors) {
      if (e != nullptr) {
        std::rethrow_exception(e);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ShardingSpec
// ---------------------------------------------------------------------------

std::string ShardingSpec::spec() const {
  std::ostringstream os;
  os << "epoch=" << epoch_cycles << ",gain=" << contention_gain_milli
     << ",pool=" << pool_pages << ",floor=" << quota_floor;
  return os.str();
}

// ---------------------------------------------------------------------------
// ShardedFleetRun
// ---------------------------------------------------------------------------

ShardedFleetRun::ShardedFleetRun(const SimConfig& base,
                                 const std::vector<ShardLane>& lanes,
                                 const ShardingSpec& spec)
    : base_(base), spec_(spec) {
  SGXPL_CHECK_MSG(!lanes.empty(), "sharded fleet needs at least one lane");
  SGXPL_CHECK_MSG(spec_.epoch_cycles > 0, "epoch_cycles must be positive");
  lanes_.reserve(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const ShardLane& l = lanes[i];
    SGXPL_CHECK_MSG(l.trace != nullptr, "lane " << i << " has no trace");
    SimConfig cfg = base_;
    cfg.scheme = l.scheme;
    // Lane-indexed chaos stream: the schedule is a function of the lane
    // index alone, never of which thread advances the lane.
    cfg.chaos.seed = base_.chaos.seed + kShardStreamGamma * (i + 1);
    // The registry, event log, and time series are single-threaded sinks;
    // lanes advance concurrently, so they stay detached here. The profiler
    // keeps per-thread arenas with a deterministic merge — wire it through.
    cfg.registry = nullptr;
    cfg.event_log = nullptr;
    cfg.timeseries = nullptr;
    // Lanes never self-checkpoint; the fleet snapshots at epoch barriers.
    cfg.checkpoint = CheckpointOptions{};
    lanes_.push_back(std::make_unique<SimulationRun>(cfg, *l.trace, l.plan));
  }
  pool_ = std::make_unique<ShardPool>(spec_.threads);
  horizon_ = spec_.epoch_cycles;
  busy_anchor_.assign(lanes_.size(), 0);
  quota_.assign(lanes_.size(), 0);
  slowdown_.assign(lanes_.size(), 1000);
}

ShardedFleetRun::~ShardedFleetRun() = default;

bool ShardedFleetRun::done() const noexcept {
  for (const auto& l : lanes_) {
    if (!l->done()) {
      return false;
    }
  }
  return true;
}

void ShardedFleetRun::run_epoch() {
  SGXPL_CHECK_MSG(!done(), "run_epoch past the end of every lane");
  // Parallel phase: lanes share nothing mutable, so K only decides which
  // OS thread advances which lane. Finished lanes cost one virtual call.
  const Cycles bound = horizon_;
  pool_->run(lanes_.size(), [this, bound](std::size_t i) {
    lanes_[i]->run_until(bound);
  });
  barrier();
}

void ShardedFleetRun::barrier() {
  // Serial coupling, lane order, integer arithmetic only: the numbers a
  // lane sees depend on every lane's state at the horizon — which is the
  // same for every K — and on nothing else.
  const std::size_t n = lanes_.size();
  std::vector<Cycles> busy(n, 0);
  Cycles total_busy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Cycles b = lanes_[i]->driver().channel_busy_cycles();
    busy[i] = b - busy_anchor_[i];
    busy_anchor_[i] = b;
    total_busy += busy[i];
  }
  if (spec_.contention_gain_milli > 0 && n > 1) {
    const Cycles denom =
        spec_.epoch_cycles * static_cast<Cycles>(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
      const Cycles others = total_busy - busy[i];
      const std::uint64_t extra =
          static_cast<std::uint64_t>(spec_.contention_gain_milli) * others /
          denom;
      slowdown_[i] = 1000 + extra;
    }
  }
  if (spec_.pool_pages > 0) {
    // Integer proportional share of the pool over per-epoch channel
    // pressure, floored, remainder to the lowest lane indices. With no
    // pressure anywhere the pool splits evenly.
    const PageNum floor = std::max<PageNum>(spec_.quota_floor, 1);
    const PageNum pool = std::max<PageNum>(
        spec_.pool_pages, floor * static_cast<PageNum>(n));
    const PageNum spare = pool - floor * static_cast<PageNum>(n);
    PageNum handed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      PageNum share;
      if (total_busy == 0) {
        share = spare / static_cast<PageNum>(n);
      } else {
        share = static_cast<PageNum>(
            static_cast<std::uint64_t>(spare) * busy[i] / total_busy);
      }
      quota_[i] = floor + share;
      handed += share;
    }
    // Deterministic remainder distribution: one page per lane from 0.
    PageNum left = spare - handed;
    for (std::size_t i = 0; left > 0 && i < n; ++i, --left) {
      ++quota_[i];
    }
  }
  apply_knobs();
  ++epoch_;
  horizon_ += spec_.epoch_cycles;
}

void ShardedFleetRun::apply_knobs() {
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    auto& d = lanes_[i]->driver();
    d.set_channel_slowdown_milli(static_cast<std::uint32_t>(slowdown_[i]));
    d.set_capacity_limit(static_cast<PageNum>(quota_[i]));
  }
}

std::vector<Metrics> ShardedFleetRun::run_to_end() {
  while (!done()) {
    run_epoch();
  }
  std::vector<Metrics> out;
  out.reserve(lanes_.size());
  for (auto& l : lanes_) {
    out.push_back(l->finish());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Checkpoint/restore
// ---------------------------------------------------------------------------

namespace {

/// Pack an opaque byte string into u64 words (little-endian) so it rides in
/// a u64_vec field — the codec's generic field walk (diff, tooling) then
/// works on fleet frames with no new field type.
std::vector<std::uint64_t> pack_bytes(const std::vector<std::uint8_t>& b) {
  std::vector<std::uint64_t> words((b.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < b.size(); ++i) {
    words[i / 8] |= static_cast<std::uint64_t>(b[i]) << (8 * (i % 8));
  }
  return words;
}

std::vector<std::uint8_t> unpack_bytes(const std::vector<std::uint64_t>& w,
                                       std::uint64_t len) {
  SGXPL_CHECK_MSG(w.size() == (len + 7) / 8,
                  "lane frame length " << len << " does not match "
                                       << w.size() << " packed words");
  std::vector<std::uint8_t> b(len);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<std::uint8_t>(w[i / 8] >> (8 * (i % 8)));
  }
  return b;
}

}  // namespace

snapshot::RunMeta ShardedFleetRun::meta() const {
  snapshot::RunMeta meta;
  meta.kind = "sharded-fleet";
  meta.scheme = to_string(base_.scheme);
  std::uint64_t total = 0;
  for (const auto& l : lanes_) {
    total += l->cursor();
  }
  meta.trace_name = "sharded[" + std::to_string(lanes_.size()) + "]";
  std::uint64_t accesses = 0;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    accesses += lanes_[i]->meta().trace_accesses;
  }
  meta.trace_accesses = accesses;
  meta.elrange_pages = base_.enclave.elrange_pages;
  meta.epc_pages = base_.enclave.epc_pages;
  meta.chaos_spec = base_.chaos.spec();
  meta.chaos_seed = base_.chaos.seed;
  meta.hardening_spec =
      sgxsim::overload_spec(base_.enclave) + "|" + spec_.spec();
  meta.cursor = total;
  return meta;
}

std::vector<std::uint8_t> ShardedFleetRun::save_bytes() const {
  snapshot::Writer w;
  snapshot::write_chain_header(w, snapshot::ChainHeader{});
  snapshot::write_meta(w, meta());
  w.begin_section("SHRD");
  w.u64("shard.epoch", epoch_);
  w.u64("shard.horizon", horizon_);
  w.u64("shard.lanes", lanes_.size());
  w.u64_vec("shard.busy_anchor",
            std::vector<std::uint64_t>(busy_anchor_.begin(),
                                       busy_anchor_.end()));
  w.u64_vec("shard.quota", quota_);
  w.u64_vec("shard.slowdown", slowdown_);
  w.end_section();
  for (const auto& l : lanes_) {
    const std::vector<std::uint8_t> frame = l->save_bytes();
    w.begin_section("LANE");
    w.u64("lane.bytes", frame.size());
    w.u64_vec("lane.frame", pack_bytes(frame));
    w.end_section();
  }
  return w.finish();
}

void ShardedFleetRun::load_from_reader(snapshot::Reader& r) {
  r.enter_section("SHRD");
  epoch_ = r.u64("shard.epoch");
  horizon_ = r.u64("shard.horizon");
  const std::uint64_t count = r.u64("shard.lanes");
  SGXPL_CHECK_MSG(count == lanes_.size(),
                  "snapshot holds " << count << " lane(s), this fleet has "
                                    << lanes_.size());
  const auto anchors = r.u64_vec("shard.busy_anchor");
  quota_ = r.u64_vec("shard.quota");
  slowdown_ = r.u64_vec("shard.slowdown");
  SGXPL_CHECK_MSG(anchors.size() == lanes_.size() &&
                      quota_.size() == lanes_.size() &&
                      slowdown_.size() == lanes_.size(),
                  "shard controller vectors do not match the lane count");
  busy_anchor_.assign(anchors.begin(), anchors.end());
  r.leave_section();
  for (auto& l : lanes_) {
    r.enter_section("LANE");
    const std::uint64_t len = r.u64("lane.bytes");
    const auto frame = unpack_bytes(r.u64_vec("lane.frame"), len);
    r.leave_section();
    l->load_bytes(frame);
  }
  // The controller knobs are transient driver state (never inside a lane
  // frame); re-arm them exactly as the barrier left them.
  apply_knobs();
}

void ShardedFleetRun::load_bytes(const std::vector<std::uint8_t>& bytes) {
  snapshot::validate_frame(bytes);
  snapshot::Reader r(bytes);
  const auto chain = snapshot::read_chain_header(r);
  SGXPL_CHECK_MSG(chain.kind == snapshot::FrameKind::kFull,
                  "sharded-fleet frames are always full frames");
  const snapshot::RunMeta got = snapshot::read_meta(r);
  const std::string why = got.incompatibility(meta());
  SGXPL_CHECK_MSG(why.empty(), "incompatible fleet snapshot: " << why);
  load_from_reader(r);
}

bool ShardedFleetRun::restore_if_compatible(
    const std::vector<std::uint8_t>& bytes) {
  snapshot::validate_frame(bytes);
  snapshot::Reader r(bytes);
  const auto chain = snapshot::read_chain_header(r);
  if (chain.kind != snapshot::FrameKind::kFull) {
    return false;
  }
  const snapshot::RunMeta got = snapshot::read_meta(r);
  if (!got.incompatibility(meta()).empty()) {
    return false;
  }
  load_from_reader(r);
  return true;
}

}  // namespace sgxpl::core
