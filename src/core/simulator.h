// The enclave simulator: replays an application trace under a scheme on the
// sgxsim substrate and reports Metrics.
//
// Virtual time is the application's clock in cycles. Each trace access
// advances time by its compute gap (inflated by memory-bandwidth contention
// while page copies are in flight), then goes through:
//   - the SIP path when the scheme instruments the access's site:
//     BIT_MAP_CHECK against the shared presence bitmap, and on a miss a
//     synchronous page_loadin request (no AEX/ERESUME);
//   - the regular access path in the driver: residency hit, or the full
//     fault sequence (AEX -> demand load with CLOCK eviction -> DFP
//     prediction -> ERESUME).
#pragma once

#include "core/metrics.h"
#include "core/scheme.h"
#include "sip/instrumenter.h"
#include "trace/access.h"

namespace sgxpl::core {

class EnclaveSimulator {
 public:
  explicit EnclaveSimulator(const SimConfig& config);

  /// Run `t` to completion. `plan` is required by SIP-using schemes and
  /// ignored otherwise. The ELRANGE defaults to the trace's declared range.
  Metrics run(const trace::Trace& t,
              const sip::InstrumentationPlan* plan = nullptr);

 private:
  Metrics run_native(const trace::Trace& t) const;

  SimConfig config_;
};

/// One-call convenience: simulate `t` under `config`.
Metrics simulate(const trace::Trace& t, const SimConfig& config,
                 const sip::InstrumentationPlan* plan = nullptr);

}  // namespace sgxpl::core
