// The enclave simulator: replays an application trace under a scheme on the
// sgxsim substrate and reports Metrics.
//
// Virtual time is the application's clock in cycles. Each trace access
// advances time by its compute gap (inflated by memory-bandwidth contention
// while page copies are in flight), then goes through:
//   - the SIP path when the scheme instruments the access's site:
//     BIT_MAP_CHECK against the shared presence bitmap, and on a miss a
//     synchronous page_loadin request (no AEX/ERESUME);
//   - the regular access path in the driver: residency hit, or the full
//     fault sequence (AEX -> demand load with CLOCK eviction -> DFP
//     prediction -> ERESUME).
//
// SimulationRun exposes the replay one access at a time, so a run can be
// checkpointed at any access boundary and resumed bit-identically — the
// correctness oracle behind the kill-restore harness (tests/recovery_test,
// bench/recovery_suite). EnclaveSimulator::run is the one-shot wrapper that
// also honors SimConfig::checkpoint.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/metrics.h"
#include "core/scheme.h"
#include "sip/instrumenter.h"
#include "snapshot/fwd.h"
#include "trace/access.h"

namespace sgxpl::core {

/// One in-progress simulation: the full stack (driver, optional DFP engine,
/// optional fault injector, observability attachments) plus the replay
/// cursor. Non-copyable; the trace and plan must outlive the run.
///
/// Checkpoint semantics: save() captures the COMPLETE state — every
/// subsystem's counters, RNG streams, queues and cursors — such that
/// load() into a freshly built run with the same configuration, followed by
/// run_to_end(), produces Metrics bit-identical to the uninterrupted run.
/// load() validates the snapshot's identity section ("META") against this
/// run before touching any state, and throws a diagnostic CheckFailure on
/// any mismatch or corruption.
class SimulationRun {
 public:
  /// Native scheme is not steppable (no paging state); the ctor rejects it.
  /// `plan` is required by SIP-using schemes and ignored otherwise. The
  /// ELRANGE defaults to the trace's declared range.
  SimulationRun(const SimConfig& config, const trace::Trace& t,
                const sip::InstrumentationPlan* plan = nullptr);
  ~SimulationRun();
  SimulationRun(const SimulationRun&) = delete;
  SimulationRun& operator=(const SimulationRun&) = delete;

  bool done() const noexcept;
  /// Consume the next trace access — the unit of progress checkpoints are
  /// aligned to. Requires !done().
  void step();
  /// step() while !done() and the virtual clock is below `bound`; returns
  /// the number of accesses consumed. The unit of a sharded epoch: lanes
  /// advance independently to a common virtual-time horizon, then meet at
  /// the barrier. A lane whose clock already passed `bound` consumes zero.
  std::uint64_t run_until(Cycles bound);
  /// Accesses completed so far.
  std::uint64_t cursor() const noexcept { return cursor_; }
  Cycles now() const noexcept { return now_; }

  /// The underlying driver, for the sharded barrier's cross-lane coupling
  /// (capacity limits, channel-slowdown factors, busy-cycle metering).
  sgxsim::Driver& driver() noexcept { return *driver_; }
  const sgxsim::Driver& driver() const noexcept { return *driver_; }

  /// Drain/validate and assemble the final Metrics. Requires done(); call
  /// at most once.
  Metrics finish();
  /// step() until done(), then finish().
  Metrics run_to_end();

  // --- checkpoint/restore ---
  /// Write a complete full frame (standalone: chain id 0). The two-argument
  /// form stamps the given chain header instead (must be a full frame; the
  /// Snapshotter uses it for chain bases).
  void save(snapshot::Writer& w) const;
  void save(snapshot::Writer& w, const snapshot::ChainHeader& chain) const;
  /// Read a format-v2 full frame. Rejects delta frames (restore those
  /// through snapshot::restore_chain) and v1 frames (load_bytes upgrades
  /// those in memory first).
  void load(snapshot::Reader& r);
  /// save()/load() through a complete framed snapshot. load_bytes accepts
  /// format-v1 bytes and upgrades them through the migration shim.
  std::vector<std::uint8_t> save_bytes() const;
  void load_bytes(const std::vector<std::uint8_t>& bytes);
  /// Meta-gated restore: returns false (leaving the run untouched) when
  /// `bytes` describes a different run — other trace, scheme, chaos plan or
  /// enclave geometry; throws CheckFailure when `bytes` is corrupt.
  bool restore_if_compatible(const std::vector<std::uint8_t>& bytes);

  /// Delta checkpointing (format v2): save_delta writes a frame holding the
  /// chain header, META, RUNS, the always-rewritten DRVR section, sparse
  /// deltas of only the bulk structures whose generation moved past `last`,
  /// and the (small) DFPE/INJC sections. apply_delta_bytes replays such a
  /// frame on top of this run's current state; callers go through
  /// snapshot::restore_chain, which enforces chain linkage.
  void save_delta(snapshot::Writer& w, const snapshot::ChainHeader& chain,
                  const snapshot::SectionGens& last) const;
  void apply_delta_bytes(const std::vector<std::uint8_t>& bytes);
  snapshot::SectionGens section_gens() const;
  void clear_dirty();

  /// This run's identity as written into snapshots.
  snapshot::RunMeta meta() const;

 private:
  void hoist(std::size_t idx);
  void ensure_started();
  void save_run_section(snapshot::Writer& w) const;
  void load_run_section(snapshot::Reader& r);
  void save_tail_sections(snapshot::Writer& w) const;
  void load_tail_sections(snapshot::Reader& r);

  SimConfig cfg_;
  const trace::Trace* trace_;
  const sip::InstrumentationPlan* plan_;
  bool sip_on_ = false;
  std::unique_ptr<dfp::DfpEngine> engine_;
  std::unique_ptr<inject::FaultInjector> injector_;
  std::unique_ptr<sgxsim::Driver> driver_;
  Metrics m_;
  Cycles now_ = 0;
  std::uint64_t cursor_ = 0;
  // Whether the pre-loop work ran (hoisted SIP prefix). Runs lazily at the
  // first step so a restore never re-executes it; serialized so a snapshot
  // taken at cursor 0 still resumes exactly.
  bool started_ = false;
  bool finished_ = false;
};

class EnclaveSimulator {
 public:
  explicit EnclaveSimulator(const SimConfig& config);

  /// Run `t` to completion. `plan` is required by SIP-using schemes and
  /// ignored otherwise. The ELRANGE defaults to the trace's declared range.
  /// Honors config.checkpoint: resumes from resume_path when the file
  /// exists and its RunMeta matches this configuration (absent or
  /// foreign snapshots are skipped and the run starts fresh — benches that
  /// simulate several schemes overwrite one file per run; corrupt
  /// snapshots throw), and writes a snapshot to path every every_accesses
  /// completed accesses.
  Metrics run(const trace::Trace& t,
              const sip::InstrumentationPlan* plan = nullptr);

 private:
  Metrics run_native(const trace::Trace& t) const;

  SimConfig config_;
};

/// One-call convenience: simulate `t` under `config`.
Metrics simulate(const trace::Trace& t, const SimConfig& config,
                 const sip::InstrumentationPlan* plan = nullptr);

}  // namespace sgxpl::core
