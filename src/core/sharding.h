// Sharded parallel fleet execution: partition N independent tenant lanes
// across K OS worker threads, each lane advancing its own virtual clock to
// a common epoch horizon, with the cross-lane coupling — paging-channel
// contention charging and the shared elastic-EPC pool — applied serially at
// the epoch barrier in lane order.
//
// The load-bearing property is **shard-count invariance**: for any K the
// per-tenant metrics, snapshot frames, and chaos schedules are bit-identical
// to the K=1 run. The design makes that structural rather than incidental:
//
//   - Between barriers, lanes share *nothing mutable*. Each lane is a full
//     core::SimulationRun (own driver, DFP engine, fault injector, RNG
//     streams); the trace and instrumentation plan are shared read-only.
//     K only decides which OS thread advances which lane.
//   - All cross-lane state (busy-cycle metering, the contention controller,
//     the elastic pool's AIMD quotas) is read and written exclusively in
//     the serial barrier, in lane-index order, using integer arithmetic.
//   - Chaos streams are derived per lane (base seed + lane-indexed gamma),
//     so a lane's injection schedule depends only on its index, never on
//     scheduling.
//
// See docs/ROBUSTNESS.md, "Sharded execution", for the full determinism
// argument and the barrier model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/scheme.h"
#include "core/simulator.h"
#include "snapshot/fwd.h"
#include "trace/access.h"

namespace sgxpl::core {

/// Fixed-size OS thread pool with a fork/join barrier, built once and
/// reused every epoch (spawning threads per epoch would dominate small
/// epochs). run(jobs, fn) partitions [0, jobs) into K contiguous blocks —
/// worker w owns [w*jobs/K, (w+1)*jobs/K) — executes them concurrently,
/// and returns after every block finished. Exceptions thrown by fn are
/// captured per worker and the lowest-indexed one is rethrown from run()
/// after the barrier (so the pool is still consistent). threads <= 1 runs
/// inline on the calling thread with no pool at all.
class ShardPool {
 public:
  explicit ShardPool(std::size_t threads);
  ~ShardPool();
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  std::size_t threads() const noexcept { return threads_; }

  /// Execute fn(0) .. fn(jobs-1), partitioned across the workers. Blocks
  /// until all jobs completed. Not reentrant.
  void run(std::size_t jobs, const std::function<void(std::size_t)>& fn);

 private:
  struct Impl;
  std::size_t threads_ = 1;
  std::unique_ptr<Impl> impl_;  // null when threads_ <= 1
};

/// Configuration of a sharded fleet run. `threads` is pure execution
/// mechanics and deliberately excluded from spec(): a snapshot taken at
/// K=8 must restore into a K=1 run and vice versa.
struct ShardingSpec {
  /// OS worker threads (K). 1 = sequential — the differential reference.
  std::size_t threads = 1;
  /// Virtual-time width of one epoch: lanes run to the next multiple of
  /// this, then meet at the barrier. Smaller epochs couple lanes tighter
  /// and barrier more often.
  Cycles epoch_cycles = 200'000;
  /// Cross-lane paging-channel contention gain, milli-units per unit of
  /// foreign channel utilization (0 = lanes do not slow each other). At
  /// each barrier lane i's next-epoch load durations are scaled by
  ///   1000 + gain * (sum of other lanes' busy cycles this epoch)
  ///          / (epoch_cycles * (lanes-1))
  /// — an integer milli-factor, so the coupling is exactly reproducible.
  std::uint32_t contention_gain_milli = 0;
  /// Shared elastic EPC pool in pages (0 = off: every lane keeps its
  /// configured EPC). When on, the barrier redistributes the pool across
  /// lanes by an integer proportional-share rule over per-epoch channel
  /// pressure, with `quota_floor` as the per-lane hard floor.
  PageNum pool_pages = 0;
  PageNum quota_floor = 16;

  /// Textual fingerprint of everything that shapes simulation results —
  /// all fields except `threads` (shard count must not change identity).
  std::string spec() const;
};

/// One tenant lane of a sharded fleet run.
struct ShardLane {
  const trace::Trace* trace = nullptr;
  Scheme scheme = Scheme::kBaseline;
  const sip::InstrumentationPlan* plan = nullptr;  // SIP schemes only
};

/// N independent tenant lanes advanced epoch-synchronously by K worker
/// threads. The trace/plan objects must outlive the run.
///
/// Checkpoint semantics mirror SimulationRun: save_bytes() at an epoch
/// barrier captures the complete fleet state (every lane's full frame plus
/// the barrier controller's), and load_bytes() into a freshly built run
/// with the same lanes/config — at ANY shard count — resumes
/// bit-identically.
class ShardedFleetRun {
 public:
  ShardedFleetRun(const SimConfig& base, const std::vector<ShardLane>& lanes,
                  const ShardingSpec& spec);
  ~ShardedFleetRun();
  ShardedFleetRun(const ShardedFleetRun&) = delete;
  ShardedFleetRun& operator=(const ShardedFleetRun&) = delete;

  std::size_t lane_count() const noexcept { return lanes_.size(); }
  const SimulationRun& lane(std::size_t i) const { return *lanes_[i]; }

  bool done() const noexcept;
  /// Advance every unfinished lane to the next epoch horizon (parallel
  /// across the shard pool), then apply the serial barrier. Requires
  /// !done().
  void run_epoch();
  std::uint64_t epochs_run() const noexcept { return epoch_; }
  /// The virtual-time horizon lanes will run to in the NEXT epoch.
  Cycles next_horizon() const noexcept { return horizon_; }

  /// run_epoch() until done(), then finish every lane; per-lane Metrics in
  /// lane order. Call at most once.
  std::vector<Metrics> run_to_end();

  // --- checkpoint/restore (call only at epoch barriers) ---
  std::vector<std::uint8_t> save_bytes() const;
  void load_bytes(const std::vector<std::uint8_t>& bytes);
  /// Meta-gated restore: false (run untouched) when `bytes` describes a
  /// different fleet; throws CheckFailure when `bytes` is corrupt.
  bool restore_if_compatible(const std::vector<std::uint8_t>& bytes);
  snapshot::RunMeta meta() const;

 private:
  void barrier();
  void apply_knobs();
  void load_from_reader(snapshot::Reader& r);

  SimConfig base_;
  ShardingSpec spec_;
  std::vector<std::unique_ptr<SimulationRun>> lanes_;
  std::unique_ptr<ShardPool> pool_;
  std::uint64_t epoch_ = 0;
  Cycles horizon_ = 0;
  /// Per-lane channel-busy totals at the last barrier (delta metering).
  std::vector<Cycles> busy_anchor_;
  /// Per-lane controller outputs, re-applied after restore.
  std::vector<std::uint64_t> quota_;     // capacity limit, 0 = uncapped
  std::vector<std::uint64_t> slowdown_;  // channel slowdown, milli
};

/// The per-lane chaos-stream gamma: lane i's injector runs under seed
/// base_seed + kShardStreamGamma * (i + 1), so schedules are a function of
/// the lane index alone (same constant the host-chaos streams use).
inline constexpr std::uint64_t kShardStreamGamma = 0x9e3779b97f4a7c15ull;

}  // namespace sgxpl::core
