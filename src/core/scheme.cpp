#include "core/scheme.h"

#include <sstream>

namespace sgxpl::core {

const char* to_string(Scheme s) noexcept {
  switch (s) {
    case Scheme::kNative:
      return "native";
    case Scheme::kBaseline:
      return "baseline";
    case Scheme::kDfp:
      return "DFP";
    case Scheme::kDfpStop:
      return "DFP-stop";
    case Scheme::kSip:
      return "SIP";
    case Scheme::kHybrid:
      return "SIP+DFP";
  }
  return "?";
}

std::string SimConfig::describe() const {
  std::ostringstream oss;
  oss << "SimConfig{scheme=" << to_string(scheme)
      << ", epc_pages=" << enclave.epc_pages
      << ", streams=" << dfp.predictor.stream_list_len
      << ", load_length=" << dfp.predictor.load_length
      << ", sip_threshold=" << sip.irregular_threshold
      << ", contention=" << channel_contention;
  if (chaos.any_enabled()) {
    oss << ", chaos=" << chaos.describe();
  }
  if (enclave.channel.max_queued > 0) {
    oss << ", channel_queue=" << enclave.channel.max_queued;
  }
  if (enclave.channel.max_retries > 0) {
    oss << ", max_retries=" << enclave.channel.max_retries;
  }
  if (enclave.admission.enabled) {
    oss << ", admission=on";
  }
  oss << "}";
  return oss.str();
}

SimConfig paper_platform(Scheme scheme) {
  SimConfig cfg;
  cfg.scheme = scheme;
  cfg.enclave.epc_pages = sgxsim::kDefaultEpcPages;
  cfg.dfp.predictor.stream_list_len = 30;
  cfg.dfp.predictor.load_length = 4;
  cfg.sip.irregular_threshold = 0.05;
  // The preload_dispatch cost (CostModel) already bounds DFP's pipeline
  // gain the way the real kernel worker does; extra memory-bandwidth
  // contention is left off here and explored by the ablation bench.
  cfg.channel_contention = 0.0;
  return cfg;
}

}  // namespace sgxpl::core
