// The compile-time instrumentation decision of SIP (paper §4.4, §5.2).
//
// Given the per-site class profile, select the sites whose fraction of
// irregular (Class 3) accesses meets the threshold — 5% in the paper's
// sweet-spot study (Fig. 9) — and emit an InstrumentationPlan: the set of
// sites the compiler would wrap with BIT_MAP_CHECK + page_loadin_function.
// The plan size is the benchmark's "instrumentation points" count (Table 2)
// and bounds SIP's TCB growth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "sip/profiler.h"

namespace sgxpl::sip {

struct InstrumenterParams {
  /// Minimum Class-3 fraction for a site to be instrumented (Fig. 9).
  double irregular_threshold = 0.05;
  /// Sites with fewer profiled accesses than this are skipped (too little
  /// evidence to justify adding enclave code).
  std::uint64_t min_profiled_accesses = 8;
};

class InstrumentationPlan {
 public:
  InstrumentationPlan() = default;

  void add_site(SiteId site);

  bool instrumented(SiteId site) const noexcept {
    return site < dense_.size() && dense_[site];
  }

  /// Number of instrumentation points (Table 2's metric).
  std::size_t points() const noexcept { return sites_.size(); }
  const std::vector<SiteId>& sites() const noexcept { return sites_; }
  bool empty() const noexcept { return sites_.empty(); }

  std::string describe() const;

 private:
  std::vector<bool> dense_;
  std::vector<SiteId> sites_;
};

/// Apply the threshold rule to a profile.
InstrumentationPlan build_plan(const SiteProfile& profile,
                               const InstrumenterParams& params = {});

}  // namespace sgxpl::sip
