#include "sip/site_classifier.h"

namespace sgxpl::sip {

const char* to_string(AccessClass c) noexcept {
  switch (c) {
    case AccessClass::kClass1:
      return "class1";
    case AccessClass::kClass2:
      return "class2";
    case AccessClass::kClass3:
      return "class3";
  }
  return "?";
}

SiteClassifier::SiteClassifier(const dfp::StreamPredictorParams& params)
    : predictor_(params) {}

AccessClass SiteClassifier::classify(ProcessId pid, PageNum page) {
  AccessClass cls = AccessClass::kClass3;
  if (predictor_.on_stream_list(pid, page)) {
    cls = AccessClass::kClass1;
  } else if (predictor_.follows_stream(pid, page)) {
    cls = AccessClass::kClass2;
  }
  // Feed the access into the stream structure regardless of class, exactly
  // as the runtime predictor would see the fault sequence.
  (void)predictor_.on_fault(pid, page);
  return cls;
}

}  // namespace sgxpl::sip
