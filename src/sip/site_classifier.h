// Per-access classification for SIP profiling (paper §4.4).
//
// The profiling run records every memory access with its source site; this
// classifier replays that trace through the same stream structure as
// Algorithm 1 and labels each access:
//   Class 1 — the page is on stream_list (recently seen: found in the EPC
//             with high probability),
//   Class 2 — the page directly follows a stream tail (a sequential access
//             DFP would catch at runtime),
//   Class 3 — neither: an irregular access likely to fault.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "dfp/stream_predictor.h"

namespace sgxpl::sip {

enum class AccessClass : std::uint8_t {
  kClass1 = 1,  // on stream_list (likely EPC hit)
  kClass2 = 2,  // extends a stream (leave to DFP)
  kClass3 = 3,  // irregular (SIP candidate)
};

const char* to_string(AccessClass c) noexcept;

class SiteClassifier {
 public:
  explicit SiteClassifier(
      const dfp::StreamPredictorParams& params = dfp::StreamPredictorParams{});

  /// Classify one access and update the stream structure with it.
  AccessClass classify(ProcessId pid, PageNum page);

  void reset() { predictor_.reset(); }

 private:
  dfp::StreamPredictor predictor_;
};

}  // namespace sgxpl::sip
