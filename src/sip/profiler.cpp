#include "sip/profiler.h"

namespace sgxpl::sip {

void SiteProfile::add(SiteId site, AccessClass cls) {
  auto& c = sites_[site];
  switch (cls) {
    case AccessClass::kClass1:
      ++c.class1;
      break;
    case AccessClass::kClass2:
      ++c.class2;
      break;
    case AccessClass::kClass3:
      ++c.class3;
      break;
  }
  ++total_;
}

const SiteCounters* SiteProfile::find(SiteId site) const {
  const auto it = sites_.find(site);
  return it == sites_.end() ? nullptr : &it->second;
}

SiteProfile profile_trace(const trace::Trace& profiling_trace,
                          const dfp::StreamPredictorParams& params) {
  SiteClassifier classifier(params);
  SiteProfile profile;
  for (const auto& a : profiling_trace.accesses()) {
    profile.add(a.site, classifier.classify(ProcessId{0}, a.page));
  }
  return profile;
}

}  // namespace sgxpl::sip
