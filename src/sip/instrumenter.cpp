#include "sip/instrumenter.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace sgxpl::sip {

void InstrumentationPlan::add_site(SiteId site) {
  SGXPL_CHECK(site != kInvalidSite);
  if (instrumented(site)) {
    return;
  }
  if (site >= dense_.size()) {
    dense_.resize(site + 1, false);
  }
  dense_[site] = true;
  sites_.push_back(site);
}

std::string InstrumentationPlan::describe() const {
  std::ostringstream oss;
  oss << "InstrumentationPlan{" << sites_.size() << " points}";
  return oss.str();
}

InstrumentationPlan build_plan(const SiteProfile& profile,
                               const InstrumenterParams& params) {
  InstrumentationPlan plan;
  std::vector<SiteId> selected;
  for (const auto& [site, counters] : profile.sites()) {
    if (counters.total() < params.min_profiled_accesses) {
      continue;
    }
    if (counters.irregular_ratio() >= params.irregular_threshold) {
      selected.push_back(site);
    }
  }
  // Deterministic plan order regardless of hash-map iteration.
  std::sort(selected.begin(), selected.end());
  for (const SiteId site : selected) {
    plan.add_site(site);
  }
  return plan;
}

}  // namespace sgxpl::sip
