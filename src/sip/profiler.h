// The offline profiler of the SIP pipeline: replays a profiling-input trace
// (the PGO "train" run) through the SiteClassifier and accumulates, per
// static source site, how many of its accesses fell into each class.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sip/site_classifier.h"
#include "trace/access.h"

namespace sgxpl::sip {

struct SiteCounters {
  std::uint64_t class1 = 0;
  std::uint64_t class2 = 0;
  std::uint64_t class3 = 0;

  std::uint64_t total() const noexcept { return class1 + class2 + class3; }
  double irregular_ratio() const noexcept {
    const auto t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(class3) / static_cast<double>(t);
  }
};

class SiteProfile {
 public:
  void add(SiteId site, AccessClass cls);

  const SiteCounters* find(SiteId site) const;
  const std::unordered_map<SiteId, SiteCounters>& sites() const noexcept {
    return sites_;
  }
  std::uint64_t total_accesses() const noexcept { return total_; }

 private:
  std::unordered_map<SiteId, SiteCounters> sites_;
  std::uint64_t total_ = 0;
};

/// Run the profiling pass over `profiling_trace`.
SiteProfile profile_trace(const trace::Trace& profiling_trace,
                          const dfp::StreamPredictorParams& params =
                              dfp::StreamPredictorParams{});

}  // namespace sgxpl::sip
