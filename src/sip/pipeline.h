// End-to-end SIP compile pipeline, the analogue of the paper's
// LLVM-based flow: generate the profiling ("train") input trace, profile
// it, and build the instrumentation plan that the performance ("ref") run
// executes with (paper §5.2 uses different inputs for the two runs).
#pragma once

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "sip/instrumenter.h"
#include "trace/workloads.h"

namespace sgxpl::sip {

struct PipelineResult {
  SiteProfile profile;
  InstrumentationPlan plan;
};

/// Profile `workload` on its train input and derive the plan. When
/// `registry` is non-null the pipeline publishes compile-time statistics
/// under the "sip." prefix: profiled sites/accesses, instrumentation
/// points, and the per-site irregular-percent histogram that the Fig. 9
/// threshold acts on. When `profiler` is non-null the whole compile
/// records under Phase::kSipCompile.
PipelineResult compile_workload(
    const trace::Workload& workload,
    const InstrumenterParams& params = InstrumenterParams{},
    const trace::WorkloadParams& train = trace::train_params(),
    obs::MetricsRegistry* registry = nullptr,
    obs::Profiler* profiler = nullptr);

}  // namespace sgxpl::sip
