#include "sip/pipeline.h"

#include "common/check.h"

namespace sgxpl::sip {

PipelineResult compile_workload(const trace::Workload& workload,
                                const InstrumenterParams& params,
                                const trace::WorkloadParams& train,
                                obs::MetricsRegistry* registry,
                                obs::Profiler* profiler) {
  SGXPL_CHECK_MSG(workload.info.sip_supported,
                  "SIP cannot instrument " << workload.info.name
                                           << " (tool limitation)");
  obs::ScopedSpan span(profiler, obs::Phase::kSipCompile);
  const trace::Trace profiling_trace = workload.make(train);
  PipelineResult result;
  result.profile = profile_trace(profiling_trace);
  result.plan = build_plan(result.profile, params);
  if (registry != nullptr) {
    registry->gauge("sip.profile.sites")
        .set(static_cast<double>(result.profile.sites().size()));
    registry->counter("sip.profile.accesses")
        .add(result.profile.total_accesses());
    registry->gauge("sip.plan.points")
        .set(static_cast<double>(result.plan.points()));
    auto& irregular = registry->histogram("sip.site_irregular_pct");
    for (const auto& entry : result.profile.sites()) {
      irregular.record(
          static_cast<std::uint64_t>(entry.second.irregular_ratio() * 100.0));
    }
  }
  return result;
}

}  // namespace sgxpl::sip
