#include "sip/pipeline.h"

#include "common/check.h"

namespace sgxpl::sip {

PipelineResult compile_workload(const trace::Workload& workload,
                                const InstrumenterParams& params,
                                const trace::WorkloadParams& train) {
  SGXPL_CHECK_MSG(workload.info.sip_supported,
                  "SIP cannot instrument " << workload.info.name
                                           << " (tool limitation)");
  const trace::Trace profiling_trace = workload.make(train);
  PipelineResult result;
  result.profile = profile_trace(profiling_trace);
  result.plan = build_plan(result.profile, params);
  return result;
}

}  // namespace sgxpl::sip
