// Plain-text trace serialization, so profiling traces can be inspected,
// archived, or fed across the profile -> instrument -> run pipeline the way
// the paper's PGO flow writes LLVM profile data to disk.
//
// Format:
//   # sgxpl-trace v1
//   name <string>
//   elrange_pages <n>
//   accesses <n>
//   <page> <site> <gap>     (one line per access)
#pragma once

#include <iosfwd>
#include <string>

#include "trace/access.h"

namespace sgxpl::trace {

void write_trace(std::ostream& os, const Trace& t);
Trace read_trace(std::istream& is);

void save_trace(const std::string& path, const Trace& t);
Trace load_trace(const std::string& path);

}  // namespace sgxpl::trace
