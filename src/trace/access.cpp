#include "trace/access.h"

#include <array>
#include <unordered_set>

namespace sgxpl::trace {

TraceStats Trace::stats() const {
  TraceStats s;
  s.accesses = accesses_.size();
  if (accesses_.empty()) {
    return s;
  }

  std::unordered_set<PageNum> pages;
  std::unordered_set<SiteId> sites;
  pages.reserve(accesses_.size() / 4);

  std::array<PageNum, 8> recent{};
  recent.fill(kInvalidPage);
  std::size_t recent_next = 0;

  std::array<PageNum, 8> tails{};
  tails.fill(kInvalidPage);
  std::size_t tail_next = 0;

  std::uint64_t sequential = 0;
  std::uint64_t reuse = 0;
  for (const auto& a : accesses_) {
    pages.insert(a.page);
    sites.insert(a.site);
    s.compute_cycles += a.gap;
    s.max_page = a.page > s.max_page ? a.page : s.max_page;

    bool extended = false;
    for (auto& t : tails) {
      if (t != kInvalidPage &&
          (a.page == t + 1 || (t > 0 && a.page == t - 1))) {
        t = a.page;
        extended = true;
        break;
      }
    }
    if (extended) {
      ++sequential;
    } else {
      tails[tail_next] = a.page;
      tail_next = (tail_next + 1) % tails.size();
    }

    for (const PageNum r : recent) {
      if (r == a.page) {
        ++reuse;
        break;
      }
    }
    recent[recent_next] = a.page;
    recent_next = (recent_next + 1) % recent.size();
  }

  s.footprint_pages = pages.size();
  s.sites = static_cast<std::uint32_t>(sites.size());
  s.sequential_fraction =
      static_cast<double>(sequential) / static_cast<double>(s.accesses);
  s.recent_reuse_fraction =
      static_cast<double>(reuse) / static_cast<double>(s.accesses);
  return s;
}

}  // namespace sgxpl::trace
