// Named workload models reproducing the page-access behaviour of the
// paper's benchmarks (Table 1, Fig. 3): SPEC CPU2017 subsets, mcf from SPEC
// CPU2006, the 1 GiB sequential micro-benchmark, and the SD-VBS vision
// applications (SIFT, MSER) plus the synthesized mixed-blood program.
//
// We do not run the SPEC binaries (repro gate: no SPEC, no SGX hardware);
// each model is a parameterized synthetic generator matched to the paper's
// published characteristics: footprint class relative to the 96 MiB EPC,
// sequential vs irregular page-access pattern, per-instruction class mix
// (for SIP instrumentation counts, Table 2), and train-vs-ref input drift
// (§5.2 uses the train input for profiling and ref for measurement).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "trace/access.h"

namespace sgxpl::trace {

enum class Category {
  kSmallWorkingSet,       // fits in the EPC; few faults after warm-up
  kLargeIrregular,        // exceeds EPC, irregular page accesses
  kLargeRegular,          // exceeds EPC, mostly sequential accesses
};

enum class Language { kC, kCpp, kFortran };

const char* to_string(Category c) noexcept;
const char* to_string(Language l) noexcept;

struct WorkloadInfo {
  std::string name;
  Category category = Category::kLargeRegular;
  Language language = Language::kC;
  /// False for workloads the paper's SIP tool cannot instrument: Fortran
  /// sources (bwaves, roms, wrf, exchange2) and omnetpp (tool limitation).
  bool sip_supported = true;
  /// True for the paper's evaluation set; false for extension workloads
  /// (e.g. ORAM) that the reproduction benches must not sweep.
  bool paper_benchmark = true;
  std::string description;
};

struct WorkloadParams {
  /// Scales footprints and access counts; 1.0 reproduces the paper-sized
  /// runs, smaller values give fast test/bench variants.
  double scale = 1.0;
  /// RNG seed; a different seed models a different input image/data file.
  std::uint64_t seed = 42;
  /// True = the profiling ("train") input: smaller and, for workloads with
  /// input-dependent behaviour (mcf), with a different hot/cold mix.
  bool train = false;
};

struct Workload {
  WorkloadInfo info;
  Trace (*make)(const WorkloadParams&) = nullptr;
};

/// All registered workloads (SPEC-like + micro + vision apps).
const std::vector<Workload>& all_workloads();

/// Lookup by name; returns nullptr if unknown.
const Workload* find_workload(std::string_view name);

/// Names of the large-working-set benchmarks evaluated in Figs. 7/8.
std::vector<std::string> large_ws_benchmarks();

/// Names of the C/C++ benchmarks SIP supports (Figs. 9/10/12 population).
std::vector<std::string> sip_benchmarks();

/// Conventional train/ref parameter sets (paper §5.2).
WorkloadParams train_params(double scale = 0.35);
WorkloadParams ref_params(double scale = 1.0);

}  // namespace sgxpl::trace
