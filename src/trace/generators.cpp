#include "trace/generators.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace sgxpl::trace {

Cycles GapModel::sample(Rng& rng) const {
  if (mean == 0) {
    return 0;
  }
  const double jitter = jitter_pct <= 0.0
                            ? 0.0
                            : (rng.real() * 2.0 - 1.0) * jitter_pct;
  const double v = static_cast<double>(mean) * (1.0 + jitter);
  return v <= 1.0 ? 1 : static_cast<Cycles>(v);
}

void seq_scan(Trace& t, Rng& rng, Region region, SiteId site, GapModel gap,
              std::uint64_t stride, double jump_prob) {
  SGXPL_CHECK(region.pages > 0);
  SGXPL_CHECK(stride > 0);
  PageNum p = region.lo;
  std::uint64_t emitted = 0;
  const std::uint64_t budget = (region.pages + stride - 1) / stride;
  while (emitted < budget) {
    t.append(Access{.page = p, .site = site, .gap = gap.sample(rng)});
    ++emitted;
    if (jump_prob > 0.0 && rng.chance(jump_prob)) {
      p = region.lo + rng.bounded(region.pages);
    } else {
      p += stride;
      if (p >= region.hi()) {
        p = region.lo + (p - region.hi());
      }
    }
  }
}

void multi_stream_scan(Trace& t, Rng& rng, Region region, std::uint64_t streams,
                       SiteId site_base, GapModel gap, std::uint64_t chunk,
                       double jump_prob) {
  SGXPL_CHECK(streams > 0);
  SGXPL_CHECK(chunk > 0);
  SGXPL_CHECK(region.pages >= streams);
  const PageNum slice = region.pages / streams;
  std::vector<PageNum> cursor(streams);
  std::vector<PageNum> lo(streams);
  std::vector<PageNum> limit(streams);
  std::vector<std::uint64_t> emitted(streams, 0);
  for (std::uint64_t k = 0; k < streams; ++k) {
    lo[k] = region.lo + k * slice;
    cursor[k] = lo[k];
    limit[k] = (k + 1 == streams) ? region.hi() : region.lo + (k + 1) * slice;
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint64_t k = 0; k < streams; ++k) {
      for (std::uint64_t c = 0; c < chunk && cursor[k] < limit[k]; ++c) {
        t.append(Access{.page = cursor[k],
                        .site = static_cast<SiteId>(site_base + k),
                        .gap = gap.sample(rng)});
        ++emitted[k];
        progress = true;
        if (jump_prob > 0.0 && rng.chance(jump_prob)) {
          // Row/boundary break: short forward skip, never revisit (each
          // sweep touches a page at most once, like a real array pass).
          cursor[k] += 2 + rng.bounded(8);
        } else {
          ++cursor[k];
        }
      }
    }
  }
}

void random_access(Trace& t, Rng& rng, Region region, std::uint64_t count,
                   SiteId site_base, std::uint32_t sites, GapModel gap) {
  SGXPL_CHECK(region.pages > 0);
  SGXPL_CHECK(sites > 0);
  for (std::uint64_t i = 0; i < count; ++i) {
    t.append(Access{
        .page = region.lo + rng.bounded(region.pages),
        .site = static_cast<SiteId>(site_base + rng.bounded(sites)),
        .gap = gap.sample(rng)});
  }
}

void paired_random_access(Trace& t, Rng& rng, Region region,
                          std::uint64_t count, double pair_prob,
                          SiteId site_base, std::uint32_t sites,
                          GapModel gap) {
  SGXPL_CHECK(region.pages > 1);
  SGXPL_CHECK(sites > 0);
  for (std::uint64_t i = 0; i < count; ++i) {
    const PageNum page = region.lo + rng.bounded(region.pages - 1);
    const auto site = static_cast<SiteId>(site_base + rng.bounded(sites));
    t.append(Access{.page = page, .site = site, .gap = gap.sample(rng)});
    if (rng.chance(pair_prob)) {
      t.append(Access{.page = page + 1, .site = site,
                      .gap = gap.sample(rng)});
    }
  }
}

void zipf_access(Trace& t, Rng& rng, Region region, std::uint64_t count,
                 double alpha, SiteId site_base, std::uint32_t sites,
                 GapModel gap) {
  SGXPL_CHECK(region.pages > 0);
  SGXPL_CHECK(sites > 0);
  ZipfSampler zipf(region.pages, alpha);
  for (std::uint64_t i = 0; i < count; ++i) {
    t.append(Access{
        .page = region.lo + zipf(rng),
        .site = static_cast<SiteId>(site_base + rng.bounded(sites)),
        .gap = gap.sample(rng)});
  }
}

void pointer_chase(Trace& t, Rng& rng, Region region, std::uint64_t steps,
                   SiteId site, GapModel gap) {
  SGXPL_CHECK(region.pages > 0);
  // Fisher-Yates permutation defines next[] as a single cycle through the
  // region, so the chase revisits pages with period == region size.
  std::vector<PageNum> order(region.pages);
  std::iota(order.begin(), order.end(), region.lo);
  for (PageNum i = region.pages; i > 1; --i) {
    std::swap(order[i - 1], order[rng.bounded(i)]);
  }
  std::uint64_t idx = 0;
  for (std::uint64_t s = 0; s < steps; ++s) {
    t.append(Access{.page = order[idx], .site = site, .gap = gap.sample(rng)});
    idx = (idx + 1) % order.size();
  }
}

void short_sequential_runs(Trace& t, Rng& rng, Region region,
                           std::uint64_t runs, std::uint64_t max_run,
                           SiteId site_base, std::uint32_t sites,
                           GapModel gap) {
  SGXPL_CHECK(region.pages > max_run);
  SGXPL_CHECK(max_run >= 2);
  SGXPL_CHECK(sites > 0);
  for (std::uint64_t r = 0; r < runs; ++r) {
    const PageNum start = region.lo + rng.bounded(region.pages - max_run);
    const std::uint64_t len = rng.range(2, max_run);
    const auto site = static_cast<SiteId>(site_base + rng.bounded(sites));
    for (std::uint64_t i = 0; i < len; ++i) {
      t.append(Access{.page = start + i, .site = site,
                      .gap = gap.sample(rng)});
    }
  }
}

void hot_cold_mixed_sites(Trace& t, Rng& rng, Region hot, Region cold,
                          std::uint64_t count, double p_hot, SiteId site_base,
                          std::uint32_t sites, GapModel gap) {
  SGXPL_CHECK(hot.pages > 0);
  SGXPL_CHECK(cold.pages > 0);
  SGXPL_CHECK(sites > 0);
  for (std::uint64_t i = 0; i < count; ++i) {
    const bool is_hot = rng.chance(p_hot);
    const Region& region = is_hot ? hot : cold;
    t.append(Access{
        .page = region.lo + rng.bounded(region.pages),
        .site = static_cast<SiteId>(site_base + rng.bounded(sites)),
        .gap = gap.sample(rng)});
  }
}

void strided_sweep(Trace& t, Rng& rng, Region region, std::uint64_t stride,
                   SiteId site, GapModel gap) {
  SGXPL_CHECK(region.pages > 0);
  SGXPL_CHECK(stride > 0);
  for (std::uint64_t offset = 0; offset < stride; ++offset) {
    for (PageNum p = region.lo + offset; p < region.hi(); p += stride) {
      t.append(Access{.page = p, .site = site, .gap = gap.sample(rng)});
    }
  }
}

}  // namespace sgxpl::trace
