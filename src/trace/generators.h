// Reusable page-access pattern primitives from which the named workload
// models are composed. Each appends accesses to a Trace; all randomness
// comes from the caller's Rng so traces are reproducible.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"
#include "trace/access.h"

namespace sgxpl::trace {

/// A contiguous page range [lo, lo+pages) within the ELRANGE.
struct Region {
  PageNum lo = 0;
  PageNum pages = 0;

  PageNum hi() const noexcept { return lo + pages; }
  bool contains(PageNum p) const noexcept { return p >= lo && p < hi(); }
};

/// Uniform compute gap with +/- jitter_pct jitter.
struct GapModel {
  Cycles mean = 5'000;
  double jitter_pct = 0.25;

  Cycles sample(Rng& rng) const;
};

/// One forward pass over `region`, touching every stride-th page in order.
/// `jump_prob` injects occasional random jumps (stream breaks) within the
/// region; after a jump the scan continues from the jump target.
void seq_scan(Trace& t, Rng& rng, Region region, SiteId site, GapModel gap,
              std::uint64_t stride = 1, double jump_prob = 0.0);

/// `streams` concurrent forward scans over equal slices of `region`,
/// interleaved in chunks of `chunk` pages (bwaves/lbm-style multi-array
/// sweeps). Stream k uses site `site_base + k`. `jump_prob` relocates a
/// stream's cursor within its slice (grid-row boundaries and boundary
/// conditions break perfect streams in the real codes).
void multi_stream_scan(Trace& t, Rng& rng, Region region, std::uint64_t streams,
                       SiteId site_base, GapModel gap, std::uint64_t chunk = 1,
                       double jump_prob = 0.0);

/// `count` uniform-random page touches over `region`. Each access draws its
/// site uniformly from [site_base, site_base + sites).
void random_access(Trace& t, Rng& rng, Region region, std::uint64_t count,
                   SiteId site_base, std::uint32_t sites, GapModel gap);

/// `count` random probes where each probe touches its page and, with
/// probability `pair_prob`, the next page too (records straddling a page
/// boundary — hash-table probes in chess transposition tables). The
/// two-page runs are what bait a stream detector into useless preloads.
void paired_random_access(Trace& t, Rng& rng, Region region,
                          std::uint64_t count, double pair_prob,
                          SiteId site_base, std::uint32_t sites,
                          GapModel gap);

/// `count` Zipf(alpha)-distributed touches over `region` (skewed reuse).
void zipf_access(Trace& t, Rng& rng, Region region, std::uint64_t count,
                 double alpha, SiteId site_base, std::uint32_t sites,
                 GapModel gap);

/// A pointer-chase: `steps` hops through a fixed random permutation of the
/// region's pages (mcf/omnetpp-style dependent chains).
void pointer_chase(Trace& t, Rng& rng, Region region, std::uint64_t steps,
                   SiteId site, GapModel gap);

/// `runs` short sequential bursts at random positions in `region`; each run
/// is 2..max_run pages long. This is the pattern that baits stream
/// detectors: a run looks like a stream, triggers preloading, then dies.
void short_sequential_runs(Trace& t, Rng& rng, Region region,
                           std::uint64_t runs, std::uint64_t max_run,
                           SiteId site_base, std::uint32_t sites,
                           GapModel gap);

/// `count` accesses from *one* site population mixing behaviours: with
/// probability `p_hot` a touch to the (small) `hot` region, else a uniform
/// random touch to `cold`. Models the paper's mcf story (§5.2): the same
/// instruction issues many Class-1 hits and some Class-3 irregular misses.
void hot_cold_mixed_sites(Trace& t, Rng& rng, Region hot, Region cold,
                          std::uint64_t count, double p_hot, SiteId site_base,
                          std::uint32_t sites, GapModel gap);

/// Strided grid sweep: pass over `region` visiting pages lo, lo+stride,
/// lo+2*stride, ... wrapping with offset+1 until all offsets are covered
/// (wrong-dimension array sweeps in Fortran codes like roms/wrf).
void strided_sweep(Trace& t, Rng& rng, Region region, std::uint64_t stride,
                   SiteId site, GapModel gap);

}  // namespace sgxpl::trace
