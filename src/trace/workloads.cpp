#include "trace/workloads.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "trace/generators.h"
#include "trace/synthetic_apps.h"

namespace sgxpl::trace {

namespace {

/// Scale helper: scales a page/access count, keeping at least `floor`.
std::uint64_t sc(double scale, std::uint64_t v, std::uint64_t floor = 64) {
  const double x = static_cast<double>(v) * scale;
  return std::max<std::uint64_t>(floor, static_cast<std::uint64_t>(x));
}

// ---------------------------------------------------------------------------
// Micro-benchmark: sequentially accesses a 1 GiB region through a loop
// (paper §1: ~46x slowdown in-enclave; §5.1: best DFP case, +18.6%).
// ---------------------------------------------------------------------------
Trace make_microbenchmark(const WorkloadParams& p) {
  const PageNum pages = sc(p.scale, bytes_to_pages(1_GiB));
  Trace t("microbenchmark", pages + 16);
  Rng rng(p.seed);
  const GapModel gap{.mean = 2'000, .jitter_pct = 0.10};
  const int passes = p.train ? 1 : 2;
  for (int pass = 0; pass < passes; ++pass) {
    seq_scan(t, rng, Region{0, pages}, /*site=*/1, gap);
  }
  return t;
}

// ---------------------------------------------------------------------------
// bwaves (Fortran): block-wise multi-stream sequential sweeps (Fig. 3a).
// ---------------------------------------------------------------------------
Trace make_bwaves(const WorkloadParams& p) {
  const PageNum pages = sc(p.scale, 40'960);  // ~160 MiB
  Trace t("bwaves", pages + 16);
  Rng rng(p.seed);
  const GapModel gap{.mean = 9'000, .jitter_pct = 0.3};
  // Sixteen concurrent block streams (the many parallel diagonals of
  // Fig. 3a) with boundary-condition noise interleaved. The noise faults
  // churn the predictor's LRU stream list, which is what makes DFP
  // sensitive to stream_list length (Fig. 6): a short list cannot hold all
  // sixteen stream tails plus the noise insertions.
  constexpr std::uint64_t kStreams = 16;
  const PageNum slice = pages / kStreams;
  const int iters = p.train ? 1 : 3;
  for (int it = 0; it < iters; ++it) {
    std::vector<PageNum> cursor(kStreams);
    std::vector<PageNum> limit(kStreams);
    for (std::uint64_t k = 0; k < kStreams; ++k) {
      cursor[k] = k * slice;
      limit[k] = (k + 1 == kStreams) ? pages : (k + 1) * slice;
    }
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::uint64_t k = 0; k < kStreams; ++k) {
        if (cursor[k] < limit[k]) {
          t.append(Access{.page = cursor[k]++,
                          .site = static_cast<SiteId>(10 + k),
                          .gap = gap.sample(rng)});
          progress = true;
          if (rng.chance(0.28)) {
            cursor[k] += 2 + rng.bounded(8);  // grid-row break
          }
        }
        if (rng.chance(0.22)) {
          // Boundary-condition update: an isolated far touch.
          t.append(Access{.page = rng.bounded(pages),
                          .site = static_cast<SiteId>(30 + rng.bounded(6)),
                          .gap = gap.sample(rng)});
        }
      }
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// lbm (C): lattice-Boltzmann — two big arrays streamed in lockstep
// (Fig. 3c). Purely sequential sites: SIP finds nothing to instrument.
// ---------------------------------------------------------------------------
Trace make_lbm(const WorkloadParams& p) {
  const PageNum pages = sc(p.scale, 46'080);  // ~180 MiB (src+dst grids)
  Trace t("lbm", pages + 16);
  Rng rng(p.seed);
  const GapModel gap{.mean = 13'000, .jitter_pct = 0.2};
  const int iters = p.train ? 1 : 3;
  for (int it = 0; it < iters; ++it) {
    multi_stream_scan(t, rng, Region{0, pages}, /*streams=*/2,
                      /*site_base=*/10, gap, /*chunk=*/1,
                      /*jump_prob=*/0.04);
  }
  return t;
}

// ---------------------------------------------------------------------------
// wrf (Fortran): weather grid sweeps — mostly sequential with occasional
// wrong-dimension strides.
// ---------------------------------------------------------------------------
Trace make_wrf(const WorkloadParams& p) {
  const PageNum pages = sc(p.scale, 30'720);  // ~120 MiB
  Trace t("wrf", pages + 16);
  Rng rng(p.seed);
  const GapModel gap{.mean = 16'000, .jitter_pct = 0.3};
  const int iters = p.train ? 1 : 2;
  for (int it = 0; it < iters; ++it) {
    seq_scan(t, rng, Region{0, pages}, /*site=*/10, gap, /*stride=*/1,
             /*jump_prob=*/0.05);
    // Wrong-dimension sweeps dominate: strides defeat the stream detector.
    strided_sweep(t, rng, Region{0, pages}, /*stride=*/8, /*site=*/11, gap);
    strided_sweep(t, rng, Region{0, sc(p.scale, 16'384)}, /*stride=*/4,
                  /*site=*/12, gap);
  }
  return t;
}

// ---------------------------------------------------------------------------
// mcf (SPEC CPU2017, C): network-simplex over a huge arc graph. The paper's
// §5.2 case study: the same instructions issue many EPC hits (Class 1) and
// some irregular misses (Class 3), with very few sequential (Class 2)
// accesses — and the hit/miss mix drifts between the train and ref inputs,
// which is why SIP washes out on it.
// ---------------------------------------------------------------------------
Trace make_mcf(const WorkloadParams& p) {
  const PageNum hot_pages = sc(p.scale, 2'048);    // ~8 MiB hot arcs
  const PageNum cold_pages = sc(p.scale, 36'864);  // ~144 MiB cold graph
  Trace t("mcf", hot_pages + cold_pages + 16);
  Rng rng(p.seed);
  const GapModel gap{.mean = 6'000, .jitter_pct = 0.4};
  const Region hot{0, hot_pages};
  const Region cold{hot_pages, cold_pages};
  // The network-simplex loop: the same 99 instructions issue mostly hot-arc
  // hits plus occasional cold-graph misses. The profiling (train) input
  // spills to the cold graph ~9% of the time; the ref input only ~3%:
  // exactly the drift that makes SIP's instrumentation a wash (§5.2).
  const double p_hot = p.train ? 0.91 : 0.97;
  hot_cold_mixed_sites(t, rng, hot, cold, sc(p.scale, 1'400'000), p_hot,
                       /*site_base=*/100, /*sites=*/99, gap);
  // Arc-array walks: consecutive arcs often share a page boundary — more
  // two-page stream bait (mcf is one of Fig. 8's overhead cases).
  paired_random_access(t, rng, cold, sc(p.scale, 12'000), /*pair_prob=*/0.6,
                       /*site_base=*/100, /*sites=*/99, gap);
  return t;
}

// ---------------------------------------------------------------------------
// mcf.2006 (SPEC CPU2006, C): same algorithm, different implementation —
// a higher and input-stable irregular ratio, so SIP helps (+4.9%).
// ---------------------------------------------------------------------------
Trace make_mcf2006(const WorkloadParams& p) {
  const PageNum hot_pages = sc(p.scale, 4'096);    // ~16 MiB
  const PageNum cold_pages = sc(p.scale, 30'720);  // ~120 MiB
  Trace t("mcf.2006", hot_pages + cold_pages + 16);
  Rng rng(p.seed);
  const GapModel gap{.mean = 6'500, .jitter_pct = 0.4};
  const Region hot{0, hot_pages};
  const Region cold{hot_pages, cold_pages};
  // Input-stable hot/cold mix: the profile's irregular ratio carries over
  // to the ref run, so SIP's instrumentation keeps paying off (+4.9%).
  const double p_hot = p.train ? 0.84 : 0.86;
  hot_cold_mixed_sites(t, rng, hot, cold, sc(p.scale, 450'000), p_hot,
                       /*site_base=*/100, /*sites=*/114, gap);
  return t;
}

// ---------------------------------------------------------------------------
// deepsjeng (C++): chess search — transposition-table lookups spread
// uniformly over a table larger than the EPC (Fig. 3b), plus hot evaluation
// tables. The random lookups are exactly Class-3 accesses: SIP's best case
// (+9.0%); for DFP they are bait (short accidental runs trigger useless
// preloads, +34% overhead without the stop mechanism).
// ---------------------------------------------------------------------------
Trace make_deepsjeng(const WorkloadParams& p) {
  const PageNum table_pages = sc(p.scale, 73'728);  // ~288 MiB TT (3x EPC)
  // Evaluation tables are small (~256 KiB): their reuse is dense enough
  // that the profiling classifier sees them as Class 1 (on stream_list).
  const PageNum hot_pages = 64;
  Trace t("deepsjeng", table_pages + hot_pages + 16);
  Rng rng(p.seed);
  const Region table{0, table_pages};
  const Region hot{table_pages, hot_pages};
  const GapModel probe_gap{.mean = 5'000, .jitter_pct = 0.4};
  const GapModel hot_gap{.mean = 4'000, .jitter_pct = 0.3};
  const std::uint64_t rounds = sc(p.scale, p.train ? 16'000 : 36'000);
  PageNum eval_cursor = hot.lo;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    // TT probes: a bucket cluster often straddles a page boundary, so a
    // probe touches two adjacent pages — exactly the two-page "streams"
    // that bait DFP into preloading junk (paper Fig. 8: +34% overhead).
    // These 35 pure-probe sites are ~90% irregular: SIP's Table-2 points.
    paired_random_access(t, rng, table, 3, /*pair_prob=*/0.9,
                         /*site_base=*/100, /*sites=*/35, probe_gap);
    // Evaluation sites: dense cyclic walks over the small eval tables
    // (Class 1/2 in the profile) plus an occasional skewed TT peek from
    // the same instruction (re-probing recently stored entries, which are
    // resident). Their irregular ratio sits just below the 5% threshold —
    // instrumenting them (low thresholds in Fig. 9) buys nothing: the
    // peeks hit resident pages, so every added check is pure overhead.
    if (rng.chance(0.5)) {
      zipf_access(t, rng, table, 1, /*alpha=*/0.99, /*site_base=*/300,
                  /*sites=*/80, probe_gap);
    }
    for (int e = 0; e < 20; ++e) {
      t.append(Access{.page = eval_cursor,
                      .site = static_cast<SiteId>(300 + rng.bounded(80)),
                      .gap = hot_gap.sample(rng)});
      eval_cursor = eval_cursor + 1 >= hot.hi() ? hot.lo : eval_cursor + 1;
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// omnetpp (C++): discrete-event simulation — pointer-heavy event graph.
// SIP's tool cannot instrument it (paper §5.2), so it appears only in the
// DFP experiments.
// ---------------------------------------------------------------------------
Trace make_omnetpp(const WorkloadParams& p) {
  const PageNum pages = sc(p.scale, 35'840);  // ~140 MiB
  Trace t("omnetpp", pages + 16);
  Rng rng(p.seed);
  const GapModel gap{.mean = 7'000, .jitter_pct = 0.4};
  pointer_chase(t, rng, Region{0, pages}, sc(p.scale, 140'000),
                /*site=*/100, gap);
  zipf_access(t, rng, Region{0, sc(p.scale, 2'048)}, sc(p.scale, 110'000),
              /*alpha=*/0.9, /*site_base=*/200, /*sites=*/60, gap);
  // Event objects spanning page boundaries: stream bait.
  paired_random_access(t, rng, Region{0, pages}, sc(p.scale, 45'000),
                       /*pair_prob=*/0.7, /*site_base=*/300, /*sites=*/20,
                       gap);
  return t;
}

// ---------------------------------------------------------------------------
// xz (C): LZMA — sequential match copies through the dictionary window mixed
// with random hash-chain probes.
// ---------------------------------------------------------------------------
Trace make_xz(const WorkloadParams& p) {
  const PageNum pages = sc(p.scale, 33'280);  // ~130 MiB window + hashes
  Trace t("xz", pages + 16);
  Rng rng(p.seed);
  const GapModel gap{.mean = 6'000, .jitter_pct = 0.4};
  const Region window{0, pages};
  const std::uint64_t rounds = sc(p.scale, 40'000);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    // Hash probes: irregular, SIP-instrumentable (46 points in Table 2).
    random_access(t, rng, window, 4, /*site_base=*/100, /*sites=*/46, gap);
    // Match copy: a short forward run at the match position.
    if (rng.chance(0.5)) {
      short_sequential_runs(t, rng, window, /*runs=*/1, /*max_run=*/4,
                            /*site_base=*/200, /*sites=*/8, gap);
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// roms (Fortran): ocean-model grid sweeps with strides — looks sequential in
// bursts but breaks streams constantly; the paper's worst DFP case (+42%
// overhead without the stop mechanism).
// ---------------------------------------------------------------------------
Trace make_roms(const WorkloadParams& p) {
  const PageNum pages = sc(p.scale, 86'016);  // ~336 MiB of grid fields
  Trace t("roms", pages + 16);
  Rng rng(p.seed);
  const GapModel gap{.mean = 5'500, .jitter_pct = 0.3};
  const Region grid{0, pages};
  // Wrong-dimension grid sweeps: every row visit is a 2-3 page burst at a
  // far-away location — relentless stream-detector bait (the paper's worst
  // DFP case, +42% overhead without the stop valve).
  short_sequential_runs(t, rng, grid, sc(p.scale, 90'000), /*max_run=*/3,
                        /*site_base=*/100, /*sites=*/30, gap);
  strided_sweep(t, rng, Region{0, sc(p.scale, 12'288)}, /*stride=*/16,
                /*site=*/200, gap);
  return t;
}

// ---------------------------------------------------------------------------
// Small-working-set benchmarks (Table 1, first row): footprints below the
// usable EPC, so they fault only during warm-up. Pattern details barely
// matter; each gets a plausible mix at ~40-80 MiB.
// ---------------------------------------------------------------------------
Trace make_small_ws(const char* name, PageNum pages, std::uint64_t accesses,
                    const WorkloadParams& p) {
  Trace t(name, pages + 16);
  Rng rng(p.seed);
  const GapModel gap{.mean = 8'000, .jitter_pct = 0.3};
  const Region r{0, pages};
  seq_scan(t, rng, r, /*site=*/10, gap);
  zipf_access(t, rng, r, accesses, /*alpha=*/0.9, /*site_base=*/100,
              /*sites=*/40, gap);
  return t;
}

Trace make_cactubssn(const WorkloadParams& p) {
  return make_small_ws("cactuBSSN", sc(p.scale, 18'432), sc(p.scale, 120'000), p);
}
Trace make_imagick(const WorkloadParams& p) {
  return make_small_ws("imagick", sc(p.scale, 15'360), sc(p.scale, 120'000), p);
}
Trace make_leela(const WorkloadParams& p) {
  return make_small_ws("leela", sc(p.scale, 10'240), sc(p.scale, 100'000), p);
}
Trace make_nab(const WorkloadParams& p) {
  return make_small_ws("nab", sc(p.scale, 12'288), sc(p.scale, 100'000), p);
}
Trace make_exchange2(const WorkloadParams& p) {
  return make_small_ws("exchange2", sc(p.scale, 8'192), sc(p.scale, 80'000), p);
}

// ---------------------------------------------------------------------------
// ORAM (extension; paper §3.1 cites ZeroTrace): Path-ORAM-protected storage.
// Every logical request reads one random root-to-leaf path of the bucket
// tree and writes it back — by construction the page sequence is
// cryptographically unpredictable across requests AND across runs, the
// adversarial case the paper names for fault-history prediction.
// ---------------------------------------------------------------------------
Trace make_oram(const WorkloadParams& p) {
  const PageNum tree_pages = sc(p.scale, 65'536);  // ~256 MiB bucket tree
  // Height of the binary bucket tree with one page per bucket.
  unsigned height = 0;
  while ((2ull << height) - 1 < tree_pages) {
    ++height;
  }
  const PageNum leaves = 1ull << height;
  Trace t("ORAM", (2 * leaves - 1) + 64);
  Rng rng(p.seed);
  const GapModel gap{.mean = 7'000, .jitter_pct = 0.3};
  const std::uint64_t requests = sc(p.scale, 24'000);
  for (std::uint64_t q = 0; q < requests; ++q) {
    const PageNum leaf = rng.bounded(leaves);
    // Visit the path root -> leaf. Bucket index at level k (root = level 0)
    // in heap order: (leaf + leaves) >> (height - k), minus 1 for 0-base.
    for (unsigned k = 0; k <= height; ++k) {
      const PageNum bucket = ((leaf + leaves) >> (height - k)) - 1;
      t.append(Access{.page = bucket,
                      .site = static_cast<SiteId>(100 + k),
                      .gap = gap.sample(rng)});
    }
  }
  return t;
}

std::vector<Workload> build_registry() {
  std::vector<Workload> w;
  auto add = [&w](WorkloadInfo info, Trace (*make)(const WorkloadParams&)) {
    w.push_back(Workload{std::move(info), make});
  };

  add({"microbenchmark", Category::kLargeRegular, Language::kC, true, true,
       "1 GiB sequential scan through a loop (paper's correctness baseline)"},
      make_microbenchmark);
  add({"bwaves", Category::kLargeRegular, Language::kFortran, false, true,
       "multi-stream block-sequential sweeps (Fig. 3a)"},
      make_bwaves);
  add({"lbm", Category::kLargeRegular, Language::kC, true, true,
       "two lockstep array streams (Fig. 3c); zero SIP points"},
      make_lbm);
  add({"wrf", Category::kLargeRegular, Language::kFortran, false, true,
       "sequential grid sweeps with occasional strides"},
      make_wrf);
  add({"mcf", Category::kLargeIrregular, Language::kC, true, true,
       "hot/cold graph walk; Class1+Class3 mix drifts train->ref (SIP wash)"},
      make_mcf);
  add({"mcf.2006", Category::kLargeIrregular, Language::kC, true, true,
       "CPU2006 mcf: higher, input-stable irregular ratio (SIP +4.9%)"},
      make_mcf2006);
  add({"deepsjeng", Category::kLargeIrregular, Language::kCpp, true, true,
       "uniform transposition-table probes + hot eval tables (Fig. 3b)"},
      make_deepsjeng);
  add({"omnetpp", Category::kLargeIrregular, Language::kCpp, false, true,
       "pointer-chase event graph; SIP tool unsupported (paper §5.2)"},
      make_omnetpp);
  add({"xz", Category::kLargeIrregular, Language::kC, true, true,
       "dictionary window: random hash probes + short match copies"},
      make_xz);
  add({"roms", Category::kLargeIrregular, Language::kFortran, false, true,
       "strided grid sweeps; stream-detector bait (worst DFP case)"},
      make_roms);
  add({"cactuBSSN", Category::kSmallWorkingSet, Language::kCpp, true, true,
       "small working set (~72 MiB)"},
      make_cactubssn);
  add({"imagick", Category::kSmallWorkingSet, Language::kC, true, true,
       "small working set (~60 MiB)"},
      make_imagick);
  add({"leela", Category::kSmallWorkingSet, Language::kCpp, true, true,
       "small working set (~40 MiB)"},
      make_leela);
  add({"nab", Category::kSmallWorkingSet, Language::kC, true, true,
       "small working set (~48 MiB)"},
      make_nab);
  add({"exchange2", Category::kSmallWorkingSet, Language::kFortran, false, true,
       "small working set (~32 MiB)"},
      make_exchange2);
  add({"SIFT", Category::kLargeRegular, Language::kC, true, true,
       "SD-VBS scale-invariant feature transform: sequential image pyramid"},
      make_sift);
  add({"MSER", Category::kLargeIrregular, Language::kC, true, true,
       "SD-VBS maximally stable extremal regions: irregular region merging"},
      make_mser);
  add({"mixed-blood", Category::kLargeIrregular, Language::kC, true, true,
       "synthesized: sequential image scan, then MSER blob detection (§5.4)"},
      make_mixed_blood);
  add({"ORAM", Category::kLargeIrregular, Language::kCpp, true, false,
       "extension: Path-ORAM bucket-tree paths (unpredictable by design)"},
      make_oram);
  return w;
}

}  // namespace

const char* to_string(Category c) noexcept {
  switch (c) {
    case Category::kSmallWorkingSet:
      return "small-working-set";
    case Category::kLargeIrregular:
      return "large-irregular";
    case Category::kLargeRegular:
      return "large-regular";
  }
  return "?";
}

const char* to_string(Language l) noexcept {
  switch (l) {
    case Language::kC:
      return "C";
    case Language::kCpp:
      return "C++";
    case Language::kFortran:
      return "Fortran";
  }
  return "?";
}

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> registry = build_registry();
  return registry;
}

const Workload* find_workload(std::string_view name) {
  for (const auto& w : all_workloads()) {
    if (w.info.name == name) {
      return &w;
    }
  }
  return nullptr;
}

std::vector<std::string> large_ws_benchmarks() {
  std::vector<std::string> names;
  for (const auto& w : all_workloads()) {
    if (w.info.paper_benchmark &&
        w.info.category != Category::kSmallWorkingSet &&
        w.info.name != "SIFT" && w.info.name != "MSER" &&
        w.info.name != "mixed-blood") {
      names.push_back(w.info.name);
    }
  }
  return names;
}

std::vector<std::string> sip_benchmarks() {
  std::vector<std::string> names;
  for (const auto& w : all_workloads()) {
    if (w.info.paper_benchmark && w.info.sip_supported &&
        w.info.category != Category::kSmallWorkingSet &&
        w.info.name != "SIFT" && w.info.name != "MSER" &&
        w.info.name != "mixed-blood") {
      names.push_back(w.info.name);
    }
  }
  return names;
}

WorkloadParams train_params(double scale) {
  return WorkloadParams{.scale = scale, .seed = 7, .train = true};
}

WorkloadParams ref_params(double scale) {
  return WorkloadParams{.scale = scale, .seed = 42, .train = false};
}

}  // namespace sgxpl::trace
