#include "trace/trace_io.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace sgxpl::trace {

namespace {
constexpr const char* kMagic = "# sgxpl-trace v1";
}

void write_trace(std::ostream& os, const Trace& t) {
  os << kMagic << '\n';
  os << "name " << (t.name().empty() ? "-" : t.name()) << '\n';
  os << "elrange_pages " << t.elrange_pages() << '\n';
  os << "accesses " << t.size() << '\n';
  for (const auto& a : t.accesses()) {
    os << a.page << ' ' << a.site << ' ' << a.gap << '\n';
  }
}

Trace read_trace(std::istream& is) {
  std::string line;
  SGXPL_CHECK_MSG(std::getline(is, line) && line == kMagic,
                  "bad trace header: " << line);
  std::string key;
  std::string name;
  PageNum elrange = 0;
  std::size_t count = 0;
  is >> key >> name;
  SGXPL_CHECK_MSG(key == "name", "expected name, got " << key);
  is >> key >> elrange;
  SGXPL_CHECK_MSG(key == "elrange_pages", "expected elrange_pages");
  is >> key >> count;
  SGXPL_CHECK_MSG(key == "accesses", "expected accesses");

  Trace t(name == "-" ? "" : name, elrange);
  t.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Access a;
    is >> a.page >> a.site >> a.gap;
    SGXPL_CHECK_MSG(static_cast<bool>(is), "truncated trace at record " << i);
    t.append(a);
  }
  return t;
}

void save_trace(const std::string& path, const Trace& t) {
  std::ofstream os(path);
  SGXPL_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  write_trace(os, t);
  SGXPL_CHECK_MSG(static_cast<bool>(os), "write to " << path << " failed");
}

Trace load_trace(const std::string& path) {
  std::ifstream is(path);
  SGXPL_CHECK_MSG(is.is_open(), "cannot open " << path);
  return read_trace(is);
}

}  // namespace sgxpl::trace
