// Trace models of the two SD-VBS vision applications the paper evaluates on
// MIT-Adobe FiveK images (§5.3) and the synthesized mixed-blood program
// (§5.4). We have neither SD-VBS nor the image dataset; these generators
// reproduce the published page-level traits: both have footprints well above
// the EPC, SIFT is dominated by sequential pyramid passes (DFP-friendly,
// zero SIP points in Table 2), MSER by irregular region-merging accesses
// (SIP-friendly, 54 points), and mixed-blood concatenates a sequential image
// scan with an MSER phase so DFP and SIP each improve "their" half.
#pragma once

#include "trace/access.h"
#include "trace/workloads.h"

namespace sgxpl::trace {

Trace make_sift(const WorkloadParams& p);
Trace make_mser(const WorkloadParams& p);
Trace make_mixed_blood(const WorkloadParams& p);

}  // namespace sgxpl::trace
