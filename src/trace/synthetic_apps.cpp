#include "trace/synthetic_apps.h"

#include <algorithm>

#include "common/rng.h"
#include "trace/generators.h"

namespace sgxpl::trace {

namespace {

std::uint64_t sc(double scale, std::uint64_t v, std::uint64_t floor = 64) {
  const double x = static_cast<double>(v) * scale;
  return std::max<std::uint64_t>(floor, static_cast<std::uint64_t>(x));
}

}  // namespace

Trace make_sift(const WorkloadParams& p) {
  // Gaussian pyramid: repeated sequential passes over octaves of shrinking
  // size, then per-octave difference and extrema scans — all streaming.
  const PageNum base = sc(p.scale, 38'400);  // ~150 MiB full-resolution image
  Trace t("SIFT", 2 * base + 64);
  Rng rng(p.seed);
  const GapModel gap{.mean = 10'000, .jitter_pct = 0.3};
  PageNum lo = 0;
  PageNum size = base;
  SiteId site = 10;
  const int octaves = p.train ? 2 : 4;
  for (int oct = 0; oct < octaves && size >= 256; ++oct) {
    const Region octave{lo, size};
    // Blur passes (read + write streams) and DoG pass per octave; the
    // sliding convolution window revisits rows, breaking perfect streams.
    multi_stream_scan(t, rng, octave, /*streams=*/2, site, gap, /*chunk=*/2,
                      /*jump_prob=*/0.04);
    seq_scan(t, rng, octave, static_cast<SiteId>(site + 2), gap,
             /*stride=*/1, /*jump_prob=*/0.04);
    // Keypoint refinement hops around the octave. The hops come from
    // hundreds of rarely-executed instructions, so no single site gathers
    // enough profile mass to be instrumented (Table 2: SIFT = 0 points).
    random_access(t, rng, octave, sc(p.scale, 80'000), /*site_base=*/500,
                  /*sites=*/100'000, gap);
    lo += size;
    size /= 2;
    site = static_cast<SiteId>(site + 5);
  }
  return t;
}

Trace make_mser(const WorkloadParams& p) {
  // A sequential intensity-sort pass over the image, then union-find region
  // merging: the parent-pointer updates hop irregularly across the whole
  // component forest (the Class-3 population behind MSER's 54 SIP points).
  const PageNum image = sc(p.scale, 25'600);   // ~100 MiB image + histogram
  const PageNum forest = sc(p.scale, 35'840);  // ~140 MiB region forest
  Trace t("MSER", image + forest + 64);
  Rng rng(p.seed);
  const GapModel scan_gap{.mean = 6'000, .jitter_pct = 0.2};
  const GapModel merge_gap{.mean = 15'000, .jitter_pct = 0.4};
  const Region img{0, image};
  const Region fst{image, forest};
  seq_scan(t, rng, img, /*site=*/10, scan_gap);
  const std::uint64_t merges = sc(p.scale, 220'000);
  const std::uint64_t rounds = merges / 6;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    // Union-find path walks: skewed (roots are hot and usually resident,
    // deep leaves miss) — many checks buy few conversions, which is why
    // MSER's SIP gain is modest (+3.0% in Fig. 11).
    zipf_access(t, rng, fst, 5, /*alpha=*/0.97, /*site_base=*/100,
                /*sites=*/54, merge_gap);
    // Neighbour pixel reads: near-sequential bait runs on the image.
    if (rng.chance(0.25)) {
      short_sequential_runs(t, rng, img, /*runs=*/1, /*max_run=*/3,
                            /*site_base=*/200, /*sites=*/10, scan_gap);
    }
  }
  return t;
}

Trace make_mixed_blood(const WorkloadParams& p) {
  // §5.4: "we sequentially scan an image and then invoke MSER for blobs
  // detection" — similar volumes of Class-2 and Class-3 accesses.
  const PageNum image = sc(p.scale, 20'480);   // ~80 MiB image
  const PageNum forest = sc(p.scale, 33'280);  // ~130 MiB MSER forest
  Trace t("mixed-blood", image + forest + 64);
  Rng rng(p.seed);
  const GapModel scan_gap{.mean = 7'000, .jitter_pct = 0.2};
  const GapModel merge_gap{.mean = 8'000, .jitter_pct = 0.4};
  const Region img{0, image};
  const Region fst{image, forest};
  // Phase 1: sequential image scan (DFP's half).
  seq_scan(t, rng, img, /*site=*/10, scan_gap);
  // Phase 2: MSER-style irregular merging (SIP's half).
  const std::uint64_t merges = sc(p.scale, 180'000);
  zipf_access(t, rng, fst, merges, /*alpha=*/0.97, /*site_base=*/100,
              /*sites=*/54, merge_gap);
  return t;
}

}  // namespace sgxpl::trace
