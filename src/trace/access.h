// Page-granularity memory access traces.
//
// A trace is the simulator's model of an application: the ordered sequence
// of enclave page touches, each attributed to a static source site (the
// load/store instruction SIP reasons about) and preceded by a compute gap.
// Page granularity is exactly the information SGX exposes: the hardware
// clears the bottom 12 bits of faulting addresses before the OS sees them,
// and the paper's profiler likewise records page number + timestamp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace sgxpl::trace {

struct Access {
  /// Enclave virtual page touched.
  PageNum page = 0;
  /// Static source site (instruction) issuing the access.
  SiteId site = 0;
  /// Compute cycles spent since the previous access completed.
  Cycles gap = 0;
};

/// Summary features of a trace, used for Table 1 classification and for
/// EXPERIMENTS.md reporting.
struct TraceStats {
  std::uint64_t accesses = 0;
  PageNum footprint_pages = 0;   // distinct pages touched
  PageNum max_page = 0;
  std::uint32_t sites = 0;       // distinct site ids
  Cycles compute_cycles = 0;     // sum of gaps
  /// Fraction of accesses that extend one of the 8 most recent streams
  /// (page == tail+1 or tail-1), i.e. would be caught by a small stream
  /// detector even when streams interleave (lbm alternates two arrays).
  double sequential_fraction = 0.0;
  /// Fraction of accesses that revisit one of the 8 most recent pages.
  double recent_reuse_fraction = 0.0;
};

class Trace {
 public:
  Trace() = default;
  Trace(std::string name, PageNum elrange_pages)
      : name_(std::move(name)), elrange_pages_(elrange_pages) {}

  const std::string& name() const noexcept { return name_; }
  PageNum elrange_pages() const noexcept { return elrange_pages_; }
  void set_elrange_pages(PageNum pages) noexcept { elrange_pages_ = pages; }

  const std::vector<Access>& accesses() const noexcept { return accesses_; }
  std::vector<Access>& mutable_accesses() noexcept { return accesses_; }
  std::size_t size() const noexcept { return accesses_.size(); }
  bool empty() const noexcept { return accesses_.empty(); }

  void append(Access a) { accesses_.push_back(a); }
  void reserve(std::size_t n) { accesses_.reserve(n); }

  /// One pass over the trace computing the summary features.
  TraceStats stats() const;

 private:
  std::string name_;
  PageNum elrange_pages_ = 0;
  std::vector<Access> accesses_;
};

}  // namespace sgxpl::trace
