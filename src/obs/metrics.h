// The metrics registry: named counters, gauges, and log-bucketed latency
// histograms for the paging simulator.
//
// Design constraints (see docs/OBSERVABILITY.md):
//   - *Null is off.* Producers hold a `MetricsRegistry*` that may be null;
//     every publish site is a single pointer test away from zero cost, so
//     performance runs pay nothing (acceptance: fig8_dfp regresses < 2%).
//   - *Lock-free hot path.* record()/add()/set() touch only relaxed
//     atomics; the registry mutex guards metric *creation* and iteration
//     only. Producers resolve handles once (at attach time) and publish
//     through the cached pointer afterwards.
//   - *Merge support.* Histograms snapshot into plain structs that can be
//     merged across runs/replicas/enclaves (same bucket layout always).
//
// Naming convention: dotted lowercase paths, `<subsystem>.<noun>[.<unit>]`,
// e.g. "driver.fault.stall_cycles", "dfp.depth", "sip.plan.points".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sgxpl::obs {

class JsonWriter;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Immutable summary of a Histogram at one point in time. Plain data:
/// copyable, mergeable, serializable.
struct HistogramSnapshot {
  /// Log-linear layout: buckets 0..3 hold the exact values 0..3; above
  /// that, each power-of-two octave is split into 4 sub-buckets, giving
  /// ~±12.5% value resolution across the full uint64 range.
  static constexpr std::size_t kBuckets = 4 + 62 * 4;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  // size kBuckets (empty when count==0)

  double mean() const noexcept;
  /// Value at quantile q in [0,1], interpolated within the bucket.
  double quantile(double q) const noexcept;
  double p50() const noexcept { return quantile(0.50); }
  double p90() const noexcept { return quantile(0.90); }
  double p99() const noexcept { return quantile(0.99); }

  /// Pointwise accumulate `other` into this snapshot.
  void merge(const HistogramSnapshot& other);

  std::string describe() const;
};

/// Lock-free log-bucketed histogram of non-negative integer samples
/// (cycle latencies, batch sizes, queue depths).
class Histogram {
 public:
  Histogram();

  void record(std::uint64_t v) noexcept;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;
  void reset() noexcept;

  /// Bucket index for value `v` (exposed for the bucket-boundary tests).
  static std::size_t bucket_index(std::uint64_t v) noexcept;
  /// Smallest value mapping to bucket `i`.
  static std::uint64_t bucket_lower_bound(std::size_t i) noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
  std::vector<std::atomic<std::uint64_t>> buckets_;
};

/// Named metric store. Metrics are created on first use and live as long
/// as the registry; returned references are stable (callers cache them).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Snapshot every metric into `w` as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,...}}}.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

  /// Multi-line human-readable dump (sorted by name).
  std::string describe() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;  // guards map shape only, never metric updates
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace sgxpl::obs
