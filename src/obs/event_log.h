// Structured event log for the driver: every paging-relevant event with its
// virtual timestamp. This is the raw material of the Fig. 2 / Fig. 4
// timeline bench, of ordering tests, and of the Perfetto/Chrome trace
// export (obs/trace_export.h); disabled (null) in performance runs.
//
// Storage is a fixed-capacity ring buffer: once full, the *oldest* events
// are overwritten so the log always holds the most recent window of the
// run, and `dropped()` reports how many fell off the front.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace sgxpl::obs {

enum class EventType : std::uint8_t {
  kFault,          // AEX taken for `page`
  kLoadScheduled,  // channel op created (aux = end time)
  kLoadCommitted,  // page became resident
  kLoadsAborted,   // queued preloads flushed (page = count)
  kEviction,       // `page` evicted (EWB)
  kResume,         // ERESUME: app back in the enclave after faulting on page
  kSipRequest,     // synchronous page_loadin posted for `page`
  kSipPrefetch,    // asynchronous (hoisted) request posted for `page`
  kScan,           // service-thread access-bit scan
  kChaos,          // injected fault fired (detail = fault class)
  kWatchdog,       // online invariant sweep ran (aux = scans so far)
  kAdmission,      // preload shed by admission control (detail = reason)
  kRetry,          // lost-completion sweep acted on `page` (detail = action)
  kDegrade,        // tenant stepped on the ladder (page = pid, detail=level)
  kFleet,          // supervisor action (page = host, detail = action)
};

const char* to_string(EventType t) noexcept;

/// Inverse of to_string (exact spelling, e.g. "FAULT(AEX)"); nullopt for
/// unknown names.
std::optional<EventType> parse_event_type(std::string_view name) noexcept;

/// Subsystem track an event renders on in the exported trace.
enum class EventTrack : std::uint8_t {
  kApp,            // application stall windows (fault -> resume)
  kFaultHandler,   // AEX entry/exit, aborts, evictions
  kChannel,        // paging-channel occupancy (scheduled loads, commits)
  kServiceThread,  // access-bit scans
  kSip,            // SIP notifications and prefetches
  kChaos,          // injected faults and watchdog sweeps
};

const char* to_string(EventTrack t) noexcept;
EventTrack track_of(EventType t) noexcept;

struct Event {
  Cycles at = 0;
  EventType type = EventType::kFault;
  PageNum page = kInvalidPage;
  /// kLoadScheduled: the op's end time. Otherwise 0.
  Cycles aux = 0;
  /// kLoadScheduled/kLoadCommitted: "demand" / "dfp-preload" / "sip-load".
  const char* detail = "";

  std::string describe() const;
};

class EventLog {
 public:
  /// Ring buffer holding the most recent `capacity` events; older ones are
  /// overwritten and counted in dropped().
  explicit EventLog(std::size_t capacity = 4096);

  void record(Event e);

  /// Retained events in chronological order (oldest surviving first).
  std::vector<Event> events() const;

  /// Visit retained events in chronological order without copying.
  void for_each(const std::function<void(const Event&)>& fn) const;

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  void clear();

  /// Render the retained window, one event per line, for timeline output;
  /// notes the number of older events dropped, if any.
  std::string render() const;

 private:
  std::size_t capacity_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  // index of the oldest retained event
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace sgxpl::obs
