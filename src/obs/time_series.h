// Windowed time-series sampling: the "plottable" complement to the
// end-of-run registry. Producers append (virtual-time, value) samples on a
// fixed cadence — the driver samples on its service-thread scan tick — so
// DFP-stop dynamics, EPC occupancy, and channel utilization become curves
// rather than single end-of-run numbers.
//
// Like the registry, null is off: producers hold a `TimeSeriesSet*` that
// may be null and pay a single pointer test when sampling is disabled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace sgxpl::obs {

class JsonWriter;

struct Sample {
  Cycles at = 0;
  double value = 0.0;
};

class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void add(Cycles at, double value) { samples_.push_back({at, value}); }

  const std::string& name() const noexcept { return name_; }
  const std::vector<Sample>& samples() const noexcept { return samples_; }
  bool empty() const noexcept { return samples_.empty(); }
  void clear() { samples_.clear(); }

  /// Mean of the sample values (0 when empty).
  double mean() const noexcept;
  /// Largest sample value (0 when empty).
  double max() const noexcept;

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

/// Named collection of series. Series are created on first use; returned
/// references are stable for the life of the set.
class TimeSeriesSet {
 public:
  TimeSeriesSet() = default;
  TimeSeriesSet(const TimeSeriesSet&) = delete;
  TimeSeriesSet& operator=(const TimeSeriesSet&) = delete;

  TimeSeries& series(std::string_view name);
  const TimeSeries* find(std::string_view name) const;

  void for_each(const std::function<void(const TimeSeries&)>& fn) const;
  std::size_t size() const noexcept { return series_.size(); }
  void clear();

  /// {"series":{name:[{"t":...,"v":...},...]}}
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

  /// CSV with one row per sample: series,t,value.
  std::string to_csv() const;

 private:
  std::map<std::string, std::unique_ptr<TimeSeries>, std::less<>> series_;
};

}  // namespace sgxpl::obs
