// Windowed time-series sampling: the "plottable" complement to the
// end-of-run registry. Producers append (virtual-time, value) samples on a
// fixed cadence — the driver samples on its service-thread scan tick — so
// DFP-stop dynamics, EPC occupancy, and channel utilization become curves
// rather than single end-of-run numbers.
//
// Like the registry, null is off: producers hold a `TimeSeriesSet*` that
// may be null and pay a single pointer test when sampling is disabled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace sgxpl::obs {

class JsonWriter;

struct Sample {
  Cycles at = 0;
  double value = 0.0;
};

class TimeSeries {
 public:
  /// Default per-series sample cap. When a series fills, it compacts to
  /// half by keeping every other retained sample and doubles its stride —
  /// long runs keep bounded memory at progressively coarser resolution.
  static constexpr std::size_t kDefaultSampleCap = 65536;

  explicit TimeSeries(std::string name, std::size_t sample_cap = kDefaultSampleCap)
      : name_(std::move(name)), cap_(sample_cap < 2 ? 2 : sample_cap) {}

  void add(Cycles at, double value) {
    // Stride-doubling downsample: record every stride_-th offered sample.
    // stride_ is always a power of two, so the modulo is a mask.
    if ((seen_++ & (stride_ - 1)) != 0) {
      return;
    }
    samples_.push_back({at, value});
    if (samples_.size() >= cap_) {
      compact();
    }
  }

  const std::string& name() const noexcept { return name_; }
  const std::vector<Sample>& samples() const noexcept { return samples_; }
  bool empty() const noexcept { return samples_.empty(); }
  void clear() {
    samples_.clear();
    seen_ = 0;
    stride_ = 1;
  }

  /// Total samples offered via add(), including downsampled-away ones.
  std::uint64_t seen() const noexcept { return seen_; }
  /// Current downsampling stride (1 until the cap is first hit).
  std::uint64_t stride() const noexcept { return stride_; }
  std::size_t sample_cap() const noexcept { return cap_; }
  /// Tighten (or relax) the cap; compacts immediately if already over.
  void set_sample_cap(std::size_t cap);

  /// Mean of the sample values (0 when empty).
  double mean() const noexcept;
  /// Largest sample value (0 when empty).
  double max() const noexcept;

 private:
  void compact();

  std::string name_;
  std::size_t cap_;
  std::uint64_t seen_ = 0;
  std::uint64_t stride_ = 1;
  std::vector<Sample> samples_;
};

/// Named collection of series. Series are created on first use; returned
/// references are stable for the life of the set.
class TimeSeriesSet {
 public:
  TimeSeriesSet() = default;
  TimeSeriesSet(const TimeSeriesSet&) = delete;
  TimeSeriesSet& operator=(const TimeSeriesSet&) = delete;

  TimeSeries& series(std::string_view name);
  const TimeSeries* find(std::string_view name) const;

  /// Per-series sample cap applied to existing series now and to series
  /// created later (10k-tenant runs drop this well below the default).
  void set_sample_cap(std::size_t cap);
  std::size_t sample_cap() const noexcept { return sample_cap_; }

  void for_each(const std::function<void(const TimeSeries&)>& fn) const;
  std::size_t size() const noexcept { return series_.size(); }
  void clear();

  /// {"series":{name:[{"t":...,"v":...},...]}}
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

  /// CSV with one row per sample: series,t,value.
  std::string to_csv() const;

 private:
  std::size_t sample_cap_ = TimeSeries::kDefaultSampleCap;
  std::map<std::string, std::unique_ptr<TimeSeries>, std::less<>> series_;
};

}  // namespace sgxpl::obs
