// Chrome trace-event / Perfetto export: converts the driver's EventLog
// (and, optionally, TimeSeries samples as counter tracks) into the JSON
// Trace Event Format that chrome://tracing and https://ui.perfetto.dev
// load directly.
//
// Layout: one *process* per enclave (pid), one *thread track* per
// subsystem (EventTrack: app, fault handler, paging channel, service
// thread, SIP). Channel loads and app fault-stall windows are emitted as
// complete ("X") duration slices; everything else is an instant ("i").
// Timestamps are virtual cycles written into the `ts` microsecond field —
// absolute units do not matter for inspection, relative spans do.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/profiler.h"
#include "obs/time_series.h"

namespace sgxpl::obs {

class TraceExporter {
 public:
  /// Append every retained event of `log` as trace slices under process
  /// `pid` (`process_name` labels it in the UI; one pid per enclave in
  /// multi-enclave runs).
  void add_events(const EventLog& log, std::uint32_t pid = 0,
                  const std::string& process_name = "enclave");

  /// Append each series of `set` as a counter ("C") track under `pid`.
  void add_time_series(const TimeSeriesSet& set, std::uint32_t pid = 0);

  /// Append a merged phase profile as a flame-graph of "X" slices on a
  /// dedicated "phase-profile" thread track under `pid`. Durations are the
  /// aggregated wall-clock nanoseconds per node; timestamps are a synthetic
  /// sequential layout (the profile is an aggregate, not a timeline), so
  /// the track reads as a flame graph of where time went.
  void add_profile(const PhaseProfile& profile, std::uint32_t pid = 0);

  /// Number of trace events accumulated so far (excluding metadata).
  std::size_t size() const noexcept;

  /// Full trace document: {"traceEvents":[...],"displayTimeUnit":"ns",...}.
  std::string to_json() const;

  /// Serialize to `path`; returns false and fills `err` on I/O failure.
  bool write(const std::string& path, std::string* err = nullptr) const;

 private:
  struct ProcessEvents {
    std::uint32_t pid = 0;
    std::string name;
    std::vector<Event> events;
  };
  struct CounterTrack {
    std::uint32_t pid = 0;
    std::string name;
    std::vector<Sample> samples;
  };
  struct ProfileTrack {
    std::uint32_t pid = 0;
    PhaseProfile profile;
  };

  std::vector<ProcessEvents> processes_;
  std::vector<CounterTrack> counters_;
  std::vector<ProfileTrack> profiles_;
};

}  // namespace sgxpl::obs
