#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "obs/json.h"

namespace sgxpl::obs {

const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::kStep:
      return "step";
    case Phase::kFault:
      return "fault";
    case Phase::kPageTableLookup:
      return "page_table_lookup";
    case Phase::kBitmapCheck:
      return "bitmap_check";
    case Phase::kPredictorUpdate:
      return "predictor_update";
    case Phase::kPreloadIssue:
      return "preload_issue";
    case Phase::kChannelService:
      return "channel_service";
    case Phase::kRetrySweep:
      return "retry_sweep";
    case Phase::kEviction:
      return "eviction";
    case Phase::kScan:
      return "scan";
    case Phase::kDfpScan:
      return "dfp_scan";
    case Phase::kSipCheck:
      return "sip_check";
    case Phase::kSipLoad:
      return "sip_load";
    case Phase::kSipPrefetch:
      return "sip_prefetch";
    case Phase::kSipCompile:
      return "sip_compile";
    case Phase::kSnapshotSave:
      return "snapshot_save";
    case Phase::kSnapshotLoad:
      return "snapshot_load";
    case Phase::kElasticRebalance:
      return "elastic_rebalance";
    case Phase::kFleetRecover:
      return "fleet_recover";
    case Phase::kFleetEvacuate:
      return "fleet_evacuate";
  }
  return "?";
}

std::optional<Phase> parse_phase(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Phase p = static_cast<Phase>(i);
    if (name == to_string(p)) {
      return p;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// PhaseProfile
// ---------------------------------------------------------------------------

PhaseProfile::Node& PhaseProfile::Node::child(Phase p) {
  auto it = std::lower_bound(children.begin(), children.end(), p,
                             [](const Node& n, Phase target) {
                               return n.phase < target;
                             });
  if (it == children.end() || it->phase != p) {
    Node fresh;
    fresh.phase = p;
    it = children.insert(it, std::move(fresh));
  }
  return *it;
}

const PhaseProfile::Node* PhaseProfile::Node::find_child(
    Phase p) const noexcept {
  for (const Node& c : children) {
    if (c.phase == p) {
      return &c;
    }
  }
  return nullptr;
}

namespace {

std::uint64_t count_nodes(const std::vector<PhaseProfile::Node>& nodes) {
  std::uint64_t n = 0;
  for (const auto& node : nodes) {
    n += 1 + count_nodes(node.children);
  }
  return n;
}

PhaseProfile::Node& root_for(std::vector<PhaseProfile::Node>& roots, Phase p) {
  auto it = std::lower_bound(roots.begin(), roots.end(), p,
                             [](const PhaseProfile::Node& n, Phase target) {
                               return n.phase < target;
                             });
  if (it == roots.end() || it->phase != p) {
    PhaseProfile::Node fresh;
    fresh.phase = p;
    it = roots.insert(it, std::move(fresh));
  }
  return *it;
}

void merge_node(PhaseProfile::Node& into, const PhaseProfile::Node& from) {
  into.count += from.count;
  into.wall_ns += from.wall_ns;
  into.sim_cycles += from.sim_cycles;
  for (const auto& c : from.children) {
    merge_node(into.child(c.phase), c);
  }
}

void write_node(JsonWriter& w, const PhaseProfile::Node& n) {
  w.begin_object();
  w.kv("phase", to_string(n.phase))
      .kv("count", n.count)
      .kv("wall_ns", n.wall_ns)
      .kv("cycles", n.sim_cycles);
  w.key("children").begin_array();
  for (const auto& c : n.children) {
    write_node(w, c);
  }
  w.end_array();
  w.end_object();
}

void describe_node(std::ostringstream& oss, const PhaseProfile::Node& n,
                   int depth) {
  for (int i = 0; i < depth; ++i) {
    oss << "  ";
  }
  oss << to_string(n.phase) << ": count=" << n.count
      << " wall_ns=" << n.wall_ns << " cycles=" << n.sim_cycles << '\n';
  for (const auto& c : n.children) {
    describe_node(oss, c, depth + 1);
  }
}

/// Minimal recursive-descent reader for exactly the document to_json
/// emits (the repo deliberately carries no general JSON dependency; the
/// round-trip test and bench_gate consume this format).
class ProfileReader {
 public:
  explicit ProfileReader(std::string_view s) : s_(s) {}

  bool parse(PhaseProfile& out) {
    if (!eat('{')) {
      return fail("expected '{'");
    }
    bool saw_schema = false;
    bool saw_phases = false;
    for (;;) {
      std::string key;
      if (!string_value(key)) {
        return fail("expected object key");
      }
      if (!eat(':')) {
        return fail("expected ':'");
      }
      if (key == "schema") {
        std::string schema;
        if (!string_value(schema)) {
          return fail("schema must be a string");
        }
        if (schema != PhaseProfile::kSchema) {
          err_ = "unsupported schema '" + schema + "'";
          return false;
        }
        saw_schema = true;
      } else if (key == "phases") {
        if (!node_array(out.roots)) {
          return false;
        }
        saw_phases = true;
      } else {
        return fail("unknown key '" + key + "'");
      }
      if (eat(',')) {
        continue;
      }
      break;
    }
    if (!eat('}')) {
      return fail("expected '}'");
    }
    skip_ws();
    if (pos_ != s_.size()) {
      return fail("trailing characters after document");
    }
    if (!saw_schema || !saw_phases) {
      return fail("document lacks schema/phases");
    }
    return true;
  }

  const std::string& error() const noexcept { return err_; }

 private:
  bool fail(const std::string& what) {
    if (err_.empty()) {
      err_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool string_value(std::string& out) {
    if (!eat('"')) {
      return false;
    }
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) {
          return false;
        }
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          case '"':
          case '\\':
          case '/':
            c = esc;
            break;
          default:
            return false;  // \uXXXX etc. never appear in phase names
        }
      }
      out.push_back(c);
    }
    return eat('"');
  }

  bool u64_value(std::uint64_t& out) {
    skip_ws();
    const std::size_t start = pos_;
    std::uint64_t v = 0;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
      v = v * 10 + static_cast<std::uint64_t>(s_[pos_] - '0');
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out = v;
    return true;
  }

  bool node_array(std::vector<PhaseProfile::Node>& out) {
    if (!eat('[')) {
      return fail("expected '['");
    }
    out.clear();
    if (eat(']')) {
      return true;
    }
    for (;;) {
      PhaseProfile::Node n;
      if (!node_object(n)) {
        return false;
      }
      out.push_back(std::move(n));
      if (eat(',')) {
        continue;
      }
      break;
    }
    if (!eat(']')) {
      return fail("expected ']'");
    }
    return true;
  }

  bool node_object(PhaseProfile::Node& n) {
    if (!eat('{')) {
      return fail("expected node object");
    }
    for (;;) {
      std::string key;
      if (!string_value(key)) {
        return fail("expected node key");
      }
      if (!eat(':')) {
        return fail("expected ':'");
      }
      if (key == "phase") {
        std::string name;
        if (!string_value(name)) {
          return fail("phase must be a string");
        }
        const auto p = parse_phase(name);
        if (!p.has_value()) {
          err_ = "unknown phase '" + name + "'";
          return false;
        }
        n.phase = *p;
      } else if (key == "count") {
        if (!u64_value(n.count)) {
          return fail("count must be an unsigned integer");
        }
      } else if (key == "wall_ns") {
        if (!u64_value(n.wall_ns)) {
          return fail("wall_ns must be an unsigned integer");
        }
      } else if (key == "cycles") {
        if (!u64_value(n.sim_cycles)) {
          return fail("cycles must be an unsigned integer");
        }
      } else if (key == "children") {
        if (!node_array(n.children)) {
          return false;
        }
      } else {
        return fail("unknown node key '" + key + "'");
      }
      if (eat(',')) {
        continue;
      }
      break;
    }
    if (!eat('}')) {
      return fail("unterminated node object");
    }
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace

std::uint64_t PhaseProfile::node_count() const noexcept {
  return count_nodes(roots);
}

void PhaseProfile::merge(const PhaseProfile& other) {
  for (const auto& r : other.roots) {
    merge_node(root_for(roots, r.phase), r);
  }
}

const PhaseProfile::Node* PhaseProfile::find(
    std::initializer_list<Phase> path) const noexcept {
  const Node* cur = nullptr;
  const std::vector<Node>* level = &roots;
  for (const Phase p : path) {
    cur = nullptr;
    for (const Node& n : *level) {
      if (n.phase == p) {
        cur = &n;
        break;
      }
    }
    if (cur == nullptr) {
      return nullptr;
    }
    level = &cur->children;
  }
  return cur;
}

void PhaseProfile::write_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("schema", kSchema);
  w.key("phases").begin_array();
  for (const auto& r : roots) {
    write_node(w, r);
  }
  w.end_array();
  w.end_object();
}

std::string PhaseProfile::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.take();
}

std::optional<PhaseProfile> PhaseProfile::parse(std::string_view json,
                                                std::string* err) {
  PhaseProfile out;
  ProfileReader reader(json);
  if (!reader.parse(out)) {
    if (err != nullptr) {
      *err = reader.error();
    }
    return std::nullopt;
  }
  return out;
}

std::string PhaseProfile::describe() const {
  std::ostringstream oss;
  for (const auto& r : roots) {
    describe_node(oss, r, 0);
  }
  return oss.str();
}

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_next_profiler_id{1};
}  // namespace

Profiler::Profiler()
    : instance_id_(g_next_profiler_id.fetch_add(1, std::memory_order_relaxed)) {
}

Profiler::ThreadState& Profiler::thread_state() {
  thread_local struct {
    std::uint64_t owner = 0;
    ThreadState* state = nullptr;
  } cache;
  if (cache.owner == instance_id_) {
    return *cache.state;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto tid = std::this_thread::get_id();
  for (const auto& s : states_) {
    if (s->tid == tid) {
      cache.owner = instance_id_;
      cache.state = s.get();
      return *s;
    }
  }
  states_.push_back(std::make_unique<ThreadState>());
  states_.back()->tid = tid;
  cache.owner = instance_id_;
  cache.state = states_.back().get();
  return *states_.back();
}

std::uint32_t Profiler::begin(Phase p) {
  ThreadState& ts = thread_state();
  // Find the child of the current span for `p` on its sibling list.
  std::int32_t idx = ts.current >= 0
                         ? ts.nodes[static_cast<std::size_t>(ts.current)]
                               .first_child
                         : (ts.nodes.empty() ? -1 : 0);
  std::int32_t last = -1;
  if (ts.current < 0) {
    // Root level: siblings are the chain starting at node 0 with parent -1.
    while (idx >= 0) {
      NodeSlot& n = ts.nodes[static_cast<std::size_t>(idx)];
      if (n.parent == -1 && n.phase == p) {
        ts.current = idx;
        return static_cast<std::uint32_t>(idx);
      }
      if (n.parent == -1) {
        last = idx;
      }
      idx = n.next_sibling;
    }
    // No root chain or not found: fall through to allocation. Root nodes
    // chain through next_sibling starting from the first root allocated.
  } else {
    while (idx >= 0) {
      NodeSlot& n = ts.nodes[static_cast<std::size_t>(idx)];
      if (n.phase == p) {
        ts.current = idx;
        return static_cast<std::uint32_t>(idx);
      }
      last = idx;
      idx = n.next_sibling;
    }
  }
  const auto fresh = static_cast<std::int32_t>(ts.nodes.size());
  ts.nodes.push_back(NodeSlot{.phase = p, .parent = ts.current});
  if (last >= 0) {
    ts.nodes[static_cast<std::size_t>(last)].next_sibling = fresh;
  } else if (ts.current >= 0) {
    ts.nodes[static_cast<std::size_t>(ts.current)].first_child = fresh;
  }
  ts.current = fresh;
  return static_cast<std::uint32_t>(fresh);
}

void Profiler::end(std::uint32_t slot, std::uint64_t wall_ns,
                   Cycles cycles) noexcept {
  ThreadState& ts = thread_state();
  NodeSlot& n = ts.nodes[slot];
  n.count += 1;
  n.wall_ns += wall_ns;
  n.sim_cycles += cycles;
  ts.current = n.parent;
}

PhaseProfile Profiler::profile() const {
  PhaseProfile out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : states_) {
    // Recover each thread's tree from the flat arena. Addition into the
    // phase-sorted PhaseProfile is commutative, so the merged result does
    // not depend on thread registration order.
    for (std::size_t i = 0; i < s->nodes.size(); ++i) {
      const NodeSlot& n = s->nodes[i];
      if (n.count == 0 && n.wall_ns == 0 && n.sim_cycles == 0) {
        continue;  // span opened but never completed (still on the stack)
      }
      // Build the phase path up to the root, then walk it down the output.
      Phase path[64];
      std::size_t depth = 0;
      std::int32_t at = static_cast<std::int32_t>(i);
      while (at >= 0 && depth < 64) {
        path[depth++] = s->nodes[static_cast<std::size_t>(at)].phase;
        at = s->nodes[static_cast<std::size_t>(at)].parent;
      }
      PhaseProfile::Node* node = &root_for(out.roots, path[depth - 1]);
      for (std::size_t d = depth - 1; d > 0; --d) {
        node = &node->child(path[d - 1]);
      }
      node->count += n.count;
      node->wall_ns += n.wall_ns;
      node->sim_cycles += n.sim_cycles;
    }
  }
  return out;
}

std::size_t Profiler::node_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& s : states_) {
    n += s->nodes.size();
  }
  return n;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : states_) {
    s->nodes.clear();
    s->current = -1;
  }
}

}  // namespace sgxpl::obs
