#include "obs/time_series.h"

#include <algorithm>
#include <sstream>

#include "obs/json.h"

namespace sgxpl::obs {

void TimeSeries::compact() {
  // Keep every other retained sample. Retained offered-indices are the
  // multiples of stride_, so after this the survivors are exactly the
  // multiples of the doubled stride — consistent with future add() calls.
  std::size_t out = 0;
  for (std::size_t i = 0; i < samples_.size(); i += 2) {
    samples_[out++] = samples_[i];
  }
  samples_.resize(out);
  stride_ <<= 1;
}

void TimeSeries::set_sample_cap(std::size_t cap) {
  cap_ = cap < 2 ? 2 : cap;
  while (samples_.size() >= cap_) {
    compact();
  }
}

double TimeSeries::mean() const noexcept {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const auto& s : samples_) {
    sum += s.value;
  }
  return sum / static_cast<double>(samples_.size());
}

double TimeSeries::max() const noexcept {
  double m = 0.0;
  for (const auto& s : samples_) {
    m = std::max(m, s.value);
  }
  return m;
}

TimeSeries& TimeSeriesSet::series(std::string_view name) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_
             .emplace(std::string(name), std::make_unique<TimeSeries>(
                                             std::string(name), sample_cap_))
             .first;
  }
  return *it->second;
}

void TimeSeriesSet::set_sample_cap(std::size_t cap) {
  sample_cap_ = cap < 2 ? 2 : cap;
  for (const auto& [name, s] : series_) {
    s->set_sample_cap(sample_cap_);
  }
}

const TimeSeries* TimeSeriesSet::find(std::string_view name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

void TimeSeriesSet::for_each(
    const std::function<void(const TimeSeries&)>& fn) const {
  for (const auto& [name, s] : series_) {
    fn(*s);
  }
}

void TimeSeriesSet::clear() { series_.clear(); }

void TimeSeriesSet::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("series").begin_object();
  for (const auto& [name, s] : series_) {
    w.key(name).begin_array();
    for (const auto& sample : s->samples()) {
      w.begin_object()
          .kv("t", sample.at)
          .kv("v", sample.value)
          .end_object();
    }
    w.end_array();
  }
  w.end_object();
  w.end_object();
}

std::string TimeSeriesSet::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.take();
}

std::string TimeSeriesSet::to_csv() const {
  std::ostringstream oss;
  oss << "series,t,value\n";
  for (const auto& [name, s] : series_) {
    for (const auto& sample : s->samples()) {
      oss << name << ',' << sample.at << ',' << json_number(sample.value)
          << '\n';
    }
  }
  return oss.str();
}

}  // namespace sgxpl::obs
