#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "obs/json.h"

namespace sgxpl::obs {

// --- Histogram bucket layout -------------------------------------------
//
// Buckets 0..3 are exact (value == index). From 4 on, each power-of-two
// octave [2^o, 2^(o+1)) is split into 4 equal sub-buckets of width
// 2^(o-2), so a bucket's relative width is 25% and the quantile
// interpolation error is bounded by ~12.5%.

std::size_t Histogram::bucket_index(std::uint64_t v) noexcept {
  if (v < 4) {
    return static_cast<std::size_t>(v);
  }
  const unsigned o = static_cast<unsigned>(std::bit_width(v)) - 1;  // >= 2
  const std::uint64_t sub = (v >> (o - 2)) & 3;
  return 4 + (static_cast<std::size_t>(o) - 2) * 4 +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_lower_bound(std::size_t i) noexcept {
  if (i < 4) {
    return i;
  }
  const unsigned o = 2 + static_cast<unsigned>((i - 4) / 4);
  const std::uint64_t sub = (i - 4) % 4;
  return (std::uint64_t{1} << o) + sub * (std::uint64_t{1} << (o - 2));
}

namespace {

std::uint64_t bucket_width(std::size_t i) noexcept {
  if (i < 4) {
    return 1;
  }
  const unsigned o = 2 + static_cast<unsigned>((i - 4) / 4);
  return std::uint64_t{1} << (o - 2);
}

}  // namespace

Histogram::Histogram() : buckets_(HistogramSnapshot::kBuckets) {}

void Histogram::record(std::uint64_t v) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count == 0) {
    return s;
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.buckets.resize(HistogramSnapshot::kBuckets);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::mean() const noexcept {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0 || buckets.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    cum += buckets[i];
    if (static_cast<double>(cum) >= target) {
      const double in_bucket =
          target - static_cast<double>(cum - buckets[i]);
      const double frac =
          std::clamp(in_bucket / static_cast<double>(buckets[i]), 0.0, 1.0);
      const double v = static_cast<double>(Histogram::bucket_lower_bound(i)) +
                       frac * static_cast<double>(bucket_width(i));
      return std::clamp(v, static_cast<double>(min),
                        static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) {
    return;
  }
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

std::string HistogramSnapshot::describe() const {
  std::ostringstream oss;
  oss << "count=" << count << " mean=" << mean() << " p50=" << p50()
      << " p90=" << p90() << " p99=" << p99() << " max=" << max;
  return oss.str();
}

namespace {

template <typename Map>
auto& find_or_create(Map& map, std::string_view name, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return find_or_create(counters_, name, mu_);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return find_or_create(gauges_, name, mu_);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return find_or_create(histograms_, name, mu_);
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) {
    w.kv(name, c->value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) {
    w.kv(name, g->value());
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    const auto s = h->snapshot();
    w.key(name).begin_object();
    w.kv("count", s.count)
        .kv("sum", s.sum)
        .kv("min", s.count == 0 ? 0 : s.min)
        .kv("max", s.max)
        .kv("mean", s.mean())
        .kv("p50", s.p50())
        .kv("p90", s.p90())
        .kv("p99", s.p99());
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.take();
}

std::string MetricsRegistry::describe() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream oss;
  for (const auto& [name, c] : counters_) {
    oss << name << " = " << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    oss << name << " = " << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    oss << name << ": " << h->snapshot().describe() << '\n';
  }
  return oss.str();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace sgxpl::obs
