// Minimal streaming JSON writer for the observability layer: bench result
// documents, metrics-registry dumps, and Chrome/Perfetto trace export all
// emit through this so escaping and number formatting are uniform. No
// external dependency; writes into a std::string.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sgxpl::obs {

/// Escape `s` as the *contents* of a JSON string (no surrounding quotes).
std::string json_escape(std::string_view s);

/// Format a double the way JSON expects: finite shortest-ish round-trip
/// representation; NaN/inf degrade to 0 (JSON has no encoding for them).
std::string json_number(double v);

/// Streaming writer. Scopes are explicit: begin_object/end_object,
/// begin_array/end_array; `key()` names the next value inside an object.
/// Commas are inserted automatically. The writer does not validate that
/// keys/values alternate correctly — callers are trusted (and the tests
/// parse the output back).
class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Name the next value (must be inside an object).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Shorthand: key + value.
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  const std::string& str() const noexcept { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  /// One entry per open scope: true once the first element was written.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// Write `text` to `path`; returns false (and leaves a message in `err` if
/// non-null) on failure instead of throwing — CLI callers report and exit.
bool write_file(const std::string& path, std::string_view text,
                std::string* err = nullptr);

}  // namespace sgxpl::obs
