#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace sgxpl::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": was just written; no comma before the value
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) {
      out_ += ',';
    }
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

bool write_file(const std::string& path, std::string_view text,
                std::string* err) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    if (err != nullptr) {
      *err = "cannot open '" + path + "' for writing";
    }
    return false;
  }
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!f) {
    if (err != nullptr) {
      *err = "short write to '" + path + "'";
    }
    return false;
  }
  return true;
}

}  // namespace sgxpl::obs
