#include "obs/trace_export.h"

#include <unordered_map>

#include "obs/json.h"

namespace sgxpl::obs {

namespace {

/// Stable thread ids, one per subsystem track (tid 0 is reserved).
std::uint32_t tid_of(EventTrack t) noexcept {
  return static_cast<std::uint32_t>(t) + 1;
}

/// Dedicated track for the aggregated phase-profile flame graph (the
/// EventTrack tracks occupy tids 1..6).
constexpr std::uint32_t kProfileTid = 7;

constexpr EventTrack kAllTracks[] = {
    EventTrack::kApp,           EventTrack::kFaultHandler,
    EventTrack::kChannel,       EventTrack::kServiceThread,
    EventTrack::kSip,           EventTrack::kChaos};

void write_common(JsonWriter& w, const char* name, const char* ph, Cycles ts,
                  std::uint32_t pid, std::uint32_t tid) {
  w.kv("name", name)
      .kv("ph", ph)
      .kv("ts", static_cast<std::uint64_t>(ts))
      .kv("pid", static_cast<std::uint64_t>(pid))
      .kv("tid", static_cast<std::uint64_t>(tid));
}

void write_metadata(JsonWriter& w, std::uint32_t pid, std::uint32_t tid,
                    const char* what, const std::string& value) {
  w.begin_object();
  write_common(w, what, "M", 0, pid, tid);
  w.key("args").begin_object().kv("name", value).end_object();
  w.end_object();
}

void write_instant(JsonWriter& w, const Event& e, std::uint32_t pid) {
  w.begin_object();
  write_common(w, to_string(e.type), "i", e.at, pid, tid_of(track_of(e.type)));
  w.kv("s", "t");  // thread-scoped instant
  w.key("args").begin_object();
  if (e.type == EventType::kLoadsAborted) {
    w.kv("count", static_cast<std::uint64_t>(e.page));
  } else if (e.page != kInvalidPage) {
    w.kv("page", static_cast<std::uint64_t>(e.page));
  }
  if (e.detail != nullptr && e.detail[0] != '\0') {
    w.kv("detail", e.detail);
  }
  w.end_object();
  w.end_object();
}

void write_slice(JsonWriter& w, const char* name, Cycles start, Cycles end,
                 std::uint32_t pid, EventTrack track, PageNum page,
                 const char* detail) {
  w.begin_object();
  write_common(w, name, "X", start, pid, tid_of(track));
  w.kv("dur", static_cast<std::uint64_t>(end > start ? end - start : 0));
  w.key("args").begin_object();
  if (page != kInvalidPage) {
    w.kv("page", static_cast<std::uint64_t>(page));
  }
  if (detail != nullptr && detail[0] != '\0') {
    w.kv("detail", detail);
  }
  w.end_object();
  w.end_object();
}

void write_process(JsonWriter& w, std::uint32_t pid, const std::string& pname,
                   const std::vector<Event>& events) {
  write_metadata(w, pid, 0, "process_name", pname);
  for (const EventTrack t : kAllTracks) {
    write_metadata(w, pid, tid_of(t), "thread_name", to_string(t));
  }

  // First pass pairs each fault with its resume (same page, in order) so
  // the app track shows the stall window as one slice.
  std::unordered_map<PageNum, Cycles> open_faults;
  for (const Event& e : events) {
    switch (e.type) {
      case EventType::kFault:
        open_faults[e.page] = e.at;
        write_instant(w, e, pid);
        break;
      case EventType::kResume: {
        const auto it = open_faults.find(e.page);
        if (it != open_faults.end()) {
          write_slice(w, "fault-stall", it->second, e.at, pid,
                      EventTrack::kApp, e.page, "");
          open_faults.erase(it);
        }
        write_instant(w, e, pid);
        break;
      }
      case EventType::kLoadScheduled:
        // aux carries the op's end time: render channel occupancy.
        write_slice(w, "load", e.at, e.aux, pid, EventTrack::kChannel, e.page,
                    e.detail);
        break;
      default:
        write_instant(w, e, pid);
        break;
    }
  }
}

/// Lay the aggregate tree out as nested "X" slices starting at `ts`.
/// A parent's duration must contain its children, so it is the larger of
/// its own aggregated wall time and the sum of its children's laid-out
/// durations. Returns the duration used. ts here is *nanoseconds* of
/// aggregated wall time, not virtual cycles — the track is a flame graph.
std::uint64_t laid_out_dur(const PhaseProfile::Node& n) {
  std::uint64_t child_total = 0;
  for (const auto& c : n.children) {
    child_total += laid_out_dur(c);
  }
  const std::uint64_t own = n.wall_ns < 1 ? 1 : n.wall_ns;
  return own < child_total ? child_total : own;
}

std::uint64_t write_profile_node(JsonWriter& w, const PhaseProfile::Node& n,
                                 std::uint64_t ts, std::uint32_t pid) {
  const std::uint64_t dur = laid_out_dur(n);
  w.begin_object();
  write_common(w, to_string(n.phase), "X", static_cast<Cycles>(ts), pid,
               kProfileTid);
  w.kv("dur", dur);
  w.key("args")
      .begin_object()
      .kv("count", n.count)
      .kv("wall_ns", n.wall_ns)
      .kv("cycles", n.sim_cycles)
      .end_object();
  w.end_object();
  std::uint64_t cursor = ts;
  for (const auto& c : n.children) {
    cursor += write_profile_node(w, c, cursor, pid);
  }
  return dur;
}

std::uint64_t count_profile_nodes(const std::vector<PhaseProfile::Node>& v) {
  std::uint64_t n = 0;
  for (const auto& node : v) {
    n += 1 + count_profile_nodes(node.children);
  }
  return n;
}

}  // namespace

void TraceExporter::add_events(const EventLog& log, std::uint32_t pid,
                               const std::string& process_name) {
  ProcessEvents p;
  p.pid = pid;
  p.name = process_name;
  p.events = log.events();
  processes_.push_back(std::move(p));
}

void TraceExporter::add_time_series(const TimeSeriesSet& set,
                                    std::uint32_t pid) {
  set.for_each([this, pid](const TimeSeries& s) {
    counters_.push_back(CounterTrack{pid, s.name(), s.samples()});
  });
}

void TraceExporter::add_profile(const PhaseProfile& profile,
                                std::uint32_t pid) {
  profiles_.push_back(ProfileTrack{pid, profile});
}

std::size_t TraceExporter::size() const noexcept {
  std::size_t n = 0;
  for (const auto& p : processes_) {
    n += p.events.size();
  }
  for (const auto& c : counters_) {
    n += c.samples.size();
  }
  for (const auto& p : profiles_) {
    n += count_profile_nodes(p.profile.roots);
  }
  return n;
}

std::string TraceExporter::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const auto& p : processes_) {
    write_process(w, p.pid, p.name, p.events);
  }
  for (const auto& c : counters_) {
    for (const auto& s : c.samples) {
      w.begin_object();
      write_common(w, c.name.c_str(), "C", s.at, c.pid, 0);
      w.key("args").begin_object().kv("value", s.value).end_object();
      w.end_object();
    }
  }
  for (const auto& p : profiles_) {
    write_metadata(w, p.pid, kProfileTid, "thread_name", "phase-profile");
    std::uint64_t cursor = 0;
    for (const auto& root : p.profile.roots) {
      cursor += write_profile_node(w, root, cursor, p.pid);
    }
  }
  w.end_array();
  w.kv("displayTimeUnit", "ns");
  w.key("otherData")
      .begin_object()
      .kv("generator", "sgxpl-obs")
      .kv("ts_unit", "cycles")
      .end_object();
  w.end_object();
  return w.take();
}

bool TraceExporter::write(const std::string& path, std::string* err) const {
  return write_file(path, to_json(), err);
}

}  // namespace sgxpl::obs
