// Hot-path cycle-attribution profiler: lightweight RAII scoped spans that
// attribute both host wall-clock nanoseconds and simulated cycles to a
// fixed hierarchy of phases (fault handling, page-table lookup, bitmap
// check, predictor update, preload issue, channel service, retry sweep,
// eviction, scans, the SIP pipeline stages, snapshot save/load).
//
// Like every other sink in this layer, *null is off*: producers hold an
// `obs::Profiler*` that may be null, and a ScopedSpan constructed from a
// null (or disabled) profiler does nothing beyond one pointer test — the
// fast paths pay nothing in performance runs. When enabled, spans nest via
// a per-thread span stack into a dynamic tree keyed by the *actual* runtime
// nesting (a channel-service span under a fault looks different from one
// under a plain clock advance), and `profile()` merges the per-thread trees
// into a deterministic PhaseProfile.
//
// Two time domains per node:
//   - wall_ns     host steady-clock nanoseconds (machine-dependent; never
//                 gated by the perf trajectory)
//   - sim_cycles  simulated cycles attributed via ScopedSpan::add_cycles
//                 (deterministic: same code + seed = identical numbers)
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/types.h"

namespace sgxpl::obs {

class JsonWriter;

/// The fixed phase vocabulary. Each instrumentation site picks one; the
/// hierarchy is whatever nesting the call stack produces at runtime.
enum class Phase : std::uint8_t {
  kStep,             // one simulator step (trace access end-to-end)
  kFault,            // driver fault handling (AEX .. ERESUME)
  kPageTableLookup,  // resident fast path: present/touch/eviction touch
  kBitmapCheck,      // SIP BIT_MAP_CHECK
  kPredictorUpdate,  // DFP predictor update on a fault
  kPreloadIssue,     // submitting predicted preloads to the channel
  kChannelService,   // harvesting completed channel ops
  kRetrySweep,       // lost-completion retry sweep (hardened mode)
  kEviction,         // CLOCK victim selection + EWB bookkeeping
  kScan,             // service-thread scan tick
  kDfpScan,          // DFP engine's per-scan work (list scan, stop valve)
  kSipCheck,         // SIP check+notify block in the simulator step
  kSipLoad,          // synchronous SIP page_loadin
  kSipPrefetch,      // asynchronous (hoisted) SIP prefetch
  kSipCompile,       // SIP offline compile pipeline (train + plan)
  kSnapshotSave,     // checkpoint frame serialization + atomic write
  kSnapshotLoad,     // resume: restore a snapshot chain
  kElasticRebalance, // elastic EPC AIMD quota rebalance on the scan tick
  kFleetRecover,     // supervisor: salvage-restore + replay of a crashed host
  kFleetEvacuate,    // supervisor: tenant evacuation off a failing host
};

inline constexpr std::size_t kPhaseCount = 20;

const char* to_string(Phase p) noexcept;

/// Inverse of to_string (exact spelling); nullopt for unknown names.
std::optional<Phase> parse_phase(std::string_view name) noexcept;

/// Aggregated phase tree: plain data, mergeable, serializable. Children
/// are kept sorted by phase value so serialization is deterministic.
struct PhaseProfile {
  static constexpr const char* kSchema = "sgxpl-phase-profile/v1";

  struct Node {
    Phase phase = Phase::kStep;
    std::uint64_t count = 0;       // completed spans
    std::uint64_t wall_ns = 0;     // host steady-clock nanoseconds
    std::uint64_t sim_cycles = 0;  // simulated cycles (deterministic)
    std::vector<Node> children;

    /// Find-or-create the child for `p`, keeping children phase-sorted.
    Node& child(Phase p);
    const Node* find_child(Phase p) const noexcept;
  };

  std::vector<Node> roots;

  bool empty() const noexcept { return roots.empty(); }
  /// Total nodes in the tree.
  std::uint64_t node_count() const noexcept;
  /// Pointwise accumulate `other` into this profile.
  void merge(const PhaseProfile& other);
  /// Walk `path` from the roots; nullptr when any hop is missing.
  const Node* find(std::initializer_list<Phase> path) const noexcept;

  /// {"schema":"sgxpl-phase-profile/v1","phases":[{...}]} with each node
  /// as {"phase","count","wall_ns","cycles","children":[...]}.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;
  /// Inverse of to_json (also accepts the same object embedded mid-
  /// document if handed exactly that object's text). Returns nullopt and
  /// fills `err` (when non-null) on malformed input.
  static std::optional<PhaseProfile> parse(std::string_view json,
                                           std::string* err = nullptr);

  /// Indented human-readable dump (one node per line).
  std::string describe() const;
};

/// Span collector. Disabled (the default) it only answers enabled();
/// nothing is allocated until the first span of an *enabled* profiler.
/// Thread-safe: each thread records into its own span stack/arena,
/// registered under a mutex on first use; profile() merges the arenas.
class Profiler {
 public:
  Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void set_enabled(bool on) noexcept {
    enabled_ = on;
  }
  bool enabled() const noexcept { return enabled_; }

  /// Open a span for `p` nested under the calling thread's current span.
  /// Returns a handle for end()/the node index. Only call when enabled().
  std::uint32_t begin(Phase p);
  /// Close the span `slot` opened by begin(), attributing `wall_ns` and
  /// `cycles` to it. Spans close in LIFO order (RAII guarantees this).
  void end(std::uint32_t slot, std::uint64_t wall_ns, Cycles cycles) noexcept;

  /// Merged snapshot of every thread's tree (deterministic: addition is
  /// commutative and children are phase-sorted).
  PhaseProfile profile() const;
  /// Total tree nodes allocated across all threads (0 while disabled —
  /// the zero-allocation guarantee the tests pin down).
  std::size_t node_count() const;
  /// Drop all recorded spans (thread arenas stay registered).
  void reset();

 private:
  struct NodeSlot {
    Phase phase = Phase::kStep;
    std::int32_t parent = -1;
    std::int32_t first_child = -1;
    std::int32_t next_sibling = -1;
    std::uint64_t count = 0;
    std::uint64_t wall_ns = 0;
    std::uint64_t sim_cycles = 0;
  };
  struct ThreadState {
    std::thread::id tid;
    std::vector<NodeSlot> nodes;
    std::int32_t current = -1;  // innermost open span, -1 at top level
  };

  ThreadState& thread_state();

  bool enabled_ = false;
  /// Distinguishes this instance in the thread-local cache even after
  /// another Profiler is constructed at the same address.
  std::uint64_t instance_id_ = 0;
  mutable std::mutex mu_;  // guards states_ shape; each thread owns its state
  std::vector<std::unique_ptr<ThreadState>> states_;
};

/// RAII span: records nothing when `p` is null or disabled. Simulated
/// cycles are attributed explicitly (the simulator knows how far its
/// virtual clock moved); wall time is measured by the span itself.
class ScopedSpan {
 public:
  ScopedSpan(Profiler* p, Phase phase) noexcept {
    if (p != nullptr && p->enabled()) {
      prof_ = p;
      slot_ = p->begin(phase);
      start_ = std::chrono::steady_clock::now();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (prof_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      prof_->end(slot_, static_cast<std::uint64_t>(ns), cycles_);
    }
  }

  /// Attribute `c` simulated cycles to this span (accumulates; flushed at
  /// scope exit). Safe to call on a disabled span — it is a dead store.
  void add_cycles(Cycles c) noexcept { cycles_ += c; }

 private:
  Profiler* prof_ = nullptr;
  std::uint32_t slot_ = 0;
  Cycles cycles_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sgxpl::obs
