#include "obs/event_log.h"

#include <sstream>

namespace sgxpl::obs {

const char* to_string(EventType t) noexcept {
  switch (t) {
    case EventType::kFault:
      return "FAULT(AEX)";
    case EventType::kLoadScheduled:
      return "LOAD-SCHED";
    case EventType::kLoadCommitted:
      return "LOAD-DONE";
    case EventType::kLoadsAborted:
      return "ABORT";
    case EventType::kEviction:
      return "EVICT(EWB)";
    case EventType::kResume:
      return "ERESUME";
    case EventType::kSipRequest:
      return "SIP-NOTIFY";
    case EventType::kSipPrefetch:
      return "SIP-PREFETCH";
    case EventType::kScan:
      return "SCAN";
    case EventType::kChaos:
      return "CHAOS";
    case EventType::kWatchdog:
      return "WATCHDOG";
    case EventType::kAdmission:
      return "ADMIT";
    case EventType::kRetry:
      return "RETRY";
    case EventType::kDegrade:
      return "DEGRADE";
    case EventType::kFleet:
      return "FLEET";
  }
  return "?";
}

std::optional<EventType> parse_event_type(std::string_view name) noexcept {
  for (const EventType t :
       {EventType::kFault, EventType::kLoadScheduled, EventType::kLoadCommitted,
        EventType::kLoadsAborted, EventType::kEviction, EventType::kResume,
        EventType::kSipRequest, EventType::kSipPrefetch, EventType::kScan,
        EventType::kChaos, EventType::kWatchdog, EventType::kAdmission,
        EventType::kRetry, EventType::kDegrade, EventType::kFleet}) {
    if (name == to_string(t)) {
      return t;
    }
  }
  return std::nullopt;
}

const char* to_string(EventTrack t) noexcept {
  switch (t) {
    case EventTrack::kApp:
      return "app";
    case EventTrack::kFaultHandler:
      return "fault handler";
    case EventTrack::kChannel:
      return "paging channel";
    case EventTrack::kServiceThread:
      return "service thread";
    case EventTrack::kSip:
      return "sip";
    case EventTrack::kChaos:
      return "chaos";
  }
  return "?";
}

EventTrack track_of(EventType t) noexcept {
  switch (t) {
    case EventType::kFault:
    case EventType::kResume:
    case EventType::kLoadsAborted:
    case EventType::kEviction:
      return EventTrack::kFaultHandler;
    case EventType::kLoadScheduled:
    case EventType::kLoadCommitted:
    case EventType::kAdmission:
    case EventType::kRetry:
      return EventTrack::kChannel;
    case EventType::kScan:
      return EventTrack::kServiceThread;
    case EventType::kSipRequest:
    case EventType::kSipPrefetch:
      return EventTrack::kSip;
    case EventType::kChaos:
    case EventType::kWatchdog:
    case EventType::kDegrade:
    case EventType::kFleet:
      return EventTrack::kChaos;
  }
  return EventTrack::kFaultHandler;
}

std::string Event::describe() const {
  std::ostringstream oss;
  oss << "t=" << at << "  " << to_string(type);
  if (type == EventType::kLoadsAborted) {
    oss << "  count=" << page;
  } else if (page != kInvalidPage) {
    oss << "  page=" << page;
  }
  if (detail != nullptr && detail[0] != '\0') {
    oss << "  [" << detail << ']';
  }
  if (aux != 0) {
    oss << "  (until t=" << aux << ')';
  }
  return oss.str();
}

EventLog::EventLog(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

void EventLog::record(Event e) {
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (size_ < capacity_) {
    ring_.push_back(e);
    ++size_;
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head.
  ring_[head_] = e;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<Event> EventLog::events() const {
  std::vector<Event> out;
  out.reserve(size_);
  for_each([&out](const Event& e) { out.push_back(e); });
  return out;
}

void EventLog::for_each(const std::function<void(const Event&)>& fn) const {
  for (std::size_t i = 0; i < size_; ++i) {
    fn(ring_[(head_ + i) % capacity_]);
  }
}

void EventLog::clear() {
  ring_.clear();
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

std::string EventLog::render() const {
  std::ostringstream oss;
  if (dropped_ > 0) {
    oss << "  ... (" << dropped_ << " older events dropped)\n";
  }
  for_each([&oss](const Event& e) { oss << "  " << e.describe() << '\n'; });
  return oss.str();
}

}  // namespace sgxpl::obs
