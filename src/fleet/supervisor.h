// Self-healing fleet supervision (the service-mode control plane).
//
// A FleetSupervisor runs N simulated hosts — each a core::MultiEnclaveRun —
// as a persistent service in simulated time, and spends the robustness
// substrate the earlier layers built whenever something breaks:
//
//   - host fail-stop chaos (inject::HostChaos) kills a host at an
//     arbitrary step inside an epoch, optionally tearing the checkpoint
//     frame that was in flight;
//   - recovery salvages the longest valid prefix of the host's checkpoint
//     chain (snapshot::restore_chain_salvage) and replays the trace
//     deterministically up to the crash point, charging the incident's
//     RPO (work between the last durable checkpoint and the crash) and a
//     modeled RTO (restart + restore + replay cost, reported in cycles —
//     never injected into tenant clocks, so supervised runs stay
//     cycle-comparable to unsupervised ones);
//   - hosts that crash repeatedly are evacuated tenant-by-tenant through
//     fleet::MigrationController onto freshly spawned replacement hosts,
//     with capped+jittered retry backoff and a typed EvacuationOutcome;
//     a tenant is quarantined (parked, clock frozen) only after
//     max_evacuation_attempts, or immediately when its state cannot be
//     carved (snapshot::extract_resumable refusals);
//   - checkpoint cadence is driven by a CheckpointPolicy: fixed step
//     interval, dirty-byte budget (estimated from observed delta sizes),
//     or an RPO target in cycles.
//
// Everything is deterministic: same hosts + policies + chaos seed =>
// bit-identical incident history. Replay correctness rests on two rules
// the implementation enforces: (1) a barrier checkpoint (fresh full base)
// is taken immediately after every control-plane mutation that is not
// serialized into host frames (tenant retirement after a migration,
// quarantine pausing), and (2) quarantine pause flags are re-applied
// after every restore before any replay step. Host checkpoint frames stay
// byte-identical to unsupervised runs — supervisor bookkeeping lives in
// its own manifest frame, never inside host frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/multi_enclave.h"
#include "fleet/migration.h"
#include "inject/fleet_chaos.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/time_series.h"
#include "snapshot/chain.h"

namespace sgxpl::core {
class ShardPool;  // core/sharding.h (the step-phase worker pool)
}

namespace sgxpl::fleet {

/// Host lifecycle (see docs/ROBUSTNESS.md, "Fleet supervision & failover").
enum class HostState : std::uint8_t {
  kHealthy,     // running (or all tenants finished)
  kCrashed,     // fail-stop fired; volatile state gone, chain on disk
  kRecovering,  // salvage + replay in progress (transient within an epoch)
  kEvacuating,  // crash rate over threshold; tenants being migrated off
  kRetired,     // no runnable tenants remain; run torn down
};

const char* to_string(HostState s) noexcept;

/// What drives the distance between checkpoints.
enum class CheckpointMode : std::uint8_t {
  kFixed,        // every fixed_every steps
  kDirtyBudget,  // when estimated dirty bytes exceed dirty_byte_budget
  kRpoTarget,    // when the host clock is rpo_target_cycles past the last one
};

const char* to_string(CheckpointMode m) noexcept;

/// Checkpoint cadence policy. The soak sweeps these modes to show the
/// cadence/RPO tradeoff: tighter cadence costs checkpoint bytes, looser
/// cadence costs replayed work per crash.
struct CheckpointPolicy {
  CheckpointMode mode = CheckpointMode::kFixed;
  /// kFixed: steps between checkpoints.
  std::uint64_t fixed_every = 2048;
  /// kDirtyBudget: estimated-dirty-byte threshold. The estimate is the
  /// observed bytes-per-step rate of the host's previous frame (a full
  /// base seeds the rate), so it tracks each workload's real write rate.
  std::uint64_t dirty_byte_budget = 64 * 1024;
  /// kRpoTarget: max cycles of work at risk between checkpoints.
  std::uint64_t rpo_target_cycles = 4'000'000;
  /// Chain length bound handed to the Snapshotter (a full base every
  /// full_every checkpoints, deltas in between).
  std::uint64_t full_every = 8;

  /// Parse "fixed:2048[:full8]", "dirty:65536[:full8]" or
  /// "rpo:4000000[:full8]". Returns nullopt and fills `err` (when
  /// non-null) on malformed input.
  static std::optional<CheckpointPolicy> parse(const std::string& spec,
                                               std::string* err = nullptr);
  /// Canonical spec string (inverse of parse).
  std::string spec() const;
};

/// How one evacuation attempt resolved.
enum class EvacuationOutcome : std::uint8_t {
  kMoved,           // tenant live on a fresh replacement host
  kRetryScheduled,  // migration aborted; retry queued with backoff
  kQuarantined,     // attempts exhausted; tenant parked (clock frozen)
  kUncarvable,      // extract_resumable refused; quarantined immediately
};

const char* to_string(EvacuationOutcome o) noexcept;

/// Everything the supervisor is configured by. All defaults are
/// seed-identical: SupervisorPolicy{}.spec() is the empty string, and the
/// manifest's identity guard (RunMeta::hardening_spec) refuses to load
/// supervisor state across a policy change.
struct SupervisorPolicy {
  CheckpointPolicy checkpoint;
  /// Steps each host advances per supervision epoch.
  std::uint64_t epoch_steps = 256;
  /// Crashes within crash_window_epochs that flip a host to kEvacuating.
  std::uint64_t crash_threshold = 2;
  std::uint64_t crash_window_epochs = 64;
  /// Evacuation retry budget per tenant; then quarantine.
  std::uint64_t max_evacuation_attempts = 3;
  /// Retry backoff: base doubles per failed attempt, capped, plus a
  /// deterministic jitter of up to backoff_jitter_pct percent.
  std::uint64_t backoff_base_epochs = 2;
  std::uint64_t backoff_cap_epochs = 32;
  std::uint64_t backoff_jitter_pct = 25;
  /// Modeled RTO components: fixed restart cost plus per-restored-byte
  /// restore cost (reported, never injected into tenant clocks).
  std::uint64_t restart_cycles = 50'000;
  std::uint64_t restore_cycles_per_byte = 1;
  /// Transfer policy for evacuation migrations.
  MigrationPolicy migration;
  /// Seeds the backoff-jitter stream (host chaos has its own seed).
  std::uint64_t seed = 0x5eed;
  /// OS worker threads for the epoch step phase (1 = sequential). Pure
  /// execution mechanics — hosts share nothing during the step phase and
  /// all shared-state writes are staged and flushed serially in host
  /// order at the epoch barrier — so every value of K produces
  /// bit-identical reports, events, chains, and manifests. Deliberately
  /// excluded from spec(): a manifest taken at K=8 loads into a K=1 run.
  /// With K > 1, host SimConfigs must not share single-threaded sinks
  /// (registry / event log / time series); the supervisor-level sinks are
  /// fine — the step phase never touches them, only the serial flush does.
  std::uint64_t shard_threads = 1;

  /// Fingerprint of every non-default knob; empty for all defaults (the
  /// seed-identical guard). Stored as the manifest's hardening_spec.
  /// shard_threads is excluded (see its comment).
  std::string spec() const;
};

/// One host crash, fully accounted.
struct CrashIncident {
  std::size_t host = 0;
  std::uint64_t at_epoch = 0;
  std::uint64_t steps_at_crash = 0;
  std::uint64_t steps_at_checkpoint = 0;  // last durable checkpoint
  /// RPO: work between the last durable checkpoint and the crash —
  /// exactly what recovery replays.
  std::uint64_t rpo_steps = 0;
  std::uint64_t rpo_cycles = 0;  // host-clock span of the replayed work
  /// Modeled downtime: restart + restore (per restored byte) + replay.
  std::uint64_t rto_cycles = 0;
  std::uint64_t frames_offered = 0;   // chain frames found after the crash
  std::uint64_t frames_salvaged = 0;  // longest valid prefix restored
  bool torn_tail = false;   // crash landed mid-checkpoint (frame torn)
  bool cold_start = false;  // nothing salvageable; replayed from step 0
};

/// One evacuation attempt's resolution.
struct EvacuationIncident {
  std::size_t host = 0;
  std::size_t tenant = 0;        // tenant index on the source host
  std::uint64_t tenant_id = 0;   // fleet-wide stable id
  std::uint64_t at_epoch = 0;
  std::uint64_t attempts = 0;    // attempts consumed so far (this one incl.)
  EvacuationOutcome outcome = EvacuationOutcome::kRetryScheduled;
  /// Outcome of the underlying migration (meaningless for kUncarvable).
  MigrationOutcome migration = MigrationOutcome::kAbortedLink;
  std::uint64_t backoff_epochs = 0;  // wait before the next try (retry only)
  std::string detail;
};

/// Tenant conservation ledger: every tenant ever admitted is exactly one
/// of running, finished, or quarantined — the soak's "no tenant silently
/// lost" check.
struct FleetLedger {
  std::uint64_t tenants_total = 0;
  std::uint64_t running = 0;
  std::uint64_t finished = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t torn_checkpoints = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t evacuations_completed = 0;
  std::uint64_t evacuation_retries = 0;
  std::uint64_t hosts_retired = 0;
  std::uint64_t hosts_spawned = 0;  // replacement hosts only

  bool balanced() const noexcept {
    return tenants_total == running + finished + quarantined;
  }
};

/// End-of-run summary (the soak's incident ledger).
struct FleetReport {
  FleetLedger ledger;
  std::vector<CrashIncident> crash_incidents;
  std::vector<EvacuationIncident> evacuation_incidents;
  std::uint64_t epochs = 0;
  /// Max tenant clock across the fleet at the end.
  Cycles makespan = 0;
};

/// The control plane. Hosts are added up front (traces and plans referenced
/// by their apps must outlive the supervisor); run_epoch() then advances
/// the whole fleet one supervision epoch at a time, injecting crashes,
/// recovering, checkpointing, and evacuating as the policies dictate.
class FleetSupervisor {
 public:
  FleetSupervisor(const SupervisorPolicy& policy,
                  const inject::HostCrashPlan& chaos);
  ~FleetSupervisor();
  FleetSupervisor(const FleetSupervisor&) = delete;
  FleetSupervisor& operator=(const FleetSupervisor&) = delete;

  /// Add a host running `apps` under `config`. Returns the host index.
  std::size_t add_host(const core::SimConfig& config,
                       const std::vector<core::EnclaveApp>& apps);

  // Observability sinks; null is off (the layer-wide convention).
  void set_metrics(obs::MetricsRegistry* m) noexcept { metrics_ = m; }
  void set_time_series(obs::TimeSeriesSet* s) noexcept { series_ = s; }
  void set_event_log(obs::EventLog* e) noexcept { events_ = e; }
  void set_profiler(obs::Profiler* p) noexcept { profiler_ = p; }

  /// Mirror every host's checkpoint chain to `<dir>/host-<n>.snap` (+
  /// .delta-N). Required for `snapshot_tool fleet-info`; recovery itself
  /// salvages from the in-memory chain (same bytes).
  void set_chain_dir(const std::string& dir) { chain_dir_ = dir; }

  /// True when no host has a runnable tenant left.
  bool done() const noexcept;
  /// Advance the fleet one supervision epoch.
  void run_epoch();
  /// run_epoch() until done() or `max_epochs`; returns the final report.
  FleetReport run_to_completion(std::uint64_t max_epochs = ~0ull);

  // --- test knobs: the crash-at-every-cut differential tests drive these
  // directly instead of waiting for the chaos plan ---
  /// Kill `host` now (as the chaos plan would); `torn` tears the in-flight
  /// checkpoint frame. Requires a live host.
  void crash_host(std::size_t host, bool torn);
  /// Salvage + replay `host` back to its crash point. Requires kCrashed.
  CrashIncident recover_host(std::size_t host);
  /// Take a checkpoint of `host` now (policy cadence also calls this).
  void checkpoint_host(std::size_t host);

  std::size_t host_count() const noexcept;
  HostState host_state(std::size_t host) const;
  /// The live run of `host`; null while kCrashed/kRetired.
  const core::MultiEnclaveRun* host_run(std::size_t host) const;
  std::uint64_t epoch() const noexcept;

  FleetLedger ledger() const;
  FleetReport report() const;

  // --- supervisor state in a snapshot frame (gated sections) ---
  /// Serialize the supervisor's own bookkeeping (ledger, host states,
  /// evacuation attempt counters) as a v2 frame. META.hardening_spec
  /// carries policy().spec(), so defaults stay seed-identical and a
  /// mismatched policy refuses to load.
  std::vector<std::uint8_t> save_manifest() const;
  /// Restore bookkeeping saved by save_manifest(). Throws CheckFailure on
  /// corrupt frames or a policy-spec mismatch. Host runs are not restored
  /// here — they resume from their own chains.
  void load_manifest(const std::vector<std::uint8_t>& bytes);

  const SupervisorPolicy& policy() const noexcept { return policy_; }
  const inject::HostChaos& chaos() const noexcept { return chaos_; }

 private:
  struct Host;
  /// Shared-state writes a host would perform while stepping through an
  /// epoch, captured per host during the (possibly parallel) step phase
  /// and flushed serially in host order at the barrier — reproducing the
  /// sequential path's mutation order bit-for-bit (see docs/ROBUSTNESS.md,
  /// "Sharded execution").
  struct EpochStaging {
    std::uint64_t checkpoints = 0;
    std::vector<std::uint64_t> checkpoint_bytes;  // histogram records, in order
    bool crashed = false;
    bool torn = false;
    Cycles crash_clock = 0;
    Cycles end_clock = 0;  // host clock at epoch end (unset when crashed)
  };

  bool checkpoint_due(const Host& h) const;
  void write_frame_to_disk(Host& h, const snapshot::ChainFrame& f,
                           bool torn) const;
  /// `stage` non-null routes shared-state writes (fleet counters, metrics,
  /// events, makespan) into the staging record instead of applying them;
  /// host-local state is always mutated directly.
  void take_checkpoint(Host& h, bool barrier, EpochStaging* stage = nullptr);
  void do_crash(Host& h, bool torn, EpochStaging* stage = nullptr);
  CrashIncident do_recover(Host& h);
  void step_host_through_epoch(Host& h, EpochStaging& stage);
  void flush_staging(Host& h, const EpochStaging& stage);
  void evacuation_scan();
  void evacuate_tenant(Host& h, std::size_t tenant);
  void quarantine_tenant(Host& h, std::size_t tenant);
  void maybe_retire(Host& h);
  void refresh_gauges();
  void emit_event(std::size_t host, const char* action);
  Cycles host_clock(const Host& h) const;
  std::uint64_t backoff_epochs(std::uint64_t attempt, Rng& rng) const;

  SupervisorPolicy policy_;
  inject::HostChaos chaos_;
  Rng backoff_rng_;
  std::vector<std::unique_ptr<Host>> hosts_;
  /// Step-phase worker pool (inline when policy_.shard_threads <= 1).
  std::unique_ptr<core::ShardPool> pool_;
  std::uint64_t epoch_ = 0;
  std::uint64_t next_tenant_id_ = 0;
  /// Sticky max tenant clock ever observed (retired hosts keep counting).
  Cycles makespan_ = 0;
  FleetLedger counters_;  // monotonic counters (occupancy derived on demand)
  std::vector<CrashIncident> crash_incidents_;
  std::vector<EvacuationIncident> evacuation_incidents_;
  std::string chain_dir_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TimeSeriesSet* series_ = nullptr;
  obs::EventLog* events_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
};

}  // namespace sgxpl::fleet
