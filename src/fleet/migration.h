// Live tenant migration between simulated hosts (fleet operations on
// snapshot format v2).
//
// A migration moves one tenant of a source co-run onto a destination host
// (a freshly constructed single-tenant run over the same trace, scheme and
// platform config) without stopping the source for the whole copy:
//
//   1. warm rounds — the tenant's resumable slice is carved
//      (snapshot::extract_resumable) and shipped while the source keeps
//      stepping; each round only the sections that changed since the last
//      delivered copy are paid for on the wire (iterative delta copy);
//   2. stop-and-copy — the tenant's clock is paused and its preloads
//      drained (Driver::begin_drain), one final carve ships, and the
//      accumulated transfer cost of that final leg is the migration's
//      downtime;
//   3. commit — the destination restores the final carve and the source
//      retires the tenant; or abort — on a dead link, an exhausted byte
//      budget, or a destination that rejects the frame, the drain is
//      lifted and the tenant resumes at the source exactly where it
//      paused (no lost pages, no lost progress).
//
// Every transfer leg retries under a deterministic lossy-link model
// (drop / duplicate / truncate / bit-flip, seeded), and every received
// frame is integrity-checked (snapshot::probe_frame) before it is
// acknowledged — a corrupted leg is a retry, never silently-wrong state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/multi_enclave.h"

namespace sgxpl::fleet {

/// Deterministic lossy-link fault model, applied independently per
/// transfer attempt. Probabilities in [0, 1]; all zero = a perfect link.
struct LinkChaos {
  double drop = 0.0;      // leg lost entirely
  double dup = 0.0;       // leg delivered twice (doubles wire cost)
  double truncate = 0.0;  // leg arrives cut short
  double bitflip = 0.0;   // leg arrives with one bit flipped
  std::uint64_t seed = 1;

  bool any() const noexcept {
    return drop > 0 || dup > 0 || truncate > 0 || bitflip > 0;
  }

  /// Parse "drop=0.3,dup=0.1,truncate=0.2,bitflip=0.05,seed=7" (any subset,
  /// any order; empty = perfect link). Throws CheckFailure on unknown keys
  /// or out-of-range probabilities.
  static LinkChaos parse(const std::string& spec);
  /// Canonical spec string (inverse of parse for set fields).
  std::string spec() const;
};

struct MigrationPolicy {
  /// Iterative pre-copy rounds before the stop-and-copy (0 = pure
  /// stop-and-copy).
  std::uint64_t warm_rounds = 3;
  /// Source accesses consumed between consecutive warm rounds.
  std::uint64_t round_steps = 64;
  /// Transfer attempts per leg before the leg (and the migration) fails.
  std::uint64_t max_attempts = 4;
  /// Total on-wire byte budget across all legs and retries; 0 = unlimited.
  std::uint64_t byte_budget = 0;
  /// Fixed control-plane cost of one transfer attempt, in cycles.
  std::uint64_t leg_latency = 2000;
  /// Wire cost per byte, in cycles (scales the downtime of the final leg).
  std::uint64_t cycles_per_byte = 1;
  LinkChaos link;
};

enum class MigrationOutcome : std::uint8_t {
  kCompleted,        // tenant resumed on the destination; source retired it
  kAbortedLink,      // a leg exhausted max_attempts; resumed at source
  kAbortedBudget,    // byte budget exhausted; resumed at source
  kAbortedRejected,  // destination refused the final frame; resumed at source
};

const char* to_string(MigrationOutcome o) noexcept;

/// One transfer leg's accounting (warm rounds and the final stop-and-copy
/// leg alike).
struct LegStats {
  std::uint64_t attempts = 0;
  std::uint64_t bytes_on_wire = 0;  // paid bytes incl. retries and dups
  std::uint64_t bytes_delivered = 0;  // the acknowledged copy's wire size
  bool delivered = false;
  bool final_leg = false;
};

struct MigrationReport {
  MigrationOutcome outcome = MigrationOutcome::kAbortedLink;
  std::uint64_t warm_rounds = 0;  // warm legs actually delivered
  std::uint64_t legs = 0;         // transfer legs attempted
  std::uint64_t attempts = 0;     // attempts across all legs
  std::uint64_t bytes_on_wire = 0;
  /// Control-plane cycles the tenant spent paused: the summed cost of every
  /// final-leg attempt (leg_latency + bytes * cycles_per_byte). Virtual
  /// tenant clocks are never advanced by this — downtime is reported, not
  /// injected, so migrated runs stay cycle-comparable to uninterrupted
  /// ones.
  std::uint64_t downtime_cycles = 0;
  std::vector<LegStats> leg_stats;
  std::string detail;  // typed one-liner on abort, empty on success

  bool completed() const noexcept {
    return outcome == MigrationOutcome::kCompleted;
  }
};

/// Drives one live migration between two in-process runs. Stateless across
/// migrations apart from the policy; safe to reuse.
class MigrationController {
 public:
  explicit MigrationController(MigrationPolicy policy)
      : policy_(policy) {}

  /// Migrate `enclave` of `source` onto `destination` (a compatible,
  /// freshly constructed single-tenant run). On success the tenant is
  /// retired at the source and live on the destination; on any abort the
  /// source tenant resumes exactly where it paused and the destination is
  /// untouched. Throws CheckFailure only on caller errors (bad enclave
  /// index, uncarvable tenant); link and destination failures are reported,
  /// not thrown.
  MigrationReport migrate(core::MultiEnclaveRun& source, std::size_t enclave,
                          core::MultiEnclaveRun& destination);

  const MigrationPolicy& policy() const noexcept { return policy_; }

 private:
  MigrationPolicy policy_;
};

}  // namespace sgxpl::fleet
