#include "fleet/supervisor.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "core/sharding.h"

namespace sgxpl::fleet {

namespace {

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

std::vector<std::string> split_colon(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  return parts;
}

/// How many of this host's crashes landed inside the sliding window ending
/// at `epoch` (the evacuation trigger).
std::uint64_t crashes_in_window(const std::vector<std::uint64_t>& crash_epochs,
                                std::uint64_t epoch,
                                const SupervisorPolicy& policy) {
  std::uint64_t n = 0;
  for (const std::uint64_t e : crash_epochs) {
    if (epoch - e < policy.crash_window_epochs) ++n;
  }
  return n;
}

}  // namespace

const char* to_string(HostState s) noexcept {
  switch (s) {
    case HostState::kHealthy:
      return "healthy";
    case HostState::kCrashed:
      return "crashed";
    case HostState::kRecovering:
      return "recovering";
    case HostState::kEvacuating:
      return "evacuating";
    case HostState::kRetired:
      return "retired";
  }
  return "?";
}

const char* to_string(CheckpointMode m) noexcept {
  switch (m) {
    case CheckpointMode::kFixed:
      return "fixed";
    case CheckpointMode::kDirtyBudget:
      return "dirty";
    case CheckpointMode::kRpoTarget:
      return "rpo";
  }
  return "?";
}

const char* to_string(EvacuationOutcome o) noexcept {
  switch (o) {
    case EvacuationOutcome::kMoved:
      return "moved";
    case EvacuationOutcome::kRetryScheduled:
      return "retry-scheduled";
    case EvacuationOutcome::kQuarantined:
      return "quarantined";
    case EvacuationOutcome::kUncarvable:
      return "uncarvable";
  }
  return "?";
}

std::optional<CheckpointPolicy> CheckpointPolicy::parse(const std::string& spec,
                                                        std::string* err) {
  const auto fail =
      [err](const std::string& why) -> std::optional<CheckpointPolicy> {
    if (err != nullptr) *err = why;
    return std::nullopt;
  };
  const std::vector<std::string> parts = split_colon(spec);
  CheckpointPolicy p;
  if (parts[0] == "fixed") {
    p.mode = CheckpointMode::kFixed;
  } else if (parts[0] == "dirty") {
    p.mode = CheckpointMode::kDirtyBudget;
  } else if (parts[0] == "rpo") {
    p.mode = CheckpointMode::kRpoTarget;
  } else {
    return fail("unknown checkpoint mode '" + parts[0] +
                "' (want fixed, dirty, or rpo)");
  }
  if (parts.size() < 2) {
    return fail("checkpoint spec '" + spec +
                "' is missing its value (want e.g. fixed:2048)");
  }
  if (parts.size() > 3) {
    return fail("too many ':' fields in '" + spec +
                "' (want mode:value[:fullN])");
  }
  std::uint64_t value = 0;
  if (!parse_u64(parts[1], &value) || value == 0) {
    return fail("bad checkpoint value '" + parts[1] +
                "' (want a positive integer)");
  }
  switch (p.mode) {
    case CheckpointMode::kFixed:
      p.fixed_every = value;
      break;
    case CheckpointMode::kDirtyBudget:
      p.dirty_byte_budget = value;
      break;
    case CheckpointMode::kRpoTarget:
      p.rpo_target_cycles = value;
      break;
  }
  if (parts.size() == 3) {
    if (parts[2].rfind("full", 0) != 0 ||
        !parse_u64(parts[2].substr(4), &p.full_every) || p.full_every == 0) {
      return fail("bad chain-length field '" + parts[2] +
                  "' (want fullN with N >= 1)");
    }
  }
  return p;
}

std::string CheckpointPolicy::spec() const {
  std::string s(to_string(mode));
  switch (mode) {
    case CheckpointMode::kFixed:
      s += ":" + std::to_string(fixed_every);
      break;
    case CheckpointMode::kDirtyBudget:
      s += ":" + std::to_string(dirty_byte_budget);
      break;
    case CheckpointMode::kRpoTarget:
      s += ":" + std::to_string(rpo_target_cycles);
      break;
  }
  s += ":full" + std::to_string(full_every);
  return s;
}

std::string SupervisorPolicy::spec() const {
  const SupervisorPolicy def{};
  std::ostringstream oss;
  bool first = true;
  const auto put = [&oss, &first](const char* key, const std::string& value) {
    if (!first) oss << ",";
    oss << key << "=" << value;
    first = false;
  };
  if (checkpoint.spec() != def.checkpoint.spec()) {
    put("ckpt", checkpoint.spec());
  }
  if (epoch_steps != def.epoch_steps) {
    put("epoch", std::to_string(epoch_steps));
  }
  if (crash_threshold != def.crash_threshold) {
    put("crash-threshold", std::to_string(crash_threshold));
  }
  if (crash_window_epochs != def.crash_window_epochs) {
    put("crash-window", std::to_string(crash_window_epochs));
  }
  if (max_evacuation_attempts != def.max_evacuation_attempts) {
    put("max-evac", std::to_string(max_evacuation_attempts));
  }
  if (backoff_base_epochs != def.backoff_base_epochs) {
    put("backoff-base", std::to_string(backoff_base_epochs));
  }
  if (backoff_cap_epochs != def.backoff_cap_epochs) {
    put("backoff-cap", std::to_string(backoff_cap_epochs));
  }
  if (backoff_jitter_pct != def.backoff_jitter_pct) {
    put("backoff-jitter", std::to_string(backoff_jitter_pct));
  }
  if (restart_cycles != def.restart_cycles) {
    put("restart", std::to_string(restart_cycles));
  }
  if (restore_cycles_per_byte != def.restore_cycles_per_byte) {
    put("restore-per-byte", std::to_string(restore_cycles_per_byte));
  }
  if (migration.warm_rounds != def.migration.warm_rounds) {
    put("mig-warm", std::to_string(migration.warm_rounds));
  }
  if (migration.round_steps != def.migration.round_steps) {
    put("mig-round", std::to_string(migration.round_steps));
  }
  if (migration.max_attempts != def.migration.max_attempts) {
    put("mig-attempts", std::to_string(migration.max_attempts));
  }
  if (migration.byte_budget != def.migration.byte_budget) {
    put("mig-budget", std::to_string(migration.byte_budget));
  }
  if (migration.leg_latency != def.migration.leg_latency) {
    put("mig-latency", std::to_string(migration.leg_latency));
  }
  if (migration.cycles_per_byte != def.migration.cycles_per_byte) {
    put("mig-cpb", std::to_string(migration.cycles_per_byte));
  }
  if (migration.link.spec() != def.migration.link.spec()) {
    put("mig-link", migration.link.spec());
  }
  if (seed != def.seed) {
    put("seed", std::to_string(seed));
  }
  return oss.str();
}

// ---------------------------------------------------------------------------
// Host
// ---------------------------------------------------------------------------

struct FleetSupervisor::Host {
  std::size_t index = 0;
  core::SimConfig cfg;
  std::vector<core::EnclaveApp> apps;
  std::unique_ptr<core::MultiEnclaveRun> run;  // null while kCrashed/kRetired
  std::unique_ptr<snapshot::Snapshotter<core::MultiEnclaveRun>> snapshotter;
  HostState state = HostState::kHealthy;

  /// The run position a chain frame captured: frame chain[i] restores the
  /// host to marks[i] (a torn tail frame carries a mark too, but salvage
  /// drops the frame so the mark is never consulted).
  struct Mark {
    std::uint64_t steps = 0;
    Cycles clock = 0;
    std::uint64_t bytes = 0;
  };
  /// The durable checkpoint chain (base first): what "disk" holds when the
  /// host's volatile state vanishes. Mirrored to chain_dir_ when set.
  std::vector<std::vector<std::uint8_t>> chain;
  std::vector<Mark> marks;

  std::uint64_t steps_at_last_ckpt = 0;
  Cycles clock_at_last_ckpt = 0;
  /// Observed write rate of the previous frame (kDirtyBudget's estimator).
  double bytes_per_step = 0.0;

  std::vector<std::uint64_t> crash_epochs;
  // Valid while kCrashed: where the host was when it died.
  std::uint64_t crash_steps = 0;
  Cycles crash_clock = 0;
  bool crash_torn = false;

  struct TenantRec {
    std::uint64_t id = 0;
    bool quarantined = false;
    bool moved = false;     // live on a replacement host; skip here
    bool finished = false;  // sticky once observed (survives run teardown)
    std::uint64_t attempts = 0;
    std::uint64_t next_retry_epoch = 0;
  };
  std::vector<TenantRec> tenants;
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

FleetSupervisor::FleetSupervisor(const SupervisorPolicy& policy,
                                 const inject::HostCrashPlan& chaos)
    : policy_(policy),
      chaos_(chaos, 0),
      backoff_rng_(policy.seed),
      pool_(std::make_unique<core::ShardPool>(
          static_cast<std::size_t>(std::max<std::uint64_t>(
              policy.shard_threads, 1)))) {}

FleetSupervisor::~FleetSupervisor() = default;

std::size_t FleetSupervisor::add_host(
    const core::SimConfig& config, const std::vector<core::EnclaveApp>& apps) {
  SGXPL_CHECK_MSG(!apps.empty(), "fleet: a host needs at least one tenant");
  for (const core::EnclaveApp& a : apps) {
    SGXPL_CHECK_MSG(a.trace != nullptr,
                    "fleet: every tenant needs a trace (null trace passed)");
  }
  auto h = std::make_unique<Host>();
  h->index = hosts_.size();
  h->cfg = config;
  h->apps = apps;
  h->run = std::make_unique<core::MultiEnclaveRun>(h->cfg, h->apps);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    h->tenants.push_back({.id = next_tenant_id_++});
  }
  counters_.tenants_total += apps.size();
  hosts_.push_back(std::move(h));
  chaos_.ensure_hosts(hosts_.size());
  // A durable base before any work: even a crash in the first epoch has
  // something to salvage (never a cold start under the chaos plan).
  take_checkpoint(*hosts_.back(), /*barrier=*/false);
  return hosts_.back()->index;
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

bool FleetSupervisor::checkpoint_due(const Host& h) const {
  if (!h.run) return false;
  const std::uint64_t since = h.run->steps() - h.steps_at_last_ckpt;
  if (since == 0) return false;
  switch (policy_.checkpoint.mode) {
    case CheckpointMode::kFixed:
      return since >= policy_.checkpoint.fixed_every;
    case CheckpointMode::kDirtyBudget:
      return h.bytes_per_step * static_cast<double>(since) >=
             static_cast<double>(policy_.checkpoint.dirty_byte_budget);
    case CheckpointMode::kRpoTarget:
      return host_clock(h) - h.clock_at_last_ckpt >=
             policy_.checkpoint.rpo_target_cycles;
  }
  return false;
}

void FleetSupervisor::write_frame_to_disk(Host& h,
                                          const snapshot::ChainFrame& f,
                                          bool torn) const {
  if (chain_dir_.empty()) return;
  const std::string base =
      chain_dir_ + "/host-" + std::to_string(h.index) + ".snap";
  const std::size_t at = h.chain.size();  // index this frame lands at
  if (at == 0 && !torn) {
    snapshot::write_file_atomic(base, f.bytes);
    snapshot::remove_stale_deltas(base);
  } else {
    // Deltas land beside the base; a torn write never replaces the base
    // atomically, so it is modeled as a truncated tail file.
    snapshot::write_file_atomic(
        snapshot::delta_path(base, at == 0 ? 1 : at), f.bytes);
  }
}

void FleetSupervisor::take_checkpoint(Host& h, bool barrier,
                                      EpochStaging* stage) {
  SGXPL_CHECK_MSG(h.run != nullptr,
                  "fleet: checkpoint of a host with no live run");
  if (barrier || !h.snapshotter) {
    // A fresh Snapshotter's first frame is a full base: the barrier that
    // makes control-plane mutations (retirement, quarantine) durable before
    // any crash can roll the host behind them.
    h.snapshotter =
        std::make_unique<snapshot::Snapshotter<core::MultiEnclaveRun>>(
            policy_.checkpoint.full_every);
  }
  const std::uint64_t steps_before = h.steps_at_last_ckpt;
  snapshot::ChainFrame f = h.snapshotter->checkpoint(*h.run);
  if (f.header.kind == snapshot::FrameKind::kFull) {
    h.chain.clear();
    h.marks.clear();
  }
  const std::uint64_t steps = h.run->steps();
  const Cycles clock = host_clock(h);
  write_frame_to_disk(h, f, /*torn=*/false);
  h.marks.push_back({steps, clock, f.bytes.size()});
  h.chain.push_back(std::move(f.bytes));
  const std::uint64_t covered =
      steps > steps_before ? steps - steps_before : 1;
  h.bytes_per_step = static_cast<double>(h.marks.back().bytes) /
                     static_cast<double>(covered);
  h.steps_at_last_ckpt = steps;
  h.clock_at_last_ckpt = clock;
  if (stage != nullptr) {
    // Parallel step phase: the fleet counter and registry are shared;
    // stage the writes for the serial barrier flush.
    ++stage->checkpoints;
    stage->checkpoint_bytes.push_back(h.marks.back().bytes);
    return;
  }
  ++counters_.checkpoints;
  if (metrics_) {
    metrics_->counter("fleet.checkpoints").add();
    metrics_->histogram("fleet.checkpoint_bytes").record(h.marks.back().bytes);
  }
}

void FleetSupervisor::checkpoint_host(std::size_t host) {
  SGXPL_CHECK_MSG(host < hosts_.size(), "fleet: checkpoint_host out of range");
  take_checkpoint(*hosts_[host], /*barrier=*/false);
}

// ---------------------------------------------------------------------------
// Crash and recovery
// ---------------------------------------------------------------------------

void FleetSupervisor::do_crash(Host& h, bool torn, EpochStaging* stage) {
  SGXPL_CHECK_MSG(h.run != nullptr, "fleet: crash of a host with no live run");
  h.crash_steps = h.run->steps();
  h.crash_clock = host_clock(h);
  h.crash_torn = torn;
  if (stage == nullptr) {
    makespan_ = std::max(makespan_, h.crash_clock);
  } else {
    stage->crashed = true;
    stage->crash_clock = h.crash_clock;
  }
  if (torn && h.snapshotter) {
    // The crash lands mid-checkpoint: the frame being written is truncated
    // and left at the chain tail — exactly what salvage must drop.
    snapshot::ChainFrame f = h.snapshotter->checkpoint(*h.run);
    f.bytes.resize(f.bytes.size() / 2);
    write_frame_to_disk(h, f, /*torn=*/true);
    h.marks.push_back({h.crash_steps, h.crash_clock, 0});
    h.chain.push_back(std::move(f.bytes));
    if (stage == nullptr) {
      ++counters_.torn_checkpoints;
      emit_event(h.index, "torn-checkpoint");
    } else {
      stage->torn = true;
    }
  }
  h.run.reset();  // volatile state gone; the chain is all that survives
  h.snapshotter.reset();
  h.state = HostState::kCrashed;
  h.crash_epochs.push_back(epoch_);
  if (stage == nullptr) {
    ++counters_.crashes;
    if (metrics_) metrics_->counter("fleet.crashes").add();
    emit_event(h.index, "crash");
  }
}

void FleetSupervisor::crash_host(std::size_t host, bool torn) {
  SGXPL_CHECK_MSG(host < hosts_.size(), "fleet: crash_host out of range");
  Host& h = *hosts_[host];
  SGXPL_CHECK_MSG(h.run != nullptr && (h.state == HostState::kHealthy ||
                                       h.state == HostState::kEvacuating),
                  "fleet: crash_host requires a live host");
  do_crash(h, torn);
}

CrashIncident FleetSupervisor::do_recover(Host& h) {
  SGXPL_CHECK_MSG(h.state == HostState::kCrashed,
                  "fleet: recover of a host that is not crashed");
  obs::ScopedSpan span(profiler_, obs::Phase::kFleetRecover);
  h.state = HostState::kRecovering;
  CrashIncident inc;
  inc.host = h.index;
  inc.at_epoch = epoch_;
  inc.steps_at_crash = h.crash_steps;
  inc.torn_tail = h.crash_torn;

  h.run = std::make_unique<core::MultiEnclaveRun>(h.cfg, h.apps);
  const snapshot::ChainSalvageReport rep =
      snapshot::restore_chain_salvage(*h.run, h.chain);
  inc.frames_offered = rep.frames_offered;
  inc.frames_salvaged = rep.frames_restored;
  std::uint64_t restored_bytes = 0;
  std::uint64_t restore_steps = 0;
  Cycles restore_clock = 0;
  if (!rep.restored_any()) {
    // Nothing durable survived. The base may have failed mid-load (state
    // unspecified), so rebuild from scratch and replay the whole history.
    h.run = std::make_unique<core::MultiEnclaveRun>(h.cfg, h.apps);
    inc.cold_start = true;
    ++counters_.cold_starts;
    emit_event(h.index, "cold-start");
  } else {
    const Host::Mark& m = h.marks[rep.frames_restored - 1];
    restore_steps = m.steps;
    restore_clock = m.clock;
    for (std::uint64_t i = 0; i < rep.frames_restored; ++i) {
      restored_bytes += h.marks[i].bytes;
    }
  }
  inc.steps_at_checkpoint = restore_steps;

  // Rule 2: pause flags are control-plane state, never serialized into host
  // frames — re-apply them before any replay step so the restored scheduler
  // walks the same tenant sequence the original did.
  if (inc.cold_start) {
    // A cold start predates every barrier: moved tenants must be parked by
    // hand (their retirement frame is gone), and replay can only reach as
    // far as the survivors can step.
    for (std::size_t t = 0; t < h.tenants.size(); ++t) {
      if (h.tenants[t].quarantined || h.tenants[t].moved) {
        h.run->set_tenant_paused(t, true);
      }
    }
    while (h.run->steps() < h.crash_steps && h.run->steppable()) {
      h.run->step();
    }
  } else {
    for (std::size_t t = 0; t < h.tenants.size(); ++t) {
      if (h.tenants[t].quarantined) h.run->set_tenant_paused(t, true);
    }
    while (h.run->steps() < h.crash_steps) {
      SGXPL_CHECK_MSG(h.run->steppable(),
                      "fleet: replay stalled before reaching the crash point");
      h.run->step();
    }
  }
  inc.rpo_steps = h.crash_steps - restore_steps;
  inc.rpo_cycles = h.crash_clock - restore_clock;
  inc.rto_cycles = policy_.restart_cycles +
                   restored_bytes * policy_.restore_cycles_per_byte +
                   inc.rpo_cycles;
  span.add_cycles(inc.rto_cycles);

  // A fresh barrier base at the recovered position: the dropped tail is
  // gone for good and the next incident measures its RPO from here.
  take_checkpoint(h, /*barrier=*/true);
  h.state = crashes_in_window(h.crash_epochs, epoch_, policy_) >=
                    policy_.crash_threshold
                ? HostState::kEvacuating
                : HostState::kHealthy;
  ++counters_.recoveries;
  makespan_ = std::max(makespan_, host_clock(h));
  if (metrics_) {
    metrics_->counter("fleet.recoveries").add();
    metrics_->histogram("fleet.rpo_steps").record(inc.rpo_steps);
    metrics_->histogram("fleet.rpo_cycles").record(inc.rpo_cycles);
    metrics_->histogram("fleet.rto_cycles").record(inc.rto_cycles);
  }
  emit_event(h.index, "recover");
  crash_incidents_.push_back(inc);
  return inc;
}

CrashIncident FleetSupervisor::recover_host(std::size_t host) {
  SGXPL_CHECK_MSG(host < hosts_.size(), "fleet: recover_host out of range");
  return do_recover(*hosts_[host]);
}

// ---------------------------------------------------------------------------
// The epoch loop
// ---------------------------------------------------------------------------

void FleetSupervisor::step_host_through_epoch(Host& h, EpochStaging& stage) {
  // Runs on a worker thread when shard_threads > 1: everything it touches
  // is host-local (the run, the chain, the host's chaos stream and stats
  // slot, its own disk files) except the writes routed into `stage`.
  const std::optional<inject::HostCrashDecision> decision =
      chaos_.crash_this_epoch(h.index, policy_.epoch_steps);
  for (std::uint64_t i = 0; i < policy_.epoch_steps; ++i) {
    if (decision && i == decision->step_offset) {
      do_crash(h, decision->torn_tail, &stage);
      return;
    }
    if (!h.run->steppable()) break;
    h.run->step();
    if (checkpoint_due(h)) take_checkpoint(h, /*barrier=*/false, &stage);
  }
  stage.end_clock = host_clock(h);
}

void FleetSupervisor::flush_staging(Host& h, const EpochStaging& stage) {
  // Replays the exact shared-state mutation order of the sequential path
  // for this host; callers flush in host index order, which is the order
  // the sequential loop visits hosts — so counters, event timestamps
  // (emit_event reads makespan_), and event order are bit-identical.
  counters_.checkpoints += stage.checkpoints;
  if (metrics_ && stage.checkpoints > 0) {
    for (std::uint64_t i = 0; i < stage.checkpoints; ++i) {
      metrics_->counter("fleet.checkpoints").add();
    }
    for (const std::uint64_t bytes : stage.checkpoint_bytes) {
      metrics_->histogram("fleet.checkpoint_bytes").record(bytes);
    }
  }
  if (stage.crashed) {
    makespan_ = std::max(makespan_, stage.crash_clock);
    if (stage.torn) {
      ++counters_.torn_checkpoints;
      emit_event(h.index, "torn-checkpoint");
    }
    ++counters_.crashes;
    if (metrics_) metrics_->counter("fleet.crashes").add();
    emit_event(h.index, "crash");
  } else {
    makespan_ = std::max(makespan_, stage.end_clock);
  }
}

void FleetSupervisor::run_epoch() {
  // Step phase: hosts spawned by this epoch's evacuations start stepping
  // next epoch, so the step set is fixed up front. Eligible hosts advance
  // independently — in parallel across the shard pool when the policy asks
  // for it — with shared-state writes staged per host and flushed serially
  // in host order below (the shard barrier).
  const std::size_t live = hosts_.size();
  std::vector<std::size_t> eligible;
  eligible.reserve(live);
  for (std::size_t i = 0; i < live; ++i) {
    Host& h = *hosts_[i];
    if ((h.state == HostState::kHealthy || h.state == HostState::kEvacuating) &&
        h.run && h.run->steppable()) {
      eligible.push_back(i);
    }
  }
  std::vector<EpochStaging> staged(eligible.size());
  pool_->run(eligible.size(), [this, &eligible, &staged](std::size_t j) {
    step_host_through_epoch(*hosts_[eligible[j]], staged[j]);
  });
  for (std::size_t j = 0; j < eligible.size(); ++j) {
    flush_staging(*hosts_[eligible[j]], staged[j]);
  }
  // Recovery phase: no host leaves an epoch crashed.
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i]->state == HostState::kCrashed) {
      do_recover(*hosts_[i]);
    }
  }
  evacuation_scan();
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    maybe_retire(*hosts_[i]);
  }
  refresh_gauges();
  ++epoch_;
}

FleetReport FleetSupervisor::run_to_completion(std::uint64_t max_epochs) {
  std::uint64_t ran = 0;
  while (!done() && ran < max_epochs) {
    run_epoch();
    ++ran;
  }
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    maybe_retire(*hosts_[i]);
  }
  refresh_gauges();
  return report();
}

bool FleetSupervisor::done() const noexcept {
  for (const auto& h : hosts_) {
    if (h->state == HostState::kRetired) continue;
    if (h->state == HostState::kCrashed) return false;
    if (h->run && h->run->steppable()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Evacuation
// ---------------------------------------------------------------------------

void FleetSupervisor::evacuation_scan() {
  const std::size_t scan = hosts_.size();  // replacements join clean
  for (std::size_t i = 0; i < scan; ++i) {
    Host& h = *hosts_[i];
    if (h.state != HostState::kEvacuating || !h.run) continue;
    for (std::size_t t = 0; t < h.tenants.size(); ++t) {
      Host::TenantRec& rec = h.tenants[t];
      if (rec.moved || rec.quarantined || rec.finished) continue;
      if (h.run->tenant_cursor(t) >= h.apps[t].trace->size()) {
        rec.finished = true;  // nothing left to move
        continue;
      }
      if (rec.next_retry_epoch > epoch_) continue;
      evacuate_tenant(h, t);
    }
  }
}

void FleetSupervisor::evacuate_tenant(Host& h, std::size_t tenant) {
  obs::ScopedSpan span(profiler_, obs::Phase::kFleetEvacuate);
  Host::TenantRec& rec = h.tenants[tenant];
  ++rec.attempts;
  EvacuationIncident inc;
  inc.host = h.index;
  inc.tenant = tenant;
  inc.tenant_id = rec.id;
  inc.at_epoch = epoch_;
  inc.attempts = rec.attempts;

  // The replacement host: same platform config, sole tenant. It joins the
  // fleet only if the migration commits; an abort discards it untouched.
  auto nh = std::make_unique<Host>();
  nh->cfg = h.cfg;
  nh->apps = {h.apps[tenant]};
  nh->run = std::make_unique<core::MultiEnclaveRun>(nh->cfg, nh->apps);

  MigrationController ctl(policy_.migration);
  MigrationReport rep;
  try {
    rep = ctl.migrate(*h.run, tenant, *nh->run);
  } catch (const CheckFailure& e) {
    // extract_resumable refused the carve (e.g. a DFP tenant above offset
    // 0): no retry will change that — quarantine immediately.
    inc.outcome = EvacuationOutcome::kUncarvable;
    inc.detail = e.what();
    quarantine_tenant(h, tenant);
    emit_event(h.index, "uncarvable");
    if (metrics_) metrics_->counter("fleet.evacuations_uncarvable").add();
    evacuation_incidents_.push_back(inc);
    return;
  }
  inc.migration = rep.outcome;
  inc.detail = rep.detail;
  if (rep.completed()) {
    rec.moved = true;
    // Rule 1: the source-side retirement exists only in volatile state
    // until a frame carries it — barrier before any crash can lose it.
    take_checkpoint(h, /*barrier=*/true);
    nh->index = hosts_.size();
    nh->tenants.push_back({.id = rec.id});
    hosts_.push_back(std::move(nh));
    Host& spawned = *hosts_.back();
    chaos_.ensure_hosts(hosts_.size());
    take_checkpoint(spawned, /*barrier=*/false);  // its first durable base
    ++counters_.hosts_spawned;
    ++counters_.evacuations_completed;
    inc.outcome = EvacuationOutcome::kMoved;
    emit_event(h.index, "evacuate-moved");
    emit_event(spawned.index, "spawn");
    if (metrics_) metrics_->counter("fleet.evacuations_completed").add();
  } else if (rec.attempts >= policy_.max_evacuation_attempts) {
    inc.outcome = EvacuationOutcome::kQuarantined;
    quarantine_tenant(h, tenant);
    emit_event(h.index, "quarantine");
  } else {
    const std::uint64_t wait = backoff_epochs(rec.attempts, backoff_rng_);
    rec.next_retry_epoch = epoch_ + wait;
    inc.outcome = EvacuationOutcome::kRetryScheduled;
    inc.backoff_epochs = wait;
    ++counters_.evacuation_retries;
    emit_event(h.index, "evacuate-retry");
    if (metrics_) metrics_->counter("fleet.evacuation_retries").add();
  }
  evacuation_incidents_.push_back(inc);
}

void FleetSupervisor::quarantine_tenant(Host& h, std::size_t tenant) {
  Host::TenantRec& rec = h.tenants[tenant];
  if (rec.quarantined) return;
  rec.quarantined = true;
  if (h.run) {
    h.run->set_tenant_paused(tenant, true);
    // Rule 1: from here on the original never steps this tenant again, so
    // a post-quarantine base keeps replay step counts aligned (rule 2
    // re-applies the pause itself after every restore).
    take_checkpoint(h, /*barrier=*/true);
  }
  if (metrics_) metrics_->counter("fleet.quarantines").add();
}

void FleetSupervisor::maybe_retire(Host& h) {
  if (h.state == HostState::kRetired || h.state == HostState::kCrashed ||
      !h.run) {
    return;
  }
  for (std::size_t t = 0; t < h.tenants.size(); ++t) {
    Host::TenantRec& rec = h.tenants[t];
    if (rec.moved || rec.quarantined) continue;
    if (h.run->tenant_cursor(t) >= h.apps[t].trace->size()) {
      rec.finished = true;  // sticky: survives the run teardown below
      continue;
    }
    return;  // still has a runnable (or retry-pending) tenant
  }
  h.run.reset();
  h.snapshotter.reset();
  h.state = HostState::kRetired;
  ++counters_.hosts_retired;
  emit_event(h.index, "retire");
}

std::uint64_t FleetSupervisor::backoff_epochs(std::uint64_t attempt,
                                              Rng& rng) const {
  const std::uint64_t shift =
      std::min<std::uint64_t>(attempt > 0 ? attempt - 1 : 0, 62);
  std::uint64_t base = policy_.backoff_base_epochs << shift;
  if (base > policy_.backoff_cap_epochs) base = policy_.backoff_cap_epochs;
  if (base == 0) base = 1;
  const std::uint64_t span = base * policy_.backoff_jitter_pct / 100;
  return base + (span > 0 ? rng.bounded(span + 1) : 0);
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

Cycles FleetSupervisor::host_clock(const Host& h) const {
  if (!h.run) return 0;
  Cycles c = 0;
  for (std::size_t i = 0; i < h.run->enclave_count(); ++i) {
    c = std::max(c, h.run->tenant_clock(i));
  }
  return c;
}

void FleetSupervisor::emit_event(std::size_t host, const char* action) {
  if (!events_) return;
  obs::Event e;
  e.at = makespan_;
  e.type = obs::EventType::kFleet;
  e.page = host;
  e.aux = epoch_;
  e.detail = action;
  events_->record(e);
}

void FleetSupervisor::refresh_gauges() {
  if (!metrics_ && !series_) return;
  const FleetLedger led = ledger();
  std::uint64_t hosts_live = 0;
  for (const auto& h : hosts_) {
    if (h->state != HostState::kRetired) ++hosts_live;
  }
  if (metrics_) {
    metrics_->gauge("fleet.hosts_live").set(static_cast<double>(hosts_live));
    metrics_->gauge("fleet.tenants_running")
        .set(static_cast<double>(led.running));
    metrics_->gauge("fleet.tenants_quarantined")
        .set(static_cast<double>(led.quarantined));
    metrics_->gauge("fleet.tenants_finished")
        .set(static_cast<double>(led.finished));
  }
  if (series_) {
    series_->series("fleet.running")
        .add(makespan_, static_cast<double>(led.running));
    series_->series("fleet.quarantined")
        .add(makespan_, static_cast<double>(led.quarantined));
    series_->series("fleet.hosts_live")
        .add(makespan_, static_cast<double>(hosts_live));
  }
}

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

std::size_t FleetSupervisor::host_count() const noexcept {
  return hosts_.size();
}

HostState FleetSupervisor::host_state(std::size_t host) const {
  SGXPL_CHECK_MSG(host < hosts_.size(), "fleet: host_state out of range");
  return hosts_[host]->state;
}

const core::MultiEnclaveRun* FleetSupervisor::host_run(std::size_t host) const {
  SGXPL_CHECK_MSG(host < hosts_.size(), "fleet: host_run out of range");
  return hosts_[host]->run.get();
}

std::uint64_t FleetSupervisor::epoch() const noexcept { return epoch_; }

FleetLedger FleetSupervisor::ledger() const {
  FleetLedger led = counters_;
  for (const auto& hp : hosts_) {
    const Host& h = *hp;
    for (std::size_t t = 0; t < h.tenants.size(); ++t) {
      const Host::TenantRec& rec = h.tenants[t];
      if (rec.moved) continue;  // counted where it now lives
      if (rec.quarantined) {
        ++led.quarantined;
        continue;
      }
      bool finished = rec.finished;
      if (!finished && h.run) {
        finished = h.run->tenant_cursor(t) >= h.apps[t].trace->size();
      }
      if (finished) {
        ++led.finished;
      } else {
        ++led.running;
      }
    }
  }
  return led;
}

FleetReport FleetSupervisor::report() const {
  FleetReport r;
  r.ledger = ledger();
  r.crash_incidents = crash_incidents_;
  r.evacuation_incidents = evacuation_incidents_;
  r.epochs = epoch_;
  r.makespan = makespan_;
  return r;
}

// ---------------------------------------------------------------------------
// The supervisor manifest (its own v2 frame; host frames stay untouched)
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> FleetSupervisor::save_manifest() const {
  snapshot::Writer w;
  snapshot::write_chain_header(
      w, snapshot::ChainHeader{.kind = snapshot::FrameKind::kFull,
                               .chain_id = 0,
                               .seq = 0,
                               .prev_crc = 0});
  snapshot::RunMeta meta;
  meta.kind = "fleet-supervisor";
  meta.scheme = "fleet";
  meta.trace_name = "fleet";
  meta.trace_accesses = counters_.tenants_total;
  meta.elrange_pages = hosts_.size();
  meta.epc_pages = 0;
  meta.chaos_spec = chaos_.plan().spec();
  meta.chaos_seed = chaos_.plan().seed;
  meta.hardening_spec = policy_.spec();
  meta.cursor = epoch_;
  snapshot::write_meta(w, meta);

  w.begin_section("FLTS");
  w.u64("epoch", epoch_);
  w.u64("next_tenant_id", next_tenant_id_);
  w.u64("makespan", makespan_);
  w.u64("hosts", hosts_.size());
  w.u64("tenants_total", counters_.tenants_total);
  w.u64("crashes", counters_.crashes);
  w.u64("recoveries", counters_.recoveries);
  w.u64("cold_starts", counters_.cold_starts);
  w.u64("torn_checkpoints", counters_.torn_checkpoints);
  w.u64("checkpoints", counters_.checkpoints);
  w.u64("evacuations_completed", counters_.evacuations_completed);
  w.u64("evacuation_retries", counters_.evacuation_retries);
  w.u64("hosts_retired", counters_.hosts_retired);
  w.u64("hosts_spawned", counters_.hosts_spawned);
  w.end_section();

  for (const auto& hp : hosts_) {
    const Host& h = *hp;
    w.begin_section("FHST");
    w.u64("state", static_cast<std::uint64_t>(h.state));
    w.u64("crash_steps", h.crash_steps);
    w.u64("crash_clock", h.crash_clock);
    w.boolean("crash_torn", h.crash_torn);
    w.u64_vec("crash_epochs", h.crash_epochs);
    std::vector<std::uint64_t> ids, flags, attempts, retries;
    for (const Host::TenantRec& rec : h.tenants) {
      ids.push_back(rec.id);
      flags.push_back((rec.quarantined ? 1u : 0u) | (rec.moved ? 2u : 0u) |
                      (rec.finished ? 4u : 0u));
      attempts.push_back(rec.attempts);
      retries.push_back(rec.next_retry_epoch);
    }
    w.u64_vec("tenant_ids", ids);
    w.u64_vec("tenant_flags", flags);
    w.u64_vec("tenant_attempts", attempts);
    w.u64_vec("tenant_retry_epochs", retries);
    w.end_section();
  }
  return w.finish();
}

void FleetSupervisor::load_manifest(const std::vector<std::uint8_t>& bytes) {
  snapshot::validate_frame(bytes);
  snapshot::Reader r(bytes);
  const snapshot::ChainHeader ch = snapshot::read_chain_header(r);
  SGXPL_CHECK_MSG(
      ch.kind == snapshot::FrameKind::kFull && ch.chain_id == 0,
      "fleet: a supervisor manifest is a standalone frame, not a chain "
      "member");
  const snapshot::RunMeta meta = snapshot::read_meta(r);
  SGXPL_CHECK_MSG(meta.kind == "fleet-supervisor",
                  "fleet: frame is not a supervisor manifest (kind '" +
                      meta.kind + "')");
  SGXPL_CHECK_MSG(
      meta.hardening_spec == policy_.spec(),
      "fleet: manifest policy '" + meta.hardening_spec +
          "' does not match this supervisor's '" + policy_.spec() +
          "' — supervisor state does not load across a policy change");

  r.enter_section("FLTS");
  const std::uint64_t epoch = r.u64("epoch");
  const std::uint64_t next_id = r.u64("next_tenant_id");
  const std::uint64_t makespan = r.u64("makespan");
  const std::uint64_t host_count = r.u64("hosts");
  FleetLedger c;
  c.tenants_total = r.u64("tenants_total");
  c.crashes = r.u64("crashes");
  c.recoveries = r.u64("recoveries");
  c.cold_starts = r.u64("cold_starts");
  c.torn_checkpoints = r.u64("torn_checkpoints");
  c.checkpoints = r.u64("checkpoints");
  c.evacuations_completed = r.u64("evacuations_completed");
  c.evacuation_retries = r.u64("evacuation_retries");
  c.hosts_retired = r.u64("hosts_retired");
  c.hosts_spawned = r.u64("hosts_spawned");
  r.leave_section();
  SGXPL_CHECK_MSG(
      host_count == hosts_.size(),
      "fleet: manifest describes " + std::to_string(host_count) +
          " host(s) but this supervisor has " + std::to_string(hosts_.size()) +
          " — re-add the same hosts before loading");

  for (auto& hp : hosts_) {
    Host& h = *hp;
    r.enter_section("FHST");
    const auto state = static_cast<HostState>(r.u64("state"));
    h.crash_steps = r.u64("crash_steps");
    h.crash_clock = r.u64("crash_clock");
    h.crash_torn = r.boolean("crash_torn");
    h.crash_epochs = r.u64_vec("crash_epochs");
    const std::vector<std::uint64_t> ids = r.u64_vec("tenant_ids");
    const std::vector<std::uint64_t> flags = r.u64_vec("tenant_flags");
    const std::vector<std::uint64_t> attempts = r.u64_vec("tenant_attempts");
    const std::vector<std::uint64_t> retries =
        r.u64_vec("tenant_retry_epochs");
    r.leave_section();
    SGXPL_CHECK_MSG(ids.size() == h.tenants.size(),
                    "fleet: manifest tenant count does not match host " +
                        std::to_string(h.index));
    for (std::size_t t = 0; t < h.tenants.size(); ++t) {
      Host::TenantRec& rec = h.tenants[t];
      rec.id = ids[t];
      rec.quarantined = (flags[t] & 1u) != 0;
      rec.moved = (flags[t] & 2u) != 0;
      rec.finished = (flags[t] & 4u) != 0;
      rec.attempts = attempts[t];
      rec.next_retry_epoch = retries[t];
      if (h.run && (rec.quarantined || rec.moved)) {
        h.run->set_tenant_paused(t, true);  // rule 2, applied on load too
      }
    }
    // Transient states collapse: a host saved mid-incident resumes as
    // crashed (recovery will rebuild it); a retired host stays torn down.
    if (state == HostState::kRetired) {
      h.run.reset();
      h.snapshotter.reset();
      h.state = HostState::kRetired;
    } else if (state == HostState::kCrashed ||
               state == HostState::kRecovering) {
      h.run.reset();
      h.snapshotter.reset();
      h.state = HostState::kCrashed;
    } else {
      h.state = state;
    }
  }
  epoch_ = epoch;
  next_tenant_id_ = next_id;
  makespan_ = makespan;
  counters_ = c;
}

}  // namespace sgxpl::fleet
