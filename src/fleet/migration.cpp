#include "fleet/migration.h"

#include <algorithm>
#include <cstddef>
#include <cstdlib>

#include "common/check.h"
#include "common/rng.h"
#include "snapshot/codec.h"
#include "snapshot/snapshotter.h"

namespace sgxpl::fleet {

namespace {

double parse_probability(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  SGXPL_CHECK_MSG(end != nullptr && *end == '\0' && p >= 0.0 && p <= 1.0,
                  "link chaos: '" << key << "=" << value
                                  << "' is not a probability in [0, 1]");
  return p;
}

/// Wire cost of shipping `frame` when the receiver already holds `prev`:
/// the 16-byte frame header plus every section whose (tag, payload) pair
/// changed — the section-level delta encoding of the iterative copy. With
/// no previous copy the whole frame ships.
std::uint64_t wire_bytes(const std::vector<std::uint8_t>& frame,
                         const std::vector<std::uint8_t>* prev) {
  if (prev == nullptr) {
    return frame.size();
  }
  const std::vector<snapshot::SectionSpan> now = snapshot::section_spans(frame);
  const std::vector<snapshot::SectionSpan> old =
      snapshot::section_spans(*prev);
  std::uint64_t bytes = 16;  // frame header always ships
  for (std::size_t i = 0; i < now.size(); ++i) {
    const bool same =
        i < old.size() && now[i].tag == old[i].tag &&
        now[i].size == old[i].size &&
        std::equal(frame.begin() + static_cast<std::ptrdiff_t>(now[i].offset),
                   frame.begin() +
                       static_cast<std::ptrdiff_t>(now[i].offset + now[i].size),
                   prev->begin() + static_cast<std::ptrdiff_t>(old[i].offset));
    if (!same) {
      bytes += now[i].size;
    }
  }
  return bytes;
}

/// What one link traversal did to the frame. Applied independently per
/// attempt from the controller's seeded Rng, so a migration under a given
/// policy is bit-reproducible.
struct LinkDelivery {
  bool arrived = false;
  bool duplicated = false;
  std::vector<std::uint8_t> payload;
};

LinkDelivery traverse_link(const std::vector<std::uint8_t>& frame,
                           const LinkChaos& chaos, Rng& rng) {
  LinkDelivery d;
  if (rng.chance(chaos.drop)) {
    return d;  // lost entirely
  }
  d.arrived = true;
  d.duplicated = rng.chance(chaos.dup);
  d.payload = frame;
  if (rng.chance(chaos.truncate) && !d.payload.empty()) {
    d.payload.resize(rng.bounded(d.payload.size()));
  }
  if (rng.chance(chaos.bitflip) && !d.payload.empty()) {
    const std::uint64_t bit = rng.bounded(d.payload.size() * 8);
    d.payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  return d;
}

}  // namespace

LinkChaos LinkChaos::parse(const std::string& spec) {
  LinkChaos c;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    SGXPL_CHECK_MSG(eq != std::string::npos,
                    "link chaos: '" << item << "' is not key=value");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "drop") {
      c.drop = parse_probability(key, value);
    } else if (key == "dup") {
      c.dup = parse_probability(key, value);
    } else if (key == "truncate") {
      c.truncate = parse_probability(key, value);
    } else if (key == "bitflip") {
      c.bitflip = parse_probability(key, value);
    } else if (key == "seed") {
      char* end = nullptr;
      c.seed = std::strtoull(value.c_str(), &end, 10);
      SGXPL_CHECK_MSG(end != nullptr && *end == '\0' && !value.empty(),
                      "link chaos: seed '" << value << "' is not an integer");
    } else {
      throw CheckFailure("link chaos: unknown key '" + key +
                         "' (want drop/dup/truncate/bitflip/seed)");
    }
  }
  return c;
}

std::string LinkChaos::spec() const {
  std::string s;
  const auto add = [&s](const std::string& key, double p) {
    if (p <= 0) return;
    if (!s.empty()) s += ",";
    s += key + "=" + std::to_string(p);
  };
  add("drop", drop);
  add("dup", dup);
  add("truncate", truncate);
  add("bitflip", bitflip);
  if (!s.empty()) s += ",seed=" + std::to_string(seed);
  return s;
}

const char* to_string(MigrationOutcome o) noexcept {
  switch (o) {
    case MigrationOutcome::kCompleted:
      return "completed";
    case MigrationOutcome::kAbortedLink:
      return "aborted-link";
    case MigrationOutcome::kAbortedBudget:
      return "aborted-budget";
    case MigrationOutcome::kAbortedRejected:
      return "aborted-rejected";
  }
  return "?";
}

MigrationReport MigrationController::migrate(
    core::MultiEnclaveRun& source, std::size_t enclave,
    core::MultiEnclaveRun& destination) {
  MigrationReport rep;
  Rng rng(policy_.link.seed);
  // The destination's last acknowledged copy; warm rounds only pay for the
  // sections that changed since this.
  std::vector<std::uint8_t> delivered;
  bool have_delivered = false;

  /// One transfer leg: carve -> (re)send until the receiver acknowledges an
  /// integrity-checked copy or attempts run out. Returns false on a dead
  /// leg or an exhausted budget (rep.outcome/detail already set).
  const auto run_leg = [&](const std::vector<std::uint8_t>& frame,
                           bool final_leg) {
    LegStats leg;
    leg.final_leg = final_leg;
    const std::uint64_t cost =
        wire_bytes(frame, have_delivered ? &delivered : nullptr);
    while (leg.attempts < policy_.max_attempts) {
      if (policy_.byte_budget != 0 &&
          rep.bytes_on_wire + cost > policy_.byte_budget) {
        rep.outcome = MigrationOutcome::kAbortedBudget;
        rep.detail = "transfer budget exhausted: " +
                     std::to_string(rep.bytes_on_wire) + " bytes on the wire" +
                     ", next leg needs " + std::to_string(cost) + " of " +
                     std::to_string(policy_.byte_budget);
        rep.leg_stats.push_back(leg);
        return false;
      }
      ++leg.attempts;
      ++rep.attempts;
      const LinkDelivery d = traverse_link(frame, policy_.link, rng);
      std::uint64_t paid = cost;
      if (d.duplicated) paid += cost;  // the repeat copy also ships
      leg.bytes_on_wire += paid;
      rep.bytes_on_wire += paid;
      if (final_leg) {
        rep.downtime_cycles += policy_.leg_latency +
                               paid * policy_.cycles_per_byte;
      }
      if (d.arrived && snapshot::probe_frame(d.payload).ok) {
        // Acknowledged. A duplicated delivery re-applies the same full
        // frame, which is idempotent by construction.
        delivered = frame;
        have_delivered = true;
        leg.delivered = true;
        leg.bytes_delivered = cost;
        rep.leg_stats.push_back(leg);
        return true;
      }
      // Lost or corrupt: the receiver NACKs (or times out) and the leg
      // retries from the same carve.
    }
    rep.outcome = MigrationOutcome::kAbortedLink;
    rep.detail = std::string(final_leg ? "final" : "warm") +
                 " transfer leg exhausted " +
                 std::to_string(policy_.max_attempts) + " attempt(s)";
    rep.leg_stats.push_back(leg);
    return false;
  };

  // --- phase 1: iterative warm copy (source keeps running) ---
  for (std::uint64_t round = 0; round < policy_.warm_rounds; ++round) {
    ++rep.legs;
    if (!run_leg(snapshot::extract_resumable(source, enclave), false)) {
      return rep;  // source untouched: no pause, no drain yet
    }
    ++rep.warm_rounds;
    for (std::uint64_t s = 0;
         s < policy_.round_steps && source.steppable(); ++s) {
      source.step();
    }
  }

  // --- phase 2: stop-and-copy (tenant paused and drained) ---
  source.set_tenant_paused(enclave, true);
  source.begin_tenant_drain(enclave);
  const auto abort_and_resume = [&] {
    source.end_tenant_drain(enclave);
    source.set_tenant_paused(enclave, false);
  };
  ++rep.legs;
  const std::vector<std::uint8_t> final_frame =
      snapshot::extract_resumable(source, enclave);
  if (!run_leg(final_frame, true)) {
    abort_and_resume();
    return rep;
  }

  // --- phase 3: commit on the destination, retire at the source ---
  if (!destination.restore_if_compatible(final_frame)) {
    rep.outcome = MigrationOutcome::kAbortedRejected;
    rep.detail =
        "destination rejected the final frame (incompatible run "
        "configuration); tenant resumed at the source";
    abort_and_resume();
    return rep;
  }
  source.retire_tenant(enclave);
  source.end_tenant_drain(enclave);
  rep.outcome = MigrationOutcome::kCompleted;
  return rep;
}

}  // namespace sgxpl::fleet
