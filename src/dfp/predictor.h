// The page-access predictor interface behind DFP.
//
// The paper ships Algorithm 1 (the multiple-stream predictor) but is
// explicit that the DFP mechanism accommodates arbitrary strategies —
// "heuristic schemes or even machine learning based schemes" (§4.1). Every
// predictor here consumes the same signal the OS actually has (the fault
// stream, page-granular, per process) and emits pages to preload.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "snapshot/fwd.h"

namespace sgxpl::dfp {

class PagePredictor {
 public:
  virtual ~PagePredictor() = default;

  /// Feed one fault; return the pages to preload, nearest first.
  virtual std::vector<PageNum> on_fault(ProcessId pid, PageNum page) = 0;

  /// Faults that produced a prediction / produced none.
  virtual std::uint64_t hits() const noexcept = 0;
  virtual std::uint64_t misses() const noexcept = 0;

  virtual const char* name() const noexcept = 0;

  virtual void reset() = 0;

  /// Checkpoint/restore of predictor-internal state. The defaults
  /// write/read nothing, which keeps external predictor implementations
  /// compiling — but a stateful predictor that does not override both will
  /// resume cold (deterministic resume then no longer holds). Every
  /// predictor shipped in this repository overrides them.
  virtual void save(snapshot::Writer& w) const;
  virtual void load(snapshot::Reader& r);
};

}  // namespace sgxpl::dfp
