// The PreloadedPageList of paper §4.2: tracks every page brought in by DFP
// preloading until it is either observed accessed (credited to
// AccPreloadCounter by the service-thread scan) or evicted unused.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "common/types.h"
#include "sgxsim/page_table.h"
#include "snapshot/fwd.h"

namespace sgxpl::dfp {

class PreloadedPageList {
 public:
  /// A DFP preload for `page` completed (loaded into the EPC).
  void on_loaded(PageNum page);

  /// `page` was evicted; if it is still on the list it was never accessed.
  void on_evicted(PageNum page);

  /// Service-thread scan: credit pages whose access bit is set, drop pages
  /// no longer resident. Returns the number of pages credited this scan.
  std::uint64_t scan(const sgxsim::PageTable& pt);

  /// PreloadCounter: total pages DFP loaded (used + unused).
  std::uint64_t preload_counter() const noexcept { return preload_counter_; }
  /// AccPreloadCounter: preloaded pages observed accessed by the scan.
  std::uint64_t acc_preload_counter() const noexcept {
    return acc_preload_counter_;
  }
  /// Preloaded pages evicted without ever being credited.
  std::uint64_t evicted_unused() const noexcept { return evicted_unused_; }

  std::size_t tracked() const noexcept { return pages_.size(); }

  void reset();

  /// Checkpoint/restore. Tracked pages serialize sorted so identical
  /// states produce identical snapshot bytes.
  void save(snapshot::Writer& w) const;
  void load(snapshot::Reader& r);

 private:
  std::unordered_set<PageNum> pages_;
  std::uint64_t preload_counter_ = 0;
  std::uint64_t acc_preload_counter_ = 0;
  std::uint64_t evicted_unused_ = 0;
};

}  // namespace sgxpl::dfp
