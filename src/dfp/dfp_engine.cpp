#include "dfp/dfp_engine.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "dfp/predictors.h"
#include "snapshot/codec.h"

namespace sgxpl::dfp {

const char* to_string(PredictorKind k) noexcept {
  switch (k) {
    case PredictorKind::kMultiStream:
      return "multi-stream";
    case PredictorKind::kNextN:
      return "next-n";
    case PredictorKind::kStride:
      return "stride";
    case PredictorKind::kMarkov:
      return "markov";
    case PredictorKind::kTournament:
      return "tournament";
  }
  return "?";
}

std::optional<PredictorKind> parse_predictor_kind(
    std::string_view name) noexcept {
  for (const PredictorKind k :
       {PredictorKind::kMultiStream, PredictorKind::kNextN,
        PredictorKind::kStride, PredictorKind::kMarkov,
        PredictorKind::kTournament}) {
    if (name == to_string(k)) {
      return k;
    }
  }
  return std::nullopt;
}

std::unique_ptr<PagePredictor> make_predictor(const DfpParams& params) {
  const std::uint64_t depth = params.predictor.load_length;
  switch (params.kind) {
    case PredictorKind::kMultiStream:
      return std::make_unique<StreamPredictor>(params.predictor);
    case PredictorKind::kNextN:
      return std::make_unique<NextNPredictor>(depth);
    case PredictorKind::kStride:
      return std::make_unique<StridePredictor>(depth);
    case PredictorKind::kMarkov:
      return std::make_unique<MarkovPredictor>(depth);
    case PredictorKind::kTournament:
      return make_default_tournament(depth);
  }
  SGXPL_CHECK_MSG(false, "unknown predictor kind");
  return nullptr;
}

namespace {

/// With adaptive depth the predictor must be able to produce up to
/// adaptive_max_depth pages; the engine truncates to the current depth.
DfpParams predictor_params(DfpParams p) {
  if (p.adaptive_load_length) {
    p.predictor.load_length =
        std::max(p.predictor.load_length, p.adaptive_max_depth);
  }
  return p;
}

}  // namespace

DfpEngine::DfpEngine(const DfpParams& params)
    : DfpEngine(params, make_predictor(predictor_params(params))) {}

DfpEngine::DfpEngine(const DfpParams& params,
                     std::unique_ptr<PagePredictor> predictor)
    : params_(params),
      predictor_(std::move(predictor)),
      depth_(params.predictor.load_length) {
  SGXPL_CHECK(predictor_ != nullptr);
  SGXPL_CHECK(depth_ > 0);
  SGXPL_CHECK(!params_.adaptive_load_length || params_.adaptive_max_depth > 0);
  if (params_.health.enabled) {
    health_.emplace(params_.health);
  }
}

std::vector<PageNum> DfpEngine::on_fault(ProcessId pid, PageNum page,
                                         Cycles /*now*/) {
  if (stopped_) {
    return {};
  }
  obs::ScopedSpan span(prof_, obs::Phase::kPredictorUpdate);
  auto pages = predictor_->on_fault(pid, page);
  if (params_.adaptive_load_length && pages.size() > depth_) {
    pages.resize(depth_);
  }
  return pages;
}

void DfpEngine::on_preload_completed(PageNum page, Cycles /*now*/) {
  list_.on_loaded(page);
}

void DfpEngine::on_preloads_aborted(const std::vector<PageNum>& pages,
                                    Cycles /*now*/) {
  aborted_ += pages.size();
}

void DfpEngine::on_preloads_shed(const std::vector<PageNum>& pages,
                                 Cycles /*now*/) {
  shed_ += pages.size();
}

void DfpEngine::on_preloaded_page_evicted(PageNum page, bool /*was_accessed*/,
                                          Cycles /*now*/) {
  list_.on_evicted(page);
}

void DfpEngine::on_state_lost(Cycles /*now*/) {
  // A restarted kernel worker loses the predictor's learned streams; the
  // preload accounting (PreloadedPageList counters) survives on the driver
  // side, so the stop valve / health monitor keep their evidence.
  predictor_->reset();
}

void DfpEngine::on_scan(const sgxsim::PageTable& pt, Cycles now) {
  obs::ScopedSpan span(prof_, obs::Phase::kDfpScan);
  list_.scan(pt);
  if (params_.adaptive_load_length) {
    adapt_depth();
  }
  if (health_.has_value()) {
    // Shed preloads count as abort evidence: whether a prediction was
    // flushed by a demand fault or refused admission, the work the engine
    // asked for did not happen, and a persistently overloaded channel
    // should trip the same stop valve as persistent misprediction.
    health_->on_scan(list_.preload_counter(), list_.acc_preload_counter(),
                     aborted_ + shed_, now);
    const bool blocked = !health_->preloads_allowed();
    if (blocked && !stopped_) {
      stopped_at_ = now;
      if (stop_counter_ != nullptr) {
        stop_counter_->add();
      }
    }
    stopped_ = blocked;
  } else {
    maybe_stop(now);
  }
  if (series_ != nullptr) {
    series_->series("dfp.depth")
        .add(now, stopped_ ? 0.0 : static_cast<double>(depth_));
    const auto total = list_.preload_counter();
    if (total > 0) {
      series_->series("dfp.used_fraction")
          .add(now, static_cast<double>(list_.acc_preload_counter()) /
                        static_cast<double>(total));
    }
  }
}

void DfpEngine::set_observability(obs::MetricsRegistry* reg,
                                  obs::TimeSeriesSet* ts) noexcept {
  depth_gauge_ = reg != nullptr ? &reg->gauge("dfp.depth") : nullptr;
  stop_counter_ = reg != nullptr ? &reg->counter("dfp.stops") : nullptr;
  series_ = ts;
  if (health_.has_value()) {
    health_->set_observability(ts);
  }
  if (depth_gauge_ != nullptr) {
    depth_gauge_->set(static_cast<double>(depth_));
  }
}

void DfpEngine::publish(obs::MetricsRegistry& reg) const {
  reg.counter("dfp.preload_counter").add(list_.preload_counter());
  reg.counter("dfp.acc_preload_counter").add(list_.acc_preload_counter());
  reg.counter("dfp.aborted").add(aborted_);
  reg.counter("dfp.shed").add(shed_);
  reg.counter("dfp.predictor.hits").add(predictor_->hits());
  reg.counter("dfp.predictor.misses").add(predictor_->misses());
  if (stopped_) {
    reg.gauge("dfp.stopped_at").set(static_cast<double>(stopped_at_));
  }
  if (health_.has_value()) {
    health_->publish(reg);
  }
}

void DfpEngine::adapt_depth() {
  // Window since the last scan: how many preloads landed and how many of
  // them were observed used. AIMD on the depth: deepen while they pay,
  // back off sharply when they are wasted.
  const std::uint64_t loaded = list_.preload_counter() - last_preload_counter_;
  const std::uint64_t used = list_.acc_preload_counter() - last_acc_counter_;
  last_preload_counter_ = list_.preload_counter();
  last_acc_counter_ = list_.acc_preload_counter();
  if (loaded < 4) {
    return;  // not enough evidence this window
  }
  const double ratio = static_cast<double>(used) / static_cast<double>(loaded);
  if (ratio >= 0.75) {
    depth_ = std::min<std::uint64_t>(depth_ + 1, params_.adaptive_max_depth);
  } else if (ratio < 0.5) {
    depth_ = std::max<std::uint64_t>(depth_ / 2, 1);
  }
  if (depth_gauge_ != nullptr) {
    depth_gauge_->set(static_cast<double>(depth_));
  }
}

void DfpEngine::maybe_stop(Cycles now) {
  if (!params_.stop_enabled || stopped_) {
    return;
  }
  // Paper §4.2: stop when AccPreloadCounter + slack < PreloadCounter/2,
  // i.e. too many preloaded pages were never accessed.
  const double used = static_cast<double>(list_.acc_preload_counter());
  const double total = static_cast<double>(list_.preload_counter());
  if (used + static_cast<double>(params_.stop_slack) <
      total * params_.stop_used_fraction) {
    stopped_ = true;
    stopped_at_ = now;
    if (stop_counter_ != nullptr) {
      stop_counter_->add();
    }
  }
}

std::string DfpEngine::describe() const {
  std::ostringstream oss;
  oss << "DfpEngine{predictor=" << predictor_->name()
      << ", load_length=" << params_.predictor.load_length
      << ", stop=" << (params_.stop_enabled ? "on" : "off")
      << ", hits=" << predictor_->hits()
      << ", misses=" << predictor_->misses()
      << ", PreloadCounter=" << list_.preload_counter()
      << ", AccPreloadCounter=" << list_.acc_preload_counter()
      << ", stopped=" << (stopped_ ? "yes" : "no");
  if (health_.has_value()) {
    oss << ", " << health_->describe();
  }
  oss << "}";
  return oss.str();
}

void DfpEngine::reset() {
  predictor_->reset();
  list_.reset();
  if (health_.has_value()) {
    health_->reset();
  }
  stopped_ = false;
  stopped_at_ = 0;
  aborted_ = 0;
  shed_ = 0;
  depth_ = params_.predictor.load_length;
  last_preload_counter_ = 0;
  last_acc_counter_ = 0;
}

void DfpEngine::save(snapshot::Writer& w) const {
  w.str("dfp.predictor", predictor_->name());
  w.boolean("dfp.stopped", stopped_);
  w.u64("dfp.stopped_at", stopped_at_);
  w.u64("dfp.aborted", aborted_);
  w.u64("dfp.shed", shed_);
  w.u64("dfp.depth", depth_);
  w.u64("dfp.last_preload_counter", last_preload_counter_);
  w.u64("dfp.last_acc_counter", last_acc_counter_);
  w.boolean("dfp.has_health", health_.has_value());
  predictor_->save(w);
  list_.save(w);
  if (health_.has_value()) {
    health_->save(w);
  }
}

void DfpEngine::load(snapshot::Reader& r) {
  const std::string predictor = r.str("dfp.predictor");
  SGXPL_CHECK_MSG(predictor == predictor_->name(),
                  "snapshot was taken with predictor '"
                      << predictor << "' but this engine runs '"
                      << predictor_->name() << "'");
  stopped_ = r.boolean("dfp.stopped");
  stopped_at_ = r.u64("dfp.stopped_at");
  aborted_ = r.u64("dfp.aborted");
  shed_ = r.u64("dfp.shed");
  depth_ = r.u64("dfp.depth");
  SGXPL_CHECK_MSG(depth_ > 0, "snapshot holds zero preload depth");
  last_preload_counter_ = r.u64("dfp.last_preload_counter");
  last_acc_counter_ = r.u64("dfp.last_acc_counter");
  const bool has_health = r.boolean("dfp.has_health");
  SGXPL_CHECK_MSG(has_health == health_.has_value(),
                  "snapshot " << (has_health ? "includes" : "lacks")
                              << " a health monitor but this engine was "
                                 "configured the other way");
  predictor_->load(r);
  list_.load(r);
  if (health_.has_value()) {
    health_->load(r);
  }
}

}  // namespace sgxpl::dfp
