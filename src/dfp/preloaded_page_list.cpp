#include "dfp/preloaded_page_list.h"

namespace sgxpl::dfp {

void PreloadedPageList::on_loaded(PageNum page) {
  pages_.insert(page);
  ++preload_counter_;
}

void PreloadedPageList::on_evicted(PageNum page) {
  if (pages_.erase(page) > 0) {
    ++evicted_unused_;
  }
}

std::uint64_t PreloadedPageList::scan(const sgxsim::PageTable& pt) {
  std::uint64_t credited = 0;
  for (auto it = pages_.begin(); it != pages_.end();) {
    const PageNum page = *it;
    if (page >= pt.elrange_pages() || !pt.present(page)) {
      // Evicted between notifications; treat as unused (conservative).
      it = pages_.erase(it);
      ++evicted_unused_;
      continue;
    }
    const auto& entry = pt.entry(page);
    if (entry.accessed || !entry.preloaded) {
      // The access bit is set, or the hardware already cleared the
      // preloaded flag on first touch (the bit may have been consumed by a
      // CLOCK sweep since): the preload paid off.
      ++acc_preload_counter_;
      ++credited;
      it = pages_.erase(it);
    } else {
      ++it;
    }
  }
  return credited;
}

void PreloadedPageList::reset() {
  pages_.clear();
  preload_counter_ = 0;
  acc_preload_counter_ = 0;
  evicted_unused_ = 0;
}

}  // namespace sgxpl::dfp
