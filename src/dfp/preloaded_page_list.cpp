#include "dfp/preloaded_page_list.h"

#include <algorithm>
#include <vector>

#include "snapshot/codec.h"

namespace sgxpl::dfp {

void PreloadedPageList::on_loaded(PageNum page) {
  pages_.insert(page);
  ++preload_counter_;
}

void PreloadedPageList::on_evicted(PageNum page) {
  if (pages_.erase(page) > 0) {
    ++evicted_unused_;
  }
}

std::uint64_t PreloadedPageList::scan(const sgxsim::PageTable& pt) {
  std::uint64_t credited = 0;
  for (auto it = pages_.begin(); it != pages_.end();) {
    const PageNum page = *it;
    if (page >= pt.elrange_pages() || !pt.present(page)) {
      // Evicted between notifications; treat as unused (conservative).
      it = pages_.erase(it);
      ++evicted_unused_;
      continue;
    }
    const auto& entry = pt.entry(page);
    if (entry.accessed || !entry.preloaded) {
      // The access bit is set, or the hardware already cleared the
      // preloaded flag on first touch (the bit may have been consumed by a
      // CLOCK sweep since): the preload paid off.
      ++acc_preload_counter_;
      ++credited;
      it = pages_.erase(it);
    } else {
      ++it;
    }
  }
  return credited;
}

void PreloadedPageList::reset() {
  pages_.clear();
  preload_counter_ = 0;
  acc_preload_counter_ = 0;
  evicted_unused_ = 0;
}

void PreloadedPageList::save(snapshot::Writer& w) const {
  w.u64("ppl.preload_counter", preload_counter_);
  w.u64("ppl.acc_preload_counter", acc_preload_counter_);
  w.u64("ppl.evicted_unused", evicted_unused_);
  std::vector<std::uint64_t> pages(pages_.begin(), pages_.end());
  std::sort(pages.begin(), pages.end());
  w.u64_vec("ppl.pages", pages);
}

void PreloadedPageList::load(snapshot::Reader& r) {
  preload_counter_ = r.u64("ppl.preload_counter");
  acc_preload_counter_ = r.u64("ppl.acc_preload_counter");
  evicted_unused_ = r.u64("ppl.evicted_unused");
  const std::vector<std::uint64_t> pages = r.u64_vec("ppl.pages");
  pages_.clear();
  pages_.reserve(pages.size());
  pages_.insert(pages.begin(), pages.end());
}

}  // namespace sgxpl::dfp
