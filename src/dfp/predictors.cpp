#include "dfp/predictors.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "dfp/stream_predictor.h"
#include "snapshot/codec.h"

namespace sgxpl::dfp {

void PagePredictor::save(snapshot::Writer& /*w*/) const {}
void PagePredictor::load(snapshot::Reader& /*r*/) {}

// --- NextNPredictor --------------------------------------------------------

NextNPredictor::NextNPredictor(std::uint64_t depth) : depth_(depth) {
  SGXPL_CHECK(depth > 0);
}

std::vector<PageNum> NextNPredictor::on_fault(ProcessId /*pid*/,
                                              PageNum page) {
  ++hits_;
  std::vector<PageNum> out;
  out.reserve(depth_);
  for (std::uint64_t i = 1; i <= depth_; ++i) {
    out.push_back(page + i);
  }
  return out;
}

void NextNPredictor::save(snapshot::Writer& w) const {
  w.u64("nextn.hits", hits_);
}

void NextNPredictor::load(snapshot::Reader& r) { hits_ = r.u64("nextn.hits"); }

// --- StridePredictor -------------------------------------------------------

StridePredictor::StridePredictor(std::uint64_t depth, std::uint32_t confidence)
    : depth_(depth), confidence_(confidence) {
  SGXPL_CHECK(depth > 0);
  SGXPL_CHECK(confidence > 0);
}

std::vector<PageNum> StridePredictor::on_fault(ProcessId pid, PageNum page) {
  auto& st = state_[pid];
  std::vector<PageNum> out;
  if (st.last != kInvalidPage) {
    const auto stride = static_cast<std::int64_t>(page) -
                        static_cast<std::int64_t>(st.last);
    if (stride != 0 && stride == st.stride) {
      st.streak = st.streak < confidence_ ? st.streak + 1 : st.streak;
    } else {
      st.stride = stride;
      st.streak = 1;
    }
    if (st.stride != 0 && st.streak >= confidence_) {
      out.reserve(depth_);
      std::int64_t p = static_cast<std::int64_t>(page);
      for (std::uint64_t i = 0; i < depth_; ++i) {
        p += st.stride;
        if (p < 0) {
          break;
        }
        out.push_back(static_cast<PageNum>(p));
      }
    }
  }
  st.last = page;
  if (out.empty()) {
    ++misses_;
  } else {
    ++hits_;
  }
  return out;
}

void StridePredictor::reset() {
  state_.clear();
  hits_ = 0;
  misses_ = 0;
}

void StridePredictor::save(snapshot::Writer& w) const {
  w.u64("stride.hits", hits_);
  w.u64("stride.misses", misses_);
  std::vector<std::uint64_t> pids;
  pids.reserve(state_.size());
  for (const auto& [pid, st] : state_) pids.push_back(pid);
  std::sort(pids.begin(), pids.end());
  std::vector<std::uint64_t> lasts, strides, streaks;
  for (std::uint64_t pid : pids) {
    const State& st = state_.at(static_cast<ProcessId>(pid));
    lasts.push_back(st.last);
    strides.push_back(std::bit_cast<std::uint64_t>(st.stride));
    streaks.push_back(st.streak);
  }
  w.u64_vec("stride.pids", pids);
  w.u64_vec("stride.lasts", lasts);
  w.u64_vec("stride.strides", strides);
  w.u64_vec("stride.streaks", streaks);
}

void StridePredictor::load(snapshot::Reader& r) {
  hits_ = r.u64("stride.hits");
  misses_ = r.u64("stride.misses");
  const std::vector<std::uint64_t> pids = r.u64_vec("stride.pids");
  const std::vector<std::uint64_t> lasts = r.u64_vec("stride.lasts");
  const std::vector<std::uint64_t> strides = r.u64_vec("stride.strides");
  const std::vector<std::uint64_t> streaks = r.u64_vec("stride.streaks");
  SGXPL_CHECK_MSG(pids.size() == lasts.size() && pids.size() == strides.size() &&
                      pids.size() == streaks.size(),
                  "snapshot stride-predictor columns are misaligned");
  state_.clear();
  for (std::size_t i = 0; i < pids.size(); ++i) {
    State st;
    st.last = lasts[i];
    st.stride = std::bit_cast<std::int64_t>(strides[i]);
    st.streak = static_cast<std::uint32_t>(streaks[i]);
    state_[static_cast<ProcessId>(pids[i])] = st;
  }
}

// --- MarkovPredictor -------------------------------------------------------

MarkovPredictor::MarkovPredictor(std::uint64_t depth, std::size_t capacity)
    : depth_(depth), capacity_(capacity) {
  SGXPL_CHECK(depth > 0);
  SGXPL_CHECK(capacity > 0);
}

void MarkovPredictor::record(PageNum from, PageNum to) {
  auto it = table_.find(from);
  if (it == table_.end()) {
    if (table_.size() >= capacity_) {
      return;  // table full: stop learning new sources (bounded memory)
    }
    it = table_.emplace(from, Successors{}).first;
  }
  auto& s = it->second;
  // Bump an existing successor, fill a free slot, or displace the weakest.
  std::size_t weakest = 0;
  for (std::size_t i = 0; i < kFanout; ++i) {
    if (s.page[i] == to) {
      ++s.count[i];
      return;
    }
    if (s.page[i] == kInvalidPage) {
      s.page[i] = to;
      s.count[i] = 1;
      return;
    }
    if (s.count[i] < s.count[weakest]) {
      weakest = i;
    }
  }
  if (s.count[weakest] <= 1) {
    s.page[weakest] = to;
    s.count[weakest] = 1;
  } else {
    --s.count[weakest];  // age out slowly rather than thrash
  }
}

PageNum MarkovPredictor::best_successor(PageNum from) const {
  const auto it = table_.find(from);
  if (it == table_.end()) {
    return kInvalidPage;
  }
  const auto& s = it->second;
  PageNum best = kInvalidPage;
  std::uint32_t best_count = 1;  // require count >= 2: one sighting is noise
  for (std::size_t i = 0; i < kFanout; ++i) {
    if (s.page[i] != kInvalidPage && s.count[i] > best_count) {
      best = s.page[i];
      best_count = s.count[i];
    }
  }
  return best;
}

std::vector<PageNum> MarkovPredictor::on_fault(ProcessId pid, PageNum page) {
  const auto it = last_fault_.find(pid);
  if (it != last_fault_.end()) {
    record(it->second, page);
    it->second = page;
  } else {
    last_fault_.emplace(pid, page);
  }

  std::vector<PageNum> out;
  PageNum cur = page;
  for (std::uint64_t i = 0; i < depth_; ++i) {
    const PageNum next = best_successor(cur);
    if (next == kInvalidPage) {
      break;
    }
    if (std::find(out.begin(), out.end(), next) != out.end()) {
      break;  // cycle in the chain
    }
    out.push_back(next);
    cur = next;
  }
  if (out.empty()) {
    ++misses_;
  } else {
    ++hits_;
  }
  return out;
}

void MarkovPredictor::reset() {
  table_.clear();
  last_fault_.clear();
  hits_ = 0;
  misses_ = 0;
}

void MarkovPredictor::save(snapshot::Writer& w) const {
  w.u64("markov.hits", hits_);
  w.u64("markov.misses", misses_);
  std::vector<std::uint64_t> pids;
  pids.reserve(last_fault_.size());
  for (const auto& [pid, page] : last_fault_) pids.push_back(pid);
  std::sort(pids.begin(), pids.end());
  std::vector<std::uint64_t> last_pages;
  for (std::uint64_t pid : pids) {
    last_pages.push_back(last_fault_.at(static_cast<ProcessId>(pid)));
  }
  w.u64_vec("markov.pids", pids);
  w.u64_vec("markov.last_pages", last_pages);
  std::vector<std::uint64_t> froms;
  froms.reserve(table_.size());
  for (const auto& [from, s] : table_) froms.push_back(from);
  std::sort(froms.begin(), froms.end());
  std::vector<std::uint64_t> successors, counts;
  successors.reserve(froms.size() * kFanout);
  counts.reserve(froms.size() * kFanout);
  for (std::uint64_t from : froms) {
    const Successors& s = table_.at(from);
    for (std::size_t i = 0; i < kFanout; ++i) {
      successors.push_back(s.page[i]);
      counts.push_back(s.count[i]);
    }
  }
  w.u64_vec("markov.froms", froms);
  w.u64_vec("markov.successors", successors);
  w.u64_vec("markov.counts", counts);
}

void MarkovPredictor::load(snapshot::Reader& r) {
  hits_ = r.u64("markov.hits");
  misses_ = r.u64("markov.misses");
  const std::vector<std::uint64_t> pids = r.u64_vec("markov.pids");
  const std::vector<std::uint64_t> last_pages = r.u64_vec("markov.last_pages");
  SGXPL_CHECK_MSG(pids.size() == last_pages.size(),
                  "snapshot markov-predictor pid columns are misaligned");
  last_fault_.clear();
  for (std::size_t i = 0; i < pids.size(); ++i) {
    last_fault_[static_cast<ProcessId>(pids[i])] = last_pages[i];
  }
  const std::vector<std::uint64_t> froms = r.u64_vec("markov.froms");
  const std::vector<std::uint64_t> successors = r.u64_vec("markov.successors");
  const std::vector<std::uint64_t> counts = r.u64_vec("markov.counts");
  SGXPL_CHECK_MSG(successors.size() == froms.size() * kFanout &&
                      counts.size() == froms.size() * kFanout,
                  "snapshot markov-predictor table columns are misaligned");
  table_.clear();
  table_.reserve(froms.size());
  for (std::size_t i = 0; i < froms.size(); ++i) {
    Successors s;
    for (std::size_t j = 0; j < kFanout; ++j) {
      s.page[j] = successors[i * kFanout + j];
      s.count[j] = static_cast<std::uint32_t>(counts[i * kFanout + j]);
    }
    table_.emplace(froms[i], s);
  }
}

// --- TournamentPredictor ---------------------------------------------------

TournamentPredictor::TournamentPredictor(
    std::vector<std::unique_ptr<PagePredictor>> subs, std::size_t score_window)
    : score_window_(score_window) {
  SGXPL_CHECK_MSG(!subs.empty(), "tournament needs at least one predictor");
  entries_.reserve(subs.size());
  for (auto& s : subs) {
    Entry e;
    e.sub = std::move(s);
    entries_.push_back(std::move(e));
  }
}

void TournamentPredictor::remember(Entry& e,
                                   const std::vector<PageNum>& pages) {
  for (const PageNum p : pages) {
    if (e.predicted.insert(p).second) {
      e.order.push_back(p);
      if (e.order.size() > score_window_) {
        e.predicted.erase(e.order.front());
        e.order.pop_front();
      }
    }
  }
}

std::size_t TournamentPredictor::leader() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].score > entries_[best].score) {
      best = i;
    }
  }
  return best;
}

std::vector<PageNum> TournamentPredictor::on_fault(ProcessId pid,
                                                   PageNum page) {
  // Score first: did anyone predict this fault recently?
  constexpr double kDecay = 0.995;
  for (auto& e : entries_) {
    e.score = e.score * kDecay + (e.predicted.count(page) ? 1.0 : 0.0);
  }
  // Every sub keeps learning; the leader's picks are emitted.
  const std::size_t lead = leader();
  std::vector<PageNum> out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    auto picks = entries_[i].sub->on_fault(pid, page);
    remember(entries_[i], picks);
    if (i == lead) {
      out = std::move(picks);
    }
  }
  if (out.empty()) {
    ++misses_;
  } else {
    ++hits_;
  }
  return out;
}

void TournamentPredictor::reset() {
  for (auto& e : entries_) {
    e.sub->reset();
    e.predicted.clear();
    e.order.clear();
    e.score = 0.0;
  }
  hits_ = 0;
  misses_ = 0;
}

void TournamentPredictor::save(snapshot::Writer& w) const {
  w.u64("tournament.hits", hits_);
  w.u64("tournament.misses", misses_);
  w.u64("tournament.subs", entries_.size());
  for (const auto& e : entries_) {
    e.sub->save(w);
    std::vector<std::uint64_t> order(e.order.begin(), e.order.end());
    w.u64_vec("tournament.sub.order", order);
    w.f64("tournament.sub.score", e.score);
  }
}

void TournamentPredictor::load(snapshot::Reader& r) {
  hits_ = r.u64("tournament.hits");
  misses_ = r.u64("tournament.misses");
  const std::uint64_t subs = r.u64("tournament.subs");
  SGXPL_CHECK_MSG(subs == entries_.size(),
                  "snapshot tournament has " << subs
                      << " sub-predictors but this one has "
                      << entries_.size());
  for (auto& e : entries_) {
    e.sub->load(r);
    const std::vector<std::uint64_t> order = r.u64_vec("tournament.sub.order");
    e.order.assign(order.begin(), order.end());
    e.predicted.clear();
    e.predicted.insert(order.begin(), order.end());
    e.score = r.f64("tournament.sub.score");
  }
}

std::unique_ptr<TournamentPredictor> make_default_tournament(
    std::uint64_t load_length) {
  std::vector<std::unique_ptr<PagePredictor>> subs;
  StreamPredictorParams sp;
  sp.load_length = load_length;
  subs.push_back(std::make_unique<StreamPredictor>(sp));
  subs.push_back(std::make_unique<StridePredictor>(load_length));
  subs.push_back(std::make_unique<MarkovPredictor>(load_length));
  return std::make_unique<TournamentPredictor>(std::move(subs));
}

}  // namespace sgxpl::dfp
