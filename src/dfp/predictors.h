// Alternative page-access predictors for DFP (§4.1: "many complex
// strategies can be implemented").
//
//   NextNPredictor    unconditional readahead: always preload the next N
//                     pages after any fault (the Linux readahead baseline).
//   StridePredictor   detects constant page strides per process with a
//                     confidence counter; catches the wrong-dimension grid
//                     sweeps Algorithm 1 is blind to.
//   MarkovPredictor   first-order fault-transition table: learns which
//                     page tends to fault after which, capturing repeated
//                     pointer chains and loop orders.
//   TournamentPredictor  runs several sub-predictors, scores them online by
//                     whether later faults land in their recent
//                     predictions, and emits the current leader's picks.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "dfp/predictor.h"

namespace sgxpl::dfp {

class NextNPredictor final : public PagePredictor {
 public:
  explicit NextNPredictor(std::uint64_t depth);

  std::vector<PageNum> on_fault(ProcessId pid, PageNum page) override;
  std::uint64_t hits() const noexcept override { return hits_; }
  std::uint64_t misses() const noexcept override { return 0; }
  const char* name() const noexcept override { return "next-n"; }
  void reset() override { hits_ = 0; }
  void save(snapshot::Writer& w) const override;
  void load(snapshot::Reader& r) override;

 private:
  std::uint64_t depth_;
  std::uint64_t hits_ = 0;
};

class StridePredictor final : public PagePredictor {
 public:
  /// Predict `depth` pages along the detected stride once the same stride
  /// has been observed `confidence` times in a row.
  StridePredictor(std::uint64_t depth, std::uint32_t confidence = 2);

  std::vector<PageNum> on_fault(ProcessId pid, PageNum page) override;
  std::uint64_t hits() const noexcept override { return hits_; }
  std::uint64_t misses() const noexcept override { return misses_; }
  const char* name() const noexcept override { return "stride"; }
  void reset() override;
  void save(snapshot::Writer& w) const override;
  void load(snapshot::Reader& r) override;

 private:
  struct State {
    PageNum last = kInvalidPage;
    std::int64_t stride = 0;
    std::uint32_t streak = 0;
  };
  std::uint64_t depth_;
  std::uint32_t confidence_;
  std::unordered_map<ProcessId, State> state_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

class MarkovPredictor final : public PagePredictor {
 public:
  /// Remember up to `capacity` source pages; per source keep the top
  /// successors (up to kFanout) by count; predict a greedy chain of up to
  /// `depth` pages from the strongest successors.
  MarkovPredictor(std::uint64_t depth, std::size_t capacity = 1 << 20);

  std::vector<PageNum> on_fault(ProcessId pid, PageNum page) override;
  std::uint64_t hits() const noexcept override { return hits_; }
  std::uint64_t misses() const noexcept override { return misses_; }
  const char* name() const noexcept override { return "markov"; }
  void reset() override;
  void save(snapshot::Writer& w) const override;
  void load(snapshot::Reader& r) override;

  std::size_t table_size() const noexcept { return table_.size(); }

 private:
  static constexpr std::size_t kFanout = 4;
  struct Successors {
    std::array<PageNum, kFanout> page;
    std::array<std::uint32_t, kFanout> count;
    Successors() {
      page.fill(kInvalidPage);
      count.fill(0);
    }
  };

  void record(PageNum from, PageNum to);
  PageNum best_successor(PageNum from) const;

  std::uint64_t depth_;
  std::size_t capacity_;
  std::unordered_map<ProcessId, PageNum> last_fault_;
  std::unordered_map<PageNum, Successors> table_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

class TournamentPredictor final : public PagePredictor {
 public:
  /// Owns the sub-predictors. `score_window` bounds the per-sub set of
  /// recently predicted pages used for scoring.
  explicit TournamentPredictor(
      std::vector<std::unique_ptr<PagePredictor>> subs,
      std::size_t score_window = 256);

  std::vector<PageNum> on_fault(ProcessId pid, PageNum page) override;
  std::uint64_t hits() const noexcept override { return hits_; }
  std::uint64_t misses() const noexcept override { return misses_; }
  const char* name() const noexcept override { return "tournament"; }
  void reset() override;
  /// Recurses into every sub-predictor; the per-sub recent-prediction sets
  /// are serialized via their aging queues (the sets are rebuilt on load).
  void save(snapshot::Writer& w) const override;
  void load(snapshot::Reader& r) override;

  /// Index of the currently leading sub-predictor.
  std::size_t leader() const noexcept;
  const PagePredictor& sub(std::size_t i) const { return *entries_[i].sub; }
  std::size_t subs() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::unique_ptr<PagePredictor> sub;
    // Recent predictions, as both a set (membership) and queue (aging).
    std::unordered_set<PageNum> predicted;
    std::deque<PageNum> order;
    double score = 0.0;  // exponentially decayed accuracy
  };

  void remember(Entry& e, const std::vector<PageNum>& pages);

  std::vector<Entry> entries_;
  std::size_t score_window_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// The default tournament: multi-stream + stride + markov.
std::unique_ptr<TournamentPredictor> make_default_tournament(
    std::uint64_t load_length);

}  // namespace sgxpl::dfp
