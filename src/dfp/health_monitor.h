// Graceful-degradation health monitor for the DFP engine.
//
// The paper's DFP-stop valve (§4.2) is one-way: once the used fraction of
// preloads drops below the threshold, preloading is off for the rest of the
// run. That is the right call for a persistently hostile workload, but a
// *transient* disturbance — a chaos-injected predictor wipe, an EPC
// squeeze, a phase change — also trips it, and the run then pays baseline
// fault costs forever. The monitor generalizes the valve into a hysteresis
// state machine:
//
//   kPreloading --(windowed stop rule / abort-rate trigger)--> kStopped
//   kStopped    --(recovery window, exponential backoff)-----> kProbation
//   kProbation  --(window healthy)--> kPreloading   (backoff resets)
//               --(window unhealthy)--> kStopped    (backoff doubles)
//
// The stop rule is the paper's formula applied to the counter window since
// the current state was entered (snapshots at entry start at zero, so until
// the first stop it is exactly the paper's lifetime rule). The abort-rate
// trigger additionally stops streams that keep getting flushed by demand
// faults before they commit — preloads that never land cannot be judged by
// the used fraction alone.
//
// The driver-side degradation ladder (sgxsim/admission.h) generalizes this
// two-state machine to a per-tenant four-level ladder driven by channel
// admission/retry evidence instead of preload usefulness; the two compose —
// this monitor judges *prediction quality*, the ladder judges *channel
// health*.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "snapshot/fwd.h"

namespace sgxpl::obs {
class MetricsRegistry;
class TimeSeriesSet;
}  // namespace sgxpl::obs

namespace sgxpl::dfp {

struct HealthParams {
  /// Off by default: the engine then runs the paper's plain one-way valve.
  bool enabled = false;

  /// Windowed form of the paper's stop rule: stop when, over the window,
  /// used + stop_slack < loaded * stop_used_fraction.
  std::uint64_t stop_slack = 256;
  double stop_used_fraction = 0.5;

  /// Abort-rate trigger: stop when aborted / (loaded + aborted) over the
  /// window exceeds this fraction.
  double max_abort_fraction = 0.75;

  /// Evidence floor: a window is only judged once it has seen this many
  /// preload outcomes (loaded + aborted).
  std::uint64_t min_window_preloads = 32;

  /// Scans to stay stopped before probing again; doubles with each
  /// consecutive stop, capped at recovery_scans << max_backoff_exponent.
  std::uint64_t recovery_scans = 32;
  std::uint64_t max_backoff_exponent = 6;

  /// Probation length in scans. The probation window is judged by the same
  /// stop rule but with this (much smaller) slack — the lifetime stop_slack
  /// would swamp a 16-scan window and let a still-sick stream pass. A
  /// window that is unhealthy fails immediately; a window that is
  /// affirmatively healthy resumes and resets the backoff; an inconclusive
  /// window (too few outcomes to judge) resumes but keeps the backoff, so a
  /// repeat offender still waits exponentially longer each round.
  std::uint64_t probation_scans = 16;
  std::uint64_t probation_slack = 16;
};

enum class HealthState : std::uint8_t {
  kPreloading,  // preloads on, window watched
  kStopped,     // preloads off, waiting out the recovery window
  kProbation,   // preloads on trial
};

const char* to_string(HealthState s) noexcept;

class HealthMonitor {
 public:
  explicit HealthMonitor(const HealthParams& params);

  HealthState state() const noexcept { return state_; }
  bool preloads_allowed() const noexcept {
    return state_ != HealthState::kStopped;
  }

  std::uint64_t stops() const noexcept { return stops_; }
  std::uint64_t resumes() const noexcept { return resumes_; }
  std::uint64_t consecutive_stops() const noexcept {
    return consecutive_stops_;
  }
  Cycles last_stop_at() const noexcept { return last_stop_at_; }

  /// Feed one service-thread scan: the engine's *cumulative* counters
  /// (preloads landed, preloads observed used, preloads aborted) at `now`.
  /// Drives all state transitions.
  void on_scan(std::uint64_t preload_counter, std::uint64_t acc_counter,
               std::uint64_t aborted, Cycles now);

  /// Optional time-series sink: per-scan "dfp.health.state" curve
  /// (0 = preloading, 1 = stopped, 2 = probation).
  void set_observability(obs::TimeSeriesSet* ts) noexcept { series_ = ts; }

  /// Flush end-of-run counters under "dfp.health.".
  void publish(obs::MetricsRegistry& reg) const;

  std::string describe() const;

  void reset();

  /// Checkpoint/restore of the full state machine, including the backoff
  /// counters and the counter snapshots taken at state entry.
  void save(snapshot::Writer& w) const;
  void load(snapshot::Reader& r);

 private:
  enum class Verdict : std::uint8_t { kHealthy, kInconclusive, kUnhealthy };

  void enter(HealthState next, std::uint64_t preload_counter,
             std::uint64_t acc_counter, std::uint64_t aborted, Cycles now);
  /// Current backoff in scans: recovery_scans * 2^min(stops-1, cap).
  std::uint64_t backoff_scans() const noexcept;
  /// Apply the stop rule + abort trigger to the window since state entry.
  Verdict judge_window(std::uint64_t preload_counter,
                       std::uint64_t acc_counter, std::uint64_t aborted,
                       std::uint64_t slack) const noexcept;

  HealthParams params_;
  HealthState state_ = HealthState::kPreloading;
  std::uint64_t scans_in_state_ = 0;
  // Counter snapshots taken when the current state was entered.
  std::uint64_t entry_preloads_ = 0;
  std::uint64_t entry_acc_ = 0;
  std::uint64_t entry_aborted_ = 0;

  std::uint64_t stops_ = 0;
  std::uint64_t resumes_ = 0;
  std::uint64_t consecutive_stops_ = 0;
  Cycles last_stop_at_ = 0;

  obs::TimeSeriesSet* series_ = nullptr;  // not owned; may be null
};

}  // namespace sgxpl::dfp
