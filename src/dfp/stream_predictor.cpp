#include "dfp/stream_predictor.h"

#include <algorithm>

#include "common/check.h"
#include "snapshot/codec.h"

namespace sgxpl::dfp {

StreamPredictor::StreamPredictor(StreamPredictorParams params)
    : params_(params) {
  SGXPL_CHECK_MSG(params_.stream_list_len > 0, "stream_list must be nonempty");
}

StreamPredictor::StreamList& StreamPredictor::list_for(ProcessId pid) {
  return lists_[pid];
}

std::vector<PageNum> StreamPredictor::on_fault(ProcessId pid, PageNum npn) {
  StreamList& list = list_for(pid);

  for (auto it = list.begin(); it != list.end(); ++it) {
    const bool forward = npn == it->stpn + 1;
    const bool backward =
        params_.detect_backward && it->stpn > 0 && npn == it->stpn - 1;
    if (!forward && !backward) {
      continue;
    }
    // Stream hit: extend, promote to MRU, predict the next LOADLENGTH pages.
    ++hits_;
    it->direction = forward ? +1 : -1;
    it->stpn = npn;
    list.splice(list.begin(), list, it);

    std::vector<PageNum> to_load;
    to_load.reserve(params_.load_length);
    PageNum p = npn;
    for (std::uint64_t i = 0; i < params_.load_length; ++i) {
      if (it->direction > 0) {
        ++p;
      } else {
        if (p == 0) break;
        --p;
      }
      to_load.push_back(p);
    }
    return to_load;
  }

  // Miss: replace the LRU tail (or grow until the fixed length is reached)
  // and promote the new stream seed to MRU.
  ++misses_;
  if (list.size() >= params_.stream_list_len) {
    list.back().stpn = npn;
    list.back().direction = +1;
    list.splice(list.begin(), list, std::prev(list.end()));
  } else {
    list.push_front(StreamEntry{.stpn = npn, .direction = +1});
  }
  return {};
}

bool StreamPredictor::on_stream_list(ProcessId pid, PageNum page) const {
  const auto it = lists_.find(pid);
  if (it == lists_.end()) {
    return false;
  }
  for (const auto& e : it->second) {
    if (e.stpn == page) {
      return true;
    }
  }
  return false;
}

bool StreamPredictor::follows_stream(ProcessId pid, PageNum page) const {
  const auto it = lists_.find(pid);
  if (it == lists_.end()) {
    return false;
  }
  for (const auto& e : it->second) {
    if (page == e.stpn + 1) {
      return true;
    }
    if (params_.detect_backward && e.stpn > 0 && page == e.stpn - 1) {
      return true;
    }
  }
  return false;
}

std::size_t StreamPredictor::stream_count(ProcessId pid) const {
  const auto it = lists_.find(pid);
  return it == lists_.end() ? 0 : it->second.size();
}

void StreamPredictor::reset() {
  lists_.clear();
  hits_ = 0;
  misses_ = 0;
}

void StreamPredictor::save(snapshot::Writer& w) const {
  w.u64("stream.hits", hits_);
  w.u64("stream.misses", misses_);
  std::vector<std::uint64_t> pids;
  pids.reserve(lists_.size());
  for (const auto& [pid, list] : lists_) pids.push_back(pid);
  std::sort(pids.begin(), pids.end());
  // Flattened per-pid lists: lengths line up with pids; tails/directions
  // are concatenated MRU-first.
  std::vector<std::uint64_t> lengths, stpns, directions;
  for (std::uint64_t pid : pids) {
    const StreamList& list = lists_.at(static_cast<ProcessId>(pid));
    lengths.push_back(list.size());
    for (const auto& e : list) {
      stpns.push_back(e.stpn);
      directions.push_back(e.direction > 0 ? 1u : 0u);
    }
  }
  w.u64_vec("stream.pids", pids);
  w.u64_vec("stream.lengths", lengths);
  w.u64_vec("stream.stpns", stpns);
  w.u64_vec("stream.directions", directions);
}

void StreamPredictor::load(snapshot::Reader& r) {
  hits_ = r.u64("stream.hits");
  misses_ = r.u64("stream.misses");
  const std::vector<std::uint64_t> pids = r.u64_vec("stream.pids");
  const std::vector<std::uint64_t> lengths = r.u64_vec("stream.lengths");
  const std::vector<std::uint64_t> stpns = r.u64_vec("stream.stpns");
  const std::vector<std::uint64_t> directions = r.u64_vec("stream.directions");
  SGXPL_CHECK_MSG(pids.size() == lengths.size() &&
                      stpns.size() == directions.size(),
                  "snapshot stream-predictor columns are misaligned");
  lists_.clear();
  std::size_t at = 0;
  for (std::size_t i = 0; i < pids.size(); ++i) {
    StreamList& list = lists_[static_cast<ProcessId>(pids[i])];
    SGXPL_CHECK_MSG(at + lengths[i] <= stpns.size(),
                    "snapshot stream-predictor lists overrun their entries");
    for (std::uint64_t j = 0; j < lengths[i]; ++j, ++at) {
      list.push_back(StreamEntry{.stpn = stpns[at],
                                 .direction = directions[at] != 0 ? +1 : -1});
    }
  }
  SGXPL_CHECK_MSG(at == stpns.size(),
                  "snapshot stream-predictor entries left over after load");
}

}  // namespace sgxpl::dfp
