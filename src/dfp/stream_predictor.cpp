#include "dfp/stream_predictor.h"

#include "common/check.h"

namespace sgxpl::dfp {

StreamPredictor::StreamPredictor(StreamPredictorParams params)
    : params_(params) {
  SGXPL_CHECK_MSG(params_.stream_list_len > 0, "stream_list must be nonempty");
}

StreamPredictor::StreamList& StreamPredictor::list_for(ProcessId pid) {
  return lists_[pid];
}

std::vector<PageNum> StreamPredictor::on_fault(ProcessId pid, PageNum npn) {
  StreamList& list = list_for(pid);

  for (auto it = list.begin(); it != list.end(); ++it) {
    const bool forward = npn == it->stpn + 1;
    const bool backward =
        params_.detect_backward && it->stpn > 0 && npn == it->stpn - 1;
    if (!forward && !backward) {
      continue;
    }
    // Stream hit: extend, promote to MRU, predict the next LOADLENGTH pages.
    ++hits_;
    it->direction = forward ? +1 : -1;
    it->stpn = npn;
    list.splice(list.begin(), list, it);

    std::vector<PageNum> to_load;
    to_load.reserve(params_.load_length);
    PageNum p = npn;
    for (std::uint64_t i = 0; i < params_.load_length; ++i) {
      if (it->direction > 0) {
        ++p;
      } else {
        if (p == 0) break;
        --p;
      }
      to_load.push_back(p);
    }
    return to_load;
  }

  // Miss: replace the LRU tail (or grow until the fixed length is reached)
  // and promote the new stream seed to MRU.
  ++misses_;
  if (list.size() >= params_.stream_list_len) {
    list.back().stpn = npn;
    list.back().direction = +1;
    list.splice(list.begin(), list, std::prev(list.end()));
  } else {
    list.push_front(StreamEntry{.stpn = npn, .direction = +1});
  }
  return {};
}

bool StreamPredictor::on_stream_list(ProcessId pid, PageNum page) const {
  const auto it = lists_.find(pid);
  if (it == lists_.end()) {
    return false;
  }
  for (const auto& e : it->second) {
    if (e.stpn == page) {
      return true;
    }
  }
  return false;
}

bool StreamPredictor::follows_stream(ProcessId pid, PageNum page) const {
  const auto it = lists_.find(pid);
  if (it == lists_.end()) {
    return false;
  }
  for (const auto& e : it->second) {
    if (page == e.stpn + 1) {
      return true;
    }
    if (params_.detect_backward && e.stpn > 0 && page == e.stpn - 1) {
      return true;
    }
  }
  return false;
}

std::size_t StreamPredictor::stream_count(ProcessId pid) const {
  const auto it = lists_.find(pid);
  return it == lists_.end() ? 0 : it->second.size();
}

void StreamPredictor::reset() {
  lists_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace sgxpl::dfp
