// Algorithm 1 of the paper: the multiple-stream predictor.
//
// The driver records the stream of faulted page numbers per process. A
// fixed-length LRU list of stream tails (stpn = stream tail page number) is
// kept; when a new fault's page number (npn) directly follows one of the
// tails, that stream is extended, moved to the MRU position, and the next
// LOADLENGTH pages in the stream's direction are predicted for preloading.
// Otherwise the LRU entry is replaced, seeding a new potential stream.
// This mirrors the read-ahead design of the Linux VFS the paper cites.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "dfp/predictor.h"

namespace sgxpl::dfp {

struct StreamPredictorParams {
  /// Fixed length of stream_list (Fig. 6 sweeps this; paper default 30).
  std::size_t stream_list_len = 30;
  /// LOADLENGTH: pages preloaded per stream hit (Fig. 7; paper default 4).
  std::uint64_t load_length = 4;
  /// Recognize descending streams too (the `direction` field of
  /// Algorithm 1's add_to_list). Off = forward-only, for ablation.
  bool detect_backward = true;
};

class StreamPredictor final : public PagePredictor {
 public:
  explicit StreamPredictor(StreamPredictorParams params);

  /// Feed one fault; returns the pages to preload (possibly empty), nearest
  /// first. The same routine classifies accesses for SIP profiling, where it
  /// is fed every access rather than only faults (§4.4).
  std::vector<PageNum> on_fault(ProcessId pid, PageNum npn) override;

  /// True if `page` is currently one of the stream tails for `pid`
  /// (SIP profiling Class 1: "the page is on stream_list").
  bool on_stream_list(ProcessId pid, PageNum page) const;

  /// True if `page` directly follows one of the tails (Class 2).
  bool follows_stream(ProcessId pid, PageNum page) const;

  std::size_t stream_count(ProcessId pid) const;
  const StreamPredictorParams& params() const noexcept { return params_; }

  std::uint64_t hits() const noexcept override { return hits_; }
  std::uint64_t misses() const noexcept override { return misses_; }
  const char* name() const noexcept override { return "multi-stream"; }

  void reset() override;

  /// Checkpoint/restore of the per-process LRU stream lists (MRU-first
  /// order preserved exactly) and the hit/miss counters.
  void save(snapshot::Writer& w) const override;
  void load(snapshot::Reader& r) override;

 private:
  struct StreamEntry {
    PageNum stpn = kInvalidPage;
    int direction = +1;  // +1 ascending, -1 descending
  };
  // MRU at the front. stream_list_len is ~30, so linear scans beat any
  // index structure.
  using StreamList = std::list<StreamEntry>;

  StreamList& list_for(ProcessId pid);

  StreamPredictorParams params_;
  std::unordered_map<ProcessId, StreamList> lists_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sgxpl::dfp
