#include "dfp/health_monitor.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/time_series.h"
#include "snapshot/codec.h"

namespace sgxpl::dfp {

const char* to_string(HealthState s) noexcept {
  switch (s) {
    case HealthState::kPreloading:
      return "preloading";
    case HealthState::kStopped:
      return "stopped";
    case HealthState::kProbation:
      return "probation";
  }
  return "?";
}

HealthMonitor::HealthMonitor(const HealthParams& params) : params_(params) {
  SGXPL_CHECK(params_.recovery_scans > 0);
  SGXPL_CHECK(params_.probation_scans > 0);
  SGXPL_CHECK(params_.stop_used_fraction > 0.0 &&
              params_.stop_used_fraction <= 1.0);
  SGXPL_CHECK(params_.max_abort_fraction > 0.0 &&
              params_.max_abort_fraction <= 1.0);
}

std::uint64_t HealthMonitor::backoff_scans() const noexcept {
  const std::uint64_t shift =
      std::min(consecutive_stops_ > 0 ? consecutive_stops_ - 1 : 0,
               params_.max_backoff_exponent);
  return params_.recovery_scans << shift;
}

HealthMonitor::Verdict HealthMonitor::judge_window(
    std::uint64_t preload_counter, std::uint64_t acc_counter,
    std::uint64_t aborted, std::uint64_t slack) const noexcept {
  const std::uint64_t loaded = preload_counter - entry_preloads_;
  const std::uint64_t used = acc_counter - entry_acc_;
  const std::uint64_t flushed = aborted - entry_aborted_;
  if (loaded + flushed < params_.min_window_preloads) {
    return Verdict::kInconclusive;  // not enough outcomes to judge
  }
  // The paper's rule over the window: too many landed preloads never used.
  if (static_cast<double>(used) + static_cast<double>(slack) <
      static_cast<double>(loaded) * params_.stop_used_fraction) {
    return Verdict::kUnhealthy;
  }
  // Abort trigger: streams that keep getting flushed before committing.
  if (static_cast<double>(flushed) >
      static_cast<double>(loaded + flushed) * params_.max_abort_fraction) {
    return Verdict::kUnhealthy;
  }
  return Verdict::kHealthy;
}

void HealthMonitor::enter(HealthState next, std::uint64_t preload_counter,
                          std::uint64_t acc_counter, std::uint64_t aborted,
                          Cycles now) {
  state_ = next;
  scans_in_state_ = 0;
  entry_preloads_ = preload_counter;
  entry_acc_ = acc_counter;
  entry_aborted_ = aborted;
  if (next == HealthState::kStopped) {
    ++stops_;
    ++consecutive_stops_;
    last_stop_at_ = now;
  } else if (next == HealthState::kPreloading) {
    ++resumes_;
  }
}

void HealthMonitor::on_scan(std::uint64_t preload_counter,
                            std::uint64_t acc_counter, std::uint64_t aborted,
                            Cycles now) {
  ++scans_in_state_;
  switch (state_) {
    case HealthState::kPreloading:
      if (judge_window(preload_counter, acc_counter, aborted,
                       params_.stop_slack) == Verdict::kUnhealthy) {
        enter(HealthState::kStopped, preload_counter, acc_counter, aborted,
              now);
      }
      break;
    case HealthState::kStopped:
      if (scans_in_state_ >= backoff_scans()) {
        enter(HealthState::kProbation, preload_counter, acc_counter, aborted,
              now);
      }
      break;
    case HealthState::kProbation: {
      const Verdict v = judge_window(preload_counter, acc_counter, aborted,
                                     params_.probation_slack);
      if (v == Verdict::kUnhealthy) {
        // Fail fast: no need to sit out the rest of the probation window.
        enter(HealthState::kStopped, preload_counter, acc_counter, aborted,
              now);
      } else if (scans_in_state_ >= params_.probation_scans) {
        enter(HealthState::kPreloading, preload_counter, acc_counter, aborted,
              now);
        if (v == Verdict::kHealthy) {
          consecutive_stops_ = 0;  // affirmatively clean: backoff resets
        }
      }
      break;
    }
  }
  if (series_ != nullptr) {
    series_->series("dfp.health.state")
        .add(now, static_cast<double>(state_));
  }
}

void HealthMonitor::publish(obs::MetricsRegistry& reg) const {
  reg.counter("dfp.health.stops").add(stops_);
  reg.counter("dfp.health.resumes").add(resumes_);
  reg.gauge("dfp.health.state").set(static_cast<double>(state_));
}

std::string HealthMonitor::describe() const {
  std::ostringstream oss;
  oss << "HealthMonitor{state=" << to_string(state_) << ", stops=" << stops_
      << ", resumes=" << resumes_
      << ", consecutive_stops=" << consecutive_stops_
      << ", backoff_scans=" << backoff_scans() << "}";
  return oss.str();
}

void HealthMonitor::reset() {
  state_ = HealthState::kPreloading;
  scans_in_state_ = 0;
  entry_preloads_ = 0;
  entry_acc_ = 0;
  entry_aborted_ = 0;
  stops_ = 0;
  resumes_ = 0;
  consecutive_stops_ = 0;
  last_stop_at_ = 0;
}

void HealthMonitor::save(snapshot::Writer& w) const {
  w.u64("health.state", static_cast<std::uint64_t>(state_));
  w.u64("health.scans_in_state", scans_in_state_);
  w.u64("health.entry_preloads", entry_preloads_);
  w.u64("health.entry_acc", entry_acc_);
  w.u64("health.entry_aborted", entry_aborted_);
  w.u64("health.stops", stops_);
  w.u64("health.resumes", resumes_);
  w.u64("health.consecutive_stops", consecutive_stops_);
  w.u64("health.last_stop_at", last_stop_at_);
}

void HealthMonitor::load(snapshot::Reader& r) {
  const std::uint64_t state = r.u64("health.state");
  SGXPL_CHECK_MSG(
      state <= static_cast<std::uint64_t>(HealthState::kProbation),
      "snapshot health monitor holds invalid state " << state);
  state_ = static_cast<HealthState>(state);
  scans_in_state_ = r.u64("health.scans_in_state");
  entry_preloads_ = r.u64("health.entry_preloads");
  entry_acc_ = r.u64("health.entry_acc");
  entry_aborted_ = r.u64("health.entry_aborted");
  stops_ = r.u64("health.stops");
  resumes_ = r.u64("health.resumes");
  consecutive_stops_ = r.u64("health.consecutive_stops");
  last_stop_at_ = r.u64("health.last_stop_at");
}

}  // namespace sgxpl::dfp
