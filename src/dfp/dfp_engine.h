// The DFP preloading engine: wires the multiple-stream predictor and the
// misprediction abort machinery (§4.1-4.2) into the driver's PreloadPolicy
// hooks. Runs entirely on the untrusted side — no enclave code changes, no
// TCB growth.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "dfp/health_monitor.h"
#include "dfp/predictor.h"
#include "dfp/preloaded_page_list.h"
#include "dfp/stream_predictor.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/time_series.h"
#include "sgxsim/preload_policy.h"

namespace sgxpl::dfp {

/// Which predictor the engine runs (see predictors.h; the paper's DFP uses
/// the multiple-stream predictor).
enum class PredictorKind : std::uint8_t {
  kMultiStream,
  kNextN,
  kStride,
  kMarkov,
  kTournament,
};

const char* to_string(PredictorKind k) noexcept;

/// Inverse of to_string (exact spelling); nullopt for unknown names.
std::optional<PredictorKind> parse_predictor_kind(
    std::string_view name) noexcept;

struct DfpParams {
  PredictorKind kind = PredictorKind::kMultiStream;
  StreamPredictorParams predictor;
  /// Enable the DFP-stop safety valve (paper Fig. 8's "DFP-stop").
  bool stop_enabled = false;
  /// The paper stops when AccPreloadCounter + slack < PreloadCounter/2.
  /// Their empirical slack is 200000 (pages) for full SPEC runs; it scales
  /// with run length, so it is a parameter here (default tuned to our trace
  /// sizes, preserving the formula's shape).
  std::uint64_t stop_slack = 256;
  /// The "/2" of the paper's formula: stop when the used fraction of
  /// preloads drops below this value (beyond the slack).
  double stop_used_fraction = 0.5;

  /// Adaptive preload depth (extension of the Fig. 7 study): instead of a
  /// fixed LOADLENGTH, the engine re-tunes its depth at every service-thread
  /// scan from the observed used fraction — deepening while preloads pay
  /// off, backing down to 1 while they are wasted. Bounded by
  /// [1, adaptive_max_depth].
  bool adaptive_load_length = false;
  std::uint64_t adaptive_max_depth = 16;

  /// Graceful-degradation health monitor (health_monitor.h). When enabled
  /// it *replaces* the one-way stop valve above: the same stop rule applies
  /// per window, but preloading can come back after a recovery period.
  HealthParams health;
};

/// Build the predictor `params` asks for. All non-stream kinds take their
/// preload depth from params.predictor.load_length.
std::unique_ptr<PagePredictor> make_predictor(const DfpParams& params);

class DfpEngine final : public sgxsim::PreloadPolicy {
 public:
  explicit DfpEngine(const DfpParams& params);

  /// Use a caller-supplied predictor instead of params.kind.
  DfpEngine(const DfpParams& params, std::unique_ptr<PagePredictor> predictor);

  // --- sgxsim::PreloadPolicy ---
  std::vector<PageNum> on_fault(ProcessId pid, PageNum page,
                                Cycles now) override;
  void on_preload_completed(PageNum page, Cycles now) override;
  void on_preloads_aborted(const std::vector<PageNum>& pages,
                           Cycles now) override;
  void on_preloads_shed(const std::vector<PageNum>& pages,
                        Cycles now) override;
  void on_preloaded_page_evicted(PageNum page, bool was_accessed,
                                 Cycles now) override;
  void on_scan(const sgxsim::PageTable& pt, Cycles now) override;
  void on_state_lost(Cycles now) override;

  // --- introspection ---
  /// Preloading currently disabled — permanently (plain valve) or until the
  /// health monitor's recovery window elapses.
  bool stopped() const noexcept { return stopped_; }
  /// Health monitor, when params.health.enabled; null otherwise.
  const HealthMonitor* health() const noexcept {
    return health_.has_value() ? &*health_ : nullptr;
  }
  Cycles stopped_at() const noexcept { return stopped_at_; }
  /// Current preload depth (== predictor load_length unless adaptive).
  std::uint64_t current_depth() const noexcept { return depth_; }
  std::uint64_t aborted_preloads() const noexcept { return aborted_; }
  /// Predictions shed by the driver's admission layer (bounded channel,
  /// quota, or degradation ladder); zero in the default configuration.
  std::uint64_t shed_preloads() const noexcept { return shed_; }
  const PagePredictor& predictor() const noexcept { return *predictor_; }
  const PreloadedPageList& preloaded_pages() const noexcept { return list_; }
  const DfpParams& params() const noexcept { return params_; }

  std::string describe() const;

  /// Attach observability sinks (not owned; nullptr disables either). The
  /// registry gets a live "dfp.depth" gauge and a "dfp.stops" counter; the
  /// time-series set gets per-scan "dfp.depth" and "dfp.used_fraction"
  /// curves — the raw material of the DFP-stop dynamics plots.
  void set_observability(obs::MetricsRegistry* reg,
                         obs::TimeSeriesSet* ts) noexcept;

  /// Attach a cycle-attribution profiler (not owned; nullptr detaches).
  /// Predictor updates and per-scan engine work record as spans.
  void set_profiler(obs::Profiler* p) noexcept { prof_ = p; }

  /// Flush end-of-run counters into `reg` under the "dfp." prefix.
  void publish(obs::MetricsRegistry& reg) const;

  void reset();

  /// Checkpoint/restore of the engine, its predictor, the preloaded-page
  /// list, and the health monitor (when enabled). load() requires an engine
  /// built with the same predictor kind; observability sinks are not part
  /// of the snapshot.
  void save(snapshot::Writer& w) const;
  void load(snapshot::Reader& r);

 private:
  void maybe_stop(Cycles now);
  void adapt_depth();

  DfpParams params_;
  std::unique_ptr<PagePredictor> predictor_;
  PreloadedPageList list_;
  std::optional<HealthMonitor> health_;
  bool stopped_ = false;
  Cycles stopped_at_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t depth_ = 0;
  // Counter snapshots from the previous scan, for the adaptive window.
  std::uint64_t last_preload_counter_ = 0;
  std::uint64_t last_acc_counter_ = 0;

  // --- observability (null when disabled) ---
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Counter* stop_counter_ = nullptr;
  obs::TimeSeriesSet* series_ = nullptr;  // not owned; may be null
  obs::Profiler* prof_ = nullptr;         // not owned; may be null
};

}  // namespace sgxpl::dfp
