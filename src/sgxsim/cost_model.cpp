#include "sgxsim/cost_model.h"

#include <sstream>

namespace sgxpl::sgxsim {

std::string CostModel::describe() const {
  std::ostringstream oss;
  oss << "CostModel{aex=" << aex << ", eresume=" << eresume
      << ", epc_load=" << epc_load << ", epc_evict=" << epc_evict
      << ", preload_dispatch=" << preload_dispatch
      << ", native_fault=" << native_fault
      << ", bitmap_check=" << bitmap_check
      << ", sip_notification=" << sip_notification
      << ", scan_period=" << scan_period << "}";
  return oss.str();
}

}  // namespace sgxpl::sgxsim
