// The untrusted (non-EPC) side of the EPC paging mechanism.
//
// When the driver evicts an EPC page it executes EWB, which encrypts the
// page, MACs it, and bumps its anti-replay version counter in the VA slot;
// ELDU/ELDB verify that counter on the way back in. We model the counter
// explicitly so tests can assert the freshness property: every load observes
// exactly the version produced by the most recent eviction of that page.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/types.h"
#include "snapshot/fwd.h"

namespace sgxpl::sgxsim {

class BackingStore {
 public:
  /// EWB: write the page out, bumping its version. Returns the new version.
  std::uint64_t evict(PageNum page);

  /// ELDU/ELDB: read the page back. Returns the version that must match the
  /// VA slot (0 for a page never evicted, i.e. first touch after EADD).
  std::uint64_t load(PageNum page) const;

  /// Number of EWB executions for `page`.
  std::uint64_t eviction_count(PageNum page) const;

  std::uint64_t total_evictions() const noexcept { return total_evictions_; }
  std::uint64_t total_loads() const noexcept { return total_loads_; }

  /// Checkpoint/restore. Version slots are serialized sorted by page number
  /// so identical states always produce identical snapshot bytes.
  void save(snapshot::Writer& w) const;
  void load(snapshot::Reader& r);

  /// Delta checkpointing (format v2): the totals plus only the version slots
  /// bumped since the last clear_dirty(). generation() also moves on load()
  /// because total_loads_ is observable state.
  std::uint64_t generation() const noexcept { return gen_; }
  void save_delta(snapshot::Writer& w) const;
  void apply_delta(snapshot::Reader& r);
  void clear_dirty();

 private:
  struct Slot {
    std::uint64_t version = 0;
  };
  std::unordered_map<PageNum, Slot> slots_;
  std::uint64_t total_evictions_ = 0;
  mutable std::uint64_t total_loads_ = 0;
  mutable std::uint64_t gen_ = 0;
  std::unordered_set<PageNum> dirty_;
};

}  // namespace sgxpl::sgxsim
