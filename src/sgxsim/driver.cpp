#include "sgxsim/driver.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "snapshot/codec.h"

namespace sgxpl::sgxsim {

using obs::EventType;

const char* to_string(DemandPolicy p) noexcept {
  switch (p) {
    case DemandPolicy::kPreempt:
      return "preempt";
    case DemandPolicy::kPreemptAndFlush:
      return "preempt+flush";
    case DemandPolicy::kFifo:
      return "fifo";
  }
  return "?";
}

std::optional<DemandPolicy> parse_demand_policy(
    std::string_view name) noexcept {
  for (const DemandPolicy p :
       {DemandPolicy::kPreempt, DemandPolicy::kPreemptAndFlush,
        DemandPolicy::kFifo}) {
    if (name == to_string(p)) {
      return p;
    }
  }
  return std::nullopt;
}

void DriverStats::publish(obs::MetricsRegistry& reg) const {
  reg.counter("driver.accesses").add(accesses);
  reg.counter("driver.faults").add(faults);
  reg.counter("driver.demand_loads").add(demand_loads);
  reg.counter("driver.fault_wait_hits").add(fault_wait_hits);
  reg.counter("driver.preloads.issued").add(preloads_issued);
  reg.counter("driver.preloads.completed").add(preloads_completed);
  reg.counter("driver.preloads.aborted").add(preloads_aborted);
  reg.counter("driver.preloads.used").add(preloads_used);
  reg.counter("driver.preloads.evicted_unused").add(preloads_evicted_unused);
  reg.counter("driver.sip.loads").add(sip_loads);
  reg.counter("driver.sip.inflight_waits").add(sip_inflight_waits);
  reg.counter("driver.sip.prefetches").add(sip_prefetches);
  reg.counter("driver.evictions").add(evictions);
  reg.counter("driver.scans").add(scans);
  reg.counter("driver.scan_stalls").add(scan_stalls);
  reg.counter("driver.watchdog.checks").add(watchdog_checks);
  reg.counter("driver.bitmap_lies").add(bitmap_lies);
  reg.counter("driver.squeeze_evictions").add(squeeze_evictions);
  reg.counter("driver.fault.stall_cycles.total").add(fault_stall_cycles);
  reg.counter("driver.sip.stall_cycles.total").add(sip_stall_cycles);
}

std::string DriverStats::describe() const {
  std::ostringstream oss;
  oss << "accesses=" << accesses << " faults=" << faults
      << " demand_loads=" << demand_loads
      << " fault_wait_hits=" << fault_wait_hits
      << " preloads{issued=" << preloads_issued
      << ", completed=" << preloads_completed
      << ", aborted=" << preloads_aborted << ", used=" << preloads_used
      << ", evicted_unused=" << preloads_evicted_unused << "}"
      << " sip{loads=" << sip_loads << ", inflight_waits=" << sip_inflight_waits
      << ", prefetches=" << sip_prefetches
      << "} evictions=" << evictions << " scans=" << scans
      << " fault_stall=" << fault_stall_cycles
      << " sip_stall=" << sip_stall_cycles;
  if (scan_stalls + watchdog_checks + bitmap_lies + squeeze_evictions > 0) {
    oss << " chaos{scan_stalls=" << scan_stalls
        << ", watchdog_checks=" << watchdog_checks
        << ", bitmap_lies=" << bitmap_lies
        << ", squeeze_evictions=" << squeeze_evictions << "}";
  }
  return oss.str();
}

Driver::Driver(const EnclaveConfig& config, const CostModel& costs,
               PreloadPolicy* policy)
    : config_(config),
      costs_(costs),
      policy_(policy),
      page_table_(config.elrange_pages),
      epc_(config.epc_pages),
      channel_(config.serial_channel),
      bitmap_(config.elrange_pages),
      eviction_(make_eviction_policy(config.eviction, epc_)),
      next_scan_(costs.scan_period) {
  SGXPL_CHECK_MSG(config.elrange_pages > 0, "empty ELRANGE");
  SGXPL_CHECK_MSG(config.epc_pages > 0, "empty EPC");
}

void Driver::set_metrics(obs::MetricsRegistry* reg) noexcept {
  metrics_ = reg;
  if (reg != nullptr) {
    fault_stall_hist_ = &reg->histogram("driver.fault.stall_cycles");
    sip_stall_hist_ = &reg->histogram("driver.sip.stall_cycles");
    dfp_batch_hist_ = &reg->histogram("driver.dfp.batch_pages");
  } else {
    fault_stall_hist_ = nullptr;
    sip_stall_hist_ = nullptr;
    dfp_batch_hist_ = nullptr;
  }
}

void Driver::set_time_series(obs::TimeSeriesSet* ts) noexcept {
  series_ = ts;
  ts_last_at_ = bookkept_until_;
  ts_last_busy_ = channel_busy_total_;
  ts_last_faults_ = stats_.faults;
  ts_last_preloads_used_ = stats_.preloads_used;
  ts_last_preloads_completed_ = stats_.preloads_completed;
}

AccessOutcome Driver::access(PageNum page, Cycles now, ProcessId pid) {
  SGXPL_CHECK_MSG(page < config_.elrange_pages,
                  "access outside ELRANGE: page " << page);
  advance_to(now);
  ++stats_.accesses;

  if (page_table_.present(page)) {
    if (page_table_.touch(page)) {
      ++stats_.preloads_used;
    }
    eviction_->on_access(page);
    return AccessOutcome{.completion = now, .faulted = false,
                         .hit_inflight = false};
  }

  // --- Enclave page fault: AEX out of the enclave. ---
  ++stats_.faults;
  if (log_ != nullptr) {
    log_->record({.at = now, .type = EventType::kFault, .page = page});
  }
  const Cycles after_aex = now + costs_.aex;
  advance_to(after_aex);

  // A preload may have landed during the AEX window.
  if (page_table_.present(page)) {
    ++stats_.fault_wait_hits;
    if (page_table_.touch(page)) {
      ++stats_.preloads_used;
    }
    eviction_->on_access(page);
    const Cycles done = after_aex + costs_.eresume;
    advance_to(done);
    if (log_ != nullptr) {
      log_->record({.at = done, .type = EventType::kResume, .page = page});
    }
    stats_.fault_stall_cycles += done - now;
    if (fault_stall_hist_ != nullptr) {
      fault_stall_hist_->record(done - now);
    }
    return AccessOutcome{.completion = done, .faulted = true,
                         .hit_inflight = true};
  }

  Cycles load_end = 0;
  bool hit_inflight = false;
  const auto pending = channel_.find(page);
  const DemandPolicy dp = config_.demand_policy;
  if (pending.has_value() &&
      (pending->start <= after_aex || dp == DemandPolicy::kFifo)) {
    // The page is already being loaded (or is queued and FIFO mode keeps
    // queues intact): a load in progress cannot be preempted, so the
    // handler simply waits for it.
    load_end = pending->end;
    hit_inflight = true;
    ++stats_.fault_wait_hits;
  } else {
    // The §4.1 in-stream abort: if the faulted page was queued for DFP
    // preloading (the app outran the preloader within a stream), the whole
    // queued batch is flushed and the page is demand-loaded instead.
    // Under kPreemptAndFlush every demand fault flushes the queue. A
    // queued SIP prefetch for the page is simply promoted (cancelled and
    // re-issued as the demand load).
    const bool flush =
        (pending.has_value() && pending->kind == OpKind::kDfpPreload) ||
        dp == DemandPolicy::kPreemptAndFlush;
    if (flush) {
      flush_queued_preloads(after_aex);
    }
    if (pending.has_value() && pending->kind == OpKind::kSipLoad) {
      const bool cancelled = channel_.cancel_not_started(page, after_aex);
      SGXPL_CHECK_MSG(cancelled, "queued SIP op for page " << page
                                     << " could not be promoted");
    }
    if (dp == DemandPolicy::kFifo) {
      load_end = schedule_load(page, after_aex, OpKind::kDemandLoad).end;
    } else {
      load_end =
          schedule_load_priority(page, after_aex, OpKind::kDemandLoad).end;
    }
    ++stats_.demand_loads;
  }

  // Consult the preload policy while the fault is being serviced; its
  // predictions queue up behind the demand load.
  if (policy_ != nullptr) {
    const auto predicted = policy_->on_fault(pid, page, after_aex);
    std::uint64_t scheduled = 0;
    for (const PageNum p : predicted) {
      if (p >= config_.elrange_pages || page_table_.present(p) ||
          channel_.find(p).has_value()) {
        continue;
      }
      schedule_load(p, after_aex, OpKind::kDfpPreload);
      ++stats_.preloads_issued;
      ++scheduled;
    }
    if (dfp_batch_hist_ != nullptr && !predicted.empty()) {
      dfp_batch_hist_->record(scheduled);
    }
  }

  Cycles done = 0;
  int attempts = 0;
  for (;;) {
    done = load_end + costs_.eresume;
    advance_to(done);
    if (page_table_.present(page)) {
      break;
    }
    // Pathological: other loads committing in the same window evicted the
    // page before the enclave re-entered (possible under heavy preload
    // pressure, and routinely under the idealized parallel-channel
    // ablation). The access simply faults again.
    SGXPL_CHECK_MSG(++attempts <= 8,
                    "page " << page << " evicted "
                            << attempts << " times before first use");
    ++stats_.faults;
    const Cycles retry_at = done + costs_.aex;
    advance_to(retry_at);
    if (const auto op = channel_.find(page)) {
      load_end = op->end;
      ++stats_.fault_wait_hits;
    } else if (dp == DemandPolicy::kFifo) {
      load_end = schedule_load(page, retry_at, OpKind::kDemandLoad).end;
      ++stats_.demand_loads;
    } else {
      load_end =
          schedule_load_priority(page, retry_at, OpKind::kDemandLoad).end;
      ++stats_.demand_loads;
    }
  }
  if (page_table_.touch(page)) {
    ++stats_.preloads_used;
  }
  eviction_->on_access(page);
  if (log_ != nullptr) {
    log_->record({.at = done, .type = EventType::kResume, .page = page});
  }
  stats_.fault_stall_cycles += done - now;
  if (fault_stall_hist_ != nullptr) {
    fault_stall_hist_->record(done - now);
  }
  return AccessOutcome{.completion = done, .faulted = true,
                       .hit_inflight = hit_inflight};
}

Cycles Driver::sip_load(PageNum page, Cycles now) {
  SGXPL_CHECK_MSG(page < config_.elrange_pages,
                  "sip_load outside ELRANGE: page " << page);
  if (log_ != nullptr) {
    log_->record({.at = now, .type = EventType::kSipRequest, .page = page});
  }
  advance_to(now);
  if (page_table_.present(page)) {
    // The shared bitmap was stale (page arrived between check and request).
    return now;
  }
  Cycles end = 0;
  if (const auto pending = channel_.find(page)) {
    end = pending->end;
    ++stats_.sip_inflight_waits;
  } else if (config_.demand_policy == DemandPolicy::kFifo) {
    end = schedule_load(page, now, OpKind::kSipLoad).end;
    ++stats_.sip_loads;
  } else {
    // The blocking notification overtakes queued asynchronous preloads.
    end = schedule_load_priority(page, now, OpKind::kSipLoad).end;
    ++stats_.sip_loads;
  }
  int attempts = 0;
  for (;;) {
    advance_to(end);
    if (page_table_.present(page)) {
      break;
    }
    // Evicted by a racing commit before the requester could use it; the
    // kernel worker retries the load.
    SGXPL_CHECK_MSG(++attempts <= 8,
                    "sip page " << page << " evicted " << attempts
                                << " times before first use");
    if (const auto op = channel_.find(page)) {
      end = op->end;
    } else {
      end = schedule_load(page, end, OpKind::kSipLoad).end;
      ++stats_.sip_loads;
    }
  }
  stats_.sip_stall_cycles += end - now;
  if (sip_stall_hist_ != nullptr) {
    sip_stall_hist_->record(end - now);
  }
  return end;
}

bool Driver::sip_bitmap_check(PageNum page, Cycles now) {
  SGXPL_CHECK_MSG(page < config_.elrange_pages,
                  "bitmap check outside ELRANGE: page " << page);
  const bool actual = bitmap_.test(page);
  if (chaos_ == nullptr) {
    return actual;
  }
  const bool seen = chaos_->corrupt_bitmap_read(page, actual, now);
  if (seen != actual) {
    ++stats_.bitmap_lies;
    chaos_dirty_ = true;
  }
  return seen;
}

void Driver::sip_prefetch(PageNum page, Cycles now) {
  SGXPL_CHECK_MSG(page < config_.elrange_pages,
                  "sip_prefetch outside ELRANGE: page " << page);
  advance_to(now);
  if (page_table_.present(page) || channel_.find(page).has_value()) {
    return;
  }
  // Prefetches queue like preloads (no demand priority); demand faults
  // never flush them — the app explicitly asked for the page.
  if (log_ != nullptr) {
    log_->record({.at = now, .type = EventType::kSipPrefetch, .page = page});
  }
  schedule_load(page, now, OpKind::kSipLoad);
  ++stats_.sip_prefetches;
}

void Driver::advance_to(Cycles now) {
  if (now < bookkept_until_) {
    now = bookkept_until_;
  }
  while (next_scan_ <= now) {
    if (chaos_ != nullptr) {
      // The injector may stall the service thread: the scan slips, so
      // commits and DFP counter updates arrive late. The stall is strictly
      // positive, so the loop always makes progress.
      const Cycles stall = chaos_->stall_scan(next_scan_, costs_.scan_period);
      if (stall > 0) {
        ++stats_.scan_stalls;
        chaos_dirty_ = true;
        next_scan_ += stall;
        continue;
      }
    }
    for (const auto& op : channel_.collect_completed(next_scan_)) {
      commit_load(op);
    }
    ++stats_.scans;
    if (log_ != nullptr) {
      log_->record({.at = next_scan_, .type = EventType::kScan});
    }
    if (policy_ != nullptr) {
      if (chaos_ != nullptr && chaos_->lose_predictor_state(next_scan_)) {
        chaos_dirty_ = true;
        policy_->on_state_lost(next_scan_);
      }
      policy_->on_scan(page_table_, next_scan_);
    }
    if (series_ != nullptr) {
      sample_time_series(next_scan_);
    }
    watchdog_tick(next_scan_);
    next_scan_ += costs_.scan_period;
  }
  for (const auto& op : channel_.collect_completed(now)) {
    commit_load(op);
  }
  bookkept_until_ = now;
}

void Driver::watchdog_tick(Cycles now) {
  if (config_.watchdog_scan_interval == 0) {
    return;
  }
  ++scans_since_watchdog_;
  if (!chaos_dirty_ &&
      scans_since_watchdog_ < config_.watchdog_scan_interval) {
    return;
  }
  check_invariants();
  ++stats_.watchdog_checks;
  if (log_ != nullptr) {
    log_->record({.at = now, .type = EventType::kWatchdog,
                  .aux = stats_.scans});
  }
  scans_since_watchdog_ = 0;
  chaos_dirty_ = false;
}

Cycles Driver::drain() {
  const Cycles end = std::max(bookkept_until_, channel_.completion_time());
  advance_to(end);
  return end;
}

PageNum Driver::effective_capacity(Cycles now) const {
  const PageNum real = epc_.capacity();
  if (chaos_ == nullptr) {
    return real;
  }
  const PageNum cap = chaos_->effective_epc_capacity(real, now);
  return std::clamp<PageNum>(cap, 1, real);
}

Cycles Driver::load_duration(OpKind kind, Cycles at) {
  // Whether this load will need to evict first: every queued op is itself a
  // load that will consume a slot before this one runs.
  const bool needs_evict = page_table_.resident_count() + channel_.queued() >=
                           effective_capacity(at);
  const Cycles base =
      costs_.epc_load + (needs_evict ? costs_.epc_evict : 0) +
      (kind == OpKind::kDfpPreload ? costs_.preload_dispatch : 0);
  if (chaos_ == nullptr) {
    return base;
  }
  const Cycles perturbed = chaos_->perturb_load_duration(kind, base, at);
  SGXPL_CHECK_MSG(perturbed > 0, "chaos produced a zero-length load");
  if (perturbed != base) {
    chaos_dirty_ = true;
  }
  return perturbed;
}

const ChannelOp& Driver::schedule_load(PageNum page, Cycles earliest,
                                       OpKind kind) {
  // Never schedule into the already-bookkept past (callers may legally
  // pass clocks that lag the driver's horizon, e.g. multi-enclave apps).
  earliest = std::max(earliest, bookkept_until_);
  const auto& op =
      channel_.schedule(earliest, load_duration(kind, earliest), page, kind);
  if (log_ != nullptr) {
    log_->record({.at = op.start, .type = EventType::kLoadScheduled,
                  .page = page, .aux = op.end, .detail = to_string(kind)});
  }
  return op;
}

const ChannelOp& Driver::schedule_load_priority(PageNum page, Cycles earliest,
                                                OpKind kind) {
  earliest = std::max(earliest, bookkept_until_);
  const auto& op = channel_.schedule_priority(
      earliest, load_duration(kind, earliest), page, kind);
  if (log_ != nullptr) {
    log_->record({.at = op.start, .type = EventType::kLoadScheduled,
                  .page = page, .aux = op.end, .detail = to_string(kind)});
  }
  return op;
}

void Driver::sample_time_series(Cycles now) {
  if (now <= ts_last_at_) {
    return;
  }
  const double dt = static_cast<double>(now - ts_last_at_);
  series_->series("driver.faults_per_mcycle")
      .add(now, static_cast<double>(stats_.faults - ts_last_faults_) * 1e6 /
                    dt);
  series_->series("epc.occupancy")
      .add(now, static_cast<double>(epc_.used()) /
                    static_cast<double>(epc_.capacity()));
  series_->series("channel.utilization")
      .add(now, std::min(1.0, static_cast<double>(channel_busy_total_ -
                                                  ts_last_busy_) /
                                  dt));
  const std::uint64_t completed =
      stats_.preloads_completed - ts_last_preloads_completed_;
  if (completed > 0) {
    series_->series("dfp.preload_accuracy")
        .add(now, static_cast<double>(stats_.preloads_used -
                                      ts_last_preloads_used_) /
                      static_cast<double>(completed));
  }
  ts_last_at_ = now;
  ts_last_busy_ = channel_busy_total_;
  ts_last_faults_ = stats_.faults;
  ts_last_preloads_used_ = stats_.preloads_used;
  ts_last_preloads_completed_ = stats_.preloads_completed;
}

void Driver::flush_queued_preloads(Cycles now) {
  auto aborted = channel_.abort_not_started(now, OpKind::kDfpPreload);
  if (aborted.empty()) {
    return;
  }
  stats_.preloads_aborted += aborted.size();
  if (log_ != nullptr) {
    log_->record({.at = now, .type = EventType::kLoadsAborted,
                  .page = aborted.size()});
  }
  if (policy_ != nullptr) {
    std::vector<PageNum> pages;
    pages.reserve(aborted.size());
    for (const auto& op : aborted) {
      pages.push_back(op.page);
    }
    policy_->on_preloads_aborted(pages, now);
  }
}

void Driver::commit_load(const ChannelOp& op) {
  SGXPL_CHECK_MSG(!page_table_.present(op.page),
                  "load committed for already-resident page " << op.page);
  channel_busy_total_ += op.end - op.start;
  // A transient EPC squeeze (co-tenant pressure via the chaos hooks) can
  // demand more than one eviction to get under the shrunken capacity; the
  // loop degenerates to the single full-EPC eviction without chaos.
  const PageNum cap = effective_capacity(op.end);
  if (cap < epc_.capacity()) {
    chaos_dirty_ = true;
  }
  while (epc_.used() >= cap && epc_.used() > 0) {
    if (!epc_.full()) {
      ++stats_.squeeze_evictions;
    }
    evict_one(op.page);
  }
  const SlotIndex slot = epc_.allocate(op.page);
  page_table_.map(op.page, slot, /*via_preload=*/op.kind != OpKind::kDemandLoad);
  if (op.kind == OpKind::kDemandLoad) {
    // The faulting access completes as soon as the page lands, so the
    // hardware sets its access bit immediately — giving the page a CLOCK
    // second chance against evictions committed in the same window.
    page_table_.touch(op.page);
  }
  eviction_->on_load(op.page);
  // ELDU: verify against the anti-replay version from the last EWB.
  (void)backing_.load(op.page);
  bitmap_.set(op.page);
  if (log_ != nullptr) {
    log_->record({.at = op.end, .type = EventType::kLoadCommitted,
                  .page = op.page, .detail = to_string(op.kind)});
  }
  if (op.kind == OpKind::kDfpPreload) {
    ++stats_.preloads_completed;
    if (policy_ != nullptr) {
      // The kernel worker's completion notification is the one DFP input
      // chaos can drop or duplicate: the page is resident either way, only
      // the policy's bookkeeping goes stale (and must tolerate it).
      const bool drop =
          chaos_ != nullptr && chaos_->drop_preload_completion(op.page, op.end);
      if (!drop) {
        policy_->on_preload_completed(op.page, op.end);
        if (chaos_ != nullptr &&
            chaos_->duplicate_preload_completion(op.page, op.end)) {
          chaos_dirty_ = true;
          policy_->on_preload_completed(op.page, op.end);
        }
      } else {
        chaos_dirty_ = true;
      }
    }
  }
}

void Driver::evict_one(PageNum pinned) {
  const PageNum victim = eviction_->victim(page_table_, pinned);
  eviction_->on_unload(victim);
  const PageTableEntry prior = page_table_.unmap(victim);
  epc_.release(prior.slot);
  backing_.evict(victim);
  bitmap_.clear(victim);
  ++stats_.evictions;
  if (log_ != nullptr) {
    log_->record({.at = bookkept_until_, .type = EventType::kEviction,
                  .page = victim});
  }
  if (prior.preloaded) {
    ++stats_.preloads_evicted_unused;
    if (policy_ != nullptr) {
      policy_->on_preloaded_page_evicted(victim, /*was_accessed=*/false,
                                         bookkept_until_);
    }
  }
}

void Driver::check_invariants() const {
  SGXPL_CHECK(page_table_.resident_count() == epc_.used());
  SGXPL_CHECK(bitmap_.popcount() == epc_.used());
  std::uint64_t present = 0;
  for (PageNum p = 0; p < config_.elrange_pages; ++p) {
    const auto& e = page_table_.entry(p);
    if (e.present) {
      ++present;
      SGXPL_CHECK(e.slot != kInvalidSlot);
      SGXPL_CHECK_MSG(epc_.page_at(e.slot) == p,
                      "slot " << e.slot << " does not hold page " << p);
      SGXPL_CHECK(bitmap_.test(p));
    } else {
      SGXPL_CHECK(!bitmap_.test(p));
    }
  }
  SGXPL_CHECK(present == epc_.used());
}

void DriverStats::save(snapshot::Writer& w) const {
  w.u64("stats.accesses", accesses);
  w.u64("stats.faults", faults);
  w.u64("stats.demand_loads", demand_loads);
  w.u64("stats.fault_wait_hits", fault_wait_hits);
  w.u64("stats.preloads_issued", preloads_issued);
  w.u64("stats.preloads_completed", preloads_completed);
  w.u64("stats.preloads_aborted", preloads_aborted);
  w.u64("stats.preloads_used", preloads_used);
  w.u64("stats.preloads_evicted_unused", preloads_evicted_unused);
  w.u64("stats.sip_loads", sip_loads);
  w.u64("stats.sip_inflight_waits", sip_inflight_waits);
  w.u64("stats.sip_prefetches", sip_prefetches);
  w.u64("stats.evictions", evictions);
  w.u64("stats.scans", scans);
  w.u64("stats.scan_stalls", scan_stalls);
  w.u64("stats.watchdog_checks", watchdog_checks);
  w.u64("stats.bitmap_lies", bitmap_lies);
  w.u64("stats.squeeze_evictions", squeeze_evictions);
  w.u64("stats.fault_stall_cycles", fault_stall_cycles);
  w.u64("stats.sip_stall_cycles", sip_stall_cycles);
}

void DriverStats::load(snapshot::Reader& r) {
  accesses = r.u64("stats.accesses");
  faults = r.u64("stats.faults");
  demand_loads = r.u64("stats.demand_loads");
  fault_wait_hits = r.u64("stats.fault_wait_hits");
  preloads_issued = r.u64("stats.preloads_issued");
  preloads_completed = r.u64("stats.preloads_completed");
  preloads_aborted = r.u64("stats.preloads_aborted");
  preloads_used = r.u64("stats.preloads_used");
  preloads_evicted_unused = r.u64("stats.preloads_evicted_unused");
  sip_loads = r.u64("stats.sip_loads");
  sip_inflight_waits = r.u64("stats.sip_inflight_waits");
  sip_prefetches = r.u64("stats.sip_prefetches");
  evictions = r.u64("stats.evictions");
  scans = r.u64("stats.scans");
  scan_stalls = r.u64("stats.scan_stalls");
  watchdog_checks = r.u64("stats.watchdog_checks");
  bitmap_lies = r.u64("stats.bitmap_lies");
  squeeze_evictions = r.u64("stats.squeeze_evictions");
  fault_stall_cycles = r.u64("stats.fault_stall_cycles");
  sip_stall_cycles = r.u64("stats.sip_stall_cycles");
}

void Driver::save(snapshot::Writer& w) const {
  w.str("driver.eviction", eviction_->name());
  w.u64("driver.next_scan", next_scan_);
  w.u64("driver.bookkept_until", bookkept_until_);
  w.u64("driver.scans_since_watchdog", scans_since_watchdog_);
  w.boolean("driver.chaos_dirty", chaos_dirty_);
  w.u64("driver.channel_busy_total", channel_busy_total_);
  w.u64("driver.ts_last_at", ts_last_at_);
  w.u64("driver.ts_last_busy", ts_last_busy_);
  w.u64("driver.ts_last_faults", ts_last_faults_);
  w.u64("driver.ts_last_preloads_used", ts_last_preloads_used_);
  w.u64("driver.ts_last_preloads_completed", ts_last_preloads_completed_);
  stats_.save(w);
  page_table_.save(w);
  epc_.save(w);
  bitmap_.save(w);
  backing_.save(w);
  channel_.save(w);
  eviction_->save(w);
}

void Driver::load(snapshot::Reader& r) {
  const std::string eviction_name = r.str("driver.eviction");
  SGXPL_CHECK_MSG(eviction_name == eviction_->name(),
                  "snapshot was taken with eviction policy '"
                      << eviction_name << "' but this driver runs '"
                      << eviction_->name() << "'");
  next_scan_ = r.u64("driver.next_scan");
  bookkept_until_ = r.u64("driver.bookkept_until");
  scans_since_watchdog_ = r.u64("driver.scans_since_watchdog");
  chaos_dirty_ = r.boolean("driver.chaos_dirty");
  channel_busy_total_ = r.u64("driver.channel_busy_total");
  ts_last_at_ = r.u64("driver.ts_last_at");
  ts_last_busy_ = r.u64("driver.ts_last_busy");
  ts_last_faults_ = r.u64("driver.ts_last_faults");
  ts_last_preloads_used_ = r.u64("driver.ts_last_preloads_used");
  ts_last_preloads_completed_ = r.u64("driver.ts_last_preloads_completed");
  stats_.load(r);
  page_table_.load(r);
  epc_.load(r);
  bitmap_.load(r);
  backing_.load(r);
  channel_.load(r);
  eviction_->load(r);
  check_invariants();
}

}  // namespace sgxpl::sgxsim
