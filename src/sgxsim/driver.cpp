#include "sgxsim/driver.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "snapshot/codec.h"

namespace sgxpl::sgxsim {

using obs::EventType;

const char* to_string(DemandPolicy p) noexcept {
  switch (p) {
    case DemandPolicy::kPreempt:
      return "preempt";
    case DemandPolicy::kPreemptAndFlush:
      return "preempt+flush";
    case DemandPolicy::kFifo:
      return "fifo";
  }
  return "?";
}

std::optional<DemandPolicy> parse_demand_policy(
    std::string_view name) noexcept {
  for (const DemandPolicy p :
       {DemandPolicy::kPreempt, DemandPolicy::kPreemptAndFlush,
        DemandPolicy::kFifo}) {
    if (name == to_string(p)) {
      return p;
    }
  }
  return std::nullopt;
}

std::string overload_spec(const EnclaveConfig& cfg) {
  const ChannelConfig def;
  const ChannelConfig& ch = cfg.channel;
  const bool channel_default =
      ch.max_queued == def.max_queued &&
      ch.preload_high_water == def.preload_high_water &&
      ch.max_retries == def.max_retries &&
      ch.retry_backoff == def.retry_backoff &&
      ch.deadline_slack == def.deadline_slack &&
      ch.retry_seed == def.retry_seed;
  if (channel_default && !cfg.admission.enabled && !cfg.elastic.enabled) {
    return {};
  }
  std::ostringstream oss;
  oss << "queue=" << ch.max_queued << ",hw=" << ch.preload_high_water
      << ",retries=" << ch.max_retries << ",backoff=" << ch.retry_backoff
      << ",slack=" << ch.deadline_slack << ",rseed=" << ch.retry_seed;
  if (cfg.admission.enabled) {
    const AdmissionParams& a = cfg.admission;
    oss << ";admission=1,thr=" << a.degrade_threshold
        << ",minw=" << a.min_window_events << ",recw=" << a.recover_windows
        << ",recthr=" << a.recover_threshold
        << ",quota=" << a.preload_quota_fraction;
    if (a.target_window_events > 0) {
      // Load-adaptive windows change the ladder's verdict cadence, so they
      // are identity too; appended only when engaged to keep every existing
      // admission spec (and snapshot) byte-identical.
      oss << ",target=" << a.target_window_events
          << ",maxspan=" << a.max_window_span;
    }
  }
  if (cfg.elastic.enabled) {
    oss << ";elastic=1," << elastic_spec(cfg.elastic);
  }
  return oss.str();
}

void DriverStats::publish(obs::MetricsRegistry& reg) const {
  reg.counter("driver.accesses").add(accesses);
  reg.counter("driver.faults").add(faults);
  reg.counter("driver.demand_loads").add(demand_loads);
  reg.counter("driver.fault_wait_hits").add(fault_wait_hits);
  reg.counter("driver.preloads.issued").add(preloads_issued);
  reg.counter("driver.preloads.completed").add(preloads_completed);
  reg.counter("driver.preloads.aborted").add(preloads_aborted);
  reg.counter("driver.preloads.used").add(preloads_used);
  reg.counter("driver.preloads.evicted_unused").add(preloads_evicted_unused);
  reg.counter("driver.sip.loads").add(sip_loads);
  reg.counter("driver.sip.inflight_waits").add(sip_inflight_waits);
  reg.counter("driver.sip.prefetches").add(sip_prefetches);
  reg.counter("driver.evictions").add(evictions);
  reg.counter("driver.scans").add(scans);
  reg.counter("driver.scan_stalls").add(scan_stalls);
  reg.counter("driver.watchdog.checks").add(watchdog_checks);
  reg.counter("driver.bitmap_lies").add(bitmap_lies);
  reg.counter("driver.squeeze_evictions").add(squeeze_evictions);
  reg.counter("channel.admission.shed").add(preloads_shed);
  reg.counter("channel.admission.queue_evictions")
      .add(queued_preload_evictions);
  reg.counter("channel.retry.lost").add(lost_completions);
  reg.counter("channel.retry.reissued").add(retries);
  reg.counter("channel.retry.resolved").add(retries_resolved);
  reg.counter("channel.retry.permanent_faults").add(permanent_faults);
  reg.counter("channel.retry.duplicates").add(duplicate_completions);
  reg.counter("degrade.demotions").add(degrade_demotions);
  reg.counter("degrade.promotions").add(degrade_promotions);
  reg.counter("driver.fault.stall_cycles.total").add(fault_stall_cycles);
  reg.counter("driver.sip.stall_cycles.total").add(sip_stall_cycles);
}

std::string DriverStats::describe() const {
  std::ostringstream oss;
  oss << "accesses=" << accesses << " faults=" << faults
      << " demand_loads=" << demand_loads
      << " fault_wait_hits=" << fault_wait_hits
      << " preloads{issued=" << preloads_issued
      << ", completed=" << preloads_completed
      << ", aborted=" << preloads_aborted << ", used=" << preloads_used
      << ", evicted_unused=" << preloads_evicted_unused << "}"
      << " sip{loads=" << sip_loads << ", inflight_waits=" << sip_inflight_waits
      << ", prefetches=" << sip_prefetches
      << "} evictions=" << evictions << " scans=" << scans
      << " fault_stall=" << fault_stall_cycles
      << " sip_stall=" << sip_stall_cycles;
  if (scan_stalls + watchdog_checks + bitmap_lies + squeeze_evictions > 0) {
    oss << " chaos{scan_stalls=" << scan_stalls
        << ", watchdog_checks=" << watchdog_checks
        << ", bitmap_lies=" << bitmap_lies
        << ", squeeze_evictions=" << squeeze_evictions << "}";
  }
  if (preloads_shed + queued_preload_evictions + lost_completions + retries +
          retries_resolved + permanent_faults + duplicate_completions +
          degrade_demotions + degrade_promotions >
      0) {
    oss << " robust{shed=" << preloads_shed
        << ", queue_evict=" << queued_preload_evictions
        << ", lost=" << lost_completions << ", retries=" << retries
        << ", resolved=" << retries_resolved
        << ", permanent=" << permanent_faults
        << ", dups=" << duplicate_completions
        << ", demotions=" << degrade_demotions
        << ", promotions=" << degrade_promotions << "}";
  }
  return oss.str();
}

Driver::Driver(const EnclaveConfig& config, const CostModel& costs,
               PreloadPolicy* policy)
    : config_(config),
      costs_(costs),
      policy_(policy),
      page_table_(config.elrange_pages),
      epc_(config.epc_pages),
      channel_(config.serial_channel, config.channel),
      bitmap_(config.elrange_pages),
      eviction_(make_eviction_policy(config.eviction, epc_)),
      next_scan_(costs.scan_period),
      retry_rng_(config.channel.retry_seed),
      // UINT64_MAX never collides with an op id (ids count up from 0).
      completed_ring_(64, UINT64_MAX) {
  SGXPL_CHECK_MSG(config.elrange_pages > 0, "empty ELRANGE");
  SGXPL_CHECK_MSG(config.epc_pages > 0, "empty EPC");
}

void Driver::set_metrics(obs::MetricsRegistry* reg) noexcept {
  metrics_ = reg;
  if (reg != nullptr) {
    fault_stall_hist_ = &reg->histogram("driver.fault.stall_cycles");
    sip_stall_hist_ = &reg->histogram("driver.sip.stall_cycles");
    dfp_batch_hist_ = &reg->histogram("driver.dfp.batch_pages");
    degrade_gauge_ = &reg->gauge("degrade.level");
  } else {
    fault_stall_hist_ = nullptr;
    sip_stall_hist_ = nullptr;
    dfp_batch_hist_ = nullptr;
    degrade_gauge_ = nullptr;
  }
}

void Driver::set_time_series(obs::TimeSeriesSet* ts) noexcept {
  series_ = ts;
  ts_last_at_ = bookkept_until_;
  ts_last_busy_ = channel_busy_total_;
  ts_last_faults_ = stats_.faults;
  ts_last_preloads_used_ = stats_.preloads_used;
  ts_last_preloads_completed_ = stats_.preloads_completed;
}

AccessOutcome Driver::access(PageNum page, Cycles now, ProcessId pid) {
  SGXPL_CHECK_MSG(page < config_.elrange_pages,
                  "access outside ELRANGE: page " << page);
  advance_to(now);
  ++stats_.accesses;

  {
    obs::ScopedSpan lookup(prof_, obs::Phase::kPageTableLookup);
    if (page_table_.present(page)) {
      if (page_table_.touch(page)) {
        ++stats_.preloads_used;
      }
      eviction_->on_access(page);
      if (elastic_engaged_) {
        // Liveness evidence (EDMM accessed-bit sampling): a fully-resident
        // tenant never faults or maps, and without this the idle shrink
        // would mistake it for a dead one and evict its working set.
        elastic_.note_access(elastic_.owner(page));
      }
      return AccessOutcome{.completion = now, .faulted = false,
                           .hit_inflight = false};
    }
  }

  // --- Enclave page fault: AEX out of the enclave. ---
  ++stats_.faults;
  if (elastic_engaged_) {
    // Pressure evidence for the AIMD grow; only the primary fault counts
    // (re-fault retries below are the channel's problem, not demand).
    elastic_.note_fault(elastic_.owner(page));
  }
  obs::ScopedSpan fault_span(prof_, obs::Phase::kFault);
  if (log_ != nullptr) {
    log_->record({.at = now, .type = EventType::kFault, .page = page});
  }
  const Cycles after_aex = now + costs_.aex;
  advance_to(after_aex);

  // A preload may have landed during the AEX window.
  if (page_table_.present(page)) {
    ++stats_.fault_wait_hits;
    if (page_table_.touch(page)) {
      ++stats_.preloads_used;
    }
    eviction_->on_access(page);
    const Cycles done = after_aex + costs_.eresume;
    advance_to(done);
    if (log_ != nullptr) {
      log_->record({.at = done, .type = EventType::kResume, .page = page});
    }
    stats_.fault_stall_cycles += done - now;
    if (fault_stall_hist_ != nullptr) {
      fault_stall_hist_->record(done - now);
    }
    fault_span.add_cycles(done - now);
    return AccessOutcome{.completion = done, .faulted = true,
                         .hit_inflight = true};
  }

  Cycles load_end = 0;
  bool hit_inflight = false;
  const auto pending = channel_.find(page);
  const DemandPolicy dp = config_.demand_policy;
  // Quarantined tenants lose demand priority too: their loads queue FIFO
  // behind everyone else's work (the bottom of the degradation ladder).
  const bool demand_fifo =
      dp == DemandPolicy::kFifo ||
      (admission_active() && !tenant(pid).demand_priority());
  if (pending.has_value() &&
      (pending->start <= after_aex || demand_fifo)) {
    // The page is already being loaded (or is queued and FIFO mode keeps
    // queues intact): a load in progress cannot be preempted, so the
    // handler simply waits for it.
    load_end = pending->end;
    hit_inflight = true;
    ++stats_.fault_wait_hits;
  } else {
    // The §4.1 in-stream abort: if the faulted page was queued for DFP
    // preloading (the app outran the preloader within a stream), the whole
    // queued batch is flushed and the page is demand-loaded instead.
    // Under kPreemptAndFlush every demand fault flushes the queue. A
    // queued SIP prefetch for the page is simply promoted (cancelled and
    // re-issued as the demand load).
    const bool flush =
        (pending.has_value() && pending->kind == OpKind::kDfpPreload) ||
        dp == DemandPolicy::kPreemptAndFlush;
    if (flush) {
      flush_queued_preloads(after_aex);
    }
    if (pending.has_value() && pending->kind == OpKind::kSipLoad) {
      const bool cancelled = channel_.cancel_not_started(page, after_aex);
      SGXPL_CHECK_MSG(cancelled, "queued SIP op for page " << page
                                     << " could not be promoted");
    }
    if (demand_fifo) {
      load_end =
          schedule_load(page, after_aex, OpKind::kDemandLoad, pid).end;
    } else {
      load_end =
          schedule_load_priority(page, after_aex, OpKind::kDemandLoad, pid)
              .end;
    }
    ++stats_.demand_loads;
  }

  // Consult the preload policy while the fault is being serviced; its
  // predictions queue up behind the demand load (through the admission
  // layer when a queue bound or the degradation ladder is configured).
  if (policy_ != nullptr) {
    const auto predicted = policy_->on_fault(pid, page, after_aex);
    obs::ScopedSpan issue_span(predicted.empty() ? nullptr : prof_,
                               obs::Phase::kPreloadIssue);
    std::uint64_t scheduled = 0;
    std::vector<PageNum> shed;
    for (const PageNum p : predicted) {
      if (p >= config_.elrange_pages || page_table_.present(p) ||
          channel_.find(p).has_value()) {
        continue;
      }
      if (submit_preload(pid, p, after_aex) == AdmissionResult::kAdmitted) {
        ++stats_.preloads_issued;
        ++scheduled;
      } else {
        shed.push_back(p);
      }
    }
    if (!shed.empty()) {
      policy_->on_preloads_shed(shed, after_aex);
    }
    if (dfp_batch_hist_ != nullptr && !predicted.empty()) {
      dfp_batch_hist_->record(scheduled);
    }
  }

  Cycles done = 0;
  int attempts = 0;
  for (;;) {
    done = load_end + costs_.eresume;
    advance_to(done);
    if (page_table_.present(page)) {
      break;
    }
    // Pathological: other loads committing in the same window evicted the
    // page before the enclave re-entered (possible under heavy preload
    // pressure, and routinely under the idealized parallel-channel
    // ablation). The access simply faults again.
    SGXPL_CHECK_MSG(++attempts <= 8,
                    "page " << page << " evicted "
                            << attempts << " times before first use");
    ++stats_.faults;
    const Cycles retry_at = done + costs_.aex;
    advance_to(retry_at);
    if (const auto op = channel_.find(page)) {
      load_end = op->end;
      ++stats_.fault_wait_hits;
    } else if (demand_fifo) {
      load_end = schedule_load(page, retry_at, OpKind::kDemandLoad, pid).end;
      ++stats_.demand_loads;
    } else {
      load_end =
          schedule_load_priority(page, retry_at, OpKind::kDemandLoad, pid)
              .end;
      ++stats_.demand_loads;
    }
  }
  if (page_table_.touch(page)) {
    ++stats_.preloads_used;
  }
  eviction_->on_access(page);
  if (log_ != nullptr) {
    log_->record({.at = done, .type = EventType::kResume, .page = page});
  }
  stats_.fault_stall_cycles += done - now;
  if (fault_stall_hist_ != nullptr) {
    fault_stall_hist_->record(done - now);
  }
  fault_span.add_cycles(done - now);
  return AccessOutcome{.completion = done, .faulted = true,
                       .hit_inflight = hit_inflight};
}

Cycles Driver::sip_load(PageNum page, Cycles now) {
  SGXPL_CHECK_MSG(page < config_.elrange_pages,
                  "sip_load outside ELRANGE: page " << page);
  obs::ScopedSpan span(prof_, obs::Phase::kSipLoad);
  if (log_ != nullptr) {
    log_->record({.at = now, .type = EventType::kSipRequest, .page = page});
  }
  advance_to(now);
  if (page_table_.present(page)) {
    // The shared bitmap was stale (page arrived between check and request).
    return now;
  }
  Cycles end = 0;
  if (const auto pending = channel_.find(page)) {
    end = pending->end;
    ++stats_.sip_inflight_waits;
  } else if (config_.demand_policy == DemandPolicy::kFifo) {
    end = schedule_load(page, now, OpKind::kSipLoad).end;
    ++stats_.sip_loads;
  } else {
    // The blocking notification overtakes queued asynchronous preloads.
    end = schedule_load_priority(page, now, OpKind::kSipLoad).end;
    ++stats_.sip_loads;
  }
  int attempts = 0;
  for (;;) {
    advance_to(end);
    if (page_table_.present(page)) {
      break;
    }
    // Evicted by a racing commit before the requester could use it; the
    // kernel worker retries the load.
    SGXPL_CHECK_MSG(++attempts <= 8,
                    "sip page " << page << " evicted " << attempts
                                << " times before first use");
    if (const auto op = channel_.find(page)) {
      end = op->end;
    } else {
      end = schedule_load(page, end, OpKind::kSipLoad).end;
      ++stats_.sip_loads;
    }
  }
  stats_.sip_stall_cycles += end - now;
  if (sip_stall_hist_ != nullptr) {
    sip_stall_hist_->record(end - now);
  }
  span.add_cycles(end - now);
  return end;
}

bool Driver::sip_bitmap_check(PageNum page, Cycles now) {
  SGXPL_CHECK_MSG(page < config_.elrange_pages,
                  "bitmap check outside ELRANGE: page " << page);
  obs::ScopedSpan span(prof_, obs::Phase::kBitmapCheck);
  const bool actual = bitmap_.test(page);
  if (chaos_ == nullptr) {
    return actual;
  }
  const bool seen = chaos_->corrupt_bitmap_read(page, actual, now);
  if (seen != actual) {
    ++stats_.bitmap_lies;
    chaos_dirty_ = true;
  }
  return seen;
}

void Driver::sip_prefetch(PageNum page, Cycles now) {
  SGXPL_CHECK_MSG(page < config_.elrange_pages,
                  "sip_prefetch outside ELRANGE: page " << page);
  obs::ScopedSpan span(prof_, obs::Phase::kSipPrefetch);
  advance_to(now);
  if (page_table_.present(page) || channel_.find(page).has_value()) {
    return;
  }
  if (draining(ProcessId{0})) {
    // Prefetches are speculative; a draining tenant sheds them like any
    // other preload-class submission (see submit_preload).
    ++stats_.preloads_shed;
    if (log_ != nullptr) {
      log_->record({.at = now, .type = EventType::kAdmission, .page = page,
                    .detail = to_string(AdmissionResult::kRejectedDegraded)});
    }
    return;
  }
  // Prefetches are speculative, so the admission layer may shed them: a
  // degraded tenant loses prefetch privileges first, and a full bounded
  // queue rejects them like any other preload-class submission.
  if (channel_.bounded() || admission_active()) {
    AdmissionResult r = AdmissionResult::kAdmitted;
    if (admission_active() && !tenant(ProcessId{0}).prefetches_allowed()) {
      r = AdmissionResult::kRejectedDegraded;
    } else if (channel_.full()) {
      r = AdmissionResult::kRejectedFull;
      if (admission_active()) {
        tenant(ProcessId{0}).note_rejected();
      }
    }
    if (r != AdmissionResult::kAdmitted) {
      ++stats_.preloads_shed;
      if (log_ != nullptr) {
        log_->record({.at = now, .type = EventType::kAdmission, .page = page,
                      .detail = to_string(r)});
      }
      return;
    }
  }
  // Prefetches queue like preloads (no demand priority); demand faults
  // never flush them — the app explicitly asked for the page.
  if (log_ != nullptr) {
    log_->record({.at = now, .type = EventType::kSipPrefetch, .page = page});
  }
  schedule_load(page, now, OpKind::kSipLoad);
  ++stats_.sip_prefetches;
}

void Driver::advance_to(Cycles now) {
  if (now < bookkept_until_) {
    now = bookkept_until_;
  }
  // Hoisted out of the loop: in the default (non-hardened) config every
  // completion commits directly, with no retry bookkeeping to consult.
  const bool hard = hardened();
  while (next_scan_ <= now) {
    if (chaos_ != nullptr) {
      // The injector may stall the service thread: the scan slips, so
      // commits and DFP counter updates arrive late. The stall is strictly
      // positive, so the loop always makes progress.
      const Cycles stall = chaos_->stall_scan(next_scan_, costs_.scan_period);
      if (stall > 0) {
        ++stats_.scan_stalls;
        chaos_dirty_ = true;
        next_scan_ += stall;
        continue;
      }
    }
    obs::ScopedSpan scan_span(prof_, obs::Phase::kScan);
    for (const auto& op : channel_.collect_completed(next_scan_)) {
      if (!hard || op.kind != OpKind::kDfpPreload) {
        commit_load(op);
      } else {
        deliver_completion(op);
      }
    }
    if (hard) {
      sweep_lost_ops(next_scan_);
    }
    ++stats_.scans;
    if (log_ != nullptr) {
      log_->record({.at = next_scan_, .type = EventType::kScan});
    }
    if (policy_ != nullptr) {
      if (chaos_ != nullptr && chaos_->lose_predictor_state(next_scan_)) {
        chaos_dirty_ = true;
        policy_->on_state_lost(next_scan_);
      }
      policy_->on_scan(page_table_, next_scan_);
    }
    if (series_ != nullptr) {
      sample_time_series(next_scan_);
    }
    watchdog_tick(next_scan_);
    if (admission_active()) {
      admission_windows(next_scan_);
    }
    if (elastic_engaged_) {
      elastic_rebalance(next_scan_);
    }
    next_scan_ += costs_.scan_period;
  }
  for (const auto& op : channel_.collect_completed(now)) {
    if (!hard || op.kind != OpKind::kDfpPreload) {
      commit_load(op);
    } else {
      deliver_completion(op);
    }
  }
  if (hard) {
    sweep_lost_ops(now);
  }
  bookkept_until_ = now;
}

void Driver::watchdog_tick(Cycles now) {
  if (config_.watchdog_scan_interval == 0) {
    return;
  }
  ++scans_since_watchdog_;
  if (!chaos_dirty_ &&
      scans_since_watchdog_ < config_.watchdog_scan_interval) {
    return;
  }
  check_invariants();
  ++stats_.watchdog_checks;
  if (log_ != nullptr) {
    log_->record({.at = now, .type = EventType::kWatchdog,
                  .aux = stats_.scans});
  }
  scans_since_watchdog_ = 0;
  chaos_dirty_ = false;
}

Cycles Driver::drain() {
  Cycles end = std::max(bookkept_until_, channel_.completion_time());
  advance_to(end);
  // Hardened mode: lost ops may still be waiting on their deadlines, and
  // re-issues put fresh work on the channel. Keep advancing past the
  // furthest deadline/completion until both settle — every lost op exits
  // within max_retries attempts, so this terminates.
  while (!lost_ops_.empty() || !channel_.idle(bookkept_until_)) {
    Cycles next = std::max(bookkept_until_, channel_.completion_time());
    for (const auto& lo : lost_ops_) {
      next = std::max(next, lo.deadline);
    }
    advance_to(next);
    end = std::max(end, bookkept_until_);
  }
  return end;
}

PageNum Driver::effective_capacity(Cycles now) const {
  PageNum real = epc_.capacity();
  if (capacity_limit_ > 0 && capacity_limit_ < real) {
    real = capacity_limit_;
  }
  if (chaos_ == nullptr) {
    return std::max<PageNum>(real, 1);
  }
  // Chaos squeezes see the physical capacity (their contract predates the
  // elastic-pool limit); the tighter of the two caps wins.
  const PageNum cap = chaos_->effective_epc_capacity(epc_.capacity(), now);
  return std::clamp<PageNum>(std::min(cap, real), 1, epc_.capacity());
}

Cycles Driver::load_duration(OpKind kind, Cycles at) {
  // Whether this load will need to evict first: every queued op is itself a
  // load that will consume a slot before this one runs.
  const bool needs_evict = page_table_.resident_count() + channel_.queued() >=
                           effective_capacity(at);
  Cycles base =
      costs_.epc_load + (needs_evict ? costs_.epc_evict : 0) +
      (kind == OpKind::kDfpPreload ? costs_.preload_dispatch : 0);
  if (channel_slowdown_milli_ != 1000) {
    base = std::max<Cycles>(1, base * channel_slowdown_milli_ / 1000);
  }
  if (chaos_ == nullptr) {
    return base;
  }
  const Cycles perturbed = chaos_->perturb_load_duration(kind, base, at);
  SGXPL_CHECK_MSG(perturbed > 0, "chaos produced a zero-length load");
  if (perturbed != base) {
    chaos_dirty_ = true;
  }
  return perturbed;
}

const ChannelOp& Driver::schedule_load(PageNum page, Cycles earliest,
                                       OpKind kind, ProcessId pid,
                                       std::uint32_t attempt) {
  // Never schedule into the already-bookkept past (callers may legally
  // pass clocks that lag the driver's horizon, e.g. multi-enclave apps).
  earliest = std::max(earliest, bookkept_until_);
  const auto& op =
      channel_.schedule(earliest, load_duration(kind, earliest), page, kind,
                        pid, attempt, hardened() ? deadline_slack() : 0);
  if (log_ != nullptr) {
    log_->record({.at = op.start, .type = EventType::kLoadScheduled,
                  .page = page, .aux = op.end, .detail = to_string(kind)});
  }
  return op;
}

const ChannelOp& Driver::schedule_load_priority(PageNum page, Cycles earliest,
                                                OpKind kind, ProcessId pid) {
  earliest = std::max(earliest, bookkept_until_);
  // Backpressure: a demand-class load arriving past the high-water mark
  // evicts the newest queued preloads — demand is never rejected, preloads
  // are shed first.
  if (channel_.bounded() && channel_.queued() >= channel_.high_water()) {
    std::vector<PageNum> shed;
    while (channel_.queued() >= channel_.high_water()) {
      const auto victim = channel_.shed_newest_preload(earliest);
      if (!victim.has_value()) {
        break;
      }
      shed.push_back(victim->page);
      ++stats_.queued_preload_evictions;
      if (log_ != nullptr) {
        log_->record({.at = earliest, .type = EventType::kAdmission,
                      .page = victim->page, .detail = "queue-evict"});
      }
    }
    if (!shed.empty() && policy_ != nullptr) {
      policy_->on_preloads_shed(shed, earliest);
    }
  }
  const auto& op = channel_.schedule_priority(
      earliest, load_duration(kind, earliest), page, kind, pid, 0,
      hardened() ? deadline_slack() : 0);
  if (log_ != nullptr) {
    log_->record({.at = op.start, .type = EventType::kLoadScheduled,
                  .page = page, .aux = op.end, .detail = to_string(kind)});
  }
  return op;
}

AdmissionResult Driver::submit_preload(ProcessId pid, PageNum page,
                                       Cycles earliest) {
  if (draining(pid)) {
    // Stop-and-copy window: the tenant's speculative work is shed so the
    // final migration delta stops growing. Self-inflicted, so no window
    // evidence — exactly like a degraded-level rejection.
    ++stats_.preloads_shed;
    if (log_ != nullptr) {
      log_->record({.at = std::max(earliest, bookkept_until_),
                    .type = EventType::kAdmission, .page = page,
                    .detail = to_string(AdmissionResult::kRejectedDegraded)});
    }
    return AdmissionResult::kRejectedDegraded;
  }
  if (!admission_active() && !channel_.bounded()) {
    // Seed fast path: no admission layer configured at all.
    schedule_load(page, earliest, OpKind::kDfpPreload, pid);
    return AdmissionResult::kAdmitted;
  }
  AdmissionResult r = AdmissionResult::kAdmitted;
  if (admission_active()) {
    AdmissionController& t = tenant(pid);
    if (!t.preloads_allowed()) {
      // Self-inflicted rejection: deliberately NOT window evidence, or a
      // demoted tenant could never look healthy again.
      r = AdmissionResult::kRejectedDegraded;
    } else {
      const std::size_t quota = t.preload_quota(channel_.config().max_queued);
      if (quota > 0 && channel_.queued_preloads_for(pid) >= quota) {
        r = AdmissionResult::kRejectedQuota;
        t.note_rejected();
      }
    }
  }
  if (r == AdmissionResult::kAdmitted) {
    const Cycles at = std::max(earliest, bookkept_until_);
    const ChannelOp* op = nullptr;
    r = channel_.try_schedule(at, load_duration(OpKind::kDfpPreload, at), page,
                              OpKind::kDfpPreload, pid, 0,
                              hardened() ? deadline_slack() : 0, &op);
    if (r == AdmissionResult::kAdmitted) {
      if (admission_active()) {
        tenant(pid).note_admitted();
      }
      if (log_ != nullptr) {
        log_->record({.at = op->start, .type = EventType::kLoadScheduled,
                      .page = page, .aux = op->end,
                      .detail = to_string(OpKind::kDfpPreload)});
      }
      return r;
    }
    if (admission_active()) {
      tenant(pid).note_rejected();
    }
  }
  ++stats_.preloads_shed;
  if (log_ != nullptr) {
    log_->record({.at = std::max(earliest, bookkept_until_),
                  .type = EventType::kAdmission, .page = page,
                  .detail = to_string(r)});
  }
  return r;
}

void Driver::deliver_completion(const ChannelOp& op) {
  if (!hardened() || op.kind != OpKind::kDfpPreload) {
    commit_load(op);
    return;
  }
  if (already_completed(op.id)) {
    // Idempotent suppression of a duplicated completion: the op already
    // committed, so this delivery must change neither residency nor stats.
    ++stats_.duplicate_completions;
    if (log_ != nullptr) {
      log_->record({.at = op.end, .type = EventType::kRetry, .page = op.page,
                    .detail = "duplicate"});
    }
    return;
  }
  if (chaos_ != nullptr && chaos_->drop_preload_completion(op.page, op.end)) {
    // Hardened reinterpretation of the drop class: the worker crashed
    // between the ELDU and publishing the mapping, so the load's effects
    // are lost entirely (channel time was still spent). The retry sweep
    // owns the op from here — nothing is lost silently.
    chaos_dirty_ = true;
    channel_busy_total_ += op.end - op.start;
    ++stats_.lost_completions;
    lost_ops_.push_back(LostOp{.id = op.id, .page = op.page, .pid = op.pid,
                               .attempt = op.attempt,
                               .deadline = op.deadline});
    if (log_ != nullptr) {
      log_->record({.at = op.end, .type = EventType::kRetry, .page = op.page,
                    .detail = "lost"});
    }
    return;
  }
  commit_load(op);
  note_completed(op.id);
  if (chaos_ != nullptr &&
      chaos_->duplicate_preload_completion(op.page, op.end)) {
    chaos_dirty_ = true;
    deliver_completion(op);  // second delivery; the id ring suppresses it
  }
}

void Driver::sweep_lost_ops(Cycles now) {
  if (lost_ops_.empty()) {
    return;
  }
  obs::ScopedSpan span(prof_, obs::Phase::kRetrySweep);
  std::vector<LostOp> keep;
  keep.reserve(lost_ops_.size());
  for (const LostOp& lo : lost_ops_) {
    if (lo.deadline > now) {
      keep.push_back(lo);
      continue;
    }
    if (page_table_.present(lo.page) || channel_.find(lo.page).has_value()) {
      // Another load (demand fault, fresh prediction) made the retry moot.
      ++stats_.retries_resolved;
      continue;
    }
    if (lo.attempt >= config_.channel.max_retries) {
      ++stats_.permanent_faults;
      if (admission_active()) {
        tenant(lo.pid).note_permanent();
      }
      if (log_ != nullptr) {
        log_->record({.at = now, .type = EventType::kRetry, .page = lo.page,
                      .detail = "permanent"});
      }
      if (policy_ != nullptr) {
        policy_->on_preloads_aborted({lo.page}, now);
      }
      continue;
    }
    // Capped exponential backoff, jittered from the dedicated retry stream.
    const Cycles base = retry_backoff_base();
    const Cycles backoff = base << std::min<std::uint32_t>(lo.attempt, 6);
    const Cycles jitter = retry_rng_.bounded(base / 2 + 1);
    const Cycles at = now + backoff + jitter;
    if (channel_.full()) {
      // No slot: the attempt is consumed and the op waits out the backoff.
      LostOp deferred = lo;
      deferred.attempt += 1;
      deferred.deadline = at;
      keep.push_back(deferred);
      continue;
    }
    schedule_load(lo.page, at, OpKind::kDfpPreload, lo.pid, lo.attempt + 1);
    ++stats_.retries;
    if (admission_active()) {
      tenant(lo.pid).note_retry();
    }
    if (log_ != nullptr) {
      log_->record({.at = now, .type = EventType::kRetry, .page = lo.page,
                    .detail = "reissue"});
    }
  }
  lost_ops_.swap(keep);
}

void Driver::admission_windows(Cycles now) {
  int worst = 0;
  for (std::size_t pid = 0; pid < tenants_.size(); ++pid) {
    AdmissionController& t = tenants_[pid];
    const int delta = t.on_window();
    if (delta < 0) {
      ++stats_.degrade_demotions;
      if (elastic_engaged_ && pid < elastic_.tenant_count()) {
        // The ladder judged this tenant overloaded: that verdict doubles as
        // the elastic controller's multiplicative-decrease signal.
        elastic_.note_demotion(pid);
      }
    } else if (delta > 0) {
      ++stats_.degrade_promotions;
    }
    if (delta != 0 && log_ != nullptr) {
      log_->record({.at = now, .type = EventType::kDegrade,
                    .page = static_cast<PageNum>(pid),
                    .detail = to_string(t.level())});
    }
    worst = std::max(worst, static_cast<int>(t.level()));
  }
  if (degrade_gauge_ != nullptr) {
    degrade_gauge_->set(worst);
  }
}

AdmissionController& Driver::tenant(ProcessId pid) {
  if (tenants_.size() <= pid) {
    tenants_.resize(pid + 1, AdmissionController(config_.admission));
  }
  return tenants_[pid];
}

DegradeLevel Driver::degrade_level(ProcessId pid) const noexcept {
  return pid < tenants_.size() ? tenants_[pid].level()
                               : DegradeLevel::kFullPreload;
}

void Driver::begin_drain(ProcessId pid) {
  if (drain_flags_.size() <= pid) {
    drain_flags_.resize(pid + 1, 0);
  }
  if (drain_flags_[pid] == 0) {
    drain_flags_[pid] = 1;
    ++draining_count_;
  }
  if (admission_active()) {
    tenant(pid).begin_drain();
  }
}

void Driver::end_drain(ProcessId pid) {
  if (pid < drain_flags_.size() && drain_flags_[pid] != 0) {
    drain_flags_[pid] = 0;
    --draining_count_;
  }
  if (admission_active() && pid < tenants_.size()) {
    tenants_[pid].end_drain();
  }
}

bool Driver::draining(ProcessId pid) const noexcept {
  return draining_count_ != 0 && pid < drain_flags_.size() &&
         drain_flags_[pid] != 0;
}

void Driver::set_elastic_geometry(
    const std::vector<std::pair<PageNum, PageNum>>& tenants) {
  SGXPL_CHECK_MSG(config_.elastic.enabled,
                  "set_elastic_geometry without elastic.enabled");
  SGXPL_CHECK_MSG(config_.eviction == EvictionKind::kClock,
                  "elastic quota enforcement requires the CLOCK policy "
                  "(its sweep is what the range-restricted reclaim reuses)");
  SGXPL_CHECK_MSG(stats_.accesses == 0,
                  "elastic geometry must be declared before the first access");
  SGXPL_CHECK_MSG(!tenants.empty(), "elastic geometry with zero tenants");
  elastic_.configure(config_.elastic, epc_.capacity());
  for (const auto& [lo, pages] : tenants) {
    elastic_.add_tenant(lo, pages);
  }
  elastic_.finalize();
  elastic_engaged_ = true;
}

void Driver::elastic_rebalance(Cycles now) {
  obs::ScopedSpan span(prof_, obs::Phase::kElasticRebalance);
  double utilization = 0.0;
  if (now > el_last_at_) {
    utilization = std::min(
        1.0, static_cast<double>(channel_busy_total_ - el_last_busy_) /
                 static_cast<double>(now - el_last_at_));
  }
  el_last_at_ = now;
  el_last_busy_ = channel_busy_total_;
  elastic_.rebalance(utilization, drain_flags_);
  if (series_ != nullptr) {
    series_->series("epc.elastic.free_pool")
        .add(now, static_cast<double>(elastic_.free_pool()));
  }
}

bool Driver::already_completed(std::uint64_t op_id) const noexcept {
  return std::find(completed_ring_.begin(), completed_ring_.end(), op_id) !=
         completed_ring_.end();
}

void Driver::note_completed(std::uint64_t op_id) {
  completed_ring_[completed_pos_] = op_id;
  completed_pos_ = (completed_pos_ + 1) % completed_ring_.size();
}

void Driver::sample_time_series(Cycles now) {
  if (now <= ts_last_at_) {
    return;
  }
  const double dt = static_cast<double>(now - ts_last_at_);
  series_->series("driver.faults_per_mcycle")
      .add(now, static_cast<double>(stats_.faults - ts_last_faults_) * 1e6 /
                    dt);
  series_->series("epc.occupancy")
      .add(now, static_cast<double>(epc_.used()) /
                    static_cast<double>(epc_.capacity()));
  series_->series("channel.utilization")
      .add(now, std::min(1.0, static_cast<double>(channel_busy_total_ -
                                                  ts_last_busy_) /
                                  dt));
  const std::uint64_t completed =
      stats_.preloads_completed - ts_last_preloads_completed_;
  if (completed > 0) {
    series_->series("dfp.preload_accuracy")
        .add(now, static_cast<double>(stats_.preloads_used -
                                      ts_last_preloads_used_) /
                      static_cast<double>(completed));
  }
  ts_last_at_ = now;
  ts_last_busy_ = channel_busy_total_;
  ts_last_faults_ = stats_.faults;
  ts_last_preloads_used_ = stats_.preloads_used;
  ts_last_preloads_completed_ = stats_.preloads_completed;
}

void Driver::flush_queued_preloads(Cycles now) {
  auto aborted = channel_.abort_not_started(now, OpKind::kDfpPreload);
  if (aborted.empty()) {
    return;
  }
  stats_.preloads_aborted += aborted.size();
  if (log_ != nullptr) {
    log_->record({.at = now, .type = EventType::kLoadsAborted,
                  .page = aborted.size()});
  }
  if (policy_ != nullptr) {
    std::vector<PageNum> pages;
    pages.reserve(aborted.size());
    for (const auto& op : aborted) {
      pages.push_back(op.page);
    }
    policy_->on_preloads_aborted(pages, now);
  }
}

void Driver::commit_load(const ChannelOp& op) {
  SGXPL_CHECK_MSG(!page_table_.present(op.page),
                  "load committed for already-resident page " << op.page);
  channel_busy_total_ += op.end - op.start;
  if (elastic_engaged_) {
    // Elastic quota enforcement — EDMM's lazy EACCEPT of a removal: a
    // shrink only moved the quota; the pages above it are reclaimed here,
    // from the owner's own ELRANGE slice, as its next load commits. One
    // iteration per page keeps a deep multiplicative decrease incremental.
    const std::size_t t = elastic_.owner(op.page);
    while (elastic_.resident(t) >= elastic_.quota(t) &&
           elastic_.resident(t) > 0) {
      obs::ScopedSpan span(prof_, obs::Phase::kEviction);
      const PageNum victim = epc_.choose_victim_in(
          page_table_, elastic_.lo(t), elastic_.hi(t), op.page);
      if (victim == kInvalidPage) {
        break;  // nothing evictable in range (all in flight/pinned)
      }
      elastic_.note_quota_eviction();
      evict_page(victim);
    }
  }
  // A transient EPC squeeze (co-tenant pressure via the chaos hooks) can
  // demand more than one eviction to get under the shrunken capacity; the
  // loop degenerates to the single full-EPC eviction without chaos.
  const PageNum cap = effective_capacity(op.end);
  if (chaos_ != nullptr && cap < epc_.capacity()) {
    chaos_dirty_ = true;
  }
  while (epc_.used() >= cap && epc_.used() > 0) {
    if (!epc_.full()) {
      ++stats_.squeeze_evictions;
    }
    evict_one(op.page);
  }
  const SlotIndex slot = epc_.allocate(op.page);
  page_table_.map(op.page, slot, /*via_preload=*/op.kind != OpKind::kDemandLoad);
  if (op.kind == OpKind::kDemandLoad) {
    // The faulting access completes as soon as the page lands, so the
    // hardware sets its access bit immediately — giving the page a CLOCK
    // second chance against evictions committed in the same window.
    page_table_.touch(op.page);
  }
  eviction_->on_load(op.page);
  // ELDU: verify against the anti-replay version from the last EWB.
  (void)backing_.load(op.page);
  bitmap_.set(op.page);
  if (elastic_engaged_) {
    elastic_.note_mapped(op.page);
  }
  if (log_ != nullptr) {
    log_->record({.at = op.end, .type = EventType::kLoadCommitted,
                  .page = op.page, .detail = to_string(op.kind)});
  }
  if (op.kind == OpKind::kDfpPreload) {
    ++stats_.preloads_completed;
    if (policy_ != nullptr) {
      if (hardened()) {
        // Drop/dup were already resolved in deliver_completion: a dropped
        // op never reaches here and a duplicated one commits exactly once,
        // so the policy sees exactly one notification per landed preload.
        policy_->on_preload_completed(op.page, op.end);
      } else {
        // Seed semantics: the kernel worker's completion notification is
        // the one DFP input chaos can drop or duplicate — the page is
        // resident either way, only the policy's bookkeeping goes stale
        // (and must tolerate it).
        const bool drop = chaos_ != nullptr &&
                          chaos_->drop_preload_completion(op.page, op.end);
        if (!drop) {
          policy_->on_preload_completed(op.page, op.end);
          if (chaos_ != nullptr &&
              chaos_->duplicate_preload_completion(op.page, op.end)) {
            chaos_dirty_ = true;
            policy_->on_preload_completed(op.page, op.end);
          }
        } else {
          chaos_dirty_ = true;
        }
      }
    }
  }
}

void Driver::evict_one(PageNum pinned) {
  obs::ScopedSpan span(prof_, obs::Phase::kEviction);
  PageNum victim = kInvalidPage;
  if (elastic_engaged_) {
    // Capacity pressure reclaims deferred-shrink debt first: the tenant
    // furthest over its quota pays before anyone under quota loses a page.
    if (const auto over = elastic_.most_over_quota()) {
      victim = epc_.choose_victim_in(page_table_, elastic_.lo(*over),
                                     elastic_.hi(*over), pinned);
    }
  }
  if (victim == kInvalidPage) {
    victim = eviction_->victim(page_table_, pinned);
  }
  evict_page(victim);
}

void Driver::evict_page(PageNum victim) {
  eviction_->on_unload(victim);
  const PageTableEntry prior = page_table_.unmap(victim);
  epc_.release(prior.slot);
  backing_.evict(victim);
  bitmap_.clear(victim);
  if (elastic_engaged_) {
    elastic_.note_unmapped(victim);
  }
  ++stats_.evictions;
  if (log_ != nullptr) {
    log_->record({.at = bookkept_until_, .type = EventType::kEviction,
                  .page = victim});
  }
  if (prior.preloaded) {
    ++stats_.preloads_evicted_unused;
    if (policy_ != nullptr) {
      policy_->on_preloaded_page_evicted(victim, /*was_accessed=*/false,
                                         bookkept_until_);
    }
  }
}

void Driver::check_invariants() const {
  SGXPL_CHECK(page_table_.resident_count() == epc_.used());
  SGXPL_CHECK(bitmap_.popcount() == epc_.used());
  std::uint64_t present = 0;
  std::vector<PageNum> resident_by_tenant(
      elastic_engaged_ ? elastic_.tenant_count() : 0, 0);
  for (PageNum p = 0; p < config_.elrange_pages; ++p) {
    const auto& e = page_table_.entry(p);
    if (e.present) {
      ++present;
      SGXPL_CHECK(e.slot != kInvalidSlot);
      SGXPL_CHECK_MSG(epc_.page_at(e.slot) == p,
                      "slot " << e.slot << " does not hold page " << p);
      SGXPL_CHECK(bitmap_.test(p));
      if (elastic_engaged_) {
        ++resident_by_tenant[elastic_.owner(p)];
      }
    } else {
      SGXPL_CHECK(!bitmap_.test(p));
    }
  }
  SGXPL_CHECK(present == epc_.used());
  if (elastic_engaged_) {
    for (std::size_t t = 0; t < resident_by_tenant.size(); ++t) {
      SGXPL_CHECK_MSG(resident_by_tenant[t] == elastic_.resident(t),
                      "elastic resident count for tenant "
                          << t << " is " << elastic_.resident(t)
                          << " but the page table holds "
                          << resident_by_tenant[t]);
    }
    elastic_.check_conservation();
  }
}

void DriverStats::save(snapshot::Writer& w) const {
  w.u64("stats.accesses", accesses);
  w.u64("stats.faults", faults);
  w.u64("stats.demand_loads", demand_loads);
  w.u64("stats.fault_wait_hits", fault_wait_hits);
  w.u64("stats.preloads_issued", preloads_issued);
  w.u64("stats.preloads_completed", preloads_completed);
  w.u64("stats.preloads_aborted", preloads_aborted);
  w.u64("stats.preloads_used", preloads_used);
  w.u64("stats.preloads_evicted_unused", preloads_evicted_unused);
  w.u64("stats.sip_loads", sip_loads);
  w.u64("stats.sip_inflight_waits", sip_inflight_waits);
  w.u64("stats.sip_prefetches", sip_prefetches);
  w.u64("stats.evictions", evictions);
  w.u64("stats.scans", scans);
  w.u64("stats.scan_stalls", scan_stalls);
  w.u64("stats.watchdog_checks", watchdog_checks);
  w.u64("stats.bitmap_lies", bitmap_lies);
  w.u64("stats.squeeze_evictions", squeeze_evictions);
  w.u64("stats.preloads_shed", preloads_shed);
  w.u64("stats.queued_preload_evictions", queued_preload_evictions);
  w.u64("stats.lost_completions", lost_completions);
  w.u64("stats.retries", retries);
  w.u64("stats.retries_resolved", retries_resolved);
  w.u64("stats.permanent_faults", permanent_faults);
  w.u64("stats.duplicate_completions", duplicate_completions);
  w.u64("stats.degrade_demotions", degrade_demotions);
  w.u64("stats.degrade_promotions", degrade_promotions);
  w.u64("stats.fault_stall_cycles", fault_stall_cycles);
  w.u64("stats.sip_stall_cycles", sip_stall_cycles);
}

void DriverStats::load(snapshot::Reader& r) {
  accesses = r.u64("stats.accesses");
  faults = r.u64("stats.faults");
  demand_loads = r.u64("stats.demand_loads");
  fault_wait_hits = r.u64("stats.fault_wait_hits");
  preloads_issued = r.u64("stats.preloads_issued");
  preloads_completed = r.u64("stats.preloads_completed");
  preloads_aborted = r.u64("stats.preloads_aborted");
  preloads_used = r.u64("stats.preloads_used");
  preloads_evicted_unused = r.u64("stats.preloads_evicted_unused");
  sip_loads = r.u64("stats.sip_loads");
  sip_inflight_waits = r.u64("stats.sip_inflight_waits");
  sip_prefetches = r.u64("stats.sip_prefetches");
  evictions = r.u64("stats.evictions");
  scans = r.u64("stats.scans");
  scan_stalls = r.u64("stats.scan_stalls");
  watchdog_checks = r.u64("stats.watchdog_checks");
  bitmap_lies = r.u64("stats.bitmap_lies");
  squeeze_evictions = r.u64("stats.squeeze_evictions");
  preloads_shed = r.u64("stats.preloads_shed");
  queued_preload_evictions = r.u64("stats.queued_preload_evictions");
  lost_completions = r.u64("stats.lost_completions");
  retries = r.u64("stats.retries");
  retries_resolved = r.u64("stats.retries_resolved");
  permanent_faults = r.u64("stats.permanent_faults");
  duplicate_completions = r.u64("stats.duplicate_completions");
  degrade_demotions = r.u64("stats.degrade_demotions");
  degrade_promotions = r.u64("stats.degrade_promotions");
  fault_stall_cycles = r.u64("stats.fault_stall_cycles");
  sip_stall_cycles = r.u64("stats.sip_stall_cycles");
}

void Driver::save_drvr_fields(snapshot::Writer& w) const {
  w.str("driver.eviction", eviction_->name());
  w.u64("driver.next_scan", next_scan_);
  w.u64("driver.bookkept_until", bookkept_until_);
  w.u64("driver.scans_since_watchdog", scans_since_watchdog_);
  w.boolean("driver.chaos_dirty", chaos_dirty_);
  w.u64("driver.channel_busy_total", channel_busy_total_);
  w.u64("driver.ts_last_at", ts_last_at_);
  w.u64("driver.ts_last_busy", ts_last_busy_);
  w.u64("driver.ts_last_faults", ts_last_faults_);
  w.u64("driver.ts_last_preloads_used", ts_last_preloads_used_);
  w.u64("driver.ts_last_preloads_completed", ts_last_preloads_completed_);
  // --- overload-hardening state (retry sweep, dup ring, ladder) ---
  w.boolean("driver.hardened", hardened());
  w.boolean("driver.admission", admission_active());
  w.u64_vec("driver.retry_rng",
            std::vector<std::uint64_t>(retry_rng_.state().begin(),
                                       retry_rng_.state().end()));
  std::vector<std::uint64_t> lost_ids, lost_pages, lost_pids, lost_attempts,
      lost_deadlines;
  lost_ids.reserve(lost_ops_.size());
  for (const auto& lo : lost_ops_) {
    lost_ids.push_back(lo.id);
    lost_pages.push_back(lo.page);
    lost_pids.push_back(lo.pid);
    lost_attempts.push_back(lo.attempt);
    lost_deadlines.push_back(lo.deadline);
  }
  w.u64_vec("driver.lost_ids", lost_ids);
  w.u64_vec("driver.lost_pages", lost_pages);
  w.u64_vec("driver.lost_pids", lost_pids);
  w.u64_vec("driver.lost_attempts", lost_attempts);
  w.u64_vec("driver.lost_deadlines", lost_deadlines);
  w.u64_vec("driver.completed_ring", completed_ring_);
  w.u64("driver.completed_pos", completed_pos_);
  w.u64("driver.tenants", tenants_.size());
  for (const auto& t : tenants_) {
    t.save(w);
  }
  stats_.save(w);
  channel_.save(w);
  eviction_->save(w);
  if (elastic_engaged_) {
    // Gated on engagement (part of the snapshot identity via overload_spec):
    // default-config frames stay byte-identical to the seed.
    w.u64("driver.el_last_at", el_last_at_);
    w.u64("driver.el_last_busy", el_last_busy_);
    elastic_.save(w);
  }
}

void Driver::load_drvr_fields(snapshot::Reader& r) {
  const std::string eviction_name = r.str("driver.eviction");
  SGXPL_CHECK_MSG(eviction_name == eviction_->name(),
                  "snapshot was taken with eviction policy '"
                      << eviction_name << "' but this driver runs '"
                      << eviction_->name() << "'");
  next_scan_ = r.u64("driver.next_scan");
  bookkept_until_ = r.u64("driver.bookkept_until");
  scans_since_watchdog_ = r.u64("driver.scans_since_watchdog");
  chaos_dirty_ = r.boolean("driver.chaos_dirty");
  channel_busy_total_ = r.u64("driver.channel_busy_total");
  ts_last_at_ = r.u64("driver.ts_last_at");
  ts_last_busy_ = r.u64("driver.ts_last_busy");
  ts_last_faults_ = r.u64("driver.ts_last_faults");
  ts_last_preloads_used_ = r.u64("driver.ts_last_preloads_used");
  ts_last_preloads_completed_ = r.u64("driver.ts_last_preloads_completed");
  const bool was_hardened = r.boolean("driver.hardened");
  SGXPL_CHECK_MSG(was_hardened == hardened(),
                  "snapshot retry hardening does not match this driver");
  const bool had_admission = r.boolean("driver.admission");
  SGXPL_CHECK_MSG(had_admission == admission_active(),
                  "snapshot admission control does not match this driver");
  const std::vector<std::uint64_t> rng_state = r.u64_vec("driver.retry_rng");
  SGXPL_CHECK_MSG(rng_state.size() == 4,
                  "snapshot retry-rng state has " << rng_state.size()
                                                  << " words, want 4");
  retry_rng_.set_state(
      {rng_state[0], rng_state[1], rng_state[2], rng_state[3]});
  const std::vector<std::uint64_t> lost_ids = r.u64_vec("driver.lost_ids");
  const std::vector<std::uint64_t> lost_pages = r.u64_vec("driver.lost_pages");
  const std::vector<std::uint64_t> lost_pids = r.u64_vec("driver.lost_pids");
  const std::vector<std::uint64_t> lost_attempts =
      r.u64_vec("driver.lost_attempts");
  const std::vector<std::uint64_t> lost_deadlines =
      r.u64_vec("driver.lost_deadlines");
  SGXPL_CHECK_MSG(lost_ids.size() == lost_pages.size() &&
                      lost_ids.size() == lost_pids.size() &&
                      lost_ids.size() == lost_attempts.size() &&
                      lost_ids.size() == lost_deadlines.size(),
                  "snapshot lost-op columns are misaligned");
  lost_ops_.clear();
  for (std::size_t i = 0; i < lost_ids.size(); ++i) {
    lost_ops_.push_back(
        LostOp{.id = lost_ids[i], .page = lost_pages[i],
               .pid = static_cast<ProcessId>(lost_pids[i]),
               .attempt = static_cast<std::uint32_t>(lost_attempts[i]),
               .deadline = lost_deadlines[i]});
  }
  completed_ring_ = r.u64_vec("driver.completed_ring");
  SGXPL_CHECK_MSG(!completed_ring_.empty(),
                  "snapshot completed-op ring is empty");
  completed_pos_ = r.u64("driver.completed_pos");
  SGXPL_CHECK_MSG(completed_pos_ < completed_ring_.size(),
                  "snapshot completed-op ring cursor out of range");
  const std::uint64_t tenant_count = r.u64("driver.tenants");
  tenants_.assign(tenant_count, AdmissionController(config_.admission));
  for (auto& t : tenants_) {
    t.load(r);
  }
  stats_.load(r);
  channel_.load(r);
  eviction_->load(r);
  if (elastic_engaged_) {
    el_last_at_ = r.u64("driver.el_last_at");
    el_last_busy_ = r.u64("driver.el_last_busy");
    elastic_.load(r);
  }
}

void Driver::save_sections(snapshot::Writer& w) const {
  w.begin_section("DRVR");
  save_drvr_fields(w);
  w.end_section();
  w.begin_section("PGTB");
  page_table_.save(w);
  w.end_section();
  w.begin_section("EPCC");
  epc_.save(w);
  w.end_section();
  w.begin_section("BMAP");
  bitmap_.save(w);
  w.end_section();
  w.begin_section("BSTR");
  backing_.save(w);
  w.end_section();
}

void Driver::load_sections(snapshot::Reader& r) {
  r.enter_section("DRVR");
  load_drvr_fields(r);
  r.leave_section();
  r.enter_section("PGTB");
  page_table_.load(r);
  r.leave_section();
  r.enter_section("EPCC");
  epc_.load(r);
  r.leave_section();
  r.enter_section("BMAP");
  bitmap_.load(r);
  r.leave_section();
  r.enter_section("BSTR");
  backing_.load(r);
  r.leave_section();
  check_invariants();
}

void Driver::save_delta_sections(snapshot::Writer& w,
                                 const snapshot::SectionGens& last) const {
  w.begin_section("DRVR");
  save_drvr_fields(w);
  w.end_section();
  if (page_table_.generation() != last.page_table) {
    w.begin_section("PGTD");
    page_table_.save_delta(w);
    w.end_section();
  }
  if (epc_.generation() != last.epc) {
    w.begin_section("EPCD");
    epc_.save_delta(w);
    w.end_section();
  }
  if (bitmap_.generation() != last.bitmap) {
    w.begin_section("BMPD");
    bitmap_.save_delta(w);
    w.end_section();
  }
  if (backing_.generation() != last.backing) {
    w.begin_section("BSTD");
    backing_.save_delta(w);
    w.end_section();
  }
}

void Driver::apply_delta_sections(snapshot::Reader& r) {
  r.enter_section("DRVR");
  load_drvr_fields(r);
  r.leave_section();
  // The four structure deltas are optional and ordered; consume whichever
  // are present.
  while (true) {
    const std::string tag = r.peek_section_tag();
    if (tag == "PGTD") {
      r.enter_section(tag);
      page_table_.apply_delta(r);
    } else if (tag == "EPCD") {
      r.enter_section(tag);
      epc_.apply_delta(r);
    } else if (tag == "BMPD") {
      r.enter_section(tag);
      bitmap_.apply_delta(r);
    } else if (tag == "BSTD") {
      r.enter_section(tag);
      backing_.apply_delta(r);
    } else {
      break;
    }
    r.leave_section();
  }
  check_invariants();
}

snapshot::SectionGens Driver::section_gens() const {
  return snapshot::SectionGens{
      .page_table = page_table_.generation(),
      .epc = epc_.generation(),
      .bitmap = bitmap_.generation(),
      .backing = backing_.generation(),
  };
}

void Driver::clear_dirty() {
  page_table_.clear_dirty();
  epc_.clear_dirty();
  bitmap_.clear_dirty();
  backing_.clear_dirty();
}

}  // namespace sgxpl::sgxsim
