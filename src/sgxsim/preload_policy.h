// Hook interface through which a preloading scheme plugs into the driver.
//
// The DFP engine (src/dfp) implements this. The driver invokes it from the
// fault handler (prediction), from the channel bookkeeping (completion /
// abort / eviction of preloaded pages), and from the periodic service-thread
// scan (the CLOCK access-bit sweep the abort counters piggyback on, §4.2).
#pragma once

#include <vector>

#include "common/types.h"
#include "sgxsim/page_table.h"

namespace sgxpl::sgxsim {

class PreloadPolicy {
 public:
  virtual ~PreloadPolicy() = default;

  /// An enclave page fault on `page` is being serviced at virtual time
  /// `now`. Return the pages to preload, in issue order. Pages already
  /// resident or already queued on the channel are skipped by the driver.
  virtual std::vector<PageNum> on_fault(ProcessId pid, PageNum page,
                                        Cycles now) = 0;

  /// A preload issued by this policy finished loading into the EPC.
  virtual void on_preload_completed(PageNum page, Cycles now) = 0;

  /// Queued preloads were flushed because a demand fault took priority.
  virtual void on_preloads_aborted(const std::vector<PageNum>& pages,
                                   Cycles now) = 0;

  /// Predicted pages were shed by admission control before reaching the
  /// channel (bounded queue full, tenant quota, or degraded level), or a
  /// queued preload was evicted to make room for a demand load. Unlike an
  /// abort this is load-shedding, not misprediction evidence — but engines
  /// may still fold it into their overload accounting. Default: no-op.
  virtual void on_preloads_shed(const std::vector<PageNum>& /*pages*/,
                                Cycles /*now*/) {}

  /// A page this policy preloaded was evicted. `was_accessed` tells whether
  /// the application ever touched it (false = confirmed misprediction).
  virtual void on_preloaded_page_evicted(PageNum page, bool was_accessed,
                                         Cycles now) = 0;

  /// Periodic service-thread scan. The policy may inspect access bits
  /// through `pt` to account which of its preloaded pages were used.
  virtual void on_scan(const PageTable& pt, Cycles now) = 0;

  /// Chaos injection: the untrusted worker holding this policy's state was
  /// restarted and its in-memory predictor state is gone. Policies should
  /// drop learned state but keep their accounting counters (the kernel's
  /// persistent counters survive a worker restart). Default: no-op.
  virtual void on_state_lost(Cycles /*now*/) {}
};

}  // namespace sgxpl::sgxsim
