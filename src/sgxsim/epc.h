// The Enclave Page Cache: the fixed pool of protected physical page slots.
//
// SGX reserves ~128 MiB of physical memory for the EPC, of which ~96 MiB is
// usable by applications (the rest holds enclave metadata). The driver
// manages it at page granularity; when it is full a victim is chosen with a
// CLOCK second-chance sweep over the access bits (the Intel driver's
// reclaim heuristic the paper piggybacks on in §4.2).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sgxsim/page_table.h"
#include "snapshot/fwd.h"

namespace sgxpl::sgxsim {

/// Default usable EPC: 96 MiB of 4 KiB pages.
inline constexpr PageNum kDefaultEpcPages = bytes_to_pages(96ull << 20);

class Epc {
 public:
  explicit Epc(PageNum capacity_pages);

  PageNum capacity() const noexcept { return capacity_; }
  PageNum used() const noexcept { return used_; }
  bool full() const noexcept { return used_ == capacity_; }
  PageNum free_slots() const noexcept { return capacity_ - used_; }

  /// Allocate a free slot for `page`. Requires !full().
  SlotIndex allocate(PageNum page);

  /// Release the slot holding `page_in_slot` (after the page table unmapped
  /// it).
  void release(SlotIndex slot);

  /// Page currently held by a slot (kInvalidPage if free).
  PageNum page_at(SlotIndex slot) const;

  /// CLOCK second-chance victim selection: sweep from the hand, clearing
  /// access bits of occupied slots via the page table; the first occupied
  /// slot with a clear access bit wins. Requires at least one occupied slot.
  /// Never selects `pinned` (the page a load is being performed for).
  PageNum choose_victim(PageTable& pt, PageNum pinned = kInvalidPage);

  /// Range-restricted CLOCK sweep for elastic per-tenant quotas: like
  /// choose_victim, but only pages in [lo, hi) are candidates — and pages
  /// outside the range are passed over *without* losing their access bits,
  /// so enforcing one tenant's quota never ages another tenant's working
  /// set. Shares the hand with choose_victim. Returns kInvalidPage when the
  /// range holds no evictable page (the caller falls back to the global
  /// sweep).
  PageNum choose_victim_in(PageTable& pt, PageNum lo, PageNum hi,
                           PageNum pinned = kInvalidPage);

  /// Checkpoint/restore (slot map, free list order, CLOCK hand). load()
  /// requires an EPC constructed with the same capacity as the one saved.
  void save(snapshot::Writer& w) const;
  void load(snapshot::Reader& r);

  /// Delta checkpointing (format v2): scalars plus only the slots reassigned
  /// since the last clear_dirty(); the free list is written whole (it is
  /// near-empty whenever the enclave overcommits the EPC, which is the case
  /// this simulator exists to study).
  std::uint64_t generation() const noexcept { return gen_; }
  void save_delta(snapshot::Writer& w) const;
  void apply_delta(snapshot::Reader& r);
  void clear_dirty();

 private:
  void mark_dirty(SlotIndex slot);

  PageNum capacity_;
  PageNum used_ = 0;
  std::vector<PageNum> slot_to_page_;
  std::vector<SlotIndex> free_list_;
  SlotIndex clock_hand_ = 0;
  std::uint64_t gen_ = 0;
  std::vector<std::uint64_t> dirty_list_;
  std::vector<bool> dirty_flag_;
};

}  // namespace sgxpl::sgxsim
