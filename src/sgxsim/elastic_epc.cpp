#include "sgxsim/elastic_epc.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/check.h"
#include "snapshot/codec.h"

namespace sgxpl::sgxsim {

std::string elastic_spec(const ElasticParams& p) {
  std::ostringstream oss;
  oss << "floor=" << p.floor_pages << ",grow=" << p.grow_step
      << ",decrease=" << p.decrease_factor
      << ",util=" << p.backpressure_utilization
      << ",pressure=" << p.pressure_faults << ",streak=" << p.grow_streak
      << ",cooldown=" << p.cooldown_windows << ",idle=" << p.idle_windows;
  return oss.str();
}

namespace {

bool fail(std::string* err, const std::string& what) {
  if (err != nullptr) {
    *err = what;
  }
  return false;
}

std::string at(std::size_t pos) {
  return " at position " + std::to_string(pos);
}

constexpr const char* kKnownKeys =
    "floor, grow, decrease, util, pressure, streak, cooldown, idle";

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  const std::string buf(s);
  const std::uint64_t v = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool parse_fraction(std::string_view s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  const std::string buf(s);
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || v < 0.0) {
    return false;
  }
  *out = v;
  return true;
}

/// Parse one "key=value" entry at 0-based offset `base` in the full spec.
bool parse_entry(std::string_view entry, std::size_t base, ElasticParams* p,
                 std::string* err) {
  const auto eq = entry.find('=');
  if (eq == std::string_view::npos) {
    return fail(err, "expected key=value, got '" + std::string(entry) + "'" +
                         at(base));
  }
  const std::string_view key = entry.substr(0, eq);
  const std::string_view value = entry.substr(eq + 1);
  const std::size_t value_base = base + eq + 1;
  if (value.empty()) {
    return fail(err, "missing value after '='" + at(base + eq));
  }
  std::uint64_t n = 0;
  double f = 0.0;
  if (key == "floor") {
    if (!parse_u64(value, &n) || n == 0) {
      return fail(err, "bad floor '" + std::string(value) + "'" +
                           at(value_base) + " (want a positive page count)");
    }
    p->floor_pages = n;
  } else if (key == "grow") {
    if (!parse_u64(value, &n)) {
      return fail(err, "bad grow step '" + std::string(value) + "'" +
                           at(value_base) +
                           " (want a page count; 0 freezes growth)");
    }
    p->grow_step = n;
  } else if (key == "decrease") {
    if (!parse_fraction(value, &f) || f <= 0.0 || f >= 1.0) {
      return fail(err, "bad decrease factor '" + std::string(value) + "'" +
                           at(value_base) + " (want a number in (0, 1))");
    }
    p->decrease_factor = f;
  } else if (key == "util") {
    if (!parse_fraction(value, &f) || f <= 0.0 || f > 1.0) {
      return fail(err, "bad backpressure utilization '" + std::string(value) +
                           "'" + at(value_base) +
                           " (want a number in (0, 1])");
    }
    p->backpressure_utilization = f;
  } else if (key == "pressure") {
    if (!parse_u64(value, &n) || n == 0) {
      return fail(err, "bad pressure threshold '" + std::string(value) + "'" +
                           at(value_base) + " (want a positive fault count)");
    }
    p->pressure_faults = n;
  } else if (key == "streak") {
    if (!parse_u64(value, &n) || n == 0) {
      return fail(err, "bad grow streak '" + std::string(value) + "'" +
                           at(value_base) + " (want a positive window count)");
    }
    p->grow_streak = static_cast<std::uint32_t>(n);
  } else if (key == "cooldown") {
    if (!parse_u64(value, &n)) {
      return fail(err, "bad cooldown '" + std::string(value) + "'" +
                           at(value_base) + " (want a window count)");
    }
    p->cooldown_windows = static_cast<std::uint32_t>(n);
  } else if (key == "idle") {
    if (!parse_u64(value, &n)) {
      return fail(err, "bad idle window count '" + std::string(value) + "'" +
                           at(value_base) +
                           " (want a window count; 0 disables idle shrink)");
    }
    p->idle_windows = static_cast<std::uint32_t>(n);
  } else {
    return fail(err, "unknown elastic key '" + std::string(key) + "'" +
                         at(base) + " (valid keys: " + kKnownKeys + ")");
  }
  return true;
}

}  // namespace

std::optional<ElasticParams> parse_elastic_spec(std::string_view spec,
                                                std::string* err) {
  ElasticParams p;
  p.enabled = true;
  if (spec.empty() || spec == "default") {
    return p;
  }
  std::size_t pos = 0;
  while (true) {
    const auto comma = spec.find(',', pos);
    const std::string_view entry = comma == std::string_view::npos
                                       ? spec.substr(pos)
                                       : spec.substr(pos, comma - pos);
    if (entry.empty()) {
      fail(err, "empty entry" + at(pos) + " (remove the extra comma)");
      return std::nullopt;
    }
    if (!parse_entry(entry, pos, &p, err)) {
      return std::nullopt;
    }
    if (comma == std::string_view::npos) {
      break;
    }
    pos = comma + 1;
    if (pos == spec.size()) {
      fail(err, "trailing comma" + at(comma));
      return std::nullopt;
    }
  }
  return p;
}

void ElasticStats::publish(obs::MetricsRegistry& reg) const {
  reg.counter("epc.elastic.rebalance_ticks").add(rebalance_ticks);
  reg.counter("epc.elastic.grows").add(grows);
  reg.counter("epc.elastic.grow_pages").add(grow_pages);
  reg.counter("epc.elastic.shrinks").add(shrinks);
  reg.counter("epc.elastic.shrink_pages").add(shrink_pages);
  reg.counter("epc.elastic.demotion_shrinks").add(demotion_shrinks);
  reg.counter("epc.elastic.backpressure_shrinks").add(backpressure_shrinks);
  reg.counter("epc.elastic.idle_shrinks").add(idle_shrinks);
  reg.counter("epc.elastic.floor_hits").add(floor_hits);
  reg.counter("epc.elastic.quota_evictions").add(quota_evictions);
}

void ElasticStats::save(snapshot::Writer& w) const {
  w.u64("el.stats.rebalance_ticks", rebalance_ticks);
  w.u64("el.stats.grows", grows);
  w.u64("el.stats.grow_pages", grow_pages);
  w.u64("el.stats.shrinks", shrinks);
  w.u64("el.stats.shrink_pages", shrink_pages);
  w.u64("el.stats.demotion_shrinks", demotion_shrinks);
  w.u64("el.stats.backpressure_shrinks", backpressure_shrinks);
  w.u64("el.stats.idle_shrinks", idle_shrinks);
  w.u64("el.stats.floor_hits", floor_hits);
  w.u64("el.stats.quota_evictions", quota_evictions);
}

void ElasticStats::load(snapshot::Reader& r) {
  rebalance_ticks = r.u64("el.stats.rebalance_ticks");
  grows = r.u64("el.stats.grows");
  grow_pages = r.u64("el.stats.grow_pages");
  shrinks = r.u64("el.stats.shrinks");
  shrink_pages = r.u64("el.stats.shrink_pages");
  demotion_shrinks = r.u64("el.stats.demotion_shrinks");
  backpressure_shrinks = r.u64("el.stats.backpressure_shrinks");
  idle_shrinks = r.u64("el.stats.idle_shrinks");
  floor_hits = r.u64("el.stats.floor_hits");
  quota_evictions = r.u64("el.stats.quota_evictions");
}

void ElasticEpcController::configure(const ElasticParams& params,
                                     PageNum epc_capacity) {
  SGXPL_CHECK_MSG(params.enabled,
                  "configuring an elastic controller with elastic disabled");
  SGXPL_CHECK_MSG(params.floor_pages > 0, "elastic floor must be positive");
  SGXPL_CHECK_MSG(
      params.decrease_factor > 0.0 && params.decrease_factor < 1.0,
      "elastic decrease factor must be in (0, 1), got "
          << params.decrease_factor);
  SGXPL_CHECK_MSG(params.backpressure_utilization > 0.0 &&
                      params.backpressure_utilization <= 1.0,
                  "elastic backpressure utilization must be in (0, 1]");
  SGXPL_CHECK_MSG(epc_capacity > 0, "elastic controller over an empty EPC");
  params_ = params;
  capacity_ = epc_capacity;
  free_pool_ = 0;
  next_grant_ = 0;
  finalized_ = false;
  tenants_.clear();
  stats_ = ElasticStats{};
}

void ElasticEpcController::add_tenant(PageNum lo, PageNum pages) {
  SGXPL_CHECK_MSG(!finalized_, "add_tenant after finalize()");
  SGXPL_CHECK_MSG(pages > 0, "elastic tenant with an empty ELRANGE");
  const PageNum expected =
      tenants_.empty() ? 0 : tenants_.back().lo + tenants_.back().pages;
  SGXPL_CHECK_MSG(lo == expected,
                  "elastic tenant ranges must tile the combined ELRANGE: "
                  "tenant "
                      << tenants_.size() << " starts at " << lo
                      << ", expected " << expected);
  tenants_.push_back(Tenant{.lo = lo, .pages = pages});
}

void ElasticEpcController::finalize() {
  SGXPL_CHECK_MSG(!finalized_, "finalize() called twice");
  SGXPL_CHECK_MSG(!tenants_.empty(), "elastic controller with no tenants");
  PageNum floor_total = 0;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    floor_total += floor(i);
  }
  SGXPL_CHECK_MSG(floor_total <= capacity_,
                  "EPC of " << capacity_ << " pages cannot hold the "
                            << tenants_.size() << " tenants' floors ("
                            << floor_total << " pages)");
  // Floors first, then an even split of the remainder capped at each
  // tenant's ELRANGE; whatever the caps leave over seeds the free pool.
  PageNum remaining = capacity_ - floor_total;
  const PageNum share = remaining / tenants_.size();
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    Tenant& t = tenants_[i];
    t.quota = floor(i);
    const PageNum extra = std::min(share, t.pages - t.quota);
    t.quota += extra;
    remaining -= extra;
  }
  free_pool_ = remaining;
  finalized_ = true;
}

PageNum ElasticEpcController::floor(std::size_t t) const {
  return std::min(params_.floor_pages, tenants_.at(t).pages);
}

std::size_t ElasticEpcController::owner(PageNum page) const {
  SGXPL_CHECK_MSG(finalized_, "owner() before finalize()");
  const Tenant& last = tenants_.back();
  SGXPL_CHECK_MSG(page < last.lo + last.pages,
                  "page " << page << " outside every elastic tenant range");
  const auto it = std::upper_bound(
      tenants_.begin(), tenants_.end(), page,
      [](PageNum p, const Tenant& t) { return p < t.lo; });
  return static_cast<std::size_t>(it - tenants_.begin()) - 1;
}

void ElasticEpcController::note_mapped(PageNum page) {
  Tenant& t = tenants_[owner(page)];
  ++t.resident;
  ++t.window_mapped;
}

void ElasticEpcController::note_unmapped(PageNum page) {
  Tenant& t = tenants_[owner(page)];
  SGXPL_CHECK_MSG(t.resident > 0,
                  "unmapping page " << page
                                    << " for a tenant with no resident pages");
  --t.resident;
}

void ElasticEpcController::note_fault(std::size_t t) {
  ++tenants_.at(t).window_faults;
}

void ElasticEpcController::note_demotion(std::size_t t) {
  tenants_.at(t).demoted = true;
}

std::optional<std::size_t> ElasticEpcController::most_over_quota() const {
  std::optional<std::size_t> best;
  PageNum best_excess = 0;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& t = tenants_[i];
    if (t.resident > t.quota && t.resident - t.quota > best_excess) {
      best_excess = t.resident - t.quota;
      best = i;
    }
  }
  return best;
}

PageNum ElasticEpcController::shrink_tenant(Tenant& t, PageNum fl) {
  const auto scaled = static_cast<PageNum>(
      static_cast<double>(t.quota) * params_.decrease_factor);
  const PageNum target = std::max(fl, scaled);
  if (target >= t.quota) {
    ++stats_.floor_hits;
    return 0;
  }
  const PageNum freed = t.quota - target;
  t.quota = target;
  free_pool_ += freed;
  ++stats_.shrinks;
  stats_.shrink_pages += freed;
  if (t.quota == fl) {
    ++stats_.floor_hits;
  }
  return freed;
}

void ElasticEpcController::rebalance(
    double utilization, const std::vector<std::uint8_t>& drain_flags) {
  SGXPL_CHECK_MSG(finalized_, "rebalance() before finalize()");
  ++stats_.rebalance_ticks;
  const bool backpressure = utilization >= params_.backpressure_utilization;
  const auto draining = [&drain_flags](std::size_t i) {
    return i < drain_flags.size() && drain_flags[i] != 0;
  };
  // Decreases first: a demotion is the strongest overload verdict, then the
  // idle path (fast-tracked to one window under channel backpressure).
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (draining(i)) {
      // Frozen like the ladder's kDraining: evidence, cooldowns and quota
      // all hold still until the migration drain ends.
      continue;
    }
    Tenant& t = tenants_[i];
    if (t.cooldown > 0) {
      --t.cooldown;
    }
    const PageNum fl = floor(i);
    if (t.demoted) {
      if (t.cooldown == 0) {
        if (shrink_tenant(t, fl) > 0) {
          ++stats_.demotion_shrinks;
        }
        t.demoted = false;
        t.cooldown = params_.cooldown_windows;
      }
    } else if (params_.idle_windows > 0) {
      // Idle means NO activity of any kind: no demand faults, no pages
      // mapped (a tenant whose preloads absorb every access still maps),
      // and no resident-page hits (a fully-resident tenant generates zero
      // paging traffic yet is very much alive — the accessed-bit evidence
      // is the only thing separating it from a dead one).
      if (t.window_faults == 0 && t.window_mapped == 0 &&
          t.window_accesses == 0) {
        ++t.idle_streak;
      } else {
        t.idle_streak = 0;
      }
      const std::uint32_t need = backpressure ? 1u : params_.idle_windows;
      if (t.idle_streak >= need && t.cooldown == 0 && t.quota > fl) {
        if (shrink_tenant(t, fl) > 0) {
          if (backpressure) {
            ++stats_.backpressure_shrinks;
          } else {
            ++stats_.idle_shrinks;
          }
        }
        // No cooldown here: the hysteresis exists to stop demotion-driven
        // ping-pong with the admission ladder, not to slow the reclaim of
        // a dead tenant — and a waking tenant regrows through the normal
        // pressure streak without waiting out a freeze it never earned.
        t.idle_streak = 0;
      }
    }
    if (t.window_faults >= params_.pressure_faults) {
      ++t.pressure_streak;
    } else {
      t.pressure_streak = 0;
    }
    t.window_faults = 0;
    t.window_mapped = 0;
    t.window_accesses = 0;
  }
  // Additive grows from the pool, offered round-robin starting at a cursor
  // that rotates every window — a single hot tenant cannot starve the rest.
  if (params_.grow_step > 0 && free_pool_ > 0) {
    const std::size_t n = tenants_.size();
    for (std::size_t i = 0; i < n && free_pool_ > 0; ++i) {
      const std::size_t idx = (next_grant_ + i) % n;
      if (draining(idx)) {
        continue;
      }
      Tenant& t = tenants_[idx];
      if (t.pressure_streak < params_.grow_streak || t.cooldown > 0 ||
          t.quota >= t.pages) {
        continue;
      }
      const PageNum grant =
          std::min({params_.grow_step, free_pool_, t.pages - t.quota});
      t.quota += grant;
      free_pool_ -= grant;
      // The streak is deliberately NOT reset: true additive increase adds
      // every window while the pressure persists (a calm window resets it
      // above) — resetting here would halve the absorb rate and strand
      // reclaimed pages in the pool for hundreds of windows.
      ++stats_.grows;
      stats_.grow_pages += grant;
    }
  }
  next_grant_ = (next_grant_ + 1) % tenants_.size();
}

void ElasticEpcController::check_conservation() const {
  SGXPL_CHECK_MSG(finalized_, "check_conservation() before finalize()");
  PageNum total = free_pool_;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& t = tenants_[i];
    SGXPL_CHECK_MSG(t.quota >= floor(i),
                    "tenant " << i << " quota " << t.quota
                              << " fell below its floor " << floor(i));
    SGXPL_CHECK_MSG(t.quota <= t.pages,
                    "tenant " << i << " quota " << t.quota
                              << " exceeds its ELRANGE of " << t.pages
                              << " pages");
    SGXPL_CHECK_MSG(t.resident <= t.pages,
                    "tenant " << i << " has " << t.resident
                              << " resident pages in an ELRANGE of "
                              << t.pages);
    total += t.quota;
  }
  SGXPL_CHECK_MSG(total == capacity_,
                  "elastic conservation violated: quotas + pool = "
                      << total << " pages, physical EPC = " << capacity_);
}

void ElasticEpcController::publish(obs::MetricsRegistry& reg) const {
  stats_.publish(reg);
  reg.gauge("epc.elastic.free_pool").set(static_cast<double>(free_pool_));
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    reg.gauge("epc.elastic.quota." + std::to_string(i))
        .set(static_cast<double>(tenants_[i].quota));
  }
}

void ElasticEpcController::save(snapshot::Writer& w) const {
  SGXPL_CHECK_MSG(finalized_, "saving an unfinalized elastic controller");
  w.u64("el.capacity", capacity_);
  w.u64("el.free_pool", free_pool_);
  w.u64("el.next_grant", next_grant_);
  std::vector<std::uint64_t> lo, pages, quota, resident, faults, mapped,
      accesses, pressure, idle, cooldown, demoted;
  lo.reserve(tenants_.size());
  for (const Tenant& t : tenants_) {
    lo.push_back(t.lo);
    pages.push_back(t.pages);
    quota.push_back(t.quota);
    resident.push_back(t.resident);
    faults.push_back(t.window_faults);
    mapped.push_back(t.window_mapped);
    accesses.push_back(t.window_accesses);
    pressure.push_back(t.pressure_streak);
    idle.push_back(t.idle_streak);
    cooldown.push_back(t.cooldown);
    demoted.push_back(t.demoted ? 1 : 0);
  }
  w.u64_vec("el.lo", lo);
  w.u64_vec("el.pages", pages);
  w.u64_vec("el.quota", quota);
  w.u64_vec("el.resident", resident);
  w.u64_vec("el.window_faults", faults);
  w.u64_vec("el.window_mapped", mapped);
  w.u64_vec("el.window_accesses", accesses);
  w.u64_vec("el.pressure_streak", pressure);
  w.u64_vec("el.idle_streak", idle);
  w.u64_vec("el.cooldown", cooldown);
  w.u64_vec("el.demoted", demoted);
  stats_.save(w);
}

void ElasticEpcController::load(snapshot::Reader& r) {
  SGXPL_CHECK_MSG(finalized_,
                  "loading into an unfinalized elastic controller");
  const std::uint64_t capacity = r.u64("el.capacity");
  SGXPL_CHECK_MSG(capacity == capacity_,
                  "snapshot elastic capacity " << capacity
                      << " does not match this EPC (" << capacity_ << ")");
  const std::uint64_t pool = r.u64("el.free_pool");
  next_grant_ = r.u64("el.next_grant");
  SGXPL_CHECK_MSG(next_grant_ < tenants_.size(),
                  "snapshot elastic grant cursor out of range");
  const std::vector<std::uint64_t> lo = r.u64_vec("el.lo");
  const std::vector<std::uint64_t> pages = r.u64_vec("el.pages");
  const std::vector<std::uint64_t> quota = r.u64_vec("el.quota");
  const std::vector<std::uint64_t> resident = r.u64_vec("el.resident");
  const std::vector<std::uint64_t> faults = r.u64_vec("el.window_faults");
  const std::vector<std::uint64_t> mapped = r.u64_vec("el.window_mapped");
  const std::vector<std::uint64_t> accesses = r.u64_vec("el.window_accesses");
  const std::vector<std::uint64_t> pressure = r.u64_vec("el.pressure_streak");
  const std::vector<std::uint64_t> idle = r.u64_vec("el.idle_streak");
  const std::vector<std::uint64_t> cooldown = r.u64_vec("el.cooldown");
  const std::vector<std::uint64_t> demoted = r.u64_vec("el.demoted");
  SGXPL_CHECK_MSG(lo.size() == tenants_.size() &&
                      pages.size() == tenants_.size() &&
                      quota.size() == tenants_.size() &&
                      resident.size() == tenants_.size() &&
                      faults.size() == tenants_.size() &&
                      mapped.size() == tenants_.size() &&
                      accesses.size() == tenants_.size() &&
                      pressure.size() == tenants_.size() &&
                      idle.size() == tenants_.size() &&
                      cooldown.size() == tenants_.size() &&
                      demoted.size() == tenants_.size(),
                  "snapshot elastic tenant columns do not match this run's "
                      << tenants_.size() << " tenants");
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    Tenant& t = tenants_[i];
    SGXPL_CHECK_MSG(lo[i] == t.lo && pages[i] == t.pages,
                    "snapshot elastic tenant " << i << " covers ["
                        << lo[i] << ", " << lo[i] + pages[i]
                        << ") but this run placed it at [" << t.lo << ", "
                        << t.lo + t.pages << ")");
    t.quota = quota[i];
    t.resident = resident[i];
    t.window_faults = faults[i];
    t.window_mapped = mapped[i];
    t.window_accesses = accesses[i];
    t.pressure_streak = static_cast<std::uint32_t>(pressure[i]);
    t.idle_streak = static_cast<std::uint32_t>(idle[i]);
    t.cooldown = static_cast<std::uint32_t>(cooldown[i]);
    t.demoted = demoted[i] != 0;
  }
  free_pool_ = pool;
  stats_.load(r);
  check_conservation();
}

}  // namespace sgxpl::sgxsim
